(* Cooperative cancellation for long-running check batteries.

   The checker layers (case batteries, simulation trials) cannot be
   preempted — OCaml domains have no asynchronous kill — so obligations
   that must honor a deadline poll at their iteration boundaries
   instead.  [poll] is deliberately a no-op until a harness (the
   engine's supervisor) installs a hook; the check libraries stay
   ignorant of who supervises them and of where deadlines come from.

   The hook is global but reads per-domain state on the supervisor
   side, so concurrent workers cancel independently. *)

exception Deadline_exceeded

let hook : (unit -> unit) Atomic.t = Atomic.make (fun () -> ())

let poll () = (Atomic.get hook) ()

let set_hook f = Atomic.set hook f

(** Check reports.

    Every proof obligation of the paper becomes an executable check
    here; a report records how a batch of check instances fared.
    [skipped] counts generated cases outside the specification's
    precondition (the spec was undefined there, so nothing is claimed
    about the code). *)

type failure = { case : string; reason : string }

type t = {
  name : string;
  total : int;
  passed : int;
  skipped : int;
  failures_rev : failure list;
      (** newest-first; use {!failures} for the order they occurred *)
}

val empty : string -> t
val ok : t -> bool
val add_pass : t -> t
val add_skip : t -> t
val add_failure : t -> case:string -> reason:string -> t

val failures : t -> failure list
(** Failures in the order they were added. *)

val failure_count : t -> int

val merge : string -> t list -> t
(** Concatenates failures in argument order; linear in the total
    failure count. *)

val merge_by_name : t list -> t list
(** Group same-named reports and merge each group, preserving the
    first-occurrence order of the names — how sharded obligation
    results are folded back into one per-check line. *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t list -> unit
val to_string : t -> string

(** Certified abstraction layers.

    A layer bundles the MIR bodies implemented at that level with the
    functional specifications it exports upward.  A {e stack} is the
    bottom-first list of layers; the design of HyperEnclave guarantees
    there are no calls from lower layers into higher ones (paper
    Sec. 3.4), which {!check_stratified} re-verifies syntactically.

    When checking the code of layer [L], calls to functions of layers
    below [L] are resolved to their specifications (primitives), and
    calls within [L] run the callee's body — {!env_for} builds exactly
    that interpreter environment. *)

type 'abs t = {
  name : string;
  exports : 'abs Spec.t list;
      (** the layer interface: specs for every function callable from
          above (including specs of this layer's own code) *)
  code : Mir.Syntax.body list;
      (** bodies verified as part of this layer; empty for the trusted
          bottom layer, whose exports are axioms *)
}

val make : name:string -> exports:'abs Spec.t list -> code:Mir.Syntax.body list -> 'abs t

type 'abs stack = 'abs t list
(** Bottom layer first. *)

val find : 'abs stack -> string -> 'abs t option

val interface_below : 'abs stack -> layer:string -> 'abs Spec.t list
(** All exports of layers strictly below [layer].  If two layers export
    the same name, the higher one wins (CCAL overlay order). *)

val env_for : 'abs stack -> layer:string -> 'abs Mir.Interp.env
(** Interpreter environment for checking [layer]'s code: programs are
    the layer's own bodies, primitives are {!interface_below}. *)

val env_on_top : 'abs stack -> 'abs Mir.Interp.env
(** Environment seen by a client sitting above the whole stack: no
    bodies, every export of every layer available as a primitive
    (higher layers shadowing lower ones). *)

val all_code : 'abs stack -> Mir.Syntax.body list
val spec_names : 'abs stack -> string list

val calls_of_body : Mir.Syntax.body -> string list
(** Callee names of every [Call] terminator in the body, in block
    order (with duplicates).  The syntactic call-graph edge set used by
    {!check_stratified} and by the engine's override-composition DAG. *)

type stratification_issue = {
  layer : string;
  body : string;
  callee : string;
  detail : string;
}

val check_stratified : 'abs stack -> stratification_issue list
(** Verifies the no-upcall property: every call in a layer's code
    resolves within the same layer or to an export of a lower layer. *)

val pp_stratification_issue : Format.formatter -> stratification_issue -> unit

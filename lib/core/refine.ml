type 'abs case = {
  label : string;
  abs : 'abs;
  args : 'abs Mir.Value.t list;
  spec_args : 'abs Mir.Value.t list option;
  mem : 'abs Mir.Mem.t;
}

let case ?label ?spec_args ?(mem = Mir.Mem.empty) abs args =
  let label =
    match label with
    | Some l -> l
    | None ->
        Format.asprintf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.fprintf f ", ")
             Mir.Value.pp)
          args
  in
  { label; abs; args; spec_args; mem }

type 'abs equiv = {
  abs_eq : 'abs -> 'abs -> bool;
  ret_eq : 'abs Mir.Value.t -> 'abs Mir.Value.t -> bool;
}

let equiv ?(ret_eq = Mir.Value.equal) abs_eq = { abs_eq; ret_eq }

type 'abs check = {
  fn : string;
  spec : 'abs Spec.t;
  cases : 'abs case list;
  eq : 'abs equiv;
  fuel : int;
}

let check ?(fuel = 1_000_000) ~fn ~spec ~eq cases = { fn; spec; cases; eq; fuel }

(* One case battery, parameterized over the executor.  The fold is the
   checker's unit of progress, so each case starts with a cooperative
   {!Cancel.poll} — the boundary where a supervising harness can cancel
   an obligation that has outrun its deadline. *)
let run_battery ~call c =
  List.fold_left
    (fun report cs ->
      Cancel.poll ();
      let spec_args = Option.value ~default:cs.args cs.spec_args in
      match Spec.apply c.spec cs.abs spec_args with
      | Error _ ->
          (* Spec undefined: outside the precondition, nothing claimed. *)
          Report.add_skip report
      | Ok (abs_spec, ret_spec) -> (
          match call ~abs:cs.abs ~mem:cs.mem c.fn cs.args with
          | Error e ->
              Report.add_failure report ~case:cs.label
                ~reason:
                  (Printf.sprintf "code faulted where spec is defined: %s"
                     (Mir.Interp.error_to_string e))
          | Ok outcome ->
              if not (c.eq.ret_eq outcome.Mir.Interp.ret ret_spec) then
                Report.add_failure report ~case:cs.label
                  ~reason:
                    (Printf.sprintf "return mismatch: code %s, spec %s"
                       (Mir.Value.to_string outcome.Mir.Interp.ret)
                       (Mir.Value.to_string ret_spec))
              else if not (c.eq.abs_eq outcome.Mir.Interp.abs abs_spec) then
                Report.add_failure report ~case:cs.label
                  ~reason:"abstract-state effect differs from specification"
              else Report.add_pass report))
    (Report.empty (Printf.sprintf "refine %s" c.fn))
    c.cases

(* The hot path runs against the closure-compiled executor: the check
   is compiled once and then executed for every generated case.
   [Mir.Compile.call] is observationally identical to [Mir.Interp.call]
   (same outcomes, same error classification — pinned by the
   differential suite), so reports are unchanged. *)
let run_compiled cenv c =
  run_battery
    ~call:(fun ~abs ~mem fn args -> Mir.Compile.call ~fuel:c.fuel cenv ~abs ~mem fn args)
    c

(* The degraded path: the same battery under the reference small-step
   interpreter.  The engine's supervisor falls back to this when the
   compiled executor crashes — slower, but with the smaller trusted
   base of the reference semantics. *)
let run_interp env c =
  run_battery
    ~call:(fun ~abs ~mem fn args -> Mir.Interp.call ~fuel:c.fuel env ~abs ~mem fn args)
    c

let run ?ccache env c = run_compiled (Mir.Compile.compile ?cache:ccache env) c
let run_all env cs = List.map (run env) cs

type ('lo, 'hi) simulation = {
  sim_name : string;
  lo : 'lo Spec.t;
  hi : 'hi Spec.t;
  relate : 'lo -> 'hi -> bool;
  ret_rel : 'lo Mir.Value.t -> 'hi Mir.Value.t -> bool;
}

let simulate sim ~cases =
  List.fold_left
    (fun report (label, lo_abs, hi_abs, args) ->
      if not (sim.relate lo_abs hi_abs) then
        Report.add_failure report ~case:label ~reason:"initial states not R-related"
      else
        (* Arguments are plain data (no trusted pointers), so the same
           list can be retagged for both abstract-state types. *)
        let hi_args_r =
          List.fold_right
            (fun a acc ->
              match (Mir.Value.retag a, acc) with
              | Ok a', Ok rest -> Ok (a' :: rest)
              | Error e, _ -> Error e
              | _, (Error _ as e) -> e)
            args (Ok [])
        in
        match hi_args_r with
        | Error msg ->
            Report.add_failure report ~case:label
              ~reason:(Printf.sprintf "arguments not transferable: %s" msg)
        | Ok hi_args -> (
            match Spec.apply sim.hi hi_abs hi_args with
            | Error _ -> Report.add_skip report
            | Ok (hi_abs', hi_ret) -> (
                match Spec.apply sim.lo lo_abs args with
                | Error msg ->
                    Report.add_failure report ~case:label
                      ~reason:
                        (Printf.sprintf "low spec undefined where high is defined: %s" msg)
                | Ok (lo_abs', lo_ret) ->
                    if not (sim.ret_rel lo_ret hi_ret) then
                      Report.add_failure report ~case:label
                        ~reason:
                          (Printf.sprintf "return values unrelated: low %s, high %s"
                             (Mir.Value.to_string lo_ret)
                             (Mir.Value.to_string hi_ret))
                    else if not (sim.relate lo_abs' hi_abs') then
                      Report.add_failure report ~case:label
                        ~reason:"final states not R-related"
                    else Report.add_pass report)))
    (Report.empty (Printf.sprintf "simulate %s" sim.sim_name))
    cases

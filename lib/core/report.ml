type failure = { case : string; reason : string }

(* Failures accumulate newest-first so [add_failure] and [merge] stay
   O(1)/O(n); the original order is restored at the observation points
   ([failures], [pp]).  Sharded verification passes merge thousands of
   per-obligation reports — a [@ [x]] tail-append would be quadratic. *)
type t = {
  name : string;
  total : int;
  passed : int;
  skipped : int;
  failures_rev : failure list;
}

let empty name = { name; total = 0; passed = 0; skipped = 0; failures_rev = [] }
let ok r = r.failures_rev = []
let add_pass r = { r with total = r.total + 1; passed = r.passed + 1 }
let add_skip r = { r with total = r.total + 1; skipped = r.skipped + 1 }

let add_failure r ~case ~reason =
  { r with total = r.total + 1; failures_rev = { case; reason } :: r.failures_rev }

let failures r = List.rev r.failures_rev
let failure_count r = List.length r.failures_rev

let merge name rs =
  List.fold_left
    (fun acc r ->
      {
        acc with
        total = acc.total + r.total;
        passed = acc.passed + r.passed;
        skipped = acc.skipped + r.skipped;
        (* prepending the later report's reversed failures keeps the
           merged order = concatenation in [rs] order once re-reversed *)
        failures_rev = r.failures_rev @ acc.failures_rev;
      })
    (empty name) rs

let merge_by_name rs =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.name with
      | None ->
          order := r.name :: !order;
          Hashtbl.add tbl r.name [ r ]
      | Some group -> Hashtbl.replace tbl r.name (r :: group))
    rs;
  List.rev_map
    (fun name -> merge name (List.rev (Hashtbl.find tbl name)))
    !order

let pp fmt r =
  let nfail = failure_count r in
  Format.fprintf fmt "%-40s %5d cases, %5d passed, %4d skipped, %3d failed"
    r.name r.total r.passed r.skipped nfail;
  List.iteri
    (fun i f ->
      if i < 5 then Format.fprintf fmt "@,    FAIL [%s]: %s" f.case f.reason)
    (failures r);
  if nfail > 5 then
    Format.fprintf fmt "@,    ... and %d more failures" (nfail - 5)

let pp_summary fmt rs =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp r) rs;
  let all = merge "TOTAL" rs in
  Format.fprintf fmt "%a@]" pp all

let to_string r = Format.asprintf "@[<v>%a@]" pp r

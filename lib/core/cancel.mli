(** Cooperative cancellation points for long-running check batteries.

    Check code (case batteries, simulation trials) calls {!poll} at
    iteration boundaries.  By default it is a no-op; a supervising
    harness installs a hook with {!set_hook} that raises
    {!Deadline_exceeded} once the current obligation's deadline has
    passed.  The hook is installed once, globally, but is expected to
    read per-domain state (e.g. a domain-local deadline), so workers
    cancel independently. *)

exception Deadline_exceeded
(** Raised (by the installed hook) from {!poll} when the supervising
    harness decides the current computation has run out of time.  Check
    code must let it propagate. *)

val poll : unit -> unit
(** Cancellation point.  No-op unless a hook is installed. *)

val set_hook : (unit -> unit) -> unit
(** Install the global cancellation hook (supervisor use only). *)

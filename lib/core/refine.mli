(** Code-conforms-to-specification checking.

    The paper's code proofs (Sec. 4.3) show that executing a function's
    MIR and executing its specification from related states produce
    related results.  Here the same statement is checked executably:
    for each generated case, the function body runs under the MIR
    small-step semantics — with lower layers replaced by their
    specifications — and the result (return value and abstract-state
    effect) is compared against the function's own specification.

    A case where the spec is undefined (precondition violated) is
    skipped; a case where the spec is defined but the code faults,
    diverges, or disagrees is a failure. *)

type 'abs case = {
  label : string;
  abs : 'abs;
  args : 'abs Mir.Value.t list;  (** arguments the code is called with *)
  spec_args : 'abs Mir.Value.t list option;
      (** arguments for the specification when they differ — e.g. a
          method checked with a [&self] pointer into [mem] while the
          spec receives the struct by value (paper Sec. 3.4, case 1) *)
  mem : 'abs Mir.Mem.t;  (** initial object memory; owner-layer objects *)
}

val case :
  ?label:string -> ?spec_args:'abs Mir.Value.t list -> ?mem:'abs Mir.Mem.t ->
  'abs -> 'abs Mir.Value.t list -> 'abs case

type 'abs equiv = {
  abs_eq : 'abs -> 'abs -> bool;
  ret_eq : 'abs Mir.Value.t -> 'abs Mir.Value.t -> bool;
}

val equiv :
  ?ret_eq:('abs Mir.Value.t -> 'abs Mir.Value.t -> bool) ->
  ('abs -> 'abs -> bool) ->
  'abs equiv
(** Default [ret_eq] is {!Mir.Value.equal}. *)

type 'abs check = {
  fn : string;  (** body name, must exist in the environment's program *)
  spec : 'abs Spec.t;
  cases : 'abs case list;
  eq : 'abs equiv;
  fuel : int;
}

val check :
  ?fuel:int -> fn:string -> spec:'abs Spec.t -> eq:'abs equiv -> 'abs case list ->
  'abs check

val run : ?ccache:'abs Mir.Compile.cache -> 'abs Mir.Interp.env -> 'abs check -> Report.t
(** Compiles the environment with {!Mir.Compile.compile} (against
    [ccache] when given) and delegates to {!run_compiled}. *)

val run_compiled : 'abs Mir.Compile.t -> 'abs check -> Report.t
(** The hot path: every case executes against the closure-compiled
    form of the environment.  Observationally identical to running
    under {!Mir.Interp.call} (pinned by the differential suite).  Each
    case boundary is a {!Cancel.poll} cancellation point. *)

val run_interp : 'abs Mir.Interp.env -> 'abs check -> Report.t
(** The degraded path: the same battery under the reference
    interpreter, no compilation.  The engine's supervisor retries a
    crashed compiled run through this — any verdict difference between
    the two executors is a divergence worth flagging. *)

val run_all : 'abs Mir.Interp.env -> 'abs check list -> Report.t list

(** {1 Spec-to-spec simulation}

    Used for the page-table refinement (flat → tree, Sec. 4.1): both
    sides are specifications over different abstract states, related by
    [r]. *)

type ('lo, 'hi) simulation = {
  sim_name : string;
  lo : 'lo Spec.t;
  hi : 'hi Spec.t;
  relate : 'lo -> 'hi -> bool;  (** the refinement relation R *)
  ret_rel : 'lo Mir.Value.t -> 'hi Mir.Value.t -> bool;
}

val simulate :
  ('lo, 'hi) simulation ->
  cases:(string * 'lo * 'hi * 'lo Mir.Value.t list) list ->
  Report.t
(** Each case supplies a pair of R-related states and the argument
    list (arguments are state-independent values, reused on both
    sides).  The check: if the high spec is defined, the low spec must
    be defined, results must be [ret_rel]-related and final states
    R-related.  High-undefined cases are skipped. *)

(* Engine/cache format version.  Part of every cache key: bump it when
   the check semantics, the obligation encoding, or the marshalled
   outcome shape changes, and every stale entry silently misses. *)
let version = "mirverif-engine-2"

(* The marshalled payload is additionally guarded by a magic string so
   a file from a different OCaml version (incompatible Marshal format)
   or a truncated write degrades to a miss, never a crash. *)
let magic = "MVEC1\n" ^ Sys.ocaml_version ^ "\n"

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  if String.trim dir = "" then
    invalid_arg "Cache.create: empty cache directory (pass --cache DIR)";
  (match mkdir_p dir with
  | () -> ()
  | exception Unix.Unix_error (e, _, arg) ->
      invalid_arg
        (Printf.sprintf "Cache.create: cannot create %S (%s: %s)" dir
           (Unix.error_message e) arg));
  { dir }

let key (o : Obligation.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ version; o.Obligation.phase; o.Obligation.id; o.Obligation.fingerprint ]))

let path t k = Filename.concat t.dir (k ^ ".proof")

let find t (o : Obligation.t) : Obligation.outcome option =
  let file = path t (key o) in
  (* a stale or corrupt entry can never become valid again — its key
     already encodes version and fingerprint — so evict it on the way
     out; otherwise every warm run re-reads and re-rejects it *)
  let evict () = (try Sys.remove file with Sys_error _ -> ()); None in
  if not (Sys.file_exists file) then None
  else
    match
      let ic = open_in_bin file in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          let m = really_input_string ic (String.length magic) in
          if not (String.equal m magic) then None
          else
            let (outcome : Obligation.outcome) = Marshal.from_channel ic in
            Some outcome)
    with
    | Some outcome -> Some outcome
    | None -> evict ()
    | exception _ -> evict ()

let store t (o : Obligation.t) (outcome : Obligation.outcome) =
  try
    let file = path t (key o) in
    (* write-then-rename: concurrent workers may store under the same
       key; each writes its own temp file and the rename is atomic *)
    let tmp = Filename.temp_file ~temp_dir:t.dir ".proof-" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc magic;
        Marshal.to_channel oc outcome []);
    Sys.rename tmp file
  with _ -> ()

let entry_count t =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.fold_left
      (fun n f -> if Filename.check_suffix f ".proof" then n + 1 else n)
      0 (Sys.readdir t.dir)
  else 0

(* Engine/cache format version.  Part of every cache key: bump it when
   the check semantics, the obligation encoding, or the marshalled
   outcome shape changes, and every stale entry silently misses. *)
let version = "mirverif-engine-2"

(* The marshalled payload is additionally guarded by a magic string so
   a file from a different OCaml version (incompatible Marshal format)
   or a truncated write degrades to a miss, never a crash. *)
let magic = "MVEC1\n" ^ Sys.ocaml_version ^ "\n"

(* Two storage tiers share the key space:

   - pack files ([*.pack]): one file per run, appended by {!flush} from
     the outcomes {!stash}ed during that run, loaded wholesale into the
     in-memory index at {!create}.  This is the pool's path — a cold
     run of the full plan costs one file write, not one per obligation.
   - legacy per-entry files ([<key>.proof]): the write-through path of
     {!store}, still read (and still evicted when corrupt) so caches
     written by older engines stay warm. *)
type t = {
  dir : string;
  mu : Mutex.t;
  index : (string, Obligation.outcome) Hashtbl.t;  (* from pack files *)
  pending : (string, Obligation.outcome) Hashtbl.t;  (* stashed, not yet flushed *)
  packs : (string, unit) Hashtbl.t;
      (* pack basenames already merged into [index] (our own flushes
         included), so {!refresh} loads only packs other processes
         wrote since; guarded by mu *)
  mutable failures : (string * string) list;  (* (op, message), newest first; guarded by mu *)
  mutable chaos : Engine_chaos.t option;
}

(* Write failures degrade the cache (the run stays correct, the next
   run just recomputes), so they must not kill the run — but they must
   not vanish either: each one is recorded here and the driver surfaces
   them as trace events and a summary counter.  Out_of_memory and
   Stack_overflow are not IO weather and are never absorbed. *)
let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let record_failure_locked t op exn =
  t.failures <- (op, Printexc.to_string exn) :: t.failures

let record_failure t op exn =
  Mutex.lock t.mu;
  record_failure_locked t op exn;
  Mutex.unlock t.mu

let write_failures t =
  Mutex.lock t.mu;
  let fs = List.rev t.failures in
  Mutex.unlock t.mu;
  fs

let write_failure_count t = List.length (write_failures t)

let set_chaos t ch = t.chaos <- Some ch

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Read a pack wholesale.  A pack that fails to parse can never become
   valid again (keys inside it encode version and fingerprint), so it
   is evicted whole; a pack that vanished between readdir and open —
   another process evicting concurrently — is a plain miss.  Renames
   into place are atomic, so any pack we do open is complete. *)
let read_pack file : (string * Obligation.outcome) array option =
  let evict () =
    (try Sys.remove file with Sys_error _ -> ());
    None
  in
  match
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        let m = really_input_string ic (String.length magic) in
        if not (String.equal m magic) then None
        else
          let (entries : (string * Obligation.outcome) array) = Marshal.from_channel ic in
          Some entries)
  with
  | Some entries -> Some entries
  | None -> evict ()
  | exception Sys_error _ -> None  (* vanished mid-scan: concurrent eviction *)
  | exception _ -> evict ()

let pack_basenames dir =
  match Sys.readdir dir with
  | files -> List.filter (fun f -> Filename.check_suffix f ".pack") (Array.to_list files)
  | exception Sys_error _ -> []

let create ~dir =
  if String.trim dir = "" then
    invalid_arg "Cache.create: empty cache directory (pass --cache DIR)";
  (match mkdir_p dir with
  | () -> ()
  | exception Unix.Unix_error (e, _, arg) ->
      invalid_arg
        (Printf.sprintf "Cache.create: cannot create %S (%s: %s)" dir
           (Unix.error_message e) arg));
  let index = Hashtbl.create 256 in
  let packs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match read_pack (Filename.concat dir f) with
      | Some entries ->
          Array.iter (fun (k, o) -> Hashtbl.replace index k o) entries;
          Hashtbl.replace packs f ()
      | None -> ())
    (pack_basenames dir);
  { dir; mu = Mutex.create (); index; pending = Hashtbl.create 64; packs;
    failures = []; chaos = None }

(* Pick up packs flushed by other processes since [create] (or the last
   refresh): the fleet's warm-sharing path.  Pack reads happen outside
   the mutex (pure IO on immutable files); only the merge is locked.
   Returns the number of new packs merged. *)
let refresh t =
  Mutex.lock t.mu;
  let seen = Hashtbl.copy t.packs in
  Mutex.unlock t.mu;
  let fresh =
    List.filter_map
      (fun f ->
        if Hashtbl.mem seen f then None
        else
          match read_pack (Filename.concat t.dir f) with
          | Some entries -> Some (f, entries)
          | None -> None)
      (pack_basenames t.dir)
  in
  Mutex.lock t.mu;
  List.iter
    (fun (f, entries) ->
      Array.iter (fun (k, o) -> Hashtbl.replace t.index k o) entries;
      Hashtbl.replace t.packs f ())
    fresh;
  Mutex.unlock t.mu;
  List.length fresh

let key (o : Obligation.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ version; o.Obligation.phase; o.Obligation.cache_id; o.Obligation.fingerprint ]))

let path t k = Filename.concat t.dir (k ^ ".proof")

let find_legacy t k : Obligation.outcome option =
  let file = path t k in
  (* a stale or corrupt entry can never become valid again — its key
     already encodes version and fingerprint — so evict it on the way
     out; otherwise every warm run re-reads and re-rejects it *)
  let evict () = (try Sys.remove file with Sys_error _ -> ()); None in
  if not (Sys.file_exists file) then None
  else
    match
      let ic = open_in_bin file in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          let m = really_input_string ic (String.length magic) in
          if not (String.equal m magic) then None
          else
            let (outcome : Obligation.outcome) = Marshal.from_channel ic in
            Some outcome)
    with
    | Some outcome -> Some outcome
    | None -> evict ()
    | exception _ -> evict ()

let find t (o : Obligation.t) : Obligation.outcome option =
  let k = key o in
  Mutex.lock t.mu;
  let packed =
    match Hashtbl.find_opt t.pending k with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt t.index k
  in
  Mutex.unlock t.mu;
  match packed with
  | Some _ as r ->
      (* defined tier precedence: the pack always wins.  A key present
         in both tiers means a legacy [.proof] file survived a later
         packed write of the same (version+fingerprint) outcome — it
         can only be equal or staler, so evict it rather than let a
         future pack loss resurrect it *)
      let file = path t k in
      if Sys.file_exists file then (try Sys.remove file with Sys_error _ -> ());
      r
  | None -> find_legacy t k

let stash t (o : Obligation.t) (outcome : Obligation.outcome) =
  Mutex.lock t.mu;
  Hashtbl.replace t.pending (key o) outcome;
  Mutex.unlock t.mu

(* Serialize pack flushes across processes sharing the directory with
   an advisory [lockf] on [<dir>/.lock].  Readers never take it — the
   rename into place is atomic, so a pack is whole or absent from their
   view — but writers do, so two workers flushing at once cannot
   interleave their temp-file creation and chaos-teardown windows.  A
   lock failure (e.g. a filesystem without lockf) degrades to the
   unlocked-but-still-atomic path rather than losing the flush. *)
let with_flush_lock t f =
  match
    Unix.openfile (Filename.concat t.dir ".lock")
      [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644
  with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let locked =
            match Unix.lockf fd Unix.F_LOCK 0 with
            | () -> true
            | exception Unix.Unix_error _ -> false
          in
          Fun.protect
            ~finally:(fun () ->
              if locked then
                try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
            f)

let flush t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if Hashtbl.length t.pending > 0 then begin
        let entries =
          Array.of_seq (Seq.map (fun (k, o) -> (k, o)) (Hashtbl.to_seq t.pending))
        in
        (try
           with_flush_lock t (fun () ->
               (* write-then-rename under a per-run unique name: concurrent
                  runs each produce their own pack, readers see whole files *)
               let tmp = Filename.temp_file ~temp_dir:t.dir "pack-" ".tmp" in
               let oc = open_out_bin tmp in
               Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                   output_string oc magic;
                   Marshal.to_channel oc entries []);
               let pack_base =
                 Filename.chop_suffix (Filename.basename tmp) ".tmp" ^ ".pack"
               in
               let pack = Filename.concat t.dir pack_base in
               Sys.rename tmp pack;
               Hashtbl.replace t.packs pack_base ();
               Option.iter (fun ch -> Engine_chaos.tear_pack ch ~path:pack) t.chaos)
         with e when not (fatal e) -> record_failure_locked t "flush" e);
        Array.iter (fun (k, o) -> Hashtbl.replace t.index k o) entries;
        Hashtbl.reset t.pending
      end)

let store t (o : Obligation.t) (outcome : Obligation.outcome) =
  try
    let file = path t (key o) in
    (* write-then-rename: concurrent workers may store under the same
       key; each writes its own temp file and the rename is atomic *)
    let tmp = Filename.temp_file ~temp_dir:t.dir ".proof-" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc magic;
        Marshal.to_channel oc outcome []);
    Sys.rename tmp file;
    Option.iter (fun ch -> Engine_chaos.truncate_proof ch ~path:file) t.chaos
  with e when not (fatal e) -> record_failure t "store" e

let entry_count t =
  Mutex.lock t.mu;
  let keys = Hashtbl.create 256 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.index;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.pending;
  Mutex.unlock t.mu;
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".proof" then
          Hashtbl.replace keys (Filename.chop_suffix f ".proof") ())
      (Sys.readdir t.dir);
  Hashtbl.length keys

(** OCaml 5 [Domain] worker pool over an obligation DAG, with
    per-worker work-stealing deques.

    [run ~jobs dag] executes every obligation, respecting dependency
    edges, on up to [jobs] domains.  Each worker owns a Chase–Lev-style
    deque: dependents it releases go to its own deque (hot end), and a
    worker that runs dry steals the cold half of a victim's deque in
    one batch.  Idle workers park on a condition variable and are woken
    by targeted [signal]s — one per surplus item published, never a
    broadcast until shutdown.

    [jobs] caps concurrency; the pool additionally never spawns more
    domains than [Domain.recommended_domain_count ()], because active
    domains beyond the hardware only add stop-the-world GC
    synchronization to CPU-bound work.  [jobs = 1] (or a one-core
    clamp) runs inline on the calling domain with no spawn at all.
    [~oversubscribe:true] bypasses the clamp (tests use it to exercise
    the stealing path on any machine).

    Results come back in the DAG's insertion order, so the merged
    output is byte-identical at any job count; only the trace metadata
    (worker ids, timestamps — all read from {!Clock}) reflects the
    actual schedule.  Workers accumulate results in domain-local
    buffers merged after the join; an obligation whose worker died
    before publishing yields an explicit crash outcome, not an
    exception.

    With [?cache], each obligation is first looked up in the
    content-addressed proof cache and executed only on a miss; outcomes
    are batched ({!Cache.stash}) and written as one pack file per run
    ({!Cache.flush}, called before [run] returns).

    Cache misses execute under {!Supervisor.supervise} with [?sup]
    (default {!Supervisor.default}: one attempt, no deadline — the
    historical behaviour).  An obligation that raises is converted into
    a one-failure report rather than tearing down the pool, and
    quarantined outcomes are never cached; clean and fallback outcomes
    are.  Each [exec] carries the supervision {!Supervisor.trail}.

    When [sup.chaos] is armed, workers additionally pass kill points
    before executing and before publishing an obligation; a chaos kill
    tears the worker down mid-flight.  The obligation it held is
    re-enqueued and the worker respawns while the shared [?max_respawns]
    budget (default 32) lasts; past it the worker stays dead and its
    queued work drains onto the survivors via the stealing path.  A
    per-obligation publish flag keeps dependent release and completion
    counting exactly-once even when a kill lands between computing and
    publishing a result (the obligation simply runs again). *)

type cache_status = Hit | Miss | Off

val cache_status_to_string : cache_status -> string

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;  (** worker that ran (or replayed) it *)
  started : float;  (** seconds since pool start *)
  finished : float;
  trail : Supervisor.trail;
      (** how execution went: attempts, faults injected, resolution
          ({!Supervisor.cached} for a hit) *)
}

type stats = {
  respawns : int;  (** workers killed by chaos and restarted *)
  lost_workers : int;  (** workers dead past the respawn budget *)
}

val run :
  ?cache:Cache.t -> ?oversubscribe:bool -> ?sup:Supervisor.config ->
  ?max_respawns:int -> jobs:int -> Dag.t -> exec list

val run_with_stats :
  ?cache:Cache.t -> ?oversubscribe:bool -> ?sup:Supervisor.config ->
  ?max_respawns:int -> jobs:int -> Dag.t -> exec list * stats

val wall_of : exec list -> float
(** Latest finish time = the pool's wall-clock. *)

val worker_stats : exec list -> (int * float * int) list
(** Per worker: (id, busy seconds, obligations run), sorted by id —
    the utilization numbers of the summary output. *)

(** OCaml 5 [Domain] worker pool over an obligation DAG.

    [run ~jobs dag] executes every obligation, respecting dependency
    edges, on up to [jobs] domains ([jobs = 1] runs inline on the
    calling domain).  Results come back in the DAG's insertion order,
    so the merged output is byte-identical at any job count; only the
    trace metadata (worker ids, timestamps) reflects the actual
    schedule.

    With [?cache], each obligation is first looked up in the
    content-addressed proof cache and executed only on a miss (the
    outcome is then stored).  An obligation that raises is converted
    into a one-failure report rather than tearing down the pool. *)

type cache_status = Hit | Miss | Off

val cache_status_to_string : cache_status -> string

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;  (** worker that ran (or replayed) it *)
  started : float;  (** seconds since pool start *)
  finished : float;
}

val run : ?cache:Cache.t -> jobs:int -> Dag.t -> exec list

val wall_of : exec list -> float
(** Latest finish time = the pool's wall-clock. *)

val worker_stats : exec list -> (int * float * int) list
(** Per worker: (id, busy seconds, obligations run), sorted by id —
    the utilization numbers of the summary output. *)

(** OCaml 5 [Domain] worker pool over an obligation DAG, with
    per-worker work-stealing deques.

    [run ~jobs dag] executes every obligation, respecting dependency
    edges, on up to [jobs] domains.  Each worker owns a Chase–Lev-style
    deque: dependents it releases go to its own deque (hot end), and a
    worker that runs dry steals the cold half of a victim's deque in
    one batch.  Idle workers park on a condition variable and are woken
    by targeted [signal]s — one per surplus item published, never a
    broadcast until shutdown.

    [jobs] caps concurrency; the pool additionally never spawns more
    domains than [Domain.recommended_domain_count ()], because active
    domains beyond the hardware only add stop-the-world GC
    synchronization to CPU-bound work.  [jobs = 1] (or a one-core
    clamp) runs inline on the calling domain with no spawn at all.
    [~oversubscribe:true] bypasses the clamp (tests use it to exercise
    the stealing path on any machine).

    Results come back in the DAG's insertion order, so the merged
    output is byte-identical at any job count; only the trace metadata
    (worker ids, timestamps — all read from {!Clock}) reflects the
    actual schedule.  Workers accumulate results in domain-local
    buffers merged after the join; an obligation whose worker died
    before publishing yields an explicit crash outcome, not an
    exception.

    With [?cache], each obligation is first looked up in the
    content-addressed proof cache and executed only on a miss; outcomes
    are batched ({!Cache.stash}) and written as one pack file per run
    ({!Cache.flush}, called before [run] returns).  An obligation that
    raises is converted into a one-failure report rather than tearing
    down the pool, and is never cached. *)

type cache_status = Hit | Miss | Off

val cache_status_to_string : cache_status -> string

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;  (** worker that ran (or replayed) it *)
  started : float;  (** seconds since pool start *)
  finished : float;
}

val run : ?cache:Cache.t -> ?oversubscribe:bool -> jobs:int -> Dag.t -> exec list

val wall_of : exec list -> float
(** Latest finish time = the pool's wall-clock. *)

val worker_stats : exec list -> (int * float * int) list
(** Per worker: (id, busy seconds, obligations run), sorted by id —
    the utilization numbers of the summary output. *)

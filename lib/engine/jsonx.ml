type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* One top-level object rendered with each field on its own line, so
   shell tooling (the CI gate greps the summary) can match scalar
   fields without a JSON parser. *)
let to_multiline_string = function
  | Obj kvs ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "  \"%s\": " (escape k));
          match v with
          | List xs ->
              Buffer.add_string buf "[\n";
              List.iteri
                (fun j x ->
                  if j > 0 then Buffer.add_string buf ",\n";
                  Buffer.add_string buf "    ";
                  emit buf x)
                xs;
              Buffer.add_string buf "\n  ]"
          | v -> emit buf v)
        kvs;
      Buffer.add_string buf "\n}\n";
      Buffer.contents buf
  | j -> to_string j ^ "\n"

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc content)

let write_lines path jsons =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      List.iter
        (fun j ->
          output_string oc (to_string j);
          output_char oc '\n')
        jsons)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* One top-level object rendered with each field on its own line, so
   shell tooling (the CI gate greps the summary) can match scalar
   fields without a JSON parser. *)
let to_multiline_string = function
  | Obj kvs ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "  \"%s\": " (escape k));
          match v with
          | List xs ->
              Buffer.add_string buf "[\n";
              List.iteri
                (fun j x ->
                  if j > 0 then Buffer.add_string buf ",\n";
                  Buffer.add_string buf "    ";
                  emit buf x)
                xs;
              Buffer.add_string buf "\n  ]"
          | v -> emit buf v)
        kvs;
      Buffer.add_string buf "\n}\n";
      Buffer.contents buf
  | j -> to_string j ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parsing.  The serve protocol (lib/serve) carries requests and
   responses as JSON frames, so the engine needs to read JSON back, not
   just emit it.  Recursive descent over the full string; errors carry
   the byte offset.  Numbers without '.', 'e' or 'E' parse as [Int]
   (falling back to [Float] on overflow), everything else as [Float] —
   the inverse of {!emit}'s convention. *)

exception Parse_error of int * string

let parse_error pos msg = raise (Parse_error (pos, msg))

(* Nesting bound: the parser recurses once per container level, so an
   adversarial payload of a few hundred KB of '[' would otherwise turn
   into a [Stack_overflow] — which is not a [Parse_error] and would
   escape the daemon's per-request error handling.  No legitimate
   request comes anywhere near this deep. *)
let max_depth = 512

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then parse_error !pos "truncated \\u escape";
    let h = String.sub s !pos 4 in
    match int_of_string_opt ("0x" ^ h) with
    | Some c ->
        pos := !pos + 4;
        c
    | None -> parse_error !pos "bad \\u escape"
  in
  (* encode a Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_error !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then parse_error !pos "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'u' ->
              let u = hex4 () in
              let u =
                (* surrogate pair: combine when the low half follows *)
                if u >= 0xD800 && u <= 0xDBFF
                   && !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                  else parse_error !pos "unpaired surrogate"
                end
                else u
              in
              add_utf8 buf u;
              loop ()
          | _ -> parse_error (!pos - 1) "bad escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> parse_error start "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> parse_error start "bad number")
  in
  let rec parse_value depth =
    if depth > max_depth then parse_error !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> parse_error !pos "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> parse_error !pos "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error !pos (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then parse_error !pos "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "json parse error at byte %d: %s" p msg)
  | exception Stack_overflow ->
      (* defense in depth behind [max_depth]: a parser bug must never
         take down a daemon that feeds it untrusted frames *)
      Error "json parse error: nesting too deep"

(* ------------------------------------------------------------------ *)
(* Accessors: shallow, total — protocol decoding reads fields through
   these and treats [None] as a malformed request, never an exception. *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc content)

let write_lines path jsons =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      List.iter
        (fun j ->
          output_string oc (to_string j);
          output_char oc '\n')
        jsons)

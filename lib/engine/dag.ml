module StrMap = Map.Make (String)

type t = {
  order : Obligation.t list;  (* insertion order: the deterministic merge order *)
  by_id : Obligation.t StrMap.t;
  dependents : string list StrMap.t;  (* id -> ids that depend on it, insertion order *)
}

let obligations t = t.order
let size t = List.length t.order
let find t id = StrMap.find_opt id t.by_id

let deps_of t id =
  match StrMap.find_opt id t.by_id with Some o -> o.Obligation.deps | None -> []

let dependents_of t id =
  match StrMap.find_opt id t.dependents with Some ds -> ds | None -> []

let build obls =
  (* unique ids *)
  let rec check_ids seen = function
    | [] -> Ok ()
    | (o : Obligation.t) :: rest ->
        if StrMap.mem o.id seen then Error (Printf.sprintf "duplicate obligation id %s" o.id)
        else check_ids (StrMap.add o.id o seen) rest
  in
  match check_ids StrMap.empty obls with
  | Error _ as e -> e
  | Ok () -> (
      let by_id =
        List.fold_left (fun m (o : Obligation.t) -> StrMap.add o.id o m) StrMap.empty obls
      in
      (* known deps *)
      let unknown =
        List.concat_map
          (fun (o : Obligation.t) ->
            List.filter_map
              (fun d ->
                if StrMap.mem d by_id then None
                else Some (Printf.sprintf "%s depends on unknown %s" o.id d))
              o.deps)
          obls
      in
      match unknown with
      | msg :: _ -> Error msg
      | [] ->
          let dependents =
            List.fold_left
              (fun m (o : Obligation.t) ->
                List.fold_left
                  (fun m d ->
                    let ds = try StrMap.find d m with Not_found -> [] in
                    StrMap.add d (o.id :: ds) m)
                  m o.deps)
              StrMap.empty obls
            |> StrMap.map List.rev
          in
          (* cycle check: Kahn's algorithm must consume every node *)
          let indeg = Hashtbl.create (List.length obls) in
          List.iter
            (fun (o : Obligation.t) -> Hashtbl.replace indeg o.id (List.length o.deps))
            obls;
          let queue = Queue.create () in
          List.iter
            (fun (o : Obligation.t) -> if o.deps = [] then Queue.add o.id queue)
            obls;
          let consumed = ref 0 in
          while not (Queue.is_empty queue) do
            let id = Queue.take queue in
            incr consumed;
            List.iter
              (fun d ->
                let k = Hashtbl.find indeg d - 1 in
                Hashtbl.replace indeg d k;
                if k = 0 then Queue.add d queue)
              (match StrMap.find_opt id dependents with Some ds -> ds | None -> [])
          done;
          if !consumed <> List.length obls then
            Error
              (Printf.sprintf "dependency cycle: only %d of %d obligations schedulable"
                 !consumed (List.length obls))
          else Ok { order = obls; by_id; dependents })

let build_exn obls =
  match build obls with Ok t -> t | Error msg -> invalid_arg ("Dag.build: " ^ msg)

let reaches t ~src ~dst =
  (* is there a dependency path from [dst] up to [src]?  i.e. does
     [src] (transitively) depend on [dst]? *)
  let seen = Hashtbl.create 64 in
  let rec go id =
    if String.equal id dst then true
    else if Hashtbl.mem seen id then false
    else begin
      Hashtbl.add seen id ();
      List.exists go (deps_of t id)
    end
  in
  go src

(** Chaos for the checker: deterministic fault injection against the
    verification engine itself.

    Where [lib/fault] perturbs the monitor under verification, this
    module perturbs the engine — obligations crash or hang, worker
    domains die, cache pack files tear, legacy proof entries truncate,
    and the clock skews — so CI can assert that the supervised pool
    ({!Supervisor}, {!Pool}) still terminates with verdicts
    byte-identical to a clean run.

    Every decision is a pure function of (seed, site tag): what is
    injected, on which obligation, and for how many attempts is
    independent of scheduling and job count.  Injection is bounded by
    construction — persistence never exceeds the supervisor's retry
    budget (the supervisor clamps it), and a kill-marked obligation
    kills only its first executor — so a chaos run always recovers to
    the clean verdicts. *)

exception Worker_killed of string
(** Raised at pool hook points to simulate a worker domain dying.
    Deliberately *not* absorbed by the supervisor's per-obligation
    crash handling: it propagates to the pool's worker wrapper, which
    respawns the worker (up to a limit) and re-enqueues the in-flight
    obligation. *)

type fault =
  | No_fault
  | Crash of int  (** raise on attempts [1..persist] *)
  | Hang of int  (** stall until the deadline on attempts [1..persist] *)

type t

val create :
  ?kinds:Fault.Plan.engine_kind list -> ?rate:int -> seed:int -> unit -> t
(** [rate] (default 8): one in [rate] obligations draws a fault;
    worker kills fire at a quarter of that rate. *)

val seed : t -> int
val kinds : t -> Fault.Plan.engine_kind list

val obl_fault : t -> id:string -> fault
(** Pure decision for the obligation-execution hook; the supervisor
    applies it per attempt and calls {!note} when it actually
    injects. *)

val note : t -> Fault.Plan.engine_kind -> unit
(** Count one actual injection (decision sites that fire internally —
    kills, file corruption, skew — count themselves). *)

val kill_worker : t -> site:string -> id:string -> bool
(** Should the worker at [site] ("pre-exec" / "post-exec") die before
    handling obligation [id]?  True at most once per (site, id). *)

val tear_pack : t -> path:string -> unit
(** Truncate the first pack file written this process (post-rename):
    the next [Cache.create] must evict it wholesale. *)

val truncate_proof : t -> path:string -> unit
(** Truncate the first legacy [.proof] entry written this process. *)

val skewed_source : t -> unit -> float
(** A {!Clock} source over {!Clock.real} that injects bounded,
    deterministic forward jumps (≤ 0.2 s cumulative).  Monotone. *)

val injected : t -> (Fault.Plan.engine_kind * int) list
(** Actual injection counts per kind (zero entries included). *)

val injected_total : t -> int

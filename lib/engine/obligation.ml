type outcome = {
  reports : Mirverif.Report.t list;
  log : string;
  findings : (string * Analysis.Lint.finding) list;
}

type t = {
  id : string;
  cache_id : string;
  phase : string;
  deps : string list;
  fingerprint : string;
  run : unit -> outcome;
  fallback : (unit -> outcome) option;
  on_outcome : (outcome -> unit) option;
}

let v ~id ?cache_id ~phase ?(deps = []) ~fingerprint ?fallback ?on_outcome run =
  let cache_id = Option.value cache_id ~default:id in
  { id; cache_id; phase; deps; fingerprint; run; fallback; on_outcome }

let outcome ?(log = "") ?(findings = []) reports = { reports; log; findings }

let failure_count o =
  List.fold_left (fun n r -> n + Mirverif.Report.failure_count r) 0 o.reports

let case_totals os =
  List.fold_left
    (fun (t, p, s, f) o ->
      List.fold_left
        (fun (t, p, s, f) (r : Mirverif.Report.t) ->
          ( t + r.Mirverif.Report.total,
            p + r.Mirverif.Report.passed,
            s + r.Mirverif.Report.skipped,
            f + Mirverif.Report.failure_count r ))
        (t, p, s, f) o.reports)
    (0, 0, 0, 0) os

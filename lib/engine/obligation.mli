(** A single schedulable unit of the verification pass.

    The pass is reified as a DAG of obligations: one per code-proof
    function, per refinement-simulation shard, per invariant /
    noninterference state batch, and per attack scenario.  An
    obligation is pure: [run] depends only on the inputs captured at
    plan-build time, so executing it on any worker domain, in any
    order, or replaying it from the proof cache yields the same
    outcome. *)

type outcome = {
  reports : Mirverif.Report.t list;
      (** the obligation's check reports, merged by the driver in
          obligation-id order — results are independent of scheduling *)
  log : string;
      (** deterministic human-readable lines (e.g. the attack-scenario
          verdict text), printed by the driver in id order *)
  findings : (string * Analysis.Lint.finding) list;
      (** lint findings tagged with the containing function, carried
          structurally so the driver can render them and emit
          [--lint-json] without re-parsing report text *)
}

type t = {
  id : string;  (** unique and stable, e.g. ["code-proof/PtMap/map_page"] *)
  cache_id : string;
      (** the id the proof cache keys on — equal to [id] except for
          obligations the serve batcher re-ids to disambiguate several
          merged plans in one DAG ([b3/code-proof/...]): those keep the
          canonical id here so a batched execution and a one-shot run
          share cache entries *)
  phase : string;  (** display/aggregation group, e.g. ["code-proofs"] *)
  deps : string list;  (** obligation ids that must complete first *)
  fingerprint : string;
      (** content description of every input the outcome depends on
          (MIRlight of the functions involved, layout geometry, seed,
          budgets); the cache key is a digest of this plus the engine
          version *)
  run : unit -> outcome;
  fallback : (unit -> outcome) option;
      (** degraded-mode evaluator for the supervisor's ladder: an
          observationally equivalent but more conservative way to
          discharge the same obligation (code proofs fall back from the
          compiled-closure battery to the reference interpreter).  Run
          once, after every [run] attempt has crashed; must depend on
          the same fingerprinted inputs, so its outcome is cacheable. *)
  on_outcome : (outcome -> unit) option;
      (** invoked by the pool with the obligation's outcome on {e every}
          completion path — live execution, crash placeholder, and cache
          hit alike — before dependents are released.  The hook behind
          the override-composition proven gate: a callee marks itself
          proven here, so its callers (DAG dependents) observe the mark
          no matter how the callee's outcome was obtained.  Must be
          thread-safe and idempotent: under engine chaos a respawned
          worker can re-execute an obligation whose hook already ran. *)
}

val v :
  id:string -> ?cache_id:string -> phase:string -> ?deps:string list ->
  fingerprint:string ->
  ?fallback:(unit -> outcome) -> ?on_outcome:(outcome -> unit) ->
  (unit -> outcome) -> t
(** [cache_id] defaults to [id]. *)

val outcome :
  ?log:string ->
  ?findings:(string * Analysis.Lint.finding) list ->
  Mirverif.Report.t list ->
  outcome
val failure_count : outcome -> int

val case_totals : outcome list -> int * int * int * int
(** (total, passed, skipped, failed) over the reports of a result set. *)

(** Supervised execution of a single obligation: per-attempt deadlines,
    deterministic retry with exponential backoff, a degradation ladder,
    and quarantine.

    {!Pool} routes every cache miss through {!supervise}.  With
    {!default} (no timeout, no retries, no chaos) the behaviour is
    byte-identical to the unsupervised pool: one attempt, any exception
    absorbed into the legacy one-failure crash report, never cached.

    Timeouts are cooperative.  OCaml domains cannot be interrupted
    asynchronously, so the supervisor arms a per-domain deadline
    ([Domain.DLS]) and installs the global [Mirverif.Cancel] hook;
    check batteries poll at case/trial boundaries, and once the
    {!Clock} passes the deadline the poll raises
    [Mirverif.Cancel.Deadline_exceeded], which the supervisor converts
    into a timed-out attempt.

    Every retry, backoff, and quarantine decision is a pure function of
    (config, obligation id, attempt number) — backoff jitter comes from
    a per-(seed, id, attempt) hash stream, never a shared RNG — so
    supervision decisions are identical at any job count and under any
    schedule.

    The ladder, in order: a crashed attempt is retried (with backoff)
    up to [retries] times; if every attempt crashed and the obligation
    carries a [fallback] (code proofs: the reference interpreter
    replacing the compiled-closure battery), the fallback runs once and
    its outcome — flagged as a divergence — stands in; otherwise the
    obligation is quarantined with a structured failure report.
    Corrupt cache entries (evict + recompute) and dead workers
    (respawn, then drain to survivors) are handled by {!Cache} and
    {!Pool} respectively. *)

type status = Ran_ok | Crashed of string  (** raw exception text *) | Timed_out

type attempt = {
  n : int;  (** 1-based attempt number *)
  status : status;
  injected : Fault.Plan.engine_kind option;
      (** the chaos fault applied to this attempt, if any *)
  backoff : float;
      (** delay slept before the next attempt; [0.] on the last *)
}

type resolution =
  | Completed  (** clean on the first attempt (or a cache hit) *)
  | Recovered  (** succeeded after at least one failed attempt *)
  | Fell_back  (** every attempt crashed; the fallback's outcome stands in *)
  | Quarantined  (** gave up; the outcome is a synthesized failure report *)

type trail = { attempts : attempt list;  (** chronological *) resolution : resolution }

val cached : trail
(** The trail of a cache hit: no attempts, [Completed]. *)

type result = {
  outcome : Obligation.outcome;
  trail : trail;
  cacheable : bool;
      (** whether [outcome] reflects the fingerprinted inputs (clean and
          fallback runs) rather than this run's misfortune (quarantine) *)
}

type config = {
  timeout : float option;  (** per-attempt deadline, seconds *)
  retries : int;  (** additional attempts after the first *)
  backoff_base : float;  (** seconds; doubles per attempt *)
  backoff_max : float;  (** cap on the nominal (pre-jitter) delay *)
  seed : int;  (** jitter stream seed *)
  sleep : float -> unit;  (** backoff/hang sleeper — mockable in tests *)
  chaos : Engine_chaos.t option;
}

val default : config
(** No timeout, no retries, no chaos — the unsupervised behaviour. *)

val supervise : config -> Obligation.t -> result

val backoff_delay : config -> id:string -> attempt:int -> float
(** The exact delay [supervise] sleeps after failed attempt [attempt]
    of obligation [id]: [min(backoff_max, base·2^(n-1)) · (1+jitter)],
    jitter in [0, 1) from the per-(seed, id, attempt) stream.  Exposed
    so tests and the trace can assert determinism. *)

val status_to_string : status -> string
(** ["ok"], ["crash"], ["timeout"]. *)

val resolution_to_string : resolution -> string

val eventful : trail -> bool
(** Anything beyond a clean single attempt or a cache hit — the trails
    worth a trace event and a summary line. *)

type totals = {
  supervised : int;  (** obligations with an eventful trail *)
  retried : int;  (** obligations that took more than one attempt *)
  recovered : int;
  fell_back : int;
  quarantined : int;
  timeouts : int;  (** timed-out attempts, summed *)
  crashes : int;  (** crashed attempts, summed *)
}

val totals : trail list -> totals

(* The engine's single time source.  Everything that timestamps work
   (obligation started/finished, pool wall-clock) reads this module, so
   tests can substitute a deterministic source and the choice of OS
   clock lives in exactly one place.

   [Unix.gettimeofday] is wall time and may step backwards under NTP;
   the monotonic clamp below makes the published sequence non-decreasing
   across domains, which is all the schedule metadata needs. *)

let gettimeofday = Unix.gettimeofday

(* last value handed out; CAS loop so concurrent domains never observe
   time running backwards *)
let last = Atomic.make neg_infinity

let rec clamp t =
  let l = Atomic.get last in
  if t >= l then if Atomic.compare_and_set last l t then t else clamp t
  else l

let real () = clamp (gettimeofday ())

let source = Atomic.make real

let now () = (Atomic.get source) ()

let with_source f thunk =
  let prev = Atomic.get source in
  Atomic.set source f;
  Fun.protect ~finally:(fun () -> Atomic.set source prev) thunk

(** The engine's single time source.

    All schedule timestamps ([Pool.exec]'s [started]/[finished], the
    pool's wall-clock origin) come from {!now}, so swapping the clock —
    for deterministic tests, or for a different OS clock — happens in
    one place.  The default source is [Unix.gettimeofday] behind a
    monotonic clamp: concurrent domains never observe the published
    time running backwards, even if the wall clock steps. *)

val now : unit -> float
(** Seconds from the current source (default: monotonically clamped
    [Unix.gettimeofday]). *)

val real : unit -> float
(** The default source itself: monotonically clamped
    [Unix.gettimeofday], regardless of any {!with_source} override in
    effect.  Wrappers (e.g. the chaos harness's skewed clock) build on
    this so they stay anchored to the OS clock. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source f thunk] runs [thunk] with {!now} reading from [f],
    restoring the previous source afterwards (also on exceptions).
    Intended for tests that need deterministic timestamps. *)

(* Chaos for the checker: deterministic fault injection against the
   verification engine itself.

   [lib/fault] perturbs the *monitor under verification*; this module
   perturbs the *engine* — obligations crash or hang, worker domains
   die, cache pack files tear, legacy proof entries truncate, and the
   clock skews — so CI can assert that the supervised pool still
   terminates and produces verdicts byte-identical to a clean run.

   Every decision is a pure function of (seed, site tag): which
   obligation faults, with what kind, and for how many attempts is
   independent of scheduling, job count, and wall-clock, so a fixed
   seed replays the exact same fault plan.  The only
   schedule-dependent aspect is *which worker* observes a fault (e.g.
   who picks up a kill-marked obligation first) — never *what* is
   injected or what the verdicts are.

   Injection is bounded by construction: an obligation is never
   faulted on more consecutive attempts than the supervisor's retry
   budget can absorb (the supervisor clamps persistence to its retry
   count), and a kill-marked obligation kills only its first executor.
   Chaos therefore proves recovery; quarantine itself is exercised by
   direct supervisor tests, not by this harness. *)

module Plan = Fault.Plan

exception Worker_killed of string

type fault = No_fault | Crash of int | Hang of int

type t = {
  seed : int;
  kinds : Plan.engine_kind list;
  rate : int;  (* one in [rate] obligations draws a fault *)
  counters : (Plan.engine_kind * int Atomic.t) list;
  (* per-site visit counts: makes "fault only the first occurrence"
     decisions deterministic in *count* even when the visiting worker
     varies with the schedule *)
  visits : (string, int) Hashtbl.t;
  visits_mu : Mutex.t;
  skew : float Atomic.t;  (* cumulative injected clock skew, seconds *)
}

let create ?(kinds = Plan.all_engine_kinds) ?(rate = 8) ~seed () =
  if rate < 1 then invalid_arg "Engine_chaos.create: rate must be >= 1";
  {
    seed;
    kinds;
    rate;
    counters = List.map (fun k -> (k, Atomic.make 0)) Plan.all_engine_kinds;
    visits = Hashtbl.create 64;
    visits_mu = Mutex.create ();
    skew = Atomic.make 0.0;
  }

let seed t = t.seed
let kinds t = t.kinds
let enabled t k = List.mem k t.kinds

let note t k = Atomic.incr (List.assoc k t.counters)

let injected t =
  List.map (fun (k, c) -> (k, Atomic.get c)) t.counters

let injected_total t =
  List.fold_left (fun n (_, c) -> n + Atomic.get c) 0 t.counters

(* Deterministic per-site stream: seed and tag in, well-mixed
   non-negative int out.  The same multiplicative fold as
   [Plan.stream_seed] so site streams are decorrelated from the
   generator streams of the obligations themselves. *)
let hash t tag =
  let h = ref (t.seed + 0x45D9F3B) in
  String.iter (fun c -> h := (!h * 131) + Char.code c) tag;
  let w, _ = Check.Rng.next (Check.Rng.make (!h land 0x3FFF_FFFF)) in
  Int64.to_int (Int64.logand w 0x3FFF_FFFFL)

(* true exactly on the first visit of [site], across all workers *)
let first_visit t site =
  Mutex.lock t.visits_mu;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.visits site) in
  Hashtbl.replace t.visits site (n + 1);
  Mutex.unlock t.visits_mu;
  n = 0

(* ------------------------------------------------------------------ *)
(* Hook: obligation execution                                          *)

let obl_fault t ~id =
  let h = hash t ("obl/" ^ id) in
  if h mod t.rate <> 0 then No_fault
  else
    (* persist for 1 or 2 attempts — the supervisor additionally clamps
       this to its retry budget, so the final attempt is always clean *)
    let persist = 1 + (h / t.rate) mod 2 in
    let crash = enabled t Plan.Obl_crash and hang = enabled t Plan.Obl_hang in
    match (crash, hang) with
    | false, false -> No_fault
    | true, false -> Crash persist
    | false, true -> Hang persist
    | true, true -> if (h / 7) mod 4 = 0 then Hang persist else Crash persist

(* ------------------------------------------------------------------ *)
(* Hook: worker scheduling                                             *)

(* Kill the worker about to execute (site "pre-exec") or about to
   publish (site "post-exec") obligation [id] — but only the first
   executor: the re-pushed obligation must eventually run. *)
let kill_worker t ~site ~id =
  enabled t Plan.Worker_kill
  && hash t (Printf.sprintf "kill/%s/%s" site id) mod (t.rate * 4) = 0
  && first_visit t (Printf.sprintf "kill/%s/%s" site id)
  && begin
       note t Plan.Worker_kill;
       true
     end

(* ------------------------------------------------------------------ *)
(* Hook: cache files                                                   *)

let truncate_file path =
  match (Unix.stat path).Unix.st_size with
  | exception Unix.Unix_error _ -> ()
  | size when size < 2 -> ()
  | size -> ( try Unix.truncate path (size / 2) with Unix.Unix_error _ -> ())

(* Tear the first pack file this process writes: the in-memory index
   keeps the current run warm, but the next [Cache.create] must evict
   the torn pack wholesale and recompute cold. *)
let tear_pack t ~path =
  if enabled t Plan.Torn_pack && first_visit t "tear-pack" then begin
    truncate_file path;
    note t Plan.Torn_pack
  end

(* Truncate the first legacy [.proof] entry written: the next [find]
   must degrade to a miss and evict it. *)
let truncate_proof t ~path =
  if enabled t Plan.Truncated_proof && first_visit t "truncate-proof" then begin
    truncate_file path;
    note t Plan.Truncated_proof
  end

(* ------------------------------------------------------------------ *)
(* Hook: the clock                                                     *)

let max_skew = 0.2 (* seconds, cumulative — small against any sane deadline *)

(* A time source that occasionally jumps forward by a deterministic
   (per jump index) amount, bounded by [max_skew] in total.  Always
   monotone: skew only grows, and the base is the clamped real clock,
   so the supervisor's deadlines stay meaningful while timestamps
   wobble. *)
let skewed_source t =
  if not (enabled t Plan.Clock_skew) then Clock.real
  else
    let calls = Atomic.make 0 in
    fun () ->
      let n = Atomic.fetch_and_add calls 1 in
      if n land 255 = 0 && Atomic.get t.skew < max_skew then begin
        let bump = float_of_int (hash t (Printf.sprintf "skew/%d" n) mod 997) *. 1e-5 in
        let rec add () =
          let s = Atomic.get t.skew in
          if s < max_skew && not (Atomic.compare_and_set t.skew s (s +. bump)) then
            add ()
        in
        add ();
        note t Plan.Clock_skew
      end;
      Clock.real () +. Atomic.get t.skew

(** Content-addressed proof-result cache.

    An obligation's outcome is stored under a digest of (engine
    version, phase, id, fingerprint).  The fingerprint captures every
    input the outcome depends on — for code-proof obligations the
    MIRlight of the function and of every layer at or below it, the
    layout geometry, and the seed — so a warm run skips unchanged
    obligations, and editing one Rustlite function invalidates exactly
    that function's obligation and its dependents (whose fingerprints
    include the edited MIR), nothing below it.

    Two storage tiers share the key space.  The pool's path is batched:
    {!stash} buffers outcomes in memory and {!flush} appends them all
    as one per-run pack file ([*.pack]), whose entries are loaded into
    an in-memory index at {!create} — a cold run costs one file write
    instead of one per obligation.  The legacy per-entry path
    ([<key>.proof], written by {!store}) is still read, so caches from
    older engines stay warm.

    Entries are [Marshal]ed with a magic header carrying the OCaml
    version; any mismatch, truncation, or IO error degrades to a cache
    miss, and the unreadable file (pack or per-entry) is unlinked — its
    keys already encode version and fingerprint, so it can never become
    valid again.  Writes are write-to-temp + atomic rename, safe under
    concurrent workers and concurrent runs.  {!stash}/{!find} are
    mutex-guarded and safe from worker domains. *)

type t

val version : string
(** Engine/cache format version; part of every key.  Bump when check
    semantics change — the OCaml harness code is not fingerprinted. *)

val create : dir:string -> t
(** Creates [dir] (and parents) when missing and loads every readable
    pack file into the index.  Raises [Invalid_argument] with a
    readable message when [dir] is empty or cannot be created. *)

val key : Obligation.t -> string
(** Hex digest naming the obligation's cache entry — computed over
    (engine version, phase, [cache_id], fingerprint), so batch-re-id'd
    obligations (serve) share entries with their one-shot twins. *)

val refresh : t -> int
(** Merge packs that appeared in the directory since {!create} (or the
    last refresh) into the index — the fleet's warm-sharing path: a
    proof flushed by one worker process becomes a hit for all.  Safe
    against packs appearing or being evicted mid-scan (renames are
    atomic; a vanished pack is a miss).  Returns the number of new
    packs merged. *)

val find : t -> Obligation.t -> Obligation.outcome option
(** Pending buffer, then pack index, then legacy per-entry file —
    defined tier precedence, so a stale legacy [.proof] can never
    shadow a fresher pack entry.  When the pack tier wins, any legacy
    file under the same key is evicted on the way out. *)

val stash : t -> Obligation.t -> Obligation.outcome -> unit
(** Buffer an outcome for the next {!flush}.  Visible to {!find}
    immediately; durable only after {!flush}. *)

val flush : t -> unit
(** Write all stashed outcomes as one new pack file and merge them into
    the index.  A no-op when nothing is pending.  [Pool.run] calls this
    once per run.  The pack write holds an advisory [lockf] on
    [<dir>/.lock], serializing flushes across processes sharing the
    directory; readers never take the lock (renames are atomic). *)

val store : t -> Obligation.t -> Obligation.outcome -> unit
(** Legacy write-through path: one [<key>.proof] file per entry. *)

val entry_count : t -> int
(** Number of distinct keys across the index, the pending buffer, and
    legacy per-entry files (diagnostics). *)

val write_failures : t -> (string * string) list
(** Every absorbed write failure so far, oldest first, as
    [(op, message)] with [op] one of ["flush"] / ["store"].  A write
    failure only degrades the cache (the next run recomputes), so
    {!flush} and {!store} do not raise — but they record here, and the
    driver surfaces the records as trace events and a summary counter
    instead of losing them.  [Out_of_memory] and [Stack_overflow] are
    never absorbed. *)

val write_failure_count : t -> int

val set_chaos : t -> Engine_chaos.t -> unit
(** Arm the chaos harness's cache hooks: the first pack written after
    {!flush}'s rename may be torn, the first legacy [.proof] entry
    written by {!store} may be truncated (both at the harness's
    deterministic discretion).  Corruption lands *after* the atomic
    rename, modelling a torn write that fsync would have caught. *)

(** Content-addressed proof-result cache.

    An obligation's outcome is stored under a digest of (engine
    version, phase, id, fingerprint).  The fingerprint captures every
    input the outcome depends on — for code-proof obligations the
    MIRlight of the function and of every layer at or below it, the
    layout geometry, and the seed — so a warm run skips unchanged
    obligations, and editing one Rustlite function invalidates exactly
    that function's obligation and its dependents (whose fingerprints
    include the edited MIR), nothing below it.

    Entries are [Marshal]ed with a magic header carrying the OCaml
    version; any mismatch, truncation, or IO error degrades to a cache
    miss, and the unreadable file is unlinked (its key already encodes
    version and fingerprint, so it can never become valid again).
    Stores are write-to-temp + atomic rename, safe under concurrent
    workers. *)

type t

val version : string
(** Engine/cache format version; part of every key.  Bump when check
    semantics change — the OCaml harness code is not fingerprinted. *)

val create : dir:string -> t
(** Creates [dir] (and parents) when missing.  Raises [Invalid_argument]
    with a readable message when [dir] is empty or cannot be created. *)

val key : Obligation.t -> string
(** Hex digest naming the obligation's cache entry. *)

val find : t -> Obligation.t -> Obligation.outcome option
val store : t -> Obligation.t -> Obligation.outcome -> unit

val entry_count : t -> int
(** Number of entries on disk (diagnostics). *)

(** The obligation graph.

    A validated DAG over {!Obligation.t}: ids are unique, every edge
    points at a known obligation, and the graph is acyclic (checked by
    Kahn's algorithm at build time, so the worker pool can never
    deadlock on an unsatisfiable dependency).  The insertion order of
    the obligations is preserved — it is the deterministic order the
    driver merges and prints results in, independent of how the pool
    schedules the work. *)

type t

val build : Obligation.t list -> (t, string) result
val build_exn : Obligation.t list -> t

val obligations : t -> Obligation.t list
(** In insertion order. *)

val size : t -> int
val find : t -> string -> Obligation.t option
val deps_of : t -> string -> string list
val dependents_of : t -> string -> string list

val reaches : t -> src:string -> dst:string -> bool
(** Does [src] transitively depend on [dst]?  (Used by the tests to
    assert the stratification edges.) *)

(** Minimal JSON emission and parsing (no external dependency).

    The engine's observability outputs — the per-obligation JSONL trace
    and the machine-readable run summary — are plain JSON consumed by
    the bench harness and the CI gate.  The serve wire protocol
    (lib/serve) additionally reads JSON back with {!parse}.  (The proof
    cache still uses [Marshal] keyed by a content digest instead.) *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
val to_string : t -> string

val to_multiline_string : t -> string
(** Top-level object with one field per line (scalars) and one list
    element per line — greppable by the CI shell gate. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value spanning the whole string (trailing
    content is an error).  Numbers without a fraction or exponent parse
    as [Int] (falling back to [Float] on overflow); [\uXXXX] escapes —
    surrogate pairs included — decode to UTF-8 bytes.  Container
    nesting is bounded (512 levels): deeper input is an [Error], never
    a [Stack_overflow] — the serve daemon feeds this untrusted frames.
    Never raises: malformed input yields [Error] with the byte
    offset. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on a missing field or a non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

val write_file : string -> string -> unit
val write_lines : string -> t list -> unit
(** JSONL: one value per line. *)

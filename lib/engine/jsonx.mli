(** Minimal JSON emission (no external dependency).

    The engine's observability outputs — the per-obligation JSONL trace
    and the machine-readable run summary — are plain JSON consumed by
    the bench harness and the CI gate.  Emission only; nothing in the
    engine parses JSON back (the proof cache uses [Marshal] keyed by a
    content digest instead). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
val to_string : t -> string

val to_multiline_string : t -> string
(** Top-level object with one field per line (scalars) and one list
    element per line — greppable by the CI shell gate. *)

val write_file : string -> string -> unit
val write_lines : string -> t list -> unit
(** JSONL: one value per line. *)

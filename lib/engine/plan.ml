open Hyperenclave
module Report = Mirverif.Report

type mc_request = {
  mc_depth : int;
  mc_por : bool;
  mc_flush : bool;
  mc_layout : Layout.t;
}

type t = {
  dag : Dag.t;
  layout : Layout.t;
  seed : int;
  quick : bool;
  security : bool;
  lints : Analysis.Lint.kind list;
  model_check : mc_request option;
  overrides : bool;
  override_counts : (string * int) list;
}

let phases =
  [
    "analysis";
    "absint";
    "borrow";
    "alias";
    "code-proofs";
    "refinement";
    "invariants";
    "noninterference";
    "trace-ni";
    "attacks";
    "model-check";
  ]

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

let geometry_fp (g : Geometry.t) =
  Printf.sprintf "geom{levels=%d;index_bits=%d;page_shift=%d;fb=%d,%d,%d,%d}"
    g.Geometry.levels g.Geometry.index_bits g.Geometry.page_shift g.Geometry.fb_present
    g.Geometry.fb_write g.Geometry.fb_user g.Geometry.fb_huge

let layout_fp (l : Layout.t) =
  Printf.sprintf
    "%s;layout{normal=%Lx+%d;mbuf=%Lx+%d;monitor=%Lx+%d;frames=%Lx+%d;epc=%Lx+%d}"
    (geometry_fp l.Layout.geom) l.Layout.normal_base l.Layout.normal_pages l.Layout.mbuf_base
    l.Layout.mbuf_pages l.Layout.monitor_base l.Layout.monitor_pages l.Layout.frame_base
    l.Layout.frame_count l.Layout.epc_base l.Layout.epc_pages

(* ------------------------------------------------------------------ *)
(* Per-obligation RNG streams                                          *)

(* A distinct deterministic stream per obligation, split from the run
   seed and a stable obligation tag: results cannot depend on which
   worker picks the obligation up or in what order. *)
let stream_seed ~seed tag =
  let h = ref seed in
  String.iter (fun c -> h := (!h * 131) + Char.code c) tag;
  let w, _ = Check.Rng.next (Check.Rng.make !h) in
  Int64.to_int (Int64.logand w 0x3FFF_FFFFL)

(* ------------------------------------------------------------------ *)
(* Phase 3: static analysis (MIRlight dataflow lints)                  *)

let analysis_version = "mirlight-analysis-v1"
let analysis_id ~layer fn = Printf.sprintf "analysis/%s/%s" layer fn

(* The accessor relation for the encapsulation lint: a handle of layer
   L may flow to L's own functions and to the trusted primitives (the
   getter/setter set every layer's RData is reached through). *)
let handle_accessor layout =
  let trusted =
    List.map (fun (s : Absdata.t Mirverif.Spec.t) -> s.Mirverif.Spec.name) Trusted.all
  in
  fun ~owner ~callee ->
    List.mem callee trusted || Layers.layer_of_function layout callee = Some owner

let analysis_obligations ?(lints = Analysis.Lint.all) layout =
  let out = Layers.compiled layout in
  let accessor = handle_accessor layout in
  let body_lints = Analysis.Pass.body_lints lints in
  let lint_tags = String.concat "," (List.map Analysis.Lint.to_string body_lints) in
  List.concat_map
    (fun lname ->
      List.map
        (fun fn ->
          let id = analysis_id ~layer:lname fn in
          (* deliberately independent of layout geometry and of other
             bodies: the lints read exactly one function's MIRlight, so
             the cache entry survives anything that doesn't change it *)
          let fingerprint =
            let mir =
              match Mir.Syntax.find_body out.Rustlite.Pipeline.program fn with
              | Some body -> Digest.to_hex (Digest.string (Mir.Pp.body_to_string body))
              | None -> "missing"
            in
            Printf.sprintf "%s;lints=%s;layer=%s;fn=%s;mir=%s" analysis_version
              lint_tags lname fn mir
          in
          Obligation.v ~id ~phase:"analysis" ~deps:[] ~fingerprint (fun () ->
              match Mir.Syntax.find_body out.Rustlite.Pipeline.program fn with
              | Some body ->
                  let cfg =
                    { Analysis.Pass.fn_layer = Some lname; accessor; lints = body_lints }
                  in
                  let findings = Analysis.Pass.analyze cfg body in
                  Obligation.outcome
                    ~findings:(List.map (fun f -> (fn, f)) findings)
                    [ Analysis.Pass.report ~name:fn ~lints:body_lints findings ]
              | None ->
                  Obligation.outcome
                    [
                      Report.add_failure (Report.empty fn) ~case:fn
                        ~reason:"layer lists a function with no MIRlight body";
                    ]))
        (Layers.functions_of_layer layout lname))
    Mem_spec.layer_names

(* ------------------------------------------------------------------ *)
(* Phase 3c: NLL-style borrow checking, per function                   *)

let borrow_version = "mirlight-borrow-v1"
let borrow_id ~layer fn = Printf.sprintf "borrow/%s/%s" layer fn

let borrow_obligations ?(lints = Analysis.Lint.catalogue) layout =
  let selected = List.filter (fun k -> List.mem k Analysis.Lint.borrow) lints in
  if selected = [] then []
  else begin
    let out = Layers.compiled layout in
    let lint_tags = String.concat "," (List.map Analysis.Lint.to_string selected) in
    List.concat_map
      (fun lname ->
        List.map
          (fun fn ->
            let id = borrow_id ~layer:lname fn in
            (* intraprocedural like the analysis phase: the regions and
               loans of one body never see another, so the fingerprint
               is the function's own MIRlight digest and nothing else *)
            let fingerprint =
              let mir =
                match Mir.Syntax.find_body out.Rustlite.Pipeline.program fn with
                | Some body ->
                    Digest.to_hex (Digest.string (Mir.Pp.body_to_string body))
                | None -> "missing"
              in
              Printf.sprintf "%s;lints=%s;layer=%s;fn=%s;mir=%s" borrow_version
                lint_tags lname fn mir
            in
            Obligation.v ~id ~phase:"borrow" ~deps:[] ~fingerprint (fun () ->
                match Mir.Syntax.find_body out.Rustlite.Pipeline.program fn with
                | Some body ->
                    let report, findings, _stats =
                      Analysis.Borrow_lint.check ~lints:selected ~name:fn body
                    in
                    Obligation.outcome
                      ~findings:(List.map (fun f -> (fn, f)) findings)
                      [ report ]
                | None ->
                    Obligation.outcome
                      [
                        Report.add_failure (Report.empty fn) ~case:fn
                          ~reason:"layer lists a function with no MIRlight body";
                      ]))
          (Layers.functions_of_layer layout lname))
      Mem_spec.layer_names
  end

(* ------------------------------------------------------------------ *)
(* Phase 3b: interprocedural abstract interpretation, per SCC          *)

let absint_version = "mirlight-absint-v1"
let absint_id ~domain scc = Printf.sprintf "absint/%s/%s" domain scc

(* One report per SCC obligation: a pass per analyzed function and per
   discharge certificate, a failure per [Error] finding. *)
let absint_report ~name ~functions findings =
  let rep =
    List.fold_left
      (fun rep (fn, (f : Analysis.Lint.finding)) ->
        match f.Analysis.Lint.severity with
        | Analysis.Lint.Info -> Report.add_pass rep
        | Analysis.Lint.Error ->
            Report.add_failure rep
              ~case:
                (Printf.sprintf "%s %s@%s"
                   (Analysis.Lint.to_string f.Analysis.Lint.kind)
                   fn f.Analysis.Lint.where)
              ~reason:f.Analysis.Lint.detail)
      (Report.empty name) findings
  in
  List.fold_left (fun rep _ -> Report.add_pass rep) rep functions

let absint_obligations ?(lints = Analysis.Lint.catalogue) layout =
  let domains =
    (if List.mem Analysis.Lint.Interval_bounds lints then [ "interval" ] else [])
    @ if List.mem Analysis.Lint.Secret_flow lints then [ "secret-flow" ] else []
  in
  if domains = [] then []
  else begin
    let out = Layers.compiled layout in
    let program = out.Rustlite.Pipeline.program in
    let cg = Analysis.Callgraph.build program in
    let sccs = Array.of_list (Analysis.Callgraph.sccs cg) in
    let scc_name members = String.concat "+" members in
    let digest_of fn =
      match Mir.Syntax.find_body program fn with
      | Some body -> Digest.to_hex (Digest.string (Mir.Pp.body_to_string body))
      | None -> "missing"
    in
    List.concat_map
      (fun domain ->
        List.map
          (fun members ->
            let name = scc_name members in
            let id = absint_id ~domain name in
            (* summaries flow callees-first, so an SCC's verdict depends
               on (and its obligation waits for) its callee SCCs *)
            let deps =
              List.map
                (fun i -> absint_id ~domain (scc_name sccs.(i)))
                (Analysis.Callgraph.callee_sccs cg members)
            in
            let mir =
              String.concat ","
                (List.map
                   (fun fn -> fn ^ "=" ^ digest_of fn)
                   (Analysis.Callgraph.reachable cg members))
            in
            (* the taint verdict additionally depends on the layout (the
               secret/sink policy is derived from it); intervals don't,
               so their entries survive layout changes that leave the
               reachable MIR alone *)
            let fingerprint =
              match domain with
              | "secret-flow" ->
                  Printf.sprintf "%s;domain=%s;%s;scc=%s;mir=%s" absint_version
                    domain (layout_fp layout) name mir
              | _ ->
                  Printf.sprintf "%s;domain=%s;scc=%s;mir=%s" absint_version
                    domain name mir
            in
            Obligation.v ~id ~phase:"absint" ~deps ~fingerprint (fun () ->
                let findings =
                  match domain with
                  | "secret-flow" ->
                      fst
                        (Analysis.Secret_flow.check
                           (Security.Labels.secret_flow_config layout program)
                           ~funcs:members)
                  | _ -> fst (Analysis.Interval_lint.check program ~funcs:members)
                in
                Obligation.outcome ~findings
                  [ absint_report ~name:id ~functions:members findings ]))
          (Array.to_list sccs))
      domains
  end

(* ------------------------------------------------------------------ *)
(* Phase 3d: Andersen points-to footprints, per SCC                    *)

let alias_version = "mirlight-alias-v1"
let alias_id scc = Printf.sprintf "alias/points-to/%s" scc

let alias_obligations ?(lints = Analysis.Lint.catalogue) layout =
  if not (List.mem Analysis.Lint.Alias_footprint lints) then []
  else begin
    let out = Layers.compiled layout in
    let program = out.Rustlite.Pipeline.program in
    let cg = Analysis.Callgraph.build program in
    let sccs = Array.of_list (Analysis.Callgraph.sccs cg) in
    let scc_name members = String.concat "+" members in
    let digest_of fn =
      match Mir.Syntax.find_body program fn with
      | Some body -> Digest.to_hex (Digest.string (Mir.Pp.body_to_string body))
      | None -> "missing"
    in
    let cfg =
      {
        Analysis.Alias_lint.program;
        prim = Check.Code_proof.prim_summary;
        fn_layer = Layers.layer_of_function layout;
        accessor = handle_accessor layout;
      }
    in
    List.map
      (fun members ->
        let name = scc_name members in
        let id = alias_id name in
        (* footprints substitute callee summaries actual-for-formal, so
           like absint the verdict waits on the callee SCCs *)
        let deps =
          List.map
            (fun i -> alias_id (scc_name sccs.(i)))
            (Analysis.Callgraph.callee_sccs cg members)
        in
        let mir =
          String.concat ","
            (List.map
               (fun fn -> fn ^ "=" ^ digest_of fn)
               (Analysis.Callgraph.reachable cg members))
        in
        (* the discharge side consults the layer map and interval
           reachability, both layout-derived, so the layout is a
           fingerprint ingredient like secret-flow's *)
        let fingerprint =
          Printf.sprintf "%s;%s;scc=%s;mir=%s" alias_version (layout_fp layout)
            name mir
        in
        Obligation.v ~id ~phase:"alias" ~deps ~fingerprint (fun () ->
            let findings, _stats =
              Analysis.Alias_lint.check cfg ~funcs:members
            in
            Obligation.outcome ~findings
              [ absint_report ~name:id ~functions:members findings ]))
      (Array.to_list sccs)
  end

(* ------------------------------------------------------------------ *)
(* Phase 4: per-function code proofs                                   *)

let code_proof_id ~layer fn = Printf.sprintf "code-proof/%s/%s" layer fn
let code_proof_version = "code-proof-compose-v1"

(* Legacy monolithic plan shape, preserved byte-for-byte behind
   [--no-overrides]: layer-barrier dependency edges, and fingerprints
   digesting the whole MIR closure at and below the function's layer. *)
let monolithic_code_proof_obligations ?(seed = 2024) layout =
  let ctx = Check.Code_proof.ctx ~seed layout in
  let out = Layers.compiled layout in
  let base_fp = Printf.sprintf "%s;seed=%d" (layout_fp layout) seed in
  (* MIR accumulated bottom-up: a function's fingerprint digests its
     own layer's MIR plus everything below, so editing one Rustlite
     function invalidates exactly that layer and the layers above *)
  let mir_below = Buffer.create 4096 in
  let _, obls =
    List.fold_left
      (fun ((prev_layer_ids : string list), acc) lname ->
        let fns = Layers.functions_of_layer layout lname in
        if fns = [] then (prev_layer_ids, acc)
        else begin
          List.iter
            (fun fn ->
              match Mir.Syntax.find_body out.Rustlite.Pipeline.program fn with
              | Some body ->
                  Buffer.add_string mir_below (Mir.Pp.body_to_string body);
                  Buffer.add_char mir_below '\n'
              | None -> ())
            fns;
          let mir_digest = Digest.to_hex (Digest.string (Buffer.contents mir_below)) in
          let ids =
            List.map
              (fun fn ->
                let id = code_proof_id ~layer:lname fn in
                let fingerprint =
                  Printf.sprintf "%s;fn=%s;mir<=%s=%s" base_fp fn lname mir_digest
                in
                let outcome_of = function
                  | Some (_, report) -> Obligation.outcome [ report ]
                  | None ->
                      Obligation.outcome
                        [
                          Report.add_failure (Report.empty fn) ~case:fn
                            ~reason:"no spec owns this function";
                        ]
                in
                (* degradation ladder: when the compiled-closure battery
                   crashes, the supervisor re-discharges the obligation
                   under the reference interpreter — the same cases over
                   the same fingerprinted inputs, pinned observationally
                   equivalent by the differential suite *)
                Obligation.v ~id ~phase:"code-proofs" ~deps:prev_layer_ids ~fingerprint
                  ~fallback:(fun () ->
                    outcome_of (Check.Code_proof.run_function_interp ctx fn))
                  (fun () -> outcome_of (Check.Code_proof.run_function ctx fn)))
              fns
          in
          (List.map (fun (o : Obligation.t) -> o.Obligation.id) ids, acc @ [ (lname, ids) ])
        end)
      ([], []) Mem_spec.layer_names
  in
  obls

(* Override-composed plan shape.  Dependency edges follow the call
   graph instead of layer barriers — a caller waits on exactly the
   spec-owned functions it calls directly, because those are the specs
   its composed run executes — and fingerprints shrink from the
   reachable-closure digest to (own body + directly-used callee
   specs), so editing one function invalidates exactly itself and its
   direct callers.  The composed executor is gated on the callees
   actually being proven: each callee obligation marks itself in the
   [proven] set from the pool's [on_outcome] hook (which fires on
   live, crashed, and cached completion paths alike, before dependents
   are released), and a caller whose gate is closed — e.g. a callee
   quarantined by engine chaos — falls back to the monolithic battery
   rather than assuming an unproven spec.  Both executors produce
   identical verdicts (pinned by the differential suite), so the
   choice is invisible to reports, stdout, and the cache. *)
let composed_code_proof_obligations ?(seed = 2024) layout =
  let ctx = Check.Code_proof.ctx ~seed layout in
  let program = (Layers.compiled layout).Rustlite.Pipeline.program in
  let base_fp = Printf.sprintf "%s;seed=%d" (layout_fp layout) seed in
  let digest_of fn =
    match Mir.Syntax.find_body program fn with
    | Some body -> Digest.to_hex (Digest.string (Mir.Pp.body_to_string body))
    | None -> "missing"
  in
  let proven : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let proven_mu = Mutex.create () in
  let mark fn (o : Obligation.outcome) =
    if Obligation.failure_count o = 0 then begin
      Mutex.lock proven_mu;
      if not (Hashtbl.mem proven fn) then Hashtbl.add proven fn ();
      Mutex.unlock proven_mu
    end
  in
  let is_proven fn =
    Mutex.lock proven_mu;
    let r = Hashtbl.mem proven fn in
    Mutex.unlock proven_mu;
    r
  in
  List.filter_map
    (fun lname ->
      let fns = Layers.functions_of_layer layout lname in
      if fns = [] then None
      else
        Some
          ( lname,
            List.map
              (fun fn ->
                let id = code_proof_id ~layer:lname fn in
                let callees = Check.Code_proof.callees layout fn in
                let stubs = Check.Code_proof.same_layer_callees layout fn in
                let uses =
                  String.concat ","
                    (List.map
                       (fun g -> g ^ "=" ^ digest_of g)
                       (List.sort String.compare callees))
                in
                let fingerprint =
                  Printf.sprintf "%s;%s;fn=%s;own=%s;uses=%s" code_proof_version
                    base_fp fn (digest_of fn) uses
                in
                let deps =
                  List.filter_map
                    (fun g ->
                      Option.map
                        (fun gl -> code_proof_id ~layer:gl g)
                        (Layers.layer_of_function layout g))
                    callees
                in
                let outcome_of = function
                  | Some (_, report) -> Obligation.outcome [ report ]
                  | None ->
                      Obligation.outcome
                        [
                          Report.add_failure (Report.empty fn) ~case:fn
                            ~reason:"no spec owns this function";
                        ]
                in
                Obligation.v ~id ~phase:"code-proofs" ~deps ~fingerprint
                  ~fallback:(fun () ->
                    outcome_of (Check.Code_proof.run_function_interp ctx fn))
                  ~on_outcome:(mark fn)
                  (fun () ->
                    if stubs <> [] && List.for_all is_proven stubs then
                      outcome_of (Check.Code_proof.run_function_composed ctx fn)
                    else outcome_of (Check.Code_proof.run_function ctx fn)))
              fns ))
    Mem_spec.layer_names

let code_proof_obligations ?(seed = 2024) ?(overrides = true) layout =
  if overrides then composed_code_proof_obligations ~seed layout
  else monolithic_code_proof_obligations ~seed layout

(* Per-function same-layer stub counts: the number of call-graph edges
   override composition replaces with contract stubs.  Deterministic
   in the layout alone, reported through [--json-out]. *)
let override_counts layout =
  List.concat_map
    (fun lname ->
      List.map
        (fun fn ->
          (fn, List.length (Check.Code_proof.same_layer_callees layout fn)))
        (Layers.functions_of_layer layout lname))
    Mem_spec.layer_names

let function_layer_ids obls_by_layer lname =
  match List.assoc_opt lname obls_by_layer with
  | Some obls -> List.map (fun (o : Obligation.t) -> o.Obligation.id) obls
  | None -> []

let last_layer_ids obls_by_layer =
  match List.rev obls_by_layer with
  | (_, obls) :: _ -> List.map (fun (o : Obligation.t) -> o.Obligation.id) obls
  | [] -> []

(* ------------------------------------------------------------------ *)
(* Phase 4: flat/tree refinement simulation, sharded                   *)

let refinement_trials ~quick = if quick then 20 else 50
let refinement_shards = 10

(* One shard: [trials] random lock-step op sequences applied to both
   views, R checked throughout — the sequential phase 4 body with an
   explicit RNG stream. *)
let run_refinement_shard layout ~stream ~trials =
  let rng = ref (Check.Rng.make stream) in
  let page i =
    Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)
  in
  let report = ref (Report.empty "flat/tree simulation (R)") in
  for trial = 1 to trials do
    (* trial boundaries are this battery's cancellation points *)
    Mirverif.Cancel.poll ();
    let d = Absdata.create layout in
    match Pt_flat.create_table d with
    | Error msg -> report := Report.add_failure !report ~case:"create" ~reason:msg
    | Ok (d, root) -> (
        match Pt_refine.abstract d ~root with
        | Error msg -> report := Report.add_failure !report ~case:"abstract" ~reason:msg
        | Ok tree ->
            let d = ref d and tree = ref tree in
            let okay = ref true in
            for _ = 1 to 20 do
              if !okay then begin
                let kind, r1 = Check.Rng.int_below !rng 3 in
                let v, r2 = Check.Rng.int_below r1 16 in
                let p, r3 = Check.Rng.int_below r2 8 in
                rng := r3;
                let va = page v and pa = page p in
                let huge_mask = Int64.lognot (Int64.sub (page 4) 1L) in
                let fr =
                  match kind with
                  | 0 ->
                      ( Pt_flat.map_page !d ~root ~va ~pa Flags.user_rw,
                        Pt_tree.map_page !tree ~va ~pa Flags.user_rw )
                  | 1 -> (Pt_flat.unmap_page !d ~root ~va, Pt_tree.unmap_page !tree ~va)
                  | _ ->
                      ( Pt_flat.map_huge !d ~root ~va:(Int64.logand va huge_mask)
                          ~pa:(Int64.logand pa huge_mask) ~level:2 Flags.user_r,
                        Pt_tree.map_huge !tree ~va:(Int64.logand va huge_mask)
                          ~pa:(Int64.logand pa huge_mask) ~level:2 Flags.user_r )
                in
                match fr with
                | Ok d', Ok tree' ->
                    d := d';
                    tree := tree';
                    if Pt_refine.relate !d ~root !tree then report := Report.add_pass !report
                    else begin
                      okay := false;
                      report :=
                        Report.add_failure !report
                          ~case:(Printf.sprintf "trial %d" trial)
                          ~reason:"R broken after lock-step operation"
                    end
                | Error _, Error _ -> report := Report.add_skip !report
                | Ok _, Error e | Error e, Ok _ ->
                    okay := false;
                    report :=
                      Report.add_failure !report
                        ~case:(Printf.sprintf "trial %d" trial)
                        ~reason:("one view rejected what the other accepted: " ^ e)
              end
            done)
  done;
  !report

let refinement_obligations ~seed ~quick ~deps layout =
  let trials = refinement_trials ~quick in
  let per_shard = max 1 (trials / refinement_shards) in
  let shards = (trials + per_shard - 1) / per_shard in
  List.init shards (fun i ->
      let id = Printf.sprintf "refine/shard-%02d" i in
      let n = min per_shard (trials - (i * per_shard)) in
      let stream = stream_seed ~seed id in
      let fingerprint =
        Printf.sprintf "%s;refine-sim-v1;seed=%d;shard=%d;trials=%d" (layout_fp layout)
          seed i n
      in
      Obligation.v ~id ~phase:"refinement" ~deps ~fingerprint (fun () ->
          Obligation.outcome [ run_refinement_shard layout ~stream ~trials:n ]))

(* ------------------------------------------------------------------ *)
(* Phases 5-8: security obligations (tiny geometry only)               *)

let observers =
  [ Security.Principal.Os; Security.Principal.Enclave 1; Security.Principal.Enclave 2 ]

let inv_steps = 35
let inv_states ~quick = if quick then 8 else 25
let inv_batch_size = 5

let invariant_obligations ~seed ~quick ~deps layout =
  let n = inv_states ~quick in
  let batches = (n + inv_batch_size - 1) / inv_batch_size in
  List.init batches (fun b ->
      let lo = b * inv_batch_size and hi = min n ((b + 1) * inv_batch_size) in
      let id = Printf.sprintf "invariants/batch-%02d" b in
      let fingerprint =
        Printf.sprintf "%s;invariants-v1;seed=%d;states=%d..%d;steps=%d" (layout_fp layout)
          seed lo hi inv_steps
      in
      Obligation.v ~id ~phase:"invariants" ~deps ~fingerprint (fun () ->
          let states = Check.Gen.states_range ~lo ~hi ~seed ~steps:inv_steps layout in
          let inv_report =
            List.fold_left
              (fun rep (label, st) ->
                match Security.Invariants.check st.Security.State.mon with
                | Ok () -> Report.add_pass rep
                | Error reason -> Report.add_failure rep ~case:label ~reason)
              (Report.empty "invariants on reachable states")
              states
          in
          let actions = Check.Gen.action_battery layout in
          let preservation =
            List.fold_left
              (fun rep (label, st) ->
                List.fold_left
                  (fun rep a ->
                    match Security.Transition.step st a with
                    | Error _ -> Report.add_skip rep
                    | Ok st' -> (
                        match Security.Invariants.check st'.Security.State.mon with
                        | Ok () -> Report.add_pass rep
                        | Error reason ->
                            Report.add_failure rep
                              ~case:(label ^ " / " ^ Security.Transition.action_to_string a)
                              ~reason))
                  rep actions)
              (Report.empty "invariant preservation")
              states
          in
          Obligation.outcome [ inv_report; preservation ]))

let ni_pairs ~quick = if quick then 6 else 15

type lemma = Integrity | Local_consistency | Inactive_consistency

let lemma_tag = function
  | Integrity -> "integrity"
  | Local_consistency -> "local-consistency"
  | Inactive_consistency -> "inactive-consistency"

let noninterference_obligations ~seed ~quick ~deps layout =
  let n = ni_pairs ~quick in
  let nstates = inv_states ~quick in
  List.concat_map
    (fun observer ->
      let obs = Security.Principal.to_string observer in
      List.map
        (fun lemma ->
          let id = Printf.sprintf "noninterference/%s/%s" (lemma_tag lemma) obs in
          let fingerprint =
            Printf.sprintf "%s;ni-v1;seed=%d;lemma=%s;observer=%s;pairs=%d;states=%d;steps=%d"
              (layout_fp layout) seed (lemma_tag lemma) obs n nstates inv_steps
          in
          Obligation.v ~id ~phase:"noninterference" ~deps ~fingerprint (fun () ->
              let actions = Check.Gen.action_battery layout in
              let report =
                match lemma with
                | Integrity ->
                    let states =
                      Check.Gen.states_range ~lo:0 ~hi:nstates ~seed ~steps:inv_steps layout
                    in
                    Security.Noninterference.check_integrity ~observer ~states ~actions
                | Local_consistency ->
                    let pairs =
                      Check.Gen.secret_pairs ~n ~seed ~steps:inv_steps ~observer layout
                    in
                    Security.Noninterference.check_local_consistency ~observer ~pairs ~actions
                | Inactive_consistency ->
                    let pairs =
                      Check.Gen.secret_pairs ~n ~seed ~steps:inv_steps ~observer layout
                    in
                    Security.Noninterference.check_inactive_consistency ~observer ~pairs
                      ~actions
              in
              Obligation.outcome [ report ]))
        [ Integrity; Local_consistency; Inactive_consistency ])
    observers

let trace_ni_obligations ~seed ~quick ~deps_for layout =
  let n_sched = if quick then 5 else 12 in
  let n_pairs = if quick then 5 else 12 in
  List.map
    (fun observer ->
      let obs = Security.Principal.to_string observer in
      let id = Printf.sprintf "trace-ni/%s" obs in
      let fingerprint =
        Printf.sprintf "%s;trace-ni-v1;seed=%d;observer=%s;schedules=%d;pairs=%d;steps=%d"
          (layout_fp layout) seed obs n_sched n_pairs inv_steps
      in
      Obligation.v ~id ~phase:"trace-ni" ~deps:(deps_for obs) ~fingerprint (fun () ->
          let schedules = Check.Gen.schedules ~n:n_sched ~len:15 ~seed layout in
          let pairs =
            Check.Gen.secret_pairs ~n:n_pairs ~seed:(seed + 1) ~steps:inv_steps ~observer
              layout
          in
          Obligation.outcome
            [ Security.Noninterference.check_trace ~observer ~pairs ~schedules ]))
    observers

let attack_obligations ~deps scenarios =
  List.map
    (fun scenario ->
      let name = scenario.Security.Attacks.name in
      let id = Printf.sprintf "attacks/%s" name in
      let fingerprint = Printf.sprintf "attacks-v1;scenario=%s" name in
      Obligation.v ~id ~phase:"attacks" ~deps ~fingerprint (fun () ->
          match Security.Attacks.run scenario with
          | Ok () ->
              let log =
                Printf.sprintf "%-22s %s" name
                  (match scenario.Security.Attacks.expected_violation with
                  | None -> "passes all invariants (as expected)"
                  | Some inv -> "REJECTED by " ^ inv ^ " (as expected)")
              in
              Obligation.outcome ~log
                [ Report.add_pass (Report.empty "attack scenarios (Fig. 5)") ]
          | Error msg ->
              Obligation.outcome
                ~log:(Printf.sprintf "%-22s UNEXPECTED: %s" name msg)
                [
                  Report.add_failure
                    (Report.empty "attack scenarios (Fig. 5)")
                    ~case:name ~reason:msg;
                ]))
    scenarios

(* ------------------------------------------------------------------ *)
(* Phase 11: bounded model checking, sharded by state-key prefix       *)

let mc_version = "mc-v1"

(* The exploration decomposes into a root run (boot to the split
   depth, reduction off so the frontier is the exact distance-d0
   slice) and one independent sub-exploration per frontier shard.  The
   frontier itself is derived at plan-build time from fingerprinted
   inputs only (layout, universe, split depth), so it never needs its
   own cache key; the shard obligations re-explore from their root
   states with the full depth budget and serialize their outcome into
   the obligation log, which the driver parses back and folds into one
   deterministic rollup. *)
let mc_root_depth = 2
let mc_nshards = 8

let mc_shard_index key =
  (* leading byte of the canonical digest *)
  int_of_string ("0x" ^ String.sub key 0 2) mod mc_nshards

let mc_report ~name (o : Mc.Explore.outcome) =
  let rep =
    List.fold_left
      (fun rep _ -> Report.add_pass rep)
      (Report.empty name) o.Mc.Explore.keys
  in
  List.fold_left
    (fun rep (v : Mc.Explore.violation) ->
      Report.add_failure rep
        ~case:(Printf.sprintf "%s at %s" v.Mc.Explore.v_kind v.Mc.Explore.v_state)
        ~reason:v.Mc.Explore.v_detail)
    rep o.Mc.Explore.violations

let mc_obligations ~deps req layout =
  let full_cfg =
    Mc.Explore.config ~depth:req.mc_depth ~flush:req.mc_flush ~por:req.mc_por
      layout
  in
  let base_fp =
    Printf.sprintf "%s;%s;universe=%s;depth=%d;por=%b;flush=%b;d0=%d;shards=%d"
      mc_version (layout_fp layout)
      (Mc.Universe.digest full_cfg.Mc.Explore.universe)
      req.mc_depth req.mc_por req.mc_flush mc_root_depth mc_nshards
  in
  let root_cfg =
    { full_cfg with
      Mc.Explore.depth = min req.mc_depth mc_root_depth;
      por = false }
  in
  let root =
    Obligation.v ~id:"mc/root" ~phase:"model-check" ~deps
      ~fingerprint:(base_fp ^ ";part=root") (fun () ->
        let o = Mc.Explore.run root_cfg in
        Obligation.outcome
          ~log:(Mc.Explore.to_log o)
          [ mc_report ~name:"model check: root slice" o ])
  in
  if req.mc_depth <= mc_root_depth then [ root ]
  else begin
    (* checks off: the frontier does not depend on them, and this runs
       in the plan-building domain *)
    let frontier =
      (Mc.Explore.run { root_cfg with Mc.Explore.checks = false })
        .Mc.Explore.frontier
    in
    let shards =
      List.init mc_nshards (fun s ->
          let roots =
            List.filter
              (fun it -> mc_shard_index (Mc.Explore.item_key it) = s)
              frontier
          in
          let roots_fp =
            Digest.to_hex
              (Digest.string
                 (String.concat "," (List.map Mc.Explore.item_key roots)))
          in
          let id = Printf.sprintf "mc/shard-%02d" s in
          Obligation.v ~id ~phase:"model-check" ~deps
            ~fingerprint:(Printf.sprintf "%s;part=%d;roots=%s" base_fp s roots_fp)
            (fun () ->
              let o = Mc.Explore.run_from full_cfg ~roots in
              Obligation.outcome
                ~log:(Mc.Explore.to_log o)
                [ mc_report ~name:(Printf.sprintf "model check: shard %02d" s) o ]))
    in
    root :: shards
  end

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let build ?(quick = false) ?(security = true)
    ?(lints = Analysis.Lint.catalogue) ?model_check ?(overrides = true) ~seed
    layout =
  Layers.warm layout;
  if security then
    (* forces the attack module's lazily built layout from this domain *)
    ignore (Security.Attacks.run Security.Attacks.healthy);
  let by_layer = code_proof_obligations ~seed ~overrides layout in
  let code = List.concat_map snd by_layer in
  let top_ids = last_layer_ids by_layer in
  let pt_ids =
    match function_layer_ids by_layer "PtQuery" with [] -> top_ids | ids -> ids
  in
  let refine = refinement_obligations ~seed ~quick ~deps:pt_ids layout in
  let security_obls =
    if not security then []
    else begin
      let inv = invariant_obligations ~seed ~quick ~deps:top_ids layout in
      let inv_ids = List.map (fun (o : Obligation.t) -> o.Obligation.id) inv in
      let ni = noninterference_obligations ~seed ~quick ~deps:inv_ids layout in
      let ni_ids_for obs =
        List.map
          (fun lemma -> Printf.sprintf "noninterference/%s/%s" (lemma_tag lemma) obs)
          [ Integrity; Local_consistency; Inactive_consistency ]
      in
      let tni = trace_ni_obligations ~seed ~quick ~deps_for:ni_ids_for layout in
      let att = attack_obligations ~deps:inv_ids Security.Attacks.all in
      inv @ ni @ tni @ att
    end
  in
  let analysis = analysis_obligations ~lints layout in
  let absint = absint_obligations ~lints layout in
  let borrow = borrow_obligations ~lints layout in
  let alias = alias_obligations ~lints layout in
  let mc =
    match model_check with
    | None -> []
    | Some req -> mc_obligations ~deps:[] req layout
  in
  let dag =
    Dag.build_exn
      (analysis @ absint @ borrow @ alias @ code @ refine @ security_obls @ mc)
  in
  { dag; layout; seed; quick; security; lints; model_check; overrides;
    override_counts = override_counts layout }

(* ------------------------------------------------------------------ *)
(* Memoized build                                                      *)

(* Everything [build] reads is in the key: the module source (what the
   obligations check), the layout (geometry + regions), the seed (RNG
   streams and fingerprints), and every phase switch.  Two calls with
   equal keys produce observably identical plans, so handing back the
   same [t] — DAG included; the pool never mutates it, and the override
   [on_outcome] hooks are idempotent — is sound. *)
let memo_key ~quick ~security ~lints ~model_check ~overrides ~seed layout =
  let mc =
    match model_check with
    | None -> "none"
    | Some r ->
        Printf.sprintf "depth=%d;por=%b;flush=%b;%s" r.mc_depth r.mc_por
          r.mc_flush (layout_fp r.mc_layout)
  in
  String.concat "|"
    [
      Digest.to_hex (Digest.string (Mem_source.source layout));
      layout_fp layout;
      string_of_int seed;
      string_of_bool quick;
      string_of_bool security;
      String.concat "," (List.map Analysis.Lint.to_string lints);
      string_of_bool overrides;
      mc;
    ]

let memo_mu = Mutex.create ()
let memo : (string, t) Hashtbl.t = Hashtbl.create 8
let memo_order : string Queue.t = Queue.create ()

(* FIFO-bounded: a long-lived daemon cycling through many distinct
   (module, geometry, switches) keys must not grow without bound *)
let memo_capacity = 32

let reset_memo () =
  Mutex.lock memo_mu;
  Hashtbl.reset memo;
  Queue.clear memo_order;
  Mutex.unlock memo_mu

let build_memo ?(quick = false) ?(security = true)
    ?(lints = Analysis.Lint.catalogue) ?model_check ?(overrides = true) ~seed
    layout =
  let key = memo_key ~quick ~security ~lints ~model_check ~overrides ~seed layout in
  Mutex.lock memo_mu;
  let cached = Hashtbl.find_opt memo key in
  Mutex.unlock memo_mu;
  match cached with
  | Some plan -> (plan, true, 0.0)
  | None ->
      let t0 = Unix.gettimeofday () in
      let plan = build ~quick ~security ~lints ?model_check ~overrides ~seed layout in
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock memo_mu;
      if not (Hashtbl.mem memo key) then begin
        Hashtbl.replace memo key plan;
        Queue.add key memo_order;
        if Queue.length memo_order > memo_capacity then
          Hashtbl.remove memo (Queue.take memo_order)
      end;
      Mutex.unlock memo_mu;
      (plan, false, dt)

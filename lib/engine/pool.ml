type cache_status = Hit | Miss | Off

let cache_status_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Off -> "off"

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;
  started : float;
  finished : float;
}

(* ------------------------------------------------------------------ *)
(* Work-stealing deques                                                *)

(* Chase–Lev-shaped deque: the owner pushes and pops at the hot end
   (LIFO, so freshly released dependents run while their inputs are
   warm), thieves take from the cold end in batches of half.  A
   per-deque mutex stands in for the full lock-free protocol — the
   critical sections move a few words, the owner's lock is almost
   always uncontended, and thieves only show up when they are out of
   local work anyway. *)
module Deque = struct
  type t = {
    mu : Mutex.t;
    mutable buf : string array;
    mutable head : int;  (* cold end: index of the oldest element *)
    mutable len : int;
  }

  let create () = { mu = Mutex.create (); buf = Array.make 64 ""; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let nb = Array.make (2 * cap) "" in
    for i = 0 to d.len - 1 do
      nb.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- nb;
    d.head <- 0

  (* owner: append a batch of newly ready ids under one lock *)
  let push_batch d ids =
    Mutex.lock d.mu;
    List.iter
      (fun id ->
        if d.len = Array.length d.buf then grow d;
        d.buf.((d.head + d.len) mod Array.length d.buf) <- id;
        d.len <- d.len + 1)
      ids;
    Mutex.unlock d.mu

  (* owner: newest element *)
  let pop d =
    Mutex.lock d.mu;
    let r =
      if d.len = 0 then None
      else begin
        d.len <- d.len - 1;
        let i = (d.head + d.len) mod Array.length d.buf in
        let id = d.buf.(i) in
        d.buf.(i) <- "";
        Some id
      end
    in
    Mutex.unlock d.mu;
    r

  (* thief: the oldest half (rounded up), oldest first — batch dequeue
     so a thief pays the lock once, not once per obligation *)
  let steal_half d =
    Mutex.lock d.mu;
    let n = (d.len + 1) / 2 in
    let cap = Array.length d.buf in
    let out = ref [] in
    for i = n - 1 downto 0 do
      let j = (d.head + i) mod cap in
      out := d.buf.(j) :: !out;
      d.buf.(j) <- ""
    done;
    d.head <- (d.head + n) mod cap;
    d.len <- d.len - n;
    Mutex.unlock d.mu;
    !out
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

(* Shared scheduler state.  Obligation flow is deque-local: a worker
   pushes the dependents it releases onto its own deque and steals only
   when empty-handed, so the single global lock of the old pool (and
   its per-completion [Condition.broadcast] stampede) is gone.  The
   [sleep_*] fields exist purely for parking idle workers: a producer
   bumps [epoch] and signals at most as many sleepers as it published
   surplus items; broadcast happens exactly once, at shutdown. *)
type sched = {
  dag : Dag.t;
  cache : Cache.t option;
  deques : Deque.t array;
  indeg : (string, int Atomic.t) Hashtbl.t;  (* pre-filled, then read-only structure *)
  completed : int Atomic.t;
  total : int;
  sleep_mu : Mutex.t;
  sleep_cond : Condition.t;
  mutable sleepers : int;  (* guarded by sleep_mu *)
  mutable epoch : int;  (* guarded by sleep_mu; bumped when work appears *)
  mutable shutdown : bool;  (* guarded by sleep_mu *)
  t0 : float;
}

let crash_outcome (o : Obligation.t) reason =
  let reason = Printf.sprintf "obligation raised: %s" reason in
  Obligation.outcome
    [ Mirverif.Report.add_failure (Mirverif.Report.empty o.Obligation.id) ~case:"exception" ~reason ]

(* [snd] is false when the obligation crashed: the synthesized failure
   outcome describes this run's exception (out of memory, interrupted
   worker, a transient bug in a checker), not a property of the
   fingerprinted inputs, so it must never be cached — a warm run would
   otherwise replay the crash forever. *)
let attempt (o : Obligation.t) =
  try (o.Obligation.run (), true)
  with exn -> (crash_outcome o (Printexc.to_string exn), false)

let execute sched (o : Obligation.t) =
  match sched.cache with
  | None -> (fst (attempt o), Off)
  | Some c -> (
      match Cache.find c o with
      | Some outcome -> (outcome, Hit)
      | None ->
          let outcome, ran_ok = attempt o in
          if ran_ok then Cache.stash c o outcome;
          (outcome, Miss))

let shutdown sched =
  Mutex.lock sched.sleep_mu;
  sched.shutdown <- true;
  (* the pool's only broadcast *)
  Condition.broadcast sched.sleep_cond;
  Mutex.unlock sched.sleep_mu

(* targeted wakeups: one signal per surplus item, never more than
   there are sleepers to receive them *)
let wake sched surplus =
  if surplus > 0 then begin
    Mutex.lock sched.sleep_mu;
    sched.epoch <- sched.epoch + 1;
    let n = min surplus sched.sleepers in
    for _ = 1 to n do
      Condition.signal sched.sleep_cond
    done;
    Mutex.unlock sched.sleep_mu
  end

(* own deque first, then steal half of someone else's *)
let next_work sched wid =
  match Deque.pop sched.deques.(wid) with
  | Some id -> Some id
  | None ->
      let jobs = Array.length sched.deques in
      let rec scan k =
        if k >= jobs then None
        else
          match Deque.steal_half sched.deques.((wid + k) mod jobs) with
          | [] -> scan (k + 1)
          | id :: rest ->
              Deque.push_batch sched.deques.(wid) rest;
              Some id
      in
      scan 1

(* Park until work appears or the pool shuts down.  The epoch read
   happens before the rescan, so a producer that publishes after the
   scan necessarily bumps the epoch we compare against — no lost
   wakeups. *)
let rec obtain sched wid =
  match next_work sched wid with
  | Some id -> Some id
  | None ->
      Mutex.lock sched.sleep_mu;
      if sched.shutdown then begin
        Mutex.unlock sched.sleep_mu;
        None
      end
      else begin
        let e = sched.epoch in
        Mutex.unlock sched.sleep_mu;
        match next_work sched wid with
        | Some id -> Some id
        | None ->
            Mutex.lock sched.sleep_mu;
            let rec wait () =
              if sched.shutdown then begin
                Mutex.unlock sched.sleep_mu;
                None
              end
              else if sched.epoch <> e then begin
                Mutex.unlock sched.sleep_mu;
                obtain sched wid
              end
              else begin
                sched.sleepers <- sched.sleepers + 1;
                Condition.wait sched.sleep_cond sched.sleep_mu;
                sched.sleepers <- sched.sleepers - 1;
                wait ()
              end
            in
            wait ()
      end

(* Results go to a domain-local buffer — no shared-table lock on the
   completion path — and are merged after the join. *)
let worker sched wid buf =
  let rec loop () =
    match obtain sched wid with
    | None -> ()
    | Some id ->
        let o =
          match Dag.find sched.dag id with
          | Some o -> o
          | None -> invalid_arg ("Pool: unknown obligation " ^ id)
        in
        let started = Clock.now () -. sched.t0 in
        let outcome, cache = execute sched o in
        let finished = Clock.now () -. sched.t0 in
        buf := { obligation = o; outcome; cache; worker = wid; started; finished } :: !buf;
        let ready =
          List.filter
            (fun d -> Atomic.fetch_and_add (Hashtbl.find sched.indeg d) (-1) = 1)
            (Dag.dependents_of sched.dag id)
        in
        if ready <> [] then Deque.push_batch sched.deques.(wid) ready;
        (* the worker pops one of them next itself; only the surplus
           needs other hands *)
        wake sched (List.length ready - 1);
        if Atomic.fetch_and_add sched.completed 1 + 1 = sched.total then shutdown sched;
        loop ()
  in
  (* a scheduler-level failure (not an obligation crash — those are
     absorbed by [attempt]) must not strand the other workers in
     [Condition.wait]: shut the pool down and let the merge synthesize
     crash outcomes for whatever never ran *)
  try loop () with _ -> shutdown sched

let run ?cache ?(oversubscribe = false) ~jobs dag =
  let obls = Dag.obligations dag in
  let total = List.length obls in
  if total = 0 then []
  else begin
    let jobs = max 1 (min jobs total) in
    (* more active domains than cores cannot help CPU-bound work — it
       only adds stop-the-world GC synchronization across time-sliced
       domains (the old pool lost 4–5x to this) — so [jobs] caps
       concurrency and the hardware caps the domain count.
       [oversubscribe] bypasses the clamp so the stealing path is
       testable on any machine. *)
    let jobs =
      if oversubscribe then jobs else min jobs (Domain.recommended_domain_count ())
    in
    let sched =
      {
        dag;
        cache;
        deques = Array.init jobs (fun _ -> Deque.create ());
        indeg = Hashtbl.create (max 16 total);
        completed = Atomic.make 0;
        total;
        sleep_mu = Mutex.create ();
        sleep_cond = Condition.create ();
        sleepers = 0;
        epoch = 0;
        shutdown = false;
        t0 = Clock.now ();
      }
    in
    List.iter
      (fun (o : Obligation.t) -> Hashtbl.replace sched.indeg o.id (Atomic.make (List.length o.deps)))
      obls;
    (* roots dealt round-robin so workers start with local work instead
       of a steal storm on worker 0 *)
    let nroots = ref 0 in
    List.iter
      (fun (o : Obligation.t) ->
        if o.deps = [] then begin
          Deque.push_batch sched.deques.(!nroots mod jobs) [ o.id ];
          incr nroots
        end)
      obls;
    let bufs = Array.init jobs (fun _ -> ref []) in
    if jobs = 1 then
      (* inline fast path: no domain spawn, no parked workers *)
      worker sched 0 bufs.(0)
    else begin
      let domains =
        Array.mapi (fun wid buf -> Domain.spawn (fun () -> worker sched wid buf)) bufs
      in
      Array.iter Domain.join domains
    end;
    Option.iter Cache.flush cache;
    let results = Hashtbl.create (max 16 total) in
    Array.iter
      (fun buf -> List.iter (fun e -> Hashtbl.replace results e.obligation.Obligation.id e) !buf)
      bufs;
    (* results in DAG insertion order: scheduling cannot influence what
       the caller sees.  An obligation a dead worker never published
       becomes an explicit crash outcome rather than a bare
       [Not_found]. *)
    List.map
      (fun (o : Obligation.t) ->
        match Hashtbl.find_opt results o.Obligation.id with
        | Some e -> e
        | None ->
            {
              obligation = o;
              outcome = crash_outcome o "worker exited before publishing a result";
              cache = Off;
              worker = -1;
              started = 0.0;
              finished = 0.0;
            })
      obls
  end

let wall_of execs =
  List.fold_left (fun acc e -> Float.max acc e.finished) 0.0 execs

let worker_stats execs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let busy, count =
        match Hashtbl.find_opt tbl e.worker with Some x -> x | None -> (0.0, 0)
      in
      Hashtbl.replace tbl e.worker (busy +. (e.finished -. e.started), count + 1))
    execs;
  Hashtbl.fold (fun w (busy, count) acc -> (w, busy, count) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type cache_status = Hit | Miss | Off

let cache_status_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Off -> "off"

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;
  started : float;
  finished : float;
  trail : Supervisor.trail;
}

type stats = { respawns : int; lost_workers : int }

(* ------------------------------------------------------------------ *)
(* Work-stealing deques                                                *)

(* Chase–Lev-shaped deque: the owner pushes and pops at the hot end
   (LIFO, so freshly released dependents run while their inputs are
   warm), thieves take from the cold end in batches of half.  A
   per-deque mutex stands in for the full lock-free protocol — the
   critical sections move a few words, the owner's lock is almost
   always uncontended, and thieves only show up when they are out of
   local work anyway. *)
module Deque = struct
  type t = {
    mu : Mutex.t;
    mutable buf : string array;
    mutable head : int;  (* cold end: index of the oldest element *)
    mutable len : int;
  }

  let create () = { mu = Mutex.create (); buf = Array.make 64 ""; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let nb = Array.make (2 * cap) "" in
    for i = 0 to d.len - 1 do
      nb.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- nb;
    d.head <- 0

  (* owner: append a batch of newly ready ids under one lock *)
  let push_batch d ids =
    Mutex.lock d.mu;
    List.iter
      (fun id ->
        if d.len = Array.length d.buf then grow d;
        d.buf.((d.head + d.len) mod Array.length d.buf) <- id;
        d.len <- d.len + 1)
      ids;
    Mutex.unlock d.mu

  (* owner: newest element *)
  let pop d =
    Mutex.lock d.mu;
    let r =
      if d.len = 0 then None
      else begin
        d.len <- d.len - 1;
        let i = (d.head + d.len) mod Array.length d.buf in
        let id = d.buf.(i) in
        d.buf.(i) <- "";
        Some id
      end
    in
    Mutex.unlock d.mu;
    r

  let length d =
    Mutex.lock d.mu;
    let n = d.len in
    Mutex.unlock d.mu;
    n

  (* thief: the oldest half (rounded up), oldest first — batch dequeue
     so a thief pays the lock once, not once per obligation *)
  let steal_half d =
    Mutex.lock d.mu;
    let n = (d.len + 1) / 2 in
    let cap = Array.length d.buf in
    let out = ref [] in
    for i = n - 1 downto 0 do
      let j = (d.head + i) mod cap in
      out := d.buf.(j) :: !out;
      d.buf.(j) <- ""
    done;
    d.head <- (d.head + n) mod cap;
    d.len <- d.len - n;
    Mutex.unlock d.mu;
    !out
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

(* Shared scheduler state.  Obligation flow is deque-local: a worker
   pushes the dependents it releases onto its own deque and steals only
   when empty-handed, so the single global lock of the old pool (and
   its per-completion [Condition.broadcast] stampede) is gone.  The
   [sleep_*] fields exist purely for parking idle workers: a producer
   bumps [epoch] and signals at most as many sleepers as it published
   surplus items; broadcast happens exactly once, at shutdown. *)
type sched = {
  dag : Dag.t;
  cache : Cache.t option;
  sup : Supervisor.config;
  deques : Deque.t array;
  indeg : (string, int Atomic.t) Hashtbl.t;  (* pre-filled, then read-only structure *)
  (* per-obligation publish flag: an obligation can execute twice when
     a chaos kill lands between computing and publishing, but its
     dependents are released and the completion counter bumped exactly
     once — the CAS winner does the bookkeeping *)
  done_flags : (string, bool Atomic.t) Hashtbl.t;
  inflight : string option array;  (* what each worker is holding, for respawn re-push *)
  completed : int Atomic.t;
  total : int;
  lives : int Atomic.t;  (* remaining respawn budget, shared by all workers *)
  alive : int Atomic.t;
  respawned : int Atomic.t;
  lost : int Atomic.t;
  sleep_mu : Mutex.t;
  sleep_cond : Condition.t;
  mutable sleepers : int;  (* guarded by sleep_mu *)
  mutable epoch : int;  (* guarded by sleep_mu; bumped when work appears *)
  mutable shutdown : bool;  (* guarded by sleep_mu *)
  t0 : float;
}

let crash_outcome (o : Obligation.t) reason =
  let reason = Printf.sprintf "obligation raised: %s" reason in
  Obligation.outcome
    [ Mirverif.Report.add_failure (Mirverif.Report.empty o.Obligation.id) ~case:"exception" ~reason ]

(* Quarantined outcomes describe this run's misfortune (a crash, a
   blown deadline), not a property of the fingerprinted inputs, so
   [cacheable] is false and they are never stashed — a warm run would
   otherwise replay the failure forever.  Clean and fallback outcomes
   are stashed as before. *)
let execute sched (o : Obligation.t) =
  let ((outcome, _, _) as result) =
    match sched.cache with
    | None ->
        let r = Supervisor.supervise sched.sup o in
        (r.Supervisor.outcome, Off, r.Supervisor.trail)
    | Some c -> (
        match Cache.find c o with
        | Some outcome -> (outcome, Hit, Supervisor.cached)
        | None ->
            let r = Supervisor.supervise sched.sup o in
            if r.Supervisor.cacheable then Cache.stash c o r.Supervisor.outcome;
            (r.Supervisor.outcome, Miss, r.Supervisor.trail))
  in
  (* every completion path — live, crashed, cached — feeds the hook
     before dependents are released, so gates driven by it (the
     override-composition proven set) are schedule-independent *)
  (match o.Obligation.on_outcome with None -> () | Some f -> f outcome);
  result

let shutdown sched =
  Mutex.lock sched.sleep_mu;
  sched.shutdown <- true;
  (* the pool's only broadcast *)
  Condition.broadcast sched.sleep_cond;
  Mutex.unlock sched.sleep_mu

(* targeted wakeups: one signal per surplus item, never more than
   there are sleepers to receive them *)
let wake sched surplus =
  if surplus > 0 then begin
    Mutex.lock sched.sleep_mu;
    sched.epoch <- sched.epoch + 1;
    let n = min surplus sched.sleepers in
    for _ = 1 to n do
      Condition.signal sched.sleep_cond
    done;
    Mutex.unlock sched.sleep_mu
  end

(* own deque first, then steal half of someone else's *)
let next_work sched wid =
  match Deque.pop sched.deques.(wid) with
  | Some id -> Some id
  | None ->
      let jobs = Array.length sched.deques in
      let rec scan k =
        if k >= jobs then None
        else
          match Deque.steal_half sched.deques.((wid + k) mod jobs) with
          | [] -> scan (k + 1)
          | id :: rest ->
              Deque.push_batch sched.deques.(wid) rest;
              Some id
      in
      scan 1

(* Park until work appears or the pool shuts down.  The epoch read
   happens before the rescan, so a producer that publishes after the
   scan necessarily bumps the epoch we compare against — no lost
   wakeups. *)
let rec obtain sched wid =
  match next_work sched wid with
  | Some id -> Some id
  | None ->
      Mutex.lock sched.sleep_mu;
      if sched.shutdown then begin
        Mutex.unlock sched.sleep_mu;
        None
      end
      else begin
        let e = sched.epoch in
        Mutex.unlock sched.sleep_mu;
        match next_work sched wid with
        | Some id -> Some id
        | None ->
            Mutex.lock sched.sleep_mu;
            let rec wait () =
              if sched.shutdown then begin
                Mutex.unlock sched.sleep_mu;
                None
              end
              else if sched.epoch <> e then begin
                Mutex.unlock sched.sleep_mu;
                obtain sched wid
              end
              else begin
                sched.sleepers <- sched.sleepers + 1;
                Condition.wait sched.sleep_cond sched.sleep_mu;
                sched.sleepers <- sched.sleepers - 1;
                wait ()
              end
            in
            wait ()
      end

(* Results go to a domain-local buffer — no shared-table lock on the
   completion path — and are merged after the join. *)
let worker sched wid buf =
  let kill_point site id =
    match sched.sup.Supervisor.chaos with
    | Some ch when Engine_chaos.kill_worker ch ~site ~id ->
        raise (Engine_chaos.Worker_killed id)
    | _ -> ()
  in
  let rec loop () =
    match obtain sched wid with
    | None -> ()
    | Some id ->
        let o =
          match Dag.find sched.dag id with
          | Some o -> o
          | None -> invalid_arg ("Pool: unknown obligation " ^ id)
        in
        sched.inflight.(wid) <- Some id;
        kill_point "pre-exec" id;
        let started = Clock.now () -. sched.t0 in
        let outcome, cache, trail = execute sched o in
        let finished = Clock.now () -. sched.t0 in
        (* the nastier kill: the result is computed but not yet
           published — the respawned worker must redo the obligation *)
        kill_point "post-exec" id;
        buf :=
          { obligation = o; outcome; cache; worker = wid; started; finished; trail }
          :: !buf;
        sched.inflight.(wid) <- None;
        let flag = Hashtbl.find sched.done_flags id in
        if Atomic.compare_and_set flag false true then begin
          let ready =
            List.filter
              (fun d -> Atomic.fetch_and_add (Hashtbl.find sched.indeg d) (-1) = 1)
              (Dag.dependents_of sched.dag id)
          in
          if ready <> [] then Deque.push_batch sched.deques.(wid) ready;
          (* the worker pops one of them next itself; only the surplus
             needs other hands *)
          wake sched (List.length ready - 1);
          if Atomic.fetch_and_add sched.completed 1 + 1 = sched.total then
            shutdown sched
        end;
        loop ()
  in
  loop ()

(* The worker's survival wrapper.  A chaos kill ([Worker_killed])
   "kills the domain": the obligation it held goes back on its deque
   and, while the shared respawn budget lasts, the worker restarts
   in-domain (equivalent to joining the dead domain and spawning a
   fresh one, without paying for a real spawn).  Past the budget the
   worker stays dead — its queued obligations remain visible to
   thieves, so survivors drain them; we wake enough sleepers to come
   stealing, and if the last live worker dies the pool shuts down and
   the merge synthesizes crash outcomes for whatever never ran.  Any
   other scheduler-level failure (not an obligation crash — the
   supervisor absorbs those) still shuts the pool down rather than
   stranding workers in [Condition.wait]. *)
let worker_supervised sched wid buf =
  let rec go () =
    match worker sched wid buf with
    | () -> ()
    | exception Engine_chaos.Worker_killed _ ->
        (match sched.inflight.(wid) with
        | Some id ->
            sched.inflight.(wid) <- None;
            if not (Atomic.get (Hashtbl.find sched.done_flags id)) then
              Deque.push_batch sched.deques.(wid) [ id ]
        | None -> ());
        if Atomic.fetch_and_add sched.lives (-1) > 0 then begin
          Atomic.incr sched.respawned;
          go ()
        end
        else begin
          Atomic.incr sched.lost;
          wake sched (max 1 (Deque.length sched.deques.(wid)));
          if Atomic.fetch_and_add sched.alive (-1) = 1 then shutdown sched
        end
    | exception _ -> shutdown sched
  in
  go ()

let run_with_stats ?cache ?(oversubscribe = false) ?(sup = Supervisor.default)
    ?(max_respawns = 32) ~jobs dag =
  let obls = Dag.obligations dag in
  let total = List.length obls in
  if total = 0 then ([], { respawns = 0; lost_workers = 0 })
  else begin
    let jobs = max 1 (min jobs total) in
    (* more active domains than cores cannot help CPU-bound work — it
       only adds stop-the-world GC synchronization across time-sliced
       domains (the old pool lost 4–5x to this) — so [jobs] caps
       concurrency and the hardware caps the domain count.
       [oversubscribe] bypasses the clamp so the stealing path is
       testable on any machine. *)
    let jobs =
      if oversubscribe then jobs else min jobs (Domain.recommended_domain_count ())
    in
    let sched =
      {
        dag;
        cache;
        sup;
        deques = Array.init jobs (fun _ -> Deque.create ());
        indeg = Hashtbl.create (max 16 total);
        done_flags = Hashtbl.create (max 16 total);
        inflight = Array.make jobs None;
        completed = Atomic.make 0;
        total;
        lives = Atomic.make (max 0 max_respawns);
        alive = Atomic.make jobs;
        respawned = Atomic.make 0;
        lost = Atomic.make 0;
        sleep_mu = Mutex.create ();
        sleep_cond = Condition.create ();
        sleepers = 0;
        epoch = 0;
        shutdown = false;
        t0 = Clock.now ();
      }
    in
    Option.iter
      (fun c -> Option.iter (Cache.set_chaos c) sup.Supervisor.chaos)
      cache;
    List.iter
      (fun (o : Obligation.t) ->
        Hashtbl.replace sched.indeg o.id (Atomic.make (List.length o.deps));
        Hashtbl.replace sched.done_flags o.id (Atomic.make false))
      obls;
    (* roots dealt round-robin so workers start with local work instead
       of a steal storm on worker 0 *)
    let nroots = ref 0 in
    List.iter
      (fun (o : Obligation.t) ->
        if o.deps = [] then begin
          Deque.push_batch sched.deques.(!nroots mod jobs) [ o.id ];
          incr nroots
        end)
      obls;
    let bufs = Array.init jobs (fun _ -> ref []) in
    if jobs = 1 then
      (* inline fast path: no domain spawn, no parked workers *)
      worker_supervised sched 0 bufs.(0)
    else begin
      let domains =
        Array.mapi
          (fun wid buf -> Domain.spawn (fun () -> worker_supervised sched wid buf))
          bufs
      in
      Array.iter Domain.join domains
    end;
    Option.iter Cache.flush cache;
    let results = Hashtbl.create (max 16 total) in
    Array.iter
      (fun buf -> List.iter (fun e -> Hashtbl.replace results e.obligation.Obligation.id e) !buf)
      bufs;
    (* results in DAG insertion order: scheduling cannot influence what
       the caller sees.  An obligation a dead worker never published
       becomes an explicit crash outcome rather than a bare
       [Not_found]. *)
    let execs =
      List.map
        (fun (o : Obligation.t) ->
          match Hashtbl.find_opt results o.Obligation.id with
          | Some e -> e
          | None ->
              {
                obligation = o;
                outcome = crash_outcome o "worker exited before publishing a result";
                cache = Off;
                worker = -1;
                started = 0.0;
                finished = 0.0;
                trail =
                  { Supervisor.attempts = []; resolution = Supervisor.Quarantined };
              })
        obls
    in
    (execs, { respawns = Atomic.get sched.respawned; lost_workers = Atomic.get sched.lost })
  end

let run ?cache ?oversubscribe ?sup ?max_respawns ~jobs dag =
  fst (run_with_stats ?cache ?oversubscribe ?sup ?max_respawns ~jobs dag)

let wall_of execs =
  List.fold_left (fun acc e -> Float.max acc e.finished) 0.0 execs

let worker_stats execs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let busy, count =
        match Hashtbl.find_opt tbl e.worker with Some x -> x | None -> (0.0, 0)
      in
      Hashtbl.replace tbl e.worker (busy +. (e.finished -. e.started), count + 1))
    execs;
  Hashtbl.fold (fun w (busy, count) acc -> (w, busy, count) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type cache_status = Hit | Miss | Off

let cache_status_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Off -> "off"

type exec = {
  obligation : Obligation.t;
  outcome : Obligation.outcome;
  cache : cache_status;
  worker : int;
  started : float;
  finished : float;
}

(* Shared scheduler state.  Workers take ready obligation ids under the
   mutex, run them unlocked, then publish the result and release newly
   ready dependents.  All obligation [run] closures are pure and the
   layout-keyed memo tables are warmed before the pool starts, so the
   only cross-domain communication is this scheduler. *)
type sched = {
  dag : Dag.t;
  cache : Cache.t option;
  mutex : Mutex.t;
  cond : Condition.t;
  ready : string Queue.t;
  indeg : (string, int) Hashtbl.t;
  results : (string, exec) Hashtbl.t;
  mutable completed : int;
  total : int;
  t0 : float;
}

let crash_outcome (o : Obligation.t) exn =
  let reason = Printf.sprintf "obligation raised: %s" (Printexc.to_string exn) in
  Obligation.outcome
    [ Mirverif.Report.add_failure (Mirverif.Report.empty o.Obligation.id) ~case:"exception" ~reason ]

(* [snd] is false when the obligation crashed: the synthesized failure
   outcome describes this run's exception (out of memory, interrupted
   worker, a transient bug in a checker), not a property of the
   fingerprinted inputs, so it must never be cached — a warm run would
   otherwise replay the crash forever. *)
let attempt (o : Obligation.t) =
  try (o.Obligation.run (), true) with exn -> (crash_outcome o exn, false)

let execute sched (o : Obligation.t) =
  match sched.cache with
  | None -> (fst (attempt o), Off)
  | Some c -> (
      match Cache.find c o with
      | Some outcome -> (outcome, Hit)
      | None ->
          let outcome, ran_ok = attempt o in
          if ran_ok then Cache.store c o outcome;
          (outcome, Miss))

let rec worker sched wid =
  Mutex.lock sched.mutex;
  let rec take () =
    if sched.completed = sched.total then None
    else
      match Queue.take_opt sched.ready with
      | Some id -> Some id
      | None ->
          Condition.wait sched.cond sched.mutex;
          take ()
  in
  match take () with
  | None ->
      Mutex.unlock sched.mutex;
      ()
  | Some id ->
      Mutex.unlock sched.mutex;
      let o = Option.get (Dag.find sched.dag id) in
      let started = Unix.gettimeofday () -. sched.t0 in
      let outcome, cache = execute sched o in
      let finished = Unix.gettimeofday () -. sched.t0 in
      Mutex.lock sched.mutex;
      Hashtbl.replace sched.results id
        { obligation = o; outcome; cache; worker = wid; started; finished };
      sched.completed <- sched.completed + 1;
      List.iter
        (fun d ->
          let k = Hashtbl.find sched.indeg d - 1 in
          Hashtbl.replace sched.indeg d k;
          if k = 0 then Queue.add d sched.ready)
        (Dag.dependents_of sched.dag id);
      Condition.broadcast sched.cond;
      Mutex.unlock sched.mutex;
      worker sched wid

let run ?cache ~jobs dag =
  let obls = Dag.obligations dag in
  let total = List.length obls in
  let sched =
    {
      dag;
      cache;
      mutex = Mutex.create ();
      cond = Condition.create ();
      ready = Queue.create ();
      indeg = Hashtbl.create (max 16 total);
      results = Hashtbl.create (max 16 total);
      completed = 0;
      total;
      t0 = Unix.gettimeofday ();
    }
  in
  List.iter
    (fun (o : Obligation.t) ->
      Hashtbl.replace sched.indeg o.id (List.length o.deps);
      if o.deps = [] then Queue.add o.id sched.ready)
    obls;
  let jobs = max 1 (min jobs (max 1 total)) in
  if total = 0 then []
  else begin
    if jobs = 1 then worker sched 0
    else begin
      let domains = List.init jobs (fun wid -> Domain.spawn (fun () -> worker sched wid)) in
      List.iter Domain.join domains
    end;
    (* results in DAG insertion order: scheduling cannot influence what
       the caller sees *)
    List.map (fun (o : Obligation.t) -> Hashtbl.find sched.results o.id) obls
  end

let wall_of execs =
  List.fold_left (fun acc e -> Float.max acc e.finished) 0.0 execs

let worker_stats execs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let busy, count =
        match Hashtbl.find_opt tbl e.worker with Some x -> x | None -> (0.0, 0)
      in
      Hashtbl.replace tbl e.worker (busy +. (e.finished -. e.started), count + 1))
    execs;
  Hashtbl.fold (fun w (busy, count) acc -> (w, busy, count) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

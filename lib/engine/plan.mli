(** Builds the verification plan: the full pass (phases 3-8 of the
    CLI) reified as an obligation DAG.

    Obligation granularity mirrors the paper's proof structure: one
    node per code-proof function, per refinement-simulation shard, per
    invariant/noninterference state batch, per attack scenario.  Edges
    encode layer stratification (a layer's code proofs depend on the
    function-bearing layer below) and phase dependencies (refinement
    waits on the page-table layer's proofs; security phases wait on
    the invariant batches; trace-NI on that observer's three NI
    lemmas).

    Each obligation's RNG stream is split deterministically from the
    run seed and the obligation id, and its fingerprint digests every
    input the outcome depends on, so results are byte-identical at any
    job count and cache entries invalidate exactly when an input
    changes. *)

type mc_request = {
  mc_depth : int;
  mc_por : bool;
  mc_flush : bool;
  mc_layout : Hyperenclave.Layout.t;
}
(** A bounded model-checking run: exploration depth, partial-order
    reduction on/off, and whether unmaps flush the TLB ([mc_flush =
    false] is the planted [--buggy-tlb] monitor). *)

type t = {
  dag : Dag.t;
  layout : Hyperenclave.Layout.t;
  seed : int;
  quick : bool;
  security : bool;
  lints : Analysis.Lint.kind list;
  model_check : mc_request option;
  overrides : bool;
      (** code proofs use override composition (callee contracts as
          compiled stubs, call-graph dependency edges, shrunk
          fingerprints); [false] restores the legacy monolithic plan
          shape exactly ([--no-overrides]) *)
  override_counts : (string * int) list;
      (** per spec-owned function, bottom-up: how many same-layer
          call-graph edges override composition replaces with contract
          stubs (zeros included, so rollup keys are stable) *)
}

val phases : string list
(** Engine phase names, in pass order: analysis, absint, code-proofs,
    refinement, invariants, noninterference, trace-ni, attacks,
    model-check. *)

val build :
  ?quick:bool ->
  ?security:bool ->
  ?lints:Analysis.Lint.kind list ->
  ?model_check:mc_request ->
  ?overrides:bool ->
  seed:int ->
  Hyperenclave.Layout.t ->
  t
(** [build ~seed layout] constructs the DAG and warms every
    layout-keyed memo table ([Layers.warm], the attack module's lazy
    layout) in the calling domain, so worker domains only read shared
    state.  [~security:false] (x86_64 geometry) drops phases 5-8;
    [~quick] shrinks trial/state counts like the CLI's [--quick];
    [~lints] selects the static-analysis lints (default: the whole
    catalogue). *)

val build_memo :
  ?quick:bool ->
  ?security:bool ->
  ?lints:Analysis.Lint.kind list ->
  ?model_check:mc_request ->
  ?overrides:bool ->
  seed:int ->
  Hyperenclave.Layout.t ->
  t * bool * float
(** Memoized {!build}: [(plan, hit, build_s)].  The key digests every
    input [build] reads — module source, layout, seed, and all phase
    switches — so a hit returns the previously built plan ([build_s] =
    0); a miss builds and records it ([hit = false], [build_s] = the
    construction wall time).  Reusing a plan across runs is sound: the
    DAG is immutable and the override hooks are idempotent.  The memo
    is process-global, mutex-guarded, and FIFO-bounded (32 entries) —
    the daemon's resident warm path, but equally usable by embedders of
    the engine API. *)

val reset_memo : unit -> unit
(** Drop every memoized plan (tests). *)

val analysis_obligations :
  ?lints:Analysis.Lint.kind list ->
  Hyperenclave.Layout.t ->
  Obligation.t list
(** One dependency-free obligation per function per layer, running the
    selected per-body lints over that function's MIRlight body.
    Fingerprinted on the (body-)lint selection and the body alone (no
    layout geometry), so cache entries survive anything that doesn't
    change the body. *)

val absint_obligations :
  ?lints:Analysis.Lint.kind list ->
  Hyperenclave.Layout.t ->
  Obligation.t list
(** One obligation per call-graph SCC per selected abstract domain
    (interval bounds, secret-flow taint), depending on the same-domain
    obligations of its callee SCCs.  Fingerprinted on the domain, the
    SCC membership and the MIRlight digests of the SCC's transitive
    callee closure (plus the layout for secret-flow, whose policy is
    derived from it): a warm cache re-executes nothing, and editing a
    function invalidates exactly its SCC and the SCCs above it. *)

val borrow_obligations :
  ?lints:Analysis.Lint.kind list ->
  Hyperenclave.Layout.t ->
  Obligation.t list
(** One dependency-free obligation per function per layer, running the
    NLL-style borrow checker ({!Analysis.Borrow_lint}) when any
    {!Analysis.Lint.borrow} kind is selected (empty otherwise).
    Strictly intraprocedural: fingerprinted on the selection and the
    function's own MIRlight digest, like {!analysis_obligations}. *)

val alias_obligations :
  ?lints:Analysis.Lint.kind list ->
  Hyperenclave.Layout.t ->
  Obligation.t list
(** One obligation per call-graph SCC running the Andersen points-to
    footprint lint ({!Analysis.Alias_lint}) when
    {!Analysis.Lint.Alias_footprint} is selected (empty otherwise).
    Depends on its callee SCCs' alias obligations and is fingerprinted
    on the layout plus the MIRlight digests of the SCC's transitive
    callee closure, like {!absint_obligations}'s secret-flow domain. *)

val code_proof_obligations :
  ?seed:int -> ?overrides:bool -> Hyperenclave.Layout.t ->
  (string * Obligation.t list) list
(** Per-layer code-proof obligations, bottom-up; exposed for tests and
    for cache-invalidation experiments.

    With [~overrides:true] (the default), dependency edges follow the
    call graph — a caller waits on exactly the spec-owned functions it
    calls directly — and each fingerprint digests only the function's
    own body plus its directly-used callee specs, so editing one
    function invalidates exactly itself and its direct callers.  The
    obligation thunk runs the override-composed battery (same-layer
    callees as contract stubs) once every stubbed callee has completed
    without failures, observed through the pool's [on_outcome] hook;
    otherwise — no stubs, or a callee crashed/was quarantined — it
    falls back to the monolithic battery, whose verdicts are identical
    (pinned by the differential suite).

    With [~overrides:false], the legacy shape: layer-barrier edges and
    reachable-closure fingerprints, byte-for-byte. *)

val override_counts : Hyperenclave.Layout.t -> (string * int) list
(** Per spec-owned function (bottom-up, zeros included): the number of
    same-layer call-graph edges override composition stubs. *)

val mc_obligations :
  deps:string list -> mc_request -> Hyperenclave.Layout.t -> Obligation.t list
(** The model-checking phase: a root obligation exploring boot to the
    split depth (reduction off, so its frontier is the exact
    distance-d0 slice) plus one obligation per frontier shard (sharded
    by canonical-state-key prefix), each exploring from its root
    states to the full depth.  Every obligation is fingerprinted on
    the geometry, the universe digest, the depth bound and the
    reduction/flush switches, so a warm cache skips completed shards;
    each serializes its stats, visited keys, and shrunk
    counterexamples into its outcome log for the driver to roll up
    (the union is byte-identical at any job count or cache state). *)

val stream_seed : seed:int -> string -> int
(** The per-obligation RNG stream split: deterministic in (seed, tag),
    independent of scheduling. *)

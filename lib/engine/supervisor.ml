(* Supervised execution of a single obligation: per-attempt deadlines,
   deterministic retry with exponential backoff, a degradation ladder,
   and quarantine.

   The pool calls {!supervise} instead of running [o.run] bare.  The
   default {!default} config (no timeout, no retries, no chaos)
   reproduces the unsupervised behaviour exactly — one attempt, any
   exception absorbed into the legacy one-failure crash report — so
   existing callers and byte-identical-output guarantees are
   untouched.

   Timeouts are cooperative: OCaml domains cannot be killed
   asynchronously, so the supervisor arms a per-domain deadline
   ([Domain.DLS]) and installs the global [Mirverif.Cancel] hook; check
   batteries poll at case boundaries and the poll raises
   [Deadline_exceeded] once the deadline passes.  A computation that
   never polls can overrun its deadline — the deadline bounds *check*
   work, which all polls.

   Determinism: every retry/backoff/quarantine decision is a pure
   function of (config, obligation id, attempt number).  Backoff
   durations come from a per-(seed, id, attempt) hash stream, not a
   shared RNG, so the decisions replay identically at any job count and
   under any schedule; only wall-clock timestamps differ. *)

module Plan = Fault.Plan

type status = Ran_ok | Crashed of string | Timed_out

type attempt = {
  n : int;  (* 1-based *)
  status : status;
  injected : Plan.engine_kind option;  (* chaos fault applied to this attempt *)
  backoff : float;  (* delay slept before the next attempt; 0 on the last *)
}

type resolution = Completed | Recovered | Fell_back | Quarantined

type trail = { attempts : attempt list; resolution : resolution }

(* what a cache hit reports: nothing was attempted *)
let cached = { attempts = []; resolution = Completed }

type result = { outcome : Obligation.outcome; trail : trail; cacheable : bool }

type config = {
  timeout : float option;
  retries : int;
  backoff_base : float;
  backoff_max : float;
  seed : int;
  sleep : float -> unit;
  chaos : Engine_chaos.t option;
}

let default =
  {
    timeout = None;
    retries = 0;
    backoff_base = 0.05;
    backoff_max = 1.0;
    seed = 0;
    sleep = (fun d -> if d > 0.0 then Unix.sleepf d);
    chaos = None;
  }

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

(* One deadline slot per domain: workers cancel independently, and the
   single global hook just reads whichever slot belongs to the polling
   domain. *)
let deadline : float option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let hook () =
  match !(Domain.DLS.get deadline) with
  | Some d when Clock.now () > d -> raise Mirverif.Cancel.Deadline_exceeded
  | _ -> ()

let with_deadline cfg thunk =
  match cfg.timeout with
  | None -> thunk ()
  | Some dt ->
      let slot = Domain.DLS.get deadline in
      slot := Some (Clock.now () +. dt);
      Fun.protect ~finally:(fun () -> slot := None) thunk

(* ------------------------------------------------------------------ *)
(* Deterministic backoff                                               *)

let stream cfg tag =
  let h = ref (cfg.seed + 0x6C62_72E5) in
  String.iter (fun c -> h := (!h * 131) + Char.code c) tag;
  let w, _ = Check.Rng.next (Check.Rng.make (!h land 0x3FFF_FFFF)) in
  Int64.to_int (Int64.logand w 0x3FFF_FFFFL)

(* min(backoff_max, base * 2^(n-1)) * (1 + jitter), jitter in [0, 1)
   drawn from the per-(seed, id, attempt) stream *)
let backoff_delay cfg ~id ~attempt =
  let nominal =
    Float.min cfg.backoff_max
      (cfg.backoff_base *. Float.pow 2.0 (float_of_int (attempt - 1)))
  in
  let u = stream cfg (Printf.sprintf "backoff/%s/%d" id attempt) in
  nominal *. (1.0 +. (float_of_int (u mod 1000) /. 1000.0))

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)

exception Injected_crash

(* The fault the chaos harness assigns to this obligation, normalized
   against the config: persistence is clamped to the retry budget (the
   attempt after the last injected one always runs clean, so chaos can
   perturb the path but never the verdict), and a hang with no deadline
   configured degrades to a crash (nothing would ever cancel it). *)
let fault_for cfg (o : Obligation.t) =
  match cfg.chaos with
  | None -> Engine_chaos.No_fault
  | Some ch -> (
      match Engine_chaos.obl_fault ch ~id:o.Obligation.id with
      | Engine_chaos.No_fault -> Engine_chaos.No_fault
      | Engine_chaos.Crash p -> Engine_chaos.Crash (min p cfg.retries)
      | Engine_chaos.Hang p ->
          let p = min p cfg.retries in
          if cfg.timeout = None then Engine_chaos.Crash p else Engine_chaos.Hang p)

let injected_at fault n =
  match fault with
  | Engine_chaos.No_fault -> None
  | Engine_chaos.Crash p -> if n <= p then Some Plan.Obl_crash else None
  | Engine_chaos.Hang p -> if n <= p then Some Plan.Obl_hang else None

(* An injected hang makes no progress; only the cancellation poll gets
   us out.  [sleep] keeps it from spinning a core flat out (and is a
   no-op under mocked clocks in tests). *)
let hang cfg =
  let rec spin () =
    Mirverif.Cancel.poll ();
    cfg.sleep 0.0005;
    spin ()
  in
  spin ()

(* ------------------------------------------------------------------ *)
(* Attempts                                                            *)

type att = A_ok of Obligation.outcome | A_crash of string | A_timeout

let run_attempt cfg (o : Obligation.t) ~fault ~n =
  match
    with_deadline cfg (fun () ->
        (match injected_at fault n with
        | Some Plan.Obl_crash ->
            Option.iter (fun ch -> Engine_chaos.note ch Plan.Obl_crash) cfg.chaos;
            raise Injected_crash
        | Some Plan.Obl_hang ->
            Option.iter (fun ch -> Engine_chaos.note ch Plan.Obl_hang) cfg.chaos;
            hang cfg
        | _ -> ());
        o.Obligation.run ())
  with
  | outcome -> A_ok outcome
  | exception Mirverif.Cancel.Deadline_exceeded -> A_timeout
  | exception Injected_crash -> A_crash "chaos: injected crash"
  | exception exn -> A_crash (Printexc.to_string exn)

let run_fallback cfg fb =
  match with_deadline cfg fb with
  | outcome -> Some outcome
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)

let failure_report (o : Obligation.t) ~case ~reason =
  Obligation.outcome
    [ Mirverif.Report.add_failure (Mirverif.Report.empty o.Obligation.id) ~case ~reason ]

let quarantined_outcome (o : Obligation.t) attempts =
  match attempts with
  | [ { status = Crashed reason; _ } ] ->
      (* the unsupervised shape: a single unretried crash reports
         exactly as the pre-supervisor pool did *)
      failure_report o ~case:"exception"
        ~reason:(Printf.sprintf "obligation raised: %s" reason)
  | _ ->
      let n = List.length attempts in
      let last_desc =
        match (List.nth attempts (n - 1)).status with
        | Crashed r -> Printf.sprintf "raised: %s" r
        | Timed_out -> "timed out"
        | Ran_ok -> "succeeded"
      in
      failure_report o ~case:"quarantine"
        ~reason:
          (Printf.sprintf "obligation quarantined after %d attempt(s); last attempt %s"
             n last_desc)

(* ------------------------------------------------------------------ *)
(* The supervision loop                                                *)

let supervise cfg (o : Obligation.t) =
  if cfg.timeout <> None then Mirverif.Cancel.set_hook hook;
  let fault = fault_for cfg o in
  let max_attempts = 1 + max 0 cfg.retries in
  let rec go n acc =
    match run_attempt cfg o ~fault ~n with
    | A_ok outcome ->
        let attempts =
          List.rev ({ n; status = Ran_ok; injected = injected_at fault n; backoff = 0.0 } :: acc)
        in
        let resolution = if n = 1 then Completed else Recovered in
        { outcome; trail = { attempts; resolution }; cacheable = true }
    | (A_crash _ | A_timeout) as res ->
        let status = match res with A_crash r -> Crashed r | _ -> Timed_out in
        if n < max_attempts then begin
          let delay = backoff_delay cfg ~id:o.Obligation.id ~attempt:n in
          cfg.sleep delay;
          go (n + 1) ({ n; status; injected = injected_at fault n; backoff = delay } :: acc)
        end
        else begin
          let attempts =
            List.rev ({ n; status; injected = injected_at fault n; backoff = 0.0 } :: acc)
          in
          (* degradation ladder: when the compiled path crashed (as
             opposed to merely running out of time), discharge the
             obligation once through its conservative fallback — for
             code proofs, the reference interpreter.  The fallback
             depends on the same fingerprinted inputs, so its outcome
             is cacheable; the divergence itself is flagged in the
             trail, the trace, and the supervision summary. *)
          let crashed =
            List.exists (fun a -> match a.status with Crashed _ -> true | _ -> false) attempts
          in
          match (if crashed then o.Obligation.fallback else None) with
          | Some fb -> (
              match run_fallback cfg fb with
              | Some outcome ->
                  { outcome; trail = { attempts; resolution = Fell_back }; cacheable = true }
              | None ->
                  {
                    outcome = quarantined_outcome o attempts;
                    trail = { attempts; resolution = Quarantined };
                    cacheable = false;
                  })
          | None ->
              {
                outcome = quarantined_outcome o attempts;
                trail = { attempts; resolution = Quarantined };
                cacheable = false;
              }
        end
  in
  go 1 []

(* ------------------------------------------------------------------ *)
(* Reporting helpers                                                   *)

let status_to_string = function
  | Ran_ok -> "ok"
  | Crashed _ -> "crash"
  | Timed_out -> "timeout"

let resolution_to_string = function
  | Completed -> "completed"
  | Recovered -> "recovered"
  | Fell_back -> "fell-back"
  | Quarantined -> "quarantined"

(* a trail worth telling the user about: anything beyond a clean
   single attempt (or a cache hit) *)
let eventful t =
  match (t.attempts, t.resolution) with
  | ([] | [ { status = Ran_ok; _ } ]), Completed -> false
  | _ -> true

type totals = {
  supervised : int;  (* obligations with an eventful trail *)
  retried : int;
  recovered : int;
  fell_back : int;
  quarantined : int;
  timeouts : int;  (* timed-out attempts, total *)
  crashes : int;  (* crashed attempts, total *)
}

let totals trails =
  List.fold_left
    (fun t tr ->
      if not (eventful tr) then t
      else
        let timeouts, crashes =
          List.fold_left
            (fun (ti, cr) a ->
              match a.status with
              | Timed_out -> (ti + 1, cr)
              | Crashed _ -> (ti, cr + 1)
              | Ran_ok -> (ti, cr))
            (0, 0) tr.attempts
        in
        {
          supervised = t.supervised + 1;
          retried = (t.retried + if List.length tr.attempts > 1 then 1 else 0);
          recovered = (t.recovered + if tr.resolution = Recovered then 1 else 0);
          fell_back = (t.fell_back + if tr.resolution = Fell_back then 1 else 0);
          quarantined = (t.quarantined + if tr.resolution = Quarantined then 1 else 0);
          timeouts = t.timeouts + timeouts;
          crashes = t.crashes + crashes;
        })
    { supervised = 0; retried = 0; recovered = 0; fell_back = 0; quarantined = 0;
      timeouts = 0; crashes = 0 }
    trails

(* Length-prefixed JSON frames over a Unix-domain stream socket.

   A frame is a 4-byte big-endian payload length followed by the
   payload bytes.  The length field is bounded by [max_frame]: a peer
   announcing more is protocol abuse (or a desynchronized stream) and
   is rejected before any allocation — the daemon answers with an error
   response and closes the connection instead of crashing or buffering
   unboundedly. *)

let max_frame = 8 * 1024 * 1024

exception Closed
(* peer hung up mid-frame (EOF or EPIPE); connection-level, not fatal
   to the process *)

exception Timeout
(* a nonblocking peer stopped draining its socket buffer before the
   write deadline; connection-level, like [Closed] *)

(* ------------------------------------------------------------------ *)
(* Blocking path (clients, fleet workers)                              *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
    in
    write_all fd s (off + n) (len - n)
  end

let header n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let decode_header s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Protocol.frame: %d bytes exceeds max_frame" n);
  header n ^ payload

let write_frame fd payload =
  let f = frame payload in
  write_all fd f 0 (String.length f)

(* Bounded framed write for the dispatcher's client sockets, which are
   in nonblocking mode: a stalled peer (full socket buffer) must not
   head-of-line block the select loop forever.  Waits for writability
   with the remaining budget between partial writes; raises [Timeout]
   when [timeout_s] elapses without progress. *)
let write_frame_deadline fd payload ~timeout_s =
  let f = frame payload in
  let len = String.length f in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let wait_writable () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise Timeout;
    match Unix.select [] [ fd ] [] remaining with
    | _, [], _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec go off =
    if off < len then
      match Unix.write_substring fd f off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait_writable ();
          go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise Closed
  in
  go 0

(* [Some s] on a whole read, [None] on EOF at a frame boundary
   (n = 0 consumed), [Closed] on EOF mid-read. *)
let read_exactly fd n =
  if n = 0 then Some ""
  else begin
    let b = Bytes.create n in
    let rec go off =
      if off = n then Some (Bytes.unsafe_to_string b)
      else
        match Unix.read fd b off (n - off) with
        | 0 -> if off = 0 then None else raise Closed
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
            if off = 0 then None else raise Closed
    in
    go 0
  end

let read_frame fd : (string option, string) result =
  match read_exactly fd 4 with
  | None -> Ok None
  | Some hdr ->
      let n = decode_header hdr 0 in
      if n > max_frame then
        Error (Printf.sprintf "oversized frame: %d bytes (max %d)" n max_frame)
      else (
        match read_exactly fd n with
        | Some payload -> Ok (Some payload)
        | None -> raise Closed)

(* ------------------------------------------------------------------ *)
(* Incremental path (the server's select loop)                         *)

module Reader = struct
  (* Buffered deframer: [feed] appends raw bytes as they arrive,
     [next] yields complete frames.  Torn reads — a header split
     across two reads, a payload arriving byte by byte — are the
     normal case here, not an error. *)
  type t = { mutable buf : string }

  let create () = { buf = "" }
  let feed t s = t.buf <- t.buf ^ s
  let buffered t = String.length t.buf

  let next t : [ `Frame of string | `More | `Oversized of int ] =
    let len = String.length t.buf in
    if len < 4 then `More
    else begin
      let n = decode_header t.buf 0 in
      if n > max_frame then `Oversized n
      else if len < 4 + n then `More
      else begin
        let payload = String.sub t.buf 4 n in
        t.buf <- String.sub t.buf (4 + n) (len - 4 - n);
        `Frame payload
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Tagged-item packing (dispatcher <-> fleet worker)                   *)

(* The dispatcher forwards client request payloads to workers verbatim
   — no re-serialization — so a worker frame carries a sequence of
   (tag, payload) items, each length-prefixed: the admission batch on
   the way in, the response set on the way out. *)

(* Exact packed footprint of one item: two 4-byte length headers plus
   the tag and payload bytes.  [String.length (pack_items items)] is
   the sum of the items' sizes — the admission batcher uses this to
   keep a batch frameable under [max_frame]. *)
let item_size (tag, payload) = 8 + String.length tag + String.length payload

let pack_items items =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string buf (header (String.length tag));
      Buffer.add_string buf tag;
      Buffer.add_string buf (header (String.length payload));
      Buffer.add_string buf payload)
    items;
  Buffer.contents buf

let unpack_items s : ((string * string) list, string) result =
  let len = String.length s in
  let rec go off acc =
    if off = len then Ok (List.rev acc)
    else if off + 4 > len then Error "truncated item tag length"
    else begin
      let tn = decode_header s off in
      let off = off + 4 in
      if tn < 0 || off + tn + 4 > len then Error "truncated item tag"
      else begin
        let tag = String.sub s off tn in
        let off = off + tn in
        let pn = decode_header s off in
        let off = off + 4 in
        if pn < 0 || off + pn > len then Error "truncated item payload"
        else go (off + pn) ((tag, String.sub s off pn) :: acc)
      end
    end
  in
  go 0 []

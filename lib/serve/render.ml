(* Phase rendering, shared by the one-shot CLI (std_formatter) and the
   serve daemon (buffer formatter): both produce the exact bytes the
   sequential pass always printed, so a daemon response's [stdout]
   field diffs clean against the CLI.  Stdout carries only verification
   content — no job counts, timings or cache statistics — so the text
   is byte-identical at any job count, cache state, fleet size, or
   batching window. *)

module Report = Mirverif.Report

let phase_header ppf name = Format.fprintf ppf "@.=== %s ===@." name

let check_reports ppf ~failures reports =
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s@." (Report.to_string r);
      if not (Report.ok r) then incr failures)
    reports

(* Phases 1-2: compile the module, assemble and check the stack. *)
let prelude ppf ~failures layout =
  phase_header ppf "1. mirlightgen (Rustlite -> MIRlight)";
  let out = Hyperenclave.Layers.compiled layout in
  Format.fprintf ppf "  functions: %d, source lines: %d, mirlight lines: %d@."
    (List.length out.Rustlite.Pipeline.function_names)
    out.Rustlite.Pipeline.source_lines out.Rustlite.Pipeline.mir_lines;

  phase_header ppf "2. layer stack";
  let issues = Hyperenclave.Layers.stratification_ok layout in
  Format.fprintf ppf "  %d layers, stratification issues: %d@."
    Hyperenclave.Layers.layer_count (List.length issues);
  List.iter
    (fun i -> Format.fprintf ppf "  %a@." Mirverif.Layer.pp_stratification_issue i)
    issues;
  if issues <> [] then incr failures

let layer_of_code_proof_id id =
  match String.split_on_char '/' id with _ :: layer :: _ -> layer | _ -> "?"

(* Print the per-phase sections exactly as the sequential pass did,
   from the execs (which arrive in DAG insertion order, independent of
   scheduling). *)
let engine_results ppf ~failures ~security execs =
  let of_phase = Summary.of_phase in
  phase_header ppf "3. static analysis (MIRlight dataflow lints)";
  let an = of_phase execs "analysis" in
  let findings = Summary.lint_findings execs in
  let body_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        Summary.is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.all)
      findings
  in
  let at, ap, _, _ =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) an)
  in
  Format.fprintf ppf "  %d functions, %d lint checks: %d passed, %d findings@."
    (List.length an) at ap (List.length body_errors);
  (* a per-body failure without a finding is an engine-level problem
     (e.g. a layer listing a function with no MIRlight body) *)
  List.iter
    (fun (e : Engine.Pool.exec) ->
      if e.outcome.Engine.Obligation.findings = [] then
        List.iter
          (fun r ->
            if not (Report.ok r) then begin
              incr failures;
              Format.fprintf ppf "  FAIL [%s] %s@."
                (layer_of_code_proof_id e.obligation.Engine.Obligation.id)
                (Report.to_string r)
            end)
          e.outcome.Engine.Obligation.reports)
    an;
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.fprintf ppf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    body_errors;

  phase_header ppf "3b. abstract interpretation (interval bounds + secret flow)";
  let ab = of_phase execs "absint" in
  let absint_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        Summary.is_error f
        && List.mem f.Analysis.Lint.kind Analysis.Lint.interprocedural)
      findings
  in
  let count kind =
    List.length
      (List.filter
         (fun (_, (f : Analysis.Lint.finding)) -> f.Analysis.Lint.kind = kind)
         absint_errors)
  in
  Format.fprintf ppf
    "  %d SCC obligations: %d secret-flow findings, %d interval findings, %d \
     arith sites discharged@."
    (List.length ab)
    (count Analysis.Lint.Secret_flow)
    (count Analysis.Lint.Interval_bounds)
    (List.length
       (List.filter
          (fun (_, (f : Analysis.Lint.finding)) ->
            Summary.is_discharge f
            && f.Analysis.Lint.discharged_by
               = Some (Analysis.Lint.to_string Analysis.Lint.Interval_bounds))
          findings));
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.fprintf ppf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    absint_errors;

  phase_header ppf "3c. borrow checking (NLL liveness regions + loan dataflow)";
  let bw = of_phase execs "borrow" in
  let borrow_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        Summary.is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.borrow)
      findings
  in
  let bt, bp, _, _ =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) bw)
  in
  Format.fprintf ppf "  %d functions, %d borrow checks: %d passed, %d findings@."
    (List.length bw) bt bp (List.length borrow_errors);
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.fprintf ppf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    borrow_errors;

  phase_header ppf "3d. alias analysis (Andersen points-to footprints)";
  let al = of_phase execs "alias" in
  let alias_errors =
    List.filter
      (fun (_, (f : Analysis.Lint.finding)) ->
        Summary.is_error f && List.mem f.Analysis.Lint.kind Analysis.Lint.alias)
      findings
  in
  Format.fprintf ppf "  %d SCC obligations: %d alias findings, %d warnings discharged@."
    (List.length al)
    (List.length alias_errors)
    (List.length
       (List.filter
          (fun (_, (f : Analysis.Lint.finding)) ->
            f.Analysis.Lint.discharged_by
            = Some (Analysis.Lint.to_string Analysis.Lint.Alias_footprint))
          findings));
  List.iter
    (fun (fn, f) ->
      incr failures;
      Format.fprintf ppf "  FAIL [%s] %s@." fn (Analysis.Lint.finding_to_string f))
    alias_errors;

  phase_header ppf "4. code proofs (code conforms to low specs)";
  let cp = of_phase execs "code-proofs" in
  let t, p, s, f =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) cp)
  in
  Format.fprintf ppf "  %d functions, %d cases: %d passed, %d skipped, %d failed@."
    (List.length cp) t p s f;
  List.iter
    (fun (e : Engine.Pool.exec) ->
      List.iter
        (fun r ->
          if not (Report.ok r) then begin
            incr failures;
            Format.fprintf ppf "  FAIL [%s] %s@."
              (layer_of_code_proof_id e.obligation.Engine.Obligation.id)
              (Report.to_string r)
          end)
        e.outcome.Engine.Obligation.reports)
    cp;

  phase_header ppf "5. page-table refinement (flat <-> tree, Sec. 4.1)";
  check_reports ppf ~failures
    (Report.merge_by_name (Summary.reports_of (of_phase execs "refinement")));

  if security then begin
    phase_header ppf "6. invariants (Sec. 5.2) on reachable states";
    check_reports ppf ~failures
      (Report.merge_by_name (Summary.reports_of (of_phase execs "invariants")));

    phase_header ppf "7. noninterference (Lemmas 5.2-5.4, Sec. 5.3)";
    check_reports ppf ~failures (Summary.reports_of (of_phase execs "noninterference"));

    phase_header ppf "8. trace noninterference (Theorem 5.1)";
    check_reports ppf ~failures (Summary.reports_of (of_phase execs "trace-ni"));

    phase_header ppf "9. attack scenarios (Fig. 5 + Sec. 4.1 shallow copy)";
    List.iter
      (fun (e : Engine.Pool.exec) ->
        Format.fprintf ppf "  %s@." e.outcome.Engine.Obligation.log;
        if Engine.Obligation.failure_count e.outcome > 0 then incr failures)
      (of_phase execs "attacks")
  end

let model_check ppf ~failures (req : Engine.Plan.mc_request) execs =
  phase_header ppf "11. model checking (exhaustive bounded interleavings)";
  let r = Summary.mc_rollup execs in
  Format.fprintf ppf "  monitor: %s@."
    (if req.Engine.Plan.mc_flush then "correct"
     else "buggy (unmap does not flush the TLB)");
  Format.fprintf ppf
    "  depth %d, %d-event universe, reduction %s: %d states, %d transitions, \
     %d deduped, %d pruned@."
    req.Engine.Plan.mc_depth
    (List.length (Mc.Universe.events req.Engine.Plan.mc_layout))
    (if req.Engine.Plan.mc_por then "on" else "off")
    r.Mc.Explore.r_states r.Mc.Explore.r_transitions r.Mc.Explore.r_deduped
    r.Mc.Explore.r_pruned;
  List.iter
    (fun (v : Mc.Explore.parsed_violation) ->
      Format.fprintf ppf "  VIOLATION %s at state %s: %s@." v.Mc.Explore.p_kind
        v.Mc.Explore.p_state v.Mc.Explore.p_detail;
      Format.fprintf ppf "    witness (%d events, ddmin spent %d replays):@."
        (List.length v.Mc.Explore.p_witness)
        v.Mc.Explore.p_evals;
      List.iter (Format.fprintf ppf "      %s@.") v.Mc.Explore.p_witness)
    r.Mc.Explore.r_violations;
  match (r.Mc.Explore.r_violations, req.Engine.Plan.mc_flush) with
  | [], true ->
      Format.fprintf ppf
        "  no violations: every reachable state satisfies the invariants, TLB \
         consistency and step-indistinguishability@."
  | [], false ->
      incr failures;
      Format.fprintf ppf
        "  UNEXPECTED: the buggy monitor survived exhaustive exploration@."
  | vs, flush ->
      if flush then incr failures
      else if
        List.for_all
          (fun (v : Mc.Explore.parsed_violation) ->
            String.equal v.Mc.Explore.p_kind "tlb-consistency")
          vs
      then
        Format.fprintf ppf
          "  rediscovered the planted stale-TLB bug exhaustively (minimal \
           witness: %d events)@."
          (Option.value ~default:0 (Mc.Explore.min_witness r))
      else begin
        incr failures;
        Format.fprintf ppf
          "  UNEXPECTED: violations beyond the planted TLB-consistency bug@."
      end

let verdict ppf failures =
  Format.fprintf ppf "@.%s@."
    (if failures = 0 then "VERIFICATION PASS: all checks succeeded"
     else Printf.sprintf "VERIFICATION FAILED: %d phase(s) reported failures" failures)

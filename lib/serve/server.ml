(* The --serve daemon: a Unix-socket dispatcher in front of a fleet of
   forked verification workers.

   Topology:

     clients ──frames──▶ dispatcher (select loop, no verification)
                            │  admission batch: up to [batch_max]
                            │  pending requests, or whatever arrived
                            │  within [batch_window_ms]
                            ▼
               worker 0 … worker N-1   (forked processes, own OCaml
                            │           runtime and GC, resident
                            │           session memos)
                            ▼
               shared --cache directory (pack files, advisory-locked
               flushes; Cache.refresh before each batch)

   The dispatcher owns every client connection and never blocks on
   verification, so a worker death cannot drop a response: the victim's
   in-flight batch is re-queued at the front and a replacement worker
   is forked (the process-level analogue of the pool's worker-respawn
   supervision).  Request payloads cross the dispatcher verbatim
   ({!Protocol.pack_items}); only the tiny control envelope (op field)
   is parsed here.

   [fleet = 0] serves in-process instead — no forks, the dispatcher
   itself runs the driver between select rounds.  Simpler for tests;
   same protocol, byte-identical responses. *)

module Jsonx = Engine.Jsonx

type config = {
  socket : string;
  fleet : int;  (* worker processes; 0 = in-process *)
  batch_window_ms : float;
  batch_max : int;
  cache_dir : string option;
  jobs : int;  (* pool domains per worker *)
  retries : int;
  timeout_ms : int;
  prewarm : bool;  (* build the default-geometry plan at worker start *)
}

let default_config ~socket =
  {
    socket;
    fleet = 2;
    batch_window_ms = 2.0;
    batch_max = 32;
    cache_dir = None;
    jobs = 1;
    retries = 2;
    timeout_ms = 0;
    prewarm = true;
  }

let log fmt = Format.eprintf ("serve: " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)

let make_session cfg =
  Driver.session ?cache_dir:cfg.cache_dir ~jobs:cfg.jobs ~retries:cfg.retries
    ~timeout_ms:cfg.timeout_ms ()

let prewarm_session cfg =
  if cfg.prewarm then
    ignore
      (Engine.Plan.build_memo ~seed:Driver.default_request.Driver.seed
         (Driver.layout_of_geometry Driver.default_request.Driver.geometry))

(* Blocking loop over the dispatcher socketpair: one frame in = one
   admission batch, one frame out = its responses.  EOF = dispatcher
   shut us down.  A driver exception turns into per-item error
   responses — the worker survives to take the next batch. *)
let worker_loop cfg fd =
  let session = make_session cfg in
  prewarm_session cfg;
  let rec loop () =
    match Protocol.read_frame fd with
    | Ok None -> ()
    | Error _ -> ()
    | exception Protocol.Closed -> ()
    | Ok (Some payload) -> (
        match Protocol.unpack_items payload with
        | Error _ -> ()
        | Ok items ->
            let responses =
              try Driver.handle_batch session items
              with e ->
                let msg = "worker error: " ^ Printexc.to_string e in
                List.map (fun (tag, _) -> (tag, Driver.error_response msg)) items
            in
            (* If the packed responses exceed max_frame, [frame] raises
               Invalid_argument; dying on it would make the dispatcher
               requeue the very batch that killed us — an infinite
               crash/respawn livelock.  Answer each tag with a small
               error instead and keep serving. *)
            let send rs =
              match Protocol.write_frame fd (Protocol.pack_items rs) with
              | () -> true
              | exception Protocol.Closed -> false
              | exception Invalid_argument _ -> (
                  let errs =
                    List.map
                      (fun (tag, _) ->
                        ( tag,
                          Driver.error_response
                            "batch responses exceed the frame limit" ))
                      rs
                  in
                  match Protocol.write_frame fd (Protocol.pack_items errs) with
                  | () -> true
                  | exception Protocol.Closed -> false)
            in
            if send responses then loop ())
  in
  loop ()

let fork_worker cfg ~index ~other_fds ~listen_fd =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      (* child: drop every dispatcher-side fd, restore default signal
         dispositions, serve batches until EOF.  [_exit] skips at_exit
         handlers inherited from the parent binary. *)
      Unix.close parent_fd;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) other_fds;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      (try worker_loop cfg child_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close child_fd;
      log "fleet worker %d started (pid %d)" index pid;
      (pid, parent_fd)

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)

type worker = {
  w_index : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr;
  mutable w_reader : Protocol.Reader.t;
  mutable w_inflight : (string * string) list;  (* dispatched batch, [] = idle *)
}

type client = { c_reader : Protocol.Reader.t }

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  clients : (Unix.file_descr, client) Hashtbl.t;
  workers : worker array;  (* empty when fleet = 0 *)
  inproc : Driver.session option;  (* fleet = 0 *)
  mutable tag_owner : (string * Unix.file_descr) list;  (* tag -> client *)
  mutable next_tag : int;
  pending : (string * string) Queue.t;  (* (tag, payload) admission queue *)
  mutable pending_since : float;  (* enqueue time of the oldest pending item *)
  mutable stop : bool;
  mutable dead_fds : Unix.file_descr list;
      (* fds closed during the current select pass: a stale entry still
         in the readable set must be skipped, because the kernel may
         already have reused the number for a respawned worker's pipe —
         reading through the alias would block the dispatcher *)
}

let owner_of st tag = List.assoc_opt tag st.tag_owner
let forget_tag st tag = st.tag_owner <- List.remove_assoc tag st.tag_owner

let forget_client st fd =
  (match Hashtbl.find_opt st.clients fd with
  | Some _ ->
      Hashtbl.remove st.clients fd;
      st.dead_fds <- fd :: st.dead_fds;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  st.tag_owner <- List.filter (fun (_, c) -> c <> fd) st.tag_owner

(* Client fds are nonblocking and writes carry a deadline: one stalled
   client (full socket buffer) must not head-of-line block every other
   client and worker behind the select loop. *)
let client_send_timeout_s = 10.0

let send_to_client st fd payload =
  let payload =
    if String.length payload > Protocol.max_frame then
      Driver.error_response "response exceeds the frame limit"
    else payload
  in
  match Protocol.write_frame_deadline fd payload ~timeout_s:client_send_timeout_s with
  | () -> ()
  | exception Protocol.Closed -> forget_client st fd
  | exception Protocol.Timeout ->
      log "client stalled for %.0fs; dropping it" client_send_timeout_s;
      forget_client st fd
  | exception Unix.Unix_error _ -> forget_client st fd

(* Control envelope: the dispatcher parses each client frame only far
   enough to route it.  Verify payloads are enqueued verbatim; ping and
   shutdown are answered here; a frame that is not JSON at all is
   answered with an error response (the connection survives — framing
   is still intact). *)
let admit st fd payload =
  match Jsonx.parse payload with
  | Error msg -> send_to_client st fd (Driver.error_response ("bad request: " ^ msg))
  | Ok j -> (
      match Option.bind (Jsonx.member "op" j) Jsonx.to_string_opt with
      | Some "ping" ->
          send_to_client st fd
            (Jsonx.to_string
               (Jsonx.Obj
                  [
                    ("ok", Jsonx.Bool true);
                    ("op", Str "pong");
                    ("fleet", Int (Array.length st.workers));
                  ]))
      | Some "shutdown" ->
          st.stop <- true;
          send_to_client st fd
            (Jsonx.to_string
               (Jsonx.Obj [ ("ok", Jsonx.Bool true); ("stopping", Bool true) ]))
      | Some "verify" | None ->
          let tag = string_of_int st.next_tag in
          st.next_tag <- st.next_tag + 1;
          st.tag_owner <- (tag, fd) :: st.tag_owner;
          if Queue.is_empty st.pending then st.pending_since <- Unix.gettimeofday ();
          Queue.add (tag, payload) st.pending
      | Some op ->
          send_to_client st fd (Driver.error_response ("unknown op " ^ op)))

let deliver st (tag, response) =
  match owner_of st tag with
  | None -> ()  (* client went away; drop the payload *)
  | Some fd ->
      forget_tag st tag;
      send_to_client st fd response

(* A batch is bounded by count AND by packed bytes: every client may
   legally send a payload up to max_frame, so a count-only bound could
   make [Protocol.pack_items] of a full batch exceed the single
   dispatcher→worker frame and crash the daemon in [Protocol.frame].
   The head item is always taken — if even alone it cannot be framed
   (a payload within a few bytes of max_frame), [dispatch_to] fails it
   with an error response instead of crashing. *)
let take_batch st =
  let rec take acc n bytes =
    if n >= st.cfg.batch_max || Queue.is_empty st.pending then List.rev acc
    else
      let item = Queue.peek st.pending in
      let bytes = bytes + Protocol.item_size item in
      if acc <> [] && bytes > Protocol.max_frame then List.rev acc
      else begin
        ignore (Queue.take st.pending);
        take (item :: acc) (n + 1) bytes
      end
  in
  let items = take [] 0 0 in
  if not (Queue.is_empty st.pending) then st.pending_since <- Unix.gettimeofday ();
  items

let idle_worker st =
  let found = ref None in
  Array.iter
    (fun w -> if !found = None && w.w_inflight = [] then found := Some w)
    st.workers;
  !found

let respawn st w =
  st.dead_fds <- w.w_fd :: st.dead_fds;
  (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
  log "fleet worker %d (pid %d) died; respawning" w.w_index w.w_pid;
  (* the in-flight batch is re-queued at the front: a worker death
     never drops a response *)
  List.iter (fun item -> Queue.push item st.pending) (List.rev w.w_inflight);
  if not (Queue.is_empty st.pending) then st.pending_since <- Unix.gettimeofday ();
  w.w_inflight <- [];
  let other_fds =
    Array.to_list st.workers
    |> List.filter_map (fun o -> if o.w_index = w.w_index then None else Some o.w_fd)
  in
  let pid, fd = fork_worker st.cfg ~index:w.w_index ~other_fds ~listen_fd:st.listen_fd in
  w.w_pid <- pid;
  w.w_fd <- fd;
  w.w_reader <- Protocol.Reader.create ()

let fail_batch st items msg =
  List.iter (fun (tag, _) -> deliver st (tag, Driver.error_response msg)) items

let dispatch_to st w items =
  w.w_inflight <- items;
  match Protocol.write_frame w.w_fd (Protocol.pack_items items) with
  | () -> ()
  | exception Invalid_argument _ ->
      (* a single admitted payload so close to max_frame that even a
         one-item batch cannot be framed: answer it with an error —
         requeueing would retry the same unframeable batch forever *)
      w.w_inflight <- [];
      fail_batch st items "request exceeds the worker frame limit"
  | exception Protocol.Closed -> respawn st w
  | exception Unix.Unix_error _ -> respawn st w

(* Admission batching: dispatch when a worker is idle and either the
   batch is full, the oldest pending request has waited out the window,
   or we are draining for shutdown. *)
let window_expired st now =
  Queue.length st.pending >= st.cfg.batch_max
  || now -. st.pending_since >= st.cfg.batch_window_ms /. 1000.
  || st.stop

let rec dispatch_ready st now =
  if not (Queue.is_empty st.pending) && window_expired st now then
    match idle_worker st with
    | Some w ->
        dispatch_to st w (take_batch st);
        dispatch_ready st now
    | None -> ()

(* In-process service (fleet = 0): drain the admission queue between
   select rounds.  Requests that arrive while a batch is being verified
   pile up and form the next batch — the same coalescing, without the
   fleet. *)
let serve_inproc_pending st session =
  while not (Queue.is_empty st.pending) do
    let items = take_batch st in
    List.iter (deliver st) (Driver.handle_batch session items)
  done

let read_chunk = Bytes.create 65536

let on_client_readable st fd =
  match Hashtbl.find_opt st.clients fd with
  | None -> ()
  | Some c -> (
      match Unix.read fd read_chunk 0 (Bytes.length read_chunk) with
      | 0 -> forget_client st fd
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          forget_client st fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* nonblocking client fd, spurious readability *)
          ()
      | n ->
          Protocol.Reader.feed c.c_reader (Bytes.sub_string read_chunk 0 n);
          let rec drain () =
            match Protocol.Reader.next c.c_reader with
            | `Frame payload ->
                admit st fd payload;
                drain ()
            | `More -> ()
            | `Oversized bytes ->
                (* unrecoverable desync: answer, then drop the stream *)
                send_to_client st fd
                  (Driver.error_response
                     (Printf.sprintf "oversized frame: %d bytes (max %d)" bytes
                        Protocol.max_frame));
                forget_client st fd
          in
          drain ())

let on_worker_readable st w =
  match Unix.read w.w_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> respawn st w
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> respawn st w
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | n ->
      Protocol.Reader.feed w.w_reader (Bytes.sub_string read_chunk 0 n);
      let rec drain () =
        match Protocol.Reader.next w.w_reader with
        | `Frame payload ->
            (match Protocol.unpack_items payload with
            | Ok responses ->
                w.w_inflight <- [];
                List.iter (deliver st) responses
            | Error _ -> ());
            drain ()
        | `More -> ()
        | `Oversized _ -> respawn st w
      in
      drain ()

let select_timeout st =
  if st.stop then 0.05
  else if Queue.is_empty st.pending then 0.5
  else
    let age = Unix.gettimeofday () -. st.pending_since in
    Float.max 0.001 ((st.cfg.batch_window_ms /. 1000.) -. age)

(* Is a daemon already answering on [path]?  A successful connect means
   a live listener; ECONNREFUSED (or any other failure) means the
   socket file is a stale leftover from a dead process. *)
let socket_live path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let serve cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if Sys.file_exists cfg.socket then
    if socket_live cfg.socket then
      failwith
        (Printf.sprintf
           "%s: a daemon is already listening on this socket (shut it down \
            first, or pick another --serve path)"
           cfg.socket)
    else (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  let fleet = max 0 cfg.fleet in
  (* fork the whole fleet before anything can spawn a Domain: a forked
     multicore runtime must be single-domain *)
  let workers =
    let acc = ref [] in
    for i = 0 to fleet - 1 do
      let other_fds = List.map (fun w -> w.w_fd) !acc in
      let pid, fd = fork_worker cfg ~index:i ~other_fds ~listen_fd in
      acc :=
        { w_index = i; w_pid = pid; w_fd = fd;
          w_reader = Protocol.Reader.create (); w_inflight = [] }
        :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  let inproc = if fleet = 0 then Some (make_session cfg) else None in
  (match inproc with
  | Some _ -> prewarm_session cfg
  | None -> ());
  let st =
    {
      cfg;
      listen_fd;
      clients = Hashtbl.create 16;
      workers;
      inproc;
      tag_owner = [];
      next_tag = 0;
      pending = Queue.create ();
      pending_since = 0.0;
      stop = false;
      dead_fds = [];
    }
  in
  let stop_signal _ = st.stop <- true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  log "listening on %s (fleet %d, jobs %d, window %.1fms, batch %d, cache %s)"
    cfg.socket fleet cfg.jobs cfg.batch_window_ms cfg.batch_max
    (match cfg.cache_dir with Some d -> d | None -> "off");
  let all_idle () = Array.for_all (fun w -> w.w_inflight = []) st.workers in
  let running () =
    not (st.stop && Queue.is_empty st.pending && all_idle ())
  in
  while running () do
    st.dead_fds <- [];
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients [] in
    let worker_fds = Array.to_list (Array.map (fun w -> w.w_fd) st.workers) in
    let readable =
      match
        Unix.select (st.listen_fd :: (client_fds @ worker_fds)) [] []
          (select_timeout st)
      with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
    in
    if List.mem st.listen_fd readable then begin
      match Unix.accept st.listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          Hashtbl.replace st.clients fd { c_reader = Protocol.Reader.create () }
      | exception Unix.Unix_error _ -> ()
    end;
    (* handlers can close fds mid-pass (forget_client, respawn) and the
       kernel may hand the same number straight back for a respawned
       worker's pipe — a later stale entry in [readable] would then
       alias the fresh fd, so anything recorded dead this pass is
       skipped *)
    List.iter
      (fun fd ->
        if fd <> st.listen_fd && not (List.memq fd st.dead_fds) then
          if Hashtbl.mem st.clients fd then on_client_readable st fd
          else
            match Array.find_opt (fun w -> w.w_fd = fd) st.workers with
            | Some w -> on_worker_readable st w
            | None -> ())
      readable;
    (match st.inproc with
    | Some session -> serve_inproc_pending st session
    | None -> dispatch_ready st (Unix.gettimeofday ()));
    ()
  done;
  (* graceful teardown: close the worker pipes (workers see EOF and
     exit), reap, unlink the socket *)
  Array.iter
    (fun w ->
      (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
    st.workers;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.clients;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  log "stopped"

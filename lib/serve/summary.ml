(* Run-summary construction, shared by the one-shot CLI and the serve
   daemon.  Moved out of bin/hyperenclave_verify.ml so a daemon
   response and a one-shot --json-out are produced by the same code —
   the serve CI gate diffs them byte for byte (after {!scrub}). *)

module Jsonx = Engine.Jsonx
module Report = Mirverif.Report

(* ------------------------------------------------------------------ *)
(* Exec helpers                                                        *)

let of_phase execs phase =
  List.filter
    (fun (e : Engine.Pool.exec) ->
      String.equal e.obligation.Engine.Obligation.phase phase)
    execs

let reports_of execs =
  List.concat_map
    (fun (e : Engine.Pool.exec) -> e.outcome.Engine.Obligation.reports)
    execs

let findings_of execs =
  List.concat_map
    (fun (e : Engine.Pool.exec) -> e.outcome.Engine.Obligation.findings)
    execs

(* All lint findings of the run — per-body dataflow plus per-SCC
   abstract interpretation — with the discharge certificates applied:
   an [Info] certificate cancels the [Error] twin at the same site of
   the same function. *)
let lint_findings execs =
  let module M = Map.Make (String) in
  let by_fn =
    List.fold_left
      (fun m (fn, f) ->
        M.update fn (fun l -> Some (f :: Option.value ~default:[] l)) m)
      M.empty
      (findings_of (of_phase execs "analysis")
      @ findings_of (of_phase execs "absint")
      @ findings_of (of_phase execs "borrow")
      @ findings_of (of_phase execs "alias"))
  in
  M.bindings by_fn
  |> List.concat_map (fun (fn, fs) ->
         List.map
           (fun f -> (fn, f))
           (Analysis.Lint.reconcile (Analysis.Lint.sort (List.rev fs))))

let is_error (f : Analysis.Lint.finding) =
  f.Analysis.Lint.severity = Analysis.Lint.Error

let is_discharge (f : Analysis.Lint.finding) =
  f.Analysis.Lint.severity = Analysis.Lint.Info
  && f.Analysis.Lint.discharged_by <> None

let severity_to_string = function
  | Analysis.Lint.Error -> "error"
  | Analysis.Lint.Info -> "info"

(* Numeric program-point key: [where] strings are "bbN[M]" /
   "bbN[term]" / "bbN", and a plain string compare puts bb10 before
   bb2.  Parsing the block/statement indices makes the JSON order
   positional and byte-stable across --jobs and scheduler timing. *)
let where_key w =
  match Scanf.sscanf_opt w "bb%d[%d]" (fun b s -> (b, s)) with
  | Some k -> k
  | None -> (
      match Scanf.sscanf_opt w "bb%d[term" (fun b -> (b, max_int)) with
      | Some k -> k
      | None -> (
          match Scanf.sscanf_opt w "bb%d" (fun b -> (b, -1)) with
          | Some k -> k
          | None -> (max_int, max_int)))

let lint_json_of findings =
  let sorted =
    List.sort
      (fun (fn1, (a : Analysis.Lint.finding)) (fn2, (b : Analysis.Lint.finding)) ->
        let c = String.compare fn1 fn2 in
        if c <> 0 then c
        else
          let c =
            compare (where_key a.Analysis.Lint.where) (where_key b.Analysis.Lint.where)
          in
          if c <> 0 then c
          else
            let c =
              String.compare
                (Analysis.Lint.to_string a.Analysis.Lint.kind)
                (Analysis.Lint.to_string b.Analysis.Lint.kind)
            in
            if c <> 0 then c
            else
              let c = String.compare a.Analysis.Lint.where b.Analysis.Lint.where in
              if c <> 0 then c
              else String.compare a.Analysis.Lint.detail b.Analysis.Lint.detail)
      findings
  in
  Jsonx.List
    (List.map
       (fun (fn, (f : Analysis.Lint.finding)) ->
         Jsonx.Obj
           [
             ("function", Jsonx.Str fn);
             ("kind", Str (Analysis.Lint.to_string f.Analysis.Lint.kind));
             ("where", Str f.Analysis.Lint.where);
             ("severity", Str (severity_to_string f.Analysis.Lint.severity));
             ( "discharged_by",
               match f.Analysis.Lint.discharged_by with
               | Some d -> Str d
               | None -> Null );
             ("detail", Str f.Analysis.Lint.detail);
           ])
       sorted)

(* ------------------------------------------------------------------ *)
(* Model-check rollup                                                  *)

(* Execs arrive in DAG insertion order (root, then shards in index
   order), so the folded rollup — and with it every stdout line — is
   byte-identical at any job count and cache state. *)
let mc_rollup execs =
  Mc.Explore.rollup
    (List.map
       (fun (e : Engine.Pool.exec) ->
         Mc.Explore.parse_log e.outcome.Engine.Obligation.log)
       (of_phase execs "model-check"))

let model_check_json model_check execs =
  match model_check with
  | None -> Jsonx.Null
  | Some (req : Engine.Plan.mc_request) ->
      let r = mc_rollup execs in
      Jsonx.Obj
        [
          ("depth", Jsonx.Int req.Engine.Plan.mc_depth);
          ("por", Str (if req.Engine.Plan.mc_por then "on" else "off"));
          ( "monitor",
            Str (if req.Engine.Plan.mc_flush then "correct" else "buggy-tlb") );
          ( "universe",
            Int (List.length (Mc.Universe.events req.Engine.Plan.mc_layout)) );
          ("states_explored", Int r.Mc.Explore.r_states);
          ("transitions", Int r.Mc.Explore.r_transitions);
          ("deduped", Int r.Mc.Explore.r_deduped);
          ("pruned", Int r.Mc.Explore.r_pruned);
          ( "min_witness",
            match Mc.Explore.min_witness r with Some n -> Int n | None -> Null );
          ( "violations",
            List
              (List.map
                 (fun (v : Mc.Explore.parsed_violation) ->
                   Jsonx.Obj
                     [
                       ("kind", Jsonx.Str v.Mc.Explore.p_kind);
                       ("state", Str v.Mc.Explore.p_state);
                       ("detail", Str v.Mc.Explore.p_detail);
                       ("shrink_evals", Int v.Mc.Explore.p_evals);
                       ( "witness",
                         List
                           (List.map
                              (fun ev -> Jsonx.Str ev)
                              v.Mc.Explore.p_witness) );
                     ])
                 r.Mc.Explore.r_violations) );
        ]

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)

let count_cache execs status =
  List.length (List.filter (fun (e : Engine.Pool.exec) -> e.cache = status) execs)

let phase_summary execs phase =
  let es = of_phase execs phase in
  let executed = List.length es - count_cache es Engine.Pool.Hit in
  let wall =
    List.fold_left
      (fun acc (e : Engine.Pool.exec) -> acc +. (e.finished -. e.started))
      0.0 es
  in
  Jsonx.Obj
    [
      ("phase", Str phase);
      ("obligations", Int (List.length es));
      ("executed", Int executed);
      ("cache_hits", Int (count_cache es Engine.Pool.Hit));
      ("wall_s", Float wall);
    ]

let supervision_json (totals : Engine.Supervisor.totals)
    (stats : Engine.Pool.stats) =
  Jsonx.Obj
    [
      ("supervised", Jsonx.Int totals.Engine.Supervisor.supervised);
      ("retried", Int totals.Engine.Supervisor.retried);
      ("recovered", Int totals.Engine.Supervisor.recovered);
      ("fell_back", Int totals.Engine.Supervisor.fell_back);
      ("quarantined", Int totals.Engine.Supervisor.quarantined);
      ("timeouts", Int totals.Engine.Supervisor.timeouts);
      ("crashes", Int totals.Engine.Supervisor.crashes);
      ("worker_respawns", Int stats.Engine.Pool.respawns);
      ("workers_lost", Int stats.Engine.Pool.lost_workers);
    ]

let engine_chaos_json = function
  | None -> Jsonx.Null
  | Some ch ->
      Jsonx.Obj
        (("seed", Jsonx.Int (Engine.Engine_chaos.seed ch))
         :: ("injected_total", Int (Engine.Engine_chaos.injected_total ch))
         :: List.map
              (fun (k, n) ->
                (Fault.Plan.engine_kind_to_string k, Jsonx.Int n))
              (Engine.Engine_chaos.injected ch))

let overrides_json (plan : Engine.Plan.t) =
  Jsonx.Obj
    [
      ("enabled", Jsonx.Bool plan.Engine.Plan.overrides);
      ( "stubbed_calls_total",
        Int
          (List.fold_left
             (fun n (_, c) -> n + c)
             0 plan.Engine.Plan.override_counts) );
      ( "per_function",
        List
          (List.map
             (fun (fn, c) ->
               Jsonx.Obj [ ("fn", Jsonx.Str fn); ("stubs", Int c) ])
             plan.Engine.Plan.override_counts) );
    ]

let summary_json ~failures ~jobs ~cache_enabled ~sup_totals ~stats
    ~cache_write_failures ~engine_chaos ~model_check ~plan ~plan_build_s
    ~plan_cache_hit execs =
  let hits = count_cache execs Engine.Pool.Hit in
  let misses = count_cache execs Engine.Pool.Miss in
  let t, p, s, f =
    Engine.Obligation.case_totals
      (List.map (fun (e : Engine.Pool.exec) -> e.outcome) execs)
  in
  Jsonx.Obj
    [
      ("verdict", Str (if failures = 0 then "pass" else "fail"));
      ("failures", Int failures);
      ("jobs", Int jobs);
      ("obligations", Int (List.length execs));
      ("executed", Int (List.length execs - hits));
      ("cache_hits", Int hits);
      ("cache_misses", Int misses);
      ("cache", Str (if cache_enabled then "enabled" else "disabled"));
      ("cache_write_failures", Int cache_write_failures);
      ("plan_build_s", Float plan_build_s);
      ("plan_cache_hit", Bool plan_cache_hit);
      ("supervision", supervision_json sup_totals stats);
      ("engine_chaos", engine_chaos_json engine_chaos);
      ("model_check", model_check_json model_check execs);
      ("overrides", overrides_json plan);
      ("elapsed_s", Float (Engine.Pool.wall_of execs));
      ( "report_totals",
        Obj [ ("cases", Int t); ("passed", Int p); ("skipped", Int s); ("failed", Int f) ]
      );
      (* every phase, zero-obligation ones included: a jq gate keyed on
         a phase must find its counts (as zeros), never a missing entry
         that lets the gate vacuously pass *)
      ("phases", List (List.map (phase_summary execs) Engine.Plan.phases));
      ( "workers",
        List
          (List.map
             (fun (w, busy, n) ->
               Jsonx.Obj
                 [ ("worker", Int w); ("busy_s", Float busy); ("obligations", Int n) ])
             (Engine.Pool.worker_stats execs)) );
    ]

(* ------------------------------------------------------------------ *)
(* Scrubbed projection                                                 *)

(* The deterministic projection of a summary: every field whose value
   reflects scheduling rather than verification — job counts, cache
   statistics, wall clocks, worker utilization, supervision counters —
   is dropped, leaving only content that is byte-identical for the same
   request at any job count, fleet size, cache state, or batching
   window.  The serve CI gate diffs daemon responses against one-shot
   --json-out through this projection (both sides via --scrub-summary);
   after scrubbing, the summary is float-free by construction, so a
   parse/re-emit round trip over the wire cannot perturb it. *)
let volatile_keys =
  [
    "jobs";
    "executed";
    "cache_hits";
    "cache_misses";
    "cache";
    "cache_write_failures";
    "plan_build_s";
    "plan_cache_hit";
    "supervision";
    "engine_chaos";
    "elapsed_s";
    "workers";
  ]

let scrub_phase = function
  | Jsonx.Obj kvs ->
      Jsonx.Obj
        (List.filter
           (fun (k, _) -> List.mem k [ "phase"; "obligations" ])
           kvs)
  | j -> j

let scrub = function
  | Jsonx.Obj kvs ->
      Jsonx.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k volatile_keys then None
             else if String.equal k "phases" then
               match v with
               | Jsonx.List ps -> Some (k, Jsonx.List (List.map scrub_phase ps))
               | j -> Some (k, j)
             else Some (k, v))
           kvs)
  | j -> j

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

(* Supervision detail appears in an obligation's trace line only when
   something happened (retries, faults, a fallback, quarantine): clean
   runs keep the historical line shape. *)
let trail_fields (trail : Engine.Supervisor.trail) =
  if not (Engine.Supervisor.eventful trail) then []
  else
    [
      ( "resolution",
        Jsonx.Str
          (Engine.Supervisor.resolution_to_string trail.Engine.Supervisor.resolution) );
      ( "attempts",
        Jsonx.List
          (List.map
             (fun (a : Engine.Supervisor.attempt) ->
               Jsonx.Obj
                 [
                   ("n", Jsonx.Int a.Engine.Supervisor.n);
                   ("status", Str (Engine.Supervisor.status_to_string a.Engine.Supervisor.status));
                   ( "injected",
                     match a.Engine.Supervisor.injected with
                     | Some k -> Str (Fault.Plan.engine_kind_to_string k)
                     | None -> Null );
                   ("backoff_s", Float a.Engine.Supervisor.backoff);
                 ])
             trail.Engine.Supervisor.attempts) );
    ]

let trace_json ~cache execs =
  let exec_lines =
    List.map
      (fun (e : Engine.Pool.exec) ->
        Jsonx.Obj
          ([
             ("id", Jsonx.Str e.obligation.Engine.Obligation.id);
             ("phase", Str e.obligation.Engine.Obligation.phase);
             ("cache", Str (Engine.Pool.cache_status_to_string e.cache));
             ("worker", Int e.worker);
             ("started_s", Float e.started);
             ("finished_s", Float e.finished);
             ("duration_s", Float (e.finished -. e.started));
             ("failures", Int (Engine.Obligation.failure_count e.outcome));
           ]
          @ trail_fields e.trail))
      execs
  in
  let failure_lines =
    match cache with
    | None -> []
    | Some c ->
        List.map
          (fun (op, msg) ->
            Jsonx.Obj
              [
                ("event", Jsonx.Str "cache-write-failure");
                ("op", Str op);
                ("error", Str msg);
              ])
          (Engine.Cache.write_failures c)
  in
  exec_lines @ failure_lines

(** The serve wire protocol: length-prefixed JSON frames over a
    Unix-domain stream socket.

    A frame is a 4-byte big-endian payload length followed by that many
    payload bytes; payloads are JSON texts ({!Engine.Jsonx}).  The
    length is bounded by {!max_frame} — an oversized announcement is
    rejected before allocation (the daemon answers with an error
    response and closes the connection), and torn/short reads are
    handled by both the blocking path and the incremental
    {!Reader}. *)

val max_frame : int
(** Upper bound on a frame payload (8 MiB). *)

exception Closed
(** Peer hung up mid-frame (EOF inside a frame, EPIPE on write).
    Connection-level: callers drop the connection, never the process. *)

exception Timeout
(** A nonblocking peer stopped draining its socket buffer before the
    deadline of {!write_frame_deadline}.  Connection-level, like
    {!Closed}. *)

val frame : string -> string
(** [frame payload] is the on-wire encoding (header ^ payload).
    Raises [Invalid_argument] past {!max_frame}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking framed write; raises {!Closed} on a hung-up peer. *)

val write_frame_deadline : Unix.file_descr -> string -> timeout_s:float -> unit
(** Framed write to a {e nonblocking} fd, waiting for writability
    between partial writes.  Raises {!Timeout} after [timeout_s]
    without completing, {!Closed} on a hung-up peer.  The dispatcher
    uses this for client sockets so one stalled client cannot block
    the select loop. *)

val read_frame : Unix.file_descr -> (string option, string) result
(** Blocking framed read: [Ok (Some payload)], [Ok None] on EOF at a
    frame boundary, [Error] on an oversized length announcement (the
    stream is unusable afterwards).  Raises {!Closed} on EOF
    mid-frame. *)

module Reader : sig
  (** Incremental deframer for the server's select loop: feed raw
      bytes as they arrive, pull complete frames out. *)

  type t

  val create : unit -> t
  val feed : t -> string -> unit
  val buffered : t -> int

  val next : t -> [ `Frame of string | `More | `Oversized of int ]
  (** [`More]: a torn read so far — keep feeding.  [`Oversized]: the
      header announces more than {!max_frame}; the stream cannot be
      resynchronized and must be closed. *)
end

val item_size : string * string -> int
(** Exact packed footprint of one (tag, payload) item;
    [String.length (pack_items items)] is the sum of the items'
    sizes.  The admission batcher bounds batches with this so a
    dispatcher→worker frame stays under {!max_frame}. *)

val pack_items : (string * string) list -> string
(** Dispatcher/worker framing: a sequence of (tag, payload) items,
    each length-prefixed, so request payloads cross the fleet boundary
    verbatim (no re-serialization). *)

val unpack_items : string -> ((string * string) list, string) result

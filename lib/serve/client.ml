(* Minimal blocking client for the serve protocol: one connection, one
   request frame, one response frame.  Used by the CLI's --client mode,
   the CI serve gate, and the tests; the throughput bench pipelines
   frames itself over raw {!Protocol} calls. *)

module Jsonx = Engine.Jsonx

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

let request ~socket payload : (string, string) result =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            Protocol.write_frame fd payload;
            Protocol.read_frame fd
          with
          | Ok (Some response) -> Ok response
          | Ok None -> Error "daemon closed the connection without responding"
          | Error msg -> Error msg
          | exception Protocol.Closed -> Error "connection closed mid-frame"
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let request_json ~socket j : (Jsonx.t, string) result =
  match request ~socket (Jsonx.to_string j) with
  | Error _ as e -> e
  | Ok payload -> (
      match Jsonx.parse payload with
      | Ok j -> Ok j
      | Error msg -> Error ("bad response: " ^ msg))

let ping ~socket =
  match request_json ~socket (Jsonx.Obj [ ("op", Jsonx.Str "ping") ]) with
  | Ok j -> Jsonx.member "ok" j = Some (Jsonx.Bool true)
  | Error _ -> false

let shutdown ~socket =
  match request_json ~socket (Jsonx.Obj [ ("op", Jsonx.Str "shutdown") ]) with
  | Ok _ -> Ok ()
  | Error _ as e -> Result.map (fun _ -> ()) e

(* Block until the daemon answers pings (bounded), for scripts that
   just forked it. *)
let wait_ready ?(attempts = 100) ?(interval_s = 0.05) ~socket () =
  let rec go n =
    if n = 0 then false
    else if Sys.file_exists socket && ping ~socket then true
    else begin
      Unix.sleepf interval_s;
      go (n - 1)
    end
  in
  go attempts

(* The daemon's verification driver: decode requests, run them against
   resident session state, produce responses.

   Residency is three tiers deep:
   - L2: the content-addressed proof cache ({!Engine.Cache}), shared on
     disk across the whole fleet — a proof computed by one worker
     process is a warm hit for all ({!Engine.Cache.refresh} before each
     batch, advisory-locked {!Engine.Cache.flush} after).
   - L1: the memoized plan ({!Engine.Plan.build_memo}), keyed by
     (module digest, geometry, seed, phase switches): a repeat or
     near-repeat request skips plan construction — the dominant cost of
     a warm one-shot run — and reuses the compiled bodies and case
     batteries its closures hold ([Layers.compile_memo] is
     process-global underneath).
   - L0: the response replay memo, keyed by the canonical request.  A
     response is recorded only once its run re-executed nothing
     (executed = 0, i.e. pure cache replay): verification content is a
     deterministic function of the request, so replaying the recorded
     bytes is the same principle as a proof-cache hit, one level up —
     and the executed = 0 precondition keeps the replayed summary's
     cache statistics truthful for CI's warm-path assertions.

   Admission batching: [handle_batch] coalesces the K in-flight
   requests the dispatcher hands it into ONE pool submission by
   re-id'ing each plan's obligations under a [b<i>/] prefix and merging
   the DAGs.  Obligations keep their canonical [cache_id], so a batched
   execution and a one-shot run share proof-cache entries; execs are
   split back per request (original ids restored) before rendering, so
   responses are byte-identical to unbatched ones. *)

module Jsonx = Engine.Jsonx

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type mc_spec = { mc_depth : int; mc_por : bool; mc_geometry : string; mc_buggy_tlb : bool }

type request = {
  geometry : string;  (* "tiny" | "x86_64": names the module under proof *)
  seed : int;
  quick : bool;
  lints : Analysis.Lint.kind list;
  overrides : bool;
  mc : mc_spec option;
  source_digest : string option;
      (* optional tenant assertion: refused if the module the daemon
         compiles for this geometry does not digest to this *)
}

let default_request =
  {
    geometry = "tiny";
    seed = 2024;
    quick = false;
    lints = Analysis.Lint.catalogue;
    overrides = true;
    mc = None;
    source_digest = None;
  }

let lints_string lints = String.concat "," (List.map Analysis.Lint.to_string lints)

let json_of_request r =
  Jsonx.Obj
    ([
       ("op", Jsonx.Str "verify");
       ("geometry", Str r.geometry);
       ("seed", Int r.seed);
       ("quick", Bool r.quick);
       ("lints", Str (lints_string r.lints));
       ("overrides", Bool r.overrides);
       ( "model_check",
         match r.mc with
         | None -> Null
         | Some m ->
             Obj
               [
                 ("depth", Int m.mc_depth);
                 ("por", Bool m.mc_por);
                 ("geometry", Str m.mc_geometry);
                 ("buggy_tlb", Bool m.mc_buggy_tlb);
               ] );
     ]
    @
    match r.source_digest with
    | None -> []
    | Some d -> [ ("source_digest", Str d) ])

(* Canonical identity of a request — the L0 memo key and the batch
   dedup key.  [source_digest] is excluded: it is an assertion about
   the module, not a selection of work. *)
let request_key r = Jsonx.to_string (json_of_request { r with source_digest = None })

let ( let* ) = Result.bind

let field j k decode ~default =
  match Jsonx.member k j with
  | None -> Ok default
  | Some Jsonx.Null -> Ok default
  | Some v -> (
      match decode v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" k))

let request_of_json j : (request, string) result =
  let* op = field j "op" Jsonx.to_string_opt ~default:"verify" in
  let* () = if String.equal op "verify" then Ok () else Error ("unknown op " ^ op) in
  let* geometry = field j "geometry" Jsonx.to_string_opt ~default:"tiny" in
  let* () =
    if List.mem geometry [ "tiny"; "x86_64" ] then Ok ()
    else Error (Printf.sprintf "unknown geometry %S" geometry)
  in
  let* seed = field j "seed" Jsonx.to_int_opt ~default:2024 in
  let* quick = field j "quick" Jsonx.to_bool_opt ~default:false in
  let* lints_s = field j "lints" Jsonx.to_string_opt ~default:"all" in
  let* lints =
    match Analysis.Lint.kinds_of_string lints_s with
    | Ok ks -> Ok ks
    | Error msg -> Error ("bad lints: " ^ msg)
  in
  let* overrides = field j "overrides" Jsonx.to_bool_opt ~default:true in
  let* source_digest =
    field j "source_digest" (fun v -> Option.map Option.some (Jsonx.to_string_opt v))
      ~default:None
  in
  let* mc =
    match Jsonx.member "model_check" j with
    | None | Some Jsonx.Null -> Ok None
    | Some m ->
        let* depth = field m "depth" Jsonx.to_int_opt ~default:0 in
        let* () = if depth >= 1 then Ok () else Error "bad model_check depth" in
        let* por = field m "por" Jsonx.to_bool_opt ~default:true in
        let* geometry = field m "geometry" Jsonx.to_string_opt ~default:"tiny" in
        let* () =
          if List.mem geometry [ "tiny"; "tiny3" ] then Ok ()
          else Error (Printf.sprintf "unknown model_check geometry %S" geometry)
        in
        let* buggy_tlb = field m "buggy_tlb" Jsonx.to_bool_opt ~default:false in
        Ok (Some { mc_depth = depth; mc_por = por; mc_geometry = geometry;
                   mc_buggy_tlb = buggy_tlb })
  in
  Ok { geometry; seed; quick; lints; overrides; mc; source_digest }

let request_of_string s =
  match Jsonx.parse s with
  | Error msg -> Error msg
  | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Geometry plumbing (mirrors the CLI)                                 *)

let layout_of_geometry = function
  | "x86_64" -> Hyperenclave.Layout.default Hyperenclave.Geometry.x86_64
  | _ -> Hyperenclave.Layout.default Hyperenclave.Geometry.tiny

let mc_layout_of_geometry = function
  | "tiny3" -> (
      match
        Hyperenclave.Geometry.make ~levels:3 ~index_bits:2 ~fb_present:0
          ~fb_write:1 ~fb_user:2 ~fb_huge:3
      with
      | Ok g -> Hyperenclave.Layout.default g
      | Error _ -> Hyperenclave.Layout.default Hyperenclave.Geometry.tiny)
  | _ -> Hyperenclave.Layout.default Hyperenclave.Geometry.tiny

let mc_request_of (m : mc_spec) : Engine.Plan.mc_request =
  {
    Engine.Plan.mc_depth = max 1 m.mc_depth;
    mc_por = m.mc_por;
    mc_flush = not m.mc_buggy_tlb;
    mc_layout = mc_layout_of_geometry m.mc_geometry;
  }

(* Module digest per geometry, memoized: what the daemon reports back
   and checks tenant [source_digest] assertions against. *)
let source_digests : (string, string) Hashtbl.t = Hashtbl.create 4
let source_digest_mu = Mutex.create ()

let source_digest_of geometry =
  Mutex.lock source_digest_mu;
  let d =
    match Hashtbl.find_opt source_digests geometry with
    | Some d -> d
    | None ->
        let d =
          Digest.to_hex
            (Digest.string
               (Hyperenclave.Mem_source.source (layout_of_geometry geometry)))
        in
        Hashtbl.replace source_digests geometry d;
        d
  in
  Mutex.unlock source_digest_mu;
  d

(* ------------------------------------------------------------------ *)
(* Session                                                             *)

type session = {
  cache : Engine.Cache.t option;
  jobs : int;
  retries : int;
  timeout_ms : int;
  replay : (string, string) Hashtbl.t;  (* L0: request_key -> response bytes *)
  replay_order : string Queue.t;
  mutable replays : int;  (* responses served from L0 (diagnostics) *)
}

let replay_capacity = 64

let session ?cache_dir ?(jobs = 1) ?(retries = 2) ?(timeout_ms = 0) () =
  {
    cache = Option.map (fun dir -> Engine.Cache.create ~dir) cache_dir;
    jobs = max 1 jobs;
    retries;
    timeout_ms;
    replay = Hashtbl.create replay_capacity;
    replay_order = Queue.create ();
    replays = 0;
  }

let error_response msg =
  Jsonx.to_string (Jsonx.Obj [ ("ok", Jsonx.Bool false); ("error", Str msg) ])

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

type prepared = {
  p_req : request;
  p_key : string;
  p_plan : Engine.Plan.t;
  p_hit : bool;
  p_build_s : float;
}

let prepare req =
  let layout = layout_of_geometry req.geometry in
  let security = req.geometry <> "x86_64" in
  let model_check = Option.map mc_request_of req.mc in
  let plan, hit, build_s =
    Engine.Plan.build_memo ~quick:req.quick ~security ~lints:req.lints
      ?model_check ~overrides:req.overrides ~seed:req.seed layout
  in
  { p_req = req; p_key = request_key req; p_plan = plan; p_hit = hit;
    p_build_s = build_s }

(* One pool submission for the whole admission batch: each plan's
   obligations are re-id'd under [b<i>/] (deps rewritten, canonical
   [cache_id] kept) and the DAGs merged.  A singleton batch skips the
   re-id and merge entirely — the memoized plan's own DAG is submitted
   as-is: that is the warm hot path. *)
let merged_dag prepared =
  Engine.Dag.build_exn
    (List.concat
       (List.mapi
          (fun i (p : prepared) ->
            let pre = Printf.sprintf "b%d/" i in
            List.map
              (fun (o : Engine.Obligation.t) ->
                {
                  o with
                  Engine.Obligation.id = pre ^ o.Engine.Obligation.id;
                  deps = List.map (fun d -> pre ^ d) o.Engine.Obligation.deps;
                })
              (Engine.Dag.obligations p.p_plan.Engine.Plan.dag))
          prepared))

(* Undo the batch re-id: bucket execs by batch index and swap the
   original obligation back in, so rendering and summaries see
   canonical ids in per-plan insertion order. *)
let split_batches prepared execs =
  let n = List.length prepared in
  let prepared_arr = Array.of_list prepared in
  let buckets = Array.make n [] in
  List.iter
    (fun (e : Engine.Pool.exec) ->
      let id = e.obligation.Engine.Obligation.id in
      match String.index_opt id '/' with
      | Some slash ->
          let i = int_of_string (String.sub id 1 (slash - 1)) in
          let orig = String.sub id (slash + 1) (String.length id - slash - 1) in
          let o =
            match Engine.Dag.find prepared_arr.(i).p_plan.Engine.Plan.dag orig with
            | Some o -> o
            | None -> e.obligation
          in
          buckets.(i) <- { e with obligation = o } :: buckets.(i)
      | None -> ())
    execs;
  Array.to_list (Array.map List.rev buckets)

let render_response session (p : prepared) (execs : Engine.Pool.exec list)
    (stats : Engine.Pool.stats) =
  let layout = p.p_plan.Engine.Plan.layout in
  let security = p.p_plan.Engine.Plan.security in
  let failures = ref 0 in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Render.prelude ppf ~failures layout;
  Render.engine_results ppf ~failures ~security execs;
  Option.iter
    (fun req -> Render.model_check ppf ~failures req execs)
    p.p_plan.Engine.Plan.model_check;
  Render.verdict ppf !failures;
  Format.pp_print_flush ppf ();
  let sup_totals =
    Engine.Supervisor.totals (List.map (fun (e : Engine.Pool.exec) -> e.trail) execs)
  in
  let cache_write_failures =
    match session.cache with None -> 0 | Some c -> Engine.Cache.write_failure_count c
  in
  let summary =
    Summary.summary_json ~failures:!failures ~jobs:session.jobs
      ~cache_enabled:(session.cache <> None) ~sup_totals ~stats
      ~cache_write_failures ~engine_chaos:None
      ~model_check:p.p_plan.Engine.Plan.model_check ~plan:p.p_plan
      ~plan_build_s:p.p_build_s ~plan_cache_hit:p.p_hit execs
  in
  let executed = List.length execs - Summary.count_cache execs Engine.Pool.Hit in
  let response =
    Jsonx.to_string
      (Jsonx.Obj
         [
           ("ok", Jsonx.Bool true);
           ("module_digest", Str (source_digest_of p.p_req.geometry));
           ("status", Int (if !failures = 0 then 0 else 1));
           ("summary", summary);
           ("stdout", Str (Buffer.contents buf));
         ])
  in
  (response, executed)

let remember session key response =
  if not (Hashtbl.mem session.replay key) then begin
    Hashtbl.replace session.replay key response;
    Queue.add key session.replay_order;
    if Queue.length session.replay_order > replay_capacity then
      Hashtbl.remove session.replay (Queue.take session.replay_order)
  end

let sup_config session =
  {
    Engine.Supervisor.default with
    retries = max 0 session.retries;
    timeout =
      (if session.timeout_ms <= 0 then None
       else Some (float_of_int session.timeout_ms /. 1000.));
  }

(* Run the distinct, non-replayed requests of a batch as one pool
   submission and render each one's response. *)
let verify_prepared session prepared =
  (match session.cache with
  | Some c -> ignore (Engine.Cache.refresh c)
  | None -> ());
  let sup = sup_config session in
  let run dag =
    Engine.Pool.run_with_stats ?cache:session.cache ~sup ~jobs:session.jobs dag
  in
  let per_request_execs, stats =
    match prepared with
    | [ p ] ->
        let execs, stats = run p.p_plan.Engine.Plan.dag in
        ([ execs ], stats)
    | ps ->
        let execs, stats = run (merged_dag ps) in
        (split_batches ps execs, stats)
  in
  (match session.cache with Some c -> Engine.Cache.flush c | None -> ());
  List.map2
    (fun p execs ->
      let response, executed = render_response session p execs stats in
      if executed = 0 then remember session p.p_key response;
      (p.p_key, response))
    prepared per_request_execs

(* ------------------------------------------------------------------ *)
(* Batch entry point                                                   *)

(* [handle_batch session [(tag, payload); ...]] decodes every payload,
   serves L0 replays, deduplicates the rest by canonical request key,
   verifies the distinct remainder as one merged pool submission, and
   returns one response per tag in input order.  Malformed payloads
   yield per-tag error responses; nothing raises. *)
let handle_batch session items =
  let decoded =
    List.map
      (fun (tag, payload) ->
        match request_of_string payload with
        | Error msg -> (tag, Error (error_response ("bad request: " ^ msg)))
        | Ok req -> (
            match req.source_digest with
            | Some d when not (String.equal d (source_digest_of req.geometry)) ->
                ( tag,
                  Error
                    (error_response
                       (Printf.sprintf
                          "source digest mismatch: module for geometry %s is %s"
                          req.geometry
                          (source_digest_of req.geometry))) )
            | _ -> (tag, Ok req)))
      items
  in
  (* L0 replays and batch-level dedup *)
  let to_verify = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (_, r) ->
      match r with
      | Error _ -> ()
      | Ok req ->
          let key = request_key req in
          if Hashtbl.mem session.replay key then session.replays <- session.replays + 1
          else if not (Hashtbl.mem to_verify key) then begin
            Hashtbl.replace to_verify key req;
            order := key :: !order
          end)
    decoded;
  let fresh =
    List.rev_map (fun key -> prepare (Hashtbl.find to_verify key)) !order
  in
  let verified =
    match fresh with
    | [] -> []
    | ps -> verify_prepared session ps
  in
  let response_of key =
    match Hashtbl.find_opt session.replay key with
    | Some r -> r
    | None -> (
        match List.assoc_opt key verified with
        | Some r -> r
        | None -> error_response "internal: response lost")
  in
  List.map
    (fun (tag, r) ->
      match r with
      | Error e -> (tag, e)
      | Ok req -> (tag, response_of (request_key req)))
    decoded

(* Single-request convenience (tests, the in-process server). *)
let handle_one session payload =
  match handle_batch session [ ("0", payload) ] with
  | [ (_, response) ] -> response
  | _ -> error_response "internal: batch shape"

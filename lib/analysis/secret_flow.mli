(** Secret-flow noninterference lint (kind {!Lint.Secret_flow}).

    Taint abstract interpretation per call-graph SCC: enclave-secret
    state (as labelled by the [prim] models) must not reach a
    primary-OS-observable location, except through the marshalling
    buffer (which the models classify as sanctioned declassification).
    The policy closures are built from the physical layout by
    [Security.Labels]. *)

module A : module type of Absint.Make (Taint.Dom)

type config = {
  program : Mir.Syntax.program;
  prim :
    func:string -> args:A.value list -> (A.value * Taint.Labels.t) option;
      (** Model of the trusted primitives: result value and the labels
          reaching an observable sink at this call (empty = no sink,
          secret bit set = finding). *)
  boundary : string -> bool;
      (** Functions whose return value the primary OS observes. *)
}

type stats = {
  functions : int;
  findings : int;
  iterations : int;
  summaries : int;
}

val check : config -> funcs:string list -> (string * Lint.finding) list * stats
(** Analyze the given functions (one SCC) and return the findings
    tagged with the containing function's name. *)

(** Call graph of a MIRlight program, condensed to SCCs.

    All outputs are canonical (sorted members, deterministic SCC
    order), so the engine can derive stable obligation ids and
    fingerprints from them. *)

type t

val build : Mir.Syntax.program -> t

val sccs : t -> string list list
(** Strongly connected components, callees-first; members sorted. *)

val callees : t -> string -> string list
(** Program-internal direct callees, sorted, deduplicated. *)

val externs : t -> string -> string list
(** Called names with no body in the program (trusted primitives). *)

val scc_of : t -> string -> int option
(** Index of the function's component in {!sccs}. *)

val callee_sccs : t -> string list -> int list
(** Distinct component indices an SCC's members call into, excluding
    the component itself — the edges of the SCC DAG. *)

val reachable : t -> string list -> string list
(** Transitive callee closure including the roots themselves; sorted.
    What an SCC summary's verdict can depend on. *)

(** Unsigned 64-bit interval lattice: the numeric abstract domain.

    Values are [Bot] or a pair [lo <=u hi] in the unsigned order;
    booleans embed as [{0}], [{1}], [[0,1]].  Transfer functions are
    exact when the concrete operation is monotone and cannot wrap and
    degrade to {!top} otherwise; {!no_overflow} gives the tighter
    saturating envelope valid once a checked operation's overflow
    assertion has pruned the wrapping executions.  {!widen} jumps
    unstable bounds to a threshold set (the function's literals), which
    is what makes page-table-walk loops converge to precise bounds. *)

type t = Bot | Itv of Mir.Word.t * Mir.Word.t

val bot : t
val top : t
val boolean : t
(** [[0, 1]]. *)

val of_word : Mir.Word.t -> t
val of_bool : bool -> t
val of_int : int -> t

val v : Mir.Word.t -> Mir.Word.t -> t
(** [v lo hi] is [[lo, hi]], or [Bot] when [lo >u hi]. *)

val bounds : t -> (Mir.Word.t * Mir.Word.t) option
val singleton : t -> Mir.Word.t option
val is_bot : t -> bool
val mem : Mir.Word.t -> t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t

val widen : thresholds:Mir.Word.t list -> t -> t -> t
(** [widen ~thresholds old joined]: unstable bounds jump to the nearest
    threshold (fallback 0 / umax).  [thresholds] sorted ascending. *)

val narrow : t -> t -> t
(** Keep the recomputed value when it refines the widened one. *)

val binop : Mir.Syntax.bin_op -> t -> t -> t
(** Wrapping MIRlight semantics; comparisons yield boolean intervals. *)

val checked : Mir.Syntax.bin_op -> t -> t -> t * t
(** [(result, overflow-flag)] of a [Checked_binary]. *)

val no_overflow : Mir.Syntax.bin_op -> t -> t -> t
(** Result envelope of the non-wrapping executions (saturating bounds);
    [Bot] when every pair wraps, i.e. the assert edge is dead. *)

val lognot_ : t -> t
val neg : t -> t
val cast : Mir.Ty.int_ty -> t -> t

val refine_cmp :
  Mir.Syntax.bin_op -> truth:bool -> t -> t -> (t * t) option
(** Constrain both operands under comparison [op] having truth value
    [truth]; [None] when unsatisfiable (the branch edge is dead).
    Non-comparison operators pass the pair through unchanged. *)

val refine_eq : t -> t -> (t * t) option
val refine_ne : t -> t -> (t * t) option

val to_string : t -> string
val pp : Format.formatter -> t -> unit

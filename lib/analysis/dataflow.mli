(** Worklist dataflow solver over MIRlight CFGs.

    The framework is generic in the lattice and the per-block transfer
    function; the lint passes instantiate it with small set/map
    lattices.  [solve] iterates block transfers to a fixpoint:

    - [Forward]: a block's input is the join of its predecessors'
      outputs; bb0 additionally joins [init] (the boundary state).
    - [Backward]: a block's input is the join of its successors'
      outputs; exit blocks (no successors) join [init].

    [bottom] must be a neutral element of [join] and [transfer] must
    be monotone, or the solver may not terminate.  Unreachable blocks
    keep [bottom]-derived states; clients that report diagnostics
    should skip them (see {!Cfg.reachable}). *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;  (** fixpoint state at each block's input *)
    after : L.t array;  (** fixpoint state after each block's transfer *)
  }

  val solve :
    ?direction:direction ->
    init:L.t ->
    bottom:L.t ->
    transfer:(int -> L.t -> L.t) ->
    Mir.Syntax.body ->
    result
end

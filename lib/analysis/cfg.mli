(** Control-flow graph view of a MIRlight body.

    Blocks are the nodes; the edges come straight from the terminator
    of each block.  Out-of-range labels are dropped rather than
    rejected — {!Mir.Validate} owns well-formedness, the analyses only
    need a total graph. *)

val successors : Mir.Syntax.terminator -> Mir.Syntax.label list
(** Distinct successor labels, ascending. *)

val block_successors : Mir.Syntax.body -> Mir.Syntax.label list array
val predecessors : Mir.Syntax.body -> Mir.Syntax.label list array

val reachable : Mir.Syntax.body -> bool array
(** [reachable body].(i) is true iff bb[i] is reachable from bb0. *)

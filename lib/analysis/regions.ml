(* Liveness-based region inference (NLL style).

   A borrow's region is approximated by the liveness of the variable
   holding it: the loan is "in region" exactly at the program points
   where the holder may still be used.  This module computes classic
   backward may-liveness with the shared {!Dataflow} solver and then
   re-expands the block-level fixpoint into per-instruction live sets,
   which is the granularity {!Borrow} needs. *)

module Syn = Mir.Syntax
module StrSet = Set.Make (String)

module L = struct
  type t = StrSet.t

  let equal = StrSet.equal
  let join = StrSet.union
end

module Solver = Dataflow.Make (L)

(* Variables read by a place: the base plus any variable indices. *)
let place_uses acc (p : Syn.place) =
  List.fold_left
    (fun acc e -> match e with Syn.Pindex v -> StrSet.add v acc | _ -> acc)
    (StrSet.add p.Syn.var acc)
    p.Syn.elems

let operand_uses acc = function
  | Syn.Const _ -> acc
  | Syn.Copy p | Syn.Move p -> place_uses acc p

let rvalue_uses acc = function
  | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op) ->
      operand_uses acc op
  | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
      operand_uses (operand_uses acc a) b
  | Syn.Ref p | Syn.Address_of p | Syn.Len p | Syn.Discriminant p ->
      place_uses acc p
  | Syn.Aggregate (_, ops) -> List.fold_left operand_uses acc ops

(* Backward transfer of one instruction: live_before = (live_after \
   defs) ∪ uses.  A projected write reads its own base, so only a
   whole-variable assignment is a kill. *)
let stmt_live (live : StrSet.t) = function
  | Syn.Assign (dest, rv) ->
      let live =
        if dest.Syn.elems = [] then StrSet.remove dest.Syn.var live
        else place_uses live dest
      in
      rvalue_uses live rv
  | Syn.Set_discriminant (p, _) -> place_uses live p
  | Syn.Storage_live v | Syn.Storage_dead v ->
      (* storage boundaries end the previous value's region *)
      StrSet.remove v live
  | Syn.Nop -> live

let term_live (live : StrSet.t) = function
  | Syn.Goto _ | Syn.Unreachable -> live
  | Syn.Return -> place_uses live (Syn.place_of_var Syn.return_var)
  | Syn.Switch_int (op, _, _) -> operand_uses live op
  | Syn.Drop (p, _) -> place_uses live p
  | Syn.Call { dest; args; _ } ->
      let live =
        if dest.Syn.elems = [] then StrSet.remove dest.Syn.var live
        else place_uses live dest
      in
      List.fold_left operand_uses live args
  | Syn.Assert { cond; _ } -> operand_uses live cond

let transfer_block (body : Syn.body) i live_out =
  let blk = body.Syn.blocks.(i) in
  let live = term_live live_out blk.Syn.term in
  List.fold_right (fun s live -> stmt_live live s) blk.Syn.stmts live

(* points body = one array per block; [arr.(k)] is the set of live
   variables immediately before statement [k], [arr.(n)] (n = number
   of statements) the set before the terminator, and [arr.(n+1)] the
   block's live-out. *)
let points (body : Syn.body) =
  let result =
    Solver.solve ~direction:Dataflow.Backward ~init:StrSet.empty
      ~bottom:StrSet.empty
      ~transfer:(fun i live_out -> transfer_block body i live_out)
      body
  in
  Array.mapi
    (fun i (blk : Syn.block) ->
      (* [before] in a backward solve is the join of successor live-ins,
         i.e. this block's live-out *)
      let live_out = result.Solver.before.(i) in
      let n = List.length blk.Syn.stmts in
      let pts = Array.make (n + 2) StrSet.empty in
      pts.(n + 1) <- live_out;
      pts.(n) <- term_live live_out blk.Syn.term;
      let stmts = Array.of_list blk.Syn.stmts in
      for k = n - 1 downto 0 do
        pts.(k) <- stmt_live pts.(k + 1) stmts.(k)
      done;
      pts)
    body.Syn.blocks

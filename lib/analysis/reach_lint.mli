(** Unreachable-code lint (kind {!Lint.Unreachable_block}).

    Flags blocks unreachable from bb0 that still contain code.  Empty
    goto/return blocks — artifacts of lowering [return]/[break]/
    [continue] — are ignored. *)

val run : Mir.Syntax.body -> Lint.finding list

(* Unchecked-arithmetic lint.

   MIRlight bodies compiled with overflow checks use [Checked_binary]
   for [Add]/[Sub]/[Mul]; a raw [Binary] with one of those operators in
   the same body is then a hole in the overflow discipline (typically a
   hand-written spec fragment or a lowering bug).  The lint is
   per-body on purpose: obligation fingerprints cover exactly one
   function's MIR, so the verdict must not depend on sibling bodies.

   Bodies with no [Checked_binary] at all (the unchecked compilation
   profile) are exempt — raw arithmetic is their convention.  An
   operand is "word-typed" when that is determinable locally: an
   integer constant, or a projection-free copy/move of a local declared
   with an integer type. *)

module Syn = Mir.Syntax

let overflowing = function Syn.Add | Syn.Sub | Syn.Mul -> true | _ -> false

let op_name = function
  | Syn.Add -> "add"
  | Syn.Sub -> "sub"
  | Syn.Mul -> "mul"
  | _ -> "?"

let local_ty (body : Syn.body) var =
  List.find_opt (fun (d : Syn.local_decl) -> String.equal d.Syn.lname var)
    body.Syn.locals
  |> Option.map (fun (d : Syn.local_decl) -> d.Syn.lty)

let word_typed body = function
  | Syn.Const (Syn.Cint _) -> true
  | (Syn.Copy p | Syn.Move p) when p.Syn.elems = [] -> (
      match local_ty body p.Syn.var with
      | Some (Mir.Ty.Int _) -> true
      | _ -> false)
  | _ -> false

let uses_checked (body : Syn.body) =
  Array.exists
    (fun (blk : Syn.block) ->
      List.exists
        (function
          | Syn.Assign (_, Syn.Checked_binary (op, _, _)) -> overflowing op
          | _ -> false)
        blk.Syn.stmts)
    body.Syn.blocks

let run (body : Syn.body) =
  if not (uses_checked body) then []
  else begin
    let findings = ref [] in
    let reach = Cfg.reachable body in
    Array.iteri
      (fun i (blk : Syn.block) ->
        if reach.(i) then
          List.iteri
            (fun k stmt ->
              match stmt with
              | Syn.Assign (_, Syn.Binary (op, a, b))
                when overflowing op && word_typed body a && word_typed body b ->
                  findings :=
                    Lint.v Lint.Unchecked_arith
                      ~where:(Printf.sprintf "bb%d[%d]" i k)
                      (Printf.sprintf
                         "raw %s on word-typed operands in a body that \
                          otherwise uses checked arithmetic"
                         (op_name op))
                    :: !findings
              | _ -> ())
            blk.Syn.stmts)
      body.Syn.blocks;
    List.rev !findings
  end

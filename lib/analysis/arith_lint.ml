(* Unchecked-arithmetic lint.

   MIRlight bodies compiled with overflow checks use [Checked_binary]
   for [Add]/[Sub]/[Mul]; a raw [Binary] with one of those operators in
   the same body is then a hole in the overflow discipline (typically a
   hand-written spec fragment or a lowering bug).  The lint is
   per-body on purpose: obligation fingerprints cover exactly one
   function's MIR, so the verdict must not depend on sibling bodies.

   Bodies with no [Checked_binary] at all (the unchecked compilation
   profile) are exempt — raw arithmetic is their convention.  An
   operand is "word-typed" when that is determinable locally: an
   integer constant, or a projection-free copy/move of a local declared
   with an integer type. *)

module Syn = Mir.Syntax

let overflowing = function Syn.Add | Syn.Sub | Syn.Mul -> true | _ -> false

let op_name = function
  | Syn.Add -> "add"
  | Syn.Sub -> "sub"
  | Syn.Mul -> "mul"
  | _ -> "?"

let local_ty (body : Syn.body) var =
  List.find_opt (fun (d : Syn.local_decl) -> String.equal d.Syn.lname var)
    body.Syn.locals
  |> Option.map (fun (d : Syn.local_decl) -> d.Syn.lty)

let word_typed body = function
  | Syn.Const (Syn.Cint _) -> true
  | (Syn.Copy p | Syn.Move p) when p.Syn.elems = [] -> (
      match local_ty body p.Syn.var with
      | Some (Mir.Ty.Int _) -> true
      | _ -> false)
  | _ -> false

let uses_checked (body : Syn.body) =
  Array.exists
    (fun (blk : Syn.block) ->
      List.exists
        (function
          | Syn.Assign (_, Syn.Checked_binary (op, _, _)) -> overflowing op
          | _ -> false)
        blk.Syn.stmts)
    body.Syn.blocks

type site = {
  block : int;
  stmt : int;
  op : Syn.bin_op;
  lhs : Syn.operand;
  rhs : Syn.operand;
}

let site_where s = Printf.sprintf "bb%d[%d]" s.block s.stmt

(* The flaggable sites, in program order.  Shared with the interval
   pass ({!Interval_lint}), which re-examines each site with the
   operand intervals in force and emits a discharge certificate at the
   exact same [where] when the overflow provably cannot happen. *)
let sites (body : Syn.body) =
  if not (uses_checked body) then []
  else begin
    let acc = ref [] in
    let reach = Cfg.reachable body in
    Array.iteri
      (fun i (blk : Syn.block) ->
        if reach.(i) then
          List.iteri
            (fun k stmt ->
              match stmt with
              | Syn.Assign (_, Syn.Binary (op, a, b))
                when overflowing op && word_typed body a && word_typed body b ->
                  acc := { block = i; stmt = k; op; lhs = a; rhs = b } :: !acc
              | _ -> ())
            blk.Syn.stmts)
      body.Syn.blocks;
    List.rev !acc
  end

let run (body : Syn.body) =
  List.map
    (fun s ->
      Lint.v Lint.Unchecked_arith ~where:(site_where s)
        (Printf.sprintf
           "raw %s on word-typed operands in a body that otherwise uses \
            checked arithmetic"
           (op_name s.op)))
    (sites body)

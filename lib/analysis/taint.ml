(* Taint domain for the secret-flow lint: each scalar carries the
   interval component (reused from {!Interval}, so branch refinement
   and the trusted-primitive models still see precise physical
   addresses) plus a label set saying where the value may come from.

   Labels form a finite lattice: a [secret] bit (the value may derive
   from enclave-secret state: EPC page contents, EPCM owner fields),
   a set of argument indices (the value may derive from the [i]-th
   parameter of the function under analysis — the currency of
   interprocedural summaries), and a set of source-site descriptions
   carried only to make findings readable.

   The summary effect of a function is one label set: the labels of
   everything it may write to a primary-OS-observable location.  At a
   call site [subst_eff] maps argument labels through the actuals —
   and drops the callee's own [secret] bit, because a leak wholly
   inside the callee is the callee's own finding (each function is
   checked under its own obligation; re-reporting it at every caller
   would double-count). *)

module IntSet = Set.Make (Int)
module StrSet = Set.Make (String)

module Labels = struct
  type t = { secret : bool; args : IntSet.t; srcs : StrSet.t }

  let empty = { secret = false; args = IntSet.empty; srcs = StrSet.empty }
  let secret ~src = { secret = true; args = IntSet.empty; srcs = StrSet.singleton src }
  let arg i = { secret = false; args = IntSet.singleton i; srcs = StrSet.empty }

  let join a b =
    {
      secret = a.secret || b.secret;
      args = IntSet.union a.args b.args;
      srcs = StrSet.union a.srcs b.srcs;
    }

  let equal a b =
    a.secret = b.secret && IntSet.equal a.args b.args
    && StrSet.equal a.srcs b.srcs

  let is_secret l = l.secret
  let args l = IntSet.elements l.args
  let sources l = StrSet.elements l.srcs

  let to_string l =
    let parts =
      (if l.secret then [ "secret" ] else [])
      @ List.map (Printf.sprintf "arg%d") (IntSet.elements l.args)
    in
    match parts with [] -> "public" | _ -> String.concat "+" parts
end

module Dom = struct
  type v = { iv : Interval.t; lbl : Labels.t }

  let name = "taint"

  (* Numeric-unknown but public: the value of monitor-local state the
     interpreter does not track.  Secrets enter only through the
     trusted-primitive models. *)
  let top = { iv = Interval.top; lbl = Labels.empty }

  let make iv lbl = { iv; lbl }
  let equal a b = Interval.equal a.iv b.iv && Labels.equal a.lbl b.lbl
  let join a b = { iv = Interval.join a.iv b.iv; lbl = Labels.join a.lbl b.lbl }

  let widen ~thresholds a b =
    { iv = Interval.widen ~thresholds a.iv b.iv; lbl = Labels.join a.lbl b.lbl }

  let narrow a b =
    { iv = Interval.narrow a.iv b.iv; lbl = Labels.join a.lbl b.lbl }

  let is_bot a = Interval.is_bot a.iv

  let of_const c =
    let iv =
      match c with
      | Mir.Syntax.Cint (w, _) -> Interval.of_word w
      | Mir.Syntax.Cbool b -> Interval.of_bool b
      | Mir.Syntax.Cunit | Mir.Syntax.Cfn _ -> Interval.top
    in
    { iv; lbl = Labels.empty }

  let binop op a b =
    { iv = Interval.binop op a.iv b.iv; lbl = Labels.join a.lbl b.lbl }

  let checked op a b =
    let r, f = Interval.checked op a.iv b.iv in
    let lbl = Labels.join a.lbl b.lbl in
    ({ iv = r; lbl }, { iv = f; lbl })

  let unop op a =
    let iv =
      match op with
      | Mir.Syntax.Not -> Interval.lognot_ a.iv
      | Mir.Syntax.Neg -> Interval.neg a.iv
    in
    { a with iv }

  let cast ity a = { a with iv = Interval.cast ity a.iv }

  (* Pointees are monitor-local and untracked numerically, but keep
     the labels the pointer value accumulated (a ref to a local that
     held a secret stays secret-labelled). *)
  let deref a = { iv = Interval.top; lbl = a.lbl }

  let interval a = a.iv
  let with_interval a iv = { a with iv }

  (* Summary contexts standardize parameter labels to their argument
     index; the interval component keeps the call site's precision. *)
  let label_arg i a = { iv = a.iv; lbl = Labels.arg i }

  let nth_label actuals i =
    match List.nth_opt actuals i with
    | Some a -> a.lbl
    | None -> Labels.empty

  let subst_labels ~actuals (l : Labels.t) =
    IntSet.fold
      (fun i acc -> Labels.join acc (nth_label actuals i))
      l.Labels.args
      { l with Labels.args = IntSet.empty }

  let subst ~actuals a = { a with lbl = subst_labels ~actuals a.lbl }

  type eff = Labels.t

  let eff_bot = Labels.empty
  let eff_join = Labels.join

  let eff_top ~arity =
    {
      Labels.secret = false;
      args = IntSet.of_list (List.init arity (fun i -> i));
      srcs = StrSet.empty;
    }

  let subst_eff ~actuals (e : eff) =
    let hit =
      IntSet.exists
        (fun i -> Labels.is_secret (nth_label actuals i))
        e.Labels.args
    in
    (* The callee's own secret bit is its own obligation's finding;
       the caller's effect only carries what the caller handed in. *)
    let e' = subst_labels ~actuals { e with Labels.secret = false } in
    (e', hit)

  let key a = Interval.to_string a.iv
end

(** Interprocedural Andersen-style points-to analysis.

    Inclusion-based, flow-insensitive per body, summarized per
    call-graph SCC in callees-first order.  Produces per-function
    {e certified footprints} — the abstract locations a function may
    read or write through a dereference, with callee footprints
    substituted actual-for-formal — plus return-value points-to sets
    and parameter escape sets.  {!Alias_lint} turns these into
    findings and discharge certificates; {!certify} gates
    [points_to]-bearing compositional spec overrides. *)

module StrMap : Map.S with type key = string

(** Object-granular abstract locations. *)
type loc =
  | Lparam of int  (** pointee of the i-th formal parameter *)
  | Llocal of string  (** storage of a local of the analyzed function *)
  | Lglobal of string  (** a [Mem] global root *)
  | Labs  (** trusted-primitive abstract state *)
  | Lunknown

module LocSet : Set.S with type elt = loc

val loc_to_string : loc -> string
val locs_to_string : LocSet.t -> string

type fp = { reads : LocSet.t; writes : LocSet.t }

val fp_empty : fp
val fp_union : fp -> fp -> fp

val exact : fp -> bool
(** No {!Lunknown} on either side: the footprint is a proof, not a
    guess, and may back certificates. *)

module IntSet : Set.S with type elt = int

type summary = { fp : fp; ret : LocSet.t; esc : IntSet.t }

val summary_bot : summary

type info = { summary : summary; vars : LocSet.t StrMap.t }

val may_overlap : LocSet.t -> LocSet.t -> bool
(** Shared location, or either side unknown. *)

val witness : LocSet.t -> LocSet.t -> loc option
(** A definite common location (never {!Lunknown}); what the
    Error-severity lint requires before it fires. *)

val analyze :
  ?prim:(string -> summary option) -> Mir.Syntax.program -> info StrMap.t
(** Whole-program fixpoint.  [prim] models extern callees (e.g. the
    trusted primitives as {!Labs} effects); an unmodeled extern makes
    the caller's footprint inexact. *)

val footprint : info StrMap.t -> string -> fp
(** The function's certified footprint; fully unknown when the
    function was not analyzed. *)

val certify :
  callee_fp:fp ->
  frames:Mir.Path.t list ->
  retained:Mir.Path.t list ->
  (unit, string) result
(** Decide whether a [points_to]-bearing spec override may replace the
    callee's body: the callee footprint must be exact, every global it
    writes must lie within a declared frame, and every frame must be
    disjoint from every object-memory path the callers retain.  An
    empty frame list certifies trivially (a fact-free contract claims
    nothing).  The [Error] carries the refusal reason; the engine then
    falls back to the callee's body. *)

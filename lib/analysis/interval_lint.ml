(* Interval-bounds certification (kind [Lint.Interval_bounds]).

   Runs the pure interval instantiation of the abstract interpreter
   over each function of an SCC and produces two kinds of results:

   - array-index bounds: every [Pindex]/[Pconst_index] projection
     whose base is a sized array must have an index interval inside
     [0, len); an index that may escape is an [Error] finding;

   - unchecked-arithmetic discharge: each site the per-body
     [Arith_lint] flags is re-examined with the operand intervals in
     force; when the operation provably cannot wrap, an [Info]
     certificate with the same [where] key is emitted, and
     [Lint.reconcile] later cancels the corresponding [Error].

   Parameters are unconstrained (top), so a bound certified here holds
   for every caller. *)

module Syn = Mir.Syntax
module Word = Mir.Word

(* Pure interval domain: the interprocedural labelling degenerates to
   the identity (intervals are already context-evaluated). *)
module Dom = struct
  type v = Interval.t

  let name = "interval"
  let top = Interval.top
  let equal = Interval.equal
  let join = Interval.join
  let widen = Interval.widen
  let narrow = Interval.narrow
  let is_bot = Interval.is_bot

  let of_const = function
    | Syn.Cint (w, _) -> Interval.of_word w
    | Syn.Cbool b -> Interval.of_bool b
    | Syn.Cunit | Syn.Cfn _ -> Interval.top

  let binop = Interval.binop
  let checked = Interval.checked

  let unop op v =
    match op with
    | Syn.Not -> Interval.lognot_ v
    | Syn.Neg -> Interval.neg v

  let cast = Interval.cast
  let deref _ = Interval.top
  let interval v = v
  let with_interval _ iv = iv
  let label_arg _ v = v
  let subst ~actuals:_ v = v

  type eff = unit

  let eff_bot = ()
  let eff_join () () = ()
  let eff_top ~arity:_ = ()
  let subst_eff ~actuals:_ () = ((), false)
  let key = Interval.to_string
end

module A = Absint.Make (Dom)

type stats = {
  functions : int;
  bound_checks : int; (* indexing sites examined *)
  findings : int; (* indices that may escape *)
  discharged : int; (* unchecked-arith certificates *)
  iterations : int;
}

(* Indexing steps of a place: [(index_interval, len, via)] for each
   sized-array projection, resolved against the declared local type. *)
let index_checks body env (p : Syn.place) =
  let rec walk ty elems acc =
    match elems with
    | [] -> acc
    | el :: rest -> (
        match (ty, el) with
        | Some (Mir.Ty.Array (t, n)), Syn.Pindex ixvar ->
            let iv = A.collapse (A.read_var env ixvar) in
            walk (Some t) rest ((iv, n, ixvar) :: acc)
        | Some (Mir.Ty.Array (t, n)), Syn.Pconst_index i ->
            walk (Some t) rest ((Interval.of_int i, n, string_of_int i) :: acc)
        | Some (Mir.Ty.Ref t | Mir.Ty.Raw t), Syn.Deref ->
            walk (Some t) rest acc
        | Some (Mir.Ty.Tuple ts), Syn.Pfield i ->
            walk (List.nth_opt ts i) rest acc
        | _, Syn.Downcast _ -> walk ty rest acc
        | _, _ -> walk None rest acc)
  in
  let base =
    List.find_opt
      (fun (d : Syn.local_decl) -> String.equal d.Syn.lname p.Syn.var)
      body.Syn.locals
    |> Option.map (fun (d : Syn.local_decl) -> d.Syn.lty)
  in
  walk base p.Syn.elems []

let operand_places =
  List.filter_map (function
    | Syn.Copy p | Syn.Move p -> Some p
    | Syn.Const _ -> None)

let places_of_rvalue = function
  | Syn.Use o | Syn.Repeat (o, _) | Syn.Cast (o, _) | Syn.Unary (_, o) ->
      operand_places [ o ]
  | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
      operand_places [ a; b ]
  | Syn.Ref p | Syn.Address_of p | Syn.Len p | Syn.Discriminant p -> [ p ]
  | Syn.Aggregate (_, os) -> operand_places os

let in_bounds iv n =
  n > 0 && Interval.subset iv (Interval.v 0L (Word.of_int Word.W64 (n - 1)))

let overflow_free op ia ib =
  match (Interval.bounds ia, Interval.bounds ib) with
  | Some (al, ah), Some (_, bh) -> (
      match op with
      | Syn.Add -> not (Word.add_overflows ah bh)
      | Syn.Mul -> not (Word.mul_overflows ah bh)
      | Syn.Sub -> Word.le_u bh al (* never borrows iff min a >= max b *)
      | _ -> false)
  | _ -> false

(* Findings for one function, tagged with its name. *)
let check_function ctx fn =
  match A.analyze ctx fn with
  | None -> ([], 0, 0)
  | Some (body, soln) ->
      let findings = ref [] in
      let checks = ref 0 in
      let discharged = ref 0 in
      let arith_sites = Arith_lint.sites body in
      let check_place ~where env p =
        List.iter
          (fun (iv, n, via) ->
            incr checks;
            if not (in_bounds iv n) then
              findings :=
                Lint.v Lint.Interval_bounds ~where
                  (Printf.sprintf "index %s = %s may escape array bound %d" via
                     (Interval.to_string iv) n)
                :: !findings)
          (index_checks body env p)
      in
      A.visit body soln
        {
          A.on_stmt =
            (fun ~block ~idx env stmt ->
              let where = Printf.sprintf "bb%d[%d]" block idx in
              (match stmt with
              | Syn.Assign (dest, rv) ->
                  check_place ~where env dest;
                  List.iter (check_place ~where env) (places_of_rvalue rv)
              | Syn.Set_discriminant (p, _) -> check_place ~where env p
              | Syn.Storage_live _ | Syn.Storage_dead _ | Syn.Nop -> ());
              (* unchecked-arith discharge at the flagged sites *)
              List.iter
                (fun (s : Arith_lint.site) ->
                  if s.Arith_lint.block = block && s.Arith_lint.stmt = idx
                  then
                    let ia = A.scalar env s.Arith_lint.lhs
                    and ib = A.scalar env s.Arith_lint.rhs in
                    if overflow_free s.Arith_lint.op ia ib then begin
                      incr discharged;
                      findings :=
                        Lint.v ~severity:Lint.Info
                          ~discharged_by:(Lint.to_string Lint.Interval_bounds)
                          Lint.Unchecked_arith
                          ~where:(Arith_lint.site_where s)
                          (Printf.sprintf
                             "proved overflow-free: %s on %s and %s"
                             (Arith_lint.op_name s.Arith_lint.op)
                             (Interval.to_string ia) (Interval.to_string ib))
                        :: !findings
                    end)
                arith_sites);
          A.on_term =
            (fun ~block env term ->
              let where = Printf.sprintf "bb%d" block in
              match term with
              | Syn.Call { dest; args; _ } ->
                  check_place ~where env dest;
                  List.iter (check_place ~where env) (operand_places args)
              | Syn.Drop (p, _) -> check_place ~where env p
              | Syn.Goto _ | Syn.Switch_int _ | Syn.Return | Syn.Unreachable
              | Syn.Assert _ -> ());
        };
      (List.rev !findings |> List.map (fun f -> (fn, f)), !checks, !discharged)

let check program ~funcs =
  let ctx = A.create_ctx ~prim:(fun ~func:_ ~args:_ -> None) program in
  let findings, checks, discharged =
    List.fold_left
      (fun (fs, cs, ds) fn ->
        let f, c, d = check_function ctx fn in
        (fs @ f, cs + c, ds + d))
      ([], 0, 0) funcs
  in
  let errors =
    List.filter
      (fun (_, (f : Lint.finding)) -> f.Lint.severity = Lint.Error)
      findings
  in
  ( findings,
    {
      functions = List.length funcs;
      bound_checks = checks;
      findings = List.length errors;
      discharged;
      iterations = (A.stats ctx).A.iterations;
    } )

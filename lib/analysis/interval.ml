(* Unsigned 64-bit interval lattice.

   The numeric abstract domain of the interpreter (Absint): every
   MIRlight scalar is approximated by an interval [lo, hi] in the
   unsigned order, or Bot for unreachable/contradictory values.
   Booleans embed as {0}, {1}, [0,1].

   Transfer functions are exact whenever the concrete operation is
   monotone on the interval and cannot wrap; a possible wrap degrades
   to top (the checked-arithmetic path recovers precision through
   [no_overflow] once the lowered overflow assertion has pruned the
   wrapping executions).  Widening jumps to the nearest of a threshold
   set harvested from the function's literals, which is what makes
   counting loops like [while i < NFRAMES] converge to the precise
   bound instead of top. *)

module Word = Mir.Word

type t = Bot | Itv of Word.t * Word.t (* lo <=u hi *)

let bot = Bot
let top = Itv (0L, Word.umax)
let of_word w = Itv (w, w)
let of_bool b = of_word (if b then 1L else 0L)
let of_int n = of_word (Int64.of_int n)
let boolean = Itv (0L, 1L)

let v lo hi = if Word.le_u lo hi then Itv (lo, hi) else Bot

let bounds = function Bot -> None | Itv (lo, hi) -> Some (lo, hi)
let is_bot i = i = Bot

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Itv (al, ah), Itv (bl, bh) -> Word.equal al bl && Word.equal ah bh
  | (Bot | Itv _), _ -> false

let singleton = function
  | Itv (lo, hi) when Word.equal lo hi -> Some lo
  | Bot | Itv _ -> None

let mem w = function
  | Bot -> false
  | Itv (lo, hi) -> Word.le_u lo w && Word.le_u w hi

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | Itv _, Bot -> false
  | Itv (al, ah), Itv (bl, bh) -> Word.le_u bl al && Word.le_u ah bh

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (al, ah), Itv (bl, bh) -> Itv (Word.min_u al bl, Word.max_u ah bh)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> v (Word.max_u al bl) (Word.min_u ah bh)

(* Widening to thresholds: an unstable bound jumps to the nearest
   threshold beyond it (0 / umax as the final fallback), so every
   ascending chain stabilizes after at most |thresholds|+1 widenings
   per bound. [thresholds] must be sorted ascending (unsigned). *)
let widen ~thresholds a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (al, ah), Itv (bl, bh) ->
      let lo =
        if Word.le_u al bl then al
        else
          List.fold_left
            (fun acc t -> if Word.le_u t bl then Word.max_u acc t else acc)
            0L thresholds
      in
      let hi =
        if Word.le_u bh ah then ah
        else
          List.fold_left
            (fun acc t -> if Word.le_u bh t then Word.min_u acc t else acc)
            Word.umax thresholds
      in
      Itv (lo, hi)

(* Narrowing step of the decreasing iteration: accept the recomputed
   value when it refines the widened one (sound above a fixpoint),
   keep the old one otherwise to rule out oscillation. *)
let narrow a b = if subset b a then b else a

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)

let lift2 f a b =
  match (a, b) with Bot, _ | _, Bot -> Bot | Itv _, Itv _ -> f a b

let add =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.add_overflows ah bh then top
          else Itv (Int64.add al bl, Int64.add ah bh)
      | _ -> assert false)

let sub =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.lt_u al bh then top (* some pair may borrow *)
          else Itv (Int64.sub al bh, Int64.sub ah bl)
      | _ -> assert false)

let mul =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.mul_overflows ah bh then top
          else Itv (Int64.mul al bl, Int64.mul ah bh)
      | _ -> assert false)

(* Saturating variants: the envelope of the non-wrapping executions,
   used to re-bound a checked pair once its overflow flag is refuted. *)
let add_sat =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.add_overflows al bl then Bot (* every pair wraps *)
          else Itv (Int64.add al bl, Word.add_sat ah bh)
      | _ -> assert false)

let sub_sat =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.lt_u ah bl then Bot (* every pair borrows *)
          else Itv (Word.sub_sat al bh, Int64.sub ah bl)
      | _ -> assert false)

let mul_sat =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          if Word.mul_overflows al bl then Bot
          else Itv (Int64.mul al bl, Word.mul_sat ah bh)
      | _ -> assert false)

let div =
  lift2 (fun a b ->
      match (a, meet b (Itv (1L, Word.umax))) with
      | Itv (al, ah), Itv (bl, bh) ->
          let q x y = Int64.unsigned_div x y in
          Itv (q al bh, q ah bl)
      | _, Bot -> Bot (* divisor provably zero: the guard traps *)
      | _ -> assert false)

let rem =
  lift2 (fun a b ->
      match (a, meet b (Itv (1L, Word.umax))) with
      | Itv (_, ah), Itv (_, bh) -> Itv (0L, Word.min_u ah (Int64.sub bh 1L))
      | _, Bot -> Bot
      | _ -> assert false)

(* Smear the high bit downward: the least 2^k-1 pattern covering x,
   an upper bound for any bitwise-or/xor result over the operands. *)
let smear x =
  let m = ref x in
  List.iter (fun s -> m := Int64.logor !m (Int64.shift_right_logical !m s)) [ 1; 2; 4; 8; 16; 32 ];
  !m

let exact2 f a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> Some (of_word (f x y))
  | _ -> None

let bit_and =
  lift2 (fun a b ->
      match exact2 Word.logand a b with
      | Some r -> r
      | None -> (
          match (a, b) with
          | Itv (_, ah), Itv (_, bh) -> Itv (0L, Word.min_u ah bh)
          | _ -> assert false))

let bit_or =
  lift2 (fun a b ->
      match exact2 Word.logor a b with
      | Some r -> r
      | None -> (
          match (a, b) with
          | Itv (al, ah), Itv (bl, bh) ->
              Itv (Word.max_u al bl, smear (Int64.logor ah bh))
          | _ -> assert false))

let bit_xor =
  lift2 (fun a b ->
      match exact2 Word.logxor a b with
      | Some r -> r
      | None -> (
          match (a, b) with
          | Itv (_, ah), Itv (_, bh) -> Itv (0L, smear (Int64.logor ah bh))
          | _ -> assert false))

let shl =
  lift2 (fun a b ->
      match (a, singleton b) with
      | Itv (al, ah), Some n when Word.lt_u n 64L ->
          let n = Int64.to_int n in
          let lo = Word.shift_left Word.W64 al n
          and hi = Word.shift_left Word.W64 ah n in
          (* exact iff no bit of the upper bound is shifted out *)
          if Word.equal (Word.shift_right Word.W64 hi n) ah then Itv (lo, hi)
          else top
      | Itv _, Some _ -> of_word 0L (* MIRlight shifts >= 64 produce 0 *)
      | Itv _, None -> top
      | _ -> assert false)

let shr =
  lift2 (fun a b ->
      match (a, b) with
      | Itv (al, ah), Itv (bl, bh) ->
          let sh x n =
            if Word.le_u 64L n then 0L
            else Word.shift_right Word.W64 x (Int64.to_int n)
          in
          (* antitone in the amount: min at the largest shift *)
          Itv (sh al bh, sh ah bl)
      | _ -> assert false)

(* Comparison results as boolean intervals: decided when the intervals
   separate, [0,1] otherwise. *)
let cmp_lt a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) ->
      if Word.lt_u ah bl then of_bool true
      else if Word.le_u bh al then of_bool false
      else boolean

let cmp_le a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) ->
      if Word.le_u ah bl then of_bool true
      else if Word.lt_u bh al then of_bool false
      else boolean

let cmp_eq a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv _, Itv _ -> (
      if meet a b = Bot then of_bool false
      else
        match (singleton a, singleton b) with
        | Some x, Some y when Word.equal x y -> of_bool true
        | _ -> boolean)

let lognot_ = function
  | Bot -> Bot
  | Itv (lo, hi) as i -> (
      match singleton i with
      | Some x -> of_word (Word.lognot Word.W64 x)
      | None ->
          (* complement is antitone *)
          Itv (Word.lognot Word.W64 hi, Word.lognot Word.W64 lo))

let neg = function
  | Bot -> Bot
  | Itv _ as i -> (
      match singleton i with
      | Some x -> of_word (Word.sub Word.W64 0L x)
      | None -> top)

let cast ity = function
  | Bot -> Bot
  | Itv (_, hi) as i ->
      let m = Word.mask (Mir.Ty.width ity) in
      if Word.le_u hi m then i else Itv (0L, m)

(* ------------------------------------------------------------------ *)
(* Branch refinement                                                   *)

(* Constrain (a, b) under [a < b] (truth of the unsigned strict
   order); [None] when the constraint is unsatisfiable. *)
let refine_lt a b =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | Itv (al, ah), Itv (bl, bh) ->
      if Word.equal bh 0L then None
      else
        let a' = meet (Itv (al, ah)) (Itv (0L, Int64.sub bh 1L)) in
        let b' = meet (Itv (bl, bh)) (Itv (Word.add_sat al 1L, Word.umax)) in
        if a' = Bot || b' = Bot then None else Some (a', b')

let refine_le a b =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | Itv (al, ah), Itv (bl, bh) ->
      let a' = meet (Itv (al, ah)) (Itv (0L, bh)) in
      let b' = meet (Itv (bl, bh)) (Itv (al, Word.umax)) in
      if a' = Bot || b' = Bot then None else Some (a', b')

let refine_eq a b =
  let m = meet a b in
  if m = Bot then None else Some (m, m)

(* a <> b only prunes when one side is a singleton at the other's
   boundary. *)
let refine_ne a b =
  let chip x s =
    match (x, singleton s) with
    | Itv (lo, hi), Some w ->
        if Word.equal lo w && Word.equal hi w then Bot
        else if Word.equal lo w then Itv (Int64.add lo 1L, hi)
        else if Word.equal hi w then Itv (lo, Int64.sub hi 1L)
        else x
    | _ -> x
  in
  let a' = chip a b and b' = chip b a in
  if a' = Bot || b' = Bot then None else Some (a', b')

let refine_cmp op ~truth a b =
  let swap = Option.map (fun (x, y) -> (y, x)) in
  match (op, truth) with
  | Mir.Syntax.Lt, true | Mir.Syntax.Ge, false -> refine_lt a b
  | Mir.Syntax.Lt, false | Mir.Syntax.Ge, true -> swap (refine_le b a)
  | Mir.Syntax.Le, true | Mir.Syntax.Gt, false -> refine_le a b
  | Mir.Syntax.Le, false | Mir.Syntax.Gt, true -> swap (refine_lt b a)
  | Mir.Syntax.Eq, true | Mir.Syntax.Ne, false -> refine_eq a b
  | Mir.Syntax.Eq, false | Mir.Syntax.Ne, true -> refine_ne a b
  | ( ( Mir.Syntax.Add | Mir.Syntax.Sub | Mir.Syntax.Mul | Mir.Syntax.Div
      | Mir.Syntax.Rem | Mir.Syntax.Bit_and | Mir.Syntax.Bit_or
      | Mir.Syntax.Bit_xor | Mir.Syntax.Shl | Mir.Syntax.Shr ),
      _ ) ->
      Some (a, b)

let binop (op : Mir.Syntax.bin_op) a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> div a b
  | Rem -> rem a b
  | Bit_and -> bit_and a b
  | Bit_or -> bit_or a b
  | Bit_xor -> bit_xor a b
  | Shl -> shl a b
  | Shr -> shr a b
  | Eq -> cmp_eq a b
  | Ne -> ( match cmp_eq a b with Bot -> Bot | r -> (
      match singleton r with
      | Some w -> of_bool (Word.equal w 0L)
      | None -> boolean))
  | Lt -> cmp_lt a b
  | Le -> cmp_le a b
  | Gt -> cmp_lt b a
  | Ge -> cmp_le b a

(* Result envelope of a checked Add/Sub/Mul on the executions that do
   not overflow — what survives the lowered [Assert !overflow]. *)
let no_overflow (op : Mir.Syntax.bin_op) a b =
  match op with
  | Add -> add_sat a b
  | Sub -> sub_sat a b
  | Mul -> mul_sat a b
  | _ -> binop op a b

(* The checked pair (wrapped result, overflow flag). *)
let checked (op : Mir.Syntax.bin_op) a b =
  match (op, a, b) with
  | (Add | Sub | Mul), Itv (al, ah), Itv (bl, bh) ->
      let lo_ov, hi_ov =
        match op with
        | Add -> (Word.add_overflows al bl, Word.add_overflows ah bh)
        | Sub -> (Word.lt_u ah bl, Word.lt_u al bh)
        | _ -> (Word.mul_overflows al bl, Word.mul_overflows ah bh)
      in
      let flag =
        if lo_ov && hi_ov then of_bool true
        else if (not lo_ov) && not hi_ov then of_bool false
        else boolean
      in
      let res = if lo_ov || hi_ov then top else binop op a b in
      (res, flag)
  | _, Bot, _ | _, _, Bot -> (Bot, Bot)
  | _ -> (binop op a b, of_bool false)

let to_string = function
  | Bot -> "bot"
  | Itv (lo, hi) ->
      if Word.equal lo hi then Word.to_hex lo
      else Printf.sprintf "[%s, %s]" (Word.to_hex lo) (Word.to_hex hi)

let pp fmt i = Format.pp_print_string fmt (to_string i)

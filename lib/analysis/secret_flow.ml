(* Secret-flow noninterference lint (kind [Lint.Secret_flow]).

   Runs the taint instantiation of the abstract interpreter over each
   function of an SCC and reports every way enclave-secret state can
   reach a primary-OS-observable location other than through the
   marshalling buffer:

   - a trusted-primitive write whose value may be secret and whose
     target address is classified observable (the [prim] model returns
     a non-empty effect: the labels reaching the sink at that site);
   - a call passing a secret actual to a callee whose summary says
     that argument reaches a sink (the caller-side finding
     [Absint.apply_call] reports);
   - a secret value returned from a boundary function (a hypercall
     handler's return value is the primary OS's register state).

   What counts as a source, a sink and sanctioned declassification is
   the client's policy, supplied as closures — [lib/security] derives
   them from the physical [Layout] so this module stays layout- and
   layer-agnostic. *)

module Syn = Mir.Syntax
module A = Absint.Make (Taint.Dom)

type config = {
  program : Syn.program;
  prim : func:string -> args:A.value list -> (A.value * Taint.Labels.t) option;
      (** Model of the trusted primitives: result value and the labels
          reaching an observable sink at this call (empty = no sink,
          secret bit set = finding). *)
  boundary : string -> bool;
      (** Functions whose return value the primary OS observes. *)
}

type stats = {
  functions : int;
  findings : int;
  iterations : int;
  summaries : int;
}

let describe_srcs labels =
  match Taint.Labels.sources labels with
  | [] -> ""
  | srcs -> Printf.sprintf " (secret from %s)" (String.concat ", " srcs)

(* Findings for one function, tagged with its name. *)
let check_function ctx cfg fn =
  match A.analyze ctx fn with
  | None -> []
  | Some (body, soln) ->
      let findings = ref [] in
      let add ~block detail =
        findings :=
          Lint.v Lint.Secret_flow ~where:(Printf.sprintf "bb%d" block) detail
          :: !findings
      in
      A.visit body soln
        {
          A.on_stmt = (fun ~block:_ ~idx:_ _ _ -> ());
          A.on_term =
            (fun ~block env term ->
              match term with
              | Syn.Call { func; args; _ } -> (
                  let avs = List.map (A.eval_operand env) args in
                  match cfg.prim ~func ~args:avs with
                  | Some (_, eff) ->
                      if Taint.Labels.is_secret eff then
                        add ~block
                          (Printf.sprintf
                             "secret value reaches an OS-observable location \
                              via %s%s"
                             func (describe_srcs eff))
                  | None -> (
                      match A.apply_call ctx func avs with
                      | Some (_, _, true) ->
                          add ~block
                            (Printf.sprintf
                               "secret argument flows to an OS-observable \
                                sink inside %s"
                               func)
                      | Some _ | None -> ()))
              | Syn.Return ->
                  if cfg.boundary fn then begin
                    let ret = A.collapse (A.read_var env Syn.return_var) in
                    if Taint.Labels.is_secret ret.Taint.Dom.lbl then
                      add ~block
                        (Printf.sprintf
                           "secret value returned to the primary OS%s"
                           (describe_srcs ret.Taint.Dom.lbl))
                  end
              | Syn.Goto _ | Syn.Switch_int _ | Syn.Unreachable | Syn.Drop _
              | Syn.Assert _ -> ());
        };
      List.rev_map (fun f -> (fn, f)) !findings |> List.rev

let check cfg ~funcs =
  let ctx = A.create_ctx ~prim:cfg.prim cfg.program in
  let findings = List.concat_map (check_function ctx cfg) funcs in
  let s = A.stats ctx in
  ( findings,
    {
      functions = List.length funcs;
      findings = List.length findings;
      iterations = s.A.iterations;
      summaries = s.A.summaries;
    } )

(* Use-before-init / use-after-move, as a forward may-analysis.

   Tracked variables are compiler temporaries ([Ktemp]) that are not
   parameters and whose address is never taken ([Ref]/[Address_of]
   anywhere in the body).  Named locals and escaping temporaries are
   excluded: writes through pointers would otherwise look like missing
   initialization.  The lattice element is a pair of may-sets — a
   variable in [uninit] (resp. [moved]) MAY be uninitialized (moved)
   on some path reaching the program point. *)

module Syn = Mir.Syntax
module StrSet = Set.Make (String)

module L = struct
  type t = { uninit : StrSet.t; moved : StrSet.t }

  let equal a b = StrSet.equal a.uninit b.uninit && StrSet.equal a.moved b.moved

  let join a b =
    { uninit = StrSet.union a.uninit b.uninit; moved = StrSet.union a.moved b.moved }

  let bottom = { uninit = StrSet.empty; moved = StrSet.empty }
end

module Solver = Dataflow.Make (L)

let escaped_vars (body : Syn.body) =
  Array.fold_left
    (fun acc (blk : Syn.block) ->
      List.fold_left
        (fun acc stmt ->
          match stmt with
          | Syn.Assign (_, (Syn.Ref p | Syn.Address_of p)) ->
              StrSet.add p.Syn.var acc
          | _ -> acc)
        acc blk.Syn.stmts)
    StrSet.empty body.Syn.blocks

let tracked_vars (body : Syn.body) =
  let escaped = escaped_vars body in
  List.fold_left
    (fun acc (d : Syn.local_decl) ->
      if
        d.Syn.lkind = Syn.Ktemp
        && (not (List.mem d.Syn.lname body.Syn.params))
        && not (StrSet.mem d.Syn.lname escaped)
      then StrSet.add d.Syn.lname acc
      else acc)
    StrSet.empty body.Syn.locals

let assigns_return_var (body : Syn.body) =
  Array.exists
    (fun (blk : Syn.block) ->
      List.exists
        (function
          | Syn.Assign (p, _) -> String.equal p.Syn.var Syn.return_var
          | _ -> false)
        blk.Syn.stmts
      ||
      match blk.Syn.term with
      | Syn.Call { dest; _ } -> String.equal dest.Syn.var Syn.return_var
      | _ -> false)
    body.Syn.blocks

(* One interpretation step shared by the fixpoint (silent [report]) and
   the recording pass.  [report ~where ~detail] fires on each suspect
   use; the returned state reflects the effects of the instruction. *)
let step ~tracked ~report =
  let use_place ~where (st : L.t) (p : Syn.place) =
    if StrSet.mem p.Syn.var tracked then begin
      if StrSet.mem p.Syn.var st.L.uninit then
        report ~where
          ~detail:(Printf.sprintf "use of possibly-uninitialized %s" p.Syn.var);
      if StrSet.mem p.Syn.var st.L.moved then
        report ~where ~detail:(Printf.sprintf "use of moved %s" p.Syn.var)
    end;
    st
  in
  let use_operand ~where (st : L.t) = function
    | Syn.Const _ -> st
    | Syn.Copy p -> use_place ~where st p
    | Syn.Move p ->
        let st = use_place ~where st p in
        if p.Syn.elems = [] && StrSet.mem p.Syn.var tracked then
          { st with L.moved = StrSet.add p.Syn.var st.L.moved }
        else st
  in
  let use_rvalue ~where st = function
    | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op) ->
        use_operand ~where st op
    | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
        use_operand ~where (use_operand ~where st a) b
    | Syn.Ref p | Syn.Address_of p | Syn.Len p | Syn.Discriminant p ->
        use_place ~where st p
    | Syn.Aggregate (_, ops) -> List.fold_left (use_operand ~where) st ops
  in
  let define ~where st (p : Syn.place) =
    if not (StrSet.mem p.Syn.var tracked) then st
    else if p.Syn.elems = [] then
      {
        L.uninit = StrSet.remove p.Syn.var st.L.uninit;
        moved = StrSet.remove p.Syn.var st.L.moved;
      }
    else
      (* a projected write initializes only part of the value: the base
         must already be live, and stays in whatever state it was *)
      use_place ~where st p
  in
  let stmt ~where st = function
    | Syn.Assign (dest, rv) -> define ~where (use_rvalue ~where st rv) dest
    | Syn.Set_discriminant (p, _) -> use_place ~where st p
    | Syn.Storage_live v | Syn.Storage_dead v ->
        if StrSet.mem v tracked then
          { L.uninit = StrSet.add v st.L.uninit; moved = StrSet.remove v st.L.moved }
        else st
    | Syn.Nop -> st
  in
  let term ~where ~uses_ret st = function
    | Syn.Goto _ | Syn.Unreachable -> st
    | Syn.Return ->
        if uses_ret then use_place ~where st (Syn.place_of_var Syn.return_var)
        else st
    | Syn.Switch_int (op, _, _) -> use_operand ~where st op
    | Syn.Drop (p, _) ->
        (* dropping an already-moved value is fine (drop-flag
           elaboration skips it); only a never-initialized one is not *)
        if StrSet.mem p.Syn.var tracked then begin
          if StrSet.mem p.Syn.var st.L.uninit then
            report ~where
              ~detail:
                (Printf.sprintf "drop of possibly-uninitialized %s" p.Syn.var);
          if p.Syn.elems = [] then
            { st with L.moved = StrSet.add p.Syn.var st.L.moved }
          else st
        end
        else st
    | Syn.Call { dest; args; _ } ->
        let st = List.fold_left (use_operand ~where) st args in
        define ~where st dest
    | Syn.Assert { cond; _ } -> use_operand ~where st cond
  in
  (stmt, term)

let transfer_block ~tracked ~report ~uses_ret (body : Syn.body) i st =
  let blk = body.Syn.blocks.(i) in
  let stmt, term = step ~tracked ~report in
  let st, _ =
    List.fold_left
      (fun (st, k) s -> (stmt ~where:(Printf.sprintf "bb%d[%d]" i k) st s, k + 1))
      (st, 0) blk.Syn.stmts
  in
  term ~where:(Printf.sprintf "bb%d[term]" i) ~uses_ret st blk.Syn.term

let run (body : Syn.body) =
  let tracked = tracked_vars body in
  if StrSet.is_empty tracked then []
  else begin
    let uses_ret = assigns_return_var body in
    let silent ~where:_ ~detail:_ = () in
    let init = { L.uninit = tracked; moved = StrSet.empty } in
    let result =
      Solver.solve ~init ~bottom:L.bottom
        ~transfer:(transfer_block ~tracked ~report:silent ~uses_ret body)
        body
    in
    (* recording pass: replay reachable blocks from their fixpoint
       inputs, now with a live reporter *)
    let reach = Cfg.reachable body in
    let findings = ref [] in
    let report ~where ~detail =
      findings := Lint.v Lint.Move_init ~where detail :: !findings
    in
    Array.iteri
      (fun i _ ->
        if reach.(i) then
          ignore
            (transfer_block ~tracked ~report ~uses_ret body i result.Solver.before.(i)))
      body.Syn.blocks;
    List.rev !findings
  end

(** The lint catalogue and its findings.

    Four dataflow lints run over every MIRlight body (see {!Pass}):

    - [Encapsulation] — RData handles (locals whose type mentions
      [Ty.Opaque]) must not be dereferenced, field-projected, written
      through, or passed to a callee outside the owning layer's
      getter/setter set.
    - [Move_init] — use of a possibly-uninitialized or moved temporary.
    - [Unchecked_arith] — raw [Add]/[Sub]/[Mul] on word-typed operands
      in a body whose convention is checked arithmetic (it contains
      [Checked_binary] operations elsewhere).
    - [Unreachable_block] — a block unreachable from bb0 that still
      contains code (empty [Goto] blocks are lowering artifacts of
      [return]/[break] and are ignored).

    Three NLL-style borrow-checker lints run per body (see {!Borrow}
    and {!Borrow_lint}, scheduled by the engine as the "borrow" phase):

    - [Conflicting_borrow] — a mutable loan created while another loan
      of an overlapping place is still live (mut/mut or mut/shared).
    - [Dangling_handle] — a loan that outlives its borrowed storage
      ([Storage_dead]/[Drop] of the borrowed local, or a reference to a
      local escaping through the return value).
    - [Move_while_borrowed] — a place moved out while a live loan still
      covers it.

    Two interprocedural abstract-interpretation lints run per
    call-graph SCC (see {!Interval_lint} and {!Secret_flow}, scheduled
    by the engine):

    - [Interval_bounds] — array-index bounds certification, plus
      [Info]-severity certificates that discharge [Unchecked_arith]
      findings whose operand intervals provably cannot overflow.
    - [Secret_flow] — noninterference: enclave-secret state must not
      reach a primary-OS-observable location except through the
      marshalling buffer.

    One interprocedural points-to lint runs per call-graph SCC over
    Andersen footprint summaries (see {!Alias} and {!Alias_lint},
    scheduled by the engine as the "alias" phase):

    - [Alias_footprint] — a call passes two arguments that may alias
      to a callee whose certified footprint writes through both
      parameters.  The same pass emits [Info] certificates that
      discharge [Encapsulation]/[Move_init] findings at program points
      the interval interpretation proves unreachable, and
      [Encapsulation] call-site findings whose callee footprint
      provably never touches the handle argument. *)

type kind =
  | Encapsulation
  | Move_init
  | Unchecked_arith
  | Unreachable_block
  | Conflicting_borrow
  | Dangling_handle
  | Move_while_borrowed
  | Interval_bounds
  | Secret_flow
  | Alias_footprint

val all : kind list
(** The per-body dataflow lints, catalogue order. *)

val borrow : kind list
(** The per-body borrow-checker lints (engine phase "borrow"). *)

val interprocedural : kind list
(** The SCC-granular abstract-interpretation lints. *)

val alias : kind list
(** The SCC-granular points-to lint (engine phase "alias"). *)

val catalogue : kind list
(** [all @ borrow @ interprocedural @ alias]; also the presentation
    order of findings. *)

val to_string : kind -> string
val of_string : string -> (kind, string) result

val kinds_of_string : string -> (kind list, string) result
(** Parse a comma-separated selection of lint names and group
    selectors (["all"], ["body"], ["borrow"], ["interprocedural"],
    ["alias"]).  Unknown names are an [Error] naming the known lints
    and groups.  The result is deduplicated and in catalogue order so
    equal selections fingerprint identically. *)

type severity = Error | Info

type finding = {
  kind : kind;
  where : string;
  detail : string;
  severity : severity;
  discharged_by : string option;
}

val v :
  ?severity:severity -> ?discharged_by:string -> kind -> where:string ->
  string -> finding
(** Defaults: [severity = Error], no discharge. *)

val reconcile : finding list -> finding list
(** Drop every [Error] finding cancelled by an [Info] discharge
    certificate at the same kind and site (certificates stay, so the
    output still shows what was proved). *)

val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit

val sort : finding list -> finding list
(** Catalogue order, stable within a kind. *)

(** The lint catalogue and its findings.

    Four dataflow lints run over every MIRlight body (see {!Pass}):

    - [Encapsulation] — RData handles (locals whose type mentions
      [Ty.Opaque]) must not be dereferenced, field-projected, written
      through, or passed to a callee outside the owning layer's
      getter/setter set.
    - [Move_init] — use of a possibly-uninitialized or moved temporary.
    - [Unchecked_arith] — raw [Add]/[Sub]/[Mul] on word-typed operands
      in a body whose convention is checked arithmetic (it contains
      [Checked_binary] operations elsewhere).
    - [Unreachable_block] — a block unreachable from bb0 that still
      contains code (empty [Goto] blocks are lowering artifacts of
      [return]/[break] and are ignored). *)

type kind = Encapsulation | Move_init | Unchecked_arith | Unreachable_block

val all : kind list
(** Catalogue order; also the presentation order of findings. *)

val to_string : kind -> string
val of_string : string -> (kind, string) result

val kinds_of_string : string -> (kind list, string) result
(** Parse a comma-separated selection; ["all"] selects the full
    catalogue.  The result is deduplicated and in catalogue order so
    equal selections fingerprint identically. *)

type finding = { kind : kind; where : string; detail : string }

val v : kind -> where:string -> string -> finding
val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit

val sort : finding list -> finding list
(** Catalogue order, stable within a kind. *)

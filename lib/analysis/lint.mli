(** The lint catalogue and its findings.

    Four dataflow lints run over every MIRlight body (see {!Pass}):

    - [Encapsulation] — RData handles (locals whose type mentions
      [Ty.Opaque]) must not be dereferenced, field-projected, written
      through, or passed to a callee outside the owning layer's
      getter/setter set.
    - [Move_init] — use of a possibly-uninitialized or moved temporary.
    - [Unchecked_arith] — raw [Add]/[Sub]/[Mul] on word-typed operands
      in a body whose convention is checked arithmetic (it contains
      [Checked_binary] operations elsewhere).
    - [Unreachable_block] — a block unreachable from bb0 that still
      contains code (empty [Goto] blocks are lowering artifacts of
      [return]/[break] and are ignored).

    Two interprocedural abstract-interpretation lints run per
    call-graph SCC (see {!Interval_lint} and {!Secret_flow}, scheduled
    by the engine):

    - [Interval_bounds] — array-index bounds certification, plus
      [Info]-severity certificates that discharge [Unchecked_arith]
      findings whose operand intervals provably cannot overflow.
    - [Secret_flow] — noninterference: enclave-secret state must not
      reach a primary-OS-observable location except through the
      marshalling buffer. *)

type kind =
  | Encapsulation
  | Move_init
  | Unchecked_arith
  | Unreachable_block
  | Interval_bounds
  | Secret_flow

val all : kind list
(** The per-body dataflow lints, catalogue order. *)

val interprocedural : kind list
(** The SCC-granular abstract-interpretation lints. *)

val catalogue : kind list
(** [all @ interprocedural]; also the presentation order of findings. *)

val to_string : kind -> string
val of_string : string -> (kind, string) result

val kinds_of_string : string -> (kind list, string) result
(** Parse a comma-separated selection; ["all"] selects the full
    catalogue.  The result is deduplicated and in catalogue order so
    equal selections fingerprint identically. *)

type severity = Error | Info

type finding = {
  kind : kind;
  where : string;
  detail : string;
  severity : severity;
  discharged_by : string option;
}

val v :
  ?severity:severity -> ?discharged_by:string -> kind -> where:string ->
  string -> finding
(** Defaults: [severity = Error], no discharge. *)

val reconcile : finding list -> finding list
(** Drop every [Error] finding cancelled by an [Info] discharge
    certificate at the same kind and site (certificates stay, so the
    output still shows what was proved). *)

val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit

val sort : finding list -> finding list
(** Catalogue order, stable within a kind. *)

(* NLL-style loan dataflow.

   A loan is created whenever a reference is taken ([Ref] = shared,
   [Address_of] = mutable — MIRlight erases [&mut] so the raw-pointer
   operator is the mutable-borrow marker) and is tracked together with
   the variable holding it.  The loan set flows forward; a loan is
   {e live} at a program point when its holder is live there
   ({!Regions}), which is the NLL approximation of its region.

   Checks, all judged against live loans only:

   - [Conflicting_borrow]: creating a mutable loan while any live loan
     overlaps the borrowed place, or a shared loan while a live
     mutable loan overlaps it.
   - [Move_while_borrowed]: a [Move] operand overlapping a live loan.
   - [Dangling_handle]: [Storage_dead]/[Drop] of a variable some live
     loan still borrows from, or a reference to a non-parameter local
     escaping through the return value.

   Deliberate approximations (documented in the lint catalogue): plain
   writes to a borrowed place are not flagged (two-phase-borrow-like
   tolerance, and Rustlite lowers field updates through them), and
   references returned by callees introduce no loan (intraprocedural
   analysis; the alias phase covers callee footprints). *)

module Syn = Mir.Syntax
module StrSet = Regions.StrSet

type loan = {
  l_place : Syn.place;  (** the borrowed place *)
  l_mut : bool;  (** [Address_of] = mutable, [Ref] = shared *)
  l_holder : string;  (** variable the reference was stored into *)
  l_where : string;  (** introduction site, ["bbN[M]"] *)
}

module LoanSet = Set.Make (struct
  type t = loan

  let compare = compare
end)

module L = struct
  type t = LoanSet.t

  let equal = LoanSet.equal
  let join = LoanSet.union
end

module Solver = Dataflow.Make (L)

(* May the two places address overlapping storage?  Same base variable
   and projection-wise compatible prefixes; a variable index may equal
   any index. *)
let elem_may_eq a b =
  match (a, b) with
  | Syn.Deref, Syn.Deref -> true
  | Syn.Pfield i, Syn.Pfield j | Syn.Downcast i, Syn.Downcast j -> i = j
  | Syn.Pconst_index i, Syn.Pconst_index j -> i = j
  | Syn.Pindex _, (Syn.Pindex _ | Syn.Pconst_index _)
  | Syn.Pconst_index _, Syn.Pindex _ ->
      true
  | _ -> false

let rec elems_overlap es fs =
  match (es, fs) with
  | [], _ | _, [] -> true
  | e :: es', f :: fs' -> elem_may_eq e f && elems_overlap es' fs'

let places_overlap (p : Syn.place) (q : Syn.place) =
  String.equal p.Syn.var q.Syn.var && elems_overlap p.Syn.elems q.Syn.elems

let place_str (p : Syn.place) =
  let proj = function
    | Syn.Deref -> "*"
    | Syn.Pfield i -> Printf.sprintf ".%d" i
    | Syn.Pindex v -> Printf.sprintf "[%s]" v
    | Syn.Pconst_index i -> Printf.sprintf "[%d]" i
    | Syn.Downcast i -> Printf.sprintf "@%d" i
  in
  let rec render base = function
    | [] -> base
    | Syn.Deref :: rest -> render (Printf.sprintf "(*%s)" base) rest
    | e :: rest -> render (base ^ proj e) rest
  in
  render p.Syn.var p.Syn.elems

let kill_holder st v =
  LoanSet.filter (fun l -> not (String.equal l.l_holder v)) st

(* Live loans at a point: the holder must still be live there. *)
let live_loans st live = LoanSet.filter (fun l -> StrSet.mem l.l_holder live) st

(* One interpretation step, shared by the silent fixpoint and the
   recording pass.  [live] is the live-variable set immediately AFTER
   the instruction (for statements) or before it (for terminators,
   whose argument uses are part of the instruction itself). *)
let step ~locals_set ~report =
  let conflict ~where ~live st mut p =
    let rivals =
      LoanSet.filter
        (fun l -> (mut || l.l_mut) && places_overlap l.l_place p)
        (live_loans st live)
    in
    LoanSet.iter
      (fun l ->
        report ~kind:Lint.Conflicting_borrow ~where
          (Printf.sprintf "%s borrow of %s overlaps %s borrow of %s (from %s, held by %s)"
             (if mut then "mutable" else "shared")
             (place_str p)
             (if l.l_mut then "mutable" else "shared")
             (place_str l.l_place) l.l_where l.l_holder))
      rivals
  in
  let moved ~where ~live st (p : Syn.place) =
    LoanSet.iter
      (fun l ->
        if places_overlap l.l_place p then
          report ~kind:Lint.Move_while_borrowed ~where
            (Printf.sprintf "%s moved while %s borrow of %s (from %s) is live"
               (place_str p)
               (if l.l_mut then "mutable" else "shared")
               (place_str l.l_place) l.l_where))
      (live_loans st live)
  in
  let operand ~where ~live st = function
    | Syn.Const _ | Syn.Copy _ -> ()
    | Syn.Move p -> moved ~where ~live st p
  in
  let rvalue_moves ~where ~live st = function
    | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op)
      ->
        operand ~where ~live st op
    | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
        operand ~where ~live st a;
        operand ~where ~live st b
    | Syn.Ref _ | Syn.Address_of _ | Syn.Len _ | Syn.Discriminant _ -> ()
    | Syn.Aggregate (_, ops) -> List.iter (operand ~where ~live st) ops
  in
  let storage_dead ~where ~live st v =
    LoanSet.iter
      (fun l ->
        if String.equal l.l_place.Syn.var v then
          report ~kind:Lint.Dangling_handle ~where
            (Printf.sprintf
               "%s borrow of %s (from %s, held by %s) outlives its storage"
               (if l.l_mut then "mutable" else "shared")
               (place_str l.l_place) l.l_where l.l_holder))
      (live_loans st live);
    (* the dead storage can no longer be borrowed from, and anything
       the variable held is gone *)
    LoanSet.filter
      (fun l ->
        (not (String.equal l.l_holder v))
        && not (String.equal l.l_place.Syn.var v))
      st
  in
  let assign_dest st (dest : Syn.place) =
    if dest.Syn.elems = [] then kill_holder st dest.Syn.var else st
  in
  (* reference copies propagate loanship: [dest = copy h] makes [dest]
     a holder of every loan [h] holds, which is what lets the
     return-escape check see [_0 = copy tmp_ref] *)
  let copy_loans st (dest : Syn.place) (src : Syn.place) =
    if dest.Syn.elems <> [] || src.Syn.elems <> [] then st
    else
      LoanSet.fold
        (fun l acc ->
          if String.equal l.l_holder src.Syn.var then
            LoanSet.add { l with l_holder = dest.Syn.var } acc
          else acc)
        st st
  in
  let stmt ~where ~live st = function
    | Syn.Assign (dest, Syn.Ref p) ->
        conflict ~where ~live st false p;
        let st = assign_dest st dest in
        LoanSet.add
          { l_place = p; l_mut = false; l_holder = dest.Syn.var; l_where = where }
          st
    | Syn.Assign (dest, Syn.Address_of p) ->
        conflict ~where ~live st true p;
        let st = assign_dest st dest in
        LoanSet.add
          { l_place = p; l_mut = true; l_holder = dest.Syn.var; l_where = where }
          st
    | Syn.Assign (dest, rv) ->
        rvalue_moves ~where ~live st rv;
        let st = assign_dest st dest in
        let st =
          match rv with
          | Syn.Use (Syn.Copy src | Syn.Move src) -> copy_loans st dest src
          | _ -> st
        in
        st
    | Syn.Set_discriminant _ | Syn.Nop -> st
    | Syn.Storage_live v -> kill_holder st v
    | Syn.Storage_dead v -> storage_dead ~where ~live st v
  in
  let term ~where ~live st = function
    | Syn.Goto _ | Syn.Unreachable -> st
    | Syn.Switch_int (op, _, _) ->
        operand ~where ~live st op;
        st
    | Syn.Assert { cond; _ } ->
        operand ~where ~live st cond;
        st
    | Syn.Drop (p, _) ->
        if p.Syn.elems = [] then storage_dead ~where ~live st p.Syn.var else st
    | Syn.Call { dest; args; _ } ->
        List.iter (operand ~where ~live st) args;
        assign_dest st dest
    | Syn.Return ->
        LoanSet.iter
          (fun l ->
            if
              String.equal l.l_holder Syn.return_var
              && StrSet.mem l.l_place.Syn.var locals_set
            then
              report ~kind:Lint.Dangling_handle ~where
                (Printf.sprintf
                   "reference to local %s (from %s) escapes through the return value"
                   (place_str l.l_place) l.l_where))
          st;
        st
  in
  (stmt, term)

let locals_set (body : Syn.body) =
  List.fold_left
    (fun acc (d : Syn.local_decl) ->
      if List.mem d.Syn.lname body.Syn.params then acc
      else StrSet.add d.Syn.lname acc)
    StrSet.empty body.Syn.locals

let transfer_block ~locals_set ~report ~points (body : Syn.body) i st =
  let blk = body.Syn.blocks.(i) in
  let pts : StrSet.t array = points.(i) in
  let n = List.length blk.Syn.stmts in
  let stmt, term = step ~locals_set ~report in
  let st, _ =
    List.fold_left
      (fun (st, k) s ->
        (stmt ~where:(Printf.sprintf "bb%d[%d]" i k) ~live:pts.(k + 1) st s, k + 1))
      (st, 0) blk.Syn.stmts
  in
  term ~where:(Printf.sprintf "bb%d[term]" i) ~live:pts.(n) st blk.Syn.term

(* Number of loan-introduction sites, for stats/bench. *)
let loan_sites (body : Syn.body) =
  Array.fold_left
    (fun acc (blk : Syn.block) ->
      List.fold_left
        (fun acc -> function
          | Syn.Assign (_, (Syn.Ref _ | Syn.Address_of _)) -> acc + 1
          | _ -> acc)
        acc blk.Syn.stmts)
    0 body.Syn.blocks

let check (body : Syn.body) =
  let locals_set = locals_set body in
  let points = Regions.points body in
  let silent ~kind:_ ~where:_ _ = () in
  let result =
    Solver.solve ~init:LoanSet.empty ~bottom:LoanSet.empty
      ~transfer:(transfer_block ~locals_set ~report:silent ~points body)
      body
  in
  let reach = Cfg.reachable body in
  let findings = ref [] in
  let report ~kind ~where detail =
    findings := Lint.v kind ~where detail :: !findings
  in
  Array.iteri
    (fun i _ ->
      if reach.(i) then
        ignore
          (transfer_block ~locals_set ~report ~points body i
             result.Solver.before.(i)))
    body.Syn.blocks;
  Lint.sort (List.rev !findings)

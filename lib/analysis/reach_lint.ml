(* Unreachable-code lint.

   The Rustlite lowering parks statements that follow [return]/[break]/
   [continue] in blocks that nothing jumps to; when the source had no
   such trailing code these artifact blocks are empty and end in a bare
   [Goto]/[Return].  Only unreachable blocks that still contain code —
   a real statement, or a terminator that does work — are findings. *)

module Syn = Mir.Syntax

let meaningful (blk : Syn.block) =
  List.exists
    (function
      | Syn.Assign _ | Syn.Set_discriminant _ -> true
      | Syn.Storage_live _ | Syn.Storage_dead _ | Syn.Nop -> false)
    blk.Syn.stmts
  ||
  match blk.Syn.term with
  | Syn.Switch_int _ | Syn.Drop _ | Syn.Call _ | Syn.Assert _ -> true
  | Syn.Goto _ | Syn.Return | Syn.Unreachable -> false

let run (body : Syn.body) =
  let reach = Cfg.reachable body in
  let findings = ref [] in
  Array.iteri
    (fun i blk ->
      if (not reach.(i)) && meaningful blk then
        findings :=
          Lint.v Lint.Unreachable_block
            ~where:(Printf.sprintf "bb%d" i)
            "unreachable block contains code"
          :: !findings)
    body.Syn.blocks;
  List.rev !findings

(* Alias-footprint lint (kind [Lint.Alias_footprint]) plus discharge
   certificates for per-body findings.

   Per call-graph SCC, over the Andersen summaries of {!Alias}:

   - Error findings: a call passes two arguments that definitely may
     alias (a witness location common to both points-to sets, never
     [Lunknown]) to a callee whose certified footprint writes through
     both parameter positions — the no-alias assumption the callee's
     code was verified under is violated.

   - [Info] certificates, [discharged_by "alias-footprint"], which
     {!Lint.reconcile} uses to cancel Error twins the per-body lints
     cannot discharge themselves:

     {ul
     {- an [Encapsulation] call-site finding whose callee has an exact
        footprint that neither reads, writes nor escapes any pointer
        argument: the handle is provably opaque to the callee;}
     {- any [Encapsulation]/[Move_init] finding at a program point the
        interval interpretation proves unreachable — the per-body
        lints replay all syntactically reachable blocks, while the
        interprocedural solver prunes infeasible constant-switch
        edges.}}

   The policy closures ([fn_layer], [accessor], [prim]) are injected
   like {!Secret_flow.config}, keeping this library free of the
   hyperenclave layer stack. *)

module Syn = Mir.Syntax

type config = {
  program : Syn.program;
  prim : string -> Alias.summary option;
      (** Footprint models of the trusted primitives; [None] makes the
          caller's footprint inexact. *)
  fn_layer : string -> string option;
      (** layer of a function, for the encapsulation re-scan *)
  accessor : owner:string -> callee:string -> bool;
}

type stats = {
  functions : int;
  footprints : int;  (** exact footprints among the SCC's functions *)
  findings : int;  (** Error findings *)
  discharged : int;  (** certificates emitted *)
}

let discharger = Lint.to_string Lint.Alias_footprint

(* Block index of a "bbN"/"bbN[..]" where-string. *)
let block_of_where w =
  match int_of_string_opt (String.sub w 2 (String.length w - 2)) with
  | Some _ as r -> r
  | None -> (
      try Scanf.sscanf w "bb%d[" (fun b -> Some b) with _ -> None)

(* Syntactically reachable blocks the interval interpretation never
   visits: infeasible constant-switch targets.  Uses the public
   [Interval_lint.A] visitor, which skips abstractly-unreachable
   blocks. *)
let dead_blocks ctx fn =
  match Interval_lint.A.analyze ctx fn with
  | None -> [||]
  | Some (body, soln) ->
      let visited = Array.make (Array.length body.Syn.blocks) false in
      Interval_lint.A.visit body soln
        {
          Interval_lint.A.on_stmt =
            (fun ~block ~idx:_ _ _ -> visited.(block) <- true);
          on_term = (fun ~block _ _ -> visited.(block) <- true);
        };
      let reach = Cfg.reachable body in
      Array.mapi (fun i v -> reach.(i) && not v) visited

let arg_pts vars = function
  | Syn.Const _ -> Alias.LocSet.empty
  | Syn.Copy p | Syn.Move p ->
      if List.mem Syn.Deref p.Syn.elems then
        Alias.LocSet.singleton Alias.Lunknown
      else (
        match Alias.StrMap.find_opt p.Syn.var vars with
        | Some s -> s
        | None -> Alias.LocSet.empty)

(* Does the callee summary touch (read, write or escape) parameter j? *)
let touches_param (s : Alias.summary) j =
  Alias.LocSet.mem (Alias.Lparam j) s.Alias.fp.Alias.reads
  || Alias.LocSet.mem (Alias.Lparam j) s.Alias.fp.Alias.writes
  || Alias.IntSet.mem j s.Alias.esc

let writes_param (s : Alias.summary) j =
  Alias.LocSet.mem (Alias.Lparam j) s.Alias.fp.Alias.writes

let check cfg ~funcs =
  let infos = Alias.analyze ~prim:cfg.prim cfg.program in
  let ictx =
    Interval_lint.A.create_ctx ~prim:(fun ~func:_ ~args:_ -> None) cfg.program
  in
  let findings = ref [] in
  let discharged = ref 0 in
  let certified = Hashtbl.create 16 in
  let emit fn f = findings := (fn, f) :: !findings in
  (* one certificate per (function, kind, site): the opaque-callee and
     dead-block routes may both prove the same finding *)
  let cert fn kind ~where detail =
    if not (Hashtbl.mem certified (fn, kind, where)) then begin
      Hashtbl.add certified (fn, kind, where) ();
      incr discharged;
      emit fn
        (Lint.v ~severity:Lint.Info ~discharged_by:discharger kind ~where
           detail)
    end
  in
  let scan fn =
    match Syn.find_body cfg.program fn with
    | None -> ()
    | Some body ->
        let vars =
          match Alias.StrMap.find_opt fn infos with
          | Some (i : Alias.info) -> i.Alias.vars
          | None -> Alias.StrMap.empty
        in
        let callee_summary g =
          match Alias.StrMap.find_opt g infos with
          | Some (i : Alias.info) -> Some i.Alias.summary
          | None -> cfg.prim g
        in
        let reach = Cfg.reachable body in
        (* 1. aliased-argument findings at call sites *)
        Array.iteri
          (fun b (blk : Syn.block) ->
            if reach.(b) then
              match blk.Syn.term with
              | Syn.Call { func; args; _ } -> (
                  match callee_summary func with
                  | None -> ()
                  | Some s ->
                      let pts = List.map (arg_pts vars) args in
                      List.iteri
                        (fun i pi ->
                          List.iteri
                            (fun j pj ->
                              if i < j && writes_param s i && writes_param s j
                              then
                                match Alias.witness pi pj with
                                | Some l ->
                                    emit fn
                                      (Lint.v Lint.Alias_footprint
                                         ~where:(Printf.sprintf "bb%d[term]" b)
                                         (Printf.sprintf
                                            "arguments %d and %d of call to %s \
                                             may alias (%s) and the callee \
                                             writes through both"
                                            i j func (Alias.loc_to_string l)))
                                | None -> ())
                            pts)
                        pts)
              | _ -> ())
          body.Syn.blocks;
        (* 2. opaque-callee discharge of encapsulation call findings *)
        let encap =
          Encap_lint.run
            { Encap_lint.fn_layer = cfg.fn_layer fn; accessor = cfg.accessor }
            body
        in
        List.iter
          (fun (f : Lint.finding) ->
            if
              f.Lint.severity = Lint.Error
              && Filename.check_suffix f.Lint.where "[term]"
            then
              match block_of_where f.Lint.where with
              | None -> ()
              | Some b -> (
                  match body.Syn.blocks.(b).Syn.term with
                  | Syn.Call { func; args; _ } -> (
                      match callee_summary func with
                      | Some s
                        when Alias.exact s.Alias.fp
                             && List.for_all
                                  (fun j -> not (touches_param s j))
                                  (List.mapi (fun j _ -> j) args) ->
                          cert fn Lint.Encapsulation ~where:f.Lint.where
                            (Printf.sprintf
                               "footprint of %s is exact and touches no \
                                argument: the handle stays opaque"
                               func)
                      | _ -> ())
                  | _ -> ()))
          encap;
        (* 3. dead-block discharge of per-body findings *)
        let dead = dead_blocks ictx fn in
        let dischargeable =
          encap
          @ Init_lint.run body
        in
        List.iter
          (fun (f : Lint.finding) ->
            if f.Lint.severity = Lint.Error then
              match block_of_where f.Lint.where with
              | Some b when b < Array.length dead && dead.(b) ->
                  cert fn f.Lint.kind ~where:f.Lint.where
                    (Printf.sprintf
                       "bb%d is abstractly unreachable (infeasible branch)" b)
              | _ -> ())
          dischargeable
  in
  List.iter scan funcs;
  let errors =
    List.filter
      (fun (_, (f : Lint.finding)) -> f.Lint.severity = Lint.Error)
      !findings
  in
  let exact_fps =
    List.length
      (List.filter
         (fun fn -> Alias.exact (Alias.footprint infos fn))
         funcs)
  in
  ( List.rev !findings,
    {
      functions = List.length funcs;
      footprints = exact_fps;
      findings = List.length errors;
      discharged = !discharged;
    } )

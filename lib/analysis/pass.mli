(** Driver that runs a selection of lints over one MIRlight body and
    folds the findings into a {!Mirverif.Report.t}.

    One clean body scores one pass per selected lint, so report totals
    stay proportional to the work done; each finding is a failure whose
    case names the lint and program point. *)

type config = {
  fn_layer : string option;
      (** layer the function belongs to (for the encapsulation lint) *)
  accessor : owner:string -> callee:string -> bool;
      (** accepted getter/setter relation for RData handles *)
  lints : Lint.kind list;  (** which lints to run, catalogue order *)
}

val default_config : config
(** No layer context, no accessors, all lints. *)

val body_lints : Lint.kind list -> Lint.kind list
(** Restrict a selection to the per-body kinds ({!Lint.all}); the
    interprocedural kinds are scheduled separately by the engine. *)

val analyze : config -> Mir.Syntax.body -> Lint.finding list
(** Findings of the per-body lints in the selection, {!Lint.sort}
    order. *)

val report :
  name:string -> lints:Lint.kind list -> Lint.finding list -> Mirverif.Report.t

val check : config -> name:string -> Mir.Syntax.body -> Mirverif.Report.t
(** [analyze] + [report] in one step. *)

(** Generic abstract interpreter over MIRlight.

    [Make (D)] builds a forward, edge-sensitive, interprocedural
    interpreter for an abstract domain [D].  Branch refinement
    constrains the interval component that every domain scalar exposes
    ({!DOMAIN.interval} / {!DOMAIN.with_interval}); loops converge via
    widening-to-thresholds at retreating-edge targets followed by a
    bounded narrowing sweep; calls are summarized per abstract calling
    context (bounded, memoized), with the trusted primitives modelled
    by the client through [ctx.prim]. *)

module type DOMAIN = sig
  type v

  val name : string
  val top : v
  val equal : v -> v -> bool
  val join : v -> v -> v
  val widen : thresholds:Mir.Word.t list -> v -> v -> v
  val narrow : v -> v -> v
  val is_bot : v -> bool

  val of_const : Mir.Syntax.constant -> v
  val binop : Mir.Syntax.bin_op -> v -> v -> v
  val checked : Mir.Syntax.bin_op -> v -> v -> v * v
  val unop : Mir.Syntax.un_op -> v -> v
  val cast : Mir.Ty.int_ty -> v -> v
  val deref : v -> v

  val interval : v -> Interval.t

  val with_interval : v -> Interval.t -> v
  (** Replace the numeric component (labels and any other components
      are preserved): the hook the generic branch refinement
      constrains values through. *)

  (** {2 Interprocedural labelling} *)

  val label_arg : int -> v -> v
  (** Tag the [i]-th entry parameter of a summary context. *)

  val subst : actuals:v list -> v -> v
  (** Rewrite a summary result from the callee frame into the caller
      frame (argument tags become the actuals' labels). *)

  type eff
  (** Summary effect: what a call may do besides returning (for the
      taint domain, the labels that may reach an observable sink). *)

  val eff_bot : eff
  val eff_join : eff -> eff -> eff
  val eff_top : arity:int -> eff

  val subst_eff : actuals:v list -> eff -> eff * bool
  (** Callee effect seen from the call site: the effect in the caller
      frame, and whether one of the actuals carries a secret into the
      callee's sink (the caller-side finding). *)

  val key : v -> string
  (** Canonical rendering, the memo key of summary contexts. *)
end

(** Structured abstract values: tuple/struct fields kept apart, arrays
    summarized by one element. *)
type 'v aval =
  | Leaf of 'v
  | Tup of 'v aval array
  | Arr of { elt : 'v aval; len : int }

module Make (D : DOMAIN) : sig
  type value = D.v aval

  val map_leaves : (D.v -> D.v) -> value -> value
  val collapse : value -> D.v
  (** Join of all leaves: the scalar summary of a structured value. *)

  val join_v : value -> value -> value
  val equal_v : value -> value -> bool
  val key_v : value -> string
  val top_v : value

  type env
  (** Abstract environment at a program point. *)

  val read_var : env -> string -> value
  val read_place : env -> Mir.Syntax.place -> value
  val eval_operand : env -> Mir.Syntax.operand -> value

  val scalar : env -> Mir.Syntax.operand -> D.v
  (** [collapse] of {!eval_operand}. *)

  val ty_of_place : Mir.Syntax.body -> Mir.Syntax.place -> Mir.Ty.t option

  val thresholds_of : Mir.Syntax.body -> Mir.Word.t list
  (** The widening threshold set the solver uses for [body]. *)

  type stats = {
    mutable iterations : int;  (** block transfers executed *)
    mutable widenings : int;
    mutable max_visits : int;  (** worst per-block visit count *)
    mutable summaries : int;  (** callee contexts analyzed *)
  }

  type ctx

  val create_ctx :
    ?max_contexts:int ->
    prim:(func:string -> args:value list -> (value * D.eff) option) ->
    Mir.Syntax.program ->
    ctx
  (** [prim] models the trusted primitives (and any other extern): its
      result is the call's return value and summary effect; [None]
      falls through to program bodies / unknown-extern top. *)

  val stats : ctx -> stats

  type soln
  (** Stabilized per-block entry environments of one body. *)

  type summary = { ret : value; eff : D.eff }

  val solve : ctx -> Mir.Syntax.body -> entry:value list -> soln
  val return_value : Mir.Syntax.body -> soln -> value
  val effects : ctx -> Mir.Syntax.body -> soln -> D.eff

  val summarize : ctx -> string -> value list -> summary option
  (** Summary of a program function for the given abstract arguments
      (labelled via {!DOMAIN.label_arg}); [None] when it has no body. *)

  val apply_call : ctx -> string -> value list -> (value * D.eff * bool) option
  (** Call result, effect and caller-side secret-sink hit, all in the
      caller's frame; [None] when [func] has no body here. *)

  type visitor = {
    on_stmt : block:int -> idx:int -> env -> Mir.Syntax.statement -> unit;
    on_term : block:int -> env -> Mir.Syntax.terminator -> unit;
  }

  val visit : Mir.Syntax.body -> soln -> visitor -> unit
  (** Replay reachable blocks with the stabilized environment in force
      at each statement and terminator. *)

  val analyze : ctx -> string -> (Mir.Syntax.body * soln) option
  (** Solve a function under unconstrained (top) parameters. *)
end

(* Engine-facing wrapper for the borrow checker: kind selection and
   per-function stats, mirroring {!Pass} for the per-body lints. *)

module Syn = Mir.Syntax

type stats = { functions : int; loans : int; findings : int }

let empty_stats = { functions = 0; loans = 0; findings = 0 }

let run ?(lints = Lint.borrow) (body : Syn.body) =
  let selection = List.filter (fun k -> List.mem k Lint.borrow) lints in
  if selection = [] then []
  else
    List.filter
      (fun (f : Lint.finding) -> List.mem f.Lint.kind selection)
      (Borrow.check body)

let check ?(lints = Lint.borrow) ~name (body : Syn.body) =
  let selection = List.filter (fun k -> List.mem k Lint.borrow) lints in
  let findings = run ~lints:selection body in
  ( Pass.report ~name ~lints:selection findings,
    findings,
    { functions = 1; loans = Borrow.loan_sites body; findings = List.length findings } )

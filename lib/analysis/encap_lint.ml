(* Layer-encapsulation lint for RData handles.

   A handle is a value whose type mentions [Ty.Opaque owner] — the
   abstract per-layer representation data of layer [owner].  Outside
   that layer, code may only move handles around and hand them to the
   owner's accessor functions (the getter/setter set supplied by the
   caller); it must never look inside one.  Concretely, outside the
   owning layer we flag:

   - any projection ([Deref], field, index, downcast) applied to a
     handle place, whether in a read, a write destination, or a borrow;
   - passing a handle to a callee that is neither in the owning layer
     nor an accepted accessor of it.

   Handles are identified statically from local declarations and
   propagated through [Use]/[Ref] chains by a small forward dataflow
   (a var-to-owner map); a call result's flow taint is cleared — a
   callee returning a handle shows up in the declared type instead. *)

module Syn = Mir.Syntax
module StrMap = Map.Make (String)

type owner = Owner of string | Conflict

module L = struct
  type t = owner StrMap.t

  let equal = StrMap.equal (fun a b -> a = b)

  let join =
    StrMap.union (fun _ a b ->
        match (a, b) with
        | Owner x, Owner y when String.equal x y -> Some a
        | _ -> Some Conflict)

  let bottom = StrMap.empty
end

module Solver = Dataflow.Make (L)

let rec type_owner : Mir.Ty.t -> string option = function
  | Mir.Ty.Opaque name -> Some name
  | Mir.Ty.Ref t | Mir.Ty.Raw t | Mir.Ty.Array (t, _) -> type_owner t
  | Mir.Ty.Tuple ts -> List.find_map type_owner ts
  | Mir.Ty.Int _ | Mir.Ty.Bool | Mir.Ty.Unit | Mir.Ty.Adt _ -> None

let declared_owners (body : Syn.body) =
  List.fold_left
    (fun acc (d : Syn.local_decl) ->
      match type_owner d.Syn.lty with
      | Some owner -> StrMap.add d.Syn.lname owner acc
      | None -> acc)
    StrMap.empty body.Syn.locals

type config = {
  fn_layer : string option;
  accessor : owner:string -> callee:string -> bool;
}

let owner_of ~declared (st : L.t) var =
  match StrMap.find_opt var declared with
  | Some o -> Some o
  | None -> (
      match StrMap.find_opt var st with
      | Some (Owner o) -> Some o
      | Some Conflict | None -> None)

(* handles from joins that disagree on the owner: still a handle, but
   we can't name the layer — report it as such *)
let flow_handle (st : L.t) var =
  match StrMap.find_opt var st with Some _ -> true | None -> false

let step cfg ~declared ~report =
  let inside owner =
    match cfg.fn_layer with Some l -> String.equal l owner | None -> false
  in
  let owner_name ~declared st var =
    match owner_of ~declared st var with
    | Some o -> o
    | None -> "?" (* Conflict: joined from differently-owned handles *)
  in
  let check_place ~where (st : L.t) (p : Syn.place) =
    let is_handle =
      StrMap.mem p.Syn.var declared || flow_handle st p.Syn.var
    in
    if is_handle && p.Syn.elems <> [] then begin
      let owner = owner_name ~declared st p.Syn.var in
      if not (inside owner) then
        report ~where
          ~detail:
            (Printf.sprintf
               "projection through %s-layer handle %s outside layer %s" owner
               p.Syn.var owner)
    end
  in
  let check_operand ~where st = function
    | Syn.Const _ -> ()
    | Syn.Copy p | Syn.Move p -> check_place ~where st p
  in
  let check_rvalue ~where st = function
    | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op) ->
        check_operand ~where st op
    | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
        check_operand ~where st a;
        check_operand ~where st b
    | Syn.Ref p | Syn.Address_of p | Syn.Len p | Syn.Discriminant p ->
        check_place ~where st p
    | Syn.Aggregate (_, ops) -> List.iter (check_operand ~where st) ops
  in
  (* taint transfer: does assigning [rv] to a bare var hand it a
     handle, and whose? *)
  let rvalue_taint st = function
    | Syn.Use (Syn.Copy p | Syn.Move p) | Syn.Ref p | Syn.Address_of p
      when p.Syn.elems = [] -> (
        match StrMap.find_opt p.Syn.var declared with
        | Some o -> Some (Owner o)
        | None -> StrMap.find_opt p.Syn.var st)
    | _ -> None
  in
  let assign st (dest : Syn.place) taint =
    if dest.Syn.elems <> [] then st
    else
      match taint with
      | Some t -> StrMap.add dest.Syn.var t st
      | None -> StrMap.remove dest.Syn.var st
  in
  let stmt ~where st = function
    | Syn.Assign (dest, rv) ->
        check_rvalue ~where st rv;
        check_place ~where st dest;
        assign st dest (rvalue_taint st rv)
    | Syn.Set_discriminant (p, _) ->
        check_place ~where st p;
        st
    | Syn.Storage_live _ | Syn.Storage_dead _ | Syn.Nop -> st
  in
  let check_arg ~where ~callee st = function
    | Syn.Const _ -> ()
    | Syn.Copy p | Syn.Move p -> (
        check_place ~where st p;
        if p.Syn.elems = [] then
          match owner_of ~declared st p.Syn.var with
          | Some owner ->
              if not (inside owner || cfg.accessor ~owner ~callee) then
                report ~where
                  ~detail:
                    (Printf.sprintf
                       "%s-layer handle %s passed to %s, which is neither in \
                        layer %s nor one of its accessors"
                       owner p.Syn.var callee owner)
          | None ->
              if flow_handle st p.Syn.var then
                report ~where
                  ~detail:
                    (Printf.sprintf
                       "handle %s of ambiguous owner passed to %s" p.Syn.var
                       callee))
  in
  let term ~where st = function
    | Syn.Goto _ | Syn.Return | Syn.Unreachable -> st
    | Syn.Switch_int (op, _, _) ->
        check_operand ~where st op;
        st
    | Syn.Drop (p, _) ->
        check_place ~where st p;
        st
    | Syn.Call { dest; func; args; _ } ->
        List.iter (check_arg ~where ~callee:func st) args;
        check_place ~where st dest;
        assign st dest None
    | Syn.Assert { cond; _ } ->
        check_operand ~where st cond;
        st
  in
  (stmt, term)

let transfer_block cfg ~declared ~report (body : Syn.body) i st =
  let blk = body.Syn.blocks.(i) in
  let stmt, term = step cfg ~declared ~report in
  let st, _ =
    List.fold_left
      (fun (st, k) s -> (stmt ~where:(Printf.sprintf "bb%d[%d]" i k) st s, k + 1))
      (st, 0) blk.Syn.stmts
  in
  term ~where:(Printf.sprintf "bb%d[term]" i) st blk.Syn.term

let run cfg (body : Syn.body) =
  let declared = declared_owners body in
  let silent ~where:_ ~detail:_ = () in
  let result =
    Solver.solve ~init:L.bottom ~bottom:L.bottom
      ~transfer:(transfer_block cfg ~declared ~report:silent body)
      body
  in
  let reach = Cfg.reachable body in
  let findings = ref [] in
  let report ~where ~detail =
    findings := Lint.v Lint.Encapsulation ~where detail :: !findings
  in
  Array.iteri
    (fun i _ ->
      if reach.(i) then
        ignore
          (transfer_block cfg ~declared ~report body i result.Solver.before.(i)))
    body.Syn.blocks;
  List.rev !findings

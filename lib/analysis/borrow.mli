(** NLL-style borrow checker over one MIRlight body.

    Loans ([Ref] = shared, [Address_of] = mutable) flow forward
    through the CFG; a loan is live where its holder variable is live
    ({!Regions}).  [check] reports [Conflicting_borrow],
    [Move_while_borrowed] and [Dangling_handle] findings (see
    {!Lint}). *)

type loan = {
  l_place : Mir.Syntax.place;
  l_mut : bool;
  l_holder : string;
  l_where : string;
}

val places_overlap : Mir.Syntax.place -> Mir.Syntax.place -> bool
(** May the two places address overlapping storage?  Same base
    variable with projection-wise compatible prefixes; a variable
    index may equal any index. *)

val place_str : Mir.Syntax.place -> string

val loan_sites : Mir.Syntax.body -> int
(** Number of loan-introduction sites ([Ref]/[Address_of] assigns). *)

val check : Mir.Syntax.body -> Lint.finding list
(** All borrow findings of the body, {!Lint.sort} order. *)

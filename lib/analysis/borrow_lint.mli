(** Engine phase wrapper for the borrow checker (kinds {!Lint.borrow}).

    One obligation per function, fingerprinted on the function's own
    MIRlight digest: the analysis is strictly intraprocedural, so a
    cache entry survives every edit that leaves the body alone. *)

type stats = { functions : int; loans : int; findings : int }

val empty_stats : stats

val run : ?lints:Lint.kind list -> Mir.Syntax.body -> Lint.finding list
(** Borrow findings restricted to the selected kinds (non-borrow kinds
    in the selection are ignored). *)

val check :
  ?lints:Lint.kind list ->
  name:string ->
  Mir.Syntax.body ->
  Mirverif.Report.t * Lint.finding list * stats
(** [run] plus a report with one pass per clean selected kind and one
    failure per finding, like {!Pass.report}. *)

type kind = Encapsulation | Move_init | Unchecked_arith | Unreachable_block

let all = [ Encapsulation; Move_init; Unchecked_arith; Unreachable_block ]

let to_string = function
  | Encapsulation -> "layer-encapsulation"
  | Move_init -> "move-init"
  | Unchecked_arith -> "unchecked-arith"
  | Unreachable_block -> "unreachable-block"

let of_string s =
  match List.find_opt (fun k -> String.equal (to_string k) s) all with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown lint %S (known: %s)" s
           (String.concat ", " (List.map to_string all)))

let kinds_of_string spec =
  if String.equal (String.trim spec) "all" then Ok all
  else
    let rec go acc = function
      | [] ->
          (* canonical order, duplicates collapsed: the list is part of
             obligation fingerprints, so equal selections must render
             identically *)
          Ok (List.filter (fun k -> List.mem k acc) all)
      | part :: rest -> (
          match of_string (String.trim part) with
          | Ok k -> go (k :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' spec)

type finding = { kind : kind; where : string; detail : string }

let v kind ~where detail = { kind; where; detail }

let finding_to_string f =
  Printf.sprintf "%s: [%s] %s" f.where (to_string f.kind) f.detail

let pp_finding fmt f = Format.pp_print_string fmt (finding_to_string f)

(* Stable presentation order: lint catalogue order first, then program
   position.  [where] strings are "bbN" / "bbN[M]" so a string compare
   is not positional; keep the input order within a kind (every scan
   already emits in block/statement order). *)
let sort findings =
  let rank k =
    let rec go i = function
      | [] -> i
      | k' :: rest -> if k' = k then i else go (i + 1) rest
    in
    go 0 all
  in
  List.stable_sort (fun a b -> compare (rank a.kind) (rank b.kind)) findings

type kind =
  | Encapsulation
  | Move_init
  | Unchecked_arith
  | Unreachable_block
  | Conflicting_borrow
  | Dangling_handle
  | Move_while_borrowed
  | Interval_bounds
  | Secret_flow
  | Alias_footprint

(* The per-body dataflow lints (what {!Pass} runs over one function's
   MIR at a time). *)
let all = [ Encapsulation; Move_init; Unchecked_arith; Unreachable_block ]

(* The NLL-style borrow-checker lints: per body like [all], but the
   engine schedules them as their own phase so the analysis-phase
   obligation counts and fingerprints are untouched by selection. *)
let borrow = [ Conflicting_borrow; Dangling_handle; Move_while_borrowed ]

(* The whole-program abstract-interpretation lints: their verdicts
   depend on callees, so the engine schedules them per call-graph SCC
   rather than per body. *)
let interprocedural = [ Interval_bounds; Secret_flow ]

(* The interprocedural points-to lint (one obligation per SCC, like
   [interprocedural], but over Andersen footprint summaries). *)
let alias = [ Alias_footprint ]
let catalogue = all @ borrow @ interprocedural @ alias

let to_string = function
  | Encapsulation -> "layer-encapsulation"
  | Move_init -> "move-init"
  | Unchecked_arith -> "unchecked-arith"
  | Unreachable_block -> "unreachable-block"
  | Conflicting_borrow -> "conflicting-borrow"
  | Dangling_handle -> "dangling-handle"
  | Move_while_borrowed -> "move-while-borrowed"
  | Interval_bounds -> "interval-bounds"
  | Secret_flow -> "secret-flow"
  | Alias_footprint -> "alias-footprint"

let of_string s =
  match List.find_opt (fun k -> String.equal (to_string k) s) catalogue with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown lint %S (known: %s)" s
           (String.concat ", " (List.map to_string catalogue)))

(* Group selectors accepted alongside individual lint names: a
   selection like "borrow,alias" picks whole engine phases without
   spelling out every kind. *)
let groups =
  [ ("all", catalogue); ("body", all); ("borrow", borrow);
    ("interprocedural", interprocedural); ("alias", alias) ]

let kinds_of_string spec =
  let rec go acc = function
    | [] ->
        (* canonical order, duplicates collapsed: the list is part of
           obligation fingerprints, so equal selections must render
           identically *)
        Ok (List.filter (fun k -> List.mem k acc) catalogue)
    | part :: rest -> (
        let part = String.trim part in
        match List.assoc_opt part groups with
        | Some ks -> go (List.rev_append ks acc) rest
        | None -> (
            match of_string part with
            | Ok k -> go (k :: acc) rest
            | Error e ->
                Error
                  (Printf.sprintf "%s; group selectors: %s" e
                     (String.concat ", " (List.map fst groups)))))
  in
  go [] (String.split_on_char ',' spec)

type severity = Error | Info

type finding = {
  kind : kind;
  where : string;
  detail : string;
  severity : severity;
  discharged_by : string option;
}

let v ?(severity = Error) ?discharged_by kind ~where detail =
  { kind; where; detail; severity; discharged_by }

let discharges cert f =
  (* An [Info] certificate cancels the [Error] twin it names: same
     kind, same site. *)
  cert.severity = Info
  && cert.discharged_by <> None
  && f.severity = Error
  && cert.kind = f.kind
  && String.equal cert.where f.where

let reconcile findings =
  let certs = List.filter (fun f -> f.discharged_by <> None) findings in
  List.filter
    (fun f -> not (List.exists (fun c -> discharges c f) certs))
    findings

let finding_to_string f =
  let note =
    match (f.severity, f.discharged_by) with
    | Info, Some by -> Printf.sprintf " (discharged by %s)" by
    | Info, None -> " (info)"
    | Error, _ -> ""
  in
  Printf.sprintf "%s: [%s] %s%s" f.where (to_string f.kind) f.detail note

let pp_finding fmt f = Format.pp_print_string fmt (finding_to_string f)

(* Stable presentation order: lint catalogue order first, then program
   position.  [where] strings are "bbN" / "bbN[M]" so a string compare
   is not positional; keep the input order within a kind (every scan
   already emits in block/statement order). *)
let sort findings =
  let rank k =
    let rec go i = function
      | [] -> i
      | k' :: rest -> if k' = k then i else go (i + 1) rest
    in
    go 0 catalogue
  in
  List.stable_sort (fun a b -> compare (rank a.kind) (rank b.kind)) findings

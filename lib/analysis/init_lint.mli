(** Use-before-init and use-after-move lint (kind {!Lint.Move_init}).

    Tracks compiler temporaries that are not parameters and whose
    address is never taken; reports a finding at every program point
    where such a temporary may be read while uninitialized or after a
    [Move]/[Drop].  Findings are restricted to blocks reachable from
    bb0. *)

val run : Mir.Syntax.body -> Lint.finding list

(** Interval-bounds certification (kind {!Lint.Interval_bounds}).

    Pure interval abstract interpretation per call-graph SCC:
    array-index bounds findings, plus [Info] discharge certificates
    for the {!Arith_lint} sites whose operand intervals provably
    cannot overflow ({!Lint.reconcile} cancels the corresponding
    [Error] findings). *)

module Dom : Absint.DOMAIN with type v = Interval.t and type eff = unit

module A : module type of Absint.Make (Dom)

type stats = {
  functions : int;
  bound_checks : int;  (** indexing sites examined *)
  findings : int;  (** indices that may escape *)
  discharged : int;  (** unchecked-arith certificates *)
  iterations : int;
}

val overflow_free : Mir.Syntax.bin_op -> Interval.t -> Interval.t -> bool
(** Can [op] on operands within the given intervals never wrap? *)

val check :
  Mir.Syntax.program -> funcs:string list ->
  (string * Lint.finding) list * stats
(** Analyze the given functions (one SCC) and return the findings
    tagged with the containing function's name. *)

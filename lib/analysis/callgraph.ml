(* Call graph of a MIRlight program, condensed to strongly connected
   components.

   The interprocedural analyses (Absint clients) summarize one SCC at
   a time, callees first, and the engine turns each SCC into one
   obligation whose fingerprint digests the MIR of everything the SCC
   can reach — so an edit invalidates exactly the SCCs that can reach
   the edited function.  Everything here is deterministic: callee
   lists, SCC member lists and the SCC order are sorted/canonical, so
   obligation ids and fingerprints are stable across runs. *)

module Syn = Mir.Syntax
module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

type t = {
  callees : string list StrMap.t; (* program-internal, sorted, deduped *)
  externs : string list StrMap.t; (* called but not in the program *)
  sccs : string list list; (* callees-first; each sorted *)
  scc_index : int StrMap.t; (* function -> index into [sccs] *)
}

let body_callees prog (body : Syn.body) =
  let internal = ref StrSet.empty and ext = ref StrSet.empty in
  Array.iter
    (fun (blk : Syn.block) ->
      match blk.Syn.term with
      | Syn.Call { func; _ } ->
          if Syn.find_body prog func <> None then
            internal := StrSet.add func !internal
          else ext := StrSet.add func !ext
      | _ -> ())
    body.Syn.blocks;
  (StrSet.elements !internal, StrSet.elements !ext)

let build (prog : Syn.program) =
  let callees, externs =
    Syn.fold_bodies
      (fun name body (cs, es) ->
        let internal, ext = body_callees prog body in
        (StrMap.add name internal cs, StrMap.add name ext es))
      prog (StrMap.empty, StrMap.empty)
  in
  (* Tarjan, over function names in sorted order so the component
     order (and hence obligation order) is canonical.  Components come
     out callees-first: a component is emitted only after everything
     it reaches. *)
  let index = Hashtbl.create 64
  and lowlink = Hashtbl.create 64
  and on_stack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (try StrMap.find v callees with Not_found -> []);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := List.sort String.compare (pop []) :: !sccs
    end
  in
  StrMap.iter (fun v _ -> if not (Hashtbl.mem index v) then strongconnect v) callees;
  (* Tarjan emits a component only after everything it reaches, so the
     emission order is callees-first; we accumulated it reversed. *)
  let sccs = List.rev !sccs in
  let scc_index =
    List.fold_left
      (fun (i, m) scc ->
        (i + 1, List.fold_left (fun m f -> StrMap.add f i m) m scc))
      (0, StrMap.empty) sccs
    |> snd
  in
  { callees; externs; sccs; scc_index }

let sccs t = t.sccs
let callees t fn = try StrMap.find fn t.callees with Not_found -> []
let externs t fn = try StrMap.find fn t.externs with Not_found -> []
let scc_of t fn = StrMap.find_opt fn t.scc_index

(* Distinct SCC indices the members of [fns] call into, excluding
   their own component — the dependency edges of the SCC DAG. *)
let callee_sccs t fns =
  let own = match fns with f :: _ -> scc_of t f | [] -> None in
  List.sort_uniq compare
    (List.concat_map
       (fun f ->
         List.filter_map
           (fun c ->
             match scc_of t c with
             | Some i when Some i <> own -> Some i
             | _ -> None)
           (callees t f))
       fns)

(* Transitive closure of callees, including [fns] themselves; sorted.
   The engine digests the MIR of this set into the SCC's fingerprint:
   summaries cross SCC boundaries, so the verdict depends on it all. *)
let reachable t fns =
  let seen = ref StrSet.empty in
  let rec go f =
    if not (StrSet.mem f !seen) then begin
      seen := StrSet.add f !seen;
      List.iter go (callees t f)
    end
  in
  List.iter go fns;
  StrSet.elements !seen

(** Unchecked-arithmetic lint (kind {!Lint.Unchecked_arith}).

    In a body that uses [Checked_binary] for overflow-prone operators,
    flags every reachable raw [Binary] [Add]/[Sub]/[Mul] whose operands
    are determinably word-typed.  Bodies compiled without overflow
    checks (no [Checked_binary] anywhere) are exempt. *)

type site = {
  block : int;
  stmt : int;
  op : Mir.Syntax.bin_op;
  lhs : Mir.Syntax.operand;
  rhs : Mir.Syntax.operand;
}

val sites : Mir.Syntax.body -> site list
(** The flaggable sites in program order (empty for exempt bodies).
    {!Interval_lint} re-examines these with interval information and
    discharges the provably overflow-free ones. *)

val site_where : site -> string
(** The ["bbN[M]"] location string both passes key findings on. *)

val op_name : Mir.Syntax.bin_op -> string

val run : Mir.Syntax.body -> Lint.finding list

(** Unchecked-arithmetic lint (kind {!Lint.Unchecked_arith}).

    In a body that uses [Checked_binary] for overflow-prone operators,
    flags every reachable raw [Binary] [Add]/[Sub]/[Mul] whose operands
    are determinably word-typed.  Bodies compiled without overflow
    checks (no [Checked_binary] anywhere) are exempt. *)

val run : Mir.Syntax.body -> Lint.finding list

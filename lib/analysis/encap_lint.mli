(** Layer-encapsulation lint for RData handles (kind
    {!Lint.Encapsulation}).

    Outside the owning layer, a value whose type mentions
    [Ty.Opaque owner] may only be moved around and passed to the
    owner's accessor functions; projecting into one (deref, field,
    index, downcast) or handing it to any other callee is a finding.
    Inside the owning layer ([fn_layer = Some owner]) everything is
    permitted. *)

type config = {
  fn_layer : string option;
      (** layer the analyzed function belongs to, if any *)
  accessor : owner:string -> callee:string -> bool;
      (** is [callee] an accepted getter/setter for [owner]'s handles? *)
}

val run : config -> Mir.Syntax.body -> Lint.finding list

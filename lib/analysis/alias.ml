(* Interprocedural Andersen-style points-to analysis.

   Flow-insensitive per body, summarized per call-graph SCC in
   callees-first order ({!Callgraph.sccs}), inclusion-based: every
   assignment only grows points-to sets, so each SCC reaches a
   fixpoint over a finite location lattice.

   Abstract locations are object-granular: the pointee of a formal
   parameter, the storage of a local, a [Mem] global root, the trusted
   primitives' abstract state, or unknown.  A function's summary is
   its {e footprint} — the locations it may read or write through a
   dereference, with callee footprints substituted actual-for-formal —
   plus the points-to set of its return value and the set of
   parameters whose pointer value may escape (be stored into memory,
   returned, or escape through a callee).

   The generic {!Absint.Make} evaluator collapses [Ref]/[Address_of]
   to a numeric-top leaf before any domain hook runs, so points-to
   facts cannot be expressed as one of its domains; this module walks
   the MIR directly and reuses only {!Callgraph} for the
   interprocedural order.

   A footprint is {e exact} when it contains no unknown location;
   only exact footprints back discharge certificates and override
   frame certification ({!certify}). *)

module Syn = Mir.Syntax
module StrMap = Map.Make (String)

type loc =
  | Lparam of int  (** pointee of the i-th formal parameter *)
  | Llocal of string  (** storage of a local of the analyzed function *)
  | Lglobal of string  (** a [Mem] global root *)
  | Labs  (** trusted-primitive abstract state *)
  | Lunknown

module LocSet = Set.Make (struct
  type t = loc

  let compare = compare
end)

let loc_to_string = function
  | Lparam i -> Printf.sprintf "param#%d" i
  | Llocal v -> Printf.sprintf "local %s" v
  | Lglobal g -> Printf.sprintf "global %s" g
  | Labs -> "abstract state"
  | Lunknown -> "unknown"

let locs_to_string s =
  String.concat ", " (List.map loc_to_string (LocSet.elements s))

type fp = { reads : LocSet.t; writes : LocSet.t }

let fp_empty = { reads = LocSet.empty; writes = LocSet.empty }

let fp_union a b =
  { reads = LocSet.union a.reads b.reads; writes = LocSet.union a.writes b.writes }

let exact (fp : fp) =
  (not (LocSet.mem Lunknown fp.reads)) && not (LocSet.mem Lunknown fp.writes)

module IntSet = Set.Make (Int)

type summary = { fp : fp; ret : LocSet.t; esc : IntSet.t }

let summary_bot = { fp = fp_empty; ret = LocSet.empty; esc = IntSet.empty }

let summary_equal a b =
  LocSet.equal a.fp.reads b.fp.reads
  && LocSet.equal a.fp.writes b.fp.writes
  && LocSet.equal a.ret b.ret
  && IntSet.equal a.esc b.esc

type info = { summary : summary; vars : LocSet.t StrMap.t }

(* May the two points-to sets address overlapping storage?  [Lunknown]
   overlaps everything; [witness] demands a definite common location
   (what the Error-severity lint requires, so the lint only fires on
   provable conflicts). *)
let may_overlap a b =
  LocSet.mem Lunknown a || LocSet.mem Lunknown b
  || not (LocSet.is_empty (LocSet.inter a b))

let witness a b =
  LocSet.choose_opt (LocSet.remove Lunknown (LocSet.inter a b))

(* ------------------------------------------------------------------ *)
(* Per-body constraint solving                                         *)

let var_pts env v =
  match StrMap.find_opt v env with Some s -> s | None -> LocSet.empty

let has_deref (p : Syn.place) = List.mem Syn.Deref p.Syn.elems

let deref_count (p : Syn.place) =
  List.length (List.filter (fun e -> e = Syn.Deref) p.Syn.elems)

(* Locations a deref through [p] touches: the pointees of the base
   variable, plus unknown for every level past the first. *)
let deref_locs env (p : Syn.place) =
  let base = var_pts env p.Syn.var in
  if deref_count p > 1 then LocSet.add Lunknown base else base

(* Points-to of the value a place evaluates to. *)
let place_pts env (p : Syn.place) =
  if has_deref p then LocSet.singleton Lunknown else var_pts env p.Syn.var

let operand_pts env = function
  | Syn.Const _ -> LocSet.empty
  | Syn.Copy p | Syn.Move p -> place_pts env p

(* The storage a borrow of [p] addresses: the variable's own storage
   when there is no deref, otherwise wherever the base may point. *)
let borrow_target env (p : Syn.place) =
  if has_deref p then deref_locs env p
  else LocSet.singleton (Llocal p.Syn.var)

let rvalue_pts env = function
  | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op) ->
      operand_pts env op
  | Syn.Ref p | Syn.Address_of p -> borrow_target env p
  | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
      LocSet.union (operand_pts env a) (operand_pts env b)
  | Syn.Len _ | Syn.Discriminant _ -> LocSet.empty
  | Syn.Aggregate (_, ops) ->
      List.fold_left
        (fun acc op -> LocSet.union acc (operand_pts env op))
        LocSet.empty ops

(* Substitute a callee summary actual-for-formal.  Callee locals are
   invisible to the caller and drop from footprints; a callee-local
   leaking through the return value becomes unknown. *)
let subst_locs ~args ~local_to env locs =
  LocSet.fold
    (fun l acc ->
      match l with
      | Lparam j -> (
          match List.nth_opt args j with
          | Some op -> LocSet.union (operand_pts env op) acc
          | None -> LocSet.add Lunknown acc)
      | Llocal _ -> (
          match local_to with
          | Some l' -> LocSet.add l' acc
          | None -> acc)
      | (Lglobal _ | Labs | Lunknown) as l -> LocSet.add l acc)
    locs LocSet.empty

type state = {
  mutable env : LocSet.t StrMap.t;
  mutable fp : fp;
  mutable esc : IntSet.t;
  mutable dirty : bool;
}

let solve_body ~(summaries : summary StrMap.t) ~prim (body : Syn.body) =
  let st =
    {
      env =
        List.fold_left
          (fun env (v, i) -> StrMap.add v (LocSet.singleton (Lparam i)) env)
          StrMap.empty
          (List.mapi (fun i v -> (v, i)) body.Syn.params);
      fp = fp_empty;
      esc = IntSet.empty;
      dirty = true;
    }
  in
  let add_pts v pts =
    if not (LocSet.is_empty pts) then begin
      let cur = var_pts st.env v in
      let joined = LocSet.union cur pts in
      if not (LocSet.equal cur joined) then begin
        st.env <- StrMap.add v joined st.env;
        st.dirty <- true
      end
    end
  in
  let add_reads locs =
    let joined = LocSet.union st.fp.reads locs in
    if not (LocSet.equal st.fp.reads joined) then begin
      st.fp <- { st.fp with reads = joined };
      st.dirty <- true
    end
  in
  let add_writes locs =
    let joined = LocSet.union st.fp.writes locs in
    if not (LocSet.equal st.fp.writes joined) then begin
      st.fp <- { st.fp with writes = joined };
      st.dirty <- true
    end
  in
  let add_esc pts =
    LocSet.iter
      (fun l ->
        match l with
        | Lparam j ->
            if not (IntSet.mem j st.esc) then begin
              st.esc <- IntSet.add j st.esc;
              st.dirty <- true
            end
        | _ -> ())
      pts
  in
  let read_place (p : Syn.place) =
    if has_deref p then add_reads (deref_locs st.env p)
  in
  let read_operand = function
    | Syn.Const _ -> ()
    | Syn.Copy p | Syn.Move p -> read_place p
  in
  let read_rvalue = function
    | Syn.Use op | Syn.Repeat (op, _) | Syn.Cast (op, _) | Syn.Unary (_, op)
      ->
        read_operand op
    | Syn.Binary (_, a, b) | Syn.Checked_binary (_, a, b) ->
        read_operand a;
        read_operand b
    | Syn.Ref _ | Syn.Address_of _ -> ()
    | Syn.Len p | Syn.Discriminant p -> read_place p
    | Syn.Aggregate (_, ops) -> List.iter read_operand ops
  in
  let write_place (p : Syn.place) pts =
    if has_deref p then begin
      add_writes (deref_locs st.env p);
      (* a pointer stored through memory escapes *)
      add_esc pts
    end
    else add_pts p.Syn.var pts
  in
  let apply_call ~dest ~func ~args =
    List.iter read_operand args;
    let s =
      match StrMap.find_opt func summaries with
      | Some s -> Some s
      | None -> prim func
    in
    match s with
    | Some s ->
        let subst ?local_to locs = subst_locs ~args ~local_to st.env locs in
        add_reads (subst s.fp.reads);
        add_writes (subst s.fp.writes);
        IntSet.iter
          (fun j ->
            match List.nth_opt args j with
            | Some op -> add_esc (operand_pts st.env op)
            | None -> ())
          s.esc;
        write_place dest (subst ~local_to:Lunknown s.ret)
    | None ->
        (* unmodeled extern: may touch anything reachable *)
        add_reads (LocSet.singleton Lunknown);
        add_writes (LocSet.singleton Lunknown);
        List.iter (fun op -> add_esc (operand_pts st.env op)) args;
        write_place dest (LocSet.singleton Lunknown)
  in
  let stmt = function
    | Syn.Assign (dest, rv) ->
        read_rvalue rv;
        write_place dest (rvalue_pts st.env rv)
    | Syn.Set_discriminant (p, _) ->
        if has_deref p then add_writes (deref_locs st.env p)
    | Syn.Storage_live _ | Syn.Storage_dead _ | Syn.Nop -> ()
  in
  let term = function
    | Syn.Goto _ | Syn.Unreachable | Syn.Return -> ()
    | Syn.Switch_int (op, _, _) -> read_operand op
    | Syn.Assert { cond; _ } -> read_operand cond
    | Syn.Drop (p, _) -> if has_deref p then read_place p
    | Syn.Call { dest; func; args; _ } -> apply_call ~dest ~func ~args
  in
  let rounds = ref 0 in
  while st.dirty && !rounds < 64 do
    st.dirty <- false;
    incr rounds;
    Array.iter
      (fun (blk : Syn.block) ->
        List.iter stmt blk.Syn.stmts;
        term blk.Syn.term)
      body.Syn.blocks
  done;
  if st.dirty then begin
    (* did not converge within the bound: widen to unknown *)
    st.fp <-
      {
        reads = LocSet.add Lunknown st.fp.reads;
        writes = LocSet.add Lunknown st.fp.writes;
      }
  end;
  let ret = var_pts st.env Syn.return_var in
  add_esc ret;
  ({ fp = st.fp; ret; esc = st.esc }, st.env)

(* ------------------------------------------------------------------ *)
(* Whole-program fixpoint, SCC by SCC                                  *)

let analyze ?(prim = fun _ -> None) (program : Syn.program) =
  let cg = Callgraph.build program in
  let sccs = Callgraph.sccs cg in
  let summaries = ref StrMap.empty in
  let infos = ref StrMap.empty in
  List.iter
    (fun members ->
      (* seed SCC members with bottom so intra-SCC calls resolve *)
      List.iter
        (fun fn ->
          if not (StrMap.mem fn !summaries) then
            summaries := StrMap.add fn summary_bot !summaries)
        members;
      let stable = ref false in
      let rounds = ref 0 in
      while (not !stable) && !rounds < 64 do
        stable := true;
        incr rounds;
        List.iter
          (fun fn ->
            match Syn.find_body program fn with
            | None -> ()
            | Some body ->
                let s, env = solve_body ~summaries:!summaries ~prim body in
                let prev = StrMap.find fn !summaries in
                if not (summary_equal prev s) then stable := false;
                summaries := StrMap.add fn s !summaries;
                infos := StrMap.add fn { summary = s; vars = env } !infos)
          members
      done)
    sccs;
  !infos

let footprint infos fn =
  match StrMap.find_opt fn infos with
  | Some i -> i.summary.fp
  | None -> { reads = LocSet.singleton Lunknown; writes = LocSet.singleton Lunknown }

(* ------------------------------------------------------------------ *)
(* Frame certification for compositional overrides                     *)

(* [certify ~callee_fp ~frames ~retained] decides whether a
   [points_to]-bearing spec override may replace the callee's body:
   the callee's certified footprint must be exact, every global it
   writes must lie within a declared frame, and every frame must be
   disjoint from every object-memory path the callers retain.  Any
   failure refuses the override (the engine then falls back to the
   body, mirroring the quarantine path). *)
let certify ~(callee_fp : fp) ~(frames : Mir.Path.t list)
    ~(retained : Mir.Path.t list) =
  if frames = [] then
    (* no [points_to] facts declared — nothing to certify: the
       fact-free oracle contracts stay installable whatever the
       footprint says *)
    Ok ()
  else if not (exact callee_fp) then
    Error
      (Printf.sprintf
         "callee footprint is inexact (reads {%s}, writes {%s})"
         (locs_to_string callee_fp.reads)
         (locs_to_string callee_fp.writes))
  else
    let uncovered =
      LocSet.fold
        (fun l acc ->
          match l with
          | Lglobal g
            when not
                   (List.exists
                      (fun f -> Mir.Path.is_prefix f (Mir.Path.global g))
                      frames) ->
              g :: acc
          | _ -> acc)
        callee_fp.writes []
    in
    match uncovered with
    | g :: _ ->
        Error
          (Printf.sprintf "callee writes global %s outside the declared frames"
             g)
    | [] -> (
        let clash =
          List.find_map
            (fun f ->
              List.find_map
                (fun r ->
                  if Mir.Path.disjoint f r then None else Some (f, r))
                retained)
            frames
        in
        match clash with
        | Some (f, r) ->
            Error
              (Printf.sprintf
                 "frame %s overlaps caller-retained path %s"
                 (Mir.Path.to_string f) (Mir.Path.to_string r))
        | None -> Ok ())

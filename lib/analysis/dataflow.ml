module Syn = Mir.Syntax

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  let solve ?(direction = Forward) ~init ~bottom ~transfer (body : Syn.body) =
    let n = Array.length body.Syn.blocks in
    let succs = Cfg.block_successors body in
    let preds = Cfg.predecessors body in
    (* [inputs] feed a block's incoming join, [outputs] are re-queued
       when its transfer result changes *)
    let inputs, outputs =
      match direction with Forward -> (preds, succs) | Backward -> (succs, preds)
    in
    let is_boundary i =
      match direction with Forward -> i = 0 | Backward -> succs.(i) = []
    in
    let before = Array.make n bottom in
    let after = Array.make n bottom in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    (* seed in analysis direction so most blocks stabilize in one pass *)
    (match direction with
    | Forward -> for i = 0 to n - 1 do push i done
    | Backward -> for i = n - 1 downto 0 do push i done);
    while not (Queue.is_empty queue) do
      let i = Queue.take queue in
      queued.(i) <- false;
      let incoming =
        List.fold_left
          (fun acc j -> L.join acc after.(j))
          (if is_boundary i then init else bottom)
          inputs.(i)
      in
      before.(i) <- incoming;
      let out = transfer i incoming in
      if not (L.equal out after.(i)) then begin
        after.(i) <- out;
        List.iter push outputs.(i)
      end
    done;
    { before; after }
end

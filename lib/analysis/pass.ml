module Syn = Mir.Syntax

type config = {
  fn_layer : string option;
  accessor : owner:string -> callee:string -> bool;
  lints : Lint.kind list;
}

let default_config =
  {
    fn_layer = None;
    accessor = (fun ~owner:_ ~callee:_ -> false);
    lints = Lint.all;
  }

let run_lint cfg (body : Syn.body) = function
  | Lint.Encapsulation ->
      Encap_lint.run
        { Encap_lint.fn_layer = cfg.fn_layer; accessor = cfg.accessor }
        body
  | Lint.Move_init -> Init_lint.run body
  | Lint.Unchecked_arith -> Arith_lint.run body
  | Lint.Unreachable_block -> Reach_lint.run body
  (* The borrow-checker kinds run in the engine's "borrow" phase (see
     {!Borrow_lint}); the interprocedural lints need the whole program
     and are scheduled per call-graph SCC ("absint"/"alias" phases). *)
  | Lint.Conflicting_borrow | Lint.Dangling_handle | Lint.Move_while_borrowed
  | Lint.Interval_bounds | Lint.Secret_flow | Lint.Alias_footprint ->
      []

(* Restrict a selection to the per-body kinds: a config naming the
   interprocedural lints scores no per-body passes for them. *)
let body_lints lints = List.filter (fun k -> List.mem k Lint.all) lints

let analyze cfg (body : Syn.body) =
  Lint.sort (List.concat_map (run_lint cfg body) (body_lints cfg.lints))

let report ~name ~lints findings =
  let r = Mirverif.Report.empty name in
  List.fold_left
    (fun r lint ->
      let hits = List.filter (fun (f : Lint.finding) -> f.Lint.kind = lint) findings in
      if hits = [] then Mirverif.Report.add_pass r
      else
        List.fold_left
          (fun r (f : Lint.finding) ->
            Mirverif.Report.add_failure r
              ~case:(Printf.sprintf "%s %s" (Lint.to_string lint) f.Lint.where)
              ~reason:f.Lint.detail)
          r hits)
    r lints

let check cfg ~name body =
  report ~name ~lints:(body_lints cfg.lints) (analyze cfg body)

(* Generic abstract interpreter over MIRlight (the lib/analysis
   tentpole).

   [Make (D)] instantiates a forward interpreter for an abstract
   domain [D] whose scalars carry at least an interval component
   (D.interval / D.with_interval expose it to the generic refinement
   machinery).  On top of the Cfg view it adds what the plain
   [Dataflow] solver does not have:

   - structured values: locals hold trees (scalars, tuples/structs,
     array summaries), so the lowered checked-arithmetic pairs and the
     WalkRes-style result structs keep their fields apart;
   - edge-sensitive propagation with branch refinement: Switch_int
     cases, lowered [Assert]s (overflow flags, division guards) and
     comparison predicates bound to boolean temps all constrain the
     interval components on the outgoing edge;
   - widening at retreating-edge targets (to a per-body threshold set
     harvested from its literals) followed by a bounded narrowing
     sweep, so loops over page-table walks converge in a bounded
     number of iterations and still end with precise bounds;
   - interprocedural call summaries, context-sensitive on the abstract
     arguments and memoized per context (bounded, with a top-context
     fallback), arguments tagged through [D.label_arg] so a callee's
     summary effect can name which argument reaches a sink.

   The three MIRlight pointer kinds ([Ref], [Address_of]/raw, and
   opaque layer handles) are all monitor-local: dereferencing yields
   [D.deref] (public/top in both shipped domains) and writes through
   pointers are not tracked.  Enclave memory is only reachable through
   the trusted primitives, which the client models via [ctx.prim] —
   the trusted getter/setter summaries. *)

module Syn = Mir.Syntax
module Word = Mir.Word
module StrMap = Map.Make (String)

module type DOMAIN = sig
  type v

  val name : string
  val top : v
  val equal : v -> v -> bool
  val join : v -> v -> v
  val widen : thresholds:Word.t list -> v -> v -> v
  val narrow : v -> v -> v
  val is_bot : v -> bool

  val of_const : Syn.constant -> v
  val binop : Syn.bin_op -> v -> v -> v
  val checked : Syn.bin_op -> v -> v -> v * v
  val unop : Syn.un_op -> v -> v
  val cast : Mir.Ty.int_ty -> v -> v
  val deref : v -> v

  val interval : v -> Interval.t

  val with_interval : v -> Interval.t -> v
  (** Replace the numeric component (labels and any other components
      are preserved): the hook the generic branch refinement
      constrains values through. *)

  (** {2 Interprocedural labelling} *)

  val label_arg : int -> v -> v
  (** Tag the [i]-th entry parameter of a summary context. *)

  val subst : actuals:v list -> v -> v
  (** Rewrite a summary result from the callee frame into the caller
      frame (argument tags become the actuals' labels). *)

  type eff
  (** Summary effect: what a call may do besides returning (for the
      taint domain, the labels that may reach an observable sink). *)

  val eff_bot : eff
  val eff_join : eff -> eff -> eff
  val eff_top : arity:int -> eff

  val subst_eff : actuals:v list -> eff -> eff * bool
  (** Callee effect seen from the call site: the effect in the caller
      frame, and whether one of the actuals carries a secret into the
      callee's sink (the caller-side finding). *)

  val key : v -> string
  (** Canonical rendering, the memo key of summary contexts. *)
end

(* Structured abstract values: one level of tuple/struct fields kept
   apart (enough for the lowered checked pairs and result structs),
   arrays summarized by one element. *)
type 'v aval =
  | Leaf of 'v
  | Tup of 'v aval array
  | Arr of { elt : 'v aval; len : int }

module Make (D : DOMAIN) = struct
  type value = D.v aval

  let rec map_leaves f = function
    | Leaf v -> Leaf (f v)
    | Tup a -> Tup (Array.map (map_leaves f) a)
    | Arr { elt; len } -> Arr { elt = map_leaves f elt; len }

  let rec collapse = function
    | Leaf v -> v
    | Tup a ->
        if Array.length a = 0 then D.top
        else
          Array.fold_left
            (fun acc x -> D.join acc (collapse x))
            (collapse a.(0))
            a
    | Arr { elt; _ } -> collapse elt

  let rec combine f a b =
    match (a, b) with
    | Leaf x, Leaf y -> Leaf (f x y)
    | Tup xs, Tup ys when Array.length xs = Array.length ys ->
        Tup (Array.map2 (combine f) xs ys)
    | Arr { elt = x; len = lx }, Arr { elt = y; len = ly } when lx = ly ->
        Arr { elt = combine f x y; len = lx }
    | _ -> Leaf (f (collapse a) (collapse b))

  let join_v = combine D.join
  let widen_v ~thresholds = combine (D.widen ~thresholds)
  let narrow_v = combine D.narrow

  let rec equal_v a b =
    match (a, b) with
    | Leaf x, Leaf y -> D.equal x y
    | Tup xs, Tup ys ->
        Array.length xs = Array.length ys
        && (let ok = ref true in
            Array.iteri
              (fun i x -> if not (equal_v x ys.(i)) then ok := false)
              xs;
            !ok)
    | Arr { elt = x; len = lx }, Arr { elt = y; len = ly } ->
        lx = ly && equal_v x y
    | (Leaf _ | Tup _ | Arr _), _ -> false

  let rec key_v = function
    | Leaf v -> D.key v
    | Tup a -> "(" ^ String.concat "," (Array.to_list (Array.map key_v a)) ^ ")"
    | Arr { elt; len } -> Printf.sprintf "[%s;%d]" (key_v elt) len

  let top_v = Leaf D.top

  (* ---------------------------------------------------------------- *)
  (* Environments                                                      *)

  (* [preds] remembers what produced a boolean or checked-pair temp so
     branch edges can constrain the original operands; a binding dies
     as soon as any variable it mentions is reassigned. *)
  type pred =
    | Cmp of Syn.bin_op * Syn.operand * Syn.operand
    | NotOf of string
    | Chk of Syn.bin_op * Syn.operand * Syn.operand

  type env = { vars : value StrMap.t; preds : pred StrMap.t }

  let env_empty = { vars = StrMap.empty; preds = StrMap.empty }

  let read_var env var =
    match StrMap.find_opt var env.vars with Some v -> v | None -> top_v

  let operand_mentions var = function
    | Syn.Copy p | Syn.Move p -> String.equal p.Syn.var var
    | Syn.Const _ -> false

  let pred_mentions var = function
    | Cmp (_, a, b) | Chk (_, a, b) ->
        operand_mentions var a || operand_mentions var b
    | NotOf u -> String.equal u var

  let invalidate env var =
    {
      env with
      preds =
        StrMap.filter
          (fun k p -> not (String.equal k var) && not (pred_mentions var p))
          env.preds;
    }

  let join_env a b =
    {
      vars =
        StrMap.merge
          (fun _ x y ->
            match (x, y) with Some x, Some y -> Some (join_v x y) | _ -> None)
          a.vars b.vars;
      preds =
        StrMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some x, Some y when x = y -> Some x
            | _ -> None)
          a.preds b.preds;
    }

  let widen_env ~thresholds old next =
    {
      vars =
        StrMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some x, Some y -> Some (widen_v ~thresholds x y)
            | _ -> None)
          old.vars next.vars;
      preds =
        StrMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some x, Some y when x = y -> Some x
            | _ -> None)
          old.preds next.preds;
    }

  let narrow_env old next =
    {
      old with
      vars =
        StrMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some x, Some y -> Some (narrow_v x y)
            | Some x, None -> Some x
            | None, _ -> None)
          old.vars next.vars;
    }

  let equal_env a b =
    StrMap.equal equal_v a.vars b.vars && StrMap.equal ( = ) a.preds b.preds

  (* ---------------------------------------------------------------- *)
  (* Types (for Len, array bounds and boolean-vs-bitwise Not)          *)

  let local_ty (body : Syn.body) var =
    List.find_opt
      (fun (d : Syn.local_decl) -> String.equal d.Syn.lname var)
      body.Syn.locals
    |> Option.map (fun (d : Syn.local_decl) -> d.Syn.lty)

  let rec ty_project ty elems =
    match (ty, elems) with
    | _, [] -> Some ty
    | (Mir.Ty.Ref t | Mir.Ty.Raw t), Syn.Deref :: rest -> ty_project t rest
    | Mir.Ty.Tuple ts, Syn.Pfield i :: rest ->
        if i < List.length ts then ty_project (List.nth ts i) rest else None
    | Mir.Ty.Array (t, _), (Syn.Pindex _ | Syn.Pconst_index _) :: rest ->
        ty_project t rest
    | t, Syn.Downcast _ :: rest -> ty_project t rest
    | _ -> None

  let ty_of_place body (p : Syn.place) =
    match local_ty body p.Syn.var with
    | Some ty -> ty_project ty p.Syn.elems
    | None -> None

  let operand_is_bool body = function
    | Syn.Const (Syn.Cbool _) -> true
    | Syn.Const (Syn.Cint _ | Syn.Cunit | Syn.Cfn _) -> false
    | Syn.Copy p | Syn.Move p -> ty_of_place body p = Some Mir.Ty.Bool

  (* ---------------------------------------------------------------- *)
  (* Places                                                            *)

  let read_place env (p : Syn.place) =
    let rec proj v = function
      | [] -> v
      | Syn.Deref :: rest -> proj (Leaf (D.deref (collapse v))) rest
      | Syn.Pfield i :: rest -> (
          match v with
          | Tup a when i < Array.length a -> proj a.(i) rest
          | _ -> proj (Leaf (collapse v)) rest)
      | (Syn.Pindex _ | Syn.Pconst_index _) :: rest -> (
          match v with
          | Arr { elt; _ } -> proj elt rest
          | _ -> proj (Leaf (collapse v)) rest)
      | Syn.Downcast _ :: rest -> proj v rest
    in
    proj (read_var env p.Syn.var) p.Syn.elems

  (* Strong update through tuple fields, weak (joining) update through
     array indices; writes through Deref are dropped (monitor-local
     pointer targets, see the module comment). *)
  let write_place env (p : Syn.place) value =
    let rec upd v = function
      | [] -> Some value
      | Syn.Deref :: _ -> None
      | Syn.Pfield i :: rest -> (
          match v with
          | Tup a when i < Array.length a ->
              Option.map
                (fun fi ->
                  let a' = Array.copy a in
                  a'.(i) <- fi;
                  Tup a')
                (upd a.(i) rest)
          | _ -> Some (Leaf (D.join (collapse v) (collapse value))))
      | (Syn.Pindex _ | Syn.Pconst_index _) :: rest -> (
          match v with
          | Arr { elt; len } ->
              Option.map (fun e -> Arr { elt = join_v elt e; len }) (upd elt rest)
          | _ -> Some (Leaf (D.join (collapse v) (collapse value))))
      | Syn.Downcast _ :: rest -> upd v rest
    in
    let env = invalidate env p.Syn.var in
    match upd (read_var env p.Syn.var) p.Syn.elems with
    | Some v -> { env with vars = StrMap.add p.Syn.var v env.vars }
    | None -> env

  (* ---------------------------------------------------------------- *)
  (* Widening thresholds: the literals that can actually stop an
     ascending chain — comparison operands, switch cases, assert
     conditions — each with its two neighbours (so both strict and
     inclusive loop bounds land exactly), plus the lattice extremes.

     Harvesting every literal of the body (arithmetic constants, call
     arguments, aggregate fields) used to put dozens of irrelevant
     stops between a loop counter and its real bound; each stop is one
     more widening round at every retreating edge that crosses it.
     Only literals a branch can test against ever make a widened bound
     *stable*, so only those earn a threshold.                         *)

  let thresholds_of (body : Syn.body) =
    let acc = ref [ 0L; 1L; Word.umax ] in
    let add w = acc := w :: Word.sub_sat w 1L :: Word.add_sat w 1L :: !acc in
    let operand = function
      | Syn.Const (Syn.Cint (w, _)) -> add w
      | Syn.Const (Syn.Cbool _ | Syn.Cunit | Syn.Cfn _)
      | Syn.Copy _ | Syn.Move _ -> ()
    in
    let is_cmp = function
      | Syn.Eq | Syn.Ne | Syn.Lt | Syn.Le | Syn.Gt | Syn.Ge -> true
      | Syn.Add | Syn.Sub | Syn.Mul | Syn.Div | Syn.Rem | Syn.Bit_and
      | Syn.Bit_or | Syn.Bit_xor | Syn.Shl | Syn.Shr -> false
    in
    let rvalue = function
      | Syn.Binary (op, a, b) | Syn.Checked_binary (op, a, b) ->
          if is_cmp op then begin
            operand a;
            operand b
          end
      | Syn.Use _ | Syn.Repeat _ | Syn.Cast _ | Syn.Unary _ | Syn.Aggregate _
      | Syn.Ref _ | Syn.Address_of _ | Syn.Len _ | Syn.Discriminant _ -> ()
    in
    Array.iter
      (fun (blk : Syn.block) ->
        List.iter
          (function
            | Syn.Assign (_, rv) -> rvalue rv
            | Syn.Set_discriminant _ | Syn.Storage_live _ | Syn.Storage_dead _
            | Syn.Nop -> ())
          blk.Syn.stmts;
        match blk.Syn.term with
        | Syn.Switch_int (o, cases, _) ->
            operand o;
            List.iter (fun (w, _) -> add w) cases
        | Syn.Assert { cond; _ } -> operand cond
        | Syn.Call _ | Syn.Goto _ | Syn.Return | Syn.Unreachable | Syn.Drop _ -> ())
      body.Syn.blocks;
    List.sort_uniq Word.compare_u !acc

  (* ---------------------------------------------------------------- *)
  (* Intraprocedural transfer (calls excepted)                         *)

  let eval_operand env = function
    | Syn.Copy p | Syn.Move p -> read_place env p
    | Syn.Const c -> Leaf (D.of_const c)

  let scalar env o = collapse (eval_operand env o)

  (* Boolean complement on the interval component; labels kept. *)
  let bool_not v =
    let iv = D.interval v in
    let iv' =
      match Interval.bounds iv with
      | Some (lo, hi) when Word.le_u hi 1L ->
          Interval.v (Word.sub_sat 1L hi) (Word.sub_sat 1L lo)
      | Some _ -> Interval.boolean
      | None -> Interval.bot
    in
    D.with_interval v iv'

  let eval_rvalue body env = function
    | Syn.Use o -> eval_operand env o
    | Syn.Repeat (o, n) -> Arr { elt = eval_operand env o; len = n }
    | Syn.Ref p | Syn.Address_of p ->
        (* numeric-top, but the pointer keeps the pointee's labels so
           derefs downstream stay conservatively labelled *)
        Leaf (D.join D.top (collapse (read_place env p)))
    | Syn.Len p -> (
        match read_place env p with
        | Arr { len; _ } ->
            Leaf (D.of_const (Syn.Cint (Int64.of_int len, Mir.Ty.U64)))
        | Leaf _ | Tup _ -> (
            match ty_of_place body p with
            | Some (Mir.Ty.Array (_, n)) ->
                Leaf (D.of_const (Syn.Cint (Int64.of_int n, Mir.Ty.U64)))
            | _ -> top_v))
    | Syn.Cast (o, ity) -> Leaf (D.cast ity (scalar env o))
    | Syn.Binary (op, a, b) -> Leaf (D.binop op (scalar env a) (scalar env b))
    | Syn.Checked_binary (op, a, b) ->
        let r, f = D.checked op (scalar env a) (scalar env b) in
        Tup [| Leaf r; Leaf f |]
    | Syn.Unary (Syn.Not, o) ->
        if operand_is_bool body o then Leaf (bool_not (scalar env o))
        else Leaf (D.unop Syn.Not (scalar env o))
    | Syn.Unary (Syn.Neg, o) -> Leaf (D.unop Syn.Neg (scalar env o))
    | Syn.Discriminant _ -> top_v
    | Syn.Aggregate (Syn.Agg_array, os) ->
        let vs = List.map (eval_operand env) os in
        let elt =
          match vs with [] -> top_v | v :: rest -> List.fold_left join_v v rest
        in
        Arr { elt; len = List.length os }
    | Syn.Aggregate ((Syn.Agg_tuple | Syn.Agg_struct _ | Syn.Agg_variant _), os)
      ->
        Tup (Array.of_list (List.map (eval_operand env) os))

  let transfer_stmt body env = function
    | Syn.Assign (p, rv) ->
        let v = eval_rvalue body env rv in
        let env = write_place env p v in
        if p.Syn.elems <> [] then env
        else
          let record pr =
            { env with preds = StrMap.add p.Syn.var pr env.preds }
          in
          (match rv with
          | Syn.Binary
              ( ((Syn.Eq | Syn.Ne | Syn.Lt | Syn.Le | Syn.Gt | Syn.Ge) as op),
                a,
                b ) ->
              record (Cmp (op, a, b))
          | Syn.Checked_binary (op, a, b) -> record (Chk (op, a, b))
          | Syn.Unary (Syn.Not, (Syn.Copy q | Syn.Move q))
            when q.Syn.elems = [] ->
              record (NotOf q.Syn.var)
          | _ -> env)
    | Syn.Set_discriminant (p, _) -> write_place env p top_v
    | Syn.Storage_live x | Syn.Storage_dead x ->
        let env = invalidate env x in
        { env with vars = StrMap.remove x env.vars }
    | Syn.Nop -> env

  (* ---- branch refinement ----------------------------------------- *)

  (* Meet the interval component of the scalar at a place; [None] when
     it empties, i.e. the edge is infeasible.  Only Leaf scalars are
     tightened — refining a whole aggregate with a scalar interval
     would over-constrain unrelated fields. *)
  let constrain_place env (p : Syn.place) iv =
    let ok = ref true in
    let tighten v =
      match v with
      | Leaf x ->
          let m = Interval.meet (D.interval x) iv in
          if Interval.is_bot m then ok := false;
          Leaf (D.with_interval x m)
      | Tup _ | Arr _ -> v
    in
    let rec upd v = function
      | [] -> Some (tighten v)
      | Syn.Pfield i :: rest -> (
          match v with
          | Tup a when i < Array.length a ->
              Option.map
                (fun fi ->
                  let a' = Array.copy a in
                  a'.(i) <- fi;
                  Tup a')
                (upd a.(i) rest)
          | _ -> Some v)
      | (Syn.Deref | Syn.Pindex _ | Syn.Pconst_index _) :: _ -> Some v
      | Syn.Downcast _ :: rest -> upd v rest
    in
    match upd (read_var env p.Syn.var) p.Syn.elems with
    | Some v when !ok -> Some { env with vars = StrMap.add p.Syn.var v env.vars }
    | _ -> None

  let constrain_operand env op iv =
    match op with
    | Syn.Copy p | Syn.Move p -> constrain_place env p iv
    | Syn.Const c ->
        if Interval.is_bot (Interval.meet (D.interval (D.of_const c)) iv) then
          None
        else Some env

  (* Refine both operands of a recorded comparison. *)
  let refine_cmp env op ~truth a b =
    let ia = D.interval (scalar env a) and ib = D.interval (scalar env b) in
    match Interval.refine_cmp op ~truth ia ib with
    | None -> None
    | Some (ia', ib') ->
        Option.bind (constrain_operand env a ia') (fun env ->
            constrain_operand env b ib')

  (* Constrain [op] to the boolean [truth], following recorded
     predicates (comparisons, negations, checked-pair flags). *)
  let rec refine_operand body env op ~truth =
    match op with
    | Syn.Const (Syn.Cbool b) -> if b = truth then Some env else None
    | Syn.Const (Syn.Cint (w, _)) ->
        if (not (Word.equal w 0L)) = truth then Some env else None
    | Syn.Const (Syn.Cunit | Syn.Cfn _) -> Some env
    | Syn.Copy p | Syn.Move p -> (
        match p.Syn.elems with
        | [] -> (
            let var = p.Syn.var in
            match constrain_place env p (Interval.of_bool truth) with
            | None -> None
            | Some env -> (
                match StrMap.find_opt var env.preds with
                | Some (Cmp (op, a, b)) -> refine_cmp env op ~truth a b
                | Some (NotOf u) ->
                    refine_operand body env
                      (Syn.Copy (Syn.place_of_var u))
                      ~truth:(not truth)
                | Some (Chk _) | None -> Some env))
        | [ Syn.Pfield 1 ] -> (
            (* the lowered overflow assertion on a checked pair *)
            match StrMap.find_opt p.Syn.var env.preds with
            | Some (Chk (op, a, b)) ->
                if truth then constrain_place env p (Interval.of_bool true)
                else
                  Option.bind
                    (constrain_place env p (Interval.of_bool false))
                    (fun env ->
                      let envelope =
                        Interval.no_overflow op
                          (D.interval (scalar env a))
                          (D.interval (scalar env b))
                      in
                      if Interval.is_bot envelope then None
                      else
                        constrain_place env
                          { p with Syn.elems = [ Syn.Pfield 0 ] }
                          envelope)
            | _ -> constrain_place env p (Interval.of_bool truth))
        | _ -> constrain_place env p (Interval.of_bool truth))

  (* After pinning an operand to an integer, its comparison predicate
     (if the operand is boolean) follows. *)
  let refine_operand_int body env op w =
    match constrain_operand env op (Interval.of_word w) with
    | None -> None
    | Some env -> (
        match op with
        | (Syn.Copy p | Syn.Move p)
          when p.Syn.elems = [] && operand_is_bool body op -> (
            match StrMap.find_opt p.Syn.var env.preds with
            | Some (Cmp (cop, a, b)) ->
                refine_cmp env cop ~truth:(not (Word.equal w 0L)) a b
            | Some (NotOf u) ->
                refine_operand body env
                  (Syn.Copy (Syn.place_of_var u))
                  ~truth:(Word.equal w 0L)
            | Some (Chk _) | None -> Some env)
        | _ -> Some env)

  let refine_operand_ne body env op w =
    let iv = D.interval (scalar env op) in
    match Interval.refine_ne iv (Interval.of_word w) with
    | None -> None
    | Some (iv', _) -> (
        match constrain_operand env op iv' with
        | None -> None
        | Some env -> (
            (* a boolean chipped down to a singleton follows its pred *)
            match (Interval.singleton iv', operand_is_bool body op) with
            | Some w', true -> refine_operand_int body env op w'
            | _ -> Some env))

  (* ---------------------------------------------------------------- *)
  (* Interprocedural context                                           *)

  type summary = { ret : value; eff : D.eff }

  type stats = {
    mutable iterations : int; (* block transfers executed *)
    mutable widenings : int;
    mutable max_visits : int; (* worst per-block visit count *)
    mutable summaries : int; (* callee contexts analyzed *)
  }

  type ctx = {
    program : Syn.program;
    prim : func:string -> args:value list -> (value * D.eff) option;
    max_contexts : int;
    memo : (string * string, summary) Hashtbl.t;
    contexts : (string, string list) Hashtbl.t; (* keys seen per function *)
    in_progress : (string * string, unit) Hashtbl.t;
    stats : stats;
  }

  let create_ctx ?(max_contexts = 8) ~prim program =
    {
      program;
      prim;
      max_contexts;
      memo = Hashtbl.create 64;
      contexts = Hashtbl.create 16;
      in_progress = Hashtbl.create 16;
      stats = { iterations = 0; widenings = 0; max_visits = 0; summaries = 0 };
    }

  let stats ctx = ctx.stats

  type soln = { before : env option array }

  (* ---------------------------------------------------------------- *)
  (* Solver (mutually recursive with call summarization)               *)

  let rec summarize ctx func (args : value list) : summary option =
    match Syn.find_body ctx.program func with
    | None -> None
    | Some body ->
        let nparams = List.length body.Syn.params in
        let pad =
          List.init nparams (fun i ->
              match List.nth_opt args i with Some a -> a | None -> top_v)
        in
        let entry = List.mapi (fun i a -> map_leaves (D.label_arg i) a) pad in
        let key = String.concat ";" (List.map key_v entry) in
        let seen = try Hashtbl.find ctx.contexts func with Not_found -> [] in
        let key, entry =
          if List.mem key seen || List.length seen < ctx.max_contexts then
            (key, entry)
          else
            (* context budget exhausted: fall back to the top context *)
            let entry = List.mapi (fun i _ -> Leaf (D.label_arg i D.top)) pad in
            (String.concat ";" (List.map key_v entry), entry)
        in
        let id = (func, key) in
        (match Hashtbl.find_opt ctx.memo id with
        | Some s -> Some s
        | None ->
            if Hashtbl.mem ctx.in_progress id then
              (* recursion: sound cycle cut *)
              Some { ret = top_v; eff = D.eff_top ~arity:nparams }
            else begin
              Hashtbl.replace ctx.in_progress id ();
              if not (List.mem key seen) then
                Hashtbl.replace ctx.contexts func (key :: seen);
              ctx.stats.summaries <- ctx.stats.summaries + 1;
              let soln = solve ctx body ~entry in
              let ret = return_value body soln in
              let eff = effects ctx body soln in
              Hashtbl.remove ctx.in_progress id;
              let s = { ret; eff } in
              Hashtbl.replace ctx.memo id s;
              Some s
            end)

  (* Call result and effect in the caller's frame; [None] when [func]
     has no body here (primitive or unknown extern). *)
  and apply_call ctx func (args : value list) : (value * D.eff * bool) option =
    match summarize ctx func args with
    | None -> None
    | Some s ->
        let actuals = List.map collapse args in
        let ret = map_leaves (D.subst ~actuals) s.ret in
        let eff, secret_hit = D.subst_eff ~actuals s.eff in
        Some (ret, eff, secret_hit)

  and eval_call ctx env func args =
    let avs = List.map (eval_operand env) args in
    match ctx.prim ~func ~args:avs with
    | Some (ret, _) -> ret
    | None -> (
        match apply_call ctx func avs with
        | Some (ret, _, _) -> ret
        | None -> top_v)

  and out_edges ctx body env = function
    | Syn.Goto l -> [ (l, env) ]
    | Syn.Drop (_, l) -> [ (l, env) ]
    | Syn.Return | Syn.Unreachable -> []
    | Syn.Switch_int (op, cases, otherwise) -> (
        let case_edges =
          List.filter_map
            (fun (w, l) ->
              Option.map (fun e -> (l, e)) (refine_operand_int body env op w))
            cases
        in
        let other =
          List.fold_left
            (fun acc (w, _) ->
              Option.bind acc (fun e -> refine_operand_ne body e op w))
            (Some env) cases
        in
        match other with
        | Some e -> case_edges @ [ (otherwise, e) ]
        | None -> case_edges)
    | Syn.Assert { cond; expected; target; _ } -> (
        match refine_operand body env cond ~truth:expected with
        | Some e -> [ (target, e) ]
        | None -> [])
    | Syn.Call { dest; func; args; target } -> (
        match target with
        | None -> []
        | Some l ->
            let ret = eval_call ctx env func args in
            [ (l, write_place env dest ret) ])

  and transfer_block ctx body env (blk : Syn.block) =
    let env = List.fold_left (transfer_stmt body) env blk.Syn.stmts in
    out_edges ctx body env blk.Syn.term

  and solve ctx (body : Syn.body) ~entry : soln =
    let n = Array.length body.Syn.blocks in
    let thresholds = thresholds_of body in
    (* reverse postorder and retreating-edge targets *)
    let rpo = Array.make n max_int in
    let order = ref [] in
    let visited = Array.make n false in
    let rec dfs b =
      if b >= 0 && b < n && not visited.(b) then begin
        visited.(b) <- true;
        List.iter dfs (Cfg.successors body.Syn.blocks.(b).Syn.term);
        order := b :: !order
      end
    in
    if n > 0 then dfs 0;
    let order = Array.of_list !order in
    Array.iteri (fun i b -> rpo.(b) <- i) order;
    let is_loop_head = Array.make n false in
    Array.iteri
      (fun b (blk : Syn.block) ->
        if visited.(b) then
          List.iter
            (fun s ->
              if s >= 0 && s < n && rpo.(s) <= rpo.(b) then
                is_loop_head.(s) <- true)
            (Cfg.successors blk.Syn.term))
      body.Syn.blocks;
    let inenv : env option array = Array.make n None in
    let entry_env =
      let np = List.length body.Syn.params in
      List.fold_left2
        (fun env param v -> { env with vars = StrMap.add param v env.vars })
        env_empty body.Syn.params
        (List.init np (fun i ->
             match List.nth_opt entry i with Some v -> v | None -> top_v))
    in
    if n > 0 then inenv.(0) <- Some entry_env;
    let visits = Array.make n 0 in
    let module IS = Set.Make (Int) in
    (* worklist ordered by rpo number *)
    let wl = ref (if n > 0 then IS.singleton 0 else IS.empty) in
    let push b = if visited.(b) then wl := IS.add rpo.(b) !wl in
    let widen_delay = 2 in
    while not (IS.is_empty !wl) do
      let r = IS.min_elt !wl in
      wl := IS.remove r !wl;
      let b = order.(r) in
      match inenv.(b) with
      | None -> ()
      | Some env ->
          ctx.stats.iterations <- ctx.stats.iterations + 1;
          List.iter
            (fun (l, e) ->
              if l >= 0 && l < n then begin
                let next =
                  match inenv.(l) with
                  | None -> e
                  | Some old ->
                      let joined = join_env old e in
                      if is_loop_head.(l) && visits.(l) >= widen_delay then begin
                        ctx.stats.widenings <- ctx.stats.widenings + 1;
                        widen_env ~thresholds old joined
                      end
                      else joined
                in
                let changed =
                  match inenv.(l) with
                  | None -> true
                  | Some old -> not (equal_env old next)
                in
                if changed then begin
                  inenv.(l) <- Some next;
                  visits.(l) <- visits.(l) + 1;
                  if visits.(l) > ctx.stats.max_visits then
                    ctx.stats.max_visits <- visits.(l);
                  push l
                end
              end)
            (transfer_block ctx body env body.Syn.blocks.(b))
    done;
    (* narrowing: two decreasing sweeps in rpo order *)
    let preds = Cfg.predecessors body in
    for _ = 1 to 2 do
      Array.iter
        (fun b ->
          ctx.stats.iterations <- ctx.stats.iterations + 1;
          let contributions =
            List.concat_map
              (fun p ->
                match inenv.(p) with
                | None -> []
                | Some env ->
                    List.filter_map
                      (fun (l, e) -> if l = b then Some e else None)
                      (transfer_block ctx body env body.Syn.blocks.(p)))
              preds.(b)
          in
          let contributions =
            if b = 0 then entry_env :: contributions else contributions
          in
          match (inenv.(b), contributions) with
          | Some old, e :: rest ->
              inenv.(b) <- Some (narrow_env old (List.fold_left join_env e rest))
          | _ -> ())
        order
    done;
    { before = inenv }

  and return_value (body : Syn.body) (soln : soln) =
    let acc = ref None in
    Array.iteri
      (fun b (blk : Syn.block) ->
        match (blk.Syn.term, soln.before.(b)) with
        | Syn.Return, Some env ->
            let env = List.fold_left (transfer_stmt body) env blk.Syn.stmts in
            let v = read_var env Syn.return_var in
            acc := Some (match !acc with None -> v | Some a -> join_v a v)
        | _ -> ())
      body.Syn.blocks;
    match !acc with Some v -> v | None -> top_v

  (* Joined summary effect of the body under [soln]: primitive effects
     at their call sites plus substituted callee effects. *)
  and effects ctx (body : Syn.body) (soln : soln) =
    let acc = ref D.eff_bot in
    Array.iteri
      (fun b (blk : Syn.block) ->
        match soln.before.(b) with
        | None -> ()
        | Some env -> (
            let env = List.fold_left (transfer_stmt body) env blk.Syn.stmts in
            match blk.Syn.term with
            | Syn.Call { func; args; _ } -> (
                let avs = List.map (eval_operand env) args in
                match ctx.prim ~func ~args:avs with
                | Some (_, eff) -> acc := D.eff_join !acc eff
                | None -> (
                    match apply_call ctx func avs with
                    | Some (_, eff, _) -> acc := D.eff_join !acc eff
                    | None -> ()))
            | Syn.Goto _ | Syn.Switch_int _ | Syn.Return | Syn.Unreachable
            | Syn.Drop _ | Syn.Assert _ -> ()))
      body.Syn.blocks;
    !acc

  (* ---------------------------------------------------------------- *)
  (* Replay for clients: statements and terminators of reachable
     blocks with the stabilized environment in force at each point.   *)

  type visitor = {
    on_stmt : block:int -> idx:int -> env -> Syn.statement -> unit;
    on_term : block:int -> env -> Syn.terminator -> unit;
  }

  let visit (body : Syn.body) (soln : soln) (v : visitor) =
    Array.iteri
      (fun b (blk : Syn.block) ->
        match soln.before.(b) with
        | None -> ()
        | Some env ->
            let _, env =
              List.fold_left
                (fun (i, env) stmt ->
                  v.on_stmt ~block:b ~idx:i env stmt;
                  (i + 1, transfer_stmt body env stmt))
                (0, env) blk.Syn.stmts
            in
            v.on_term ~block:b env blk.Syn.term)
      body.Syn.blocks

  let analyze ctx func =
    match Syn.find_body ctx.program func with
    | None -> None
    | Some body ->
        let entry = List.map (fun _ -> top_v) body.Syn.params in
        Some (body, solve ctx body ~entry)
end

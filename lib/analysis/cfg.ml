module Syn = Mir.Syntax

let successors (term : Syn.terminator) =
  let raw =
    match term with
    | Syn.Goto l -> [ l ]
    | Syn.Switch_int (_, cases, otherwise) -> List.map snd cases @ [ otherwise ]
    | Syn.Return | Syn.Unreachable -> []
    | Syn.Drop (_, l) -> [ l ]
    | Syn.Call { target; _ } -> Option.to_list target
    | Syn.Assert { target; _ } -> [ target ]
  in
  List.sort_uniq Int.compare raw

let block_successors (body : Syn.body) =
  Array.map (fun (blk : Syn.block) -> successors blk.Syn.term) body.Syn.blocks

let predecessors (body : Syn.body) =
  let n = Array.length body.Syn.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i (blk : Syn.block) ->
      List.iter
        (fun s -> if s >= 0 && s < n then preds.(s) <- i :: preds.(s))
        (successors blk.Syn.term))
    body.Syn.blocks;
  Array.map List.rev preds

let reachable (body : Syn.body) =
  let n = Array.length body.Syn.blocks in
  let seen = Array.make n false in
  let rec go i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (successors body.Syn.blocks.(i).Syn.term)
    end
  in
  if n > 0 then go 0;
  seen

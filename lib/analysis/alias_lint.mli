(** Alias-footprint lint (kind {!Lint.Alias_footprint}), one engine
    obligation per call-graph SCC.

    Error findings fire when a call passes two definitely-may-alias
    arguments (common witness location, never unknown) to a callee
    whose {!Alias} footprint writes through both parameters.  The same
    pass emits [Info] discharge certificates
    ([discharged_by "alias-footprint"]) for per-body
    [Encapsulation]/[Move_init] findings: handle arguments provably
    opaque to the callee, and findings at abstractly-unreachable
    program points.  Policy closures are injected like
    {!Secret_flow.config} so this library stays independent of the
    hyperenclave layer stack. *)

type config = {
  program : Mir.Syntax.program;
  prim : string -> Alias.summary option;
      (** Footprint models of the trusted primitives; [None] makes the
          caller's footprint inexact. *)
  fn_layer : string -> string option;
  accessor : owner:string -> callee:string -> bool;
}

type stats = {
  functions : int;
  footprints : int;  (** exact footprints among the SCC's functions *)
  findings : int;  (** Error findings *)
  discharged : int;  (** certificates emitted *)
}

val check :
  config -> funcs:string list -> (string * Lint.finding) list * stats
(** Analyze the given functions (one SCC); findings are tagged with
    the containing function's name. *)

(** Taint domain for the secret-flow lint: interval component plus a
    finite label lattice (secret bit, argument indices, source-site
    descriptions for messages). *)

module IntSet : Set.S with type elt = int
module StrSet : Set.S with type elt = string

module Labels : sig
  type t = { secret : bool; args : IntSet.t; srcs : StrSet.t }

  val empty : t

  val secret : src:string -> t
  (** Secret label recording the source site for messages. *)

  val arg : int -> t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val is_secret : t -> bool
  val args : t -> int list
  val sources : t -> string list
  val to_string : t -> string
end

module Dom : sig
  type v = { iv : Interval.t; lbl : Labels.t }

  include Absint.DOMAIN with type v := v and type eff = Labels.t

  val make : Interval.t -> Labels.t -> v
end

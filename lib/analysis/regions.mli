(** Liveness-based region inference for the borrow checker.

    NLL-style regions: a loan is alive exactly where the variable
    holding the reference is live, so borrow conflicts are judged
    against backward may-liveness rather than lexical scopes.  The
    block-level fixpoint comes from {!Dataflow.Make} run backward; this
    module re-expands it to per-instruction granularity. *)

module StrSet : Set.S with type elt = string

val points : Mir.Syntax.body -> StrSet.t array array
(** [points body] has one entry per block.  For a block with [n]
    statements the entry has [n + 2] points: index [k < n] is the live
    set immediately before statement [k], index [n] the live set
    before the terminator, and index [n + 1] the block's live-out. *)

(**/**)

val place_uses : StrSet.t -> Mir.Syntax.place -> StrSet.t
val operand_uses : StrSet.t -> Mir.Syntax.operand -> StrSet.t

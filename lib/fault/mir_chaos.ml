open Hyperenclave
module Interp = Mir.Interp
module Report = Mirverif.Report

(* Chaos runs execute through the closure-compiled executor, like the
   code-proof hot path it is meant to stress: a perturbed environment
   only rewraps primitives (names unchanged), so compiling it against
   the shared memo in [Layers.compile_memo] reuses every compiled body
   and only rebuilds the primitive table. *)
let ccall ?fuel env ~abs ~mem fn args =
  Mir.Compile.call ?fuel (Mir.Compile.compile ~cache:Layers.compile_memo env) ~abs ~mem fn args

let u64 = Marshal_v.u64

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

type outcome = { target : string; prim_calls : int; injections : int }

(* Wrap every primitive so the [n]th call across the execution fails
   with a recognizable message (n < 0 never fires: pure counting). *)
let perturbed_env ~fail_at env =
  let count = ref 0 in
  let env =
    Interp.map_prims
      (fun p ->
        {
          p with
          Interp.prim_exec =
            (fun abs args ->
              let k = !count in
              incr count;
              if k = fail_at then Error "injected transient fault"
              else p.Interp.prim_exec abs args);
        })
      env
  in
  (env, count)

(* The battery: functions spanning the stack, from the allocator up to
   the hypercall layer, each with arguments that drive a nontrivial
   (primitive-calling) execution. *)
let targets (layout : Layout.t) =
  let page i =
    Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)
  in
  let booted = Boot.booted layout in
  let o =
    Hypercall.create booted ~elrange_base:0L ~elrange_pages:2 ~mbuf_va:(page 8)
  in
  let gpt_root =
    match Absdata.find_enclave o.Hypercall.d o.Hypercall.value with
    | Ok e -> Int64.of_int e.Enclave.gpt_root
    | Error _ -> 0L
  in
  let flags = Flags.encode layout.Layout.geom Flags.user_rw in
  [
    ("frame_alloc", booted, [], 20);
    ("create_table", booted, [], 50);
    ("walk", o.Hypercall.d, [ u64 gpt_root; u64 (page 8) ], 100);
    ( "map_page",
      o.Hypercall.d,
      [ u64 gpt_root; u64 0L; u64 layout.Layout.epc_base; u64 flags ],
      200 );
    ("query", o.Hypercall.d, [ u64 gpt_root; u64 (page 8) ], 100);
    ("hc_create", booted, [ u64 0L; u64 2L; u64 (page 8) ], 1000);
  ]

let graceful ~case report result =
  match result with
  | Ok (_ : Absdata.t Interp.outcome) -> Report.add_pass report
  | Error (Interp.Fault _ | Interp.Assert_failed _ | Interp.Out_of_fuel) ->
      Report.add_pass report
  | exception exn ->
      Report.add_failure report ~case
        ~reason:("exception escaped the interpreter: " ^ Printexc.to_string exn)

let run ?(seed = 0) layout =
  ignore seed;
  let report = ref (Report.empty "mir-level fault injection") in
  let outcomes =
    List.map
      (fun (fn, abs, args, fuel_hi) ->
        let layer =
          match Layers.layer_of_function layout fn with
          | Some l -> l
          | None -> "Hypercalls"
        in
        let env = Layers.env_for layout ~layer in
        (* unperturbed run: count the primitive calls *)
        let counting, count = perturbed_env ~fail_at:(-1) env in
        let baseline = ccall counting ~abs ~mem:Mir.Mem.empty fn args in
        report := graceful ~case:(fn ^ " baseline") !report baseline;
        let prim_calls = !count in
        (* fail each primitive call in turn: the failure must surface
           as a structured Fault naming the injection *)
        let injections = ref 0 in
        for i = 0 to prim_calls - 1 do
          incr injections;
          let env, _ = perturbed_env ~fail_at:i env in
          let case = Printf.sprintf "%s prim-fault@%d" fn i in
          match ccall env ~abs ~mem:Mir.Mem.empty fn args with
          | Ok _ ->
              report :=
                Report.add_failure !report ~case
                  ~reason:"injected primitive failure vanished (call succeeded)"
          | Error (Interp.Fault { msg; _ }) ->
              if contains msg "injected" then report := Report.add_pass !report
              else
                report :=
                  Report.add_failure !report ~case
                    ~reason:("fault does not name the injection: " ^ msg)
          | Error (Interp.Assert_failed _ | Interp.Out_of_fuel) ->
              report := Report.add_pass !report
          | exception exn ->
              report :=
                Report.add_failure !report ~case
                  ~reason:
                    ("exception escaped the interpreter: "
                   ^ Printexc.to_string exn)
        done;
        (* fuel ladder: starvation anywhere must yield Out_of_fuel *)
        let fuel = ref 1 in
        while !fuel <= fuel_hi do
          incr injections;
          let case = Printf.sprintf "%s fuel=%d" fn !fuel in
          (match ccall ~fuel:!fuel env ~abs ~mem:Mir.Mem.empty fn args with
          | Ok _ | Error Interp.Out_of_fuel -> report := Report.add_pass !report
          | Error (Interp.Fault _ | Interp.Assert_failed _) ->
              report := Report.add_pass !report
          | exception exn ->
              report :=
                Report.add_failure !report ~case
                  ~reason:
                    ("exception escaped the interpreter: "
                   ^ Printexc.to_string exn));
          fuel := !fuel * 3
        done;
        { target = fn; prim_calls; injections = !injections })
      (targets layout)
  in
  (!report, outcomes)

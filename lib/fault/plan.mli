(** Fault plans: the perturbations the chaos driver can inject.

    Each constructor names one failure mode the monitor must degrade
    gracefully under — resource exhaustion, memory corruption in the
    structures the paper's invariants protect, adversarial cache and
    oracle behaviour, and truncated hypercall sequences.  Faults are
    descriptions; {!Inject.apply} gives them meaning on a machine
    state, and {!Chaos} interleaves them with transition-system
    actions.

    Parameters are raw integers reduced modulo whatever is available
    in the state at injection time (tables present, EPC pages, cached
    translations), so a plan drawn from a seed stays meaningful as the
    state evolves — and replays identically, which the counterexample
    shrinker relies on. *)

type t =
  | Exhaust_frames
      (** Drain the frame allocator: every later page-table allocation
          must fail with [No_memory], transactionally. *)
  | Flip_pt_bit of { table : int; index : int; bit : int }
      (** Flip one bit of one entry word in a reachable page table
          ([table] indexes the reachable-frame list, modulo). *)
  | Flip_bitmap_bit of { frame : int }
      (** Flip frame [frame mod nframes]'s bit in the allocator
          bitmap — spuriously freeing a live table frame or leaking a
          free one. *)
  | Corrupt_epcm of { page : int; state : Hyperenclave.Epcm.page_state }
      (** Overwrite an EPCM entry with an arbitrary ownership record. *)
  | Clobber_oracle of { who : Security.Principal.t; seed : int }
      (** Replace a principal's declassification oracle with an
          adversarial stream. *)
  | Tlb_prefetch of { pick : int }
      (** Speculatively cache a currently-valid enclave translation
          ([pick] indexes the valid-translation list, modulo) — the
          hardware behaviour that turns a missing flush into a stale
          entry. *)
  | Truncate
      (** Cut the trace short here: the tail of the hypercall sequence
          is lost (crashed caller). *)

type kind =
  | Exhaustion
  | Pt_bitflip
  | Bitmap_bitflip
  | Epcm_corruption
  | Oracle
  | Tlb
  | Truncation

val kind_of : t -> kind
val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result
val kinds_of_string : string -> (kind list, string) result
(** Comma-separated kind names (the [--faults] CLI syntax). *)

(** {1 Engine-level fault vocabulary}

    Faults against the checker itself (the supervised obligation pool
    and its proof cache) rather than the checked monitor.  Injected by
    [Engine.Engine_chaos] at named hook points; named here so both
    chaos harnesses share one vocabulary and one CLI syntax. *)

type engine_kind =
  | Obl_crash  (** an obligation raises mid-run *)
  | Obl_hang  (** an obligation stops making progress until its deadline *)
  | Worker_kill
      (** a worker domain dies between obligations or after computing a
          result but before publishing it *)
  | Torn_pack  (** a cache pack file is truncated mid-write *)
  | Truncated_proof  (** a legacy [.proof] entry is cut short *)
  | Clock_skew  (** the engine clock jumps forward in small steps *)

val all_engine_kinds : engine_kind list
val engine_kind_to_string : engine_kind -> string
val engine_kind_of_string : string -> (engine_kind, string) result

val engine_kinds_of_string : string -> (engine_kind list, string) result
(** Comma-separated engine-kind names, or ["all"] (the
    [--engine-faults] CLI syntax). *)

val corrupts : t -> bool
(** Whether the fault puts the monitor state outside the reachable
    set: after a corrupting fault the Sec. 5.2 invariants are no
    longer guaranteed, and the chaos driver stops checking them
    (graceful degradation and hypercall transactionality remain in
    force). *)

val breaks_translation : t -> bool
(** The subset of {!corrupts} that can change what a page walk
    returns (page-table and allocator-bitmap bit flips): only these
    disarm the TLB-consistency check.  EPCM corruption is metadata
    only — translations, and hence the TLB check, survive it. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val random :
  Check.Rng.t -> Hyperenclave.Layout.t -> kinds:kind list ->
  t * Check.Rng.t
(** Draw a fault whose kind is in [kinds] (must be non-empty). *)

open Hyperenclave
module Rng = Check.Rng
module Principal = Security.Principal

type t =
  | Exhaust_frames
  | Flip_pt_bit of { table : int; index : int; bit : int }
  | Flip_bitmap_bit of { frame : int }
  | Corrupt_epcm of { page : int; state : Epcm.page_state }
  | Clobber_oracle of { who : Principal.t; seed : int }
  | Tlb_prefetch of { pick : int }
  | Truncate

type kind =
  | Exhaustion
  | Pt_bitflip
  | Bitmap_bitflip
  | Epcm_corruption
  | Oracle
  | Tlb
  | Truncation

let kind_of = function
  | Exhaust_frames -> Exhaustion
  | Flip_pt_bit _ -> Pt_bitflip
  | Flip_bitmap_bit _ -> Bitmap_bitflip
  | Corrupt_epcm _ -> Epcm_corruption
  | Clobber_oracle _ -> Oracle
  | Tlb_prefetch _ -> Tlb
  | Truncate -> Truncation

let all_kinds =
  [ Exhaustion; Pt_bitflip; Bitmap_bitflip; Epcm_corruption; Oracle; Tlb;
    Truncation ]

let kind_to_string = function
  | Exhaustion -> "exhaustion"
  | Pt_bitflip -> "pt-bitflip"
  | Bitmap_bitflip -> "bitmap-bitflip"
  | Epcm_corruption -> "epcm"
  | Oracle -> "oracle"
  | Tlb -> "tlb"
  | Truncation -> "truncation"

let kind_of_string s =
  match
    List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds
  with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown fault kind %S (expected one of %s)" s
           (String.concat ", " (List.map kind_to_string all_kinds)))

let kinds_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun s -> s <> "")
  |> List.fold_left
       (fun acc name ->
         match (acc, kind_of_string (String.trim name)) with
         | Error _, _ -> acc
         | Ok _, Error e -> Error e
         | Ok ks, Ok k -> Ok (k :: ks))
       (Ok [])
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Engine-level fault vocabulary                                       *)

(* Faults against the checker itself rather than the checked monitor:
   the engine's chaos harness (lib/engine/engine_chaos.ml) injects
   these at named hook points in the supervised obligation pool and its
   cache tier.  The vocabulary lives here so state-level and
   engine-level chaos share one naming scheme and one CLI syntax. *)
type engine_kind =
  | Obl_crash  (** an obligation raises mid-run *)
  | Obl_hang  (** an obligation stops making progress until its deadline *)
  | Worker_kill  (** a worker domain dies between obligations or before publishing *)
  | Torn_pack  (** a cache pack file is truncated mid-write *)
  | Truncated_proof  (** a legacy [.proof] entry is cut short *)
  | Clock_skew  (** the engine clock jumps forward in small steps *)

let all_engine_kinds =
  [ Obl_crash; Obl_hang; Worker_kill; Torn_pack; Truncated_proof; Clock_skew ]

let engine_kind_to_string = function
  | Obl_crash -> "obl-crash"
  | Obl_hang -> "obl-hang"
  | Worker_kill -> "worker-kill"
  | Torn_pack -> "torn-pack"
  | Truncated_proof -> "truncated-proof"
  | Clock_skew -> "clock-skew"

let engine_kind_of_string s =
  match
    List.find_opt
      (fun k -> String.equal (engine_kind_to_string k) s)
      all_engine_kinds
  with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown engine fault kind %S (expected one of %s)" s
           (String.concat ", " (List.map engine_kind_to_string all_engine_kinds)))

let engine_kinds_of_string s =
  if String.equal (String.trim s) "all" then Ok all_engine_kinds
  else
    String.split_on_char ',' s
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc name ->
           match (acc, engine_kind_of_string (String.trim name)) with
           | Error _, _ -> acc
           | Ok _, Error e -> Error e
           | Ok ks, Ok k -> Ok (k :: ks))
         (Ok [])
    |> Result.map List.rev

let corrupts f =
  match kind_of f with
  | Pt_bitflip | Bitmap_bitflip | Epcm_corruption -> true
  | Exhaustion | Oracle | Tlb | Truncation -> false

let breaks_translation f =
  match kind_of f with
  | Pt_bitflip | Bitmap_bitflip -> true
  | Epcm_corruption | Exhaustion | Oracle | Tlb | Truncation -> false

let pp fmt = function
  | Exhaust_frames -> Format.pp_print_string fmt "exhaust-frames"
  | Flip_pt_bit { table; index; bit } ->
      Format.fprintf fmt "flip-pt-bit(table=%d, index=%d, bit=%d)" table index bit
  | Flip_bitmap_bit { frame } -> Format.fprintf fmt "flip-bitmap-bit(frame=%d)" frame
  | Corrupt_epcm { page; state } ->
      Format.fprintf fmt "corrupt-epcm(page=%d, %a)" page Epcm.pp_page_state state
  | Clobber_oracle { who; seed } ->
      Format.fprintf fmt "clobber-oracle(%a, seed=%d)" Principal.pp who seed
  | Tlb_prefetch { pick } -> Format.fprintf fmt "tlb-prefetch(pick=%d)" pick
  | Truncate -> Format.pp_print_string fmt "truncate"

let to_string f = Format.asprintf "%a" pp f

let page_va layout i =
  Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)

let random rng (layout : Layout.t) ~kinds =
  let kind, rng = Rng.pick rng kinds in
  match kind with
  | Exhaustion -> (Exhaust_frames, rng)
  | Pt_bitflip ->
      let table, rng = Rng.int_below rng 16 in
      let index, rng = Rng.int_below rng (Geometry.entries_per_table layout.Layout.geom) in
      let bit, rng = Rng.int_below rng 64 in
      (Flip_pt_bit { table; index; bit }, rng)
  | Bitmap_bitflip ->
      let frame, rng = Rng.int_below rng layout.Layout.frame_count in
      (Flip_bitmap_bit { frame }, rng)
  | Epcm_corruption ->
      let page, rng = Rng.int_below rng layout.Layout.epc_pages in
      let free, rng = Rng.bool rng in
      if free then (Corrupt_epcm { page; state = Epcm.Free }, rng)
      else
        let eid, rng = Rng.int_below rng 4 in
        let vp, rng = Rng.int_below rng 6 in
        ( Corrupt_epcm
            { page; state = Epcm.Valid { eid = eid + 1; va = page_va layout vp } },
          rng )
  | Oracle ->
      let who, rng =
        Rng.pick rng
          [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2;
            Principal.Enclave 3 ]
      in
      let seed, rng = Rng.int_below rng 1_000_000 in
      (Clobber_oracle { who; seed }, rng)
  | Tlb ->
      let pick, rng = Rng.int_below rng 64 in
      (Tlb_prefetch { pick }, rng)
  | Truncation -> (Truncate, rng)

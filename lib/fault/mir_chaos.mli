(** Chaos at the MIRlight level.

    The state-machine chaos of {!Chaos} perturbs the functional model;
    this module perturbs the {e executions} of the compiled memory
    module: through {!Mir.Interp.map_prims} every lower-layer
    primitive a function calls can be made to fail (a transient fault
    at the layer boundary), and through the interpreter's fuel bound a
    call can be starved mid-execution ([Out_of_fuel]).

    The robustness obligation is graceful degradation: whatever is
    injected, {!Mir.Interp.call} must return a structured
    [('a, Interp.error) result] — injected primitive failures surface
    as [Fault]s naming the injection, starvation as [Out_of_fuel], and
    no OCaml exception ever escapes.  Since the interpreter threads the
    abstract state functionally, a failed call also cannot leak partial
    monitor-state updates to its caller — the code-level counterpart of
    hypercall transactionality. *)

type outcome = {
  target : string;  (** function under chaos *)
  prim_calls : int;  (** primitive calls on the unperturbed run *)
  injections : int;  (** perturbed executions performed *)
}

val run : ?seed:int -> Hyperenclave.Layout.t -> Mirverif.Report.t * outcome list
(** Exercise a battery of memory-module functions under exhaustive
    single-primitive-failure injection plus a fuel ladder.  One report
    case per perturbed execution. *)

(** {1 Fixtures}

    Exposed for the differential suite in [test/differential], which
    replays the same perturbed environments under both the reference
    interpreter and the closure-compiled executor and demands identical
    results. *)

val perturbed_env :
  fail_at:int ->
  Hyperenclave.Absdata.t Mir.Interp.env ->
  Hyperenclave.Absdata.t Mir.Interp.env * int ref
(** Wrap every primitive so the [fail_at]th call across the execution
    fails with a recognizable message ([fail_at < 0] never fires: pure
    counting).  Returns the wrapped environment and the live call
    counter. *)

val targets :
  Hyperenclave.Layout.t ->
  (string * Hyperenclave.Absdata.t * Hyperenclave.Absdata.t Mir.Value.t list * int)
  list
(** The chaos battery: [(function, abstract state, args, fuel cap)]
    spanning the stack from the allocator to the hypercall layer. *)

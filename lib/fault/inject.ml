open Hyperenclave
open Security
module Word = Mir.Word

let ( let* ) = Result.bind

let reachable_tables (d : Absdata.t) =
  let enclave_roots =
    List.concat_map
      (fun eid ->
        match Absdata.find_enclave d eid with
        | Ok e -> [ e.Enclave.gpt_root; e.Enclave.ept_root ]
        | Error _ -> [])
      (Absdata.enclave_ids d)
  in
  let roots =
    match d.Absdata.os_ept_root with
    | Some r -> r :: enclave_roots
    | None -> enclave_roots
  in
  List.sort_uniq compare
    (List.concat_map
       (fun root ->
         match Pt_flat.table_frames d ~root with Ok fs -> fs | Error _ -> [])
       roots)

let valid_translations (st : State.t) =
  let d = st.State.mon in
  let geom = Absdata.geom d in
  let all =
    List.concat_map
      (fun eid ->
        match Absdata.find_enclave d eid with
        | Error _ -> []
        | Ok e -> (
            match Nested.enclave_reachable d e with
            | Error _ -> []
            | Ok maps ->
                List.map
                  (fun (va_page, hpa_page, flags) ->
                    ( Principal.Enclave eid,
                      va_page,
                      { Tlb.hpa_page = Geometry.page_base geom hpa_page; flags } ))
                  maps))
      (Absdata.enclave_ids d)
  in
  (* prefer EPC-backed translations: those are the ones hypercalls can
     later revoke, so caching them is what exercises TLB consistency
     (the mbuf window and any other mapping stays as fallback) *)
  match
    List.filter
      (fun (_, _, (e : Tlb.entry)) ->
        Layout.region_equal
          (Layout.region_of d.Absdata.layout e.Tlb.hpa_page)
          Layout.Epc)
      all
  with
  | [] -> all
  | epc -> epc

let with_mon (st : State.t) mon = { st with State.mon }

let apply plan (st : State.t) =
  let d = st.State.mon in
  match plan with
  | Plan.Exhaust_frames ->
      let rec drain falloc =
        match Frame_alloc.alloc falloc with
        | Ok (falloc, _) -> drain falloc
        | Error _ -> falloc
      in
      Ok (with_mon st { d with Absdata.falloc = drain d.Absdata.falloc })
  | Plan.Flip_pt_bit { table; index; bit } -> (
      match reachable_tables d with
      | [] -> Error "no reachable page table to corrupt"
      | tables ->
          let frame = List.nth tables (table mod List.length tables) in
          let index = index mod Geometry.entries_per_table (Absdata.geom d) in
          let* entry = Pt_flat.read_entry d ~frame ~index in
          let flipped = Int64.logxor entry (Int64.shift_left 1L (bit mod 64)) in
          let* d = Pt_flat.write_entry d ~frame ~index flipped in
          Ok (with_mon st d))
  | Plan.Flip_bitmap_bit { frame } ->
      let falloc = d.Absdata.falloc in
      let frame = frame mod Frame_alloc.nframes falloc in
      let word = frame / 64 in
      let* bits = Frame_alloc.bitmap_word falloc word in
      let flipped = Int64.logxor bits (Int64.shift_left 1L (frame mod 64)) in
      let* falloc = Frame_alloc.set_bitmap_word falloc word flipped in
      Ok (with_mon st { d with Absdata.falloc })
  | Plan.Corrupt_epcm { page; state } ->
      let page = page mod Epcm.npages d.Absdata.epcm in
      let* epcm = Epcm.set d.Absdata.epcm page state in
      Ok (with_mon st { d with Absdata.epcm })
  | Plan.Clobber_oracle { who; seed } ->
      Ok
        {
          st with
          State.oracles =
            Principal.Map.add who (Oracle.create ~seed ()) st.State.oracles;
        }
  | Plan.Tlb_prefetch { pick } -> (
      match valid_translations st with
      | [] -> Error "no valid translation to prefetch"
      | translations ->
          let who, va_page, entry =
            List.nth translations (pick mod List.length translations)
          in
          Ok { st with State.tlb = Tlb.fill st.State.tlb who ~va_page entry })
  | Plan.Truncate -> Ok st

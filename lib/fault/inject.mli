(** Give fault plans meaning on a machine state.

    Injection happens at layer boundaries: every fault is expressed
    through the same verified interfaces the monitor itself uses
    ({!Hyperenclave.Pt_flat} entry reads/writes, the
    {!Hyperenclave.Frame_alloc} bitmap view, {!Hyperenclave.Epcm},
    {!Security.Tlb}), so the semantics is never forked — a corrupted
    state is an ordinary state the checker can keep stepping.

    [Error] means the fault is {e not applicable} in this state (no
    reachable page table to corrupt, no valid translation to
    prefetch); the chaos driver records a skip and carries on. *)

val apply : Plan.t -> Security.State.t -> (Security.State.t, string) result

val reachable_tables : Hyperenclave.Absdata.t -> int list
(** Every table frame reachable from any installed root (OS EPT plus
    each enclave's GPT and EPT), deduplicated — the bit-flip target
    population. *)

val valid_translations :
  Security.State.t ->
  (Security.Principal.t * Mir.Word.t * Security.Tlb.entry) list
(** Every (enclave, va_page) the hardware could speculatively walk and
    cache right now, with the entry the walk would fill. *)

open Hyperenclave
open Security
module Report = Mirverif.Report
module Rng = Check.Rng
module Word = Mir.Word

type event = Act of Transition.action | Inject of Plan.t

let pp_event fmt = function
  | Act a -> Transition.pp_action fmt a
  | Inject f -> Format.fprintf fmt "fault: %a" Plan.pp f

let event_to_string e = Format.asprintf "%a" pp_event e

type failure = {
  at : int;
  event : event option;
  check : string;
  reason : string;
}

let pp_failure fmt f =
  Format.fprintf fmt "event %d%s: %s check failed: %s" f.at
    (match f.event with
    | Some e -> Printf.sprintf " (%s)" (event_to_string e)
    | None -> "")
    f.check f.reason

type summary = { ran : int; applied : int; skipped : int; disabled : int }

type stats = {
  traces : int;
  events : int;
  faults : int;
  fault_skips : int;
  disabled_steps : int;
}

type counterexample = {
  cx_seed : int;
  cx_events : event list;
  cx_shrunk : event list;
  cx_failure : failure;
  cx_evals : int;
}

let pp_counterexample fmt cx =
  Format.fprintf fmt
    "@[<v>seed %d: %d events, shrunk to %d (%d replays):@,%a@,%a@]" cx.cx_seed
    (List.length cx.cx_events) (List.length cx.cx_shrunk) cx.cx_evals
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun fmt (i, e) -> Format.fprintf fmt "  %2d. %a" i pp_event e))
    (List.mapi (fun i e -> (i, e)) cx.cx_shrunk)
    pp_failure cx.cx_failure

(* ------------------------------------------------------------------ *)
(* Per-step checks                                                     *)

let tlb_consistent (st : State.t) =
  let d = st.State.mon in
  let geom = Absdata.geom d in
  List.fold_left
    (fun acc (p, va_page, (entry : Tlb.entry)) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          let stale reason =
            Error
              (Printf.sprintf "stale TLB entry for %s at %s: %s"
                 (Format.asprintf "%a" Principal.pp p)
                 (Word.to_hex va_page) reason)
          in
          let walked =
            match p with
            | Principal.Os -> Nested.os_translate d ~gpa:va_page
            | Principal.Enclave eid ->
                Result.bind (Absdata.find_enclave d eid) (fun e ->
                    Nested.enclave_translate d e ~va:va_page)
          in
          match walked with
          | Ok (Some (hpa, flags))
            when Word.equal (Geometry.page_base geom hpa) entry.Tlb.hpa_page
                 && Flags.equal flags entry.Tlb.flags ->
              Ok ()
          | Ok (Some _) -> stale "the walked translation differs"
          | Ok None -> stale "the mapping is gone"
          | Error msg -> stale ("the walk fails: " ^ msg)))
    (Ok ())
    (Tlb.to_list st.State.tlb)

let reports_status = function
  | Transition.Hc_create _ | Transition.Hc_add_page _
  | Transition.Hc_remove_page _ | Transition.Hc_init_done _ ->
      true
  | Transition.Const _ | Transition.Compute _ | Transition.Load _
  | Transition.Store _ | Transition.Hc_enter _ | Transition.Hc_exit ->
      false

let is_transfer = function
  | Transition.Hc_enter _ | Transition.Hc_exit -> true
  | _ -> false

(* Transactionality of the monitor state: failed status-reporting
   hypercalls and (always) enter/exit must leave [Absdata.t] alone. *)
let transactional ~(before : State.t) ~(after : State.t) action =
  if reports_status action then
    match State.reg after 0 with
    | Error msg -> Error ("status-code", "status register unreadable: " ^ msg)
    | Ok code -> (
        match Hypercall.status_of_code code with
        | None ->
            Error
              ( "status-code",
                Printf.sprintf "hypercall produced unknown status word %s"
                  (Word.to_hex code) )
        | Some Hypercall.Success -> Ok ()
        | Some status ->
            if Absdata.equal before.State.mon after.State.mon then Ok ()
            else
              Error
                ( "transactionality",
                  Format.asprintf
                    "hypercall failed with %a but mutated the abstract state"
                    Hypercall.pp_status status ))
  else if is_transfer action then
    if Absdata.equal before.State.mon after.State.mon then Ok ()
    else Error ("transactionality", "enter/exit mutated the abstract state")
  else Ok ()

(* [inv] / [tlb]: which checks are still armed.  A corrupting fault
   legitimately breaks the invariants; only translation-changing
   corruption disarms TLB consistency (see {!Plan.breaks_translation}). *)
let state_checks ~inv ~tlb (st : State.t) =
  let inv_ok =
    if not inv then Ok ()
    else
      match Invariants.check st.State.mon with
      | Error reason -> Error ("invariant", reason)
      | Ok () -> Ok ()
  in
  match inv_ok with
  | Error _ as e -> e
  | Ok () ->
      if not tlb then Ok ()
      else (
        match tlb_consistent st with
        | Error reason -> Error ("tlb-consistency", reason)
        | Ok () -> Ok ())

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type progress = {
  st : State.t;
  inv : bool;  (** invariant check still armed *)
  tlb : bool;  (** TLB-consistency check still armed *)
  halt : bool;
  sum : summary;
}

let exec ~flush { st; inv; tlb; halt = _; sum } i ev =
  let sum = { sum with ran = sum.ran + 1 } in
  let fail (check, reason) = Error { at = i; event = Some ev; check; reason } in
  match ev with
  | Inject Plan.Truncate ->
      Ok { st; inv; tlb; halt = true; sum = { sum with applied = sum.applied + 1 } }
  | Inject f -> (
      match Inject.apply f st with
      | Error _ ->
          Ok { st; inv; tlb; halt = false; sum = { sum with skipped = sum.skipped + 1 } }
      | Ok st' -> (
          let inv = inv && not (Plan.corrupts f) in
          let tlb = tlb && not (Plan.breaks_translation f) in
          let sum = { sum with applied = sum.applied + 1 } in
          match state_checks ~inv ~tlb st' with
          | Error e -> fail e
          | Ok () -> Ok { st = st'; inv; tlb; halt = false; sum }))
  | Act a -> (
      match Transition.step ~flush st a with
      | Error _ ->
          (* the action is disabled here; the state is unchanged *)
          Ok { st; inv; tlb; halt = false; sum = { sum with disabled = sum.disabled + 1 } }
      | Ok st' -> (
          match transactional ~before:st ~after:st' a with
          | Error e -> fail e
          | Ok () -> (
              match state_checks ~inv ~tlb st' with
              | Error e -> fail e
              | Ok () -> Ok { st = st'; inv; tlb; halt = false; sum })))

let replay ?(flush = true) layout events =
  let rec go p i = function
    | [] -> Ok p.sum
    | ev :: rest -> (
        let outcome =
          try exec ~flush p i ev
          with exn ->
            Error
              {
                at = i;
                event = Some ev;
                check = "exception";
                reason = Printexc.to_string exn;
              }
        in
        match outcome with
        | Error f -> Error f
        | Ok p -> if p.halt then Ok p.sum else go p (i + 1) rest)
  in
  go
    {
      st = State.boot layout;
      inv = true;
      tlb = true;
      halt = false;
      sum = { ran = 0; applied = 0; skipped = 0; disabled = 0 };
    }
    0 events

(* ------------------------------------------------------------------ *)
(* Trace generation                                                    *)

let events_for ?(faults = Plan.all_kinds) ~seed ~len layout =
  let rng = Rng.make seed in
  (* Each trace is a {e campaign} enabling a random subset of the
     requested fault kinds.  Focused mixes matter: a trace whose
     campaign omits the corrupting kinds keeps the invariant and TLB
     checks armed end to end, which is where missing-flush bugs are
     caught; a trace that enables them stresses graceful degradation
     instead. *)
  let kinds, rng =
    List.fold_left
      (fun (acc, rng) k ->
        let keep, rng = Rng.bool rng in
        ((if keep then k :: acc else acc), rng))
      ([], rng) faults
  in
  let kinds = List.rev kinds in
  let rec go rng k acc =
    if k <= 0 then List.rev acc
    else
      let roll, rng = Rng.int_below rng 5 in
      if roll = 0 && kinds <> [] then
        let f, rng = Plan.random rng layout ~kinds in
        go rng (k - 1) (Inject f :: acc)
      else
        let a, rng = Check.Gen.random_action rng layout in
        go rng (k - 1) (Act a :: acc)
  in
  go rng len []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run ?(flush = true) ?(faults = Plan.all_kinds) ?(len = 40) ~seed ~traces
    layout =
  let zero =
    { traces = 0; events = 0; faults = 0; fault_skips = 0; disabled_steps = 0 }
  in
  let add stats (sum : summary) =
    {
      traces = stats.traces + 1;
      events = stats.events + sum.ran;
      faults = stats.faults + sum.applied;
      fault_skips = stats.fault_skips + sum.skipped;
      disabled_steps = stats.disabled_steps + sum.disabled;
    }
  in
  let rec go stats i =
    if i >= traces then (stats, None)
    else
      let events = events_for ~faults ~seed:(seed + i) ~len layout in
      match replay ~flush layout events with
      | Ok sum -> go (add stats sum) (i + 1)
      | Error failure ->
          let check evs = Result.is_error (replay ~flush layout evs) in
          let shrunk, evals = Check.Shrink.evaluations ~check events in
          let cx_failure =
            match replay ~flush layout shrunk with
            | Error f -> f
            | Ok _ -> failure
          in
          ( { stats with traces = stats.traces + 1 },
            Some
              {
                cx_seed = seed + i;
                cx_events = events;
                cx_shrunk = shrunk;
                cx_failure;
                cx_evals = evals;
              } )
  in
  go zero 0

let to_report stats cx =
  let r = Report.empty "chaos traces" in
  let r = ref r in
  for _ = 1 to stats.traces - (match cx with Some _ -> 1 | None -> 0) do
    r := Report.add_pass !r
  done;
  (match cx with
  | None -> ()
  | Some cx ->
      r :=
        Report.add_failure !r
          ~case:(Printf.sprintf "seed %d" cx.cx_seed)
          ~reason:(Format.asprintf "%a" pp_failure cx.cx_failure));
  !r

(** The chaos driver: randomized fault-injected traces over the
    transition system, with per-step robustness checks.

    A trace is a seed-derived list of {!event}s — transition-system
    actions interleaved with {!Plan} faults — replayed from the booted
    state.  After every event the driver checks:

    - {b graceful degradation}: no event may raise; every failure is a
      structured [result] (an OCaml exception anywhere is itself a
      counterexample);
    - {b transactionality}: a status-reporting hypercall that returns
      non-[Success] must leave the monitor's abstract state unchanged,
      and [enter]/[exit] never touch it (see
      {!Hyperenclave.Hypercall});
    - {b invariants}: the Sec. 5.2 invariants hold after every enabled
      step, until a corrupting fault ({!Plan.corrupts}) puts the state
      outside the reachable set;
    - {b TLB consistency}: every cached translation agrees with the
      current page walk ({!tlb_consistent}) — the check the
      [~flush:false] buggy monitor fails.

    When a trace fails, the driver re-derives it from its seed and
    minimizes it with {!Check.Shrink} before reporting. *)

type event =
  | Act of Security.Transition.action
  | Inject of Plan.t

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string

type failure = {
  at : int;  (** index of the offending event *)
  event : event option;
  check : string;  (** "exception", "transactionality", "status-code",
                       "invariant" or "tlb-consistency" *)
  reason : string;
}

val pp_failure : Format.formatter -> failure -> unit

type summary = {
  ran : int;  (** events executed (a [Truncate] stops the trace) *)
  applied : int;  (** faults injected *)
  skipped : int;  (** faults not applicable in their state *)
  disabled : int;  (** actions the step relation rejected *)
}

type stats = {
  traces : int;
  events : int;
  faults : int;
  fault_skips : int;
  disabled_steps : int;
}

type counterexample = {
  cx_seed : int;  (** replaying this seed re-derives [cx_events] *)
  cx_events : event list;
  cx_shrunk : event list;  (** 1-minimal failing subtrace *)
  cx_failure : failure;  (** what the shrunk trace violates *)
  cx_evals : int;  (** replays the shrinker spent *)
}

val pp_counterexample : Format.formatter -> counterexample -> unit

val tlb_consistent : Security.State.t -> (unit, string) result
(** Every cached translation equals the current walked one. *)

val transactional :
  before:Security.State.t -> after:Security.State.t ->
  Security.Transition.action -> (unit, string * string) result
(** Transactionality of one step: a status-reporting hypercall that
    returns non-[Success] must leave the monitor's abstract state
    unchanged, and [enter]/[exit] never touch it.  [Error] carries
    [(check, reason)] where [check] is ["transactionality"] or
    ["status-code"].  Shared with the model checker, which applies it
    to every executed transition. *)

val replay :
  ?flush:bool -> Hyperenclave.Layout.t -> event list ->
  (summary, failure) result
(** Run one event list from boot with all checks. *)

val events_for :
  ?faults:Plan.kind list -> seed:int -> len:int -> Hyperenclave.Layout.t ->
  event list
(** The deterministic trace a seed denotes ([faults] defaults to
    {!Plan.all_kinds}; pass [[]] for a fault-free trace). *)

val run :
  ?flush:bool -> ?faults:Plan.kind list -> ?len:int ->
  seed:int -> traces:int -> Hyperenclave.Layout.t ->
  stats * counterexample option
(** Replay [traces] seed-derived traces ([seed], [seed+1], ...); stop
    at the first failure and return it shrunk.  [len] defaults to 40
    events per trace. *)

val to_report : stats -> counterexample option -> Mirverif.Report.t

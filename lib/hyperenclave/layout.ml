module Word = Mir.Word

type region = Normal | Mbuf | Monitor | Frame_area | Epc | Outside

let region_equal (a : region) (b : region) = a = b

let pp_region fmt r =
  Format.pp_print_string fmt
    (match r with
    | Normal -> "normal"
    | Mbuf -> "mbuf"
    | Monitor -> "monitor"
    | Frame_area -> "frame-area"
    | Epc -> "epc"
    | Outside -> "outside")

type t = {
  geom : Geometry.t;
  normal_base : Word.t;
  normal_pages : int;
  mbuf_base : Word.t;
  mbuf_pages : int;
  monitor_base : Word.t;
  monitor_pages : int;
  frame_base : Word.t;
  frame_count : int;
  epc_base : Word.t;
  epc_pages : int;
}

let make ~geom ~normal_pages ~mbuf_page_index ~mbuf_pages ~monitor_pages
    ~frame_count ~epc_pages =
  let page = Int64.of_int (Geometry.page_size geom) in
  let off pages base = Int64.add base (Int64.mul page (Int64.of_int pages)) in
  if normal_pages <= 0 || mbuf_pages <= 0 || frame_count <= 0 || epc_pages <= 0
  then Error "layout: all regions need at least one page"
  else if mbuf_page_index < 0 || mbuf_page_index + mbuf_pages > normal_pages then
    Error "layout: marshalling buffer must lie within normal memory"
  else
    let normal_base = 0L in
    let monitor_base = off normal_pages normal_base in
    let frame_base = off monitor_pages monitor_base in
    let epc_base = off frame_count frame_base in
    Ok
      {
        geom;
        normal_base;
        normal_pages;
        mbuf_base = off mbuf_page_index normal_base;
        mbuf_pages;
        monitor_base;
        monitor_pages;
        frame_base;
        frame_count;
        epc_base;
        epc_pages;
      }

let default geom =
  let r =
    if Geometry.page_size geom <= 64 then
      (* tiny geometry: keep every region enumerable *)
      make ~geom ~normal_pages:8 ~mbuf_page_index:6 ~mbuf_pages:1
        ~monitor_pages:2 ~frame_count:24 ~epc_pages:8
    else
      make ~geom ~normal_pages:8192 ~mbuf_page_index:8000 ~mbuf_pages:16
        ~monitor_pages:256 ~frame_count:1024 ~epc_pages:1024
  in
  match r with Ok l -> l | Error msg -> invalid_arg msg

let page_bytes l = Int64.of_int (Geometry.page_size l.geom)

let region_end base pages l = Int64.add base (Int64.mul (page_bytes l) (Int64.of_int pages))

let within base pages l addr =
  Word.le_u base addr && Word.lt_u addr (region_end base pages l)

let mbuf_limit l = region_end l.mbuf_base l.mbuf_pages l
let phys_limit l = region_end l.epc_base l.epc_pages l

let region_of l addr =
  if within l.mbuf_base l.mbuf_pages l addr then Mbuf
  else if within l.normal_base l.normal_pages l addr then Normal
  else if within l.monitor_base l.monitor_pages l addr then Monitor
  else if within l.frame_base l.frame_count l addr then Frame_area
  else if within l.epc_base l.epc_pages l addr then Epc
  else Outside

let frame_addr l i =
  if i < 0 || i >= l.frame_count then
    invalid_arg (Printf.sprintf "frame_addr: frame %d out of 0..%d" i (l.frame_count - 1))
  else Int64.add l.frame_base (Int64.mul (page_bytes l) (Int64.of_int i))

let frame_index l addr =
  if within l.frame_base l.frame_count l addr && Geometry.page_aligned l.geom addr
  then Some (Int64.to_int (Int64.unsigned_div (Int64.sub addr l.frame_base) (page_bytes l)))
  else None

let epc_page_addr l i =
  if i < 0 || i >= l.epc_pages then
    invalid_arg (Printf.sprintf "epc_page_addr: page %d out of 0..%d" i (l.epc_pages - 1))
  else Int64.add l.epc_base (Int64.mul (page_bytes l) (Int64.of_int i))

let epc_page_index l addr =
  if within l.epc_base l.epc_pages l addr && Geometry.page_aligned l.geom addr then
    Some (Int64.to_int (Int64.unsigned_div (Int64.sub addr l.epc_base) (page_bytes l)))
  else None

let in_secure l addr =
  match region_of l addr with
  | Monitor | Frame_area | Epc -> true
  | Normal | Mbuf | Outside -> false

let pp fmt l =
  Format.fprintf fmt
    "@[<v>geometry: %a@,normal: [%a, %a) (mbuf [%a, %a))@,monitor: [%a, %a)@,\
     frames: [%a, %a) (%d frames)@,epc: [%a, %a) (%d pages)@]"
    Geometry.pp l.geom Word.pp l.normal_base Word.pp
    (region_end l.normal_base l.normal_pages l)
    Word.pp l.mbuf_base Word.pp (mbuf_limit l) Word.pp l.monitor_base Word.pp
    (region_end l.monitor_base l.monitor_pages l)
    Word.pp l.frame_base Word.pp
    (region_end l.frame_base l.frame_count l)
    l.frame_count Word.pp l.epc_base Word.pp (phys_limit l) l.epc_pages

module Word = Mir.Word

let ( let* ) = Result.bind

(* Map [pages] pages identity starting at [base] using the largest
   aligned spans available. *)
let map_identity d ~root ~base ~pages ~flags =
  let g = Absdata.geom d in
  let page = Int64.of_int (Geometry.page_size g) in
  let limit = Int64.add base (Int64.mul page (Int64.of_int pages)) in
  let rec best_level va remaining level =
    if level <= 1 then 1
    else
      let span = Geometry.level_span_shift g ~level in
      let span_pages = 1 lsl (span - g.Geometry.page_shift) in
      if
        Word.equal (Word.extract va ~lo:0 ~len:span) Word.zero
        && remaining >= span_pages
      then level
      else best_level va remaining (level - 1)
  in
  let rec go d va =
    if not (Word.lt_u va limit) then Ok d
    else
      (* unsigned: with an identity-map limit in the upper half of the
         address space (>= 0x8000_0000_0000_0000) the byte distance can
         exceed [Int64.max_int], and signed division would go negative *)
      let remaining = Int64.to_int (Int64.unsigned_div (Int64.sub limit va) page) in
      let level = best_level va remaining g.Geometry.levels in
      let* d =
        if level = 1 then Pt_flat.map_page d ~root ~va ~pa:va flags
        else Pt_flat.map_huge d ~root ~va ~pa:va ~level flags
      in
      let span_pages = 1 lsl (Geometry.level_span_shift g ~level - g.Geometry.page_shift) in
      go d (Int64.add va (Int64.mul page (Int64.of_int span_pages)))
  in
  go d base

let boot layout =
  let d = Absdata.create layout in
  let* d, root = Pt_flat.create_table d in
  let* d =
    map_identity d ~root ~base:layout.Layout.normal_base
      ~pages:layout.Layout.normal_pages ~flags:Flags.user_rw
  in
  Ok { d with Absdata.os_ept_root = Some root }

let cache : (Layout.t, Absdata.t) Hashtbl.t = Hashtbl.create 4

let booted layout =
  match Hashtbl.find_opt cache layout with
  | Some d -> d
  | None -> (
      match boot layout with
      | Ok d ->
          Hashtbl.add cache layout d;
          d
      | Error msg -> invalid_arg (Printf.sprintf "Boot.booted: %s" msg))

let os_ept_root (d : Absdata.t) =
  match d.Absdata.os_ept_root with
  | Some r -> Ok r
  | None -> Error "system not booted: no OS EPT"

module Layer = Mirverif.Layer

let compile_cache : (Layout.t, Rustlite.Pipeline.output) Hashtbl.t = Hashtbl.create 4

let compiled layout =
  match Hashtbl.find_opt compile_cache layout with
  | Some o -> o
  | None -> (
      match Rustlite.Pipeline.compile (Mem_source.source layout) with
      | Ok o ->
          Hashtbl.add compile_cache layout o;
          o
      | Error msg ->
          invalid_arg (Printf.sprintf "memory module failed to compile: %s" msg))

let stack_cache : (Layout.t, Absdata.t Layer.stack) Hashtbl.t = Hashtbl.create 4

let build_stack layout =
  let out = compiled layout in
  let tagged = Mem_spec.all layout in
  List.map
    (fun lname ->
      if String.equal lname "Trusted" then
        Layer.make ~name:lname ~exports:Trusted.all ~code:[]
      else
        let specs =
          List.filter_map
            (fun (t : Mem_spec.t) ->
              if String.equal t.Mem_spec.layer lname then Some t.Mem_spec.spec
              else None)
            tagged
        in
        let code =
          List.filter_map
            (fun (s : Absdata.t Mirverif.Spec.t) ->
              Mir.Syntax.find_body out.Rustlite.Pipeline.program s.Mirverif.Spec.name)
            specs
        in
        Layer.make ~name:lname ~exports:specs ~code)
    Mem_spec.layer_names

let stack layout =
  match Hashtbl.find_opt stack_cache layout with
  | Some s -> s
  | None ->
      let s = build_stack layout in
      Hashtbl.add stack_cache layout s;
      s

let env_for layout ~layer = Layer.env_for (stack layout) ~layer

(* Closure-compiled environments for the verification hot path.  One
   compiled form per (layout, layer), backed by a shared per-body memo
   so bodies reused across layers compile once.  Guarded by a mutex:
   [warm] fills the table from a single domain before the pool starts,
   but chaos batteries and tests may also compile lazily. *)
let compile_memo : Absdata.t Mir.Compile.cache = Mir.Compile.cache ()

let cenv_mutex = Mutex.create ()

let cenv_cache : (Layout.t * string, Absdata.t Mir.Compile.t) Hashtbl.t =
  Hashtbl.create 32

let compiled_for layout ~layer =
  Mutex.lock cenv_mutex;
  match Hashtbl.find_opt cenv_cache (layout, layer) with
  | Some ct ->
      Mutex.unlock cenv_mutex;
      ct
  | None ->
      let ct =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock cenv_mutex)
          (fun () ->
            let ct = Mir.Compile.compile ~cache:compile_memo (env_for layout ~layer) in
            Hashtbl.add cenv_cache (layout, layer) ct;
            ct)
      in
      ct

let layer_of_function layout name =
  List.find_opt
    (fun (t : Mem_spec.t) -> String.equal t.Mem_spec.spec.Mirverif.Spec.name name)
    (Mem_spec.all layout)
  |> Option.map (fun (t : Mem_spec.t) -> t.Mem_spec.layer)

let functions_of_layer layout layer =
  List.filter_map
    (fun (t : Mem_spec.t) ->
      if String.equal t.Mem_spec.layer layer then
        Some t.Mem_spec.spec.Mirverif.Spec.name
      else None)
    (Mem_spec.all layout)

let verified_function_count layout =
  List.length (compiled layout).Rustlite.Pipeline.function_names

let layer_count = List.length Mem_spec.layer_names

let stratification_ok layout = Layer.check_stratified (stack layout)

let warm layout =
  (* populate every layout-keyed memo table from a single domain; the
     tables are plain Hashtbls, so the first insertion must not race
     with reads from worker domains *)
  ignore (compiled layout);
  ignore (stack layout);
  ignore (Boot.booted layout);
  (* pre-compile every layer's closure form so worker domains only
     read the compiled-env table *)
  List.iter (fun layer -> ignore (compiled_for layout ~layer)) Mem_spec.layer_names

module Word = Mir.Word

let ( let* ) = Result.bind

type node =
  | Term of { pa : Word.t; flags : Flags.t }
  | Table of { frame : int; entries : node option array }

type state = {
  geom : Geometry.t;
  layout : Layout.t;
  falloc : Frame_alloc.t;
  root : node;
}

let root_frame st =
  match st.root with
  | Table { frame; _ } -> Ok frame
  | Term _ -> Error "root is not a table"

let empty_table geom ~frame =
  Table { frame; entries = Array.make (Geometry.entries_per_table geom) None }

let create geom layout falloc =
  let* falloc, frame = Frame_alloc.alloc falloc in
  if frame >= layout.Layout.frame_count then Error "root frame outside frame area"
  else Ok { geom; layout; falloc; root = empty_table geom ~frame }

let set_entry entries index sub =
  let entries' = Array.copy entries in
  entries'.(index) <- sub;
  entries'

let check_va st va =
  if Word.lt_u va (Geometry.va_limit st.geom) then Ok ()
  else Error (Printf.sprintf "virtual address %s not translatable" (Word.to_hex va))

(* Insert a terminal at [target_level], allocating intermediate tables. *)
let insert_terminal st ~va ~target_level term =
  let g = st.geom in
  let rec go falloc node level =
    match node with
    | Term _ -> Error (Printf.sprintf "huge mapping at level %d blocks the walk" level)
    | Table { frame; entries } ->
        let index = Geometry.va_index g ~level va in
        if level = target_level then
          match entries.(index) with
          | Some _ ->
              Error
                (Printf.sprintf "va %s already mapped at level %d" (Word.to_hex va) level)
          | None ->
              Ok (falloc, Table { frame; entries = set_entry entries index (Some term) })
        else
          let* falloc, child =
            match entries.(index) with
            | Some child -> Ok (falloc, child)
            | None ->
                let* falloc, f = Frame_alloc.alloc falloc in
                if f >= st.layout.Layout.frame_count then
                  Error "allocated table frame outside frame area"
                else Ok (falloc, empty_table g ~frame:f)
          in
          let* falloc, child' = go falloc child (level - 1) in
          Ok
            ( falloc,
              Table { frame; entries = set_entry entries index (Some child') } )
  in
  let* falloc, root = go st.falloc st.root g.Geometry.levels in
  Ok { st with falloc; root }

let map_page st ~va ~pa flags =
  let g = st.geom in
  let* () = check_va st va in
  if not (Geometry.page_aligned g va) then Error "map_page: va not page-aligned"
  else if not (Geometry.page_aligned g pa) then Error "map_page: pa not page-aligned"
  else if not (Word.lt_u pa (Word.shift_left Word.W64 1L 57)) then
    Error "map_page: pa exceeds the address-field capacity"
  else if not flags.Flags.present then Error "terminal mapping must be present"
  else if flags.Flags.huge then Error "map_page: level-1 mapping cannot be huge"
  else insert_terminal st ~va ~target_level:1 (Term { pa; flags })

let map_huge st ~va ~pa ~level flags =
  let g = st.geom in
  let* () = check_va st va in
  if level <= 1 || level > g.Geometry.levels then
    Error (Printf.sprintf "map_huge: invalid level %d" level)
  else
    let span = Geometry.level_span_shift g ~level in
    if not (Word.equal (Word.extract va ~lo:0 ~len:span) Word.zero) then
      Error "map_huge: va not span-aligned"
    else if not (Word.equal (Word.extract pa ~lo:0 ~len:span) Word.zero) then
      Error "map_huge: pa not span-aligned"
    else if not flags.Flags.present then Error "terminal mapping must be present"
    else
      insert_terminal st ~va ~target_level:level
        (Term { pa; flags = Flags.with_huge flags })

let unmap_page st ~va =
  let g = st.geom in
  let* () = check_va st va in
  let rec go node level =
    match node with
    (* recursion only descends into [Table] children, but the root can
       be a [Term] in a corrupted state (fault injection flips nodes);
       fail typed instead of panicking the whole pass *)
    | Term _ -> Error "corrupt tree: unmap walk reached a terminal node"
    | Table { frame; entries } -> (
        let index = Geometry.va_index g ~level va in
        match entries.(index) with
        | None -> Error (Printf.sprintf "va %s not mapped" (Word.to_hex va))
        | Some (Term _) ->
            Ok (Table { frame; entries = set_entry entries index None })
        | Some (Table _ as child) ->
            if level = 1 then Error "corrupt tree: table below level 1"
            else
              let* child' = go child (level - 1) in
              Ok (Table { frame; entries = set_entry entries index (Some child') }))
  in
  let* root = go st.root g.Geometry.levels in
  Ok { st with root }

let query st ~va =
  let g = st.geom in
  let* () = check_va st va in
  let rec go node level =
    match node with
    | Term { pa; flags } ->
        let span = Geometry.level_span_shift g ~level:(level + 1) in
        let page_bits =
          Word.shift_left Word.W64
            (Word.extract va ~lo:g.Geometry.page_shift
               ~len:(span - g.Geometry.page_shift))
            g.Geometry.page_shift
        in
        Ok (Some (Word.logor pa page_bits, flags))
    | Table { entries; _ } -> (
        let index = Geometry.va_index g ~level va in
        match entries.(index) with
        | None -> Ok None
        | Some child ->
            if level = 1 then
              match child with
              | Term { pa; flags } -> Ok (Some (pa, flags))
              | Table _ -> Error "corrupt tree: table below level 1"
            else go child (level - 1))
  in
  go st.root g.Geometry.levels

let translate st ~va =
  let* q = query st ~va in
  match q with
  | None -> Ok None
  | Some (page, flags) ->
      Ok (Some (Word.logor page (Geometry.page_offset st.geom va), flags))

let mappings st =
  let g = st.geom in
  let page = Int64.of_int (Geometry.page_size g) in
  let expand level va pa flags acc =
    let span = Geometry.level_span_shift g ~level in
    let npages = 1 lsl (span - g.Geometry.page_shift) in
    let out = ref acc in
    for i = npages - 1 downto 0 do
      let off = Int64.mul page (Int64.of_int i) in
      out := (Int64.add va off, Int64.add pa off, flags) :: !out
    done;
    !out
  in
  (* A table node carries its own level; a Term child of a level-l
     table is recursed with l-1, so it spans level (recursion level + 1). *)
  let rec go node level va_base acc =
    match node with
    | Term { pa; flags } -> expand (level + 1) va_base pa flags acc
    | Table { entries; _ } ->
        let acc = ref acc in
        for index = Array.length entries - 1 downto 0 do
          match entries.(index) with
          | None -> ()
          | Some child ->
              let va =
                Int64.add va_base
                  (Int64.shift_left (Int64.of_int index)
                     (Geometry.level_span_shift g ~level))
              in
              acc := go child (level - 1) va !acc
        done;
        !acc
  in
  go st.root g.Geometry.levels 0L []
  |> List.sort (fun (a, _, _) (b, _, _) -> Word.compare_u a b)

let wf st =
  let g = st.geom in
  let seen = Hashtbl.create 16 in
  let rec go node level =
    match node with
    | Term { pa; flags } ->
        let span = Geometry.level_span_shift g ~level:(level + 1) in
        if not flags.Flags.present then Error "terminal entry not present"
        else if not (Word.equal (Word.extract pa ~lo:0 ~len:span) Word.zero) then
          Error (Printf.sprintf "terminal pa %s not aligned to its span" (Word.to_hex pa))
        else if not (Bool.equal flags.Flags.huge (level + 1 > 1)) then
          Error "huge flag must be set exactly on terminals above level 1"
        else Ok ()
    | Table { frame; entries } ->
        if level < 1 then Error "table below level 1"
        else if frame < 0 || frame >= st.layout.Layout.frame_count then
          Error (Printf.sprintf "table frame %d outside frame area" frame)
        else if not (Frame_alloc.is_allocated st.falloc frame) then
          Error (Printf.sprintf "table frame %d not allocated" frame)
        else if Hashtbl.mem seen frame then
          Error (Printf.sprintf "table frame %d shared: not a tree" frame)
        else (
          Hashtbl.add seen frame ();
          if Array.length entries <> Geometry.entries_per_table g then
            Error "table has wrong arity"
          else
            let rec each i =
              if i >= Array.length entries then Ok ()
              else
                match entries.(i) with
                | None -> each (i + 1)
                | Some (Term _ as t) ->
                    let* () = go t (level - 1) in
                    each (i + 1)
                | Some (Table _ as t) ->
                    if level = 1 then Error "table nested below level 1"
                    else
                      let* () = go t (level - 1) in
                      each (i + 1)
            in
            each 0)
  in
  match st.root with
  | Term _ -> Error "root is not a table"
  | Table _ -> go st.root g.Geometry.levels

let rec node_equal a b =
  match (a, b) with
  | Term x, Term y -> Word.equal x.pa y.pa && Flags.equal x.flags y.flags
  | Table x, Table y ->
      x.frame = y.frame
      && Array.length x.entries = Array.length y.entries
      && (let n = Array.length x.entries in
          let rec go i =
            i >= n
            || Option.equal node_equal x.entries.(i) y.entries.(i) && go (i + 1)
          in
          go 0)
  | (Term _ | Table _), _ -> false

let equal a b = Frame_alloc.equal a.falloc b.falloc && node_equal a.root b.root

let pp fmt st =
  let g = st.geom in
  let rec go fmt (node, level, indent) =
    match node with
    | Term { pa; flags } ->
        Format.fprintf fmt "%s-> %a %a@," indent (Word.pp) pa Flags.pp flags
    | Table { frame; entries } ->
        Format.fprintf fmt "%stable@%d (level %d)@," indent frame level;
        Array.iteri
          (fun i e ->
            match e with
            | None -> ()
            | Some child ->
                Format.fprintf fmt "%s[%d]:@," indent i;
                go fmt (child, level - 1, indent ^ "  "))
          entries
  in
  Format.fprintf fmt "@[<v>";
  go fmt (st.root, g.Geometry.levels, "");
  Format.fprintf fmt "@]"

(** The 15-layer stack (paper Sec. 4).

    Bottom-first: Trusted, PteOps, FrameAlloc, PhysEntry, TableOps,
    WalkRead, WalkAlloc, PtMap, PtQuery, AddrSpace, Epcm, MarshBuf,
    EnclaveMem, Hypercalls, IsolationModel.  The trusted layer exports
    the axiomatized primitives and has no code; IsolationModel is the
    pure abstract model the security proofs live in (no code either);
    the 49 functions of the compiled memory module are distributed over
    the 13 layers in between. *)

val compiled : Layout.t -> Rustlite.Pipeline.output
(** The memory module compiled for this layout (memoized). *)

val stack : Layout.t -> Absdata.t Mirverif.Layer.stack
(** The full stack; raises on compile failure (the source is ours). *)

val env_for : Layout.t -> layer:string -> Absdata.t Mir.Interp.env
(** Interpreter environment for checking one layer's code. *)

val compile_memo : Absdata.t Mir.Compile.cache
(** Shared per-body closure-compilation memo: bodies are keyed by
    MIRlight digest + call-site linkage, so chaos-wrapped copies of an
    environment (same primitive names) reuse every compiled body. *)

val compiled_for : Layout.t -> layer:string -> Absdata.t Mir.Compile.t
(** Closure-compiled environment for one layer (memoized per
    [(layout, layer)], mutex-guarded; pre-filled by {!warm}). *)

val layer_of_function : Layout.t -> string -> string option
val functions_of_layer : Layout.t -> string -> string list

val verified_function_count : Layout.t -> int
val layer_count : int

val stratification_ok : Layout.t -> Mirverif.Layer.stratification_issue list
(** Syntactic no-upcall check over the stack (empty = ok). *)

val warm : Layout.t -> unit
(** Force the layout-keyed memo tables ({!compiled}, {!stack},
    {!compiled_for} for every layer, the boot state) from the calling
    domain.  The parallel verification engine
    calls this before spawning workers: afterwards the tables are only
    read, which is safe concurrently. *)

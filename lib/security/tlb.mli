(** A tagged translation lookaside buffer.

    HyperEnclave flushes the TLB entries of a domain when switching
    vCPU modes (paper Sec. 2.1); the correctness obligation this
    models is {e TLB consistency}: cached translations must never
    outlive the page-table entries they were filled from.  Entries are
    tagged by principal (VPID/ASID style), so context switches need no
    flush, but any hypercall that removes or changes a mapping must
    invalidate the affected entries — a monitor that forgets the flush
    leaves a stale translation that bypasses spatial isolation
    (exercised by the [stale-tlb] tests).

    The TLB is {e not} part of any principal's observation: when
    consistent, a cached translation equals the walked one, so caching
    is semantically invisible. *)

type t

type entry = { hpa_page : Mir.Word.t; flags : Hyperenclave.Flags.t }

val empty : t

val lookup : t -> Principal.t -> va_page:Mir.Word.t -> entry option

val fill : t -> Principal.t -> va_page:Mir.Word.t -> entry -> t

val flush_va : t -> Principal.t -> va_page:Mir.Word.t -> t
(** Invalidate one tagged entry (INVLPG). *)

val flush_principal : t -> Principal.t -> t
(** Invalidate everything tagged with one principal. *)

val flush_all : t -> t

val entry_count : t -> int

val to_list : t -> (Principal.t * Mir.Word.t * entry) list
(** Every cached translation as [(principal, va_page, entry)], in key
    order.  The chaos driver's TLB-consistency check folds over this:
    a consistent cache agrees with the current page walk everywhere. *)

val equal : t -> t -> bool

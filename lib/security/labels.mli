(** Secret-flow policy for the {!Analysis.Secret_flow} lint, derived
    from the physical {!Hyperenclave.Layout}.

    Sources: EPC contents, frame-area page-table words and EPCM
    ownership records (eid/va).  Sanctioned declassification: writes
    provably confined to the marshalling-buffer window.  Sinks: writes
    provably outside secure memory, and the return values of hypercall
    handlers (the [hc_] entry points / the Hypercalls layer). *)

type read_class = Read_secret of string | Read_public
type write_class = Declassified | Internal | Observable

val classify_read : Hyperenclave.Layout.t -> Analysis.Interval.t -> read_class
(** How a [phys_read] at an address in the given interval is
    labelled; the string is the source tag for messages. *)

val classify_write :
  Hyperenclave.Layout.t -> Analysis.Interval.t -> write_class
(** How a [phys_write] target interval is classified: wholly inside
    the mbuf window is declassified, possibly-secure is
    monitor-internal, provably neither is OS-observable. *)

val boundary : Hyperenclave.Layout.t -> string -> bool
(** Is this function's return value OS-observable (hypercall
    handler)? *)

val prim :
  Hyperenclave.Layout.t ->
  func:string ->
  args:Analysis.Secret_flow.A.value list ->
  (Analysis.Secret_flow.A.value * Analysis.Taint.Labels.t) option

val secret_flow_config :
  Hyperenclave.Layout.t -> Mir.Syntax.program -> Analysis.Secret_flow.config

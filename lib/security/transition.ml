open Hyperenclave
module Word = Mir.Word

let ( let* ) = Result.bind

type action =
  | Const of { dst : int; value : Word.t }
  | Compute of { dst : int; src1 : int; src2 : int }
  | Load of { dst : int; va : Word.t }
  | Store of { src : int; va : Word.t }
  | Hc_create of { elrange_base : Word.t; elrange_pages : int; mbuf_va : Word.t }
  | Hc_add_page of { eid : int; va : Word.t }
  | Hc_remove_page of { eid : int; va : Word.t }
  | Hc_init_done of { eid : int }
  | Hc_enter of { eid : int }
  | Hc_exit

let pp_action fmt = function
  | Const { dst; value } -> Format.fprintf fmt "r%d := %a" dst Word.pp value
  | Compute { dst; src1; src2 } -> Format.fprintf fmt "r%d := r%d + r%d" dst src1 src2
  | Load { dst; va } -> Format.fprintf fmt "r%d := [%a]" dst Word.pp va
  | Store { src; va } -> Format.fprintf fmt "[%a] := r%d" Word.pp va src
  | Hc_create { elrange_base; elrange_pages; mbuf_va } ->
      Format.fprintf fmt "hc_create(elrange=%a+%d, mbuf=%a)" Word.pp elrange_base
        elrange_pages Word.pp mbuf_va
  | Hc_add_page { eid; va } -> Format.fprintf fmt "hc_add_page(%d, %a)" eid Word.pp va
  | Hc_remove_page { eid; va } ->
      Format.fprintf fmt "hc_remove_page(%d, %a)" eid Word.pp va
  | Hc_init_done { eid } -> Format.fprintf fmt "hc_init_done(%d)" eid
  | Hc_enter { eid } -> Format.fprintf fmt "hc_enter(%d)" eid
  | Hc_exit -> Format.pp_print_string fmt "hc_exit"

let action_to_string a = Format.asprintf "%a" pp_action a

let aligned8 va = Word.equal (Word.extract va ~lo:0 ~len:3) Word.zero

(* Resolve an active-principal access; permission is the conjunction of
   the stages' flags, and guests access memory as user.  Translations
   go through the tagged TLB: a hit skips the walk, a successful walk
   fills the cache.  Returns the (possibly updated) state alongside the
   host-physical address. *)
let check_perms ~write (flags : Flags.t) =
  if not flags.Flags.present then Error "not present"
  else if not flags.Flags.user then Error "supervisor-only mapping"
  else if write && not flags.Flags.write then Error "write to read-only mapping"
  else Ok ()

let resolve (st : State.t) va ~write =
  let d = st.State.mon in
  let geom = Absdata.geom d in
  let va_page = Geometry.page_base geom va in
  let offset = Geometry.page_offset geom va in
  match Tlb.lookup st.State.tlb st.State.active ~va_page with
  | Some entry ->
      let* () = check_perms ~write entry.Tlb.flags in
      Ok (st, Int64.logor entry.Tlb.hpa_page offset)
  | None -> (
      let* translated =
        match st.State.active with
        | Principal.Os -> Nested.os_translate d ~gpa:va
        | Principal.Enclave eid ->
            let* e = Absdata.find_enclave d eid in
            Nested.enclave_translate d e ~va
      in
      match translated with
      | None -> Error (Printf.sprintf "page fault at %s" (Word.to_hex va))
      | Some (hpa, flags) ->
          let* () = check_perms ~write flags in
          let tlb =
            Tlb.fill st.State.tlb st.State.active ~va_page
              { Tlb.hpa_page = Geometry.page_base geom hpa; flags }
          in
          Ok ({ st with State.tlb }, hpa))

let require_os (st : State.t) =
  match st.State.active with
  | Principal.Os -> Ok ()
  | Principal.Enclave _ -> Error "hypercall reserved to the primary OS"

let set_status st status =
  State.with_reg st 0 (Hypercall.status_code status)

let in_mbuf (st : State.t) hpa =
  Layout.region_equal
    (Layout.region_of st.State.mon.Absdata.layout hpa)
    Layout.Mbuf

let step ?(flush = true) (st : State.t) action =
  match action with
  | Const { dst; value } -> State.with_reg st dst value
  | Compute { dst; src1; src2 } ->
      let* a = State.reg st src1 in
      let* b = State.reg st src2 in
      State.with_reg st dst (Word.add Word.W64 a b)
  | Load { dst; va } ->
      if not (aligned8 va) then Error "unaligned load"
      else
        let* st, hpa = resolve st va ~write:false in
        if in_mbuf st hpa then
          (* declassified read: the reader's own oracle supplies the value *)
          let value, st = State.take_oracle st st.State.active in
          State.with_reg st dst value
        else
          let* value = Phys_mem.read64 st.State.mon.Absdata.phys hpa in
          State.with_reg st dst value
  | Store { src; va } ->
      if not (aligned8 va) then Error "unaligned store"
      else
        let* st, hpa = resolve st va ~write:true in
        if in_mbuf st hpa then Ok st (* declassified: formally ignored *)
        else
          let* value = State.reg st src in
          let* phys = Phys_mem.write64 st.State.mon.Absdata.phys hpa value in
          Ok { st with State.mon = { st.State.mon with Absdata.phys } }
  | Hc_create { elrange_base; elrange_pages; mbuf_va } ->
      let* () = require_os st in
      let o = Hypercall.create st.State.mon ~elrange_base ~elrange_pages ~mbuf_va in
      let* st = set_status { st with State.mon = o.Hypercall.d } o.Hypercall.status in
      State.with_reg st 1 (Int64.of_int o.Hypercall.value)
  | Hc_add_page { eid; va } ->
      let* () = require_os st in
      let o = Hypercall.add_page st.State.mon ~eid ~va in
      set_status { st with State.mon = o.Hypercall.d } o.Hypercall.status
  | Hc_remove_page { eid; va } ->
      let* () = require_os st in
      let o = Hypercall.remove_page st.State.mon ~eid ~va in
      let st = { st with State.mon = o.Hypercall.d } in
      (* TLB consistency: the removed translation must be invalidated.
         [flush:false] models the buggy monitor the stale-TLB tests
         exhibit. *)
      let st =
        if flush && Hypercall.status_equal o.Hypercall.status Hypercall.Success then
          let geom = Absdata.geom st.State.mon in
          {
            st with
            State.tlb =
              Tlb.flush_va st.State.tlb (Principal.Enclave eid)
                ~va_page:(Geometry.page_base geom va);
          }
        else st
      in
      set_status st o.Hypercall.status
  | Hc_init_done { eid } ->
      let* () = require_os st in
      let o = Hypercall.init_done st.State.mon ~eid in
      set_status { st with State.mon = o.Hypercall.d } o.Hypercall.status
  | Hc_enter { eid } ->
      let* () = require_os st in
      let* e = Absdata.find_enclave st.State.mon eid in
      if not (Enclave.lifecycle_equal e.Enclave.state Enclave.Initialized) then
        Error "enter of uninitialized enclave"
      else
        let target = Principal.Enclave eid in
        let ctx = Principal.Map.add Principal.Os st.State.regs st.State.ctx in
        let regs = State.saved_ctx st target in
        Ok { st with State.active = target; regs; ctx = Principal.Map.remove target ctx }
  | Hc_exit -> (
      match st.State.active with
      | Principal.Os -> Error "exit outside an enclave"
      | Principal.Enclave _ as me ->
          let ctx = Principal.Map.add me st.State.regs st.State.ctx in
          let regs = State.saved_ctx st Principal.Os in
          Ok
            {
              st with
              State.active = Principal.Os;
              regs;
              ctx = Principal.Map.remove Principal.Os ctx;
            })

let enabled st action = Result.is_ok (step st action)

(* ------------------------------------------------------------------ *)
(* Total enabledness enumerator.

   [step] decides enabledness implicitly, by failing somewhere inside
   the per-action execution.  The model checker needs the question
   answered without executing — and without the TLB fill [resolve]
   performs on a successful walk — so the preconditions are factored
   out here, mirroring [step] exactly.  The agreement is pinned by a
   property test: for every state and action,
   [Result.is_ok (precondition st a) = Result.is_ok (step st a)]. *)

(* [resolve] without the TLB fill: same hit/walk/permission decisions,
   same error strings, no state change. *)
let probe_resolve (st : State.t) va ~write =
  let d = st.State.mon in
  let geom = Absdata.geom d in
  let va_page = Geometry.page_base geom va in
  let offset = Geometry.page_offset geom va in
  match Tlb.lookup st.State.tlb st.State.active ~va_page with
  | Some entry ->
      let* () = check_perms ~write entry.Tlb.flags in
      Ok (Int64.logor entry.Tlb.hpa_page offset)
  | None -> (
      let* translated =
        match st.State.active with
        | Principal.Os -> Nested.os_translate d ~gpa:va
        | Principal.Enclave eid ->
            let* e = Absdata.find_enclave d eid in
            Nested.enclave_translate d e ~va
      in
      match translated with
      | None -> Error (Printf.sprintf "page fault at %s" (Word.to_hex va))
      | Some (hpa, flags) ->
          let* () = check_perms ~write flags in
          Ok hpa)

let reg_ok i =
  if i < 0 || i >= State.nregs then
    Error (Printf.sprintf "register %d out of range" i)
  else Ok ()

let precondition (st : State.t) action =
  match action with
  | Const { dst; _ } -> reg_ok dst
  | Compute { dst; src1; src2 } ->
      let* () = reg_ok src1 in
      let* () = reg_ok src2 in
      reg_ok dst
  | Load { dst; va } ->
      if not (aligned8 va) then Error "unaligned load"
      else
        let* hpa = probe_resolve st va ~write:false in
        if in_mbuf st hpa then reg_ok dst
        else
          let* _ = Phys_mem.read64 st.State.mon.Absdata.phys hpa in
          reg_ok dst
  | Store { src; va } ->
      if not (aligned8 va) then Error "unaligned store"
      else
        let* hpa = probe_resolve st va ~write:true in
        if in_mbuf st hpa then Ok () (* declassified: the source is never read *)
        else
          let* value = State.reg st src in
          let* _ = Phys_mem.write64 st.State.mon.Absdata.phys hpa value in
          Ok ()
  | Hc_create _ | Hc_add_page _ | Hc_remove_page _ | Hc_init_done _ ->
      (* status-reporting hypercalls: any failure becomes a status code
         in reg 0, transactionally, so for the OS they are always
         enabled *)
      require_os st
  | Hc_enter { eid } ->
      let* () = require_os st in
      let* e = Absdata.find_enclave st.State.mon eid in
      if not (Enclave.lifecycle_equal e.Enclave.state Enclave.Initialized) then
        Error "enter of uninitialized enclave"
      else Ok ()
  | Hc_exit -> (
      match st.State.active with
      | Principal.Os -> Error "exit outside an enclave"
      | Principal.Enclave _ -> Ok ())

let enabled_of st actions =
  List.filter (fun a -> Result.is_ok (precondition st a)) actions

let cpu_local = function
  | Const _ | Compute _ | Load _ | Store _ -> true
  | Hc_create _ | Hc_add_page _ | Hc_remove_page _ | Hc_init_done _ | Hc_enter _
  | Hc_exit ->
      false

let configures (st : State.t) p action =
  match action with
  | Const _ | Compute _ | Load _ | Store _ -> false
  | Hc_create _ ->
      (* the enclave about to be created is the observer-to-be *)
      Principal.equal p (Principal.Enclave st.State.mon.Absdata.next_eid)
  | Hc_add_page { eid; _ } | Hc_remove_page { eid; _ } | Hc_init_done { eid } ->
      Principal.equal p (Principal.Enclave eid)
  | Hc_enter { eid } ->
      (* transfers activity from the OS to the enclave: both views move *)
      Principal.equal p (Principal.Enclave eid) || Principal.equal p Principal.Os
  | Hc_exit ->
      Principal.equal p st.State.active || Principal.equal p Principal.Os

let mon_step f (st : State.t) = { st with State.mon = f st.State.mon }

(* Secret-flow policy: what the taint lint treats as a source, a sink
   and sanctioned declassification, derived from the physical layout.

   Sources (paper Sec. 2.1 threat model): enclave-owned state the
   primary OS must never observe — the contents of the EPC, the page
   tables the monitor builds in the frame area (a PTE word reveals an
   enclave's address-space shape), and the EPCM ownership records
   (eid, va).  EPCM state bits (free/valid) and the frame-allocator
   bitmap only describe monitor-internal bookkeeping and are public.

   Sinks: any physical write whose target is provably outside secure
   memory — the primary OS can read normal memory at will.  The one
   sanctioned channel is the marshalling buffer window: a write
   provably confined to it is declassification by design.  A write
   that may still land in secure memory is monitor-internal (the
   bounds and invariant passes own those), not a leak.

   Boundary: hypercall handlers.  Their return value lands in the
   primary OS's registers, so a secret-labelled return is a leak even
   without a memory write. *)

module Word = Mir.Word
module Itv = Analysis.Interval
module TL = Analysis.Taint.Labels
module Dom = Analysis.Taint.Dom
module SF = Analysis.Secret_flow

type read_class = Read_secret of string | Read_public
type write_class = Declassified | Internal | Observable

(* [lo,hi] (inclusive) vs [base,limit) *)
let intersects lo hi base limit = Word.lt_u lo limit && Word.le_u base hi
let wholly_within lo hi base limit = Word.le_u base lo && Word.lt_u hi limit

let frame_limit (l : Hyperenclave.Layout.t) =
  Word.add Word.W64 l.frame_base
    (Word.of_int Word.W64
       (l.frame_count * Hyperenclave.Geometry.page_size l.geom))

let epc_limit (l : Hyperenclave.Layout.t) =
  Word.add Word.W64 l.epc_base
    (Word.of_int Word.W64 (l.epc_pages * Hyperenclave.Geometry.page_size l.geom))

let classify_read (l : Hyperenclave.Layout.t) iv =
  match Itv.bounds iv with
  | None -> Read_public (* unreachable read *)
  | Some (lo, hi) ->
      if wholly_within lo hi l.mbuf_base (Hyperenclave.Layout.mbuf_limit l)
      then Read_public (* OS-shared window: already public *)
      else if intersects lo hi l.frame_base (frame_limit l) then
        Read_secret "phys_read:frame_area"
      else if intersects lo hi l.epc_base (epc_limit l) then
        Read_secret "phys_read:epc"
      else Read_public

let classify_write (l : Hyperenclave.Layout.t) iv =
  match Itv.bounds iv with
  | None -> Internal (* unreachable write *)
  | Some (lo, hi) ->
      if wholly_within lo hi l.mbuf_base (Hyperenclave.Layout.mbuf_limit l)
      then Declassified
      else if
        intersects lo hi l.monitor_base (Hyperenclave.Layout.phys_limit l)
      then Internal
      else Observable

let boundary (l : Hyperenclave.Layout.t) fn =
  (String.length fn >= 3 && String.equal (String.sub fn 0 3) "hc_")
  ||
  match Hyperenclave.Layers.layer_of_function l fn with
  | Some layer -> String.equal layer "Hypercalls"
  | None -> false

(* Taint models of the trusted primitives (Trusted.all).  Each yields
   the abstract result and the labels reaching an observable sink at
   the call (empty = not a sink here). *)
let prim (l : Hyperenclave.Layout.t) ~func ~(args : SF.A.value list) =
  let arg i =
    match List.nth_opt args i with
    | Some v -> SF.A.collapse v
    | None -> Dom.top
  in
  let leaf iv lbl = Analysis.Absint.Leaf (Dom.make iv lbl) in
  let pure iv = Some (leaf iv TL.empty, TL.empty) in
  match func with
  | "phys_read" ->
      let pa = arg 0 in
      let lbl =
        match classify_read l pa.Dom.iv with
        | Read_secret src -> TL.join (TL.secret ~src) pa.Dom.lbl
        | Read_public -> pa.Dom.lbl
      in
      Some (leaf Itv.top lbl, TL.empty)
  | "phys_write" ->
      let pa = arg 0 and value = arg 1 in
      let eff =
        match classify_write l pa.Dom.iv with
        | Observable -> TL.join pa.Dom.lbl value.Dom.lbl
        | Declassified | Internal -> TL.empty
      in
      Some (leaf Itv.top TL.empty, eff)
  | "falloc_bitmap_read" -> pure Itv.top
  | "falloc_bitmap_write" -> pure Itv.top
  | "epcm_state" -> pure Itv.boolean
  | "epcm_eid" -> Some (leaf Itv.top (TL.secret ~src:"epcm_eid"), TL.empty)
  | "epcm_va" -> Some (leaf Itv.top (TL.secret ~src:"epcm_va"), TL.empty)
  | "epcm_write" -> pure Itv.top
  | _ -> None

let secret_flow_config layout program =
  { SF.program; prim = prim layout; boundary = boundary layout }

(** The system's step relation (paper Sec. 5.1).

    CPU-local computation is nondeterministic in the paper; here it is
    parameterized by the concrete [Compute]/[Const] actions the checker
    chooses to exercise.  [Load]/[Store] resolve their address with the
    verified page walk — nested for enclaves, EPT-only for the OS —
    and treat the marshalling buffer with oracle semantics
    (Sec. 5.4).  Hypercalls apply the functional models of
    {!Hyperenclave.Hypercall}; [Enter]/[Exit] swap register contexts
    and the active principal.

    [Error] from {!step} means the action is {e disabled} in that
    state (page fault, wrong principal, lifecycle violation of
    enter/exit); the noninterference lemmas quantify over enabled
    steps. *)

type action =
  | Const of { dst : int; value : Mir.Word.t }  (** reg := immediate *)
  | Compute of { dst : int; src1 : int; src2 : int }  (** reg := reg + reg *)
  | Load of { dst : int; va : Mir.Word.t }
  | Store of { src : int; va : Mir.Word.t }
  | Hc_create of {
      elrange_base : Mir.Word.t;
      elrange_pages : int;
      mbuf_va : Mir.Word.t;
    }  (** OS only; status to reg 0, new eid to reg 1 *)
  | Hc_add_page of { eid : int; va : Mir.Word.t }  (** OS only; status to reg 0 *)
  | Hc_remove_page of { eid : int; va : Mir.Word.t }
      (** OS only (EREMOVE extension); status to reg 0 *)
  | Hc_init_done of { eid : int }  (** OS only; status to reg 0 *)
  | Hc_enter of { eid : int }  (** OS only; target must be initialized *)
  | Hc_exit  (** enclave only *)

val pp_action : Format.formatter -> action -> unit
val action_to_string : action -> string

val step : ?flush:bool -> State.t -> action -> (State.t, string) result
(** [flush] (default true) controls whether mapping-removing hypercalls
    invalidate the affected TLB entries; [flush:false] models the buggy
    monitor used by the stale-TLB demonstrations. *)

val enabled : State.t -> action -> bool

val precondition : State.t -> action -> (unit, string) result
(** Enabledness decided without executing — and without the TLB fill a
    successful [step] walk performs.  Mirrors [step]'s failure
    decisions exactly: [Ok ()] iff [step st a] returns [Ok _] (pinned
    by a property test over reachable states and the action battery).
    Status-reporting hypercalls are always enabled for the OS: their
    failures become status codes, transactionally. *)

val enabled_of : State.t -> action list -> action list
(** The total enabledness enumerator the model checker expands with:
    the sublist of [actions] whose {!precondition} holds, in input
    order. *)

val cpu_local : action -> bool
(** Register operations, loads and stores — the moves Lemmas 5.2–5.4
    quantify over directly. *)

val configures : State.t -> Principal.t -> action -> bool
(** Whether the action legitimately reshapes [p]'s own view: a
    hypercall that creates, populates, seals or activates [p], or an
    activity transfer involving [p].  The per-primitive integrity
    property excludes these (they are covered by the pairwise
    consistency lemma instead). *)

val mon_step :
  (Hyperenclave.Absdata.t -> Hyperenclave.Absdata.t) -> State.t -> State.t
(** Lift a monitor-state transformation (used by attack scenarios). *)

module Key = struct
  type t = Principal.t * Mir.Word.t

  let compare (p1, va1) (p2, va2) =
    let c = Principal.compare p1 p2 in
    if c <> 0 then c else Int64.unsigned_compare va1 va2
end

module KeyMap = Map.Make (Key)

type entry = { hpa_page : Mir.Word.t; flags : Hyperenclave.Flags.t }

type t = entry KeyMap.t

let empty = KeyMap.empty
let lookup t p ~va_page = KeyMap.find_opt (p, va_page) t
let fill t p ~va_page entry = KeyMap.add (p, va_page) entry t
let flush_va t p ~va_page = KeyMap.remove (p, va_page) t
let flush_principal t p = KeyMap.filter (fun (q, _) _ -> not (Principal.equal p q)) t
let flush_all _ = KeyMap.empty
let entry_count = KeyMap.cardinal
let to_list t = List.map (fun ((p, va), e) -> (p, va, e)) (KeyMap.bindings t)

let entry_equal a b =
  Mir.Word.equal a.hpa_page b.hpa_page && Hyperenclave.Flags.equal a.flags b.flags

let equal = KeyMap.equal entry_equal

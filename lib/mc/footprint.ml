open Security
module Chaos = Fault.Chaos

type resource = Reg of int | Va of int64 | AllVa | Mon | Control | Oracle

let all_regs = List.init State.nregs (fun i -> Reg i)

(* Every action's meaning depends on the active principal (registers
   are the active principal's; address resolution walks its tables),
   so every action reads [Control].  [Load]/[Store] read the monitor
   state (the tables that resolve their address) and touch the
   accessed word and its translation entry; a load may consume the
   reader's oracle through the marshalling window, so all loads
   conservatively read and advance [Oracle].  Status hypercalls read
   and write the monitor and report into register 0; an unmap
   additionally shoots down (or, buggily, fails to shoot down) TLB
   entries, a whole-TLB effect.  [Enter]/[Exit] swap whole register
   contexts and move [Control].  The TLB prefetch reads the monitor
   (the walk it caches) and writes translation entries for an
   arbitrary address.  Unknown fault plans conservatively touch
   everything. *)
let action_reads = function
  | Transition.Const _ -> [ Control ]
  | Transition.Compute { src1; src2; _ } -> [ Control; Reg src1; Reg src2 ]
  | Transition.Load { va; _ } -> [ Control; Mon; Oracle; Va va ]
  | Transition.Store { src; va } -> [ Control; Reg src; Mon; Va va ]
  | Transition.Hc_create _ | Transition.Hc_add_page _
  | Transition.Hc_remove_page _ | Transition.Hc_init_done _ ->
      [ Control; Mon ]
  | Transition.Hc_enter _ -> Control :: Mon :: all_regs
  | Transition.Hc_exit -> Control :: all_regs

let action_writes = function
  | Transition.Const { dst; _ } | Transition.Compute { dst; _ } -> [ Reg dst ]
  | Transition.Load { dst; va } -> [ Reg dst; Oracle; Va va ]
  | Transition.Store { va; _ } -> [ Va va ]
  | Transition.Hc_create _ -> [ Mon; Reg 0; Reg 1 ]
  | Transition.Hc_add_page _ | Transition.Hc_init_done _ -> [ Mon; Reg 0 ]
  | Transition.Hc_remove_page _ -> [ Mon; Reg 0; AllVa ]
  | Transition.Hc_enter _ | Transition.Hc_exit -> Control :: all_regs

let everything = AllVa :: Mon :: Control :: Oracle :: all_regs

let reads = function
  | Chaos.Act a -> action_reads a
  | Chaos.Inject (Fault.Plan.Tlb_prefetch _) -> [ Mon ]
  | Chaos.Inject _ -> everything

let writes = function
  | Chaos.Act a -> action_writes a
  | Chaos.Inject (Fault.Plan.Tlb_prefetch _) -> [ AllVa ]
  | Chaos.Inject _ -> everything

let conflicts a b =
  match (a, b) with
  | Reg i, Reg j -> i = j
  | Va x, Va y -> Int64.equal x y
  | (Va _ | AllVa), (Va _ | AllVa) -> true
  | Mon, Mon | Control, Control | Oracle, Oracle -> true
  | _ -> false

let disjoint xs ys = not (List.exists (fun x -> List.exists (conflicts x) ys) xs)

let commutes e1 e2 =
  let r1 = reads e1 and w1 = writes e1 in
  let r2 = reads e2 and w2 = writes e2 in
  disjoint w1 r2 && disjoint w1 w2 && disjoint w2 r1

let commuting_pairs universe =
  let arr = Array.of_list universe in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      if commutes arr.(i) arr.(j) then pairs := (arr.(i), arr.(j)) :: !pairs
    done
  done;
  !pairs

open Hyperenclave
open Security
module Word = Mir.Word

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)

let is_default_oracle o = Oracle.equal_stream o (Oracle.create ())

let canonicalize (st : State.t) =
  let oracles =
    Principal.Map.filter (fun _ o -> not (is_default_oracle o)) st.State.oracles
  in
  let zero = State.zero_regs () in
  let ctx =
    Principal.Map.filter (fun _ r -> not (State.regs_equal r zero)) st.State.ctx
  in
  { st with State.oracles; ctx }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let add_word buf w = Buffer.add_string buf (Word.to_hex w)

let add_regs buf (regs : State.regs) =
  Array.iter
    (fun w ->
      add_word buf w;
      Buffer.add_char buf ',')
    regs

let add_principal buf p = Buffer.add_string buf (Principal.to_string p)

(* Position plus a short sample of the upcoming values: oracles with
   the same position but different generators (a [Replay] stream
   versus the seeded default) must not collide. *)
let add_oracle buf o =
  Buffer.add_string buf (string_of_int (Oracle.position o));
  let rec sample o k =
    if k > 0 then begin
      let v, o = Oracle.take o in
      Buffer.add_char buf ':';
      add_word buf v;
      sample o (k - 1)
    end
  in
  sample o 4

let add_flags buf (f : Flags.t) = Buffer.add_string buf (Flags.to_string f)

let add_mon buf (d : Absdata.t) =
  Buffer.add_string buf "|phys=";
  List.iter
    (fun (a, v) ->
      add_word buf a;
      Buffer.add_char buf '=';
      add_word buf v;
      Buffer.add_char buf ',')
    (Phys_mem.nonzero_words d.Absdata.phys);
  Buffer.add_string buf "|falloc=";
  List.iter
    (fun i ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',')
    (Frame_alloc.allocated_list d.Absdata.falloc);
  Buffer.add_string buf "|epcm=";
  (* fold order is the allocator index order; Free entries carry no
     information (a fresh EPCM is all-Free) *)
  ignore
    (Epcm.fold
       (fun page state () ->
         match state with
         | Epcm.Free -> ()
         | Epcm.Valid { eid; va } ->
             Buffer.add_string buf (Printf.sprintf "%d->%d@" page eid);
             add_word buf va;
             Buffer.add_char buf ',')
       d.Absdata.epcm ());
  Buffer.add_string buf "|enclaves=";
  List.iter
    (fun eid ->
      match Absdata.find_enclave d eid with
      | Error _ -> ()
      | Ok (e : Enclave.t) ->
          Buffer.add_string buf
            (Printf.sprintf "%d{%s;" e.Enclave.eid
               (match e.Enclave.state with
               | Enclave.Created -> "created"
               | Enclave.Initialized -> "initialized"));
          add_word buf e.Enclave.elrange_base;
          Buffer.add_string buf (Printf.sprintf "+%d;" e.Enclave.elrange_pages);
          add_word buf e.Enclave.mbuf_va;
          Buffer.add_string buf
            (Printf.sprintf "+%d;gpt=%d;ept=%d}" e.Enclave.mbuf_pages
               e.Enclave.gpt_root e.Enclave.ept_root))
    (Absdata.enclave_ids d);
  Buffer.add_string buf (Printf.sprintf "|next_eid=%d" d.Absdata.next_eid);
  Buffer.add_string buf
    (match d.Absdata.os_ept_root with
    | None -> "|ept=-"
    | Some r -> Printf.sprintf "|ept=%d" r)

let to_string st =
  let st = canonicalize st in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "active=";
  add_principal buf st.State.active;
  Buffer.add_string buf "|regs=";
  add_regs buf st.State.regs;
  Buffer.add_string buf "|ctx=";
  List.iter
    (fun (p, regs) ->
      add_principal buf p;
      Buffer.add_char buf '{';
      add_regs buf regs;
      Buffer.add_char buf '}')
    (Principal.Map.bindings st.State.ctx);
  Buffer.add_string buf "|oracles=";
  List.iter
    (fun (p, o) ->
      add_principal buf p;
      Buffer.add_char buf '{';
      add_oracle buf o;
      Buffer.add_char buf '}')
    (Principal.Map.bindings st.State.oracles);
  Buffer.add_string buf "|tlb=";
  List.iter
    (fun (p, va_page, (e : Tlb.entry)) ->
      add_principal buf p;
      Buffer.add_char buf '@';
      add_word buf va_page;
      Buffer.add_string buf "->";
      add_word buf e.Tlb.hpa_page;
      Buffer.add_char buf '[';
      add_flags buf e.Tlb.flags;
      Buffer.add_char buf ']')
    (Tlb.to_list st.State.tlb);
  add_mon buf st.State.mon;
  Buffer.contents buf

let digest st = Digest.to_hex (Digest.string (to_string st))

(* ------------------------------------------------------------------ *)
(* View digests (for the integrity lemma)                              *)

let view_string (v : Observation.view) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (if v.Observation.is_active then "active|" else "inactive|");
  (match v.Observation.cpu_regs with
  | None -> Buffer.add_string buf "cpu=-|"
  | Some regs ->
      Buffer.add_string buf "cpu=";
      add_regs buf regs;
      Buffer.add_char buf '|');
  Buffer.add_string buf "saved=";
  add_regs buf v.Observation.saved_regs;
  Buffer.add_string buf "|maps=";
  List.iter
    (fun (va, hpa, flags) ->
      add_word buf va;
      Buffer.add_string buf "->";
      add_word buf hpa;
      Buffer.add_char buf '[';
      add_flags buf flags;
      Buffer.add_char buf ']')
    v.Observation.mappings;
  Buffer.add_string buf "|pages=";
  List.iter
    (fun (base, words) ->
      add_word buf base;
      Buffer.add_char buf '{';
      List.iter
        (fun w ->
          add_word buf w;
          Buffer.add_char buf ',')
        words;
      Buffer.add_char buf '}')
    v.Observation.pages;
  Buffer.add_string buf (Printf.sprintf "|oracle=%d" v.Observation.oracle_pos);
  Buffer.contents buf

let view_digest = function
  | Ok v -> Digest.to_hex (Digest.string (view_string v))
  | Error msg -> Digest.to_hex (Digest.string ("observe-error:" ^ msg))

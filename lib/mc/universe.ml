open Hyperenclave
open Security
module Chaos = Fault.Chaos

let page_va layout i =
  Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)

let vpage_count layout =
  let g = layout.Layout.geom in
  1 lsl (Geometry.va_bits g - g.Geometry.page_shift)

(* The same enclave marshalling window {!Check.Gen} uses: halfway
   through the virtual space, which for the OS is an unmapped GPA
   (monitor region), so the mbuf load below is the enclave's oracle
   read. *)
let mbuf_va_page layout = vpage_count layout / 2

let events layout =
  let mbuf_va = page_va layout (mbuf_va_page layout) in
  [
    Chaos.Act (Transition.Const { dst = 1; value = 5L });
    Chaos.Act (Transition.Compute { dst = 2; src1 = 1; src2 = 1 });
    (* ELRANGE page 0 for an entered enclave; normal page 0 for the OS *)
    Chaos.Act (Transition.Load { dst = 0; va = 0L });
    Chaos.Act (Transition.Store { src = 1; va = page_va layout 1 });
    (* the marshalling window: oracle semantics for the enclave *)
    Chaos.Act (Transition.Load { dst = 3; va = mbuf_va });
    Chaos.Act
      (Transition.Hc_create { elrange_base = 0L; elrange_pages = 1; mbuf_va });
    Chaos.Act (Transition.Hc_add_page { eid = 1; va = 0L });
    Chaos.Act (Transition.Hc_remove_page { eid = 1; va = 0L });
    Chaos.Act (Transition.Hc_init_done { eid = 1 });
    Chaos.Act (Transition.Hc_enter { eid = 1 });
    Chaos.Act Transition.Hc_exit;
    Chaos.Inject (Fault.Plan.Tlb_prefetch { pick = 0 });
  ]

let digest evs =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map Chaos.event_to_string evs)))

let stale_tlb_witness layout =
  let mbuf_va = page_va layout (mbuf_va_page layout) in
  [
    Chaos.Act
      (Transition.Hc_create { elrange_base = 0L; elrange_pages = 1; mbuf_va });
    Chaos.Act (Transition.Hc_add_page { eid = 1; va = 0L });
    Chaos.Inject (Fault.Plan.Tlb_prefetch { pick = 0 });
    Chaos.Act (Transition.Hc_remove_page { eid = 1; va = 0L });
  ]

(** Static transition footprints and the commutation table they
    derive.

    Partial-order reduction may only prune one order of two adjacent
    events when executing them in either order from any state reaches
    the same state {e and} neither can enable or disable the other.
    Both follow from footprint disjointness: each event is assigned
    the abstract resources it reads and writes — registers, individual
    guest-visible memory words together with their translation
    entries, the TLB as a whole, the monitor's abstract state, the
    activity control (which principal runs), and the oracle streams —
    with the read set overapproximating the event's {e enabledness}
    dependencies as well as its data dependencies.  Two events commute
    when neither's write set conflicts with the other's read or write
    set.

    Memory is tracked per accessed word ([Va]): two aligned accesses
    at distinct virtual addresses touch distinct physical words and
    make idempotent, same-valued fills into per-page translation
    entries, so they commute — the address spaces the two events
    resolve under are the same because anything that switches the
    active principal writes [Control] and conflicts with everything.
    Whole-TLB effects (a prefetch, an unmap's shootdown) use [AllVa],
    which conflicts with every [Va].

    The table is validated dynamically by a property test: for every
    pair the table marks commuting, both orders from reachable states
    end in canonically equal states. *)

type resource =
  | Reg of int  (** register slot [i], live or saved (context swaps touch all) *)
  | Va of int64  (** the guest word at a virtual address + its translation entry *)
  | AllVa  (** every address: whole-TLB and whole-memory effects *)
  | Mon  (** the monitor's abstract state (EPCM, allocator, tables, enclaves) *)
  | Control  (** the active principal *)
  | Oracle  (** the declassification streams *)

val reads : Fault.Chaos.event -> resource list
val writes : Fault.Chaos.event -> resource list

val conflicts : resource -> resource -> bool
(** [Va]/[Va] conflict iff equal; [AllVa] conflicts with every
    address; the scalar resources conflict with themselves. *)

val commutes : Fault.Chaos.event -> Fault.Chaos.event -> bool
(** Footprint disjointness; symmetric. *)

val commuting_pairs :
  Fault.Chaos.event list -> (Fault.Chaos.event * Fault.Chaos.event) list
(** All unordered pairs of the universe the table marks commuting
    (including an event with itself when it commutes with itself). *)

(** The event universe the bounded checker interleaves.

    Exhaustive exploration needs a finite move alphabet.  The universe
    is a curated battery over the layout: register operations, loads
    and stores into the interesting regions (ELRANGE page, normal
    memory, the marshalling window), every hypercall with valid
    arguments for enclave 1, and the TLB-prefetch fault — the hardware
    behaviour that turns a missing unmap-flush into a stale entry, so
    the planted [--buggy-tlb] bug is reachable by pure interleaving.

    Events are {!Fault.Chaos.event}s, so violating interleavings
    replay directly through the chaos driver's {!Fault.Chaos.replay}
    and shrink with the same ddmin the chaos phase uses. *)

val events : Hyperenclave.Layout.t -> Fault.Chaos.event list
(** The battery, in the fixed order exploration indexes it by. *)

val digest : Fault.Chaos.event list -> string
(** Digest of the rendered battery — part of every model-checking
    obligation's cache fingerprint (the "enabled-hypercall set"). *)

val stale_tlb_witness : Hyperenclave.Layout.t -> Fault.Chaos.event list
(** The known minimal stale-TLB counterexample (PR 1):
    create, add page, TLB prefetch, remove page — 4 events.  The
    [--buggy-tlb] exploration must rediscover it exhaustively and
    shrink to exactly this length. *)

(** Hashed canonical machine-state representation.

    The explicit-state checker dedups its visited set by a digest of
    the machine state.  Two {!Security.State.t} values that the
    transition system cannot distinguish must serialize identically,
    so {!canonicalize} first drops the representation slack:

    - oracle-map entries that still equal a fresh default stream
      ([State.oracle_of] conjures exactly that default for absent
      principals, and [State.equal] already treats them as equal);
    - saved-context entries that are all-zero ([State.saved_ctx]
      defaults absent principals to zeroed registers).

    The monitor components need no canonicalization: {!Hyperenclave}'s
    physical memory stores only nonzero words, the frame allocator and
    EPCM expose order-normalized folds, and the TLB lists entries in
    key order.

    The laws pinned by the test suite: canonicalization is idempotent,
    [State.equal] states digest equal, and stepping commutes with
    canonicalization ([digest (step (canonicalize s) a) =
    digest (step s a)]). *)

val canonicalize : Security.State.t -> Security.State.t

val to_string : Security.State.t -> string
(** Deterministic serialization of the canonicalized state: active
    principal, live registers, saved contexts, oracle positions (with
    a short stream sample, so replay oracles at the same position do
    not collide with the default), TLB entries, and the full monitor
    abstract state (nonzero physical words, allocated frames, EPCM
    entries, enclave metadata, next eid, EPT root). *)

val digest : Security.State.t -> string
(** Hex digest of {!to_string} — the visited-set key. *)

val view_digest : (Security.Observation.view, string) result -> string
(** Hex digest of one principal's observation (errors digest as their
    message): the integrity lemma compares these across a step instead
    of re-comparing whole views. *)

(** Explicit-state bounded exploration of the security transition
    system.

    Breadth-first enumeration of every interleaving of the
    {!Universe} events up to a depth bound, on one small geometry.
    The visited set is deduplicated by {!State_key.digest}; when
    partial-order reduction is on, sleep sets derived from the
    {!Footprint} commutation table skip the redundant orders of
    commuting adjacent events (with the explored-set refinement that
    keeps sleep sets sound in the presence of state caching: a revisit
    with a smaller sleep set re-expands exactly the transitions the
    first visit blocked).  Sleep sets prune only {e transitions},
    never states, and commuting swaps preserve path length, so the
    reachable state set within the bound — and with it every
    state-level verdict — is identical with and without reduction.

    At every newly reached state the checker runs the Sec. 5.2
    invariants, TLB consistency, and the two-run step-
    indistinguishability checks (a perturbed-secrets twin per observer
    must stay indistinguishable across every enabled action); across
    every executed transition it checks hypercall transactionality and
    the integrity lemma (a non-configuring step leaves bystander views
    unchanged, compared by memoized view digests).  Violating
    interleavings are minimized with {!Check.Shrink} ddmin before
    reporting.

    Exploration is deterministic: same config, same outcome, bit for
    bit — the engine shards the depth-[root_depth] frontier by
    state-key prefix and unions per-shard outcomes, which commutes
    with running the whole exploration in one piece. *)

type config = {
  layout : Hyperenclave.Layout.t;
  universe : Fault.Chaos.event list;
  depth : int;  (** exploration bound, in events from boot *)
  flush : bool;  (** [false] = the buggy monitor ([--buggy-tlb]) *)
  por : bool;  (** sleep-set partial-order reduction *)
  checks : bool;  (** run the violation checks (off for frontier derivation) *)
  ni : bool;  (** include the step-noninterference checks *)
  observers : Security.Principal.t list;
  ni_seed : int;  (** seed for the perturbed-secrets twins *)
}

val config :
  ?depth:int ->
  ?flush:bool ->
  ?por:bool ->
  ?checks:bool ->
  ?ni:bool ->
  ?observers:Security.Principal.t list ->
  ?ni_seed:int ->
  Hyperenclave.Layout.t ->
  config
(** Defaults: depth 4, correct monitor, reduction and all checks on,
    observers OS + enclaves 1 and 2, twin seed 2024, universe
    {!Universe.events}. *)

type violation = {
  v_kind : string;
      (** "invariant", "tlb-consistency", "transactionality",
          "status-code", "integrity", "ni-pair", "ni-consistency" or
          "precondition" *)
  v_detail : string;
  v_state : string;  (** digest of the violating state *)
  v_trace : Fault.Chaos.event list;  (** boot-anchored discovery trace *)
  v_witness : Fault.Chaos.event list;  (** ddmin-shrunk *)
  v_evals : int;  (** replays the shrinker spent *)
}

type stats = {
  explored : int;  (** unique canonical states *)
  transitions : int;  (** edges executed *)
  deduped : int;  (** edges into already-visited states *)
  pruned : int;  (** expansions skipped by sleep sets *)
}

type item
(** A frontier entry: a state at the depth bound with its discovery
    trace, ready to seed a deeper exploration. *)

val item_key : item -> string
(** The state digest — the engine shards the frontier by its prefix. *)

type outcome = {
  stats : stats;
  keys : string list;  (** sorted digests of every visited state *)
  violations : violation list;  (** discovery order, deduped by (kind, state) *)
  frontier : item list;  (** states first reached at exactly [depth] *)
}

val run : config -> outcome
(** Explore from the booted state. *)

val interleavings : config -> int
(** The number of enabled event sequences of length 1..[depth] a
    tree-shaped (dedup-free) walk traverses — under sleep sets when
    [por] is set, the full enabled tree otherwise.  The ratio of the
    two is the reduction's interleaving-level pruning factor (each
    skipped expansion cuts a whole subtree, which per-edge statistics
    on the deduplicated graph undercount). *)

val run_from : config -> roots:item list -> outcome
(** Explore from previously produced frontier items (their recorded
    depths count against [config.depth]); used by the engine's shard
    obligations.  [run cfg] = [run_from cfg ~roots:[boot]]. *)

(** {1 Obligation-outcome serialization}

    Shard results travel through {!Engine.Obligation.outcome.log} as
    deterministic text; the driver parses the per-obligation payloads
    back and folds them into one rollup whose numbers are independent
    of job count and cache state. *)

type parsed_violation = {
  p_kind : string;
  p_detail : string;
  p_state : string;
  p_evals : int;
  p_witness : string list;  (** rendered events *)
}

type parsed = {
  p_stats : stats;
  p_keys : string list;
  p_violations : parsed_violation list;
}

type rollup = {
  r_states : int;  (** size of the union of the visited sets *)
  r_transitions : int;
  r_deduped : int;  (** per-part dedup plus cross-part overlap *)
  r_pruned : int;
  r_violations : parsed_violation list;  (** deduped by (kind, state) *)
}

val to_log : outcome -> string
val parse_log : string -> parsed
val rollup : parsed list -> rollup

val min_witness : rollup -> int option
(** Length of the shortest shrunk witness, when any violation exists. *)

open Security
module Chaos = Fault.Chaos
module IntSet = Set.Make (Int)

type config = {
  layout : Hyperenclave.Layout.t;
  universe : Chaos.event list;
  depth : int;
  flush : bool;
  por : bool;
  checks : bool;
  ni : bool;
  observers : Principal.t list;
  ni_seed : int;
}

let config ?(depth = 4) ?(flush = true) ?(por = true) ?(checks = true)
    ?(ni = true) ?(observers = [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2 ])
    ?(ni_seed = 2024) layout =
  { layout; universe = Universe.events layout; depth; flush; por; checks;
    ni; observers; ni_seed }

type violation = {
  v_kind : string;
  v_detail : string;
  v_state : string;
  v_trace : Chaos.event list;
  v_witness : Chaos.event list;
  v_evals : int;
}

type stats = { explored : int; transitions : int; deduped : int; pruned : int }

type item = {
  st : State.t;
  key : string;
  trace_rev : Chaos.event list;
  idepth : int;
  sleep : IntSet.t;
}

let item_key it = it.key

type outcome = {
  stats : stats;
  keys : string list;
  violations : violation list;
  frontier : item list;
}

let exec ~flush st = function
  | Chaos.Act a -> Transition.step ~flush st a
  | Chaos.Inject f -> Fault.Inject.apply f st

(* Enabledness without execution: the total enumerator for actions, an
   applicability probe for fault plans. *)
let enabled_at st = function
  | Chaos.Act a -> Result.is_ok (Transition.precondition st a)
  | Chaos.Inject f -> Result.is_ok (Fault.Inject.apply f st)

(* Does [after] exhibit a violation of [kind] for the transition
   [before --ev--> after]?  Used both during exploration and as the
   ddmin replay predicate, so a shrunk witness provably still violates
   the same property. *)
let edge_violates cfg ~kind ~before ~after ev =
  match kind with
  | "invariant" -> Result.is_error (Invariants.check after.State.mon)
  | "tlb-consistency" -> Result.is_error (Chaos.tlb_consistent after)
  | "transactionality" | "status-code" -> (
      match ev with
      | Chaos.Inject _ -> false
      | Chaos.Act a -> (
          match Chaos.transactional ~before ~after a with
          | Ok () -> false
          | Error (check, _) -> String.equal check kind))
  | "integrity" ->
      List.exists
        (fun p ->
          let exempt =
            match ev with
            | Chaos.Act a ->
                Principal.equal p before.State.active
                || Transition.configures before p a
            | Chaos.Inject _ -> false
          in
          (not exempt)
          && State_key.view_digest (Observation.observe before p)
             <> State_key.view_digest (Observation.observe after p))
        cfg.observers
  | "ni-pair" | "ni-consistency" ->
      List.exists
        (fun p ->
          let twin =
            Check.Gen.perturb_secrets ~seed:cfg.ni_seed ~observer:p after
          in
          match Observation.indistinguishable p after twin with
          | Error _ | Ok false -> String.equal kind "ni-pair"
          | Ok true ->
              String.equal kind "ni-consistency"
              && List.exists
                   (function
                     | Chaos.Inject _ -> false
                     | Chaos.Act a -> (
                         match
                           ( Transition.step ~flush:cfg.flush after a,
                             Transition.step ~flush:cfg.flush twin a )
                         with
                         | Ok u, Ok v -> (
                             match Observation.indistinguishable p u v with
                             | Ok true -> false
                             | Ok false | Error _ -> true)
                         | Error _, Error _ -> false
                         | Ok _, Error _ | Error _, Ok _ -> true))
                   cfg.universe)
        cfg.observers
  | _ -> false

(* Replay [events] from boot, skipping disabled events (the
   {!Chaos.replay} convention, which ddmin relies on: deleting a chunk
   may disable a later event without invalidating the trace). *)
let trace_violates cfg ~kind events =
  let rec go st = function
    | [] -> false
    | ev :: rest -> (
        match exec ~flush:cfg.flush st ev with
        | Error _ -> go st rest
        | Ok st' ->
            edge_violates cfg ~kind ~before:st ~after:st' ev || go st' rest)
  in
  go (State.boot cfg.layout) events

(* Per-visited-state bookkeeping.  [expl] is the set of transition
   indices already executed from this state (the explored-set
   refinement).  [cover] is the intersection of the sleep sets of
   every visit so far: a transition is durably blocked only when every
   visit slept it, so a revisit whose sleep set misses part of [cover]
   must be re-expanded.  [vdepth] is the minimal discovery depth —
   expansion always uses it, so depth-bounded exploration is exact. *)
type entry = {
  mutable expl : IntSet.t;
  mutable vdepth : int;
  mutable cover : IntSet.t;
}

type ctx = {
  cfg : config;
  uni : Chaos.event array;
  commute : bool array array;
  visited : (string, entry) Hashtbl.t;
  queue : item Queue.t;
  mutable s_explored : int;
  mutable s_transitions : int;
  mutable s_deduped : int;
  mutable s_pruned : int;
  mutable violations : violation list; (* reverse discovery order *)
  vseen : (string, unit) Hashtbl.t;
  vmemo : (string, string) Hashtbl.t; (* state digest / principal -> view digest *)
  mutable frontier : item list; (* reverse discovery order *)
}

let view_dig ctx key st p =
  let k = key ^ "/" ^ Principal.to_string p in
  match Hashtbl.find_opt ctx.vmemo k with
  | Some d -> d
  | None ->
      let d = State_key.view_digest (Observation.observe st p) in
      Hashtbl.add ctx.vmemo k d;
      d

let record ctx ~kind ~detail ~key ~trace_rev =
  let vk = kind ^ "|" ^ key in
  if not (Hashtbl.mem ctx.vseen vk) then begin
    Hashtbl.add ctx.vseen vk ();
    let trace = List.rev trace_rev in
    let witness, evals =
      Check.Shrink.evaluations
        ~check:(fun evs -> trace_violates ctx.cfg ~kind evs)
        trace
    in
    ctx.violations <-
      { v_kind = kind; v_detail = detail; v_state = key; v_trace = trace;
        v_witness = witness; v_evals = evals }
      :: ctx.violations
  end

(* Checks on a newly discovered state. *)
let check_state ctx ~key ~trace_rev st =
  let cfg = ctx.cfg in
  if cfg.checks then begin
    (match Invariants.check st.State.mon with
    | Ok () -> ()
    | Error r -> record ctx ~kind:"invariant" ~detail:r ~key ~trace_rev);
    (match Chaos.tlb_consistent st with
    | Ok () -> ()
    | Error r -> record ctx ~kind:"tlb-consistency" ~detail:r ~key ~trace_rev);
    if cfg.ni then
      List.iter
        (fun p ->
          let twin = Check.Gen.perturb_secrets ~seed:cfg.ni_seed ~observer:p st in
          match Observation.indistinguishable p st twin with
          | Error msg ->
              record ctx ~kind:"ni-pair" ~key ~trace_rev
                ~detail:
                  (Printf.sprintf "observing %s failed: %s"
                     (Principal.to_string p) msg)
          | Ok false ->
              record ctx ~kind:"ni-pair" ~key ~trace_rev
                ~detail:
                  (Printf.sprintf "%s distinguishes its own perturbed twin"
                     (Principal.to_string p))
          | Ok true ->
              Array.iter
                (function
                  | Chaos.Inject _ -> ()
                  | Chaos.Act a -> (
                      (* skip actions disabled in both runs cheaply *)
                      if
                        Result.is_ok (Transition.precondition st a)
                        || Result.is_ok (Transition.precondition twin a)
                      then
                        match
                          ( Transition.step ~flush:cfg.flush st a,
                            Transition.step ~flush:cfg.flush twin a )
                        with
                        | Error _, Error _ -> ()
                        | Ok u, Ok v -> (
                            match Observation.indistinguishable p u v with
                            | Ok true -> ()
                            | Ok false ->
                                record ctx ~kind:"ni-consistency" ~key
                                  ~trace_rev
                                  ~detail:
                                    (Printf.sprintf
                                       "%s distinguishes the runs after %s"
                                       (Principal.to_string p)
                                       (Transition.action_to_string a))
                            | Error msg ->
                                record ctx ~kind:"ni-consistency" ~key
                                  ~trace_rev
                                  ~detail:
                                    (Printf.sprintf
                                       "observing %s after %s failed: %s"
                                       (Principal.to_string p)
                                       (Transition.action_to_string a)
                                       msg))
                        | Ok _, Error e | Error e, Ok _ ->
                            record ctx ~kind:"ni-consistency" ~key ~trace_rev
                              ~detail:
                                (Printf.sprintf
                                   "enabledness of %s diverges between \
                                    %s-indistinguishable states: %s"
                                   (Transition.action_to_string a)
                                   (Principal.to_string p) e)))
                ctx.uni)
        cfg.observers
  end

(* Checks on an executed transition. *)
let check_edge ctx ~bkey ~akey ~atrace_rev ~before ~after ev =
  let cfg = ctx.cfg in
  if cfg.checks then begin
    (match ev with
    | Chaos.Inject _ -> ()
    | Chaos.Act a -> (
        match Chaos.transactional ~before ~after a with
        | Ok () -> ()
        | Error (check, reason) ->
            record ctx ~kind:check ~detail:reason ~key:akey ~trace_rev:atrace_rev));
    if cfg.ni then
      List.iter
        (fun p ->
          let exempt =
            match ev with
            | Chaos.Act a ->
                Principal.equal p before.State.active
                || Transition.configures before p a
            | Chaos.Inject _ -> false
          in
          if
            (not exempt)
            && view_dig ctx bkey before p <> view_dig ctx akey after p
          then
            record ctx ~kind:"integrity" ~key:akey ~trace_rev:atrace_rev
              ~detail:
                (Printf.sprintf "%s's view changed across %s"
                   (Principal.to_string p) (Chaos.event_to_string ev)))
        cfg.observers
  end

let boot_item cfg =
  let st = State.boot cfg.layout in
  { st; key = State_key.digest st; trace_rev = []; idepth = 0;
    sleep = IntSet.empty }

let run_from cfg ~roots =
  let uni = Array.of_list cfg.universe in
  let n = Array.length uni in
  let commute =
    Array.init n (fun i -> Array.init n (fun j -> Footprint.commutes uni.(i) uni.(j)))
  in
  let ctx =
    { cfg; uni; commute; visited = Hashtbl.create 4096; queue = Queue.create ();
      s_explored = 0; s_transitions = 0; s_deduped = 0; s_pruned = 0;
      violations = []; vseen = Hashtbl.create 16; vmemo = Hashtbl.create 4096;
      frontier = [] }
  in
  let discover it =
    Hashtbl.add ctx.visited it.key
      { expl = IntSet.empty; vdepth = it.idepth; cover = it.sleep };
    ctx.s_explored <- ctx.s_explored + 1;
    check_state ctx ~key:it.key ~trace_rev:it.trace_rev it.st;
    if it.idepth >= cfg.depth then ctx.frontier <- it :: ctx.frontier
    else Queue.push it ctx.queue
  in
  List.iter
    (fun it ->
      match Hashtbl.find_opt ctx.visited it.key with
      | Some _ -> ctx.s_deduped <- ctx.s_deduped + 1
      | None -> discover it)
    roots;
  while not (Queue.is_empty ctx.queue) do
    Mirverif.Cancel.poll ();
    let it = Queue.pop ctx.queue in
    let entry = Hashtbl.find ctx.visited it.key in
    (* expand with the first-visit (minimal, by BFS order) depth *)
    let d = entry.vdepth in
    if d < cfg.depth then
      for i = 0 to n - 1 do
        if (not (IntSet.mem i entry.expl)) && enabled_at it.st uni.(i) then
          if cfg.por && IntSet.mem i it.sleep then
            ctx.s_pruned <- ctx.s_pruned + 1
          else begin
            (* sleep set for the successor: everything slept here or
               already explored from here, kept only if it commutes
               with the transition we take *)
            let sleep' =
              if cfg.por then
                IntSet.filter
                  (fun j -> ctx.commute.(j).(i))
                  (IntSet.union it.sleep entry.expl)
              else IntSet.empty
            in
            match exec ~flush:cfg.flush it.st uni.(i) with
            | Error msg ->
                (* enabled_at said yes, step said no: the enumerator
                   and the semantics disagree *)
                entry.expl <- IntSet.add i entry.expl;
                record ctx ~kind:"precondition" ~key:it.key
                  ~trace_rev:it.trace_rev
                  ~detail:
                    (Printf.sprintf "%s enabled but step failed: %s"
                       (Chaos.event_to_string uni.(i)) msg)
            | Ok st' -> (
                entry.expl <- IntSet.add i entry.expl;
                ctx.s_transitions <- ctx.s_transitions + 1;
                let key' = State_key.digest st' in
                let trace_rev' = uni.(i) :: it.trace_rev in
                check_edge ctx ~bkey:it.key ~akey:key' ~atrace_rev:trace_rev'
                  ~before:it.st ~after:st' uni.(i);
                let it' =
                  { st = st'; key = key'; trace_rev = trace_rev';
                    idepth = d + 1; sleep = sleep' }
                in
                match Hashtbl.find_opt ctx.visited key' with
                | None -> discover it'
                | Some entry' ->
                    ctx.s_deduped <- ctx.s_deduped + 1;
                    (* A revisit must be re-queued when it can unblock
                       something: its sleep set misses part of the
                       stored cover (so a durably-slept transition wakes
                       up), or it reaches the state strictly shallower
                       (so there is more depth budget).  The explored
                       set keeps this terminating — a re-expansion only
                       executes not-yet-explored transitions. *)
                    let shallower = d + 1 < entry'.vdepth in
                    if shallower then entry'.vdepth <- d + 1;
                    let wakes = not (IntSet.subset entry'.cover sleep') in
                    entry'.cover <- IntSet.inter entry'.cover sleep';
                    if (cfg.por && wakes) || shallower then
                      Queue.push { it' with sleep = entry'.cover } ctx.queue)
          end
      done
  done;
  {
    stats =
      { explored = ctx.s_explored; transitions = ctx.s_transitions;
        deduped = ctx.s_deduped; pruned = ctx.s_pruned };
    keys =
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) ctx.visited []);
    violations = List.rev ctx.violations;
    frontier = List.rev ctx.frontier;
  }

let run cfg = run_from cfg ~roots:[ boot_item cfg ]

let interleavings cfg =
  let uni = Array.of_list cfg.universe in
  let n = Array.length uni in
  let commute =
    Array.init n (fun i ->
        Array.init n (fun j -> Footprint.commutes uni.(i) uni.(j)))
  in
  let count = ref 0 in
  let rec go st depth sleep =
    if depth < cfg.depth then begin
      Mirverif.Cancel.poll ();
      let explored = ref IntSet.empty in
      for i = 0 to n - 1 do
        if enabled_at st uni.(i) && not (cfg.por && IntSet.mem i sleep) then
          match exec ~flush:cfg.flush st uni.(i) with
          | Error _ -> ()
          | Ok st' ->
              incr count;
              let sleep' =
                if cfg.por then
                  IntSet.filter
                    (fun j -> commute.(j).(i))
                    (IntSet.union sleep !explored)
                else IntSet.empty
              in
              explored := IntSet.add i !explored;
              go st' (depth + 1) sleep'
      done
    end
  in
  go (State.boot cfg.layout) 0 IntSet.empty;
  !count

(* ---- serialization through obligation logs ---- *)

type parsed_violation = {
  p_kind : string;
  p_detail : string;
  p_state : string;
  p_evals : int;
  p_witness : string list;
}

type parsed = {
  p_stats : stats;
  p_keys : string list;
  p_violations : parsed_violation list;
}

type rollup = {
  r_states : int;
  r_transitions : int;
  r_deduped : int;
  r_pruned : int;
  r_violations : parsed_violation list;
}

let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let to_log (o : outcome) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "s\t%d\t%d\t%d\t%d\n" o.stats.explored o.stats.transitions
       o.stats.deduped o.stats.pruned);
  List.iter (fun k -> Buffer.add_string buf (Printf.sprintf "k\t%s\n" k)) o.keys;
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "v\t%s\t%s\t%d\t%s\n" v.v_kind v.v_state v.v_evals
           (sanitize v.v_detail));
      List.iter
        (fun ev ->
          Buffer.add_string buf
            (Printf.sprintf "w\t%s\n" (sanitize (Chaos.event_to_string ev))))
        v.v_witness)
    o.violations;
  Buffer.contents buf

let parse_log log =
  let stats = ref { explored = 0; transitions = 0; deduped = 0; pruned = 0 } in
  let keys = ref [] and viols = ref [] in
  String.split_on_char '\n' log
  |> List.iter (fun line ->
         match String.split_on_char '\t' line with
         | [ "s"; e; t; d; p ] ->
             stats :=
               { explored = int_of_string e; transitions = int_of_string t;
                 deduped = int_of_string d; pruned = int_of_string p }
         | [ "k"; k ] -> keys := k :: !keys
         | "v" :: kind :: state :: evals :: rest ->
             viols :=
               { p_kind = kind; p_state = state;
                 p_evals = (try int_of_string evals with _ -> 0);
                 p_detail = String.concat "\t" rest; p_witness = [] }
               :: !viols
         | [ "w"; ev ] -> (
             match !viols with
             | [] -> ()
             | v :: rest ->
                 viols := { v with p_witness = v.p_witness @ [ ev ] } :: rest)
         | _ -> ());
  { p_stats = !stats; p_keys = List.rev !keys; p_violations = List.rev !viols }

let rollup parts =
  let union_keys =
    List.sort_uniq String.compare (List.concat_map (fun p -> p.p_keys) parts)
  in
  let per_part_keys =
    List.fold_left (fun acc p -> acc + List.length p.p_keys) 0 parts
  in
  let sum f = List.fold_left (fun acc p -> acc + f p.p_stats) 0 parts in
  let seen = Hashtbl.create 16 in
  let viols =
    List.concat_map (fun p -> p.p_violations) parts
    |> List.filter (fun v ->
           let k = v.p_kind ^ "|" ^ v.p_state in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
  in
  {
    r_states = List.length union_keys;
    r_transitions = sum (fun s -> s.transitions);
    (* per-part dedup plus states independently discovered by several
       shards: both are edges into already-known states *)
    r_deduped = sum (fun s -> s.deduped) + (per_part_keys - List.length union_keys);
    r_pruned = sum (fun s -> s.pruned);
    r_violations = viols;
  }

let min_witness r =
  List.fold_left
    (fun acc v ->
      let n = List.length v.p_witness in
      match acc with Some m when m <= n -> acc | _ -> Some n)
    None r.r_violations

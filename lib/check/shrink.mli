(** Counterexample shrinking (delta debugging).

    When a randomized check fails, the witness trace is rarely minimal:
    most of its events are noise the failure does not depend on.
    {!list} greedily removes contiguous chunks of decreasing size while
    the caller's predicate still reports failure, yielding a
    1-minimal sublist — removing any single remaining element makes the
    failure disappear.  The predicate must be deterministic (all our
    traces replay from explicit seeds, so it is). *)

val list : still_fails:('a list -> bool) -> 'a list -> 'a list
(** [list ~still_fails xs] assumes [still_fails xs = true] and returns
    a minimal sublist (element order preserved) on which it still
    holds.  If the assumption is violated, [xs] is returned
    unchanged. *)

val evaluations : still_fails:('a list -> bool) -> 'a list -> 'a list * int
(** Like {!list}, also reporting how many predicate evaluations the
    search used (for the reports and benchmarks). *)

(** Counterexample shrinking (delta debugging).

    When a check fails on a list of events, the witness is rarely
    minimal: most of its elements are noise the failure does not depend
    on.  {!list} greedily removes contiguous chunks of decreasing size
    while the caller's predicate still reports failure, yielding a
    1-minimal sublist — removing any single remaining element makes the
    failure disappear.  The predicate must be deterministic (all our
    traces replay from explicit seeds or explicit event lists, so it
    is).

    The entry point is generic in the element type: the chaos driver
    shrinks fault-injected event traces, the model checker shrinks
    hypercall interleavings, and the test suites shrink plain integer
    lists — all through the same [~check] predicate. *)

val list : check:('a list -> bool) -> 'a list -> 'a list
(** [list ~check xs] assumes [check xs = true] ("this list still
    exhibits the failure") and returns a minimal sublist (element order
    preserved) on which it still holds.  If the assumption is violated,
    [xs] is returned unchanged. *)

val evaluations : check:('a list -> bool) -> 'a list -> 'a list * int
(** Like {!list}, also reporting how many predicate evaluations the
    search used (for the reports and benchmarks). *)

open Hyperenclave
open Security
module Word = Mir.Word

let page_va layout i =
  Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)

let vpage_count layout =
  let g = layout.Layout.geom in
  1 lsl (Geometry.va_bits g - g.Geometry.page_shift)

let mbuf_va_page layout =
  (* place every enclave's marshalling window at the same, valid page:
     halfway through the virtual space *)
  vpage_count layout / 2

let random_action rng layout =
  let vpages = vpage_count layout in
  let mbuf_page = mbuf_va_page layout in
  let kind, rng = Rng.int_below rng 11 in
  match kind with
  | 0 ->
      let dst, rng = Rng.int_below rng State.nregs in
      let v, rng = Rng.next rng in
      (Transition.Const { dst; value = v }, rng)
  | 1 ->
      let dst, rng = Rng.int_below rng State.nregs in
      let src1, rng = Rng.int_below rng State.nregs in
      let src2, rng = Rng.int_below rng State.nregs in
      (Transition.Compute { dst; src1; src2 }, rng)
  | 2 | 3 ->
      let dst, rng = Rng.int_below rng State.nregs in
      let p, rng = Rng.int_below rng vpages in
      let off, rng = Rng.int_below rng (Geometry.page_size layout.Layout.geom / 8) in
      ( Transition.Load
          { dst; va = Int64.add (page_va layout p) (Int64.of_int (8 * off)) },
        rng )
  | 4 | 5 ->
      let src, rng = Rng.int_below rng State.nregs in
      let p, rng = Rng.int_below rng vpages in
      let off, rng = Rng.int_below rng (Geometry.page_size layout.Layout.geom / 8) in
      ( Transition.Store
          { src; va = Int64.add (page_va layout p) (Int64.of_int (8 * off)) },
        rng )
  | 6 ->
      let base, rng = Rng.int_below rng 4 in
      let pages, rng = Rng.int_below rng 2 in
      ( Transition.Hc_create
          {
            elrange_base = page_va layout base;
            elrange_pages = pages + 1;
            mbuf_va = page_va layout mbuf_page;
          },
        rng )
  | 7 ->
      let eid, rng = Rng.int_below rng 4 in
      let p, rng = Rng.int_below rng 6 in
      (Transition.Hc_add_page { eid = eid + 1; va = page_va layout p }, rng)
  | 8 ->
      let eid, rng = Rng.int_below rng 4 in
      let which, rng = Rng.bool rng in
      ( (if which then Transition.Hc_init_done { eid = eid + 1 }
         else Transition.Hc_enter { eid = eid + 1 }),
        rng )
  | 9 ->
      let eid, rng = Rng.int_below rng 4 in
      let p, rng = Rng.int_below rng 6 in
      (Transition.Hc_remove_page { eid = eid + 1; va = page_va layout p }, rng)
  | _ -> (Transition.Hc_exit, rng)

let trace ~seed ~steps layout =
  let rec go st rng k =
    if k <= 0 then st
    else
      let action, rng = random_action rng layout in
      let st = match Transition.step st action with Ok st' -> st' | Error _ -> st in
      go st rng (k - 1)
  in
  go (State.boot layout) (Rng.make seed) steps

(* Switch into an enclave if possible, building one when none exists;
   keeps the state set from being dominated by OS-active states.
   [prefer] names the enclave id the caller wants running (enclaves are
   created until that id exists). *)
let ensure_enclave_active ?prefer layout st =
  let run st a = match Transition.step st a with Ok s -> s | Error _ -> st in
  let mbuf_page = mbuf_va_page layout in
  let build_and_enter st eid =
    (* create enclaves until [eid] exists, then populate, seal, enter *)
    let rec create st =
      if st.State.mon.Hyperenclave.Absdata.next_eid > eid then st
      else
        let st' =
          run st
            (Transition.Hc_create
               {
                 elrange_base = 0L;
                 elrange_pages = 1;
                 mbuf_va = page_va layout mbuf_page;
               })
        in
        (* a failing hypercall still rewrites the status register, so
           progress is judged on the enclave counter *)
        if
          st'.State.mon.Hyperenclave.Absdata.next_eid
          = st.State.mon.Hyperenclave.Absdata.next_eid
        then st
        else create st'
    in
    let st = create st in
    let st = run st (Transition.Hc_add_page { eid; va = 0L }) in
    let st = run st (Transition.Hc_init_done { eid }) in
    run st (Transition.Hc_enter { eid })
  in
  let want = match prefer with Some eid -> Principal.Enclave eid | None -> st.State.active in
  match (st.State.active, prefer) with
  | Principal.Enclave _, None -> st
  | active, _ when Principal.equal active want && prefer <> None -> st
  | _, Some eid -> (
      let st = match st.State.active with
        | Principal.Enclave _ -> run st Transition.Hc_exit
        | Principal.Os -> st
      in
      match Transition.step st (Transition.Hc_enter { eid }) with
      | Ok st' -> st'
      | Error _ -> build_and_enter st eid)
  | Principal.Os, None -> (
      let try_enter =
        List.fold_left
          (fun acc eid ->
            match acc with
            | Some _ -> acc
            | None -> (
                match Transition.step st (Transition.Hc_enter { eid }) with
                | Ok st' -> Some st'
                | Error _ -> None))
          None [ 1; 2; 3; 4 ]
      in
      match try_enter with Some st' -> st' | None -> build_and_enter st 1)

let states_range ~lo ~hi ~seed ~steps layout =
  List.init (hi - lo) (fun j ->
      let i = lo + j in
      let st = trace ~seed:(seed + i) ~steps layout in
      if i mod 2 = 1 then
        (Printf.sprintf "trace[seed=%d+%d,enclave]" seed i, ensure_enclave_active layout st)
      else (Printf.sprintf "trace[seed=%d+%d]" seed i, st))

let states ?(n = 20) ~seed ~steps layout = states_range ~lo:0 ~hi:n ~seed ~steps layout

let absdata_states ?n ~seed ~steps layout =
  List.map (fun (label, st) -> (label, st.State.mon)) (states ?n ~seed ~steps layout)

(* ------------------------------------------------------------------ *)
(* Secret perturbation                                                 *)

let write_word phys addr v =
  match Phys_mem.write64 phys addr v with Ok phys -> phys | Error _ -> phys

(* Scribble a random word into each page of [pages]. *)
let scribble_pages rng phys pages =
  List.fold_left
    (fun (phys, rng) base ->
      let off, rng = Rng.int_below rng 4 in
      let v, rng = Rng.next rng in
      (write_word phys (Int64.add base (Int64.of_int (8 * off))) v, rng))
    (phys, rng) pages

let region_pages layout base pages =
  List.init pages (fun i ->
      Int64.add base
        (Int64.mul (Int64.of_int (Geometry.page_size layout.Layout.geom)) (Int64.of_int i)))

let perturb_secrets ~seed ~observer (st : State.t) =
  let rng = Rng.make seed in
  let d = st.State.mon in
  let layout = d.Absdata.layout in
  (* 1. EPC pages of enclaves other than the observer *)
  let secret_epc =
    Epcm.fold
      (fun page state acc ->
        match state with
        | Epcm.Valid { eid; _ }
          when not (Principal.equal observer (Principal.Enclave eid)) ->
            Layout.epc_page_addr layout page :: acc
        | Epcm.Valid _ | Epcm.Free -> acc)
      d.Absdata.epcm []
  in
  let phys, rng = scribble_pages rng d.Absdata.phys secret_epc in
  (* 2. normal memory, invisible to enclave observers *)
  let phys, rng =
    match observer with
    | Principal.Os -> (phys, rng)
    | Principal.Enclave _ ->
        let normal =
          region_pages layout layout.Layout.normal_base layout.Layout.normal_pages
          |> List.filter (fun base ->
                 not
                   (Layout.region_equal (Layout.region_of layout base) Layout.Mbuf))
        in
        scribble_pages rng phys normal
  in
  (* 3. marshalling-buffer bytes are invisible to everyone (oracle) *)
  let phys, rng =
    scribble_pages rng phys
      (region_pages layout layout.Layout.mbuf_base layout.Layout.mbuf_pages)
  in
  (* 4. saved contexts of other principals *)
  let randomize_regs rng =
    let regs = State.zero_regs () in
    let rng = ref rng in
    for i = 0 to State.nregs - 1 do
      let v, rng' = Rng.next !rng in
      regs.(i) <- v;
      rng := rng'
    done;
    (regs, !rng)
  in
  let ctx, rng =
    Principal.Map.fold
      (fun p _ (ctx, rng) ->
        if Principal.equal p observer then (ctx, rng)
        else
          let regs, rng = randomize_regs rng in
          (Principal.Map.add p regs ctx, rng))
      st.State.ctx (st.State.ctx, rng)
  in
  (* 5. live registers of an active non-observer principal *)
  let regs, _rng =
    if Principal.equal st.State.active observer then (st.State.regs, rng)
    else randomize_regs rng
  in
  { st with State.mon = { d with Absdata.phys }; ctx; regs }

let secret_pairs_range ~lo ~hi ~seed ~steps ~observer layout =
  List.init (hi - lo) (fun j ->
      let i = lo + j in
      let st = trace ~seed:(seed + i) ~steps layout in
      (* alternate OS-active and enclave-active bases so both the
         active (5.3) and inactive (5.4) lemmas get non-vacuous cases;
         when the observer is an enclave, make it the one that runs *)
      let st =
        if i mod 2 = 1 then
          match observer with
          | Principal.Enclave eid -> ensure_enclave_active ~prefer:eid layout st
          | Principal.Os -> ensure_enclave_active layout st
        else st
      in
      let st' = perturb_secrets ~seed:(seed + 7919 + i) ~observer st in
      (Printf.sprintf "pair[seed=%d+%d]" seed i, st, st'))

let secret_pairs ?(n = 20) ~seed ~steps ~observer layout =
  secret_pairs_range ~lo:0 ~hi:n ~seed ~steps ~observer layout

let schedules ?(n = 10) ?(len = 12) ~seed layout =
  List.init n (fun i ->
      let rec go rng k acc =
        if k <= 0 then List.rev acc
        else
          let a, rng = random_action rng layout in
          go rng (k - 1) (a :: acc)
      in
      go (Rng.make (seed + (i * 131))) len [])

(* ------------------------------------------------------------------ *)
(* Action battery                                                      *)

let action_battery layout =
  let mbuf_page = mbuf_va_page layout in
  let reg_ops =
    [
      Transition.Const { dst = 0; value = 42L };
      Transition.Const { dst = 2; value = 7L };
      Transition.Compute { dst = 1; src1 = 0; src2 = 2 };
      Transition.Compute { dst = 3; src1 = 3; src2 = 3 };
    ]
  in
  let mem_targets =
    (* pages chosen to land in every interesting region of the virtual
       space: ELRANGE candidates, mbuf window, plain normal memory,
       high unmapped addresses *)
    [ 0; 1; 2; 4; mbuf_page; mbuf_page + 1; vpage_count layout - 1 ]
  in
  let mem_ops =
    List.concat_map
      (fun p ->
        [
          Transition.Load { dst = 0; va = page_va layout p };
          Transition.Store { src = 1; va = page_va layout p };
          Transition.Load { dst = 2; va = Int64.add (page_va layout p) 8L };
        ])
      mem_targets
  in
  let hypercalls =
    [
      Transition.Hc_create
        {
          elrange_base = 0L;
          elrange_pages = 2;
          mbuf_va = page_va layout mbuf_page;
        };
      Transition.Hc_create
        {
          (* invalid: overlaps the mbuf window *)
          elrange_base = page_va layout mbuf_page;
          elrange_pages = 1;
          mbuf_va = page_va layout mbuf_page;
        };
      Transition.Hc_add_page { eid = 1; va = 0L };
      Transition.Hc_add_page { eid = 1; va = page_va layout 1 };
      Transition.Hc_add_page { eid = 2; va = page_va layout 1 };
      Transition.Hc_add_page { eid = 99; va = 0L };
      Transition.Hc_remove_page { eid = 1; va = 0L };
      Transition.Hc_remove_page { eid = 1; va = page_va layout 1 };
      Transition.Hc_remove_page { eid = 2; va = 0L };
      Transition.Hc_remove_page { eid = 99; va = 0L };
      Transition.Hc_init_done { eid = 1 };
      Transition.Hc_init_done { eid = 2 };
      Transition.Hc_enter { eid = 1 };
      Transition.Hc_enter { eid = 2 };
      Transition.Hc_exit;
    ]
  in
  reg_ops @ mem_ops @ hypercalls

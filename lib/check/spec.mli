(** Per-function specification contracts and override composition.

    The executable analogue of SAW's MIR contract builtins
    ([mir_precond] / [mir_postcond] / [mir_points_to] / [mir_verify])
    for this stack's object-view memory.  A contract wraps a functional
    specification ({!Mirverif.Spec.t}) with executable pre- and
    postcondition predicates and points-to facts over {!Mir.Mem}, and
    can be packaged as a {!Mir.Compile.override} — the compiled-linkage
    stub a caller executes {e instead of} the callee's body once the
    callee has been proven against the contract.

    Contract violations are reported on the [Error] channel, the same
    channel {!Mirverif.Refine} treats as "specification undefined": a
    battery case that falls outside a precondition is skipped, never
    silently passed, and an override call outside its contract faults
    the caller rather than fabricating a result. *)

type 'abs pre = 'abs -> 'abs Mir.Value.t list -> bool
(** Precondition over (abstract state, resolved arguments). *)

type 'abs post = 'abs -> 'abs Mir.Value.t list -> 'abs * 'abs Mir.Value.t -> bool
(** Postcondition over the pre-state, the resolved arguments, and the
    (post-state, return value) the base specification produced. *)

type 'abs t
(** A contract: base functional spec + preconditions + postconditions
    + points-to facts, applied in that order by {!apply}. *)

val of_spec : 'abs Mirverif.Spec.t -> 'abs t
(** The trivial contract: exactly the base specification. *)

val make :
  name:string ->
  ('abs -> 'abs Mir.Value.t list -> ('abs * 'abs Mir.Value.t, string) result) ->
  'abs t

val name : 'abs t -> string
val base : 'abs t -> 'abs Mirverif.Spec.t

val requires : ?label:string -> 'abs pre -> 'abs t -> 'abs t
(** Add a precondition (checked after argument resolution, before the
    base spec).  A violated precondition makes the contract undefined
    with a message naming [label]. *)

val ensures : ?label:string -> 'abs post -> 'abs t -> 'abs t
(** Add a postcondition over the base specification's result. *)

val points_to : ?label:string -> Mir.Path.t -> ('abs Mir.Value.t -> bool) -> 'abs t -> 'abs t
(** Require that [path] is allocated in the object-view memory and its
    value satisfies the predicate — the [mir_points_to] fact. *)

val resolve_args :
  'abs -> mem:'abs Mir.Mem.t -> 'abs Mir.Value.t list ->
  ('abs Mir.Value.t list, string) result
(** Resolve pointer arguments to the pointee values a by-value
    specification expects: concrete pointers read through [mem],
    trusted pointers load from the abstract state, RData handles and
    plain data pass through unchanged. *)

val apply :
  'abs t -> 'abs -> mem:'abs Mir.Mem.t -> 'abs Mir.Value.t list ->
  ('abs * 'abs Mir.Value.t, string) result
(** Facts → resolve → preconditions → base spec → postconditions.  Any
    violation is [Error] (contract undefined). *)

val to_spec : ?mem:'abs Mir.Mem.t -> 'abs t -> 'abs Mirverif.Spec.t
(** The contract as a plain functional spec, with [mem] (default
    empty) fixed for fact checking and pointer resolution. *)

val frames : 'abs t -> Mir.Path.t list
(** The contract's declared frame: the object-memory paths of its
    [points_to] facts, in declaration order.  This is what the alias
    analysis certifies before the override is installed. *)

val override : ?frames:Mir.Path.t list -> 'abs t -> 'abs Mir.Compile.override
(** The contract as a compiled call-site stub.  Receives the caller's
    live object-view memory, so pointer arguments resolve against the
    state at the call site.

    [frames] (default {!frames}[ c], the [points_to] paths) declares
    the object-memory paths the stub claims as its write frame.  The
    declaration is {e checked, not trusted}: before installing the
    override, {!Code_proof} asks the interprocedural alias analysis
    ({!Analysis.Alias.certify}) to prove (1) the callee's footprint is
    exact, (2) every global the callee writes lies inside a declared
    frame, and (3) every frame is disjoint from every object-memory
    path the callers retain.  A refused override falls the callers
    back to the callee's {e body} — never a vacuous stub — mirroring
    the quarantine path for failed callee proofs.

    Template for a user-authored spec refinement (ROADMAP item 2
    follow-on): tighten the generated oracle spec with executable
    clauses, declare the frame, and let certification gate it:
    {[
      let refined oracle =
        Spec.of_spec oracle
        |> Spec.requires ~label:"vaddr-in-elrange"
             (fun _abs args -> match args with
                | _self :: Mir.Value.Data (Mir.Value.Vint va) :: _ ->
                    in_elrange va
                | _ -> false)
        |> Spec.points_to ~label:"self-invariant"
             (Mir.Path.global "self_obj")
             enclave_invariant
      in
      (* installed only if {self_obj} certifies disjoint from every
         caller-retained path; otherwise callers run the body *)
      Check.Code_proof.refine_contract ctx "Enclave::add_page"
        (refined oracle)
    ]} *)

(** {1 Fresh symbolic-ish variables}

    Deterministic stand-ins for the symbolic variables of a real
    [mir_verify]: each variable owns an independent stream derived by
    hashing its name into the seed (the generator's split discipline),
    so adding a variable never perturbs the samples of another. *)

type var

val fresh : string -> var
(** An unconstrained 64-bit variable. *)

val fresh_below : string -> int64 -> var
(** A variable sampled in [[0, bound)] (unsigned); [bound >= 1]. *)

val samples : seed:int -> n:int -> var list -> 'abs Mir.Value.t list list
(** [n] instantiations of the variable list, row [i] giving each
    variable its [i]-th draw. *)

val verify :
  ?fuel:int ->
  eq:'abs Mirverif.Refine.equiv ->
  seed:int -> n:int -> abs:'abs -> ?mem:'abs Mir.Mem.t ->
  vars:var list ->
  'abs t -> 'abs Mir.Compile.t -> Mirverif.Report.t
(** Sampling verification of the compiled environment's function named
    [name contract] against the contract: draws [n] instantiations of
    [vars], runs code and contract from [abs]/[mem], and reports
    pass / skip / fail exactly like {!Mirverif.Refine.run_battery}. *)

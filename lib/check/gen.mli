(** Generators of machine states, state pairs, and action batteries.

    States are reached by running random action traces from the booted
    state through the real transition relation, so every generated
    state is {e reachable} — which is what the invariant-preservation
    and noninterference theorems quantify over.

    Pairs for the confidentiality lemmas share their public structure
    (same trace) and differ only in secrets invisible to the given
    observer: other principals' EPC page contents, saved register
    contexts, an inactive observer's live registers, normal memory when
    the observer is an enclave, and marshalling-buffer bytes (whose
    data is declassified through the oracle, not memory). *)

val trace : seed:int -> steps:int -> Hyperenclave.Layout.t -> Security.State.t
(** Run a random [steps]-long action trace from boot. *)

val states :
  ?n:int -> seed:int -> steps:int -> Hyperenclave.Layout.t ->
  (string * Security.State.t) list
(** Labelled reachable states ([n] defaults to 20). *)

val states_range :
  lo:int -> hi:int -> seed:int -> steps:int -> Hyperenclave.Layout.t ->
  (string * Security.State.t) list
(** States [lo..hi-1] of the same sequence {!states} enumerates: the
    obligation engine shards a state battery into index ranges and the
    concatenation of the shards is byte-identical to the whole. *)

val absdata_states :
  ?n:int -> seed:int -> steps:int -> Hyperenclave.Layout.t ->
  (string * Hyperenclave.Absdata.t) list
(** The monitor components of {!states}. *)

val ensure_enclave_active :
  ?prefer:int -> Hyperenclave.Layout.t -> Security.State.t -> Security.State.t
(** Best-effort switch into an enclave (creating and sealing one when
    necessary); with [prefer], into that specific enclave id. *)

val perturb_secrets :
  seed:int -> observer:Security.Principal.t -> Security.State.t ->
  Security.State.t
(** Rewrite state components outside the observer's view. *)

val secret_pairs :
  ?n:int -> seed:int -> steps:int -> observer:Security.Principal.t ->
  Hyperenclave.Layout.t ->
  (string * Security.State.t * Security.State.t) list
(** Pairs (σ, perturb σ), indistinguishable to [observer] by
    construction. *)

val secret_pairs_range :
  lo:int -> hi:int -> seed:int -> steps:int ->
  observer:Security.Principal.t -> Hyperenclave.Layout.t ->
  (string * Security.State.t * Security.State.t) list
(** Pairs [lo..hi-1] of the {!secret_pairs} sequence (sharding, as for
    {!states_range}). *)

val schedules :
  ?n:int -> ?len:int -> seed:int -> Hyperenclave.Layout.t ->
  Security.Transition.action list list
(** Random multi-step schedules for the trace-level noninterference
    check ([n] defaults to 10, [len] to 12). *)

val action_battery : Hyperenclave.Layout.t -> Security.Transition.action list
(** A representative set of actions: register ops, loads and stores
    across every region (ELRANGE, mbuf window, normal memory, secure
    memory, unmapped), and all five hypercalls with valid and invalid
    arguments. *)

val random_action : Rng.t -> Hyperenclave.Layout.t -> Security.Transition.action * Rng.t

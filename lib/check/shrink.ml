(* Greedy ddmin: repeatedly delete contiguous chunks, halving the
   chunk size whenever no chunk of the current size can be removed.
   Terminates because every accepted deletion strictly shrinks the
   list and the chunk size strictly decreases otherwise. *)

let drop_chunk xs ~start ~len =
  List.filteri (fun i _ -> i < start || i >= start + len) xs

let evaluations ~check xs =
  let evals = ref 0 in
  let fails xs =
    incr evals;
    check xs
  in
  if not (fails xs) then (xs, !evals)
  else
    let rec at_size xs size =
      if size < 1 then xs
      else
        (* scan chunk starts left to right; a successful deletion keeps
           scanning at the same size and position *)
        let rec scan xs start =
          if start >= List.length xs then at_size xs (size / 2)
          else
            let candidate = drop_chunk xs ~start ~len:size in
            if List.length candidate < List.length xs && fails candidate then
              scan candidate start
            else scan xs (start + 1)
        in
        scan xs 0
    in
    let shrunk = at_size xs (max 1 (List.length xs / 2)) in
    (shrunk, !evals)

let list ~check xs = fst (evaluations ~check xs)

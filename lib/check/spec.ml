(* Per-function specification contracts and override composition.

   The paper's code proofs (Sec. 4.3) are compositional: each function
   is verified against its own functional specification, assuming only
   the specifications of its callees.  This module is the executable
   contract language that makes the callee side of that assumption
   runnable — the analogue of SAW's [mir_verify]/[mir_points_to]/
   [mir_precond]/[mir_postcond] builtins for our object-view memory:

   - a contract wraps a functional spec ({!Mirverif.Spec.t}) with
     executable pre/postcondition predicates and points-to facts
     checked against {!Mir.Mem};
   - pointer arguments ([self] of a method call) are resolved through
     the object-view memory to the pointee value the by-value spec
     expects — the [mir_points_to] step;
   - {!override} packages the contract as a {!Mir.Compile.override}, a
     compiled-linkage stub callers execute instead of the callee's
     body once the callee is proven;
   - {!fresh}/{!samples} draw deterministic "symbolic-ish" variables
     from per-variable streams (the same seed-splitting discipline as
     the generator's), and {!verify} is the [mir_verify]-shaped
     sampling check of an executor against a contract.

   Contract violations surface on the [Error] channel — the same
   channel as "spec undefined", so a battery case outside a
   precondition is skipped, never silently passed. *)

module Value = Mir.Value
module Mem = Mir.Mem

type 'abs pre = 'abs -> 'abs Value.t list -> bool
type 'abs post = 'abs -> 'abs Value.t list -> 'abs * 'abs Value.t -> bool

type 'abs fact = {
  f_label : string;
  f_path : Mir.Path.t;
  f_pred : 'abs Value.t -> bool;
}

type 'abs t = {
  c_base : 'abs Mirverif.Spec.t;
  c_pres : (string * 'abs pre) list; (* declaration order *)
  c_posts : (string * 'abs post) list;
  c_facts : 'abs fact list;
}

let of_spec base = { c_base = base; c_pres = []; c_posts = []; c_facts = [] }
let make ~name exec = of_spec { Mirverif.Spec.name; exec }
let name c = c.c_base.Mirverif.Spec.name
let base c = c.c_base

let requires ?label pred c =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "pre#%d" (List.length c.c_pres + 1)
  in
  { c with c_pres = c.c_pres @ [ (label, pred) ] }

let ensures ?label pred c =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "post#%d" (List.length c.c_posts + 1)
  in
  { c with c_posts = c.c_posts @ [ (label, pred) ] }

let points_to ?label path pred c =
  let f_label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "points-to#%d" (List.length c.c_facts + 1)
  in
  { c with c_facts = c.c_facts @ [ { f_label; f_path = path; f_pred = pred } ] }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Object-view argument resolution: a concrete pointer dereferences
   through the memory, a trusted pointer loads from the abstract
   state, and everything else (plain data, RData handles — whose
   pointees are deliberately opaque) passes through unchanged. *)
let resolve_arg abs mem (v : 'abs Value.t) =
  match v with
  | Value.Ptr (Value.Concrete path) -> (
      match Mem.read mem path with
      | Ok pointee -> Ok pointee
      | Error msg -> Error (Printf.sprintf "points-to resolution: %s" msg))
  | Value.Ptr (Value.Trusted t) -> (
      match t.Value.tp_load abs with
      | Ok pointee -> Ok pointee
      | Error msg -> Error (Printf.sprintf "trusted pointee load: %s" msg))
  | v -> Ok v

let resolve_args abs ~mem args =
  List.fold_right
    (fun v acc ->
      let* rest = acc in
      let* v = resolve_arg abs mem v in
      Ok (v :: rest))
    args (Ok [])

let check_facts c mem =
  List.fold_left
    (fun acc f ->
      let* () = acc in
      match Mem.read mem f.f_path with
      | Error msg -> Error (Printf.sprintf "fact %s: %s" f.f_label msg)
      | Ok v ->
          if f.f_pred v then Ok ()
          else Error (Printf.sprintf "fact %s does not hold" f.f_label))
    (Ok ()) c.c_facts

let check_pres c abs args =
  List.fold_left
    (fun acc (label, pred) ->
      let* () = acc in
      if pred abs args then Ok ()
      else Error (Printf.sprintf "precondition %s violated" label))
    (Ok ()) c.c_pres

let check_posts c abs args result =
  List.fold_left
    (fun acc (label, pred) ->
      let* () = acc in
      if pred abs args result then Ok ()
      else Error (Printf.sprintf "postcondition %s violated" label))
    (Ok ()) c.c_posts

let apply c abs ~mem args =
  let* () = check_facts c mem in
  let* args = resolve_args abs ~mem args in
  let* () = check_pres c abs args in
  let* result = Mirverif.Spec.apply c.c_base abs args in
  let* () = check_posts c abs args result in
  Ok result

let to_spec ?(mem = Mem.empty) c =
  { Mirverif.Spec.name = name c; exec = (fun abs args -> apply c abs ~mem args) }

let frames c = List.map (fun f -> f.f_path) c.c_facts

let override ?frames:fr c =
  {
    Mir.Compile.ov_name = name c;
    ov_exec = (fun abs mem args -> apply c abs ~mem args);
    ov_frames = (match fr with Some fs -> fs | None -> frames c);
  }

(* ------------------------------------------------------------------ *)
(* Fresh symbolic-ish variables                                        *)

type kind = Ku64 | Kbelow of int64

type var = { v_name : string; v_kind : kind }

let fresh v_name = { v_name; v_kind = Ku64 }

let fresh_below v_name bound =
  if Int64.compare bound 1L < 0 then
    invalid_arg "Spec.fresh_below: bound must be >= 1";
  { v_name; v_kind = Kbelow bound }

(* One deterministic stream per (seed, variable name): the same
   split-by-stable-tag discipline the engine uses for per-obligation
   streams, so samples never depend on evaluation order. *)
let var_stream ~seed v =
  let h = ref seed in
  String.iter (fun c -> h := (!h * 131) + Char.code c) v.v_name;
  Rng.make !h

let sample_var ~seed v i : 'abs Value.t =
  let rec nth rng k =
    let w, rng = Rng.next rng in
    if k <= 0 then w else nth rng (k - 1)
  in
  let w = nth (var_stream ~seed v) i in
  match v.v_kind with
  | Ku64 -> Value.u64 w
  | Kbelow b -> Value.u64 (Int64.unsigned_rem w b)

let samples ~seed ~n vars =
  List.init n (fun i -> List.map (fun v -> sample_var ~seed v i) vars)

(* ------------------------------------------------------------------ *)
(* Sampling verification (the mir_verify shape)                        *)

let verify ?fuel ~eq ~seed ~n ~abs ?(mem = Mem.empty) ~vars c cenv =
  let cases =
    List.map (fun args -> Mirverif.Refine.case ~mem abs args) (samples ~seed ~n vars)
  in
  let check =
    Mirverif.Refine.check ?fuel ~fn:(name c) ~spec:(to_spec ~mem c) ~eq cases
  in
  Mirverif.Refine.run_compiled cenv check

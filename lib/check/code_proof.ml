open Hyperenclave
module Refine = Mirverif.Refine
module Value = Mir.Value
module Word = Mir.Word

let u64 = Marshal_v.u64

(* ------------------------------------------------------------------ *)
(* Input pools                                                         *)

type pool = {
  layout : Layout.t;
  states : (string * Absdata.t) list;
  roots : Absdata.t -> int64 list;  (* table roots worth exercising *)
  vas : int64 list;
  entries : int64 list;  (* raw pte words *)
  flags : int64 list;
}

let page l i = Int64.mul (Int64.of_int (Geometry.page_size l.Layout.geom)) (Int64.of_int i)

let make_pool ?(seed = 2024) layout =
  let g = layout.Layout.geom in
  (* a state whose tables carry level-1 mappings at small addresses *)
  let lifecycle =
    let o =
      Hypercall.create (Boot.booted layout) ~elrange_base:0L ~elrange_pages:2
        ~mbuf_va:(page layout (layout.Layout.normal_pages))
    in
    let o2 = Hypercall.add_page o.Hypercall.d ~eid:o.Hypercall.value ~va:0L in
    let o3 = Hypercall.add_page o2.Hypercall.d ~eid:o.Hypercall.value ~va:(page layout 1) in
    o3.Hypercall.d
  in
  (* a state with deliberately corrupted tables: entries escaping the
     frame area (in-range and out-of-range) and a dangling next-table
     pointer — the inputs the malformed-table paths exist for *)
  let corrupted, corrupted_root =
    let d = Boot.booted layout in
    match Pt_flat.create_table d with
    | Error _ -> (d, 0)
    | Ok (d, root) ->
        let evil =
          [
            (0, Pte.make g ~pa:(page layout 2) Flags.user_rw);
            (1, Pte.make g ~pa:layout.Layout.epc_base Flags.present_rw);
            (2, Pte.make g ~pa:(Layout.frame_addr layout (layout.Layout.frame_count - 1)) Flags.user_rw);
          ]
        in
        ( List.fold_left
            (fun d (index, e) ->
              match Pt_flat.write_entry d ~frame:root ~index e with
              | Ok d -> d
              | Error _ -> d)
            d evil,
          root )
  in
  let states =
    ("pristine", Absdata.create layout)
    :: ("booted", Boot.booted layout)
    :: ("lifecycle", lifecycle)
    :: ("corrupted", corrupted)
    :: Gen.absdata_states ~n:4 ~seed ~steps:25 layout
  in
  let roots (d : Absdata.t) =
    let enclave_roots =
      List.concat_map
        (fun eid ->
          match Absdata.find_enclave d eid with
          | Ok e -> [ Int64.of_int e.Enclave.gpt_root; Int64.of_int e.Enclave.ept_root ]
          | Error _ -> [])
        (Absdata.enclave_ids d)
    in
    let os_root =
      match d.Absdata.os_ept_root with Some r -> [ Int64.of_int r ] | None -> []
    in
    (* include the deliberately corrupted table, an almost-certainly-
       unallocated frame, and a wildly invalid one *)
    os_root @ enclave_roots
    @ [ Int64.of_int corrupted_root;
        Int64.of_int (layout.Layout.frame_count - 1);
        Int64.of_int (layout.Layout.frame_count + 3) ]
  in
  let vas =
    [
      0L;
      page layout 1;
      page layout 3;
      Int64.add (page layout 1) 8L;
      Int64.add (page layout 1) 1L;
      Int64.sub (Geometry.va_limit g) (Int64.of_int (Geometry.page_size g));
      Geometry.va_limit g;
      0xDEAD_BEE0L;
    ]
  in
  let entries =
    [
      0L;
      Pte.make g ~pa:layout.Layout.epc_base Flags.user_rw;
      Pte.make g ~pa:layout.Layout.frame_base Flags.user_rw;
      Pte.make g ~pa:(Layout.frame_addr layout 1) Flags.present_rw;
      Pte.make g ~pa:(page layout 2) (Flags.with_huge Flags.user_rw);
      0xFFFF_FFFF_FFFF_FFFFL;
      42L;
    ]
  in
  let flags =
    List.map (Flags.encode g)
      [ Flags.user_rw; Flags.user_r; Flags.present_rw; Flags.none;
        Flags.with_huge Flags.user_rw ]
  in
  { layout; states; roots; vas; entries; flags }

(* ------------------------------------------------------------------ *)
(* Case builders                                                       *)

(* args lists per state *)
let cases_of pool mk =
  List.concat_map
    (fun (label, d) ->
      List.map
        (fun args ->
          Refine.case
            ~label:(Printf.sprintf "%s %s" label
                      (String.concat "," (List.map Value.to_string args)))
            d args)
        (mk d))
    pool.states


let levels pool =
  List.init (pool.layout.Layout.geom.Geometry.levels + 2) (fun i -> Int64.of_int i)

let frame_indices pool =
  [ 0L; 1L; 2L; Int64.of_int (pool.layout.Layout.frame_count - 1);
    Int64.of_int pool.layout.Layout.frame_count;
    Int64.of_int (pool.layout.Layout.frame_count + 5); 100000L ]

let epc_indices pool =
  [ 0L; 1L; Int64.of_int (pool.layout.Layout.epc_pages - 1);
    Int64.of_int pool.layout.Layout.epc_pages; 999L ]

let indices pool =
  [ 0L; 1L; Int64.of_int (Geometry.entries_per_table pool.layout.Layout.geom - 1);
    Int64.of_int (Geometry.entries_per_table pool.layout.Layout.geom) ]

let product2 xs ys = List.concat_map (fun x -> List.map (fun y -> [ x; y ]) ys) xs

let product3 xs ys zs =
  List.concat_map (fun x -> List.concat_map (fun y -> List.map (fun z -> [ x; y; z ]) zs) ys) xs

(* Sample a list down to bound the case count (deterministic). *)
let sample n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    let step = len / n in
    List.filteri (fun i _ -> i mod step = 0) xs

let uv = List.map u64

(* Enclave struct cases: real enclaves of the state + synthetic ones. *)
let enclave_values pool (d : Absdata.t) =
  let real =
    List.filter_map
      (fun eid ->
        match Absdata.find_enclave d eid with
        | Ok e -> Some (Mem_spec.enclave_to_value e)
        | Error _ -> None)
      (Absdata.enclave_ids d)
  in
  let synth state gpt ept =
    Mem_spec.enclave_to_value
      {
        Enclave.eid = 7;
        state;
        elrange_base = 0L;
        elrange_pages = 2;
        mbuf_va = page pool.layout 8;
        mbuf_pages = pool.layout.Layout.mbuf_pages;
        gpt_root = gpt;
        ept_root = ept;
      }
  in
  real
  @ [ synth Enclave.Created 0 1; synth Enclave.Initialized 0 1;
      synth Enclave.Created (pool.layout.Layout.frame_count + 2) 0 ]

let method_cases pool mk_args =
  (* self passed as a pointer into object memory; the spec receives the
     struct by value (paper Sec. 3.4 case 1) *)
  List.concat_map
    (fun (label, d) ->
      List.concat_map
        (fun self_value ->
          List.map
            (fun rest ->
              let self_path = Mir.Path.global "self_obj" in
              let mem = Mir.Mem.define (Mir.Path.Global "self_obj") self_value Mir.Mem.empty in
              Refine.case
                ~label:(Printf.sprintf "%s self=%s (%s)" label
                          (Value.to_string self_value)
                          (String.concat "," (List.map Value.to_string rest)))
                ~spec_args:(self_value :: rest) ~mem d
                (Value.ptr_path self_path :: rest))
            (mk_args d))
        (enclave_values pool d))
    pool.states

(* ------------------------------------------------------------------ *)
(* Per-function case tables                                            *)

let args_for pool fn (d : Absdata.t) : _ Value.t list list =
  let l = pool.layout in
  let pg i = page l i in
  match fn with
  | "pte_empty" | "frame_alloc" | "create_table" | "as_create" | "epcm_find_free" ->
      [ [] ]
  | "pte_is_present" | "pte_is_huge" | "pte_is_writable" | "pte_is_user"
  | "pte_addr" | "pte_flag_bits" | "entry_target_frame" ->
      List.map (fun e -> [ u64 e ]) pool.entries
  | "pte_make" | "pte_set_flags" ->
      product2 pool.entries pool.flags |> List.map uv
  | "page_offset" | "page_base" | "is_page_aligned" | "va_ok" ->
      List.map (fun va -> [ u64 va ]) pool.vas
  | "span_shift" -> List.map (fun lv -> [ u64 lv ]) (levels pool)
  | "va_index" -> product2 (levels pool) pool.vas |> List.map uv
  | "frame_bit_is_set" | "frame_free" | "frame_is_allocated" | "frame_mark"
  | "frame_clear" | "frame_addr" | "table_zero" ->
      List.map (fun f -> [ u64 f ]) (frame_indices pool)
  | "entry_pa" | "read_entry" ->
      product2 (frame_indices pool) (indices pool) |> List.map uv
  | "write_entry" ->
      product3 (frame_indices pool) (indices pool) (sample 3 pool.entries)
      |> List.map uv
  | "walk" | "unmap_page" | "walk_alloc" | "query" | "translate" ->
      product2 (pool.roots d) pool.vas |> List.map uv
  | "map_page" | "map_range_one" ->
      List.concat_map
        (fun root ->
          List.concat_map
            (fun va ->
              List.map
                (fun (pa, fl) -> uv [ root; va; pa; fl ])
                [
                  (l.Layout.epc_base, List.nth pool.flags 0);
                  (pg 2, List.nth pool.flags 1);
                  (pg 1, List.nth pool.flags 3);
                  (Int64.add l.Layout.epc_base 8L, List.nth pool.flags 0);
                  (Layout.phys_limit l, List.nth pool.flags 0);
                ])
            (sample 5 pool.vas))
        (pool.roots d)
  | "map_range" ->
      List.concat_map
        (fun root ->
          List.map
            (fun pages -> uv [ root; 0L; l.Layout.epc_base; pages; List.nth pool.flags 0 ])
            [ 0L; 1L; 2L; 3L ])
        (sample 2 (pool.roots d))
  | "epcm_set_valid" ->
      List.map (fun p -> uv [ p; 3L; pg 1 ]) (epc_indices pool)
  | "epcm_clear" | "epc_page_addr" | "epc_page_zero" ->
      List.map (fun p -> [ u64 p ]) (epc_indices pool)
  | "mbuf_map_one" ->
      List.map
        (fun (gpt, ept) -> uv [ gpt; ept; pg 8; l.Layout.mbuf_base ])
        (match pool.roots d with
        | a :: b :: _ -> [ (a, b); (b, a) ]
        | [ a ] -> [ (a, a) ]
        | [] -> [])
  | "mbuf_map" ->
      List.map
        (fun (gpt, ept) -> uv [ gpt; ept; pg 8 ])
        (match pool.roots d with a :: b :: _ -> [ (a, b) ] | _ -> [])
  | "ranges_disjoint" ->
      [
        uv [ 0L; 2L; pg 2; 1L ]; uv [ 0L; 3L; pg 2; 1L ]; uv [ pg 4; 2L; 0L; 4L ];
        uv [ 0L; 2L; 0L; 2L ];
      ]
  | "range_ok" ->
      List.map (fun (b, p) -> uv [ b; p ])
        [ (0L, 2L); (0L, 0L); (1L, 1L); (pg 14, 2L); (pg 14, 3L); (pg 100, 1L) ]
  | "hc_create" ->
      [
        uv [ 0L; 2L; pg 8 ];
        uv [ 0L; 2L; pg 14 ];
        uv [ 1L; 2L; pg 8 ];
        uv [ pg 8; 1L; pg 8 ];
        uv [ 0L; 100L; pg 8 ];
        uv [ pg 4; 4L; pg 8 ];
      ]
  | _ -> []

let eq : Absdata.t Refine.equiv = Refine.equiv Absdata.equal

(* ------------------------------------------------------------------ *)
(* Call-graph queries for override composition                         *)

(* Spec-owned callees of [fn], first-call-site order, deduplicated,
   self-calls excluded.  Only functions that own a spec can ever be
   stubbed (or depended on) by the engine. *)
let callees layout fn =
  let program = (Layers.compiled layout).Rustlite.Pipeline.program in
  match Mir.Syntax.find_body program fn with
  | None -> []
  | Some body ->
      let seen = Hashtbl.create 8 in
      List.filter
        (fun g ->
          g <> fn
          && (not (Hashtbl.mem seen g))
          && Option.is_some (Mem_spec.find layout g)
          &&
          (Hashtbl.add seen g ();
           true))
        (Mirverif.Layer.calls_of_body body)

(* Callees living in [fn]'s own layer: exactly the calls the monolithic
   checker runs as bodies and override composition runs as specs.
   Lower-layer callees are already primitives in both modes. *)
let same_layer_callees layout fn =
  match Layers.layer_of_function layout fn with
  | None -> []
  | Some lname ->
      List.filter
        (fun g -> Layers.layer_of_function layout g = Some lname)
        (callees layout fn)

(* A user-authored refinement of a function's generated oracle spec:
   [Installed] once its declared frame certified against the alias
   footprints, [Refused] (with the reason) otherwise — a refused
   function gets {e no} override at all, so callers run its body. *)
type contract_entry = Installed of Absdata.t Spec.t | Refused of string

type ctx = {
  ctx_layout : Layout.t;
  ctx_pool : pool;
  (* per-function check memo: generated cases are deterministic given
     (seed, layout), so each function's check is built once per ctx
     instead of once per obligation run.  Pre-filled at ctx build (from
     a single domain) and mutex-guarded for any stragglers, so worker
     domains only ever read it. *)
  ctx_checks : (string, (string * Absdata.t Refine.check) option) Hashtbl.t;
  (* per-layer override-composed compiled environments: every spec-owned
     function of the layer is linked as a {!Spec} override, so same-layer
     calls execute callee contracts instead of callee bodies.  Shares
     {!Layers.compile_memo}, whose keys include call-site linkage. *)
  ctx_cenvs : (string, Absdata.t Mir.Compile.t) Hashtbl.t;
  (* refined contracts, keyed by function ({!refine_contract}) *)
  ctx_contracts : (string, contract_entry) Hashtbl.t;
  (* Andersen summaries of the whole memory module, shared by every
     certification query; forced once, on first use *)
  ctx_alias : Analysis.Alias.info Analysis.Alias.StrMap.t Lazy.t;
  ctx_mu : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Alias footprints and frame certification                            *)

let trusted_prims =
  List.map (fun (s : Absdata.t Mirverif.Spec.t) -> s.Mirverif.Spec.name) Trusted.all

(* The trusted primitives only touch the axiomatized abstract state —
   that is their definition — so their footprint is the [Labs]
   location and caller footprints through them stay exact. *)
let prim_summary g =
  if List.mem g trusted_prims then
    Some
      {
        Analysis.Alias.fp =
          {
            Analysis.Alias.reads = Analysis.Alias.LocSet.singleton Analysis.Alias.Labs;
            writes = Analysis.Alias.LocSet.singleton Analysis.Alias.Labs;
          };
        ret = Analysis.Alias.LocSet.empty;
        esc = Analysis.Alias.IntSet.empty;
      }
  else None

let alias_infos ctx = Lazy.force ctx.ctx_alias

let footprint ctx fn = Analysis.Alias.footprint (alias_infos ctx) fn

(* Is [fn] checked through a battery that allocates object memory?
   Method batteries define the [self_obj] global and pass a pointer to
   it (see {!method_cases}), so the caller retains that path across
   every same-layer call. *)
let battery_paths fn =
  if String.contains fn ':' then [ Mir.Path.global "self_obj" ] else []

(* Everything the same-layer callers of [fn] retain: the globals of
   their own certified footprints plus the object memory their case
   batteries allocate. *)
let retained_paths ctx fn =
  let layout = ctx.ctx_layout in
  let callers =
    match Layers.layer_of_function layout fn with
    | None -> []
    | Some lname ->
        List.filter
          (fun g -> g <> fn && List.mem fn (same_layer_callees layout g))
          (Layers.functions_of_layer layout lname)
  in
  let infos = alias_infos ctx in
  let global_paths fn' =
    let fp = Analysis.Alias.footprint infos fn' in
    Analysis.Alias.LocSet.fold
      (fun l acc ->
        match l with
        | Analysis.Alias.Lglobal g -> Mir.Path.global g :: acc
        | _ -> acc)
      (Analysis.Alias.LocSet.union fp.Analysis.Alias.reads
         fp.Analysis.Alias.writes)
      []
  in
  List.sort_uniq Mir.Path.compare
    (List.concat_map (fun g -> battery_paths g @ global_paths g) callers)

let certify_frames ctx fn ~frames =
  if frames = [] then Ok ()
  else
    Analysis.Alias.certify ~callee_fp:(footprint ctx fn) ~frames
      ~retained:(retained_paths ctx fn)

let build_check ctx fn =
  match Layers.layer_of_function ctx.ctx_layout fn with
  | None -> None
  | Some lname ->
      let pool = ctx.ctx_pool in
      let spec =
        match Mem_spec.find ctx.ctx_layout fn with
        | Some s -> s
        | None -> invalid_arg ("no spec for " ^ fn)
      in
      let cases =
        match fn with
        | "Enclave::in_elrange" | "Enclave::add_page" | "Enclave::remove_page" ->
            method_cases pool (fun _ -> List.map (fun va -> [ u64 va ]) (sample 5 pool.vas))
        | _ -> cases_of pool (args_for pool fn)
      in
      Some (lname, Refine.check ~fn ~spec ~eq cases)

let check_function ctx fn =
  Mutex.lock ctx.ctx_mu;
  match Hashtbl.find_opt ctx.ctx_checks fn with
  | Some r ->
      Mutex.unlock ctx.ctx_mu;
      r
  | None ->
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ctx.ctx_mu)
        (fun () ->
          let r = build_check ctx fn in
          Hashtbl.add ctx.ctx_checks fn r;
          r)

(* Composed environment for one layer: the layer's interpreter
   environment with every spec-owned function of the layer linked as an
   override.  The check's entry function still runs its own body
   ({!Mir.Compile.call} enters via the body table), so a function is
   never proven against a stub of itself. *)
let build_composed ctx lname =
  let layout = ctx.ctx_layout in
  let overrides =
    List.filter_map
      (fun fn ->
        match Mem_spec.find layout fn with
        | None -> None
        | Some s -> (
            match Hashtbl.find_opt ctx.ctx_contracts fn with
            | Some (Installed c) -> Some (Spec.override c)
            | Some (Refused _) ->
                (* certification refused the refined contract: no
                   override at all, callers run the body (the linkage
                   flips o→b, which re-keys the compile memo) *)
                None
            | None -> Some (Spec.override (Spec.of_spec s))))
      (Layers.functions_of_layer layout lname)
  in
  Mir.Compile.compile ~cache:Layers.compile_memo ~overrides
    (Layers.env_for layout ~layer:lname)

let composed_for ctx lname =
  Mutex.lock ctx.ctx_mu;
  match Hashtbl.find_opt ctx.ctx_cenvs lname with
  | Some cenv ->
      Mutex.unlock ctx.ctx_mu;
      cenv
  | None ->
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ctx.ctx_mu)
        (fun () ->
          let cenv = build_composed ctx lname in
          Hashtbl.add ctx.ctx_cenvs lname cenv;
          cenv)

(* Install a user-authored refinement of [fn]'s contract, gated by
   frame certification: the contract's declared frame (its [points_to]
   paths, or an explicit [Spec.override ~frames] choice re-declared
   here via the facts) must certify against the callee's footprint and
   the callers' retained paths.  On refusal the function is stripped
   of its override entirely — callers fall back to its body, mirroring
   the quarantine path — and the [Error] carries the reason.  Either
   way the layer's composed environment is rebuilt on next use. *)
let refine_contract ctx fn contract =
  let frames = Spec.frames contract in
  let decision = certify_frames ctx fn ~frames in
  Mutex.lock ctx.ctx_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctx.ctx_mu)
    (fun () ->
      (match decision with
      | Ok () -> Hashtbl.replace ctx.ctx_contracts fn (Installed contract)
      | Error reason -> Hashtbl.replace ctx.ctx_contracts fn (Refused reason));
      (match Layers.layer_of_function ctx.ctx_layout fn with
      | Some lname -> Hashtbl.remove ctx.ctx_cenvs lname
      | None -> ());
      decision)

let refusal ctx fn =
  match Hashtbl.find_opt ctx.ctx_contracts fn with
  | Some (Refused reason) -> Some reason
  | _ -> None

let ctx ?(seed = 2024) layout =
  (* building the pool also warms the layout-keyed compile/stack/boot
     caches, so a ctx built up front is safe to share across domains *)
  let pool = make_pool ~seed layout in
  ignore (Layers.stack layout);
  let ctx =
    { ctx_layout = layout; ctx_pool = pool;
      ctx_checks = Hashtbl.create 64;
      ctx_cenvs = Hashtbl.create 16;
      ctx_contracts = Hashtbl.create 8;
      ctx_alias =
        lazy
          (Analysis.Alias.analyze ~prim:prim_summary
             (Layers.compiled layout).Rustlite.Pipeline.program);
      ctx_mu = Mutex.create () }
  in
  List.iter
    (fun lname ->
      List.iter
        (fun fn -> ignore (check_function ctx fn))
        (Layers.functions_of_layer layout lname);
      if Layers.functions_of_layer layout lname <> [] then
        ignore (composed_for ctx lname))
    Mem_spec.layer_names;
  ctx

let run_function ctx fn =
  Option.map
    (fun (lname, c) ->
      (lname, Refine.run_compiled (Layers.compiled_for ctx.ctx_layout ~layer:lname) c))
    (check_function ctx fn)

(* Compositional path: the identical case battery against the
   override-composed environment, so same-layer callees execute their
   contracts instead of their bodies.  Sound only once those callees
   are themselves proven — the engine gates this behind the callee
   obligations' outcomes and falls back to {!run_function}. *)
let run_function_composed ctx fn =
  Option.map
    (fun (lname, c) -> (lname, Refine.run_compiled (composed_for ctx lname) c))
    (check_function ctx fn)

(* Degraded path: the identical case battery under the reference
   interpreter.  The engine's supervisor runs this when the compiled
   executor crashes — the battery is memoized in the ctx, so the only
   extra cost is the (slower) interpreted execution itself. *)
let run_function_interp ctx fn =
  Option.map
    (fun (lname, c) ->
      (lname, Refine.run_interp (Layers.env_for ctx.ctx_layout ~layer:lname) c))
    (check_function ctx fn)

let checks ?seed layout =
  let ctx = ctx ?seed layout in
  List.concat_map
    (fun lname ->
      List.filter_map (check_function ctx) (Layers.functions_of_layer layout lname)
      |> List.map (fun (l, c) -> ((l : string), c)))
    Mem_spec.layer_names

let run_layer ?seed layout lname =
  let ctx = ctx ?seed layout in
  Layers.functions_of_layer layout lname
  |> List.filter_map (run_function ctx)
  |> List.map snd

let run_all ?seed layout =
  let ctx = ctx ?seed layout in
  List.concat_map
    (fun lname ->
      Layers.functions_of_layer layout lname |> List.filter_map (run_function ctx))
    Mem_spec.layer_names

let total_cases results =
  List.fold_left
    (fun (t, p, s, f) (_, (r : Mirverif.Report.t)) ->
      ( t + r.Mirverif.Report.total,
        p + r.Mirverif.Report.passed,
        s + r.Mirverif.Report.skipped,
        f + Mirverif.Report.failure_count r ))
    (0, 0, 0, 0) results

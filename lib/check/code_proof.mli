(** Code-conformance checks for the 49 verified functions.

    For every function of the compiled memory module, builds
    {!Mirverif.Refine} cases — reachable abstract states crossed with
    argument batteries covering valid, boundary, and invalid inputs —
    and checks the MIR execution (lower layers replaced by their
    specifications) against the function's own specification.  This is
    the executable counterpart of the paper's per-function code proofs
    (Sec. 4.3). *)

type ctx
(** Shared check context: the input pool (reachable states, argument
    batteries), the warmed compile/stack caches, and a per-function
    check memo — case generation is deterministic given (seed, layout),
    so each function's check is built exactly once per ctx instead of
    once per obligation run.  Build one ctx up front and reuse it
    across per-function runs — including runs on other domains: the
    memo is pre-filled at ctx build from a single domain and
    mutex-guarded after that. *)

val ctx : ?seed:int -> Hyperenclave.Layout.t -> ctx

val callees : Hyperenclave.Layout.t -> string -> string list
(** Spec-owned functions [fn] calls directly (first-call-site order,
    deduplicated, self-calls excluded) — the call-graph edges the
    engine turns into override dependencies and fingerprint
    ingredients. *)

val same_layer_callees : Hyperenclave.Layout.t -> string -> string list
(** The subset of {!callees} living in [fn]'s own layer: exactly the
    calls that the monolithic checker executes as bodies and the
    override-composed checker executes as contracts.  (Lower-layer
    callees are primitives in both modes.) *)

val check_function :
  ctx -> string -> (string * Hyperenclave.Absdata.t Mirverif.Refine.check) option
(** [(layer, check)] for one function; [None] if no spec owns it. *)

val run_function : ctx -> string -> (string * Mirverif.Report.t) option
(** Run the conformance check of a single function — the obligation
    granularity of the parallel engine. *)

val run_function_composed : ctx -> string -> (string * Mirverif.Report.t) option
(** The identical battery against the override-composed environment:
    same-layer callees execute their {!Spec} contracts instead of their
    bodies ({!Mir.Compile.override} linkage).  Sound only once those
    callees are proven — the engine gates each caller on its callees'
    obligation outcomes and falls back to {!run_function} while the
    gate is closed (e.g. a quarantined callee under engine chaos). *)

val run_function_interp : ctx -> string -> (string * Mirverif.Report.t) option
(** The same battery under the reference {!Mir.Interp} semantics
    instead of the compiled executor.  The engine's degradation ladder:
    when a compiled run crashes, the supervisor retries through this
    and flags the divergence. *)

val checks :
  ?seed:int -> Hyperenclave.Layout.t ->
  (string * Hyperenclave.Absdata.t Mirverif.Refine.check) list
(** [(layer, check)] pairs, one per function, bottom-up. *)

val run_layer : ?seed:int -> Hyperenclave.Layout.t -> string -> Mirverif.Report.t list
(** Run the checks of one layer. *)

val run_all : ?seed:int -> Hyperenclave.Layout.t -> (string * Mirverif.Report.t) list
(** Run everything, bottom-up; [(layer, per-function report)]. *)

val total_cases : (string * Mirverif.Report.t) list -> int * int * int * int
(** (total, passed, skipped, failed) over a result set. *)

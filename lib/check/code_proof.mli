(** Code-conformance checks for the 49 verified functions.

    For every function of the compiled memory module, builds
    {!Mirverif.Refine} cases — reachable abstract states crossed with
    argument batteries covering valid, boundary, and invalid inputs —
    and checks the MIR execution (lower layers replaced by their
    specifications) against the function's own specification.  This is
    the executable counterpart of the paper's per-function code proofs
    (Sec. 4.3). *)

type ctx
(** Shared check context: the input pool (reachable states, argument
    batteries), the warmed compile/stack caches, and a per-function
    check memo — case generation is deterministic given (seed, layout),
    so each function's check is built exactly once per ctx instead of
    once per obligation run.  Build one ctx up front and reuse it
    across per-function runs — including runs on other domains: the
    memo is pre-filled at ctx build from a single domain and
    mutex-guarded after that. *)

val ctx : ?seed:int -> Hyperenclave.Layout.t -> ctx

val callees : Hyperenclave.Layout.t -> string -> string list
(** Spec-owned functions [fn] calls directly (first-call-site order,
    deduplicated, self-calls excluded) — the call-graph edges the
    engine turns into override dependencies and fingerprint
    ingredients. *)

val same_layer_callees : Hyperenclave.Layout.t -> string -> string list
(** The subset of {!callees} living in [fn]'s own layer: exactly the
    calls that the monolithic checker executes as bodies and the
    override-composed checker executes as contracts.  (Lower-layer
    callees are primitives in both modes.) *)

val check_function :
  ctx -> string -> (string * Hyperenclave.Absdata.t Mirverif.Refine.check) option
(** [(layer, check)] for one function; [None] if no spec owns it. *)

(** {1 Alias footprints and contract refinement}

    The interprocedural alias analysis ({!Analysis.Alias}) runs once
    per ctx over the whole memory module, with the trusted primitives
    modelled as abstract-state effects.  Its certified footprints gate
    user-authored spec refinements: a [points_to]-bearing contract is
    only compiled to an override when its declared frame certifies. *)

val prim_summary : string -> Analysis.Alias.summary option
(** The footprint model of the trusted primitives: every primitive
    reads and writes the abstract state ({!Analysis.Alias.Labs}) and
    nothing else.  [None] for non-primitives.  The engine's alias
    phase uses the same model so its footprints agree with the ones
    gating contract refinement here. *)

val footprint : ctx -> string -> Analysis.Alias.fp
(** The function's certified may-read/may-write footprint. *)

val retained_paths : ctx -> string -> Mir.Path.t list
(** Object-memory paths the same-layer callers of [fn] retain: the
    globals of their own footprints plus the paths their case
    batteries allocate ([self_obj] for method batteries).  Frames must
    be disjoint from all of these. *)

val certify_frames :
  ctx -> string -> frames:Mir.Path.t list -> (unit, string) result
(** {!Analysis.Alias.certify} against [fn]'s footprint and its
    callers' retained paths; an empty frame list certifies trivially
    (the oracle contracts declare no facts). *)

val refine_contract :
  ctx -> string -> Hyperenclave.Absdata.t Spec.t -> (unit, string) result
(** Install a user-authored refinement of [fn]'s contract, gated by
    frame certification.  [Ok]: subsequent composed runs execute the
    refined contract at call sites of [fn].  [Error reason]: the
    override is {e refused} and [fn] is stripped of any override, so
    callers run its body — the composed report stays identical to the
    monolithic one rather than trusting an uncertified frame.  Either
    way the layer's composed environment is rebuilt on next use. *)

val refusal : ctx -> string -> string option
(** The refusal reason recorded by {!refine_contract}, if any. *)

val run_function : ctx -> string -> (string * Mirverif.Report.t) option
(** Run the conformance check of a single function — the obligation
    granularity of the parallel engine. *)

val run_function_composed : ctx -> string -> (string * Mirverif.Report.t) option
(** The identical battery against the override-composed environment:
    same-layer callees execute their {!Spec} contracts instead of their
    bodies ({!Mir.Compile.override} linkage).  Sound only once those
    callees are proven — the engine gates each caller on its callees'
    obligation outcomes and falls back to {!run_function} while the
    gate is closed (e.g. a quarantined callee under engine chaos). *)

val run_function_interp : ctx -> string -> (string * Mirverif.Report.t) option
(** The same battery under the reference {!Mir.Interp} semantics
    instead of the compiled executor.  The engine's degradation ladder:
    when a compiled run crashes, the supervisor retries through this
    and flags the divergence. *)

val checks :
  ?seed:int -> Hyperenclave.Layout.t ->
  (string * Hyperenclave.Absdata.t Mirverif.Refine.check) list
(** [(layer, check)] pairs, one per function, bottom-up. *)

val run_layer : ?seed:int -> Hyperenclave.Layout.t -> string -> Mirverif.Report.t list
(** Run the checks of one layer. *)

val run_all : ?seed:int -> Hyperenclave.Layout.t -> (string * Mirverif.Report.t) list
(** Run everything, bottom-up; [(layer, per-function report)]. *)

val total_cases : (string * Mirverif.Report.t) list -> int * int * int * int
(** (total, passed, skipped, failed) over a result set. *)

let constant : Syntax.constant -> 'abs Value.t = function
  | Syntax.Cint (w, ity) -> Value.word ity w
  | Syntax.Cbool b -> Value.Bool b
  | Syntax.Cunit -> Value.Unit
  | Syntax.Cfn _ -> Value.Unit

let ( let* ) = Result.bind

let arith_width a b =
  let* wa, ta = Value.as_word a in
  let* wb, tb = Value.as_word b in
  if Ty.int_ty_equal ta tb then Ok (wa, wb, ta)
  else
    Error
      (Format.asprintf "binary op on mismatched integer types %a and %a"
         Ty.pp_int_ty ta Ty.pp_int_ty tb)

(* Signed interpretation of a normalized word, as an int64. *)
let to_signed ity (w : Word.t) =
  let bits = Word.bits (Ty.width ity) in
  if bits = 64 then w
  else
    let sign = Word.bit w (bits - 1) in
    if sign then Int64.logor w (Int64.lognot (Word.mask (Ty.width ity))) else w

let compare_ints ity a b =
  if Ty.signed ity then Int64.compare (to_signed ity a) (to_signed ity b)
  else Word.compare_u a b

let binary op a b =
  match op with
  | Syntax.Eq -> (
      match (a, b) with
      | Value.Bool x, Value.Bool y -> Ok (Value.Bool (Bool.equal x y))
      | _ ->
          let* x, y, _ = arith_width a b in
          Ok (Value.Bool (Word.equal x y)))
  | Syntax.Ne -> (
      match (a, b) with
      | Value.Bool x, Value.Bool y -> Ok (Value.Bool (not (Bool.equal x y)))
      | _ ->
          let* x, y, _ = arith_width a b in
          Ok (Value.Bool (not (Word.equal x y))))
  | Syntax.Lt | Syntax.Le | Syntax.Gt | Syntax.Ge ->
      let* x, y, ity = arith_width a b in
      let c = compare_ints ity x y in
      let r =
        (* outer match pins [op] to a comparison; [_] is [Ge] *)
        match op with
        | Syntax.Lt -> c < 0
        | Syntax.Le -> c <= 0
        | Syntax.Gt -> c > 0
        | _ -> c >= 0
      in
      Ok (Value.Bool r)
  | Syntax.Bit_and | Syntax.Bit_or | Syntax.Bit_xor -> (
      match (a, b) with
      | Value.Bool x, Value.Bool y ->
          let r =
            match op with
            | Syntax.Bit_and -> x && y
            | Syntax.Bit_or -> x || y
            | _ -> not (Bool.equal x y)
          in
          Ok (Value.Bool r)
      | _ ->
          let* x, y, ity = arith_width a b in
          let r =
            match op with
            | Syntax.Bit_and -> Word.logand x y
            | Syntax.Bit_or -> Word.logor x y
            | _ -> Word.logxor x y
          in
          Ok (Value.word ity r))
  | Syntax.Add | Syntax.Sub | Syntax.Mul ->
      let* x, y, ity = arith_width a b in
      let w = Ty.width ity in
      let r =
        match op with
        | Syntax.Add -> Word.add w x y
        | Syntax.Sub -> Word.sub w x y
        | _ -> Word.mul w x y
      in
      Ok (Value.word ity r)
  | Syntax.Div | Syntax.Rem ->
      let* x, y, ity = arith_width a b in
      let w = Ty.width ity in
      let r = match op with Syntax.Div -> Word.div w x y | _ -> Word.rem w x y in
      (match r with
      | Some r -> Ok (Value.word ity r)
      | None -> Error "division by zero")
  | Syntax.Shl | Syntax.Shr ->
      (* MIR allows the shift amount to have a different integer type. *)
      let* x, ity = Value.as_word a in
      let* y, _ = Value.as_word b in
      let w = Ty.width ity in
      let n = Int64.to_int y in
      if n < 0 || n >= Word.bits w then
        Error (Printf.sprintf "shift amount %d out of range for %d-bit value" n (Word.bits w))
      else
        let r =
          match op with
          | Syntax.Shl -> Word.shift_left w x n
          | _ -> Word.shift_right w x n
        in
        Ok (Value.word ity r)

let checked_binary op a b =
  match op with
  | Syntax.Add | Syntax.Sub | Syntax.Mul ->
      let* x, y, ity = arith_width a b in
      let wide_ok =
        (* compute in full 64-bit and compare against the normalized
           result; for 64-bit operands detect wrap via Int64 bounds.
           The outer match pins [op] to Add/Sub/Mul, so each [_] arm
           below is Mul. *)
        match Ty.width ity with
        | Word.W64 -> (
            match op with
            | Syntax.Add -> Word.compare_u (Int64.add x y) x >= 0
            | Syntax.Sub -> Word.compare_u x y >= 0
            | _ ->
                Word.equal x 0L
                || Word.equal (Int64.unsigned_div (Int64.mul x y) x) y)
        | (Word.W8 | Word.W16 | Word.W32) as w ->
            let full =
              match op with
              | Syntax.Add -> Int64.add x y
              | Syntax.Sub -> Int64.sub x y
              | _ -> Int64.mul x y
            in
            Word.equal (Word.norm w full) full
      in
      let* r = binary op a b in
      Ok (Value.tuple [ r; Value.Bool (not wide_ok) ])
  | _ ->
      let* r = binary op a b in
      Ok (Value.tuple [ r; Value.Bool false ])

let unary op v =
  match (op, v) with
  | Syntax.Not, Value.Bool b -> Ok (Value.Bool (not b))
  | Syntax.Not, Value.Int (w, ity) -> Ok (Value.word ity (Word.lognot (Ty.width ity) w))
  | Syntax.Neg, Value.Int (w, ity) ->
      Ok (Value.word ity (Word.sub (Ty.width ity) Word.zero w))
  | (Syntax.Not | Syntax.Neg), _ -> Error "unary op on non-scalar value"

let cast v ity =
  match v with
  | Value.Int (w, _) -> Ok (Value.word ity w)
  | Value.Bool b -> Ok (Value.int ity (if b then 1 else 0))
  | Value.Unit | Value.Struct _ | Value.Arr _ | Value.Ptr _ ->
      Error "cast of non-scalar value"

let switch_key = function
  | Value.Int (w, _) -> Ok w
  | Value.Bool b -> Ok (if b then 1L else 0L)
  | v -> Error (Printf.sprintf "SwitchInt on non-integer value %s" (Value.to_string v))

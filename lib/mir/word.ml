type t = int64

type width = W8 | W16 | W32 | W64

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFF_FFFFL
  | W64 -> 0xFFFF_FFFF_FFFF_FFFFL

let norm w x = Int64.logand x (mask w)

let zero = 0L
let one = 1L

let of_int w i = norm w (Int64.of_int i)

let to_int x =
  if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_int) > 0 then
    invalid_arg (Printf.sprintf "Word.to_int: %Ld out of OCaml int range" x)
  else Int64.to_int x

let of_int64 w x = norm w x

let add w a b = norm w (Int64.add a b)
let sub w a b = norm w (Int64.sub a b)
let mul w a b = norm w (Int64.mul a b)

let div w a b = if Int64.equal b 0L then None else Some (norm w (Int64.unsigned_div a b))
let rem w a b = if Int64.equal b 0L then None else Some (norm w (Int64.unsigned_rem a b))

let logand = Int64.logand
let logor = Int64.logor
let logxor = Int64.logxor
let lognot w x = norm w (Int64.lognot x)

let shift_left w x n = if n >= 64 || n < 0 then 0L else norm w (Int64.shift_left x n)

let shift_right _w x n =
  if n >= 64 || n < 0 then 0L else Int64.shift_right_logical x n

let equal = Int64.equal
let compare_u = Int64.unsigned_compare
let lt_u a b = compare_u a b < 0
let le_u a b = compare_u a b <= 0

let bit x i = not (Int64.equal (Int64.logand (Int64.shift_right_logical x i) 1L) 0L)

let set_bit x i b =
  let m = Int64.shift_left 1L i in
  if b then Int64.logor x m else Int64.logand x (Int64.lognot m)

let extract x ~lo ~len =
  if len <= 0 then 0L
  else
    let shifted = Int64.shift_right_logical x lo in
    if len >= 64 then shifted
    else Int64.logand shifted (Int64.sub (Int64.shift_left 1L len) 1L)

let insert x ~lo ~len f =
  if len <= 0 then x
  else
    let field_mask =
      if len >= 64 then -1L else Int64.sub (Int64.shift_left 1L len) 1L
    in
    let cleared = Int64.logand x (Int64.lognot (Int64.shift_left field_mask lo)) in
    Int64.logor cleared (Int64.shift_left (Int64.logand f field_mask) lo)

let to_hex x = Printf.sprintf "0x%Lx" x
let pp fmt x = Format.pp_print_string fmt (to_hex x)
let pp_dec fmt x = Format.fprintf fmt "%Lu" x

(* Unsigned 64-bit overflow predicates and saturating arithmetic: the
   transfer hooks the abstract interpreter (lib/analysis) evaluates
   MIRlight arithmetic with.  All treat the word as a full 64-bit
   unsigned value (the widths the stack computes in). *)

let umax = 0xFFFF_FFFF_FFFF_FFFFL

let min_u a b = if le_u a b then a else b
let max_u a b = if le_u a b then b else a

let add_overflows a b = lt_u (Int64.add a b) a

let mul_overflows a b =
  (not (Int64.equal a 0L))
  && (not (Int64.equal b 0L))
  && not (Int64.equal (Int64.unsigned_div (Int64.mul a b) b) a)

let add_sat a b = if add_overflows a b then umax else Int64.add a b
let sub_sat a b = if lt_u a b then 0L else Int64.sub a b
let mul_sat a b = if mul_overflows a b then umax else Int64.mul a b

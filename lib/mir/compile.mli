(** Closure-compiled MIRlight execution.

    Translates each {!Syntax.body} once into a tree of OCaml closures —
    temps as integer-indexed slots instead of [StrMap] lookups, basic
    blocks pre-split into statement arrays, places and rvalues
    pre-resolved down to their dynamic parts — so the code-proof phase
    compiles once and executes thousands of generated states against
    the compiled form.

    {!Interp} remains the reference semantics.  {!call} is
    observationally identical to {!Interp.call}: same outcome (abs,
    mem, ret, steps — including frame-id assignment order, which is
    visible in [mem] through [Path.Local]), same fuel accounting, and
    the same error classification with identical messages.  The
    differential suite in [test/differential] pins this equivalence on
    the full seed stack and the chaos fixtures.

    Primitives are looked up by name at call time from the compiled
    environment, exactly like {!Interp}; only the {e linkage} of each
    call site (override / primitive / body / undefined) is baked in.  A
    [map_prims]-wrapped environment therefore compiles to the same
    bodies — fault injection keeps working, and a shared {!cache}
    makes those compilations near-free. *)

type 'abs t
(** A compiled environment: every body of the program in closure form,
    plus the primitive and override tables. *)

type 'abs override = {
  ov_name : string;
  ov_exec :
    'abs -> 'abs Mem.t -> 'abs Value.t list -> ('abs * 'abs Value.t, string) result;
  ov_frames : Path.t list;
      (** Object-memory paths the stub claims as its write frame
          (the [points_to] facts of a [Check.Spec] contract).  Pure
          metadata for the alias analysis' footprint certification:
          installation is refused unless the framed paths are provably
          disjoint from everything the callers retain.  Not consulted
          at call time, and deliberately outside the linkage memo key
          (a refused override flips the call-site linkage from
          override to body, which re-keys the compilation). *)
}
(** A specification stub linked {e over} a body: every call site whose
    callee has an override executes [ov_exec] instead of entering the
    callee (one terminator tick, like a primitive — no callee frame is
    allocated).  Unlike {!Interp.prim}, the stub receives the
    object-view memory, so it can resolve pointer arguments (a
    method's [self]) to the pointee value a by-value specification
    expects.  This is the linkage behind compositional verification:
    once a callee is proven against its spec, callers run the spec. *)

type 'abs cache
(** A shared memo table keyed by body digest + call-site linkage.
    Thread-safe (mutex-guarded); share one per abstract-state type to
    compile each body exactly once across environments. *)

val cache : unit -> 'abs cache
val cache_size : 'abs cache -> int

val compile : ?cache:'abs cache -> ?overrides:'abs override list -> 'abs Interp.env -> 'abs t
(** Compile every body of the environment's program.  With [cache],
    bodies whose digest and linkage match a previous compilation are
    reused; override linkage is part of the memo key, so the same
    shared cache serves monolithic and override-composed environments
    without mixing their compilations.  Overrides shadow primitives
    and bodies at call sites, but {!call}'s entry function always runs
    its own body — proving a function never stubs the function itself. *)

val call :
  ?fuel:int ->
  'abs t ->
  abs:'abs ->
  mem:'abs Mem.t ->
  string ->
  'abs Value.t list ->
  ('abs Interp.outcome, Interp.error) result
(** Drop-in replacement for {!Interp.call} on a compiled environment.
    Default fuel is {!Interp.default_fuel}. *)

(** Small-step operational semantics for MIRlight.

    The machine follows CompCert's style (paper Sec. 3.1): a
    configuration carries a call stack, the object memory, and the CCAL
    abstract state ['abs]; {!step} executes one statement or
    terminator.  {!call} is the reflexive-transitive closure with fuel.

    Layering hook: {e primitives} are functional specifications
    [args -> abs -> (abs, ret)] registered by name.  During a layer-N
    code check, every call to a layer-(<N) function resolves to its
    primitive (specification) rather than to its body — primitives
    shadow bodies — which is exactly how CCAL encapsulates lower layers
    (paper Sec. 3.4). *)

type 'abs prim = {
  prim_name : string;
  prim_exec : 'abs -> 'abs Value.t list -> ('abs * 'abs Value.t, string) result;
}

type 'abs env
(** A program plus its primitive environment. *)

val env : prims:'abs prim list -> Syntax.program -> 'abs env
val env_prims : 'abs env -> 'abs prim list
val env_program : 'abs env -> Syntax.program

val map_prims : ('abs prim -> 'abs prim) -> 'abs env -> 'abs env
(** Rewrite every registered primitive, keeping the program unchanged.
    The layer-boundary hook the fault-injection subsystem uses: a
    wrapper can make a lower layer's specification fail (resource
    exhaustion, transient fault) without forking the semantics. *)

type error =
  | Fault of { fn : string; block : Syntax.label; msg : string }
      (** stuck execution: type confusion, undefined variable, RData
          dereference, division by zero, unreachable reached, ... *)
  | Assert_failed of { fn : string; block : Syntax.label; msg : string }
  | Out_of_fuel

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type 'abs outcome = {
  abs : 'abs;  (** final abstract state *)
  mem : 'abs Mem.t;  (** final object memory *)
  ret : 'abs Value.t;
  steps : int;  (** statements + terminators executed *)
}

val default_fuel : int
(** [1_000_000] steps; the default budget of {!call}. *)

val call :
  ?fuel:int ->
  'abs env ->
  abs:'abs ->
  mem:'abs Mem.t ->
  string ->
  'abs Value.t list ->
  ('abs outcome, error) result
(** [call env ~abs ~mem fn args] runs function [fn] to completion.
    Default fuel is [1_000_000] steps. *)

(** {1 Exposed small-step interface}

    Used by the semantics tests to check confluence-free determinism
    and step accounting; [call] is its transitive closure. *)

type 'abs config

val start :
  'abs env -> abs:'abs -> mem:'abs Mem.t -> string -> 'abs Value.t list ->
  ('abs config, error) result

type 'abs status = Running of 'abs config | Finished of 'abs outcome

val step : 'abs config -> ('abs status, error) result

val config_depth : 'abs config -> int
(** Current call-stack depth. *)

val config_function : 'abs config -> string option
(** Name of the function executing on top of the stack. *)

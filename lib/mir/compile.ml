(* Closure compilation for MIRlight.

   [Interp] re-walks the [Syntax] AST on every step: each statement
   re-resolves its places through [local_kind_of] (a linear scan of the
   declarations), each temp read goes through a [StrMap], and each
   block fetches statements with [List.nth].  That interpretive
   overhead dominates the code-proof phase, which executes the same
   fifty bodies against thousands of generated states.

   This module translates each [Syntax.body] once into a tree of OCaml
   closures: temps become integer-indexed slots in a [Value.t option
   array], basic blocks become arrays of pre-compiled statement
   closures plus one terminator closure, and every place/rvalue is
   pre-resolved down to the dynamic parts (Pindex reads, Deref).
   Compiled bodies are memoized per function, keyed by the function's
   MIRlight digest plus how its call sites resolve (primitive / body /
   undefined), so a shared [cache] compiles each body exactly once
   across environments — including the chaos-wrapped environments of
   [map_prims]-based fault injection, which change primitive behaviour
   but not primitive names.

   [Interp] stays the reference semantics; [call] here must be
   observationally identical: same outcome fields (abs, mem, ret,
   steps), same frame-id assignment order (frame ids leak into [mem]
   through [Path.Local]), same fuel accounting, and the same error
   classification with byte-identical messages.  The differential
   suite in test/differential pins this. *)

module StrMap = Map.Make (String)

type 'abs cbody = {
  cb_name : string;
  cb_key : string; (* memoization key: digest of MIR text + call-site linkage *)
  cb_nslots : int;
  cb_bind : 'abs rt -> int -> 'abs Value.t list -> 'abs rframe;
  mutable cb_blocks : 'abs cblock array;
}

and 'abs cblock = {
  c_stmts : ('abs rt -> 'abs rframe -> unit) array;
  c_term : 'abs rt -> 'abs rframe -> 'abs jump;
}

and 'abs jump = Jgoto of int | Jret of 'abs Value.t

and 'abs rframe = {
  slots : 'abs Value.t array; (* valid iff the matching [init] bit is set *)
  init : bool array;
  frame_id : int;
}

(* Mutable machine state threaded through every compiled closure.  One
   record per [call]; never shared across calls or domains. *)
and 'abs rt = {
  rt_prims : 'abs Interp.prim StrMap.t;
  rt_bodies : 'abs cbody StrMap.t;
  rt_overrides : 'abs override StrMap.t;
  mutable rt_mem : 'abs Mem.t;
  mutable rt_abs : 'abs;
  mutable rt_steps : int;
  mutable rt_budget : int;
  mutable rt_next_frame : int;
}

(* A specification stub installed over a body: call sites that resolve
   to an override execute [ov_exec] instead of entering the callee's
   body.  Unlike a primitive, the stub sees the object-view memory, so
   it can resolve pointer arguments (e.g. a method's [self]) to the
   pointee value the callee's by-value specification expects. *)
and 'abs override = {
  ov_name : string;
  ov_exec :
    'abs -> 'abs Mem.t -> 'abs Value.t list -> ('abs * 'abs Value.t, string) result;
  ov_frames : Path.t list;
      (* object-memory paths the stub claims as its write frame;
         metadata for footprint certification, not consulted at call
         time (and so deliberately outside the linkage memo key — a
         refused override changes linkage o→b, which re-keys) *)
}

type 'abs t = {
  ct_prims : 'abs Interp.prim StrMap.t;
  ct_bodies : 'abs cbody StrMap.t;
  ct_overrides : 'abs override StrMap.t;
}

(* A shared memo table: bodies compile once per digest+linkage key and
   are reused across environments (and across chaos-perturbed copies
   of the same environment).  Guarded by a mutex because warm-up runs
   on one domain but chaos batteries may compile lazily from tests. *)
type 'abs cache = { mu : Mutex.t; tbl : (string, 'abs cbody) Hashtbl.t }

let cache () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

exception Verr of Interp.error

(* Local error strings (the [Error msg] channel of [Interp]'s result
   plumbing) travel as an exception in compiled code, so the success
   path allocates no [Ok] boxes.  Each statement/terminator closure
   catches [Emsg] and rethrows it as the [Fault] of its own block. *)
exception Emsg of string

let fault fn block msg = raise (Verr (Interp.Fault { fn; block; msg }))

let ok_or_raise = function Ok v -> v | Error msg -> raise (Emsg msg)

(* Runtime lvalue: [Interp]'s lv with temps resolved to slot indices
   (the name is kept for error messages only). *)
type 'abs rlv =
  | Rtemp of int * string * Path.proj list
  | Rmem of Path.t
  | Rtrusted of 'abs Value.trusted * Path.proj list

let rlv_extend lv proj =
  match lv with
  | Rtemp (i, v, ps) -> Rtemp (i, v, ps @ [ proj ])
  | Rmem p -> Rmem (Path.extend p proj)
  | Rtrusted (t, ps) -> Rtrusted (t, ps @ [ proj ])

let read_rlv (st : 'abs rt) (fr : 'abs rframe) = function
  | Rtemp (i, v, projs) ->
      if not fr.init.(i) then
        raise (Emsg (Printf.sprintf "read of uninitialized temporary %s" v));
      let value = fr.slots.(i) in
      (match projs with [] -> value | _ -> ok_or_raise (Value.project_many value projs))
  | Rmem path -> ok_or_raise (Mem.read st.rt_mem path)
  | Rtrusted (t, projs) ->
      let value = ok_or_raise (t.Value.tp_load st.rt_abs) in
      (match projs with [] -> value | _ -> ok_or_raise (Value.project_many value projs))

let write_rlv (st : 'abs rt) (fr : 'abs rframe) lv v =
  match lv with
  | Rtemp (i, _, []) ->
      fr.slots.(i) <- v;
      fr.init.(i) <- true
  | Rtemp (i, var, projs) ->
      if not fr.init.(i) then
        raise
          (Emsg (Printf.sprintf "projection write into uninitialized temporary %s" var));
      fr.slots.(i) <- ok_or_raise (Value.update fr.slots.(i) projs v)
  | Rmem path -> st.rt_mem <- ok_or_raise (Mem.write st.rt_mem path v)
  | Rtrusted (t, []) -> st.rt_abs <- ok_or_raise (t.Value.tp_store st.rt_abs v)
  | Rtrusted (t, projs) ->
      let old = ok_or_raise (t.Value.tp_load st.rt_abs) in
      let updated = ok_or_raise (Value.update old projs v) in
      st.rt_abs <- ok_or_raise (t.Value.tp_store st.rt_abs updated)

(* ------------------------------------------------------------------ *)
(* Compile-time resolution of variables                                *)

type vkind = Vtemp of int * string | Vlocal of string | Vundecl of string

type denv = {
  d_body : Syntax.body;
  d_vars : vkind StrMap.t; (* every declared local, temps carrying slot index *)
}

let denv_of_body (body : Syntax.body) =
  let _, vars =
    List.fold_left
      (fun (slot, m) (d : Syntax.local_decl) ->
        match d.Syntax.lkind with
        | Syntax.Ktemp -> (slot + 1, StrMap.add d.Syntax.lname (Vtemp (slot, d.Syntax.lname)) m)
        | Syntax.Klocal -> (slot, StrMap.add d.Syntax.lname (Vlocal d.Syntax.lname) m))
      (0, StrMap.empty) body.Syntax.locals
  in
  { d_body = body; d_vars = vars }

let nslots (body : Syntax.body) =
  List.fold_left
    (fun n (d : Syntax.local_decl) ->
      match d.Syntax.lkind with Syntax.Ktemp -> n + 1 | Syntax.Klocal -> n)
    0 body.Syntax.locals

let vkind_of denv var =
  match StrMap.find_opt var denv.d_vars with
  | Some k -> k
  | None -> Vundecl var

let undeclared denv var =
  Printf.sprintf "undeclared variable %s in %s" var denv.d_body.Syntax.fname

(* Base lvalue for a variable; [Vlocal] depends on the dynamic frame id. *)
let compile_var denv var : 'abs rt -> 'abs rframe -> 'abs rlv =
  match vkind_of denv var with
  | Vtemp (i, name) ->
      let lv = Rtemp (i, name, []) in
      fun _ _ -> lv
  | Vlocal name -> fun _ fr -> Rmem (Path.local ~frame:fr.frame_id name)
  | Vundecl _ ->
      let msg = undeclared denv var in
      fun _ _ -> raise (Emsg msg)

(* Reading a variable (Pindex, bare-temp operands).  The fast path —
   a bare temp — is one array load and one bit test. *)
let compile_read_var denv var : 'abs rt -> 'abs rframe -> 'abs Value.t =
  match vkind_of denv var with
  | Vtemp (i, name) ->
      let miss = Printf.sprintf "read of uninitialized temporary %s" name in
      fun _ fr ->
        if fr.init.(i) then fr.slots.(i) else raise (Emsg miss)
  | Vlocal name ->
      fun st fr -> ok_or_raise (Mem.read st.rt_mem (Path.local ~frame:fr.frame_id name))
  | Vundecl _ ->
      let msg = undeclared denv var in
      fun _ _ -> raise (Emsg msg)

(* ------------------------------------------------------------------ *)
(* Places                                                              *)

type 'abs cplace = 'abs rt -> 'abs rframe -> 'abs rlv

let static_elem = function
  | Syntax.Pfield _ | Syntax.Pconst_index _ | Syntax.Downcast _ -> true
  | Syntax.Pindex _ | Syntax.Deref -> false

let static_projs elems =
  List.filter_map
    (function
      | Syntax.Pfield i -> Some (Path.Field i)
      | Syntax.Pconst_index i -> Some (Path.Index i)
      | Syntax.Downcast _ | Syntax.Pindex _ | Syntax.Deref -> None)
    elems

let compile_elem denv (elem : Syntax.place_elem) :
    'abs rt -> 'abs rframe -> 'abs rlv -> 'abs rlv =
  match elem with
  | Syntax.Pfield i -> fun _ _ lv -> rlv_extend lv (Path.Field i)
  | Syntax.Pconst_index i -> fun _ _ lv -> rlv_extend lv (Path.Index i)
  | Syntax.Downcast _ -> fun _ _ lv -> lv
  | Syntax.Pindex var ->
      let read = compile_read_var denv var in
      fun st fr lv ->
        let w, _ = ok_or_raise (Value.as_word (read st fr)) in
        rlv_extend lv (Path.Index (Word.to_int w))
  | Syntax.Deref ->
      fun st fr lv -> (
        match ok_or_raise (Value.as_ptr (read_rlv st fr lv)) with
        | Value.Concrete path -> Rmem path
        | Value.Trusted t -> Rtrusted (t, [])
        | Value.Rdata r ->
            raise
              (Emsg
                 (Printf.sprintf
                    "dereference of RData handle %s.%s: pointee is encapsulated in layer %s"
                    r.Value.rd_layer r.Value.rd_name r.Value.rd_layer)))

let compile_place denv (place : Syntax.place) : 'abs cplace =
  if List.for_all static_elem place.Syntax.elems then
    (* Fully static access path: the projection list is a compile-time
       constant, so the whole lvalue is prebuilt (temps) or built with
       one allocation (locals need the dynamic frame id). *)
    let projs = static_projs place.Syntax.elems in
    match vkind_of denv place.Syntax.var with
    | Vtemp (i, name) ->
        let lv = Rtemp (i, name, projs) in
        fun _ _ -> lv
    | Vlocal name ->
        fun _ fr -> Rmem { Path.base = Path.Local (fr.frame_id, name); projs }
    | Vundecl _ ->
        let msg = undeclared denv place.Syntax.var in
        fun _ _ -> raise (Emsg msg)
  else
    let base = compile_var denv place.Syntax.var in
    let steps = Array.of_list (List.map (compile_elem denv) place.Syntax.elems) in
    let n = Array.length steps in
    fun st fr ->
      let lv = ref (base st fr) in
      for i = 0 to n - 1 do
        lv := steps.(i) st fr !lv
      done;
      !lv

(* ------------------------------------------------------------------ *)
(* Operands and rvalues                                                *)

type 'abs coperand = 'abs rt -> 'abs rframe -> 'abs Value.t

let compile_operand denv (op : Syntax.operand) : 'abs coperand =
  match op with
  | Syntax.Const c ->
      let v = Eval.constant c in
      fun _ _ -> v
  | Syntax.Copy { Syntax.var; elems = [] } | Syntax.Move { Syntax.var; elems = [] } ->
      compile_read_var denv var
  | Syntax.Copy place | Syntax.Move place ->
      let cp = compile_place denv place in
      fun st fr -> read_rlv st fr (cp st fr)

let compile_operands denv ops : 'abs rt -> 'abs rframe -> 'abs Value.t list =
  match List.map (compile_operand denv) ops with
  | [] -> fun _ _ -> []
  | [ c0 ] -> fun st fr -> [ c0 st fr ]
  | [ c0; c1 ] ->
      fun st fr ->
        let v0 = c0 st fr in
        let v1 = c1 st fr in
        [ v0; v1 ]
  | cops ->
      let cops = Array.of_list cops in
      let n = Array.length cops in
      fun st fr ->
        let rec go i acc =
          if i >= n then List.rev acc else go (i + 1) (cops.(i) st fr :: acc)
        in
        go 0 []

let compile_rvalue denv (rv : Syntax.rvalue) : 'abs rt -> 'abs rframe -> 'abs Value.t =
  match rv with
  | Syntax.Use op -> compile_operand denv op
  | Syntax.Repeat (op, n) ->
      let cop = compile_operand denv op in
      fun st fr -> Value.Arr (Array.make n (cop st fr))
  | Syntax.Ref place | Syntax.Address_of place ->
      let cp = compile_place denv place in
      fun st fr -> (
        match cp st fr with
        | Rmem path -> Value.Ptr (Value.Concrete path)
        | Rtrusted (t, []) -> Value.Ptr (Value.Trusted t)
        | Rtrusted (_, _ :: _) ->
            raise (Emsg "reference into the interior of a trusted pointee")
        | Rtemp (_, v, _) ->
            raise
              (Emsg
                 (Printf.sprintf
                    "taking the address of temporary %s (translator should have \
                     classified it as local)" v)))
  | Syntax.Len place ->
      let cp = compile_place denv place in
      fun st fr -> (
        match read_rlv st fr (cp st fr) with
        | Value.Arr elems -> Value.usize (Array.length elems)
        | _ -> raise (Emsg "Len of non-array value"))
  | Syntax.Cast (op, ity) ->
      let cop = compile_operand denv op in
      fun st fr -> ok_or_raise (Eval.cast (cop st fr) ity)
  | Syntax.Binary (bop, a, b) ->
      let ca = compile_operand denv a and cb = compile_operand denv b in
      fun st fr ->
        let va = ca st fr in
        let vb = cb st fr in
        ok_or_raise (Eval.binary bop va vb)
  | Syntax.Checked_binary (bop, a, b) ->
      let ca = compile_operand denv a and cb = compile_operand denv b in
      fun st fr ->
        let va = ca st fr in
        let vb = cb st fr in
        ok_or_raise (Eval.checked_binary bop va vb)
  | Syntax.Unary (uop, a) ->
      let ca = compile_operand denv a in
      fun st fr -> ok_or_raise (Eval.unary uop (ca st fr))
  | Syntax.Discriminant place ->
      let cp = compile_place denv place in
      fun st fr ->
        let d = ok_or_raise (Value.discriminant (read_rlv st fr (cp st fr))) in
        Value.int Ty.U64 d
  | Syntax.Aggregate (kind, ops) ->
      let cops = compile_operands denv ops in
      let build =
        match kind with
        | Syntax.Agg_tuple | Syntax.Agg_struct _ -> fun vs -> Value.Struct (0, vs)
        | Syntax.Agg_variant (_, d) -> fun vs -> Value.Struct (d, vs)
        | Syntax.Agg_array -> fun vs -> Value.Arr (Array.of_list vs)
      in
      fun st fr -> build (cops st fr)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let compile_statement denv ~fn ~blk (stmt : Syntax.statement) :
    'abs rt -> 'abs rframe -> unit =
  match stmt with
  | Syntax.Nop | Syntax.Storage_live _ | Syntax.Storage_dead _ -> fun _ _ -> ()
  | Syntax.Assign (place, rv) ->
      let crv = compile_rvalue denv rv in
      let cp = compile_place denv place in
      fun st fr -> (
        try
          let v = crv st fr in
          let lv = cp st fr in
          write_rlv st fr lv v
        with Emsg msg -> fault fn blk msg)
  | Syntax.Set_discriminant (place, d) ->
      let cp = compile_place denv place in
      fun st fr -> (
        try
          let lv = cp st fr in
          let _, fields = ok_or_raise (Value.as_fields (read_rlv st fr lv)) in
          write_rlv st fr lv (Value.Struct (d, fields))
        with Emsg msg -> fault fn blk msg)

(* ------------------------------------------------------------------ *)
(* The machine driver                                                  *)

let tick st =
  if st.rt_budget <= 0 then raise (Verr Interp.Out_of_fuel);
  st.rt_budget <- st.rt_budget - 1;
  st.rt_steps <- st.rt_steps + 1

let rec exec_body (st : 'abs rt) (cb : 'abs cbody) (fr : 'abs rframe) : 'abs Value.t =
  let blocks = cb.cb_blocks in
  let nblocks = Array.length blocks in
  let rec go blk =
    if blk < 0 || blk >= nblocks then begin
      (* [Interp] only discovers a bad jump target on the next step,
         after that step's fuel check, so fuel exhaustion wins *)
      if st.rt_budget <= 0 then raise (Verr Interp.Out_of_fuel);
      fault cb.cb_name blk (Printf.sprintf "jump to undefined block bb%d" blk)
    end
    else begin
      let b = blocks.(blk) in
      let stmts = b.c_stmts in
      for i = 0 to Array.length stmts - 1 do
        tick st;
        stmts.(i) st fr
      done;
      tick st;
      match b.c_term st fr with Jgoto l -> go l | Jret v -> v
    end
  in
  go 0

(* Enter a body: allocate the frame and run it.  Binding errors raise
   [Emsg] and fault at the call site (in the caller). *)
and enter_body (st : 'abs rt) (cb : 'abs cbody) args : 'abs Value.t =
  let fid = st.rt_next_frame in
  st.rt_next_frame <- fid + 1;
  exec_body st cb (cb.cb_bind st fid args)

(* ------------------------------------------------------------------ *)
(* Terminators                                                         *)

(* Call-site linkage, decided at compile time from the environment's
   override-name set, primitive-name set and body-name set; the actual
   closure/body is fetched from the runtime state, so a memoized body
   works under any environment with the same linkage shape
   (chaos-wrapped primitives keep their names, so they hit the same
   cache entry).  Overrides shadow both primitives and bodies: a call
   site compiled with [Loverride] executes the callee's specification
   stub instead of its body. *)
type linkage = Lprim | Lbody | Loverride | Lundef

let compile_return denv : 'abs rt -> 'abs rframe -> 'abs jump =
  (* a body that never assigns _0 (or leaves it undefined) returns () *)
  match vkind_of denv Syntax.return_var with
  | Vtemp (i, _) ->
      fun _ fr -> if fr.init.(i) then Jret fr.slots.(i) else Jret Value.Unit
  | Vlocal name ->
      fun st fr -> (
        match Mem.read st.rt_mem (Path.local ~frame:fr.frame_id name) with
        | Ok v -> Jret v
        | Error _ -> Jret Value.Unit)
  | Vundecl _ -> fun _ _ -> Jret Value.Unit

let compile_terminator denv ~linkage_of ~fn ~blk (term : Syntax.terminator) :
    'abs rt -> 'abs rframe -> 'abs jump =
  match term with
  | Syntax.Goto l | Syntax.Drop (_, l) ->
      let j = Jgoto l in
      fun _ _ -> j
  | Syntax.Return -> compile_return denv
  | Syntax.Unreachable -> fun _ _ -> fault fn blk "reached Unreachable terminator"
  | Syntax.Switch_int (op, cases, otherwise) ->
      let cop = compile_operand denv op in
      let cases = Array.of_list cases in
      let n = Array.length cases in
      fun st fr ->
        let key =
          try ok_or_raise (Eval.switch_key (cop st fr))
          with Emsg msg -> fault fn blk msg
        in
        let rec pick i =
          if i >= n then otherwise
          else
            let w, l = cases.(i) in
            if Word.equal w key then l else pick (i + 1)
        in
        Jgoto (pick 0)
  | Syntax.Assert { cond; expected; msg; target } ->
      let cop = compile_operand denv cond in
      let j = Jgoto target in
      fun st fr ->
        let b =
          try ok_or_raise (Value.as_bool (cop st fr))
          with Emsg m -> fault fn blk m
        in
        if Bool.equal b expected then j
        else raise (Verr (Interp.Assert_failed { fn; block = blk; msg }))
  | Syntax.Call { dest; func; args; target } -> (
      let cargs = compile_operands denv args in
      let cdest = compile_place denv dest in
      let store_result st fr ret = write_rlv st fr (cdest st fr) ret in
      match linkage_of func with
      | Lundef ->
          fun st fr -> (
            try
              ignore (cargs st fr);
              raise (Emsg (Printf.sprintf "call of undefined function %s" func))
            with Emsg msg -> fault fn blk msg)
      | Lprim ->
          fun st fr -> (
            try
              let argv = cargs st fr in
              let prim = StrMap.find func st.rt_prims in
              match prim.Interp.prim_exec st.rt_abs argv with
              | Error msg ->
                  raise (Emsg (Printf.sprintf "primitive %s: %s" func msg))
              | Ok (abs, ret) -> (
                  match target with
                  | None -> raise (Emsg "call of primitive with no return target")
                  | Some l ->
                      st.rt_abs <- abs;
                      store_result st fr ret;
                      Jgoto l)
            with Emsg msg -> fault fn blk msg)
      | Loverride ->
          (* like a primitive call (one terminator tick, no callee
             frame), but the stub additionally reads the object-view
             memory so pointer arguments resolve to pointee values *)
          fun st fr -> (
            try
              let argv = cargs st fr in
              let ov = StrMap.find func st.rt_overrides in
              match ov.ov_exec st.rt_abs st.rt_mem argv with
              | Error msg -> raise (Emsg (Printf.sprintf "override %s: %s" func msg))
              | Ok (abs, ret) -> (
                  match target with
                  | None -> raise (Emsg "call of override with no return target")
                  | Some l ->
                      st.rt_abs <- abs;
                      store_result st fr ret;
                      Jgoto l)
            with Emsg msg -> fault fn blk msg)
      | Lbody ->
          fun st fr -> (
            try
              let argv = cargs st fr in
              let cb = StrMap.find func st.rt_bodies in
              let ret = enter_body st cb argv in
              match target with
              | None -> raise (Emsg "return to caller without destination")
              | Some l ->
                  store_result st fr ret;
                  Jgoto l
            with Emsg msg -> fault fn blk msg))

(* ------------------------------------------------------------------ *)
(* Bodies                                                              *)

(* Argument binding, mirroring [Interp.bind_args]: parameters are
   consumed left to right, and the arity-mismatch message reports the
   counts *remaining* at the point of mismatch. *)
let compile_bind (body : Syntax.body) denv =
  let binders =
    Array.of_list
      (List.map
         (fun p ->
           match vkind_of denv p with
           | Vtemp (i, _) -> `Slot i
           | Vlocal name -> `Local name
           | Vundecl name -> `Undecl name)
         body.Syntax.params)
  in
  let fname = body.Syntax.fname in
  let nslots = nslots body in
  let nparams = Array.length binders in
  fun (st : 'abs rt) fid (args : 'abs Value.t list) ->
    let fr =
      {
        slots = Array.make nslots Value.Unit;
        init = Array.make nslots false;
        frame_id = fid;
      }
    in
    let rec go i args =
      if i >= nparams then (
        match args with
        | [] -> fr
        | _ ->
            raise
              (Emsg
                 (Printf.sprintf
                    "arity mismatch calling %s: %d parameters, %d arguments" fname 0
                    (List.length args))))
      else
        match args with
        | [] ->
            raise
              (Emsg
                 (Printf.sprintf
                    "arity mismatch calling %s: %d parameters, %d arguments" fname
                    (nparams - i) 0))
        | a :: rest -> (
            match binders.(i) with
            | `Slot s ->
                fr.slots.(s) <- a;
                fr.init.(s) <- true;
                go (i + 1) rest
            | `Local name ->
                st.rt_mem <- Mem.define (Path.Local (fid, name)) a st.rt_mem;
                go (i + 1) rest
            | `Undecl name ->
                raise (Emsg (Printf.sprintf "parameter %s not declared" name)))
    in
    go 0 args

(* The memoization key must capture everything the generated closures
   depend on: the MIR text of the body and the linkage of each call
   site (whether the callee resolves to a primitive, a body, or
   nothing in this environment). *)
let linkage_char = function Lprim -> 'p' | Lbody -> 'b' | Loverride -> 'o' | Lundef -> 'u'

let body_key (body : Syntax.body) ~linkage_of =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Pp.body_to_string body);
  Buffer.add_string buf "\x00linkage:";
  Array.iter
    (fun (blk : Syntax.block) ->
      match blk.Syntax.term with
      | Syntax.Call { func; _ } ->
          Buffer.add_string buf func;
          Buffer.add_char buf '=';
          Buffer.add_char buf (linkage_char (linkage_of func));
          Buffer.add_char buf ';'
      | _ -> ())
    body.Syntax.blocks;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let compile_body ~linkage_of (body : Syntax.body) ~key : 'abs cbody =
  let denv = denv_of_body body in
  let cb =
    {
      cb_name = body.Syntax.fname;
      cb_key = key;
      cb_nslots = nslots body;
      cb_bind = compile_bind body denv;
      cb_blocks = [||];
    }
  in
  let fn = body.Syntax.fname in
  cb.cb_blocks <-
    Array.mapi
      (fun blk (b : Syntax.block) ->
        {
          c_stmts =
            Array.of_list (List.map (compile_statement denv ~fn ~blk) b.Syntax.stmts);
          c_term = compile_terminator denv ~linkage_of ~fn ~blk b.Syntax.term;
        })
      body.Syntax.blocks;
  cb

let compile ?cache ?(overrides = []) (env : 'abs Interp.env) : 'abs t =
  let prog = Interp.env_program env in
  let prims =
    List.fold_left
      (fun m (p : 'abs Interp.prim) -> StrMap.add p.Interp.prim_name p m)
      StrMap.empty (Interp.env_prims env)
  in
  let ovs =
    List.fold_left
      (fun m (ov : 'abs override) -> StrMap.add ov.ov_name ov m)
      StrMap.empty overrides
  in
  let linkage_of func =
    if StrMap.mem func ovs then Loverride (* spec stubs shadow everything *)
    else if StrMap.mem func prims then Lprim (* primitives shadow bodies *)
    else if Option.is_some (Syntax.find_body prog func) then Lbody
    else Lundef
  in
  let compile_one (body : Syntax.body) =
    let key = body_key body ~linkage_of in
    match cache with
    | None -> compile_body ~linkage_of body ~key
    | Some c -> (
        Mutex.lock c.mu;
        match Hashtbl.find_opt c.tbl key with
        | Some cb ->
            Mutex.unlock c.mu;
            cb
        | None ->
            (* compiling outside the lock would be nicer, but compilation
               is cheap and this keeps duplicate work out entirely *)
            let cb = compile_body ~linkage_of body ~key in
            Hashtbl.add c.tbl key cb;
            Mutex.unlock c.mu;
            cb)
  in
  let bodies =
    Syntax.fold_bodies (fun name body m -> StrMap.add name (compile_one body) m) prog
      StrMap.empty
  in
  { ct_prims = prims; ct_bodies = bodies; ct_overrides = ovs }

let cache_size c =
  Mutex.lock c.mu;
  let n = Hashtbl.length c.tbl in
  Mutex.unlock c.mu;
  n

(* ------------------------------------------------------------------ *)
(* Entry point: observationally identical to [Interp.call]             *)

let call ?(fuel = Interp.default_fuel) (ct : 'abs t) ~abs ~mem fn args :
    ('abs Interp.outcome, Interp.error) result =
  match StrMap.find_opt fn ct.ct_bodies with
  | None -> Error (Interp.Fault { fn; block = 0; msg = "no such function" })
  | Some cb -> (
      let st =
        {
          rt_prims = ct.ct_prims;
          rt_bodies = ct.ct_bodies;
          rt_overrides = ct.ct_overrides;
          rt_mem = mem;
          rt_abs = abs;
          rt_steps = 0;
          rt_budget = fuel;
          rt_next_frame = 0;
        }
      in
      try
        (* the toplevel frame is bound before any fuel is consumed, and
           its binding errors fault in [fn] at bb0, exactly like
           [Interp.start] *)
        let ret = try enter_body st cb args with Emsg msg -> fault fn 0 msg in
        Ok { Interp.abs = st.rt_abs; mem = st.rt_mem; ret; steps = st.rt_steps }
      with Verr e -> Error e)

module StrMap = Map.Make (String)

type 'abs prim = {
  prim_name : string;
  prim_exec : 'abs -> 'abs Value.t list -> ('abs * 'abs Value.t, string) result;
}

type 'abs env = { prog : Syntax.program; prims : 'abs prim StrMap.t }

let env ~prims prog =
  let prims =
    List.fold_left (fun acc p -> StrMap.add p.prim_name p acc) StrMap.empty prims
  in
  { prog; prims }

let env_prims e = List.map snd (StrMap.bindings e.prims)
let env_program e = e.prog
let map_prims f e = { e with prims = StrMap.map f e.prims }

type error =
  | Fault of { fn : string; block : Syntax.label; msg : string }
  | Assert_failed of { fn : string; block : Syntax.label; msg : string }
  | Out_of_fuel

let pp_error fmt = function
  | Fault { fn; block; msg } ->
      Format.fprintf fmt "fault in %s (bb%d): %s" fn block msg
  | Assert_failed { fn; block; msg } ->
      Format.fprintf fmt "assertion failed in %s (bb%d): %s" fn block msg
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"

let error_to_string e = Format.asprintf "%a" pp_error e

type 'abs outcome = {
  abs : 'abs;
  mem : 'abs Mem.t;
  ret : 'abs Value.t;
  steps : int;
}

type 'abs frame = {
  body : Syntax.body;
  frame_id : int;
  temps : 'abs Value.t StrMap.t;
  dest : Syntax.place option;  (* where the caller stores our result *)
  cont : Syntax.label option;  (* caller's continuation block *)
}

type control = { blk : Syntax.label; idx : int }

type 'abs config = {
  cenv : 'abs env;
  mem : 'abs Mem.t;
  abs : 'abs;
  stack : ('abs frame * control) list;  (* head = active frame *)
  next_frame : int;
  steps : int;
}

type 'abs status = Running of 'abs config | Finished of 'abs outcome

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Place resolution                                                    *)

type 'abs lv =
  | Ltemp of string * Path.proj list
  | Lmem of Path.t
  | Ltrusted of 'abs Value.trusted * Path.proj list

let lv_extend lv proj =
  match lv with
  | Ltemp (v, ps) -> Ltemp (v, ps @ [ proj ])
  | Lmem p -> Lmem (Path.extend p proj)
  | Ltrusted (t, ps) -> Ltrusted (t, ps @ [ proj ])

let read_lv frame mem abs lv =
  match lv with
  | Ltemp (v, projs) -> (
      match StrMap.find_opt v frame.temps with
      | None -> Error (Printf.sprintf "read of uninitialized temporary %s" v)
      | Some value -> Value.project_many value projs)
  | Lmem path -> Mem.read mem path
  | Ltrusted (t, projs) ->
      let* value = t.tp_load abs in
      Value.project_many value projs

let write_lv frame mem abs lv v =
  match lv with
  | Ltemp (var, []) ->
      Ok ({ frame with temps = StrMap.add var v frame.temps }, mem, abs)
  | Ltemp (var, projs) -> (
      match StrMap.find_opt var frame.temps with
      | None ->
          Error (Printf.sprintf "projection write into uninitialized temporary %s" var)
      | Some old ->
          let* updated = Value.update old projs v in
          Ok ({ frame with temps = StrMap.add var updated frame.temps }, mem, abs))
  | Lmem path ->
      let* mem = Mem.write mem path v in
      Ok (frame, mem, abs)
  | Ltrusted (t, []) ->
      let* abs = t.tp_store abs v in
      Ok (frame, mem, abs)
  | Ltrusted (t, projs) ->
      let* old = t.tp_load abs in
      let* updated = Value.update old projs v in
      let* abs = t.tp_store abs updated in
      Ok (frame, mem, abs)

let var_lv frame var =
  match Syntax.local_kind_of frame.body var with
  | Some Syntax.Ktemp -> Ok (Ltemp (var, []))
  | Some Syntax.Klocal -> Ok (Lmem (Path.local ~frame:frame.frame_id var))
  | None -> Error (Printf.sprintf "undeclared variable %s in %s" var frame.body.fname)

let read_var frame mem abs var =
  let* lv = var_lv frame var in
  read_lv frame mem abs lv

let resolve_place frame mem abs (place : Syntax.place) =
  let* start = var_lv frame place.var in
  let step lv (elem : Syntax.place_elem) =
    match elem with
    | Syntax.Pfield i -> Ok (lv_extend lv (Path.Field i))
    | Syntax.Pconst_index i -> Ok (lv_extend lv (Path.Index i))
    | Syntax.Pindex var ->
        let* idx_value = read_var frame mem abs var in
        let* w, _ = Value.as_word idx_value in
        Ok (lv_extend lv (Path.Index (Word.to_int w)))
    | Syntax.Downcast _ ->
        (* In the object view the variant payload is the field list
           itself; the downcast is a static annotation. *)
        Ok lv
    | Syntax.Deref -> (
        let* pointer_value = read_lv frame mem abs lv in
        let* p = Value.as_ptr pointer_value in
        match p with
        | Value.Concrete path -> Ok (Lmem path)
        | Value.Trusted t -> Ok (Ltrusted (t, []))
        | Value.Rdata r ->
            Error
              (Printf.sprintf
                 "dereference of RData handle %s.%s: pointee is encapsulated in layer %s"
                 r.rd_layer r.rd_name r.rd_layer))
  in
  List.fold_left
    (fun acc elem -> match acc with Error _ as e -> e | Ok lv -> step lv elem)
    (Ok start) place.elems

(* ------------------------------------------------------------------ *)
(* Operand and rvalue evaluation                                       *)

let eval_operand frame mem abs (op : Syntax.operand) =
  match op with
  | Syntax.Copy place | Syntax.Move place ->
      let* lv = resolve_place frame mem abs place in
      read_lv frame mem abs lv
  | Syntax.Const c -> Ok (Eval.constant c)

let eval_operands frame mem abs ops =
  List.fold_left
    (fun acc op ->
      let* vs = acc in
      let* v = eval_operand frame mem abs op in
      Ok (v :: vs))
    (Ok []) ops
  |> Result.map List.rev

let eval_rvalue frame mem abs (rv : Syntax.rvalue) =
  match rv with
  | Syntax.Use op -> eval_operand frame mem abs op
  | Syntax.Repeat (op, n) ->
      let* v = eval_operand frame mem abs op in
      Ok (Value.Arr (Array.make n v))
  | Syntax.Ref place | Syntax.Address_of place -> (
      let* lv = resolve_place frame mem abs place in
      match lv with
      | Lmem path -> Ok (Value.Ptr (Value.Concrete path))
      | Ltrusted (t, []) -> Ok (Value.Ptr (Value.Trusted t))
      | Ltrusted (_, _ :: _) ->
          Error "reference into the interior of a trusted pointee"
      | Ltemp (v, _) ->
          Error
            (Printf.sprintf
               "taking the address of temporary %s (translator should have \
                classified it as local)" v))
  | Syntax.Len place -> (
      let* lv = resolve_place frame mem abs place in
      let* v = read_lv frame mem abs lv in
      match v with
      | Value.Arr elems -> Ok (Value.usize (Array.length elems))
      | _ -> Error "Len of non-array value")
  | Syntax.Cast (op, ity) ->
      let* v = eval_operand frame mem abs op in
      Eval.cast v ity
  | Syntax.Binary (bop, a, b) ->
      let* va = eval_operand frame mem abs a in
      let* vb = eval_operand frame mem abs b in
      Eval.binary bop va vb
  | Syntax.Checked_binary (bop, a, b) ->
      let* va = eval_operand frame mem abs a in
      let* vb = eval_operand frame mem abs b in
      Eval.checked_binary bop va vb
  | Syntax.Unary (uop, a) ->
      let* va = eval_operand frame mem abs a in
      Eval.unary uop va
  | Syntax.Discriminant place ->
      let* lv = resolve_place frame mem abs place in
      let* v = read_lv frame mem abs lv in
      let* d = Value.discriminant v in
      Ok (Value.int Ty.U64 d)
  | Syntax.Aggregate (kind, ops) ->
      let* vs = eval_operands frame mem abs ops in
      (match kind with
      | Syntax.Agg_tuple | Syntax.Agg_struct _ -> Ok (Value.Struct (0, vs))
      | Syntax.Agg_variant (_, d) -> Ok (Value.Struct (d, vs))
      | Syntax.Agg_array -> Ok (Value.Arr (Array.of_list vs)))

(* ------------------------------------------------------------------ *)
(* The machine                                                         *)

let fault frame control msg =
  Error (Fault { fn = frame.body.Syntax.fname; block = control.blk; msg })

let current_block frame control =
  let blocks = frame.body.Syntax.blocks in
  if control.blk < 0 || control.blk >= Array.length blocks then
    fault frame control (Printf.sprintf "jump to undefined block bb%d" control.blk)
  else Ok blocks.(control.blk)

let bind_args body frame_id temps0 mem0 params args =
  let rec go temps mem params args =
    match (params, args) with
    | [], [] -> Ok (temps, mem)
    | p :: ps, a :: rest -> (
        match Syntax.local_kind_of body p with
        | Some Syntax.Ktemp -> go (StrMap.add p a temps) mem ps rest
        | Some Syntax.Klocal ->
            go temps (Mem.define (Path.Local (frame_id, p)) a mem) ps rest
        | None -> Error (Printf.sprintf "parameter %s not declared" p))
    | _ ->
        Error
          (Printf.sprintf "arity mismatch calling %s: %d parameters, %d arguments"
             body.Syntax.fname (List.length params) (List.length args))
  in
  go temps0 mem0 params args

let make_frame body frame_id mem args ~dest ~cont =
  let frame = { body; frame_id; temps = StrMap.empty; dest; cont } in
  let* temps, mem =
    bind_args body frame_id frame.temps mem body.Syntax.params args
  in
  Ok ({ frame with temps }, mem)

let start envr ~abs ~mem fn args =
  match Syntax.find_body envr.prog fn with
  | None -> Error (Fault { fn; block = 0; msg = "no such function" })
  | Some body -> (
      match make_frame body 0 mem args ~dest:None ~cont:None with
      | Error msg -> Error (Fault { fn; block = 0; msg })
      | Ok (frame, mem) ->
          Ok
            {
              cenv = envr;
              mem;
              abs;
              stack = [ (frame, { blk = 0; idx = 0 }) ];
              next_frame = 1;
              steps = 0;
            })

(* Reading the return slot: a body that never assigns _0 returns (). *)
let read_return frame mem abs =
  match var_lv frame Syntax.return_var with
  | Error _ -> Ok Value.Unit
  | Ok lv -> (
      match read_lv frame mem abs lv with
      | Ok v -> Ok v
      | Error _ -> Ok Value.Unit)

let exec_statement cfg frame control stmt rest_stack =
  let continue frame mem abs =
    Ok
      (Running
         {
           cfg with
           mem;
           abs;
           stack = (frame, { control with idx = control.idx + 1 }) :: rest_stack;
           steps = cfg.steps + 1;
         })
  in
  match stmt with
  | Syntax.Nop | Syntax.Storage_live _ | Syntax.Storage_dead _ ->
      continue frame cfg.mem cfg.abs
  | Syntax.Assign (place, rv) -> (
      match eval_rvalue frame cfg.mem cfg.abs rv with
      | Error msg -> fault frame control msg
      | Ok v -> (
          match resolve_place frame cfg.mem cfg.abs place with
          | Error msg -> fault frame control msg
          | Ok lv -> (
              match write_lv frame cfg.mem cfg.abs lv v with
              | Error msg -> fault frame control msg
              | Ok (frame, mem, abs) -> continue frame mem abs)))
  | Syntax.Set_discriminant (place, d) -> (
      match resolve_place frame cfg.mem cfg.abs place with
      | Error msg -> fault frame control msg
      | Ok lv -> (
          match read_lv frame cfg.mem cfg.abs lv with
          | Error msg -> fault frame control msg
          | Ok v -> (
              match Value.as_fields v with
              | Error msg -> fault frame control msg
              | Ok (_, fields) -> (
                  match write_lv frame cfg.mem cfg.abs lv (Value.Struct (d, fields)) with
                  | Error msg -> fault frame control msg
                  | Ok (frame, mem, abs) -> continue frame mem abs))))

let do_return cfg frame rest_stack =
  match read_return frame cfg.mem cfg.abs with
  | Error msg -> fault frame { blk = 0; idx = 0 } msg
  | Ok ret -> (
      match rest_stack with
      | [] ->
          Ok
            (Finished
               { abs = cfg.abs; mem = cfg.mem; ret; steps = cfg.steps + 1 })
      | (caller, caller_control) :: deeper -> (
          match (frame.dest, frame.cont) with
          | Some dest, Some cont_label -> (
              match resolve_place caller cfg.mem cfg.abs dest with
              | Error msg -> fault caller caller_control msg
              | Ok lv -> (
                  match write_lv caller cfg.mem cfg.abs lv ret with
                  | Error msg -> fault caller caller_control msg
                  | Ok (caller, mem, abs) ->
                      Ok
                        (Running
                           {
                             cfg with
                             mem;
                             abs;
                             stack = (caller, { blk = cont_label; idx = 0 }) :: deeper;
                             steps = cfg.steps + 1;
                           })))
          | _ -> fault caller caller_control "return to caller without destination"))

let exec_call cfg frame control rest_stack ~dest ~func ~args ~target =
  match eval_operands frame cfg.mem cfg.abs args with
  | Error msg -> fault frame control msg
  | Ok argv -> (
      (* Primitives (lower-layer specifications) shadow bodies. *)
      match StrMap.find_opt func cfg.cenv.prims with
      | Some prim -> (
          match prim.prim_exec cfg.abs argv with
          | Error msg ->
              fault frame control (Printf.sprintf "primitive %s: %s" func msg)
          | Ok (abs, ret) -> (
              match target with
              | None -> fault frame control "call of primitive with no return target"
              | Some l -> (
                  match resolve_place frame cfg.mem abs dest with
                  | Error msg -> fault frame control msg
                  | Ok lv -> (
                      match write_lv frame cfg.mem abs lv ret with
                      | Error msg -> fault frame control msg
                      | Ok (frame, mem, abs) ->
                          Ok
                            (Running
                               {
                                 cfg with
                                 mem;
                                 abs;
                                 stack = (frame, { blk = l; idx = 0 }) :: rest_stack;
                                 steps = cfg.steps + 1;
                               })))))
      | None -> (
          match Syntax.find_body cfg.cenv.prog func with
          | None -> fault frame control (Printf.sprintf "call of undefined function %s" func)
          | Some body -> (
              match
                make_frame body cfg.next_frame cfg.mem argv ~dest:(Some dest)
                  ~cont:target
              with
              | Error msg -> fault frame control msg
              | Ok (callee, mem) ->
                  Ok
                    (Running
                       {
                         cfg with
                         mem;
                         stack =
                           (callee, { blk = 0; idx = 0 })
                           :: (frame, control)
                           :: rest_stack;
                         next_frame = cfg.next_frame + 1;
                         steps = cfg.steps + 1;
                       }))))

let exec_terminator cfg frame control term rest_stack =
  let goto l =
    Ok
      (Running
         {
           cfg with
           stack = (frame, { blk = l; idx = 0 }) :: rest_stack;
           steps = cfg.steps + 1;
         })
  in
  match term with
  | Syntax.Goto l -> goto l
  | Syntax.Drop (_, l) -> goto l
  | Syntax.Return -> do_return cfg frame rest_stack
  | Syntax.Unreachable -> fault frame control "reached Unreachable terminator"
  | Syntax.Switch_int (op, cases, otherwise) -> (
      match eval_operand frame cfg.mem cfg.abs op with
      | Error msg -> fault frame control msg
      | Ok v -> (
          match Eval.switch_key v with
          | Error msg -> fault frame control msg
          | Ok key ->
              let target =
                List.find_opt (fun (w, _) -> Word.equal w key) cases
                |> Option.fold ~none:otherwise ~some:snd
              in
              goto target))
  | Syntax.Assert { cond; expected; msg; target } -> (
      match eval_operand frame cfg.mem cfg.abs cond with
      | Error m -> fault frame control m
      | Ok v -> (
          match Value.as_bool v with
          | Error m -> fault frame control m
          | Ok b ->
              if Bool.equal b expected then goto target
              else
                Error
                  (Assert_failed
                     { fn = frame.body.Syntax.fname; block = control.blk; msg })))
  | Syntax.Call { dest; func; args; target } ->
      exec_call cfg frame control rest_stack ~dest ~func ~args ~target

let step cfg =
  match cfg.stack with
  | [] -> Error (Fault { fn = "<toplevel>"; block = 0; msg = "step on finished machine" })
  | (frame, control) :: rest_stack -> (
      match current_block frame control with
      | Error _ as e -> e
      | Ok block ->
          let nstmts = List.length block.Syntax.stmts in
          if control.idx < nstmts then
            exec_statement cfg frame control (List.nth block.Syntax.stmts control.idx) rest_stack
          else exec_terminator cfg frame control block.Syntax.term rest_stack)

let config_depth cfg = List.length cfg.stack

let config_function cfg =
  match cfg.stack with
  | [] -> None
  | (frame, _) :: _ -> Some frame.body.Syntax.fname

let default_fuel = 1_000_000

let call ?(fuel = default_fuel) envr ~abs ~mem fn args =
  let* cfg0 = start envr ~abs ~mem fn args in
  let rec loop cfg budget =
    if budget <= 0 then Error Out_of_fuel
    else
      let* st = step cfg in
      match st with Finished outcome -> Ok outcome | Running cfg' -> loop cfg' (budget - 1)
  in
  loop cfg0 fuel

(** Machine words.

    MIRlight models Rust integers as 64-bit machine words tagged with
    their declared width (see {!Mir.Ty.int_ty}).  All arithmetic wraps
    modulo [2^width]; comparisons are unsigned unless stated otherwise.
    The representation is an OCaml [int64] whose bits above the width
    are always zero (a normalization invariant maintained by every
    operation in this module). *)

type t = int64

(** Width of an integer type, in bits. *)
type width = W8 | W16 | W32 | W64

val bits : width -> int
(** [bits w] is 8, 16, 32 or 64. *)

val mask : width -> int64
(** [mask w] is the all-ones pattern for [w], e.g. [0xFF] for {!W8}. *)

val norm : width -> t -> t
(** [norm w x] truncates [x] to the low [bits w] bits. *)

val zero : t
val one : t

val of_int : width -> int -> t
val to_int : t -> int
(** [to_int x] is the value as an OCaml [int]; raises [Invalid_argument]
    if [x] does not fit in a non-negative OCaml int. *)

val of_int64 : width -> int64 -> t

val add : width -> t -> t -> t
val sub : width -> t -> t -> t
val mul : width -> t -> t -> t

val div : width -> t -> t -> t option
(** Unsigned division; [None] on division by zero. *)

val rem : width -> t -> t -> t option
(** Unsigned remainder; [None] on division by zero. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : width -> t -> t

val shift_left : width -> t -> int -> t
val shift_right : width -> t -> int -> t
(** Logical (unsigned) right shift. *)

val equal : t -> t -> bool
val compare_u : t -> t -> int
(** Unsigned comparison. *)

val lt_u : t -> t -> bool
val le_u : t -> t -> bool

val bit : t -> int -> bool
(** [bit x i] is bit [i] of [x]. *)

val set_bit : t -> int -> bool -> t
(** [set_bit x i b] is [x] with bit [i] forced to [b]. *)

val extract : t -> lo:int -> len:int -> t
(** [extract x ~lo ~len] is the bitfield [x\[lo .. lo+len-1\]],
    right-aligned. *)

val insert : t -> lo:int -> len:int -> t -> t
(** [insert x ~lo ~len f] overwrites the bitfield [lo .. lo+len-1] of
    [x] with the low [len] bits of [f]. *)

val umax : t
(** The all-ones 64-bit word, the top of the unsigned order. *)

val min_u : t -> t -> t
val max_u : t -> t -> t
(** Unsigned minimum / maximum. *)

val add_overflows : t -> t -> bool
val mul_overflows : t -> t -> bool
(** Does the unsigned 64-bit operation wrap?  The abstract
    interpreter's transfer functions use these to decide whether an
    interval operation is exact. *)

val add_sat : t -> t -> t
val sub_sat : t -> t -> t
val mul_sat : t -> t -> t
(** Unsigned 64-bit saturating arithmetic: [add_sat]/[mul_sat] clamp at
    {!umax}, [sub_sat] at zero.  These bound the surviving values of a
    [Checked_binary] once its overflow assertion has pruned the
    wrapping executions. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x1f]. *)

val pp_dec : Format.formatter -> t -> unit
val to_hex : t -> string

(* The MIRVerif pipeline on the real target (Fig. 3).

   Walks the memory module through every stage — Rustlite source, MIR
   translation, the 15-layer stack, per-layer code proofs — printing
   the artifacts and statistics at each step, ending with the Table 1
   style effort summary for this artifact.

   Run with: dune exec examples/verify_pipeline.exe *)

open Hyperenclave

let layout = Layout.default Geometry.tiny

let () =
  (* stage 1: the retrofitted Rust source *)
  let src = Mem_source.source layout in
  let out = Layers.compiled layout in
  Format.printf "=== Stage 1: HyperEnclave memory module (Rustlite) ===@.";
  Format.printf "%d source lines, %d functions (incl. %d trusted externs)@.@."
    out.Rustlite.Pipeline.source_lines
    (List.length out.Rustlite.Pipeline.function_names)
    (List.length out.Rustlite.Pipeline.externs);
  ignore src;

  (* stage 2: mirlightgen output for one function *)
  Format.printf "=== Stage 2: MIRlight for one function (walk) ===@.";
  (match Mir.Syntax.find_body out.Rustlite.Pipeline.program "walk" with
  | Some body -> Format.printf "%s@.@." (Mir.Pp.body_to_string body)
  | None -> Format.printf "walk not found!@.");

  (* stage 3: the layer stack *)
  Format.printf "=== Stage 3: the 15 layers ===@.";
  List.iter
    (fun lname ->
      let fns = Layers.functions_of_layer layout lname in
      Format.printf "  %-14s %2d functions%s@." lname (List.length fns)
        (if fns = [] then "" else ": " ^ String.concat ", " fns))
    Mem_spec.layer_names;
  let issues = Layers.stratification_ok layout in
  Format.printf "  stratification (no upcalls): %s@.@."
    (if issues = [] then "ok" else "VIOLATED");

  (* stage 4: per-layer code proofs *)
  Format.printf "=== Stage 4: code proofs, layer by layer ===@.";
  List.iter
    (fun lname ->
      let reports = Check.Code_proof.run_layer layout lname in
      if reports <> [] then begin
        let merged = Mirverif.Report.merge lname reports in
        Format.printf "  %-14s %4d cases, %4d passed, %3d skipped, %d failed@."
          lname merged.Mirverif.Report.total merged.Mirverif.Report.passed
          merged.Mirverif.Report.skipped
          (Mirverif.Report.failure_count merged)
      end)
    Mem_spec.layer_names;

  (* stage 5: effort statistics, Table 1 form *)
  Format.printf "@.=== Stage 5: artifact statistics (cf. Table 1) ===@.";
  Format.printf "  %-46s %6d@." "Rustlite source lines (memory module)"
    out.Rustlite.Pipeline.source_lines;
  Format.printf "  %-46s %6d@." "MIRlight lines" out.Rustlite.Pipeline.mir_lines;
  Format.printf "  %-46s %6d@." "functions under verification"
    (List.length out.Rustlite.Pipeline.function_names);
  Format.printf "  %-46s %6d@." "layers" Layers.layer_count;
  Format.printf "  %-46s %6.2f@." "MIR expansion factor (MIR lines / source lines)"
    (float_of_int out.Rustlite.Pipeline.mir_lines
    /. float_of_int out.Rustlite.Pipeline.source_lines)

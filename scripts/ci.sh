#!/bin/sh
# CI gate: full build, the test suites, a deterministic chaos smoke,
# and the engine determinism/cache gate.
#
# The chaos smoke replays 1000 fault-injected traces from a fixed seed
# on both monitors: the correct one must survive every
# transactionality, invariant and TLB-consistency check, and the
# deliberately buggy one (unmap without TLB flush) must yield a shrunk
# stale-TLB witness — each run exits non-zero when its expected
# outcome does not hold.
#
# The engine gate runs the pass three times: jobs=1 without a cache,
# jobs=4 against a cold cache, jobs=2 against the now-warm cache.
# Stdout must be byte-identical across all three (scheduling and cache
# state may not influence verification output), the warm run must
# report cache hits, and it must re-execute zero code-proof and zero
# static-analysis obligations.
#
# The static-analysis gate additionally requires the lint phase, the
# abstract-interpretation phase (interval bounds + secret-flow taint,
# per call-graph SCC), the borrow-check phase (NLL liveness regions +
# loan dataflow, per function) and the alias phase (Andersen
# points-to footprints, per SCC) to report zero findings on the seed
# 15-layer stack, rejects unknown --lints names at argument parse
# time, requires the --lint-json artifact to be byte-identical across
# job counts, and re-runs the analysis test suites, whose negative
# fixtures (one hand-built MIRlight body per lint, planted
# hypercall-leak programs for secret-flow, an aliased frame-handle
# leak, a dangling EPCM borrow, and a footprint-violating points_to
# override that must be refused) assert that every lint actually
# fires.
#
# The model-checking gate exhaustively explores the bounded transition
# system (depth 4): deterministic across job counts and cache states,
# zero violations on the clean seed, and the planted stale-TLB bug
# rediscovered with its four-event shrunk witness under --buggy-tlb;
# the reduction gate requires partial-order reduction to prune >= 30%
# of interleavings without changing the reachable state set.
#
# The serving gate starts a --serve daemon with a 2-process fleet,
# pushes 50 mixed requests through --client (killing a fleet worker
# halfway), and requires every response byte-identical to a one-shot
# run of the same flags, the warm path to re-execute nothing, and the
# killed worker respawned without a dropped response; the throughput
# gate holds BENCH_serve.json to >= 1000 warm responses/s from the
# 4-process fleet, with fleet scaling judged against the cores the
# machine actually has.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

dune exec bin/hyperenclave_verify.exe -- \
  --quick --chaos --chaos-traces 1000 --seed 2024
dune exec bin/hyperenclave_verify.exe -- \
  --quick --chaos --chaos-traces 1000 --seed 2024 --buggy-tlb

# --- engine determinism + proof-cache gate --------------------------
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 1 \
  --lint-json "$workdir/serial-lints.json" > "$workdir/serial.out"
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 4 --cache "$workdir/pcache" \
  --lint-json "$workdir/cold-lints.json" \
  --json-out "$workdir/cold.json" > "$workdir/cold.out"
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 2 --cache "$workdir/pcache" \
  --json-out "$workdir/warm.json" --trace-out "$workdir/warm.jsonl" \
  > "$workdir/warm.out"

diff "$workdir/serial.out" "$workdir/cold.out"
diff "$workdir/serial.out" "$workdir/warm.out"
diff "$workdir/serial-lints.json" "$workdir/cold-lints.json" || {
  echo "ci: --lint-json output depends on job count / scheduling" >&2; exit 1; }
echo "ci: engine output identical across jobs 1/4 and warm cache"

# --- override-composition gate --------------------------------------
# Verdict invariance: disabling callee-spec overrides (--no-overrides,
# the monolithic executor) must leave the verification output
# byte-identical — composition may never show up in verdicts.  The
# default composed run must actually stub same-layer calls, and the
# engine 'overrides' unit group pins the rest: the proven gate opens
# only after callee spec-proofs, a quarantined callee falls the caller
# back to the body (never a vacuous pass), and fingerprints digest own
# body + direct callee specs only, so editing one mid-stack function
# invalidates exactly itself and its direct callers.  The same group
# pins the alias-certification path: a fact-free contract refinement
# certifies and installs, while a points_to override whose frame
# overlaps a caller-retained path is refused and the caller's composed
# run stays byte-identical to the monolithic verdict.
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 1 --no-overrides > "$workdir/mono.out"
diff "$workdir/serial.out" "$workdir/mono.out" || {
  echo "ci: override-composed verdicts differ from monolithic" >&2; exit 1; }
stubs=$(sed -n 's/.*"stubbed_calls_total": *\([0-9][0-9]*\).*/\1/p' "$workdir/cold.json")
[ -n "$stubs" ] && [ "$stubs" -gt 0 ] || {
  echo "ci: composed run stubbed no callee calls" >&2; exit 1; }
dune exec test/engine/test_engine.exe -- test overrides > /dev/null || {
  echo "ci: override gate/fingerprint unit group failed" >&2; exit 1; }
echo "ci: override gate ok (verdicts invariant, $stubs call sites stubbed)"

hits=$(sed -n 's/^  "cache_hits": *\([0-9][0-9]*\).*/\1/p' "$workdir/warm.json")
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
  echo "ci: warm run reported no cache hits" >&2; exit 1; }
grep '"phase": "code-proofs"' "$workdir/warm.json" | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed code-proof obligations" >&2; exit 1; }
grep '"phase": "analysis"' "$workdir/warm.json" | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed static-analysis obligations" >&2; exit 1; }
grep '"phase": "absint"' "$workdir/warm.json" | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed abstract-interpretation obligations" >&2; exit 1; }
grep '"phase": "borrow"' "$workdir/warm.json" | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed borrow-check obligations" >&2; exit 1; }
grep '"phase": "alias"' "$workdir/warm.json" | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed alias-analysis obligations" >&2; exit 1; }
grep -q '"verdict": "pass"' "$workdir/warm.json" || {
  echo "ci: warm run verdict is not pass" >&2; exit 1; }
echo "ci: warm cache replayed $hits obligations, zero code proofs or lints re-executed"

# --- static-analysis gate -------------------------------------------
grep -E -q 'lint checks: [0-9]+ passed, 0 findings' "$workdir/serial.out" || {
  echo "ci: static analysis reported findings on the seed stack" >&2; exit 1; }
grep -E -q 'SCC obligations: 0 secret-flow findings, 0 interval findings' \
  "$workdir/serial.out" || {
  echo "ci: abstract interpretation reported findings on the seed stack" >&2
  exit 1; }
grep -E -q 'borrow checks: [0-9]+ passed, 0 findings' "$workdir/serial.out" || {
  echo "ci: borrow checker reported findings on the seed stack" >&2; exit 1; }
grep -E -q 'SCC obligations: 0 alias findings' "$workdir/serial.out" || {
  echo "ci: alias analysis reported findings on the seed stack" >&2; exit 1; }
# an unknown lint name or group selector must be rejected at argument
# parse time, loudly, like --geometry's enum
if dune exec bin/hyperenclave_verify.exe -- --quick --lints bogus \
    > /dev/null 2> "$workdir/lints.err"; then
  echo "ci: unknown --lints name was accepted" >&2; exit 1
fi
grep -q 'unknown lint' "$workdir/lints.err" || {
  echo "ci: unknown --lints rejection does not name the lint" >&2; exit 1; }
dune exec test/analysis/test_analysis.exe > /dev/null || {
  echo "ci: analysis suite (negative lint fixtures) failed" >&2; exit 1; }
dune exec test/analysis/test_absint.exe > /dev/null || {
  echo "ci: absint suite (planted-leak fixtures, lattice laws) failed" >&2
  exit 1; }
echo "ci: lints clean on the seed stack (incl. borrow + alias), all negative fixtures fire, bad --lints rejected"

# --- engine-chaos smoke gate ----------------------------------------
# A fixed-seed chaos run (injected obligation crashes/hangs, worker
# kills, torn packs, truncated .proof files, clock skew) must
# terminate with exit code 0 and verdicts byte-identical to the clean
# run above: the supervisor absorbs every injected fault.  The warm
# rerun over the chaos-torn cache must also match (corrupt entries are
# evicted and recomputed, never trusted), and no cache write may have
# been silently dropped.
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 4 --engine-chaos 42 \
  --timeout-ms 200 --retries 2 --cache "$workdir/chaos-cache" \
  --json-out "$workdir/chaos.json" > "$workdir/chaos.out"
diff "$workdir/serial.out" "$workdir/chaos.out" || {
  echo "ci: chaos run verdicts differ from clean run" >&2; exit 1; }
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --jobs 2 --cache "$workdir/chaos-cache" \
  --json-out "$workdir/chaos-warm.json" > "$workdir/chaos-warm.out"
diff "$workdir/serial.out" "$workdir/chaos-warm.out" || {
  echo "ci: rerun over chaos-torn cache differs from clean run" >&2; exit 1; }
injected=$(sed -n 's/.*"injected_total": *\([0-9][0-9]*\).*/\1/p' "$workdir/chaos.json")
[ -n "$injected" ] && [ "$injected" -gt 0 ] || {
  echo "ci: chaos run injected no faults" >&2; exit 1; }
for f in "$workdir/chaos.json" "$workdir/chaos-warm.json"; do
  grep -q '"cache_write_failures": 0' "$f" || {
    echo "ci: $f reports dropped cache writes" >&2; exit 1; }
done
echo "ci: chaos smoke ok ($injected faults injected, verdicts identical, 0 dropped cache writes)"

# --- model-checking gate --------------------------------------------
# Exhaustive bounded exploration must be as deterministic as the rest
# of the pass: the phase-11 output (states explored, transitions,
# violations) is diffed byte-for-byte across jobs=1, a cold cache at
# jobs=4 and the warm cache at jobs=2, and the warm run must re-execute
# zero model-check shards.  On the clean seed the checker must report
# zero violations over every reachable state; under --buggy-tlb it must
# rediscover the planted stale-TLB bug exhaustively and shrink the
# counterexample to its known four-event witness.
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --model-check 4 --jobs 1 > "$workdir/mc-serial.out"
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --model-check 4 --jobs 4 --cache "$workdir/mc-cache" \
  > "$workdir/mc-cold.out"
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --model-check 4 --jobs 2 --cache "$workdir/mc-cache" \
  --json-out "$workdir/mc-warm.json" > "$workdir/mc-warm.out"
diff "$workdir/mc-serial.out" "$workdir/mc-cold.out"
diff "$workdir/mc-serial.out" "$workdir/mc-warm.out"
grep '"phase": "model-check"' "$workdir/mc-warm.json" \
  | grep -q '"executed": 0' || {
  echo "ci: warm run re-executed model-check obligations" >&2; exit 1; }
grep -q 'no violations: every reachable state' "$workdir/mc-serial.out" || {
  echo "ci: model checker reported violations on the clean seed" >&2; exit 1; }
dune exec bin/hyperenclave_verify.exe -- \
  --quick --seed 2024 --model-check 4 --buggy-tlb --chaos \
  > "$workdir/mc-buggy.out"
grep -q 'rediscovered the planted stale-TLB bug exhaustively' \
  "$workdir/mc-buggy.out" || {
  echo "ci: model checker missed the planted stale-TLB bug" >&2; exit 1; }
grep -q 'minimal witness: 4 events' "$workdir/mc-buggy.out" || {
  echo "ci: stale-TLB counterexample did not shrink to 4 events" >&2; exit 1; }
echo "ci: model-check gate ok (deterministic, clean seed clean, bug rediscovered)"

# --- serving gate ---------------------------------------------------
# The --serve daemon must be a drop-in evaluation vector: every
# response byte-identical to a one-shot run of the same request
# (stdout verbatim; summaries compared through the deterministic
# --scrub-summary projection, which both sides write), the warm path
# must re-execute nothing (the unscrubbed client summary reports
# executed 0 and zero code-proof re-executions), and a fleet worker
# killed mid-run must be respawned without dropping or corrupting a
# single response.
exe=_build/default/bin/hyperenclave_verify.exe
serve_args() {
  case $1 in
    0) echo "--quick --seed 2024" ;;
    1) echo "--quick --seed 2024 --lints body" ;;
    2) echo "--quick --seed 2024 --no-overrides" ;;
    3) echo "--quick --seed 2024 --model-check 4" ;;
    4) echo "--quick --geometry x86_64 --lints body" ;;
  esac
}
for c in 0 1 2 3 4; do
  # shellcheck disable=SC2046
  "$exe" $(serve_args "$c") --scrub-summary \
    --json-out "$workdir/serve-ref-$c.json" > "$workdir/serve-ref-$c.out"
done
sock="$workdir/serve.sock"
"$exe" --serve "$sock" --fleet 2 --cache "$workdir/serve-cache" \
  2> "$workdir/serve.err" &
serve_pid=$!
i=0
while [ "$i" -lt 100 ] && ! [ -S "$sock" ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$sock" ] || { echo "ci: serve daemon did not come up" >&2; exit 1; }
w0=""
i=0
while [ "$i" -lt 50 ]; do
  c=$((i % 5))
  # shellcheck disable=SC2046
  "$exe" --client "$sock" $(serve_args "$c") --scrub-summary \
    --json-out "$workdir/serve-cli.json" > "$workdir/serve-cli.out"
  diff "$workdir/serve-ref-$c.out" "$workdir/serve-cli.out" || {
    echo "ci: daemon stdout differs from one-shot (config $c, request $i)" >&2
    exit 1; }
  diff "$workdir/serve-ref-$c.json" "$workdir/serve-cli.json" || {
    echo "ci: daemon summary differs from one-shot (config $c, request $i)" >&2
    exit 1; }
  if [ "$i" -eq 24 ]; then
    # kill a fleet worker mid-run: the remaining 25 requests must still
    # come back, byte-identical
    w0=$(sed -n 's/.*fleet worker 0 started (pid \([0-9]*\)).*/\1/p' \
      "$workdir/serve.err" | head -1)
    [ -n "$w0" ] || { echo "ci: no worker pid in daemon log" >&2; exit 1; }
    kill -9 "$w0"
  fi
  i=$((i + 1))
done
for c in 0 1 2 3 4; do
  # shellcheck disable=SC2046
  "$exe" --client "$sock" $(serve_args "$c") \
    --json-out "$workdir/serve-warm-$c.json" > /dev/null
  grep -q '^  "executed": 0,' "$workdir/serve-warm-$c.json" || {
    echo "ci: daemon warm path re-executed obligations (config $c)" >&2
    exit 1; }
done
grep '"phase": "code-proofs"' "$workdir/serve-warm-0.json" \
  | grep -q '"executed": 0' || {
  echo "ci: daemon warm path re-executed code-proof obligations" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2> /dev/null || true
grep -q 'respawning' "$workdir/serve.err" || {
  echo "ci: worker kill did not trigger a respawn" >&2; exit 1; }
echo "ci: serve gate ok (50 daemon responses byte-identical to one-shot across 5 configs, warm path executed 0, killed worker respawned)"

# scaling benchmarks, uploaded as workflow artifacts
dune exec bench/engine_bench.exe -- --quick --out BENCH_engine.json > /dev/null
echo "ci: wrote BENCH_engine.json"
dune exec bench/analysis_bench.exe -- --out BENCH_analysis.json > /dev/null
echo "ci: wrote BENCH_analysis.json"
dune exec bench/supervisor_bench.exe -- --quick --out BENCH_supervisor.json > /dev/null
echo "ci: wrote BENCH_supervisor.json"
dune exec bench/mc_bench.exe -- --quick --out BENCH_mc.json > /dev/null
echo "ci: wrote BENCH_mc.json"
dune exec bench/serve_bench.exe -- --out BENCH_serve.json > /dev/null
echo "ci: wrote BENCH_serve.json"

# --- serving throughput gate ----------------------------------------
# The 4-process fleet must sustain >= 1000 warm responses/s through the
# full wire path (framing, dispatch, admission batching, L0 replay,
# response delivery).  Fleet scaling on execute-bound work (distinct
# never-seen requests) is measured honestly against the cores this
# machine actually has: below 4 cores, 4 workers cannot multiply
# wall-clock — the gate then only rejects pathological slowdowns and
# records the single-core ratio; on >= 4 cores it demands the 2.5x.
s_cores=$(sed -n 's/.*"cores": \([0-9]*\),.*/\1/p' BENCH_serve.json)
s_f4rps=$(sed -n 's/.*"fleet": 4,.*"warm_rps": \([0-9.eE+-]*\),.*/\1/p' BENCH_serve.json | head -1)
s_scale=$(sed -n 's/.*"fleet4_vs_fleet1_distinct_cold": \([0-9.eE+-]*\),.*/\1/p' BENCH_serve.json)
[ -n "$s_cores" ] && [ -n "$s_f4rps" ] && [ -n "$s_scale" ] || {
  echo "ci: BENCH_serve.json missing fleet points" >&2; exit 1; }
awk -v r="$s_f4rps" 'BEGIN { exit !(r >= 1000) }' || {
  echo "ci: fleet-4 warm throughput ${s_f4rps} req/s below the 1000 req/s bar" >&2
  exit 1; }
if [ "$s_cores" -ge 4 ]; then
  awk -v s="$s_scale" 'BEGIN { exit !(s >= 2.5) }' || {
    echo "ci: fleet-4 execute-bound scaling ${s_scale}x below 2.5x on $s_cores cores" >&2
    exit 1; }
else
  awk -v s="$s_scale" 'BEGIN { exit !(s >= 0.6) }' || {
    echo "ci: fleet-4 pathologically slower than fleet-1 (${s_scale}x) even for $s_cores core(s)" >&2
    exit 1; }
fi
echo "ci: serve throughput gate ok (fleet-4 warm ${s_f4rps} req/s, execute-bound f4/f1 ${s_scale}x on ${s_cores} core(s))"

# --- reduction gate -------------------------------------------------
# Partial-order reduction must prune at least 30% of the bounded
# interleavings without changing the reachable state set (the bench
# recomputes both and records the comparison).
pf=$(sed -n 's/.*"pruning_factor": \([0-9.eE+-]*\),.*/\1/p' BENCH_mc.json)
[ -n "$pf" ] || { echo "ci: BENCH_mc.json missing pruning_factor" >&2; exit 1; }
awk -v pf="$pf" 'BEGIN { exit !(pf >= 0.30) }' || {
  echo "ci: POR pruning factor $pf below the 30% bar" >&2; exit 1; }
grep -q '"por_states_match": true' BENCH_mc.json || {
  echo "ci: POR changed the reachable state set" >&2; exit 1; }
echo "ci: reduction gate ok (POR pruned ${pf} of interleavings, states unchanged)"

# --- scaling gate ---------------------------------------------------
# Adding workers must never cost wall-clock: jobs=4 has to finish within
# jobs=1 plus measurement headroom (25%).  The old pool lost 4-5x here
# (per-completion broadcasts + domains oversubscribing the hardware);
# this pins the fix.
jobs_wall() {
  sed -n 's/.*"jobs": '"$1"', "wall_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json
}
jobs_speedup() {
  sed -n 's/.*"jobs": '"$1"',.*"speedup": \([0-9.eE+-]*\).*/\1/p' BENCH_engine.json
}
w1=$(jobs_wall 1); w4=$(jobs_wall 4)
[ -n "$w1" ] && [ -n "$w4" ] || {
  echo "ci: missing jobs points in BENCH_engine.json" >&2; exit 1; }
awk -v w1="$w1" -v w4="$w4" 'BEGIN { exit !(w4 <= w1 * 1.25) }' || {
  echo "ci: jobs=4 wall ${w4}s exceeds jobs=1 wall ${w1}s + 25% headroom" >&2
  exit 1; }
echo "ci: scaling gate ok (jobs=1 ${w1}s, jobs=4 ${w4}s)"

# --- override cost gate ---------------------------------------------
# Stubbing proven callees with their contracts must never cost cold
# wall-clock: the composed code-proof pass has to finish within the
# monolithic pass plus measurement headroom (10%; both walls are
# best-of-three, interleaved).  The per-function ratio on the deepest
# call tree is reported alongside as the headline compositional win.
ov_on=$(sed -n 's/.*"override_on_code_proof_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json)
ov_off=$(sed -n 's/.*"override_off_code_proof_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json)
ov_sp=$(sed -n 's/.*"override_speedup": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json)
ov_deep=$(sed -n 's/.*"override_deepest_speedup": \([0-9.eE+-]*\).*/\1/p' BENCH_engine.json)
[ -n "$ov_on" ] && [ -n "$ov_off" ] || {
  echo "ci: BENCH_engine.json missing override walls" >&2; exit 1; }
awk -v on="$ov_on" -v off="$ov_off" 'BEGIN { exit !(on <= off * 1.10) }' || {
  echo "ci: override-on code proofs ${ov_on}s exceed override-off ${ov_off}s + 10% headroom" >&2
  exit 1; }
echo "ci: override cost gate ok (on ${ov_on}s vs off ${ov_off}s, deepest tree ${ov_deep}x)"

# --- bench trajectory -----------------------------------------------
# One summary line per CI run, appended so regressions are visible as a
# series, not a point (kept as a workflow artifact alongside the JSON).
cold=$(sed -n 's/.*"cold_wall_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json)
warm=$(sed -n 's/.*"warm_speedup": \([0-9.eE+-]*\),.*/\1/p' BENCH_engine.json)
mcrate=$(sed -n 's/.*"states_per_sec": \([0-9.eE+-]*\),.*/\1/p' BENCH_mc.json)
bw_wall=$(sed -n 's/.*"borrow": {"wall_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_analysis.json)
al_wall=$(sed -n 's/.*"alias": {"wall_s": \([0-9.eE+-]*\),.*/\1/p' BENCH_analysis.json)
al_exact=$(sed -n 's/.*"exact_footprints": \([0-9]*\),.*/\1/p' BENCH_analysis.json)
printf '%s cold_wall_s=%s warm_speedup=%s jobs2_speedup=%s jobs4_speedup=%s mc_states_per_sec=%s mc_pruning=%s override_speedup=%s borrow_wall_s=%s alias_wall_s=%s alias_exact_footprints=%s serve_warm_rps_fleet4=%s serve_f4_vs_f1_cold=%s serve_cores=%s\n' \
  "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$cold" "$warm" \
  "$(jobs_speedup 2)" "$(jobs_speedup 4)" "$mcrate" "$pf" "$ov_sp" \
  "$bw_wall" "$al_wall" "$al_exact" \
  "$s_f4rps" "$s_scale" "$s_cores" >> BENCH_trajectory.log
echo "ci: appended $(tail -1 BENCH_trajectory.log | cut -d' ' -f2-) to BENCH_trajectory.log"

echo "ci: all green"

#!/bin/sh
# CI gate: full build, the test suites, and a deterministic chaos smoke.
#
# The smoke replays 1000 fault-injected traces from a fixed seed on
# both monitors: the correct one must survive every transactionality,
# invariant and TLB-consistency check, and the deliberately buggy one
# (unmap without TLB flush) must yield a shrunk stale-TLB witness —
# each run exits non-zero when its expected outcome does not hold.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

dune exec bin/hyperenclave_verify.exe -- \
  --quick --chaos --chaos-traces 1000 --seed 2024
dune exec bin/hyperenclave_verify.exe -- \
  --quick --chaos --chaos-traces 1000 --seed 2024 --buggy-tlb

echo "ci: all green"

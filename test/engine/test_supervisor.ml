(* Tests of supervised obligation execution: deterministic timeouts
   against a mocked clock (no real sleeps), retry/backoff determinism,
   the degradation ladder (reference-interpreter fallback, corrupt
   cache eviction, worker respawn), quarantine, cache write-failure
   surfacing, and the engine chaos harness — including the CI property
   that a chaos run's verdicts are byte-identical to a clean run's. *)

module Report = Mirverif.Report
module Obligation = Engine.Obligation
module Dag = Engine.Dag
module Pool = Engine.Pool
module Cache = Engine.Cache
module Supervisor = Engine.Supervisor
module Chaos = Engine.Engine_chaos
module Plan = Fault.Plan

let pass_obl ?(phase = "test") ?(deps = []) ?(fingerprint = "fp") ?fallback id =
  Obligation.v ~id ~phase ~deps ~fingerprint ?fallback (fun () ->
      Obligation.outcome [ Report.add_pass (Report.empty id) ])

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-supervisor-test-%d-%d" (Unix.getpid ()) !n)

(* a config whose backoffs are recorded, never slept *)
let recording_cfg ?timeout ?(retries = 0) ?chaos ?(seed = 11) slept =
  {
    Supervisor.default with
    timeout;
    retries;
    seed;
    chaos;
    sleep = (fun d -> slept := d :: !slept);
  }

let statuses_of (trail : Supervisor.trail) =
  List.map
    (fun (a : Supervisor.attempt) -> Supervisor.status_to_string a.Supervisor.status)
    trail.Supervisor.attempts

let report_text (o : Obligation.outcome) =
  String.concat "\n" (List.map Report.to_string o.Obligation.reports)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Timeouts against a mocked clock — no real sleeps anywhere           *)

(* every Clock read jumps 10 s, so any poll after arming a 1 s deadline
   cancels the attempt *)
let with_fast_clock f =
  let t = ref 0.0 in
  Engine.Clock.with_source
    (fun () ->
      t := !t +. 10.0;
      !t)
    f

let test_timeout_then_quarantine () =
  let slept = ref [] in
  let cfg = recording_cfg ~timeout:1.0 ~retries:2 slept in
  let polls = ref 0 in
  let o =
    Obligation.v ~id:"slow" ~phase:"test" ~fingerprint:"fp" (fun () ->
        incr polls;
        Mirverif.Cancel.poll ();
        Obligation.outcome [ Report.add_pass (Report.empty "slow") ])
  in
  let r = with_fast_clock (fun () -> Supervisor.supervise cfg o) in
  Alcotest.(check (list string))
    "every attempt timed out" [ "timeout"; "timeout"; "timeout" ]
    (statuses_of r.Supervisor.trail);
  Alcotest.(check string) "quarantined" "quarantined"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution);
  Alcotest.(check bool) "not cacheable" false r.Supervisor.cacheable;
  Alcotest.(check int) "one synthesized failure" 1
    (Obligation.failure_count r.Supervisor.outcome);
  Alcotest.(check bool) "reason names the quarantine" true
    (contains (report_text r.Supervisor.outcome)
       "obligation quarantined after 3 attempt(s)");
  Alcotest.(check int) "the obligation really ran three times" 3 !polls;
  (* the trace records the exact attempt sequence, including the
     deterministic backoff slept between attempts *)
  let expected =
    [
      Supervisor.backoff_delay cfg ~id:"slow" ~attempt:1;
      Supervisor.backoff_delay cfg ~id:"slow" ~attempt:2;
    ]
  in
  Alcotest.(check (list (float 0.0))) "backoffs as computed" expected (List.rev !slept);
  Alcotest.(check (list (float 0.0)))
    "trail carries the same backoffs" (expected @ [ 0.0 ])
    (List.map (fun (a : Supervisor.attempt) -> a.Supervisor.backoff)
       r.Supervisor.trail.Supervisor.attempts)

let test_timeout_then_recover () =
  let slept = ref [] in
  let cfg = recording_cfg ~timeout:1.0 ~retries:2 slept in
  let attempts = ref 0 in
  let o =
    Obligation.v ~id:"slow-once" ~phase:"test" ~fingerprint:"fp" (fun () ->
        incr attempts;
        if !attempts = 1 then Mirverif.Cancel.poll ();
        Obligation.outcome [ Report.add_pass (Report.empty "slow-once") ])
  in
  let r = with_fast_clock (fun () -> Supervisor.supervise cfg o) in
  Alcotest.(check (list string))
    "timeout then ok" [ "timeout"; "ok" ]
    (statuses_of r.Supervisor.trail);
  Alcotest.(check string) "recovered" "recovered"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution);
  Alcotest.(check bool) "cacheable" true r.Supervisor.cacheable;
  Alcotest.(check int) "clean outcome" 0 (Obligation.failure_count r.Supervisor.outcome)

(* the hook reads a per-domain deadline: with none armed, polling is a
   no-op even right after a supervised timeout ran on this domain *)
let test_poll_noop_without_deadline () =
  Mirverif.Cancel.poll ();
  Alcotest.(check pass) "poll outside supervision is a no-op" () ()

(* ------------------------------------------------------------------ *)
(* Retry / backoff determinism                                         *)

let test_retry_backoff_deterministic () =
  let run () =
    let slept = ref [] in
    let cfg = recording_cfg ~retries:3 slept in
    let attempts = ref 0 in
    let o =
      Obligation.v ~id:"flaky" ~phase:"test" ~fingerprint:"fp" (fun () ->
          incr attempts;
          if !attempts <= 2 then failwith "transient";
          Obligation.outcome [ Report.add_pass (Report.empty "flaky") ])
    in
    let r = Supervisor.supervise cfg o in
    (statuses_of r.Supervisor.trail,
     Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution,
     List.rev !slept)
  in
  let s1, res1, b1 = run () in
  let s2, res2, b2 = run () in
  Alcotest.(check (list string)) "crash, crash, ok" [ "crash"; "crash"; "ok" ] s1;
  Alcotest.(check string) "recovered" "recovered" res1;
  Alcotest.(check (list string)) "statuses replay" s1 s2;
  Alcotest.(check string) "resolution replays" res1 res2;
  Alcotest.(check (list (float 0.0))) "backoff sequence replays" b1 b2;
  (* nominal exponential shape: delay n is within [base*2^(n-1), 2*that] *)
  List.iteri
    (fun i d ->
      let nominal = 0.05 *. Float.pow 2.0 (float_of_int i) in
      if d < nominal || d > 2.0 *. nominal then
        Alcotest.failf "backoff %d out of band: %f" (i + 1) d)
    b1

let test_backoff_streams_differ_per_obligation () =
  let cfg = recording_cfg (ref []) in
  Alcotest.(check bool) "per-id jitter streams diverge" true
    (Supervisor.backoff_delay cfg ~id:"a" ~attempt:1
    <> Supervisor.backoff_delay cfg ~id:"b" ~attempt:1)

(* with the default config a crash reports exactly as the historical
   unsupervised pool did *)
let test_default_config_legacy_crash_shape () =
  let o =
    Obligation.v ~id:"boom" ~phase:"test" ~fingerprint:"fp" (fun () ->
        failwith "deliberate")
  in
  let r = Supervisor.supervise Supervisor.default o in
  Alcotest.(check int) "one failure" 1 (Obligation.failure_count r.Supervisor.outcome);
  Alcotest.(check bool) "legacy reason text" true
    (contains (report_text r.Supervisor.outcome) "obligation raised: Failure(\"deliberate\")");
  Alcotest.(check bool) "not cacheable" false r.Supervisor.cacheable

(* ------------------------------------------------------------------ *)
(* Degradation ladder: reference-interpreter fallback                  *)

let test_fallback_discharges_crash () =
  let fellback = ref 0 in
  let o =
    Obligation.v ~id:"compiled-crash" ~phase:"test" ~fingerprint:"fp"
      ~fallback:(fun () ->
        incr fellback;
        Obligation.outcome [ Report.add_pass (Report.empty "compiled-crash") ])
      (fun () -> failwith "segv in compiled closure")
  in
  let r = Supervisor.supervise { Supervisor.default with retries = 1 } o in
  Alcotest.(check string) "fell back" "fell-back"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution);
  Alcotest.(check int) "fallback ran once" 1 !fellback;
  Alcotest.(check int) "fallback outcome stands in" 0
    (Obligation.failure_count r.Supervisor.outcome);
  Alcotest.(check bool) "fallback outcome is cacheable" true r.Supervisor.cacheable;
  Alcotest.(check (list string)) "after both attempts crashed"
    [ "crash"; "crash" ] (statuses_of r.Supervisor.trail)

let test_fallback_crash_still_quarantines () =
  let o =
    Obligation.v ~id:"double-crash" ~phase:"test" ~fingerprint:"fp"
      ~fallback:(fun () -> failwith "interp crashed too")
      (fun () -> failwith "compiled crashed")
  in
  let r = Supervisor.supervise Supervisor.default o in
  Alcotest.(check string) "quarantined" "quarantined"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution);
  Alcotest.(check bool) "not cacheable" false r.Supervisor.cacheable

(* through the pool and the cache: a fallback outcome is stashed, a
   quarantined one is not *)
let test_pool_caches_fallback_not_quarantine () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let ladder =
    Obligation.v ~id:"ladder" ~phase:"test" ~fingerprint:"fp-l"
      ~fallback:(fun () ->
        Obligation.outcome [ Report.add_pass (Report.empty "ladder") ])
      (fun () -> failwith "always")
  in
  let hopeless =
    Obligation.v ~id:"hopeless" ~phase:"test" ~fingerprint:"fp-h" (fun () ->
        failwith "always")
  in
  let execs = Pool.run ~cache ~jobs:1 (Dag.build_exn [ ladder; hopeless ]) in
  Alcotest.(check int) "only the fallback outcome is cached" 1 (Cache.entry_count cache);
  (match execs with
  | [ l; h ] ->
      Alcotest.(check string) "ladder fell back" "fell-back"
        (Supervisor.resolution_to_string l.Pool.trail.Supervisor.resolution);
      Alcotest.(check string) "hopeless quarantined" "quarantined"
        (Supervisor.resolution_to_string h.Pool.trail.Supervisor.resolution)
  | _ -> Alcotest.fail "expected two execs");
  let warm = Pool.run ~cache ~jobs:1 (Dag.build_exn [ ladder; hopeless ]) in
  Alcotest.(check (list string)) "warm: ladder hits, hopeless re-runs"
    [ "hit"; "miss" ]
    (List.map (fun (e : Pool.exec) -> Pool.cache_status_to_string e.Pool.cache) warm)

(* the real plan wires the interpreter fallback onto every code-proof
   obligation and nothing else *)
let test_plan_code_proofs_have_fallback () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let plan = Engine.Plan.build ~quick:true ~seed:2024 layout in
  List.iter
    (fun (o : Obligation.t) ->
      let has = o.Obligation.fallback <> None in
      let expect = o.Obligation.phase = "code-proofs" in
      if has <> expect then
        Alcotest.failf "%s: fallback %b, expected %b" o.Obligation.id has expect)
    (Dag.obligations plan.Engine.Plan.dag)

(* ------------------------------------------------------------------ *)
(* Chaos decisions                                                     *)

(* find an obligation id the harness marks with the wanted fault; the
   search itself is deterministic *)
let find_id pred =
  let rec go i =
    if i > 10_000 then Alcotest.fail "no id draws the wanted fault"
    else
      let id = Printf.sprintf "obl-%04d" i in
      if pred id then id else go (i + 1)
  in
  go 0

let test_chaos_decisions_deterministic () =
  let ch = Chaos.create ~seed:5 () in
  let ch' = Chaos.create ~seed:5 () in
  for i = 0 to 199 do
    let id = Printf.sprintf "obl-%04d" i in
    if Chaos.obl_fault ch ~id <> Chaos.obl_fault ch' ~id then
      Alcotest.failf "fault for %s differs between identical harnesses" id
  done;
  let faulted ch =
    List.filter
      (fun i -> Chaos.obl_fault ch ~id:(Printf.sprintf "obl-%04d" i) <> Chaos.No_fault)
      (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "some obligations drawn" true (List.length (faulted ch) > 0);
  Alcotest.(check bool) "but not all" true (List.length (faulted ch) < 200)

let test_chaos_crash_recovers_with_clean_verdict () =
  let ch = Chaos.create ~kinds:[ Plan.Obl_crash ] ~seed:5 () in
  let id =
    find_id (fun id ->
        match Chaos.obl_fault ch ~id with Chaos.Crash _ -> true | _ -> false)
  in
  let ran = ref 0 in
  let o =
    Obligation.v ~id ~phase:"test" ~fingerprint:"fp" (fun () ->
        incr ran;
        Obligation.outcome [ Report.add_pass (Report.empty id) ])
  in
  let cfg = recording_cfg ~retries:2 ~chaos:(Chaos.create ~kinds:[ Plan.Obl_crash ] ~seed:5 ()) (ref []) in
  let r = Supervisor.supervise cfg o in
  Alcotest.(check string) "recovered" "recovered"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution);
  Alcotest.(check int) "verdict is the clean one" 0
    (Obligation.failure_count r.Supervisor.outcome);
  Alcotest.(check bool) "injected attempts are marked" true
    (List.exists
       (fun (a : Supervisor.attempt) -> a.Supervisor.injected = Some Plan.Obl_crash)
       r.Supervisor.trail.Supervisor.attempts)

(* a drawn hang degrades to a crash when no deadline is configured:
   the supervision loop must terminate *)
let test_chaos_hang_without_timeout_degrades () =
  let probe = Chaos.create ~kinds:[ Plan.Obl_hang ] ~seed:5 () in
  let id =
    find_id (fun id ->
        match Chaos.obl_fault probe ~id with Chaos.Hang _ -> true | _ -> false)
  in
  let o = pass_obl ~fingerprint:"fp" id in
  let cfg =
    recording_cfg ~retries:2 ~chaos:(Chaos.create ~kinds:[ Plan.Obl_hang ] ~seed:5 ()) (ref [])
  in
  let r = Supervisor.supervise cfg o in
  Alcotest.(check string) "terminates and recovers" "recovered"
    (Supervisor.resolution_to_string r.Supervisor.trail.Supervisor.resolution)

(* with no retry budget the supervisor clamps persistence to zero:
   chaos may not inject anything it cannot absorb *)
let test_chaos_clamped_by_retry_budget () =
  let ch = Chaos.create ~kinds:[ Plan.Obl_crash ] ~seed:5 () in
  let id =
    find_id (fun id ->
        match Chaos.obl_fault ch ~id with Chaos.Crash _ -> true | _ -> false)
  in
  let o = pass_obl ~fingerprint:"fp" id in
  let cfg =
    recording_cfg ~retries:0 ~chaos:(Chaos.create ~kinds:[ Plan.Obl_crash ] ~seed:5 ()) (ref [])
  in
  let r = Supervisor.supervise cfg o in
  Alcotest.(check (list string)) "single clean attempt" [ "ok" ]
    (statuses_of r.Supervisor.trail)

(* ------------------------------------------------------------------ *)
(* Chaos through the pool: verdicts identical to a clean run, at any
   job count                                                           *)

let render execs =
  String.concat "\n"
    (List.concat_map
       (fun (e : Pool.exec) ->
         e.obligation.Obligation.id
         :: List.map Report.to_string e.outcome.Obligation.reports)
       execs)

let decisions execs =
  List.map
    (fun (e : Pool.exec) ->
      ( e.obligation.Obligation.id,
        Supervisor.resolution_to_string e.trail.Supervisor.resolution,
        statuses_of e.trail,
        List.map (fun (a : Supervisor.attempt) -> a.Supervisor.backoff)
          e.trail.Supervisor.attempts ))
    execs

let chain n =
  (* a few dependency chains plus independent roots, so stealing,
     release and completion all happen under fire *)
  List.init n (fun i ->
      let id = Printf.sprintf "c-%03d" i in
      let deps = if i mod 4 = 0 || i = 0 then [] else [ Printf.sprintf "c-%03d" (i - 1) ] in
      pass_obl ~deps ~fingerprint:"fp" id)

let chaos_cfg seed =
  {
    Supervisor.default with
    timeout = Some 0.05;
    retries = 2;
    seed = 3;
    sleep = (fun _ -> ());
    chaos = Some (Chaos.create ~seed ());
  }

let test_chaos_pool_verdicts_clean_and_deterministic () =
  let dag () = Dag.build_exn (chain 48) in
  let clean = Pool.run ~jobs:1 (dag ()) in
  let c1, s1 = Pool.run_with_stats ~sup:(chaos_cfg 9) ~jobs:1 (dag ()) in
  let c4, _ = Pool.run_with_stats ~sup:(chaos_cfg 9) ~oversubscribe:true ~jobs:4 (dag ()) in
  Alcotest.(check string) "chaos verdicts = clean verdicts" (render clean) (render c1);
  Alcotest.(check string) "jobs=1 and jobs=4 verdicts agree" (render c1) (render c4);
  Alcotest.(check bool) "supervision decisions are schedule-independent" true
    (decisions c1 = decisions c4);
  Alcotest.(check bool) "chaos actually injected" true
    (let ch = match (chaos_cfg 9).Supervisor.chaos with Some c -> c | None -> assert false in
     ignore ch;
     List.exists (fun (_, res, _, _) -> res <> "completed") (decisions c1));
  ignore s1

(* the satellite property behind --engine-chaos + overrides: the real
   composed code-proof DAG, run under fault injection, must render the
   byte-identical verdicts of a clean monolithic run.  A chaos-crashed
   callee is absorbed by the supervisor (retry / interpreter fallback)
   or leaves the caller's proven gate closed — body fallback — so no
   injection can ever turn a verdict vacuous or divergent. *)
let test_chaos_composed_verdicts_match_monolithic () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let composed () =
    Dag.build_exn
      (List.concat_map snd (Engine.Plan.code_proof_obligations ~seed:2024 layout))
  in
  let mono =
    Dag.build_exn
      (List.concat_map snd
         (Engine.Plan.code_proof_obligations ~seed:2024 ~overrides:false layout))
  in
  let cfg seed =
    {
      Supervisor.default with
      retries = 2;
      sleep = (fun _ -> ());
      chaos =
        Some (Chaos.create ~kinds:[ Plan.Obl_crash; Plan.Worker_kill ] ~seed ());
    }
  in
  let clean = Pool.run ~jobs:1 mono in
  let chaotic1 = Pool.run ~sup:(cfg 7) ~jobs:1 (composed ()) in
  let chaotic4 =
    Pool.run ~sup:(cfg 7) ~oversubscribe:true ~jobs:4 (composed ())
  in
  Alcotest.(check string) "chaos composed verdicts = clean monolithic"
    (render clean) (render chaotic1);
  Alcotest.(check string) "jobs=1 and jobs=4 agree under chaos"
    (render chaotic1) (render chaotic4);
  Alcotest.(check bool) "chaos actually injected" true
    (List.exists
       (fun (e : Pool.exec) ->
         Supervisor.resolution_to_string e.trail.Supervisor.resolution
         <> "completed")
       chaotic1)

(* ------------------------------------------------------------------ *)
(* Worker kills: respawn, exactly-once, and the synthesized-crash path *)

(* a chaos seed under which the harness kills the first executor of
   [id] at [site] *)
let kill_seed ~site ~id =
  let rec go seed =
    if seed > 10_000 then Alcotest.fail "no seed kills this obligation"
    else if Chaos.kill_worker (Chaos.create ~kinds:[ Plan.Worker_kill ] ~seed ()) ~site ~id
    then seed
    else go (seed + 1)
  in
  go 0

let kill_cfg seed =
  {
    Supervisor.default with
    sleep = (fun _ -> ());
    chaos = Some (Chaos.create ~kinds:[ Plan.Worker_kill ] ~seed ());
  }

let test_worker_respawn_completes_everything () =
  let seed = kill_seed ~site:"pre-exec" ~id:"victim" in
  let dag =
    Dag.build_exn [ pass_obl ~fingerprint:"fp" "victim"; pass_obl ~deps:[ "victim" ] "after" ]
  in
  let execs, stats = Pool.run_with_stats ~sup:(kill_cfg seed) ~jobs:1 dag in
  Alcotest.(check int) "both obligations complete" 2 (List.length execs);
  Alcotest.(check bool) "no failures" true
    (List.for_all (fun (e : Pool.exec) -> Obligation.failure_count e.Pool.outcome = 0) execs);
  Alcotest.(check bool) "the worker was respawned" true (stats.Pool.respawns >= 1);
  Alcotest.(check int) "no worker permanently lost" 0 stats.Pool.lost_workers

(* the nastier kill: result computed but unpublished — the respawned
   worker redoes the obligation, and the publish flag keeps dependent
   release and completion exactly-once *)
let test_worker_kill_after_compute_exactly_once () =
  let seed = kill_seed ~site:"post-exec" ~id:"victim" in
  let ran = ref 0 in
  let victim =
    Obligation.v ~id:"victim" ~phase:"test" ~fingerprint:"fp" (fun () ->
        incr ran;
        Obligation.outcome [ Report.add_pass (Report.empty "victim") ])
  in
  let dag = Dag.build_exn [ victim; pass_obl ~deps:[ "victim" ] "after" ] in
  let execs, stats = Pool.run_with_stats ~sup:(kill_cfg seed) ~jobs:1 dag in
  Alcotest.(check int) "one exec per obligation" 2 (List.length execs);
  Alcotest.(check bool) "no failures" true
    (List.for_all (fun (e : Pool.exec) -> Obligation.failure_count e.Pool.outcome = 0) execs);
  Alcotest.(check int) "the victim ran twice (result was lost once)" 2 !ran;
  Alcotest.(check bool) "respawned" true (stats.Pool.respawns >= 1)

(* respawn budget exhausted: the pool still returns, synthesizing the
   explicit crash outcome for whatever was never published
   (the merge path also hit when a worker dies for real) *)
let test_dead_worker_synthesizes_crash_outcome () =
  let seed = kill_seed ~site:"pre-exec" ~id:"victim" in
  let dag = Dag.build_exn [ pass_obl ~fingerprint:"fp" "victim" ] in
  let execs, stats =
    Pool.run_with_stats ~sup:(kill_cfg seed) ~max_respawns:0 ~jobs:1 dag
  in
  Alcotest.(check int) "worker permanently lost" 1 stats.Pool.lost_workers;
  match execs with
  | [ e ] ->
      Alcotest.(check int) "synthesized crash outcome" 1
        (Obligation.failure_count e.Pool.outcome);
      Alcotest.(check bool) "explicit reason" true
        (contains (report_text e.Pool.outcome) "worker exited before publishing a result");
      Alcotest.(check int) "no worker claims it" (-1) e.Pool.worker;
      Alcotest.(check string) "trail says quarantined" "quarantined"
        (Supervisor.resolution_to_string e.Pool.trail.Supervisor.resolution)
  | _ -> Alcotest.fail "expected exactly one exec"

(* with survivors, a dead worker's queued obligations drain onto them *)
let test_dead_worker_drains_to_survivors () =
  let seed = kill_seed ~site:"pre-exec" ~id:"victim" in
  let dag =
    Dag.build_exn
      (pass_obl ~fingerprint:"fp" "victim"
       :: List.init 12 (fun i -> pass_obl ~fingerprint:"fp" (Printf.sprintf "bg-%02d" i)))
  in
  let execs, stats =
    Pool.run_with_stats ~sup:(kill_cfg seed) ~max_respawns:0 ~oversubscribe:true
      ~jobs:3 dag
  in
  Alcotest.(check int) "a worker died for good" 1 stats.Pool.lost_workers;
  let unfinished =
    List.filter (fun (e : Pool.exec) -> e.Pool.worker = -1) execs
  in
  (* only the obligation the dead worker held in-flight may be lost;
     everything queued was stolen and completed by the survivors *)
  Alcotest.(check bool) "at most the in-flight obligation lost" true
    (List.length unfinished <= 1);
  Alcotest.(check int) "all obligations accounted for" 13 (List.length execs)

(* ------------------------------------------------------------------ *)
(* Cache corruption fixtures and write-failure surfacing               *)

let counted counter ~fingerprint id =
  Obligation.v ~id ~phase:"test" ~deps:[] ~fingerprint (fun () ->
      incr counter;
      Obligation.outcome [ Report.add_pass (Report.empty id) ])

let test_torn_pack_evicted_and_recomputed () =
  let dir = fresh_dir () in
  let counter = ref 0 in
  let dag () =
    Dag.build_exn
      [ counted counter ~fingerprint:"t1" "a"; counted counter ~fingerprint:"t2" "b" ]
  in
  (* clean baseline for verdict comparison *)
  let clean = Pool.run ~jobs:1 (dag ()) in
  (* cold run whose pack write is torn by chaos *)
  let cache = Cache.create ~dir in
  let sup =
    { Supervisor.default with chaos = Some (Chaos.create ~kinds:[ Plan.Torn_pack ] ~seed:1 ()) }
  in
  ignore (Pool.run ~cache ~sup ~jobs:1 (dag ()));
  (* counter also saw the 2 baseline executions *)
  Alcotest.(check int) "both executed cold" 4 !counter;
  (* next process: the torn pack must load as nothing and be evicted *)
  let reloaded = Cache.create ~dir in
  Alcotest.(check int) "torn pack evicted wholesale" 0 (Cache.entry_count reloaded);
  Alcotest.(check bool) "no pack file survives" true
    (Array.for_all (fun f -> not (Filename.check_suffix f ".pack")) (Sys.readdir dir));
  let redo = Pool.run ~cache:reloaded ~jobs:1 (dag ()) in
  Alcotest.(check int) "recomputed cold" 6 !counter;
  Alcotest.(check string) "verdicts match the clean-cache run" (render clean) (render redo)

let test_truncated_proof_evicted_and_recomputed () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  Cache.set_chaos cache (Chaos.create ~kinds:[ Plan.Truncated_proof ] ~seed:1 ());
  let o = pass_obl ~fingerprint:"fp-trunc" "x" in
  let clean_outcome = o.Obligation.run () in
  Cache.store cache o clean_outcome;
  let file = Filename.concat dir (Cache.key o ^ ".proof") in
  Alcotest.(check bool) "entry written then truncated" true (Sys.file_exists file);
  (* a fresh cache (no pending/index state) must reject and evict it *)
  let reloaded = Cache.create ~dir in
  Alcotest.(check bool) "truncated entry is a miss" true (Cache.find reloaded o = None);
  Alcotest.(check bool) "and is evicted" false (Sys.file_exists file);
  (* recomputing yields the same verdict as the clean run *)
  let redo = o.Obligation.run () in
  Alcotest.(check string) "recomputed verdict matches"
    (String.concat "\n" (List.map Report.to_string clean_outcome.Obligation.reports))
    (String.concat "\n" (List.map Report.to_string redo.Obligation.reports))

let test_cache_write_failures_surfaced () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let o = pass_obl ~fingerprint:"fp-wf" "w" in
  Cache.stash cache o (o.Obligation.run ());
  (* pull the directory out from under the flush: the write must fail,
     the failure must be counted and reported, and nothing may raise *)
  Unix.rmdir dir;
  Cache.flush cache;
  Alcotest.(check int) "flush failure counted" 1 (Cache.write_failure_count cache);
  Cache.store cache o (o.Obligation.run ());
  Alcotest.(check int) "store failure counted too" 2 (Cache.write_failure_count cache);
  (match Cache.write_failures cache with
  | [ ("flush", m1); ("store", m2) ] ->
      Alcotest.(check bool) "messages carried" true
        (String.length m1 > 0 && String.length m2 > 0)
  | fs -> Alcotest.failf "unexpected failure records (%d)" (List.length fs));
  (* a healthy cache records nothing *)
  let ok = Cache.create ~dir:(fresh_dir ()) in
  Cache.stash ok o (o.Obligation.run ());
  Cache.flush ok;
  Alcotest.(check int) "healthy cache: zero failures" 0 (Cache.write_failure_count ok)

(* ------------------------------------------------------------------ *)
(* Clock skew and fault vocabulary                                     *)

let test_skewed_clock_bounded_and_monotone () =
  let ch = Chaos.create ~kinds:[ Plan.Clock_skew ] ~seed:7 () in
  let src = Chaos.skewed_source ch in
  let prev = ref neg_infinity in
  for _ = 1 to 2000 do
    let t = src () in
    if t < !prev then Alcotest.fail "skewed clock ran backwards";
    prev := t;
    let skew = t -. Engine.Clock.real () in
    if skew > 0.21 then Alcotest.failf "skew out of bounds: %f" skew
  done;
  Alcotest.(check bool) "skew was injected" true
    (List.assoc Plan.Clock_skew (Chaos.injected ch) > 0)

let test_engine_kind_parsing () =
  Alcotest.(check bool) "'all' expands" true
    (Plan.engine_kinds_of_string "all" = Ok Plan.all_engine_kinds);
  Alcotest.(check bool) "list parses in order" true
    (Plan.engine_kinds_of_string "obl-crash, torn-pack"
    = Ok [ Plan.Obl_crash; Plan.Torn_pack ]);
  (match Plan.engine_kinds_of_string "obl-crash,bogus" with
  | Error msg ->
      Alcotest.(check bool) "error names the kinds" true (contains msg "obl-crash")
  | Ok _ -> Alcotest.fail "bogus kind accepted");
  List.iter
    (fun k ->
      match Plan.engine_kind_of_string (Plan.engine_kind_to_string k) with
      | Ok k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" (Plan.engine_kind_to_string k))
    Plan.all_engine_kinds

let () =
  Alcotest.run "supervisor"
    [
      ( "timeouts",
        [
          Alcotest.test_case "timeout, retries, quarantine" `Quick
            test_timeout_then_quarantine;
          Alcotest.test_case "timeout then recover" `Quick test_timeout_then_recover;
          Alcotest.test_case "poll without deadline" `Quick test_poll_noop_without_deadline;
        ] );
      ( "retries",
        [
          Alcotest.test_case "deterministic backoff" `Quick
            test_retry_backoff_deterministic;
          Alcotest.test_case "per-obligation jitter streams" `Quick
            test_backoff_streams_differ_per_obligation;
          Alcotest.test_case "legacy crash shape" `Quick
            test_default_config_legacy_crash_shape;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "interp fallback discharges" `Quick
            test_fallback_discharges_crash;
          Alcotest.test_case "fallback crash quarantines" `Quick
            test_fallback_crash_still_quarantines;
          Alcotest.test_case "cacheable fallback, uncacheable quarantine" `Quick
            test_pool_caches_fallback_not_quarantine;
          Alcotest.test_case "plan wires code-proof fallbacks" `Quick
            test_plan_code_proofs_have_fallback;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "decisions deterministic" `Quick
            test_chaos_decisions_deterministic;
          Alcotest.test_case "crash recovers cleanly" `Quick
            test_chaos_crash_recovers_with_clean_verdict;
          Alcotest.test_case "hang degrades without timeout" `Quick
            test_chaos_hang_without_timeout_degrades;
          Alcotest.test_case "clamped by retry budget" `Quick
            test_chaos_clamped_by_retry_budget;
          Alcotest.test_case "pool verdicts clean + schedule-independent" `Quick
            test_chaos_pool_verdicts_clean_and_deterministic;
          Alcotest.test_case "composed verdicts survive chaos" `Quick
            test_chaos_composed_verdicts_match_monolithic;
        ] );
      ( "workers",
        [
          Alcotest.test_case "respawn completes everything" `Quick
            test_worker_respawn_completes_everything;
          Alcotest.test_case "post-compute kill exactly-once" `Quick
            test_worker_kill_after_compute_exactly_once;
          Alcotest.test_case "dead worker synthesized crash" `Quick
            test_dead_worker_synthesizes_crash_outcome;
          Alcotest.test_case "dead worker drains to survivors" `Quick
            test_dead_worker_drains_to_survivors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "torn pack evicted + recomputed" `Quick
            test_torn_pack_evicted_and_recomputed;
          Alcotest.test_case "truncated proof evicted + recomputed" `Quick
            test_truncated_proof_evicted_and_recomputed;
          Alcotest.test_case "write failures surfaced" `Quick
            test_cache_write_failures_surfaced;
        ] );
      ( "clock-and-kinds",
        [
          Alcotest.test_case "skewed clock bounded, monotone" `Quick
            test_skewed_clock_bounded_and_monotone;
          Alcotest.test_case "engine kind parsing" `Quick test_engine_kind_parsing;
        ] );
    ]

(* Tests of the parallel incremental verification engine: DAG
   validation and stratification edges, scheduling determinism (same
   reports at any job count), and the content-addressed proof cache
   (cold populates, warm replays, a fingerprint edit invalidates only
   the obligation and its dependents). *)

open Hyperenclave
module Report = Mirverif.Report
module Obligation = Engine.Obligation
module Dag = Engine.Dag
module Pool = Engine.Pool
module Cache = Engine.Cache
module Plan = Engine.Plan

let layout = Layout.default Geometry.tiny

let pass_obl ?(phase = "test") ?(deps = []) ?(fingerprint = "fp") id =
  Obligation.v ~id ~phase ~deps ~fingerprint (fun () ->
      Obligation.outcome [ Report.add_pass (Report.empty id) ])

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-engine-test-%d-%d" (Unix.getpid ()) !n)

(* ------------------------------------------------------------------ *)
(* DAG construction                                                    *)

let test_dag_rejects_duplicates () =
  match Dag.build [ pass_obl "a"; pass_obl "a" ] with
  | Ok _ -> Alcotest.fail "duplicate ids accepted"
  | Error _ -> ()

let test_dag_rejects_unknown_dep () =
  match Dag.build [ pass_obl ~deps:[ "ghost" ] "a" ] with
  | Ok _ -> Alcotest.fail "unknown dependency accepted"
  | Error _ -> ()

let test_dag_rejects_cycle () =
  match Dag.build [ pass_obl ~deps:[ "b" ] "a"; pass_obl ~deps:[ "a" ] "b" ] with
  | Ok _ -> Alcotest.fail "cycle accepted"
  | Error _ -> ()

let test_dag_order_and_reaches () =
  let dag =
    Dag.build_exn
      [ pass_obl "a"; pass_obl ~deps:[ "a" ] "b"; pass_obl ~deps:[ "b" ] "c" ]
  in
  Alcotest.(check (list string))
    "insertion order" [ "a"; "b"; "c" ]
    (List.map (fun (o : Obligation.t) -> o.id) (Dag.obligations dag));
  Alcotest.(check bool) "c reaches a" true (Dag.reaches dag ~src:"c" ~dst:"a");
  Alcotest.(check bool) "a does not reach c" false (Dag.reaches dag ~src:"a" ~dst:"c");
  Alcotest.(check (list string)) "dependents of a" [ "b" ] (Dag.dependents_of dag "a")

(* ------------------------------------------------------------------ *)
(* The real plan: shape and stratification                             *)

let plan =
  let mc =
    { Plan.mc_depth = 3; mc_por = true; mc_flush = true; mc_layout = layout }
  in
  Plan.build ~quick:true ~model_check:mc ~seed:2024 layout

let ids_with_prefix prefix =
  List.filter_map
    (fun (o : Obligation.t) ->
      if String.length o.id >= String.length prefix
         && String.sub o.id 0 (String.length prefix) = prefix
      then Some o.id
      else None)
    (Dag.obligations plan.Plan.dag)

let test_plan_has_all_phases () =
  List.iter
    (fun phase ->
      let n =
        List.length
          (List.filter
             (fun (o : Obligation.t) -> o.phase = phase)
             (Dag.obligations plan.Plan.dag))
      in
      if n = 0 then Alcotest.failf "phase %s has no obligations" phase)
    Plan.phases

let test_plan_one_obligation_per_function () =
  (* 49 paper-scope functions + the EREMOVE extension *)
  Alcotest.(check int) "code-proof obligations" 50
    (List.length (ids_with_prefix "code-proof/"))

(* Legacy shape (--no-overrides): layer-barrier edges, byte-for-byte
   the pre-composition plan. *)
let test_code_proofs_respect_stratification () =
  let by_layer = Plan.code_proof_obligations ~seed:2024 ~overrides:false layout in
  let legacy_dag = Dag.build_exn (List.concat_map snd by_layer) in
  match (by_layer, List.rev by_layer) with
  | (bottom, b_obls) :: _, (top, t_obls) :: _ when bottom <> top ->
      let b = (List.hd b_obls : Obligation.t).id in
      let t = (List.hd t_obls : Obligation.t).id in
      Alcotest.(check bool)
        (Printf.sprintf "%s reaches %s" t b)
        true
        (Dag.reaches legacy_dag ~src:t ~dst:b);
      Alcotest.(check bool)
        (Printf.sprintf "%s does not reach %s" b t)
        false
        (Dag.reaches legacy_dag ~src:b ~dst:t)
  | _ -> Alcotest.fail "expected at least two function-bearing layers"

(* Composed shape (the default): one dependency edge per direct
   spec-owned callee — no more, no less — and never a back edge. *)
let test_code_proofs_follow_call_graph () =
  let fn_of id =
    match String.split_on_char '/' id with
    | [ _; _; fn ] -> fn
    | _ -> Alcotest.failf "unexpected code-proof id %s" id
  in
  let id_of g =
    match Layers.layer_of_function layout g with
    | Some gl -> Printf.sprintf "code-proof/%s/%s" gl g
    | None -> Alcotest.failf "callee %s owns no layer" g
  in
  let obls =
    List.filter
      (fun (o : Obligation.t) -> o.phase = "code-proofs")
      (Dag.obligations plan.Plan.dag)
  in
  let some_deps = ref false in
  List.iter
    (fun (o : Obligation.t) ->
      let fn = fn_of o.id in
      let expected = List.map id_of (Check.Code_proof.callees layout fn) in
      Alcotest.(check (slist string compare))
        (Printf.sprintf "%s deps are its callee obligations" o.id)
        expected o.deps;
      List.iter
        (fun d ->
          some_deps := true;
          Alcotest.(check bool)
            (Printf.sprintf "%s reaches %s" o.id d)
            true
            (Dag.reaches plan.Plan.dag ~src:o.id ~dst:d);
          Alcotest.(check bool)
            (Printf.sprintf "%s does not reach %s" d o.id)
            false
            (Dag.reaches plan.Plan.dag ~src:d ~dst:o.id))
        expected)
    obls;
  Alcotest.(check bool) "call graph has edges" true !some_deps

let test_phase_dependencies () =
  let first = function
    | [] -> Alcotest.fail "missing obligations"
    | id :: _ -> id
  in
  let refine = first (ids_with_prefix "refine/") in
  let inv = first (ids_with_prefix "invariants/") in
  let ni = first (ids_with_prefix "noninterference/") in
  let tni = first (ids_with_prefix "trace-ni/") in
  let att = first (ids_with_prefix "attacks/") in
  (* refinement waits on the page-table layer's proofs, invariants on
     the top function-bearing layer's — the anchors the plan actually
     wires now that code-proof edges follow the call graph *)
  let code_pt = first (ids_with_prefix "code-proof/PtQuery/") in
  let code_top = first (ids_with_prefix "code-proof/Hypercalls/") in
  let check src dst =
    Alcotest.(check bool)
      (Printf.sprintf "%s reaches %s" src dst)
      true
      (Dag.reaches plan.Plan.dag ~src ~dst)
  in
  check refine code_pt;
  check inv code_top;
  check ni inv;
  check tni ni;
  check att inv

(* ------------------------------------------------------------------ *)
(* Scheduling determinism                                              *)

let render execs =
  String.concat "\n"
    (List.concat_map
       (fun (e : Pool.exec) ->
         e.obligation.Obligation.id
         :: List.map Report.to_string e.outcome.Obligation.reports)
       execs)

let test_jobs_invariant_reports () =
  let r1 = render (Pool.run ~jobs:1 plan.Plan.dag) in
  (* oversubscribe past the hardware clamp so the work-stealing domain
     path is exercised even on a one-core CI machine *)
  let r4 = render (Pool.run ~oversubscribe:true ~jobs:4 plan.Plan.dag) in
  Alcotest.(check string) "jobs=1 and jobs=4 produce identical reports" r1 r4

let test_stream_seed_deterministic () =
  Alcotest.(check int) "same tag, same stream"
    (Plan.stream_seed ~seed:7 "refine/shard-00")
    (Plan.stream_seed ~seed:7 "refine/shard-00");
  Alcotest.(check bool) "different tags diverge" true
    (Plan.stream_seed ~seed:7 "refine/shard-00"
    <> Plan.stream_seed ~seed:7 "refine/shard-01")

let test_pool_survives_crash () =
  let boom =
    Obligation.v ~id:"boom" ~phase:"test" ~fingerprint:"fp" (fun () ->
        failwith "deliberate")
  in
  let dag = Dag.build_exn [ boom; pass_obl ~deps:[ "boom" ] "after" ] in
  let execs = Pool.run ~oversubscribe:true ~jobs:2 dag in
  Alcotest.(check int) "both obligations complete" 2 (List.length execs);
  let crash = List.hd execs in
  Alcotest.(check int) "crash becomes one failure" 1
    (Obligation.failure_count crash.Pool.outcome);
  let after = List.nth execs 1 in
  Alcotest.(check int) "dependent still ran" 0
    (Obligation.failure_count after.Pool.outcome)

(* ------------------------------------------------------------------ *)
(* Proof cache                                                         *)

let counted counter ?(deps = []) ~fingerprint id =
  Obligation.v ~id ~phase:"test" ~deps ~fingerprint (fun () ->
      incr counter;
      Obligation.outcome [ Report.add_pass (Report.empty id) ])

let statuses execs = List.map (fun (e : Pool.exec) -> e.Pool.cache) execs

let test_cache_round_trip () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let counter = ref 0 in
  let build_dag fp_a =
    (* b's fingerprint contains a's, mirroring how code-proof
       fingerprints digest everything below them: editing a
       invalidates b, but never the independent c *)
    Dag.build_exn
      [
        counted counter ~fingerprint:fp_a "a";
        counted counter ~deps:[ "a" ] ~fingerprint:("b+" ^ fp_a) "b";
        counted counter ~fingerprint:"c-v1" "c";
      ]
  in
  let cold = Pool.run ~cache ~jobs:1 (build_dag "a-v1") in
  Alcotest.(check int) "cold run executes all" 3 !counter;
  Alcotest.(check bool) "cold run all misses" true
    (List.for_all (( = ) Pool.Miss) (statuses cold));
  Alcotest.(check int) "cold run stores all" 3 (Cache.entry_count cache);
  let warm = Pool.run ~cache ~jobs:1 (build_dag "a-v1") in
  Alcotest.(check int) "warm run executes nothing" 3 !counter;
  Alcotest.(check bool) "warm run all hits" true
    (List.for_all (( = ) Pool.Hit) (statuses warm));
  Alcotest.(check string) "warm replays the same reports" (render cold) (render warm);
  let edited = Pool.run ~cache ~jobs:1 (build_dag "a-v2") in
  Alcotest.(check int) "edit re-executes only a and b" 5 !counter;
  Alcotest.(check (list string))
    "a misses, b misses, c hits"
    [ "miss"; "miss"; "hit" ]
    (List.map Pool.cache_status_to_string (statuses edited))

let test_cache_warm_real_plan () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let cold = Pool.run ~cache ~oversubscribe:true ~jobs:2 plan.Plan.dag in
  let warm = Pool.run ~cache ~oversubscribe:true ~jobs:2 plan.Plan.dag in
  Alcotest.(check bool)
    "warm run re-executes zero obligations (code proofs included)" true
    (List.for_all (( = ) Pool.Hit) (statuses warm));
  Alcotest.(check string) "warm run reports identical" (render cold) (render warm)

let test_cache_corrupt_entry_is_a_miss () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let o = pass_obl ~fingerprint:"fp-corrupt" "x" in
  Cache.store cache o (o.Obligation.run ());
  let file = Filename.concat dir (Cache.key o ^ ".proof") in
  let oc = open_out_bin file in
  output_string oc "garbage";
  close_out oc;
  Alcotest.(check bool) "corrupt entry misses" true (Cache.find cache o = None);
  (* the unreadable file can never become valid (its key encodes the
     fingerprint), so the miss must also evict it *)
  Alcotest.(check bool) "corrupt entry evicted" false (Sys.file_exists file)

let test_cache_stale_magic_evicted () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let o = pass_obl ~fingerprint:"fp-stale" "y" in
  let file = Filename.concat dir (Cache.key o ^ ".proof") in
  (* a well-formed entry from a different OCaml toolchain: full-length
     magic header that doesn't match ours, then an arbitrary payload *)
  let oc = open_out_bin file in
  output_string oc ("MVEC1\n0.00.0-other-compiler-version\n" ^ String.make 64 'x');
  close_out oc;
  Alcotest.(check bool) "stale-magic entry misses" true (Cache.find cache o = None);
  Alcotest.(check bool) "stale-magic entry evicted" false (Sys.file_exists file);
  (* and a subsequent store repopulates it normally *)
  Cache.store cache o (o.Obligation.run ());
  Alcotest.(check bool) "restored entry hits" true (Cache.find cache o <> None)

let test_cache_empty_dir_rejected () =
  (match Cache.create ~dir:"" with
  | _ -> Alcotest.fail "empty cache dir accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message mentions the cache" true
        (String.length msg > 0));
  match Cache.create ~dir:"   " with
  | _ -> Alcotest.fail "blank cache dir accepted"
  | exception Invalid_argument _ -> ()

(* Regression: a crash outcome is this run's accident, not a property
   of the fingerprinted inputs — it must not be stored, or every warm
   run replays the failure even after the cause is gone. *)
let test_cache_skips_crash_outcomes () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let attempts = ref 0 in
  let flaky =
    Obligation.v ~id:"flaky" ~phase:"test" ~fingerprint:"fp-flaky" (fun () ->
        incr attempts;
        if !attempts = 1 then failwith "transient";
        Obligation.outcome [ Report.add_pass (Report.empty "flaky") ])
  in
  let first = Pool.run ~cache ~jobs:1 (Dag.build_exn [ flaky ]) in
  Alcotest.(check int) "first run crashes" 1
    (Obligation.failure_count (List.hd first).Pool.outcome);
  Alcotest.(check int) "crash not stored" 0 (Cache.entry_count cache);
  let second = Pool.run ~cache ~jobs:1 (Dag.build_exn [ flaky ]) in
  Alcotest.(check string) "second run re-executes" "miss"
    (Pool.cache_status_to_string (List.hd second).Pool.cache);
  Alcotest.(check int) "second run passes" 0
    (Obligation.failure_count (List.hd second).Pool.outcome);
  Alcotest.(check int) "success stored" 1 (Cache.entry_count cache);
  let third = Pool.run ~cache ~jobs:1 (Dag.build_exn [ flaky ]) in
  Alcotest.(check string) "third run hits" "hit"
    (Pool.cache_status_to_string (List.hd third).Pool.cache);
  Alcotest.(check int) "no further execution" 2 !attempts

(* The batched tier: a cold pool run flushes exactly one pack file; a
   fresh cache on the same directory (a new process, as far as the
   cache can tell) loads it back and replays; a corrupt pack is evicted
   wholesale and degrades to a miss. *)
let test_cache_pack_file_round_trip () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let counter = ref 0 in
  let dag () =
    Dag.build_exn
      [ counted counter ~fingerprint:"p1" "a"; counted counter ~fingerprint:"p2" "b" ]
  in
  ignore (Pool.run ~cache ~jobs:1 (dag ()));
  let packs () =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".pack")
  in
  Alcotest.(check int) "cold run writes one pack" 1 (List.length (packs ()));
  Alcotest.(check int) "no per-entry files" 0
    (List.length
       (List.filter
          (fun f -> Filename.check_suffix f ".proof")
          (Array.to_list (Sys.readdir dir))));
  let reloaded = Cache.create ~dir in
  Alcotest.(check int) "reloaded index sees both entries" 2 (Cache.entry_count reloaded);
  let warm = Pool.run ~cache:reloaded ~jobs:1 (dag ()) in
  Alcotest.(check bool) "fresh cache replays from the pack" true
    (List.for_all (( = ) Pool.Hit) (statuses warm));
  Alcotest.(check int) "warm run executes nothing" 2 !counter;
  (* corrupt the pack: the whole file is evicted and everything misses *)
  let pack = Filename.concat dir (List.hd (packs ())) in
  let oc = open_out_bin pack in
  output_string oc "garbage";
  close_out oc;
  let after = Cache.create ~dir in
  Alcotest.(check int) "corrupt pack loads nothing" 0 (Cache.entry_count after);
  Alcotest.(check bool) "corrupt pack evicted" false (Sys.file_exists pack);
  let redo = Pool.run ~cache:after ~jobs:1 (dag ()) in
  Alcotest.(check bool) "post-eviction run misses and re-executes" true
    (List.for_all (( = ) Pool.Miss) (statuses redo));
  Alcotest.(check int) "re-executed both" 4 !counter

(* a legacy per-entry file written by [store] is still served *)
let test_cache_legacy_proof_still_read () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let o = pass_obl ~fingerprint:"fp-legacy" "z" in
  Cache.store cache o (o.Obligation.run ());
  let reloaded = Cache.create ~dir:(fresh_dir ()) in
  ignore reloaded;
  Alcotest.(check bool) "legacy entry hits" true (Cache.find cache o <> None)

(* a legacy per-entry file and a pack entry under the same key: the
   pack tier must win with defined precedence, and the stale legacy
   loser must be evicted so it can never resurface *)
let test_cache_pack_wins_over_legacy () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let o = pass_obl ~fingerprint:"fp-tier" "t" in
  let tagged log = Obligation.outcome ~log [ Report.add_pass (Report.empty "t") ] in
  Cache.store cache o (tagged "legacy");
  Cache.stash cache o (tagged "packed");
  Cache.flush cache;
  let proof_files () =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".proof")
  in
  Alcotest.(check int) "both tiers populated" 1 (List.length (proof_files ()));
  (match Cache.find cache o with
  | Some out -> Alcotest.(check string) "pack tier wins" "packed" out.Obligation.log
  | None -> Alcotest.fail "entry vanished");
  Alcotest.(check int) "legacy loser evicted" 0 (List.length (proof_files ()));
  let reloaded = Cache.create ~dir in
  match Cache.find reloaded o with
  | Some out ->
      Alcotest.(check string) "reload still serves the pack" "packed"
        out.Obligation.log
  | None -> Alcotest.fail "pack entry lost after reload"

(* ------------------------------------------------------------------ *)
(* Override composition: proven gate and shrunk fingerprints           *)

let code_proof_fn_of id =
  match String.split_on_char '/' id with
  | [ _; _; fn ] -> fn
  | _ -> Alcotest.failf "unexpected code-proof id %s" id

let code_proof_id_of fn =
  match Layers.layer_of_function layout fn with
  | Some l -> Printf.sprintf "code-proof/%s/%s" l fn
  | None -> Alcotest.failf "%s owns no layer" fn

(* a caller whose same-layer callees exist — the deepest one available,
   so the gate actually matters *)
let caller_with_stubs () =
  let fns =
    List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names
  in
  match
    List.find_opt
      (fun fn -> Check.Code_proof.same_layer_callees layout fn <> [])
      (List.rev fns)
  with
  | Some fn -> (fn, Check.Code_proof.same_layer_callees layout fn)
  | None -> Alcotest.fail "no function with same-layer callees"

let report_text (out : Obligation.outcome) =
  String.concat "\n" (List.map Report.to_string out.Obligation.reports)

(* the proven gate, driven by hand the way the pool drives it: before
   the callees complete, the caller falls back to the monolithic
   battery; after run + on_outcome, the composed battery — and both
   render the identical, non-vacuous report *)
let test_override_gate_opens_after_callees () =
  let obls = List.concat_map snd (Plan.code_proof_obligations ~seed:2024 layout) in
  let find id = List.find (fun (o : Obligation.t) -> o.id = id) obls in
  let caller_fn, stub_fns = caller_with_stubs () in
  let caller = find (code_proof_id_of caller_fn) in
  let closed = caller.Obligation.run () in
  Alcotest.(check bool) "closed-gate outcome is not vacuous" true
    (List.exists
       (fun (r : Report.t) -> r.Report.total > 0)
       closed.Obligation.reports);
  List.iter
    (fun g ->
      let o = find (code_proof_id_of g) in
      let out = o.Obligation.run () in
      Alcotest.(check int) (g ^ " proves clean") 0 (Obligation.failure_count out);
      match o.Obligation.on_outcome with
      | Some f -> f out
      | None -> Alcotest.failf "%s has no on_outcome hook" g)
    stub_fns;
  let opened = caller.Obligation.run () in
  Alcotest.(check string)
    "composed run renders the identical report"
    (report_text closed) (report_text opened)

(* a quarantined callee publishes a crash-shaped (failing) outcome; the
   pool still fires the hook, but the caller's gate must stay closed —
   monolithic fallback, never a vacuous pass on an unproven spec *)
let test_override_gate_quarantined_callee () =
  let obls = List.concat_map snd (Plan.code_proof_obligations ~seed:2024 layout) in
  let find id = List.find (fun (o : Obligation.t) -> o.id = id) obls in
  let caller_fn, stub_fns = caller_with_stubs () in
  List.iter
    (fun g ->
      let o = find (code_proof_id_of g) in
      let crash =
        Obligation.outcome
          [ Report.add_failure (Report.empty g) ~case:g
              ~reason:"obligation raised: simulated quarantine" ]
      in
      match o.Obligation.on_outcome with
      | Some f -> f crash
      | None -> Alcotest.failf "%s has no on_outcome hook" g)
    stub_fns;
  let caller = find (code_proof_id_of caller_fn) in
  let out = caller.Obligation.run () in
  let mono =
    let legacy =
      List.concat_map snd
        (Plan.code_proof_obligations ~seed:2024 ~overrides:false layout)
    in
    (List.find
       (fun (o : Obligation.t) -> o.id = code_proof_id_of caller_fn)
       legacy)
      .Obligation.run ()
  in
  Alcotest.(check bool) "quarantine fallback is not vacuous" true
    (List.exists (fun (r : Report.t) -> r.Report.total > 0) out.Obligation.reports);
  Alcotest.(check string)
    "fallback equals the monolithic verdict"
    (report_text mono) (report_text out)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* invalidation scope: a function's fingerprint mentions its own body
   digest and its direct callees' — and no other function's.  Editing
   one mid-stack function therefore invalidates exactly itself and its
   direct callers; everything two or more steps up keeps running the
   unchanged callee *specs* and stays warm *)
let test_override_fingerprints_shrink () =
  let obls = List.concat_map snd (Plan.code_proof_obligations ~seed:2024 layout) in
  let program = (Layers.compiled layout).Rustlite.Pipeline.program in
  let digest_of fn =
    match Mir.Syntax.find_body program fn with
    | Some b -> Digest.to_hex (Digest.string (Mir.Pp.body_to_string b))
    | None -> "missing"
  in
  let fns =
    List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names
  in
  List.iter
    (fun (o : Obligation.t) ->
      let fn = code_proof_fn_of o.id in
      let fp = o.Obligation.fingerprint in
      Alcotest.(check bool)
        (fn ^ ": fingerprint digests its own body")
        true
        (contains fp ("own=" ^ digest_of fn));
      let callees = Check.Code_proof.callees layout fn in
      List.iter
        (fun g ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: fingerprint digests callee %s's spec source" fn g)
            true
            (contains fp (g ^ "=" ^ digest_of g)))
        callees;
      List.iter
        (fun g ->
          if g <> fn && not (List.mem g callees) then
            Alcotest.(check bool)
              (Printf.sprintf "%s: fingerprint independent of %s" fn g)
              false
              (contains fp (digest_of g)))
        fns)
    obls

(* a fact-free refinement (frames = []) certifies trivially, installs,
   and leaves the composed verdicts untouched: the refined contract is
   the oracle spec plus an always-true postcondition *)
let test_refine_contract_certified () =
  let ctx = Check.Code_proof.ctx ~seed:2024 layout in
  let caller_fn, stub_fns = caller_with_stubs () in
  let callee = List.hd stub_fns in
  let composed_report fn =
    match Check.Code_proof.run_function_composed ctx fn with
    | Some (_, r) -> Report.to_string r
    | None -> Alcotest.failf "%s owns no spec" fn
  in
  let baseline = composed_report caller_fn in
  let spec =
    match Mem_spec.find layout callee with
    | Some s -> s
    | None -> Alcotest.failf "no spec for %s" callee
  in
  let refined =
    Check.Spec.ensures ~label:"noop" (fun _ _ _ -> true) (Check.Spec.of_spec spec)
  in
  (match Check.Code_proof.refine_contract ctx callee refined with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fact-free refinement refused: %s" e);
  Alcotest.(check bool) "no refusal recorded" true
    (Check.Code_proof.refusal ctx callee = None);
  Alcotest.(check string) "composed verdicts unchanged" baseline
    (composed_report caller_fn)

(* the planted footprint-violating override: a [points_to] fact on
   [self_obj], the very path the method callers' batteries retain.
   Certification must refuse it, and the caller's composed run must
   execute the callee's body — byte-identical to the monolithic
   verdict, never a stub trusted on an uncertified frame *)
let test_refine_contract_refused () =
  let ctx = Check.Code_proof.ctx ~seed:2024 layout in
  let callee = "Enclave::in_elrange" in
  let caller = "Enclave::add_page" in
  (* the refusal is real on the seed stack: the method callers retain
     self_obj, so the frame below cannot be disjoint from it *)
  Alcotest.(check bool) "method callers retain self_obj" true
    (List.exists
       (fun p -> Mir.Path.equal p (Mir.Path.global "self_obj"))
       (Check.Code_proof.retained_paths ctx callee));
  let mono =
    match Check.Code_proof.run_function ctx caller with
    | Some (_, r) -> Report.to_string r
    | None -> Alcotest.failf "%s owns no spec" caller
  in
  let spec =
    match Mem_spec.find layout callee with
    | Some s -> s
    | None -> Alcotest.failf "no spec for %s" callee
  in
  let refined =
    Check.Spec.points_to ~label:"self-invariant" (Mir.Path.global "self_obj")
      (fun _ -> true)
      (Check.Spec.of_spec spec)
  in
  (match Check.Code_proof.refine_contract ctx callee refined with
  | Ok () -> Alcotest.fail "uncertified points_to override was installed"
  | Error _ -> ());
  (match Check.Code_proof.refusal ctx callee with
  | Some _ -> ()
  | None -> Alcotest.fail "refusal not recorded");
  let composed_r =
    match Check.Code_proof.run_function_composed ctx caller with
    | Some (_, r) -> r
    | None -> Alcotest.failf "%s owns no spec" caller
  in
  Alcotest.(check string) "refused override falls back to the body" mono
    (Report.to_string composed_r);
  Alcotest.(check bool) "composed run is not vacuous" true
    (composed_r.Report.total > 0)

(* certify_frames end-to-end on the real stack: an in-frame write-free
   callee certifies against a frame disjoint from everything retained *)
let test_certify_frames_disjoint () =
  let ctx = Check.Code_proof.ctx ~seed:2024 layout in
  let callee = "Enclave::in_elrange" in
  match
    Check.Code_proof.certify_frames ctx callee
      ~frames:[ Mir.Path.global "nonexistent_scratch" ]
  with
  | Ok () -> ()
  | Error e ->
      (* acceptable only if the refusal is about footprint exactness,
         never about the (provably disjoint) frame *)
      Alcotest.(check bool) ("unexpected refusal: " ^ e) true
        (contains e "inexact")

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

(* the pool's timestamps all come from Engine.Clock, so a mocked source
   makes the schedule metadata fully deterministic *)
let test_clock_mockable () =
  let t = ref 0.0 in
  let fake () =
    t := !t +. 1.0;
    !t
  in
  let execs =
    Engine.Clock.with_source fake (fun () ->
        Pool.run ~jobs:1 (Dag.build_exn [ pass_obl "a"; pass_obl ~deps:[ "a" ] "b" ]))
  in
  (* fake clock ticks: t0=1, then started/finished pairs 2,3 and 4,5 *)
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "deterministic timestamps"
    [ (1.0, 2.0); (3.0, 4.0) ]
    (List.map (fun (e : Pool.exec) -> (e.started, e.finished)) execs);
  Alcotest.(check (float 0.0)) "wall_of is the last finish" 4.0 (Pool.wall_of execs);
  (* and the real source is restored afterwards *)
  Alcotest.(check bool) "real clock restored" true (Engine.Clock.now () > 1e6)

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)

let test_jsonx () =
  let open Engine.Jsonx in
  Alcotest.(check string)
    "escaping" "{\"a\\\"b\": [1, true, \"x\"]}"
    (to_string (Obj [ ("a\"b", List [ Int 1; Bool true; Str "x" ]) ]));
  let ml = to_multiline_string (Obj [ ("k", Int 1); ("l", List [ Int 2; Int 3 ]) ]) in
  Alcotest.(check bool) "one scalar per line" true
    (List.exists (( = ) "  \"k\": 1,") (String.split_on_char '\n' ml))

let () =
  Alcotest.run "engine"
    [
      ( "dag",
        [
          Alcotest.test_case "duplicates" `Quick test_dag_rejects_duplicates;
          Alcotest.test_case "unknown dep" `Quick test_dag_rejects_unknown_dep;
          Alcotest.test_case "cycle" `Quick test_dag_rejects_cycle;
          Alcotest.test_case "order and reaches" `Quick test_dag_order_and_reaches;
        ] );
      ( "plan",
        [
          Alcotest.test_case "all phases present" `Quick test_plan_has_all_phases;
          Alcotest.test_case "one obligation per function" `Quick
            test_plan_one_obligation_per_function;
          Alcotest.test_case "stratification edges" `Quick
            test_code_proofs_respect_stratification;
          Alcotest.test_case "call-graph edges" `Quick
            test_code_proofs_follow_call_graph;
          Alcotest.test_case "phase dependencies" `Quick test_phase_dependencies;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs-invariant reports" `Quick test_jobs_invariant_reports;
          Alcotest.test_case "stream seeds" `Quick test_stream_seed_deterministic;
          Alcotest.test_case "crash isolation" `Quick test_pool_survives_crash;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip + invalidation" `Quick test_cache_round_trip;
          Alcotest.test_case "warm real plan" `Quick test_cache_warm_real_plan;
          Alcotest.test_case "corrupt entry" `Quick test_cache_corrupt_entry_is_a_miss;
          Alcotest.test_case "stale magic evicted" `Quick test_cache_stale_magic_evicted;
          Alcotest.test_case "empty dir rejected" `Quick test_cache_empty_dir_rejected;
          Alcotest.test_case "crash outcomes not cached" `Quick
            test_cache_skips_crash_outcomes;
          Alcotest.test_case "pack file round trip" `Quick
            test_cache_pack_file_round_trip;
          Alcotest.test_case "legacy proof files read" `Quick
            test_cache_legacy_proof_still_read;
          Alcotest.test_case "pack tier wins over legacy" `Quick
            test_cache_pack_wins_over_legacy;
        ] );
      ( "overrides",
        [
          Alcotest.test_case "gate opens after callees" `Quick
            test_override_gate_opens_after_callees;
          Alcotest.test_case "quarantined callee falls back" `Quick
            test_override_gate_quarantined_callee;
          Alcotest.test_case "refinement certified" `Quick
            test_refine_contract_certified;
          Alcotest.test_case "refinement refused" `Quick
            test_refine_contract_refused;
          Alcotest.test_case "certify disjoint frame" `Quick
            test_certify_frames_disjoint;
          Alcotest.test_case "fingerprints shrink to direct callees" `Quick
            test_override_fingerprints_shrink;
        ] );
      ("clock", [ Alcotest.test_case "mockable source" `Quick test_clock_mockable ]);
      ("jsonx", [ Alcotest.test_case "emission" `Quick test_jsonx ]);
    ]

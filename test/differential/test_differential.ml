(* Differential suite: the closure-compiled executor (Mir.Compile) must
   be observationally identical to the reference interpreter
   (Mir.Interp) — same outcome down to every field (abstract state,
   object memory, return value, step count) and the same error
   classification with identical messages.  The equivalence is pinned on

   - the whole seed stack: every generated code-proof case of every
     function (valid, boundary, malformed-table, and corrupted-state
     inputs alike) runs under both executors;
   - the chaos fixtures: exhaustive single-primitive-failure injection
     (a [map_prims]-wrapped environment compiles against the same body
     memo) and an exhaustive low-fuel ladder, which pins the fuel/step
     accounting one step at a time. *)

open Hyperenclave
module Interp = Mir.Interp
module Compile = Mir.Compile
module Value = Mir.Value
module Mem = Mir.Mem

let layout = Layout.default Geometry.tiny

let mem_equal m1 m2 =
  Mem.cardinal m1 = Mem.cardinal m2 && Mem.equal_on (Mem.bases m1) m1 m2

(* structural comparison of the two executors' results; fails loudly
   with the diverging field *)
let assert_same ~case (ri : (Absdata.t Interp.outcome, Interp.error) result)
    (rc : (Absdata.t Interp.outcome, Interp.error) result) =
  match (ri, rc) with
  | Ok a, Ok b ->
      if not (Absdata.equal a.Interp.abs b.Interp.abs) then
        Alcotest.failf "%s: abstract states differ" case;
      if not (Value.equal a.Interp.ret b.Interp.ret) then
        Alcotest.failf "%s: return values differ: %s vs %s" case
          (Value.to_string a.Interp.ret) (Value.to_string b.Interp.ret);
      if a.Interp.steps <> b.Interp.steps then
        Alcotest.failf "%s: step counts differ: %d vs %d" case a.Interp.steps
          b.Interp.steps;
      if not (mem_equal a.Interp.mem b.Interp.mem) then
        Alcotest.failf "%s: final memories differ" case
  | Error e1, Error e2 ->
      if e1 <> e2 then
        Alcotest.failf "%s: errors differ: %s vs %s" case
          (Interp.error_to_string e1) (Interp.error_to_string e2)
  | Ok _, Error e ->
      Alcotest.failf "%s: interpreter succeeded, compiled failed: %s" case
        (Interp.error_to_string e)
  | Error e, Ok _ ->
      Alcotest.failf "%s: interpreter failed (%s), compiled succeeded" case
        (Interp.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Whole seed stack: every generated code-proof case, both executors   *)

let test_seed_stack_equivalence () =
  let ctx = Check.Code_proof.ctx layout in
  let fns =
    List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names
  in
  let compared = ref 0 in
  List.iter
    (fun fn ->
      match Check.Code_proof.check_function ctx fn with
      | None -> ()
      | Some (lname, c) ->
          let env = Layers.env_for layout ~layer:lname in
          let cenv = Layers.compiled_for layout ~layer:lname in
          List.iter
            (fun (cs : Absdata.t Mirverif.Refine.case) ->
              let fuel = c.Mirverif.Refine.fuel in
              let ri = Interp.call ~fuel env ~abs:cs.abs ~mem:cs.mem fn cs.args in
              let rc = Compile.call ~fuel cenv ~abs:cs.abs ~mem:cs.mem fn cs.args in
              incr compared;
              assert_same ~case:(Printf.sprintf "%s [%s]" fn cs.label) ri rc)
            c.Mirverif.Refine.cases)
    fns;
  (* the suite must actually have covered the stack *)
  Alcotest.(check bool)
    (Printf.sprintf "compared the full case battery (%d cases)" !compared)
    true
    (!compared > 10_000)

(* a function name that resolves to nothing must classify identically *)
let test_unknown_function_equivalence () =
  let env = Layers.env_for layout ~layer:"Hypercalls" in
  let cenv = Layers.compiled_for layout ~layer:"Hypercalls" in
  let abs = Absdata.create layout in
  assert_same ~case:"no such function"
    (Interp.call env ~abs ~mem:Mem.empty "no_such_fn" [])
    (Compile.call cenv ~abs ~mem:Mem.empty "no_such_fn" []);
  assert_same ~case:"arity mismatch"
    (Interp.call env ~abs ~mem:Mem.empty "hc_create" [])
    (Compile.call cenv ~abs ~mem:Mem.empty "hc_create" [])

(* ------------------------------------------------------------------ *)
(* Chaos fixtures                                                      *)

(* every single-primitive-failure injection of the chaos battery,
   replayed under both executors (fresh perturbed environments per
   executor: the wrapper's call counter is stateful) *)
let test_prim_fault_equivalence () =
  List.iter
    (fun (fn, abs, args, _fuel_hi) ->
      let layer =
        match Layers.layer_of_function layout fn with
        | Some l -> l
        | None -> "Hypercalls"
      in
      let env = Layers.env_for layout ~layer in
      let counting, count = Fault.Mir_chaos.perturbed_env ~fail_at:(-1) env in
      (match Interp.call counting ~abs ~mem:Mem.empty fn args with
      | Ok _ | Error _ -> ());
      let prim_calls = !count in
      for i = 0 to prim_calls - 1 do
        let ienv, _ = Fault.Mir_chaos.perturbed_env ~fail_at:i env in
        let cenv, _ = Fault.Mir_chaos.perturbed_env ~fail_at:i env in
        assert_same
          ~case:(Printf.sprintf "%s prim-fault@%d" fn i)
          (Interp.call ienv ~abs ~mem:Mem.empty fn args)
          (Compile.call
             (Compile.compile ~cache:Layers.compile_memo cenv)
             ~abs ~mem:Mem.empty fn args)
      done)
    (Fault.Mir_chaos.targets layout)

(* exhaustive low-fuel ladder: at every budget from 0 to a little past
   the full run, both executors must starve (or finish) identically —
   this pins the per-statement and per-terminator fuel accounting *)
let test_fuel_ladder_equivalence () =
  List.iter
    (fun (fn, abs, args, fuel_hi) ->
      let layer =
        match Layers.layer_of_function layout fn with
        | Some l -> l
        | None -> "Hypercalls"
      in
      let env = Layers.env_for layout ~layer in
      let cenv = Layers.compiled_for layout ~layer in
      let steps =
        match Interp.call env ~abs ~mem:Mem.empty fn args with
        | Ok o -> o.Interp.steps
        | Error _ -> fuel_hi
      in
      for fuel = 0 to min (steps + 2) 400 do
        assert_same
          ~case:(Printf.sprintf "%s fuel=%d" fn fuel)
          (Interp.call ~fuel env ~abs ~mem:Mem.empty fn args)
          (Compile.call ~fuel cenv ~abs ~mem:Mem.empty fn args)
      done)
    (Fault.Mir_chaos.targets layout)

(* ------------------------------------------------------------------ *)
(* Override composition vs monolithic                                  *)

(* Verdict invariance of compositional verification: for every one of
   the 49+1 functions, the full code-proof battery with same-layer
   callees stubbed by their contracts ({!Check.Code_proof.
   run_function_composed}) must render the identical report —
   pass/skip/fail per case, reasons included — as the monolithic run
   that executes callee bodies.  This is the equivalence that lets the
   engine pick either executor (and cache either's outcome) without it
   ever being visible in verdicts or stdout. *)
let test_override_composition_verdicts () =
  let ctx = Check.Code_proof.ctx layout in
  let fns =
    List.concat_map (Layers.functions_of_layer layout) Mem_spec.layer_names
  in
  let stubbed = ref 0 in
  List.iter
    (fun fn ->
      match
        (Check.Code_proof.run_function ctx fn,
         Check.Code_proof.run_function_composed ctx fn)
      with
      | None, None -> ()
      | Some (l1, mono), Some (l2, composed) ->
          Alcotest.(check string) (fn ^ ": same owning layer") l1 l2;
          if Check.Code_proof.same_layer_callees layout fn <> [] then
            incr stubbed;
          Alcotest.(check string)
            (Printf.sprintf "%s: composed report equals monolithic" fn)
            (Mirverif.Report.to_string mono)
            (Mirverif.Report.to_string composed)
      | _ ->
          Alcotest.failf "%s: one mode produced a report, the other did not" fn)
    fns;
  (* the equivalence must have been exercised, not vacuous *)
  Alcotest.(check bool)
    (Printf.sprintf "functions with same-layer stubs covered (%d)" !stubbed)
    true (!stubbed > 0)

let () =
  Alcotest.run "differential"
    [
      ( "compiled-vs-interpreted",
        [
          Alcotest.test_case "whole seed stack" `Quick test_seed_stack_equivalence;
          Alcotest.test_case "unknown function + arity" `Quick
            test_unknown_function_equivalence;
          Alcotest.test_case "chaos prim faults" `Quick test_prim_fault_equivalence;
          Alcotest.test_case "fuel ladder" `Quick test_fuel_ladder_equivalence;
        ] );
      ( "override-vs-monolithic",
        [
          Alcotest.test_case "all functions, full battery" `Quick
            test_override_composition_verdicts;
        ] );
    ]

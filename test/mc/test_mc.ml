(* Tests for the bounded model checker: canonical state keys
   (idempotence, agreement with [State.equal], commutation with
   [step]), the static commutation table against the dynamic
   semantics, POR soundness (same reachable states and the same
   violation set with and without reduction), rediscovery of the
   planted stale-TLB bug with its 4-event ddmin witness, determinism
   of the serialized outcome, and shard-merge equivalence (the
   engine's root + sharded-frontier decomposition reproduces the
   monolithic exploration exactly). *)

open Hyperenclave
open Security
module Chaos = Fault.Chaos
module Explore = Mc.Explore
module State_key = Mc.State_key

let layout = Layout.default Geometry.tiny

let reachable =
  lazy (Check.Gen.states ~n:25 ~seed:2024 ~steps:18 layout)

(* ------------------------------------------------------------------ *)
(* Canonicalization laws                                               *)

let test_canonicalize_idempotent () =
  List.iter
    (fun (label, st) ->
      let c = State_key.canonicalize st in
      Alcotest.(check string)
        (label ^ ": canonicalize is idempotent")
        (State_key.to_string st)
        (State_key.to_string (State_key.canonicalize c));
      Alcotest.(check string)
        (label ^ ": canonicalization preserves the key")
        (State_key.digest st) (State_key.digest c))
    (Lazy.force reachable)

let test_equal_states_hash_equal () =
  (* [State.equal] states must collide; canonically distinct traces
     that reach equal states are produced by re-running the same
     trace, and by the canonicalizer itself. *)
  List.iter
    (fun (label, st) ->
      let st' = Check.Gen.trace ~seed:0 ~steps:0 layout in
      ignore st';
      let copy = State_key.canonicalize st in
      if State.equal st copy then
        Alcotest.(check string)
          (label ^ ": equal states hash equal")
          (State_key.digest st) (State_key.digest copy))
    (Lazy.force reachable);
  let a = Check.Gen.trace ~seed:7 ~steps:12 layout in
  let b = Check.Gen.trace ~seed:7 ~steps:12 layout in
  Alcotest.(check bool) "same trace reaches equal states" true (State.equal a b);
  Alcotest.(check string) "and they hash equal" (State_key.digest a)
    (State_key.digest b)

let test_step_commutes_with_canonicalize () =
  (* canonicalize is semantics-preserving: stepping the canonicalized
     state reaches the same key as canonicalizing the stepped state *)
  let actions = Check.Gen.action_battery layout in
  List.iter
    (fun (label, st) ->
      let c = State_key.canonicalize st in
      List.iter
        (fun a ->
          match (Transition.step st a, Transition.step c a) with
          | Ok st', Ok c' ->
              Alcotest.(check string)
                (Printf.sprintf "%s: key after %s" label
                   (Transition.action_to_string a))
                (State_key.digest st') (State_key.digest c')
          | Error e1, Error e2 ->
              Alcotest.(check string)
                (Printf.sprintf "%s: error after %s" label
                   (Transition.action_to_string a))
                e1 e2
          | Ok _, Error e | Error e, Ok _ ->
              Alcotest.failf "%s: enabledness diverged on %s: %s" label
                (Transition.action_to_string a) e)
        actions)
    (Lazy.force reachable)

(* ------------------------------------------------------------------ *)
(* The commutation table against the dynamic semantics                 *)

let exec ~flush st = function
  | Chaos.Act a -> Transition.step ~flush st a
  | Chaos.Inject f -> Fault.Inject.apply f st

let test_commutation_table_sound () =
  (* for every pair the static table marks commuting, both orders
     from reachable states converge to the same canonical state, and
     neither event disables the other — under the correct monitor and
     the buggy one (POR runs under [--buggy-tlb] too) *)
  let pairs = Mc.Footprint.commuting_pairs (Mc.Universe.events layout) in
  Alcotest.(check bool) "the table marks some pairs commuting" true
    (List.length pairs > 0);
  let checked = ref 0 in
  List.iter
    (fun flush ->
      List.iter
        (fun (label, st) ->
          List.iter
            (fun (e1, e2) ->
              match (exec ~flush st e1, exec ~flush st e2) with
              | Ok s1, Ok s2 -> (
                  incr checked;
                  match (exec ~flush s1 e2, exec ~flush s2 e1) with
                  | Ok s12, Ok s21 ->
                      Alcotest.(check string)
                        (Printf.sprintf "%s: %s / %s converge (flush=%b)" label
                           (Chaos.event_to_string e1) (Chaos.event_to_string e2)
                           flush)
                        (State_key.digest s12) (State_key.digest s21)
                  | _ ->
                      Alcotest.failf
                        "%s: commuting events disabled each other: %s / %s"
                        label (Chaos.event_to_string e1)
                        (Chaos.event_to_string e2))
              | _ -> ())
            pairs)
        (Lazy.force reachable))
    [ true; false ];
  Alcotest.(check bool) "exercised non-vacuously" true (!checked > 100)

(* ------------------------------------------------------------------ *)
(* POR soundness on whole explorations                                 *)

let violation_ids (o : Explore.outcome) =
  List.sort compare
    (List.map (fun v -> (v.Explore.v_kind, v.Explore.v_state)) o.violations)

let test_por_preserves_outcome () =
  List.iter
    (fun flush ->
      let por = Explore.run (Explore.config ~depth:4 ~flush layout) in
      let nopor =
        Explore.run (Explore.config ~depth:4 ~flush ~por:false layout)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "same reachable states (flush=%b)" flush)
        nopor.Explore.keys por.Explore.keys;
      Alcotest.(check bool)
        (Printf.sprintf "reduction prunes something (flush=%b)" flush)
        true
        (por.Explore.stats.Explore.pruned > 0);
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "same violation set (flush=%b)" flush)
        (violation_ids nopor) (violation_ids por))
    [ true; false ]

let test_por_prunes_interleavings () =
  let il_por = Explore.interleavings (Explore.config ~depth:4 ~checks:false layout) in
  let il_full =
    Explore.interleavings
      (Explore.config ~depth:4 ~checks:false ~por:false layout)
  in
  let factor = 1. -. (float_of_int il_por /. float_of_int il_full) in
  if factor < 0.30 then
    Alcotest.failf "POR pruned only %.1f%% of interleavings (%d of %d)"
      (100. *. factor) (il_full - il_por) il_full

(* ------------------------------------------------------------------ *)
(* Clean seed and the planted bug                                      *)

let test_clean_no_violations () =
  let o = Explore.run (Explore.config ~depth:4 layout) in
  (match o.Explore.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "clean monitor violated %s at %s: %s" v.Explore.v_kind
        v.Explore.v_state v.Explore.v_detail);
  Alcotest.(check bool) "explored a real state space" true
    (o.Explore.stats.Explore.explored > 100)

let test_buggy_rediscovers_stale_tlb () =
  let o = Explore.run (Explore.config ~depth:4 ~flush:false layout) in
  let kinds =
    List.sort_uniq compare (List.map (fun v -> v.Explore.v_kind) o.Explore.violations)
  in
  Alcotest.(check (list string))
    "the only violated property is TLB consistency" [ "tlb-consistency" ] kinds;
  match o.Explore.violations with
  | [] -> Alcotest.fail "buggy monitor: no violation found"
  | v :: _ ->
      Alcotest.(check int) "ddmin shrinks to the 4-event witness" 4
        (List.length v.Explore.v_witness);
      Alcotest.(check (list string))
        "and it is the known one"
        (List.map Chaos.event_to_string (Mc.Universe.stale_tlb_witness layout))
        (List.map Chaos.event_to_string v.Explore.v_witness);
      Alcotest.(check bool) "the shrinker did real work" true
        (v.Explore.v_evals > 0)

(* ------------------------------------------------------------------ *)
(* Determinism and shard-merge equivalence                             *)

let test_outcome_deterministic () =
  let log () = Explore.to_log (Explore.run (Explore.config ~depth:4 ~flush:false layout)) in
  Alcotest.(check string) "two runs serialize identically" (log ()) (log ())

let shard_index ~nshards key =
  (* first byte of the hex digest, as the engine shards the frontier *)
  int_of_string ("0x" ^ String.sub key 0 2) mod nshards

let test_shard_merge_equivalence () =
  List.iter
    (fun flush ->
      let mono = Explore.run (Explore.config ~depth:4 ~flush ~por:false layout) in
      (* the engine's decomposition: a root exploration to depth 2
         (reduction off, so the frontier is exact), then independent
         shards of the frontier explored to the full depth *)
      let cfg = Explore.config ~depth:2 ~flush ~por:false layout in
      let root = Explore.run cfg in
      let nshards = 4 in
      let parts =
        root
        :: List.filter_map
             (fun s ->
               let roots =
                 List.filter
                   (fun it -> shard_index ~nshards (Explore.item_key it) = s)
                   root.Explore.frontier
               in
               if roots = [] then None
               else
                 Some
                   (Explore.run_from
                      (Explore.config ~depth:4 ~flush layout)
                      ~roots))
             (List.init nshards Fun.id)
      in
      let rolled =
        Explore.rollup
          (List.map (fun o -> Explore.parse_log (Explore.to_log o)) parts)
      in
      let union =
        List.sort_uniq String.compare
          (List.concat_map (fun o -> o.Explore.keys) parts)
      in
      Alcotest.(check int)
        (Printf.sprintf "sharded union covers the state space (flush=%b)" flush)
        (List.length mono.Explore.keys)
        (List.length union);
      Alcotest.(check (list string))
        (Printf.sprintf "exactly (flush=%b)" flush)
        mono.Explore.keys union;
      Alcotest.(check int)
        (Printf.sprintf "rollup agrees (flush=%b)" flush)
        (List.length mono.Explore.keys)
        rolled.Explore.r_states;
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "same violations (flush=%b)" flush)
        (violation_ids mono)
        (List.sort compare
           (List.map
              (fun v -> (v.Explore.p_kind, v.Explore.p_state))
              rolled.Explore.r_violations)))
    [ true; false ]

let test_log_roundtrip () =
  let o = Explore.run (Explore.config ~depth:4 ~flush:false layout) in
  let p = Explore.parse_log (Explore.to_log o) in
  Alcotest.(check int) "stats survive" o.Explore.stats.Explore.explored
    p.Explore.p_stats.Explore.explored;
  Alcotest.(check (list string)) "keys survive" o.Explore.keys p.Explore.p_keys;
  Alcotest.(check int) "violations survive"
    (List.length o.Explore.violations)
    (List.length p.Explore.p_violations);
  List.iter2
    (fun v pv ->
      Alcotest.(check string) "kind" v.Explore.v_kind pv.Explore.p_kind;
      Alcotest.(check string) "state" v.Explore.v_state pv.Explore.p_state;
      Alcotest.(check (list string))
        "witness"
        (List.map Chaos.event_to_string v.Explore.v_witness)
        pv.Explore.p_witness)
    o.Explore.violations p.Explore.p_violations;
  let r = Explore.rollup [ p ] in
  match Explore.min_witness r with
  | Some 4 -> ()
  | Some n -> Alcotest.failf "min witness %d, wanted 4" n
  | None -> Alcotest.fail "no witness in rollup"

let () =
  Alcotest.run "mc"
    [
      ( "state-key",
        [
          Alcotest.test_case "canonicalize idempotent" `Quick
            test_canonicalize_idempotent;
          Alcotest.test_case "equal states hash equal" `Quick
            test_equal_states_hash_equal;
          Alcotest.test_case "step commutes with canonicalize" `Quick
            test_step_commutes_with_canonicalize;
        ] );
      ( "por",
        [
          Alcotest.test_case "commutation table sound" `Slow
            test_commutation_table_sound;
          Alcotest.test_case "preserves states and violations" `Slow
            test_por_preserves_outcome;
          Alcotest.test_case "prunes >= 30% of interleavings" `Quick
            test_por_prunes_interleavings;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "clean seed has no violations" `Slow
            test_clean_no_violations;
          Alcotest.test_case "buggy monitor rediscovered, 4-event witness"
            `Slow test_buggy_rediscovers_stale_tlb;
          Alcotest.test_case "outcome deterministic" `Slow
            test_outcome_deterministic;
          Alcotest.test_case "shard merge equivalent" `Slow
            test_shard_merge_equivalence;
          Alcotest.test_case "log roundtrip" `Slow test_log_roundtrip;
        ] );
    ]

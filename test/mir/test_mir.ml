(* Unit and property tests for the MIRlight semantics. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let check_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg -> msg

(* ------------------------------------------------------------------ *)
(* Word                                                                *)

let test_word_norm () =
  Alcotest.(check int64) "u8 wrap" 0x34L (Mir.Word.of_int Mir.Word.W8 0x1234);
  Alcotest.(check int64) "u16 wrap" 0x1234L (Mir.Word.of_int Mir.Word.W16 0x1234);
  Alcotest.(check int64) "add wraps" 0L
    (Mir.Word.add Mir.Word.W8 (Mir.Word.of_int Mir.Word.W8 255) 1L)

let test_word_bitfields () =
  let w = 0xDEAD_BEEF_1234_5678L in
  Alcotest.(check int64) "extract low nibble" 0x8L (Mir.Word.extract w ~lo:0 ~len:4);
  Alcotest.(check int64) "extract mid" 0xBEL (Mir.Word.extract w ~lo:40 ~len:8);
  let w' = Mir.Word.insert w ~lo:0 ~len:8 0xAAL in
  Alcotest.(check int64) "insert low byte" 0xDEAD_BEEF_1234_56AAL w';
  Alcotest.(check bool) "bit 3 set" true (Mir.Word.bit 0x8L 3);
  Alcotest.(check int64) "set bit" 0x9L (Mir.Word.set_bit 0x8L 0 true);
  Alcotest.(check int64) "clear bit" 0x8L (Mir.Word.set_bit 0x9L 0 false)

let test_word_unsigned_div () =
  (* 2^63 has the sign bit set; unsigned division must treat it as large *)
  let big = Int64.min_int in
  Alcotest.(check (option int64))
    "unsigned div" (Some 0x4000_0000_0000_0000L)
    (Mir.Word.div Mir.Word.W64 big 2L);
  Alcotest.(check (option int64)) "div by zero" None (Mir.Word.div Mir.Word.W64 1L 0L);
  Alcotest.(check bool) "unsigned lt" true (Mir.Word.lt_u 1L big)

(* Sign-boundary regression for the address path: addresses at and
   above 0x8000_0000_0000_0000 set the Int64 sign bit, so any signed
   compare or division slip orders the upper half of the address space
   below the lower half (or yields a negative page count). *)
let test_word_sign_boundary () =
  let half = 0x8000_0000_0000_0000L in
  let below = 0x7FFF_FFFF_FFFF_FFFFL in
  let top = 0xFFFF_FFFF_FFFF_FFFFL in
  Alcotest.(check bool) "last low address below first high address" true
    (Mir.Word.lt_u below half);
  Alcotest.(check bool) "no wraparound ordering" false (Mir.Word.lt_u half below);
  Alcotest.(check bool) "le_u reflexive at the boundary" true (Mir.Word.le_u half half);
  Alcotest.(check bool) "top address is the maximum" true (Mir.Word.le_u half top);
  Alcotest.(check bool) "nothing exceeds the top address" false (Mir.Word.lt_u top half);
  (* the page-count idiom of the boot identity mapper: a byte distance
     past [Int64.max_int] must still divide to the exact page count *)
  Alcotest.(check (option int64))
    "page count across the boundary"
    (Some 0x8_0000_0000_0001L)
    (Mir.Word.div Mir.Word.W64 0x8000_0000_0000_1000L 0x1000L);
  Alcotest.(check int64) "unsigned_div agrees with Word.div"
    0x8_0000_0000_0001L
    (Int64.unsigned_div 0x8000_0000_0000_1000L 0x1000L)

let prop_insert_extract =
  QCheck2.Test.make ~count:500 ~name:"word insert/extract roundtrip"
    QCheck2.Gen.(triple (int_bound 56) (int_range 1 8) ui64)
    (fun (lo, len, w) ->
      let field = Mir.Word.extract w ~lo ~len in
      Mir.Word.equal (Mir.Word.insert w ~lo ~len field) w)

(* ------------------------------------------------------------------ *)
(* Value: projection and update                                        *)

let v_nested : unit Mir.Value.t =
  (* #1{ [| {10, 20}, {30, 40} |], true } *)
  Mir.Value.variant 1
    [
      Mir.Value.Arr
        [|
          Mir.Value.tuple [ Mir.Value.usize 10; Mir.Value.usize 20 ];
          Mir.Value.tuple [ Mir.Value.usize 30; Mir.Value.usize 40 ];
        |];
      Mir.Value.bool true;
    ]

let test_value_project () =
  let open Mir.Path in
  let got =
    check_ok "project"
      (Mir.Value.project_many v_nested [ Field 0; Index 1; Field 0 ])
  in
  Alcotest.(check bool) "project path" true (Mir.Value.equal got (Mir.Value.usize 30));
  let _ = check_err "oob field" (Mir.Value.project v_nested (Field 5)) in
  let _ = check_err "index struct" (Mir.Value.project v_nested (Index 0)) in
  ()

let test_value_update () =
  let open Mir.Path in
  let v' =
    check_ok "update"
      (Mir.Value.update v_nested [ Field 0; Index 0; Field 1 ] (Mir.Value.usize 99))
  in
  let got = check_ok "re-read" (Mir.Value.project_many v' [ Field 0; Index 0; Field 1 ]) in
  Alcotest.(check bool) "updated" true (Mir.Value.equal got (Mir.Value.usize 99));
  (* untouched sibling *)
  let sib = check_ok "sibling" (Mir.Value.project_many v' [ Field 0; Index 0; Field 0 ]) in
  Alcotest.(check bool) "sibling untouched" true (Mir.Value.equal sib (Mir.Value.usize 10));
  (* persistence: original value unchanged (arrays are copied) *)
  let orig = check_ok "orig" (Mir.Value.project_many v_nested [ Field 0; Index 0; Field 1 ]) in
  Alcotest.(check bool) "persistent" true (Mir.Value.equal orig (Mir.Value.usize 20))

let value_gen : unit Mir.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Mir.Value.usize (abs i mod 1000)) int;
            map Mir.Value.bool bool;
            return Mir.Value.unit;
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map2
                (fun d fs -> Mir.Value.variant (abs d mod 4) fs)
                int
                (list_size (int_range 1 3) (self (n / 2))) );
            (1, map (fun l -> Mir.Value.Arr (Array.of_list l))
                 (list_size (int_range 1 3) (self (n / 2))));
          ])

let prop_value_equal_refl =
  QCheck2.Test.make ~count:300 ~name:"value equality is reflexive" value_gen
    (fun v -> Mir.Value.equal v v)

(* ------------------------------------------------------------------ *)
(* Mem: frame condition                                                *)

let test_mem_rw () =
  let mem = Mir.Mem.empty in
  let base = Mir.Path.Global "g" in
  let mem = Mir.Mem.define base (v_nested : unit Mir.Value.t) mem in
  let p = Mir.Path.{ base; projs = [ Field 0; Index 1; Field 1 ] } in
  let got = check_ok "read" (Mir.Mem.read mem p) in
  Alcotest.(check bool) "read value" true (Mir.Value.equal got (Mir.Value.usize 40));
  let mem' = check_ok "write" (Mir.Mem.write mem p (Mir.Value.usize 7)) in
  let got' = check_ok "reread" (Mir.Mem.read mem' p) in
  Alcotest.(check bool) "written" true (Mir.Value.equal got' (Mir.Value.usize 7))

let test_mem_undefined () =
  let p = Mir.Path.global "nope" in
  let _ = check_err "read undefined" (Mir.Mem.read Mir.Mem.empty p) in
  let p2 = Mir.Path.extend p (Mir.Path.Field 0) in
  let _ = check_err "proj write undefined" (Mir.Mem.write Mir.Mem.empty p2 Mir.Value.unit) in
  (* whole-object store allocates *)
  let _ = check_ok "whole write" (Mir.Mem.write Mir.Mem.empty p Mir.Value.unit) in
  ()

(* Assignment only changes the assigned location (the paper's
   assignment axiom, here a theorem). *)
let prop_mem_frame_condition =
  let gen =
    QCheck2.Gen.(
      pair (int_range 0 1) (int_range 0 1) >>= fun (i, j) ->
      pair (return (i, j)) (int_range 0 999))
  in
  QCheck2.Test.make ~count:300 ~name:"mem write frame condition" gen
    (fun ((i, j), fresh) ->
      let base = Mir.Path.Global "g" in
      let mem = Mir.Mem.define base v_nested Mir.Mem.empty in
      let target = Mir.Path.{ base; projs = [ Field 0; Index i; Field j ] } in
      let other = Mir.Path.{ base; projs = [ Field 0; Index (1 - i); Field j ] } in
      match Mir.Mem.write mem target (Mir.Value.usize fresh) with
      | Error _ -> false
      | Ok mem' -> (
          match (Mir.Mem.read mem other, Mir.Mem.read mem' other) with
          | Ok before, Ok after -> Mir.Value.equal before after
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Eval                                                                *)

let u64v i : unit Mir.Value.t = Mir.Value.int Mir.Ty.U64 i

let test_eval_arith () =
  let add = check_ok "add" (Mir.Eval.binary Mir.Syntax.Add (u64v 2) (u64v 3)) in
  Alcotest.(check bool) "2+3" true (Mir.Value.equal add (u64v 5));
  let _ = check_err "mismatched widths"
      (Mir.Eval.binary Mir.Syntax.Add (u64v 2) (Mir.Value.int Mir.Ty.U8 3)) in
  let _ = check_err "div by zero" (Mir.Eval.binary Mir.Syntax.Div (u64v 2) (u64v 0)) in
  let shl = check_ok "shl" (Mir.Eval.binary Mir.Syntax.Shl (u64v 1) (Mir.Value.int Mir.Ty.U32 12)) in
  Alcotest.(check bool) "1<<12" true (Mir.Value.equal shl (u64v 4096));
  let _ = check_err "shift range" (Mir.Eval.binary Mir.Syntax.Shl (u64v 1) (Mir.Value.int Mir.Ty.U32 64)) in
  ()

let test_eval_checked () =
  let v = check_ok "checked add"
      (Mir.Eval.checked_binary Mir.Syntax.Add
         (Mir.Value.int Mir.Ty.U8 250) (Mir.Value.int Mir.Ty.U8 10))
  in
  (match v with
  | Mir.Value.Struct (0, [ r; Mir.Value.Bool ovf ]) ->
      Alcotest.(check bool) "wrapped result" true
        (Mir.Value.equal r (Mir.Value.int Mir.Ty.U8 4));
      Alcotest.(check bool) "overflow flag" true ovf
  | _ -> Alcotest.fail "checked add shape");
  let v2 = check_ok "checked ok"
      (Mir.Eval.checked_binary Mir.Syntax.Add (u64v 1) (u64v 2))
  in
  match v2 with
  | Mir.Value.Struct (0, [ _; Mir.Value.Bool ovf ]) ->
      Alcotest.(check bool) "no overflow" false ovf
  | _ -> Alcotest.fail "checked add shape"

let test_eval_signed_compare () =
  let minus_one = Mir.Value.word Mir.Ty.I64 (-1L) in
  let one = Mir.Value.word Mir.Ty.I64 1L in
  let lt = check_ok "signed lt" (Mir.Eval.binary Mir.Syntax.Lt minus_one one) in
  Alcotest.(check bool) "-1 < 1 signed" true (Mir.Value.equal lt (Mir.Value.bool true));
  let m1u = Mir.Value.word Mir.Ty.U64 (-1L) in
  let oneu = Mir.Value.word Mir.Ty.U64 1L in
  let ltu = check_ok "unsigned lt" (Mir.Eval.binary Mir.Syntax.Lt m1u oneu) in
  Alcotest.(check bool) "max_u64 < 1 unsigned is false" true
    (Mir.Value.equal ltu (Mir.Value.bool false))

(* ------------------------------------------------------------------ *)
(* Interp: whole-function executions                                   *)

open Mir.Builder

(* fn add1(x: u64) -> u64 { x + 1 } *)
let body_add1 () =
  let b = create ~name:"add1" ~params:[ ("_1", Mir.Ty.Int Mir.Ty.U64, Mir.Syntax.Ktemp) ]
      ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
  in
  assign_var b "_0" (Mir.Syntax.Binary (Mir.Syntax.Add, copy "_1", cu64 1));
  terminate b Mir.Syntax.Return;
  finish b

(* fn tri(n: u64) -> u64 { sum of 1..=n, via a loop } *)
let body_tri () =
  let b = create ~name:"tri" ~params:[ ("_1", Mir.Ty.Int Mir.Ty.U64, Mir.Syntax.Ktemp) ]
      ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
  in
  let acc = temp b ~name:"acc" (Mir.Ty.Int Mir.Ty.U64) in
  let i = temp b ~name:"i" (Mir.Ty.Int Mir.Ty.U64) in
  let cond = temp b ~name:"cond" Mir.Ty.Bool in
  let head = fresh_block b in
  let body_blk = fresh_block b in
  let exit = fresh_block b in
  assign_var b acc (Mir.Syntax.Use (cu64 0));
  assign_var b i (Mir.Syntax.Use (cu64 1));
  terminate b (Mir.Syntax.Goto head);
  switch_to b head;
  assign_var b cond (Mir.Syntax.Binary (Mir.Syntax.Le, copy i, copy "_1"));
  terminate b (Mir.Syntax.Switch_int (copy cond, [ (0L, exit) ], body_blk));
  switch_to b body_blk;
  assign_var b acc (Mir.Syntax.Binary (Mir.Syntax.Add, copy acc, copy i));
  assign_var b i (Mir.Syntax.Binary (Mir.Syntax.Add, copy i, cu64 1));
  terminate b (Mir.Syntax.Goto head);
  switch_to b exit;
  assign_var b "_0" (Mir.Syntax.Use (copy acc));
  terminate b Mir.Syntax.Return;
  finish b

(* fn call_add1_twice(x) -> u64 { add1(add1(x)) } *)
let body_call_twice () =
  let b = create ~name:"call_add1_twice"
      ~params:[ ("_1", Mir.Ty.Int Mir.Ty.U64, Mir.Syntax.Ktemp) ]
      ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
  in
  let t = temp b (Mir.Ty.Int Mir.Ty.U64) in
  let after1 = fresh_block b in
  let after2 = fresh_block b in
  terminate b (Mir.Syntax.Call { dest = pvar t; func = "add1"; args = [ copy "_1" ]; target = Some after1 });
  switch_to b after1;
  terminate b (Mir.Syntax.Call { dest = pvar "_0"; func = "add1"; args = [ copy t ]; target = Some after2 });
  switch_to b after2;
  terminate b Mir.Syntax.Return;
  finish b

(* Local (address-taken) variable mutated through a pointer:
   fn through_ptr() -> u64 { let mut x = 5; let p = &mut x; *p = 9; x } *)
let body_through_ptr () =
  let b = create ~name:"through_ptr" ~params:[] ~ret_ty:(Mir.Ty.Int Mir.Ty.U64) in
  let x = local b ~name:"x" (Mir.Ty.Int Mir.Ty.U64) in
  let p = temp b ~name:"p" (Mir.Ty.Ref (Mir.Ty.Int Mir.Ty.U64)) in
  assign_var b x (Mir.Syntax.Use (cu64 5));
  assign_var b p (Mir.Syntax.Ref (pvar x));
  assign b (pderef (pvar p)) (Mir.Syntax.Use (cu64 9));
  assign_var b "_0" (Mir.Syntax.Use (copy x));
  terminate b Mir.Syntax.Return;
  finish b

(* Dereferencing an RData handle must fault. *)
let body_deref_rdata () =
  let b = create ~name:"deref_rdata" ~params:[] ~ret_ty:(Mir.Ty.Int Mir.Ty.U64) in
  let h = temp b ~name:"h" (Mir.Ty.Ref (Mir.Ty.Opaque "secret")) in
  let after = fresh_block b in
  terminate b (Mir.Syntax.Call { dest = pvar h; func = "make_handle"; args = []; target = Some after });
  switch_to b after;
  assign_var b "_0" (Mir.Syntax.Use (Mir.Syntax.Copy (pderef (pvar h))));
  terminate b Mir.Syntax.Return;
  finish b

let unit_env bodies : unit Mir.Interp.env =
  Mir.Interp.env ~prims:[] (Mir.Syntax.program_of_bodies bodies)

let run_fn ?fuel env fn args =
  Mir.Interp.call ?fuel env ~abs:() ~mem:Mir.Mem.empty fn args

let expect_ret what r expected =
  match r with
  | Error e -> Alcotest.failf "%s: %s" what (Mir.Interp.error_to_string e)
  | Ok (o : unit Mir.Interp.outcome) ->
      Alcotest.(check bool)
        (what ^ " return value")
        true
        (Mir.Value.equal o.Mir.Interp.ret expected)

let test_interp_add1 () =
  expect_ret "add1" (run_fn (unit_env [ body_add1 () ]) "add1" [ u64v 41 ]) (u64v 42)

let test_interp_loop () =
  expect_ret "tri 10" (run_fn (unit_env [ body_tri () ]) "tri" [ u64v 10 ]) (u64v 55);
  expect_ret "tri 0" (run_fn (unit_env [ body_tri () ]) "tri" [ u64v 0 ]) (u64v 0)

let test_interp_calls () =
  expect_ret "nested calls"
    (run_fn (unit_env [ body_add1 (); body_call_twice () ]) "call_add1_twice" [ u64v 40 ])
    (u64v 42)

let test_interp_through_ptr () =
  expect_ret "through_ptr" (run_fn (unit_env [ body_through_ptr () ]) "through_ptr" []) (u64v 9)

let test_interp_rdata_faults () =
  let make_handle =
    {
      Mir.Interp.prim_name = "make_handle";
      prim_exec =
        (fun abs _args ->
          Ok (abs, Mir.Value.ptr_rdata ~layer:"L3" ~name:"secret" [ 0 ]));
    }
  in
  let env =
    Mir.Interp.env ~prims:[ make_handle ]
      (Mir.Syntax.program_of_bodies [ body_deref_rdata () ])
  in
  match run_fn env "deref_rdata" [] with
  | Ok _ -> Alcotest.fail "RData dereference should fault"
  | Error (Mir.Interp.Fault { msg; _ }) ->
      Alcotest.(check bool) "mentions encapsulation" true
        (contains msg "encapsulated")
  | Error e -> Alcotest.failf "unexpected error: %s" (Mir.Interp.error_to_string e)

let test_interp_out_of_fuel () =
  let b = create ~name:"spin" ~params:[] ~ret_ty:Mir.Ty.Unit in
  terminate b (Mir.Syntax.Goto 0);
  let body = finish b in
  match run_fn ~fuel:100 (unit_env [ body ]) "spin" [] with
  | Error Mir.Interp.Out_of_fuel -> ()
  | Ok _ -> Alcotest.fail "spin should not terminate"
  | Error e -> Alcotest.failf "unexpected: %s" (Mir.Interp.error_to_string e)

let test_interp_assert () =
  let b = create ~name:"asrt" ~params:[ ("_1", Mir.Ty.Bool, Mir.Syntax.Ktemp) ] ~ret_ty:Mir.Ty.Unit in
  let ok_blk = fresh_block b in
  terminate b
    (Mir.Syntax.Assert { cond = copy "_1"; expected = true; msg = "boom"; target = ok_blk });
  switch_to b ok_blk;
  terminate b Mir.Syntax.Return;
  let body = finish b in
  (match run_fn (unit_env [ body ]) "asrt" [ Mir.Value.bool true ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "assert true: %s" (Mir.Interp.error_to_string e));
  match run_fn (unit_env [ body ]) "asrt" [ Mir.Value.bool false ] with
  | Error (Mir.Interp.Assert_failed { msg; _ }) ->
      Alcotest.(check string) "assert message" "boom" msg
  | Ok _ -> Alcotest.fail "assert false should fail"
  | Error e -> Alcotest.failf "unexpected: %s" (Mir.Interp.error_to_string e)

(* Trusted pointers: a primitive returns a pointer whose store updates
   the abstract state; the MIR code writes through it. *)
let test_interp_trusted_ptr () =
  let trusted : int Mir.Value.trusted =
    {
      Mir.Value.tp_name = "cell";
      tp_load = (fun abs -> Ok (Mir.Value.int Mir.Ty.U64 abs));
      tp_store =
        (fun _abs v ->
          Result.map (fun (w, _) -> Mir.Word.to_int w) (Mir.Value.as_word v));
    }
  in
  let get_cell =
    {
      Mir.Interp.prim_name = "get_cell";
      prim_exec = (fun abs _ -> Ok (abs, Mir.Value.Ptr (Mir.Value.Trusted trusted)));
    }
  in
  let b = create ~name:"bump_cell" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let p = temp b ~name:"p" (Mir.Ty.Raw (Mir.Ty.Int Mir.Ty.U64)) in
  let v = temp b ~name:"v" (Mir.Ty.Int Mir.Ty.U64) in
  let after = fresh_block b in
  terminate b (Mir.Syntax.Call { dest = pvar p; func = "get_cell"; args = []; target = Some after });
  switch_to b after;
  assign_var b v (Mir.Syntax.Use (Mir.Syntax.Copy (pderef (pvar p))));
  assign b (pderef (pvar p))
    (Mir.Syntax.Binary (Mir.Syntax.Add, copy v, cu64 100));
  terminate b Mir.Syntax.Return;
  let body = finish b in
  let env = Mir.Interp.env ~prims:[ get_cell ] (Mir.Syntax.program_of_bodies [ body ]) in
  match Mir.Interp.call env ~abs:7 ~mem:Mir.Mem.empty "bump_cell" [] with
  | Error e -> Alcotest.failf "trusted ptr: %s" (Mir.Interp.error_to_string e)
  | Ok o -> Alcotest.(check int) "abstract state updated" 107 o.Mir.Interp.abs

(* Temps never touch memory: running a purely-temp function leaves the
   object memory unchanged (Sec. 3.2 "Lifting Local Variables"). *)
let test_temps_no_memory_effect () =
  let env = unit_env [ body_tri () ] in
  match run_fn env "tri" [ u64v 20 ] with
  | Error e -> Alcotest.failf "tri: %s" (Mir.Interp.error_to_string e)
  | Ok o -> Alcotest.(check int) "memory untouched" 0 (Mir.Mem.cardinal o.Mir.Interp.mem)

let prop_tri_matches_formula =
  QCheck2.Test.make ~count:50 ~name:"interp loop equals closed form"
    (QCheck2.Gen.int_bound 200)
    (fun n ->
      let env = unit_env [ body_tri () ] in
      match run_fn env "tri" [ u64v n ] with
      | Error _ -> false
      | Ok o -> Mir.Value.equal o.Mir.Interp.ret (u64v (n * (n + 1) / 2)))

(* The exposed small-step machine agrees with the big-step driver:
   stepping manually to completion produces the same outcome and the
   same number of steps. *)
let test_small_step_agrees_with_call () =
  let env = unit_env [ body_add1 (); body_call_twice (); body_tri () ] in
  List.iter
    (fun (fn, args) ->
      let big =
        match Mir.Interp.call env ~abs:() ~mem:Mir.Mem.empty fn args with
        | Ok o -> o
        | Error e -> Alcotest.failf "call: %s" (Mir.Interp.error_to_string e)
      in
      let cfg0 =
        match Mir.Interp.start env ~abs:() ~mem:Mir.Mem.empty fn args with
        | Ok c -> c
        | Error e -> Alcotest.failf "start: %s" (Mir.Interp.error_to_string e)
      in
      let rec drive cfg n =
        if n > 1_000_000 then Alcotest.fail "manual stepping diverged"
        else
          match Mir.Interp.step cfg with
          | Ok (Mir.Interp.Finished o) -> o
          | Ok (Mir.Interp.Running cfg') -> drive cfg' (n + 1)
          | Error e -> Alcotest.failf "step: %s" (Mir.Interp.error_to_string e)
      in
      let small = drive cfg0 0 in
      Alcotest.(check bool) (fn ^ " same return") true
        (Mir.Value.equal big.Mir.Interp.ret small.Mir.Interp.ret);
      Alcotest.(check int) (fn ^ " same step count") big.Mir.Interp.steps
        small.Mir.Interp.steps)
    [ ("add1", [ u64v 4 ]); ("call_add1_twice", [ u64v 4 ]); ("tri", [ u64v 9 ]) ]

let test_config_introspection () =
  let env = unit_env [ body_add1 (); body_call_twice () ] in
  match Mir.Interp.start env ~abs:() ~mem:Mir.Mem.empty "call_add1_twice" [ u64v 1 ] with
  | Error e -> Alcotest.failf "start: %s" (Mir.Interp.error_to_string e)
  | Ok cfg ->
      Alcotest.(check int) "initial depth" 1 (Mir.Interp.config_depth cfg);
      Alcotest.(check (option string)) "initial fn" (Some "call_add1_twice")
        (Mir.Interp.config_function cfg);
      (* one step: the Call terminator pushes the callee *)
      (match Mir.Interp.step cfg with
      | Ok (Mir.Interp.Running cfg') ->
          Alcotest.(check int) "depth after call" 2 (Mir.Interp.config_depth cfg');
          Alcotest.(check (option string)) "callee on top" (Some "add1")
            (Mir.Interp.config_function cfg')
      | Ok (Mir.Interp.Finished _) -> Alcotest.fail "finished too early"
      | Error e -> Alcotest.failf "step: %s" (Mir.Interp.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)

let test_validate_catches_bad_jump () =
  let b = create ~name:"bad" ~params:[] ~ret_ty:Mir.Ty.Unit in
  terminate b (Mir.Syntax.Goto 99);
  let issues = Mir.Validate.check_body (finish b) in
  Alcotest.(check bool) "found issue" true (issues <> [])

let test_validate_catches_ref_of_temp () =
  let b = create ~name:"badref" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let t = temp b (Mir.Ty.Int Mir.Ty.U64) in
  let p = temp b (Mir.Ty.Ref (Mir.Ty.Int Mir.Ty.U64)) in
  assign_var b t (Mir.Syntax.Use (cu64 1));
  assign_var b p (Mir.Syntax.Ref (pvar t));
  terminate b Mir.Syntax.Return;
  let issues = Mir.Validate.check_body (finish b) in
  Alcotest.(check bool) "address-of-temp flagged" true
    (List.exists (fun i -> contains i.Mir.Validate.detail "address of temporary") issues)

let test_validate_good_bodies () =
  List.iter
    (fun body ->
      match Mir.Validate.check_body body with
      | [] -> ()
      | issues ->
          Alcotest.failf "unexpected issues in %s: %s" body.Mir.Syntax.fname
            (String.concat "; "
               (List.map (fun i -> i.Mir.Validate.detail) issues)))
    [ body_add1 (); body_tri (); body_call_twice (); body_through_ptr () ]

let test_validate_program_calls () =
  let prog = Mir.Syntax.program_of_bodies [ body_call_twice () ] in
  let issues = Mir.Validate.check_program prog in
  Alcotest.(check bool) "missing callee flagged" true
    (List.exists (fun i -> contains i.Mir.Validate.detail "add1") issues);
  let prog2 = Mir.Syntax.program_of_bodies [ body_call_twice (); body_add1 () ] in
  Alcotest.(check int) "complete program clean" 0
    (List.length (Mir.Validate.check_program prog2))

(* ------------------------------------------------------------------ *)
(* Pretty printer round-trips through non-empty text                   *)

let test_pp_smoke () =
  let s = Mir.Pp.body_to_string (body_tri ()) in
  Alcotest.(check bool) "mentions switchInt" true (contains s "switchInt");
  Alcotest.(check bool) "mentions fn tri" true (contains s "fn tri")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "mir"
    [
      ( "word",
        [
          Alcotest.test_case "normalization" `Quick test_word_norm;
          Alcotest.test_case "bitfields" `Quick test_word_bitfields;
          Alcotest.test_case "unsigned division" `Quick test_word_unsigned_div;
          Alcotest.test_case "sign boundary" `Quick test_word_sign_boundary;
        ] );
      qsuite "word-props" [ prop_insert_extract ];
      ( "value",
        [
          Alcotest.test_case "project" `Quick test_value_project;
          Alcotest.test_case "update" `Quick test_value_update;
        ] );
      qsuite "value-props" [ prop_value_equal_refl ];
      ( "mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "undefined objects" `Quick test_mem_undefined;
        ] );
      qsuite "mem-props" [ prop_mem_frame_condition ];
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "checked ops" `Quick test_eval_checked;
          Alcotest.test_case "signed compare" `Quick test_eval_signed_compare;
        ] );
      ( "interp",
        [
          Alcotest.test_case "straight line" `Quick test_interp_add1;
          Alcotest.test_case "loop" `Quick test_interp_loop;
          Alcotest.test_case "nested calls" `Quick test_interp_calls;
          Alcotest.test_case "pointer to local" `Quick test_interp_through_ptr;
          Alcotest.test_case "rdata deref faults" `Quick test_interp_rdata_faults;
          Alcotest.test_case "out of fuel" `Quick test_interp_out_of_fuel;
          Alcotest.test_case "assert" `Quick test_interp_assert;
          Alcotest.test_case "trusted pointer" `Quick test_interp_trusted_ptr;
          Alcotest.test_case "temps leave memory alone" `Quick test_temps_no_memory_effect;
        ] );
      qsuite "interp-props" [ prop_tri_matches_formula ];
      ( "small-step",
        [
          Alcotest.test_case "agrees with big-step" `Quick test_small_step_agrees_with_call;
          Alcotest.test_case "config introspection" `Quick test_config_introspection;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad jump" `Quick test_validate_catches_bad_jump;
          Alcotest.test_case "ref of temp" `Quick test_validate_catches_ref_of_temp;
          Alcotest.test_case "good bodies" `Quick test_validate_good_bodies;
          Alcotest.test_case "program call targets" `Quick test_validate_program_calls;
        ] );
      ("pp", [ Alcotest.test_case "smoke" `Quick test_pp_smoke ]);
    ]

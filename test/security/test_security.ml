(* Tests for the security model: transitions, observations, invariants
   on reachable states, noninterference lemmas, attack detection. *)

open Security
open Hyperenclave
module Word = Mir.Word

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let layout = Layout.default Geometry.tiny
let pageL = Int64.of_int (Geometry.page_size Geometry.tiny)
let page_va i = Int64.mul pageL (Int64.of_int i)
let mbuf_page = 8 (* tiny virtual space: 16 pages; window placed at page 8 *)

let stepv what st a = ok what (Transition.step st a)

let disabled what st a =
  match Transition.step st a with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: action should be disabled" what

(* Boot, create an enclave with two ELRANGE pages, add both, seal. *)
let enclave_ready () =
  let st = State.boot layout in
  let st =
    stepv "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 2; mbuf_va = page_va mbuf_page })
  in
  let eid = Int64.to_int (ok "eid" (State.reg st 1)) in
  let st = stepv "add0" st (Transition.Hc_add_page { eid; va = 0L }) in
  let st = stepv "add1" st (Transition.Hc_add_page { eid; va = page_va 1 }) in
  let st = stepv "seal" st (Transition.Hc_init_done { eid }) in
  (st, eid)

(* ------------------------------------------------------------------ *)
(* Transitions                                                         *)

let test_os_memory_roundtrip () =
  let st = State.boot layout in
  let st = stepv "const" st (Transition.Const { dst = 1; value = 0xFEEDL }) in
  let st = stepv "store" st (Transition.Store { src = 1; va = page_va 2 }) in
  let st = stepv "load" st (Transition.Load { dst = 2; va = page_va 2 }) in
  Alcotest.(check int64) "roundtrip" 0xFEEDL (ok "r2" (State.reg st 2))

let test_os_cannot_touch_secure () =
  let st = State.boot layout in
  disabled "load frame area" st
    (Transition.Load { dst = 0; va = layout.Layout.frame_base });
  disabled "store epc" st (Transition.Store { src = 0; va = layout.Layout.epc_base });
  disabled "unaligned" st (Transition.Load { dst = 0; va = 3L })

let test_hypercalls_from_enclave_disabled () =
  let st, eid = enclave_ready () in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  disabled "nested create" st
    (Transition.Hc_create
       { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page });
  disabled "nested add" st (Transition.Hc_add_page { eid; va = 0L });
  disabled "nested enter" st (Transition.Hc_enter { eid })

let test_enter_exit_context_switch () =
  let st, eid = enclave_ready () in
  let st = stepv "os reg" st (Transition.Const { dst = 3; value = 111L }) in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  Alcotest.(check int64) "enclave starts zeroed" 0L (ok "r3" (State.reg st 3));
  let st = stepv "encl reg" st (Transition.Const { dst = 3; value = 222L }) in
  let st = stepv "exit" st (Transition.Hc_exit) in
  Alcotest.(check int64) "os regs restored" 111L (ok "r3" (State.reg st 3));
  let st = stepv "re-enter" st (Transition.Hc_enter { eid }) in
  Alcotest.(check int64) "enclave regs restored" 222L (ok "r3" (State.reg st 3))

let test_enter_requires_initialized () =
  let st = State.boot layout in
  let st =
    stepv "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
  in
  let eid = Int64.to_int (ok "eid" (State.reg st 1)) in
  disabled "enter before init" st (Transition.Hc_enter { eid })

let test_enclave_memory_isolation () =
  let st, eid = enclave_ready () in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  (* enclave can use its own pages *)
  let st = stepv "const" st (Transition.Const { dst = 0; value = 77L }) in
  let st = stepv "store" st (Transition.Store { src = 0; va = page_va 1 }) in
  let st = stepv "load" st (Transition.Load { dst = 1; va = page_va 1 }) in
  Alcotest.(check int64) "own page roundtrip" 77L (ok "r1" (State.reg st 1));
  (* but nothing outside ELRANGE + mbuf window *)
  disabled "normal memory" st (Transition.Load { dst = 0; va = page_va 2 });
  disabled "unmapped high" st (Transition.Load { dst = 0; va = page_va 15 })

let test_mbuf_oracle_semantics () =
  let st, eid = enclave_ready () in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  (* store to the marshalling window is accepted but ignored *)
  let st = stepv "const" st (Transition.Const { dst = 0; value = 1234L }) in
  let before = st.State.mon.Absdata.phys in
  let st = stepv "mbuf store" st (Transition.Store { src = 0; va = page_va mbuf_page }) in
  Alcotest.(check bool) "store ignored" true
    (Phys_mem.equal before st.State.mon.Absdata.phys);
  (* loads come from the principal's own oracle *)
  let st1 = stepv "mbuf load" st (Transition.Load { dst = 1; va = page_va mbuf_page }) in
  let expected, _ = Oracle.take (State.oracle_of st (Principal.Enclave eid)) in
  Alcotest.(check int64) "oracle value" expected (ok "r1" (State.reg st1 1));
  Alcotest.(check int) "position advanced" 1
    (Oracle.position (State.oracle_of st1 (Principal.Enclave eid)));
  (* the OS's stream is untouched *)
  Alcotest.(check int) "other stream untouched" 0
    (Oracle.position (State.oracle_of st1 Principal.Os))

(* ------------------------------------------------------------------ *)
(* EREMOVE (extension)                                                 *)

let test_remove_page_lifecycle () =
  let st = State.boot layout in
  let st =
    stepv "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 2; mbuf_va = page_va mbuf_page })
  in
  let eid = Int64.to_int (ok "eid" (State.reg st 1)) in
  let st = stepv "add" st (Transition.Hc_add_page { eid; va = 0L }) in
  (* remove it again *)
  let st = stepv "remove" st (Transition.Hc_remove_page { eid; va = 0L }) in
  Alcotest.(check int64) "remove status ok" 0L (ok "r0" (State.reg st 0));
  let e = ok "find" (Absdata.find_enclave st.State.mon eid) in
  Alcotest.(check bool) "mapping gone" true
    (ok "q" (Pt_flat.query st.State.mon ~root:e.Enclave.ept_root ~va:0L) = None);
  Alcotest.(check int) "epcm freed" 0 (Epcm.valid_count st.State.mon.Absdata.epcm);
  ok "invariants" (Invariants.check st.State.mon);
  (* double remove is rejected *)
  let st = stepv "re-remove" st (Transition.Hc_remove_page { eid; va = 0L }) in
  Alcotest.(check int64) "double remove invalid" 1L (ok "r0" (State.reg st 0));
  (* the page is reusable: add goes back to EPC page 0 *)
  let st = stepv "re-add" st (Transition.Hc_add_page { eid; va = page_va 1 }) in
  Alcotest.(check int64) "re-add ok" 0L (ok "r0" (State.reg st 0));
  match ok "epcm" (Epcm.get st.State.mon.Absdata.epcm 0) with
  | Epcm.Valid { va; _ } -> Alcotest.(check int64) "page 0 reused" (page_va 1) va
  | Epcm.Free -> Alcotest.fail "page 0 not reused"

let test_remove_page_scrubs () =
  let st, eid = enclave_ready () in
  (* sealed enclaves cannot shed pages *)
  let st_sealed = stepv "remove sealed" st (Transition.Hc_remove_page { eid; va = 0L }) in
  Alcotest.(check int64) "bad state" 3L (ok "r0" (State.reg st_sealed 0));
  (* start over, write a secret, remove, check the frame is zeroed *)
  let st = State.boot layout in
  let st =
    stepv "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
  in
  let eid = Int64.to_int (ok "eid" (State.reg st 1)) in
  let st = stepv "add" st (Transition.Hc_add_page { eid; va = 0L }) in
  (* plant the secret directly in the EPC page (the enclave is not
     sealed, so it cannot run; a buggy monitor path could have left
     data there) *)
  let hpa = Layout.epc_page_addr layout 0 in
  let phys = ok "write" (Phys_mem.write64 st.State.mon.Absdata.phys hpa 0x5EC2E7L) in
  let st = { st with State.mon = { st.State.mon with Absdata.phys } } in
  let st = stepv "remove" st (Transition.Hc_remove_page { eid; va = 0L }) in
  Alcotest.(check int64) "scrubbed" 0L
    (ok "read" (Phys_mem.read64 st.State.mon.Absdata.phys hpa))

let test_remove_page_wrong_owner () =
  let st = State.boot layout in
  let st =
    stepv "create1" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
  in
  let e1 = Int64.to_int (ok "eid" (State.reg st 1)) in
  let st = stepv "add1" st (Transition.Hc_add_page { eid = e1; va = 0L }) in
  let st =
    stepv "create2" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
  in
  let e2 = Int64.to_int (ok "eid" (State.reg st 1)) in
  (* e2 has no page at va 0; removing must fail and not disturb e1 *)
  let st = stepv "cross remove" st (Transition.Hc_remove_page { eid = e2; va = 0L }) in
  Alcotest.(check int64) "rejected" 1L (ok "r0" (State.reg st 0));
  match ok "epcm" (Epcm.get st.State.mon.Absdata.epcm 0) with
  | Epcm.Valid { eid; _ } -> Alcotest.(check int) "still owned by e1" e1 eid
  | Epcm.Free -> Alcotest.fail "e1's page was stolen"

(* ------------------------------------------------------------------ *)
(* TLB consistency                                                     *)

(* The cleaner variant: e1 stays unsealed (pages can be removed), and
   its "execution" is modelled by warming the TLB through a direct
   resolve — which the model performs on any load, including by the
   monitor acting for the enclave during attestation-style reads. *)
let test_stale_tlb () =
  let run ~flush =
    let st = State.boot layout in
    let st =
      stepv "create1" st
        (Transition.Hc_create
           { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
    in
    let e1 = Int64.to_int (ok "eid" (State.reg st 1)) in
    let st = stepv "add1" st (Transition.Hc_add_page { eid = e1; va = 0L }) in
    (* warm e1's TLB entry by simulating its access: fill directly, as
       an enter/load would once sealed *)
    let geom = Hyperenclave.Absdata.geom st.State.mon in
    let e1r = ok "find" (Absdata.find_enclave st.State.mon e1) in
    let hpa, flags =
      match ok "walk" (Nested.enclave_translate st.State.mon e1r ~va:0L) with
      | Some (hpa, f) -> (hpa, f)
      | None -> Alcotest.fail "e1 page not mapped"
    in
    let st =
      {
        st with
        State.tlb =
          Tlb.fill st.State.tlb (Principal.Enclave e1) ~va_page:0L
            { Tlb.hpa_page = Geometry.page_base geom hpa; flags };
      }
    in
    (* the OS removes the page (buggy monitor may skip the flush) ... *)
    let st =
      ok "remove" (Transition.step ~flush st (Transition.Hc_remove_page { eid = e1; va = 0L }))
    in
    Alcotest.(check int64) "remove ok" 0L (ok "r0" (State.reg st 0));
    (* ... and gives it to a second enclave, which stores a secret *)
    let st =
      stepv "create2" st
        (Transition.Hc_create
           { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page })
    in
    let e2 = Int64.to_int (ok "eid" (State.reg st 1)) in
    let st = stepv "add2" st (Transition.Hc_add_page { eid = e2; va = 0L }) in
    let st = stepv "seal2" st (Transition.Hc_init_done { eid = e2 }) in
    let st = stepv "enter2" st (Transition.Hc_enter { eid = e2 }) in
    let st = stepv "const" st (Transition.Const { dst = 0; value = 0x5EC2E7L }) in
    let st = stepv "store" st (Transition.Store { src = 0; va = 0L }) in
    let st = stepv "exit2" st Transition.Hc_exit in
    (* now e1 (sealed late, after the removal) runs and loads va 0 *)
    let st = stepv "seal1" st (Transition.Hc_init_done { eid = e1 }) in
    let st = stepv "enter1" st (Transition.Hc_enter { eid = e1 }) in
    Transition.step st (Transition.Load { dst = 1; va = 0L })
  in
  (* with the flush: the stale entry is gone, the load faults *)
  (match run ~flush:true with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flushed TLB must fault on the removed page");
  (* without: e1 reads e2's secret through the stale translation *)
  match run ~flush:false with
  | Error e -> Alcotest.failf "stale entry should have hit: %s" e
  | Ok st ->
      Alcotest.(check int64) "isolation violated through stale TLB" 0x5EC2E7L
        (ok "r1" (State.reg st 1))

let test_tlb_tagging () =
  (* translations cached for one principal are invisible to others *)
  let st, eid = enclave_ready () in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  let st = stepv "load" st (Transition.Load { dst = 0; va = 0L }) in
  Alcotest.(check bool) "enclave entry cached" true
    (Tlb.lookup st.State.tlb (Principal.Enclave eid) ~va_page:0L <> None);
  Alcotest.(check bool) "not visible to the OS tag" true
    (Tlb.lookup st.State.tlb Principal.Os ~va_page:0L = None);
  (* the OS's own accesses fill its own tag *)
  let st = stepv "exit" st Transition.Hc_exit in
  let st = stepv "os load" st (Transition.Load { dst = 0; va = page_va 2 }) in
  Alcotest.(check bool) "os entry cached" true
    (Tlb.lookup st.State.tlb Principal.Os ~va_page:(page_va 2) <> None)

(* ------------------------------------------------------------------ *)
(* Invariants on reachable states                                      *)

let test_invariants_at_boot () =
  ok "boot invariants" (Invariants.check (State.boot layout).State.mon)

let test_invariants_after_lifecycle () =
  let st, _ = enclave_ready () in
  ok "lifecycle invariants" (Invariants.check st.State.mon)

let test_invariants_on_traces () =
  List.iter
    (fun (label, d) ->
      match Invariants.check d with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invariant violated on reachable state: %s" label msg)
    (Check.Gen.absdata_states ~n:25 ~seed:42 ~steps:40 layout)

let test_invariants_preserved_by_battery () =
  let states = Check.Gen.states ~n:10 ~seed:7 ~steps:30 layout in
  let actions = Check.Gen.action_battery layout in
  List.iter
    (fun (label, st) ->
      ok (label ^ " pre") (Invariants.check st.State.mon);
      List.iter
        (fun a ->
          match Transition.step st a with
          | Error _ -> ()
          | Ok st' -> (
              match Invariants.check st'.State.mon with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.failf "%s / %s broke invariant: %s" label
                    (Transition.action_to_string a) msg))
        actions)
    states

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)

let test_observation_components () =
  let st, eid = enclave_ready () in
  let v_os = ok "os view" (Observation.observe st Principal.Os) in
  Alcotest.(check bool) "os active" true v_os.Observation.is_active;
  Alcotest.(check bool) "os sees cpu" true (v_os.Observation.cpu_regs <> None);
  (* OS reaches exactly its normal pages *)
  Alcotest.(check int) "os mappings" layout.Layout.normal_pages
    (List.length v_os.Observation.mappings);
  (* mbuf page excluded from contents *)
  Alcotest.(check int) "os private pages" (layout.Layout.normal_pages - 1)
    (List.length v_os.Observation.pages);
  let v_e = ok "enclave view" (Observation.observe st (Principal.Enclave eid)) in
  Alcotest.(check bool) "enclave inactive" false v_e.Observation.is_active;
  Alcotest.(check bool) "enclave cpu hidden" true (v_e.Observation.cpu_regs = None);
  (* 2 ELRANGE pages + 1 mbuf page mapped; only the 2 private in contents *)
  Alcotest.(check int) "enclave mappings" 3 (List.length v_e.Observation.mappings);
  Alcotest.(check int) "enclave private pages" 2 (List.length v_e.Observation.pages);
  let v_ghost = ok "ghost" (Observation.observe st (Principal.Enclave 99)) in
  Alcotest.(check int) "nonexistent enclave sees nothing" 0
    (List.length v_ghost.Observation.mappings)

let test_perturbation_invisible () =
  let st, eid = enclave_ready () in
  List.iter
    (fun observer ->
      let st' = Check.Gen.perturb_secrets ~seed:99 ~observer st in
      match Observation.indistinguishable observer st st' with
      | Ok true -> ()
      | Ok false ->
          Alcotest.failf "perturbation visible to %s" (Principal.to_string observer)
      | Error msg -> Alcotest.failf "observe failed: %s" msg)
    [ Principal.Os; Principal.Enclave eid ]

(* Writes by one enclave are visible to itself but not to others. *)
let test_store_visibility () =
  let st, eid = enclave_ready () in
  let st = stepv "enter" st (Transition.Hc_enter { eid }) in
  let st0 = st in
  let st = stepv "const" st (Transition.Const { dst = 0; value = 5L }) in
  let st = stepv "store" st (Transition.Store { src = 0; va = 0L }) in
  (* visible to the writer *)
  Alcotest.(check bool) "visible to writer" false
    (ok "self" (Observation.indistinguishable (Principal.Enclave eid) st0 st));
  (* invisible to the OS *)
  Alcotest.(check bool) "invisible to OS" true
    (ok "os" (Observation.indistinguishable Principal.Os st0 st))

(* ------------------------------------------------------------------ *)
(* Noninterference lemmas                                              *)

let observers = [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2 ]

let test_noninterference_lemmas () =
  let states = Check.Gen.states ~n:12 ~seed:11 ~steps:35 layout in
  let actions = Check.Gen.action_battery layout in
  let reports =
    List.concat_map
      (fun observer ->
        let pairs = Check.Gen.secret_pairs ~n:12 ~seed:13 ~steps:35 ~observer layout in
        [
          Noninterference.check_integrity ~observer ~states ~actions;
          Noninterference.check_local_consistency ~observer ~pairs ~actions;
          Noninterference.check_inactive_consistency ~observer ~pairs ~actions;
        ])
      observers
  in
  List.iter
    (fun r ->
      if not (Mirverif.Report.ok r) then
        Alcotest.failf "NI failure:@.%s" (Mirverif.Report.to_string r);
      if r.Mirverif.Report.passed = 0 then
        Alcotest.failf "%s: vacuous (no case passed)" r.Mirverif.Report.name)
    reports

(* A state with a cross-enclave alias must violate integrity: the
   attacker enclave writes through the alias and the victim sees it. *)
let test_alias_breaks_integrity () =
  let d = ok "alias build" (Attacks.cross_enclave_alias.Attacks.build ()) in
  let o = Hypercall.init_done d ~eid:2 in
  let st = { (State.boot layout) with State.mon = o.Hypercall.d } in
  let st = stepv "enter attacker" st (Transition.Hc_enter { eid = 2 }) in
  (* load a distinctive value first, then overwrite through the alias *)
  let st = stepv "arm" st (Transition.Const { dst = 0; value = 0xBADL }) in
  let report =
    Noninterference.check_integrity ~observer:(Principal.Enclave 1)
      ~states:[ ("aliased", st) ]
      ~actions:[ Transition.Store { src = 0; va = page_va 1 } ]
  in
  Alcotest.(check bool) "alias detected as NI violation" false (Mirverif.Report.ok report)

let test_trace_noninterference () =
  List.iter
    (fun observer ->
      let pairs = Check.Gen.secret_pairs ~n:8 ~seed:31 ~steps:30 ~observer layout in
      let schedules = Check.Gen.schedules ~n:8 ~len:15 ~seed:37 layout in
      let r = Noninterference.check_trace ~observer ~pairs ~schedules in
      if not (Mirverif.Report.ok r) then
        Alcotest.failf "%s" (Mirverif.Report.to_string r);
      if r.Mirverif.Report.passed = 0 then
        Alcotest.failf "%s: vacuous" r.Mirverif.Report.name)
    [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2 ]

(* Failing hypercalls are transactional: the monitor state is exactly
   the pre-state whenever the status register reports an error. *)
let prop_hypercalls_transactional =
  QCheck2.Test.make ~count:60 ~name:"failing hypercalls leave the monitor unchanged"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 10_000) (QCheck2.Gen.int_bound 10_000))
    (fun (seed, aseed) ->
      let st = Check.Gen.trace ~seed ~steps:20 layout in
      let action, _ = Check.Gen.random_action (Check.Rng.make aseed) layout in
      let is_hypercall =
        match action with
        | Transition.Hc_create _ | Transition.Hc_add_page _
        | Transition.Hc_remove_page _ | Transition.Hc_init_done _ ->
            true
        | _ -> false
      in
      if not (is_hypercall && Principal.equal st.State.active Principal.Os) then true
      else
        match Transition.step st action with
        | Error _ -> true
        | Ok st' -> (
            match State.reg st' 0 with
            | Ok 0L -> true (* success: state may change *)
            | Ok _ -> Absdata.equal st.State.mon st'.State.mon
            | Error _ -> false))

(* Enter followed by exit restores every principal's observation. *)
let prop_enter_exit_roundtrip =
  QCheck2.Test.make ~count:40 ~name:"enter;exit preserves all observations"
    (QCheck2.Gen.int_bound 10_000)
    (fun seed ->
      let st = Check.Gen.trace ~seed ~steps:25 layout in
      match st.State.active with
      | Principal.Enclave _ -> true (* only test from the OS *)
      | Principal.Os -> (
          let entered =
            List.find_map
              (fun eid ->
                match Transition.step st (Transition.Hc_enter { eid }) with
                | Ok s -> Some s
                | Error _ -> None)
              [ 1; 2; 3; 4 ]
          in
          match entered with
          | None -> true
          | Some st1 -> (
              match Transition.step st1 Transition.Hc_exit with
              | Error _ -> false
              | Ok st2 ->
                  List.for_all
                    (fun p ->
                      match Observation.indistinguishable p st st2 with
                      | Ok same -> same
                      | Error _ -> false)
                    [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2 ])))

(* Loads never change anything any principal can observe except the
   loader's own registers and oracle. *)
let prop_loads_are_read_only =
  QCheck2.Test.make ~count:60 ~name:"loads only touch the loader's registers"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 10_000) (QCheck2.Gen.int_bound 15))
    (fun (seed, vp) ->
      let st = Check.Gen.trace ~seed ~steps:25 layout in
      match Transition.step st (Transition.Load { dst = 1; va = page_va vp }) with
      | Error _ -> true
      | Ok st' ->
          Phys_mem.equal st.State.mon.Absdata.phys st'.State.mon.Absdata.phys
          && Absdata.equal st.State.mon st'.State.mon)

(* ------------------------------------------------------------------ *)
(* TLB structure properties                                            *)

let tlb_principal_of i = [ Principal.Os; Principal.Enclave 1; Principal.Enclave 2 ]
  |> Fun.flip List.nth (i mod 3)

let tlb_entry va = { Tlb.hpa_page = Int64.logxor va 0x5AL; flags = Flags.user_rw }

let tlb_of_fills fills =
  List.fold_left
    (fun t (i, va) -> Tlb.fill t (tlb_principal_of i) ~va_page:va (tlb_entry va))
    Tlb.empty fills

(* Random fills across principals and the full unsigned VA range —
   QCheck2's int64 generator covers values at and above
   0x8000_0000_0000_0000, which are negative as signed int64. *)
let gen_tlb_fills =
  QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 2) int64))

let prop_tlb_flush_principal_exact =
  QCheck2.Test.make ~count:100
    ~name:"flush_principal removes exactly that principal's entries"
    (QCheck2.Gen.pair gen_tlb_fills (QCheck2.Gen.int_range 0 2))
    (fun (fills, pi) ->
      let prin = tlb_principal_of pi in
      let tlb = tlb_of_fills fills in
      let flushed = Tlb.flush_principal tlb prin in
      let survivors =
        List.filter
          (fun (p, _, _) -> not (Principal.equal p prin))
          (Tlb.to_list tlb)
      in
      Tlb.to_list flushed = survivors
      && List.for_all
           (fun (_, va, _) -> Tlb.lookup flushed prin ~va_page:va = None)
           (Tlb.to_list tlb))

(* The total enabledness enumerator must agree with the semantics: an
   action passes [precondition] exactly when [step] does not return a
   precondition error.  The model checker trusts this to enumerate
   enabled moves without executing them, so it is pinned in both
   directions over reachable states and the whole action battery. *)
let prop_precondition_agrees_with_step =
  QCheck2.Test.make ~count:60 ~name:"precondition agrees with step enabledness"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 10_000) QCheck2.Gen.bool)
    (fun (seed, flush) ->
      let st = Check.Gen.trace ~seed ~steps:15 layout in
      let battery = Check.Gen.action_battery layout in
      let enabled = Transition.enabled_of st battery in
      List.for_all
        (fun a ->
          let p = Result.is_ok (Transition.precondition st a) in
          let s = Result.is_ok (Transition.step ~flush st a) in
          p = s && List.mem a enabled = p)
        battery)

let prop_tlb_unsigned_va_order =
  QCheck2.Test.make ~count:100
    ~name:"to_list orders VAs by unsigned comparison within a principal"
    gen_tlb_fills
    (fun fills ->
      let rec strictly_sorted = function
        | (p1, v1, _) :: ((p2, v2, _) :: _ as rest) ->
            let c = Principal.compare p1 p2 in
            (c < 0 || (c = 0 && Int64.unsigned_compare v1 v2 < 0))
            && strictly_sorted rest
        | _ -> true
      in
      strictly_sorted (Tlb.to_list (tlb_of_fills fills)))

(* The half-space boundary, deterministically: VAs at and above
   0x8000_0000_0000_0000 must sort after small ones and stay
   individually addressable. *)
let test_tlb_unsigned_boundary () =
  let high = 0x8000_0000_0000_0000L in
  let e hpa = { Tlb.hpa_page = hpa; flags = Flags.user_rw } in
  let t = Tlb.fill Tlb.empty Principal.Os ~va_page:high (e 10L) in
  let t = Tlb.fill t Principal.Os ~va_page:1L (e 20L) in
  let t = Tlb.fill t Principal.Os ~va_page:Int64.minus_one (e 30L) in
  Alcotest.(check int) "three distinct entries" 3 (Tlb.entry_count t);
  (match Tlb.lookup t Principal.Os ~va_page:high with
  | Some { Tlb.hpa_page = 10L; _ } -> ()
  | _ -> Alcotest.fail "lookup above the sign boundary");
  (match Tlb.lookup t Principal.Os ~va_page:1L with
  | Some { Tlb.hpa_page = 20L; _ } -> ()
  | _ -> Alcotest.fail "lookup below the sign boundary");
  Alcotest.(check (list int64)) "unsigned ascending order"
    [ 1L; high; Int64.minus_one ]
    (List.map (fun (_, va, _) -> va) (Tlb.to_list t));
  let t = Tlb.flush_va t Principal.Os ~va_page:high in
  Alcotest.(check int) "flush_va removes only the boundary VA" 2 (Tlb.entry_count t);
  Alcotest.(check bool) "boundary VA gone" true
    (Tlb.lookup t Principal.Os ~va_page:high = None)

(* ------------------------------------------------------------------ *)
(* Attack scenarios (Fig. 5 + shallow copy)                            *)

let test_attack_scenarios () =
  List.iter
    (fun s ->
      match Attacks.run s with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Attacks.all

let () =
  Alcotest.run "security"
    [
      ( "transitions",
        [
          Alcotest.test_case "os memory roundtrip" `Quick test_os_memory_roundtrip;
          Alcotest.test_case "os cannot touch secure" `Quick test_os_cannot_touch_secure;
          Alcotest.test_case "enclave hypercalls disabled" `Quick
            test_hypercalls_from_enclave_disabled;
          Alcotest.test_case "enter/exit context switch" `Quick
            test_enter_exit_context_switch;
          Alcotest.test_case "enter requires initialized" `Quick
            test_enter_requires_initialized;
          Alcotest.test_case "enclave memory isolation" `Quick
            test_enclave_memory_isolation;
          Alcotest.test_case "mbuf oracle semantics" `Quick test_mbuf_oracle_semantics;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "stale entry attack (flush vs no-flush)" `Quick test_stale_tlb;
          Alcotest.test_case "tagging isolates principals" `Quick test_tlb_tagging;
          Alcotest.test_case "unsigned VA boundary" `Quick test_tlb_unsigned_boundary;
        ] );
      ( "eremove",
        [
          Alcotest.test_case "lifecycle" `Quick test_remove_page_lifecycle;
          Alcotest.test_case "scrubbing" `Quick test_remove_page_scrubs;
          Alcotest.test_case "wrong owner" `Quick test_remove_page_wrong_owner;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "at boot" `Quick test_invariants_at_boot;
          Alcotest.test_case "after lifecycle" `Quick test_invariants_after_lifecycle;
          Alcotest.test_case "on random traces" `Quick test_invariants_on_traces;
          Alcotest.test_case "preserved by battery" `Quick
            test_invariants_preserved_by_battery;
        ] );
      ( "observation",
        [
          Alcotest.test_case "components" `Quick test_observation_components;
          Alcotest.test_case "secret perturbation invisible" `Quick
            test_perturbation_invisible;
          Alcotest.test_case "store visibility" `Quick test_store_visibility;
        ] );
      ( "noninterference",
        [
          Alcotest.test_case "lemmas 5.2-5.4" `Slow test_noninterference_lemmas;
          Alcotest.test_case "theorem 5.1 traces" `Slow test_trace_noninterference;
          Alcotest.test_case "alias breaks integrity" `Quick test_alias_breaks_integrity;
        ] );
      ("attacks", [ Alcotest.test_case "fig5 + shallow copy" `Quick test_attack_scenarios ]);
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hypercalls_transactional;
            prop_enter_exit_roundtrip;
            prop_loads_are_read_only;
            prop_tlb_flush_principal_exact;
            prop_tlb_unsigned_va_order;
            prop_precondition_agrees_with_step;
          ] );
    ]

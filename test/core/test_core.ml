(* Tests for the MIRVerif framework: specs, layers, the refinement
   checker's verdict semantics, invariants, reports. *)

module Spec = Mirverif.Spec
module Layer = Mirverif.Layer
module Refine = Mirverif.Refine
module Invariant = Mirverif.Invariant
module Report = Mirverif.Report

let u64 = Mir.Value.u64

(* A tiny abstract state: one counter. *)
type abs = int

let bump_spec : abs Spec.t =
  Spec.make "bump" (fun abs args ->
      match args with
      | [ Mir.Value.Int (n, _) ] ->
          if Int64.compare n 100L > 0 then Error "precondition: n <= 100"
          else Ok (abs + Int64.to_int n, u64 (Int64.of_int (abs + Int64.to_int n)))
      | _ -> Error "bump expects one integer")

let get_spec : abs Spec.t =
  Spec.make "get" (fun abs args ->
      match args with
      | [] -> Ok (abs, u64 (Int64.of_int abs))
      | _ -> Error "get expects no arguments")

(* MIR bodies implementing them on top of each other. *)
open Mir.Builder

(* fn bump(n) -> u64: correct implementation via the 'get' primitive. *)
let body_bump ~bug =
  let b =
    create ~name:"bump"
      ~params:[ ("_1", Mir.Ty.Int Mir.Ty.U64, Mir.Syntax.Ktemp) ]
      ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
  in
  let cur = temp b ~name:"cur" (Mir.Ty.Int Mir.Ty.U64) in
  let next = fresh_block b in
  terminate b (Mir.Syntax.Call { dest = pvar cur; func = "get"; args = []; target = Some next });
  switch_to b next;
  assign_var b "_0"
    (Mir.Syntax.Binary
       (Mir.Syntax.Add, copy cur, if bug then cu64 1 else copy "_1"));
  (* the abstract effect: set the counter through set_counter *)
  let done_ = fresh_block b in
  terminate b
    (Mir.Syntax.Call
       {
         dest = pvar (temp b Mir.Ty.Unit);
         func = "set_counter";
         args = [ copy "_0" ];
         target = Some done_;
       });
  switch_to b done_;
  terminate b Mir.Syntax.Return;
  finish b

let set_counter_spec : abs Spec.t =
  Spec.make "set_counter" (fun _abs args ->
      match args with
      | [ Mir.Value.Int (v, _) ] -> Ok (Int64.to_int v, Mir.Value.Unit)
      | _ -> Error "set_counter expects one integer")

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)

let test_spec_pure () =
  let s = Spec.pure "double" (fun args ->
      match args with
      | [ Mir.Value.Int (n, _) ] -> Ok (u64 (Int64.mul 2L n))
      | _ -> Error "one int")
  in
  match Spec.apply s 7 [ u64 21L ] with
  | Ok (abs, v) ->
      Alcotest.(check int) "state unchanged" 7 abs;
      Alcotest.(check bool) "value" true (Mir.Value.equal v (u64 42L))
  | Error e -> Alcotest.fail e

let test_spec_to_prim () =
  let p = Spec.to_prim bump_spec in
  Alcotest.(check string) "name" "bump" p.Mir.Interp.prim_name;
  match p.Mir.Interp.prim_exec 1 [ u64 2L ] with
  | Ok (abs, _) -> Alcotest.(check int) "state" 3 abs
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Layer                                                               *)

let stack : abs Layer.stack =
  [
    Layer.make ~name:"bottom" ~exports:[ get_spec; set_counter_spec ] ~code:[];
    Layer.make ~name:"middle" ~exports:[ bump_spec ] ~code:[ body_bump ~bug:false ];
  ]

let test_layer_interface_below () =
  let below = Layer.interface_below stack ~layer:"middle" in
  Alcotest.(check (list string)) "bottom exports visible" [ "get"; "set_counter" ]
    (List.sort String.compare (List.map (fun (s : abs Spec.t) -> s.Spec.name) below));
  let below_bottom = Layer.interface_below stack ~layer:"bottom" in
  Alcotest.(check int) "nothing below bottom" 0 (List.length below_bottom)

let test_layer_overlay_shadowing () =
  let v1 = Spec.pure "f" (fun _ -> Ok (u64 1L)) in
  let v2 = Spec.pure "f" (fun _ -> Ok (u64 2L)) in
  let stack =
    [
      Layer.make ~name:"low" ~exports:[ v1 ] ~code:[];
      Layer.make ~name:"high" ~exports:[ v2 ] ~code:[];
    ]
  in
  let env = Layer.env_on_top stack in
  let prims = Mir.Interp.env_prims env in
  Alcotest.(check int) "one f after overlay" 1 (List.length prims);
  match (List.hd prims).Mir.Interp.prim_exec 0 [] with
  | Ok (_, v) ->
      Alcotest.(check bool) "higher layer wins" true (Mir.Value.equal v (u64 2L))
  | Error e -> Alcotest.fail e

let test_layer_stratification () =
  Alcotest.(check int) "clean stack" 0 (List.length (Layer.check_stratified stack));
  (* a body calling an unknown/higher function is flagged *)
  let bad_body =
    let b = create ~name:"bad" ~params:[] ~ret_ty:Mir.Ty.Unit in
    let next = fresh_block b in
    terminate b
      (Mir.Syntax.Call
         { dest = pvar (temp b Mir.Ty.Unit); func = "mystery"; args = []; target = Some next });
    switch_to b next;
    terminate b Mir.Syntax.Return;
    finish b
  in
  let bad_stack = [ Layer.make ~name:"only" ~exports:[] ~code:[ bad_body ] ] in
  let issues = Layer.check_stratified bad_stack in
  Alcotest.(check int) "upcall flagged" 1 (List.length issues);
  Alcotest.(check string) "callee named" "mystery" (List.hd issues).Layer.callee

(* ------------------------------------------------------------------ *)
(* Refine: verdict semantics                                           *)

let env_for_middle = Layer.env_for stack ~layer:"middle"

let test_refine_pass () =
  let check =
    Refine.check ~fn:"bump" ~spec:bump_spec ~eq:(Refine.equiv Int.equal)
      [ Refine.case 0 [ u64 5L ]; Refine.case 10 [ u64 7L ]; Refine.case 3 [ u64 0L ] ]
  in
  let r = Refine.run env_for_middle check in
  Alcotest.(check bool) "all pass" true (Report.ok r);
  Alcotest.(check int) "3 cases" 3 r.Report.passed

let test_refine_skip_on_precondition () =
  let check =
    Refine.check ~fn:"bump" ~spec:bump_spec ~eq:(Refine.equiv Int.equal)
      [ Refine.case 0 [ u64 1000L ] (* spec undefined: n > 100 *) ]
  in
  let r = Refine.run env_for_middle check in
  Alcotest.(check int) "skipped" 1 r.Report.skipped;
  Alcotest.(check bool) "not a failure" true (Report.ok r)

let test_refine_catches_wrong_code () =
  let buggy_env =
    Mir.Interp.env
      ~prims:(List.map Spec.to_prim [ get_spec; set_counter_spec ])
      (Mir.Syntax.program_of_bodies [ body_bump ~bug:true ])
  in
  let check =
    Refine.check ~fn:"bump" ~spec:bump_spec ~eq:(Refine.equiv Int.equal)
      [ Refine.case 0 [ u64 5L ] ]
  in
  let r = Refine.run buggy_env check in
  Alcotest.(check bool) "bug caught" false (Report.ok r)

let test_refine_catches_faulting_code () =
  let faulty =
    let b = create ~name:"bump" ~params:[ ("_1", Mir.Ty.Int Mir.Ty.U64, Mir.Syntax.Ktemp) ]
        ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
    in
    terminate b Mir.Syntax.Unreachable;
    finish b
  in
  let env = Mir.Interp.env ~prims:[] (Mir.Syntax.program_of_bodies [ faulty ]) in
  let check =
    Refine.check ~fn:"bump" ~spec:bump_spec ~eq:(Refine.equiv Int.equal)
      [ Refine.case 0 [ u64 5L ] ]
  in
  let r = Refine.run env check in
  Alcotest.(check bool) "fault is a failure" false (Report.ok r);
  Alcotest.(check bool) "reason mentions fault" true
    (match Report.failures r with
    | [ f ] ->
        let s = f.Report.reason in
        let sub = "faulted" in
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
    | _ -> false)

let test_refine_spec_args_and_mem () =
  (* code reads through a pointer into pre-set memory; the spec gets
     the pointee by value *)
  let read_ptr =
    let b = create ~name:"read_ptr"
        ~params:[ ("_1", Mir.Ty.Ref (Mir.Ty.Int Mir.Ty.U64), Mir.Syntax.Ktemp) ]
        ~ret_ty:(Mir.Ty.Int Mir.Ty.U64)
    in
    assign_var b "_0" (Mir.Syntax.Use (Mir.Syntax.Copy (pderef (pvar "_1"))));
    terminate b Mir.Syntax.Return;
    finish b
  in
  let spec =
    Spec.pure "read_ptr" (fun args ->
        match args with [ v ] -> Ok v | _ -> Error "one value")
  in
  let env = Mir.Interp.env ~prims:[] (Mir.Syntax.program_of_bodies [ read_ptr ]) in
  let mem = Mir.Mem.define (Mir.Path.Global "obj") (u64 99L) Mir.Mem.empty in
  let check =
    Refine.check ~fn:"read_ptr" ~spec ~eq:(Refine.equiv (fun _ _ -> true))
      [
        Refine.case ~spec_args:[ u64 99L ] ~mem 0
          [ Mir.Value.ptr_path (Mir.Path.global "obj") ];
      ]
  in
  let r = Refine.run env check in
  Alcotest.(check bool) "pointer/value case passes" true (Report.ok r)

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)

let test_simulate () =
  (* low state: int; high state: int64; R: equal values *)
  let lo = Spec.make "inc" (fun abs args ->
      match args with [ _ ] -> Ok (abs + 1, u64 (Int64.of_int (abs + 1))) | _ -> Error "x")
  in
  let hi = Spec.make "inc" (fun abs args ->
      match args with [ _ ] -> Ok (Int64.add abs 1L, u64 (Int64.add abs 1L)) | _ -> Error "x")
  in
  let sim =
    {
      Refine.sim_name = "inc";
      lo;
      hi;
      relate = (fun l h -> Int64.equal (Int64.of_int l) h);
      ret_rel =
        (fun vl vh ->
          match Mir.Value.retag vl with
          | Ok vl' -> Mir.Value.equal vl' vh
          | Error _ -> false);
    }
  in
  let r = Refine.simulate sim ~cases:[ ("c0", 4, 4L, [ u64 0L ]) ] in
  Alcotest.(check bool) "simulation holds" true (Report.ok r);
  (* a broken relation is reported *)
  let r2 = Refine.simulate sim ~cases:[ ("bad", 4, 9L, [ u64 0L ]) ] in
  Alcotest.(check bool) "unrelated initial states flagged" false (Report.ok r2)

(* ------------------------------------------------------------------ *)
(* Invariant                                                           *)

let inv_nonneg = Invariant.of_pred "non-negative" (fun abs -> abs >= 0)
let inv_small = Invariant.make "small" (fun abs ->
    if abs <= 10 then Ok () else Error (Printf.sprintf "%d > 10" abs))

let test_invariant_check_all () =
  (match Invariant.check_all [ inv_nonneg; inv_small ] 5 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Invariant.check_all [ inv_nonneg; inv_small ] 50 with
  | Ok () -> Alcotest.fail "should violate 'small'"
  | Error msg ->
      Alcotest.(check bool) "names the invariant" true
        (String.length msg >= 5 && String.sub msg 0 5 = "small")

let test_invariant_preserved () =
  let steps =
    [
      Invariant.step "incr" (fun abs -> if abs < 10 then Ok (abs + 1) else Error "cap");
      Invariant.step "reset" (fun _ -> Ok 0);
      Invariant.step "breaker" (fun abs -> if abs = 7 then Ok 99 else Error "disabled");
    ]
  in
  let good =
    Invariant.preserved ~invariants:[ inv_nonneg; inv_small ]
      ~steps:(List.filteri (fun i _ -> i < 2) steps)
      ~states:[ ("s0", 0); ("s5", 5); ("s10", 10); ("sbad", 42) ]
  in
  Alcotest.(check bool) "good steps preserve" true (Report.ok good);
  (* state 42 violates up front: skipped, not failed *)
  Alcotest.(check bool) "unreachable state skipped" true (good.Report.skipped > 0);
  let bad =
    Invariant.preserved ~invariants:[ inv_nonneg; inv_small ] ~steps
      ~states:[ ("s7", 7) ]
  in
  Alcotest.(check bool) "breaker caught" false (Report.ok bad)

let test_invariant_establishes () =
  let r = Invariant.establishes ~invariants:[ inv_nonneg ] ~init:[ ("a", 0); ("b", -1) ] in
  Alcotest.(check int) "one failure" 1 (Report.failure_count r)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let test_report_merge () =
  let a = Report.add_pass (Report.add_skip (Report.empty "a")) in
  let b = Report.add_failure (Report.empty "b") ~case:"c" ~reason:"r" in
  let m = Report.merge "m" [ a; b ] in
  Alcotest.(check int) "total" 3 m.Report.total;
  Alcotest.(check int) "passed" 1 m.Report.passed;
  Alcotest.(check int) "skipped" 1 m.Report.skipped;
  Alcotest.(check int) "failures" 1 (Report.failure_count m);
  Alcotest.(check bool) "not ok" false (Report.ok m)

let test_report_failure_order () =
  (* failures must come back in the order they were added, across
     both accumulation and merge *)
  let add r i =
    Report.add_failure r ~case:(Printf.sprintf "c%d" i) ~reason:"r"
  in
  let a = List.fold_left add (Report.empty "a") [ 0; 1; 2 ] in
  let b = List.fold_left add (Report.empty "b") [ 3; 4 ] in
  let cases r = List.map (fun f -> f.Report.case) (Report.failures r) in
  Alcotest.(check (list string)) "order preserved" [ "c0"; "c1"; "c2" ] (cases a);
  let m = Report.merge "m" [ a; b ] in
  Alcotest.(check (list string))
    "merge keeps argument order" [ "c0"; "c1"; "c2"; "c3"; "c4" ] (cases m)

let test_report_merge_by_name () =
  let r name = Report.add_pass (Report.empty name) in
  let merged = Report.merge_by_name [ r "x"; r "y"; r "x"; r "z"; r "y" ] in
  Alcotest.(check (list string))
    "first-occurrence order, one line per name" [ "x"; "y"; "z" ]
    (List.map (fun (m : Report.t) -> m.Report.name) merged);
  Alcotest.(check (list int)) "totals folded" [ 2; 2; 1 ]
    (List.map (fun (m : Report.t) -> m.Report.total) merged)

let () =
  Alcotest.run "core"
    [
      ( "spec",
        [
          Alcotest.test_case "pure" `Quick test_spec_pure;
          Alcotest.test_case "to_prim" `Quick test_spec_to_prim;
        ] );
      ( "layer",
        [
          Alcotest.test_case "interface below" `Quick test_layer_interface_below;
          Alcotest.test_case "overlay shadowing" `Quick test_layer_overlay_shadowing;
          Alcotest.test_case "stratification" `Quick test_layer_stratification;
        ] );
      ( "refine",
        [
          Alcotest.test_case "pass" `Quick test_refine_pass;
          Alcotest.test_case "skip on precondition" `Quick test_refine_skip_on_precondition;
          Alcotest.test_case "catches wrong code" `Quick test_refine_catches_wrong_code;
          Alcotest.test_case "catches faulting code" `Quick test_refine_catches_faulting_code;
          Alcotest.test_case "spec_args and mem" `Quick test_refine_spec_args_and_mem;
          Alcotest.test_case "simulation" `Quick test_simulate;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "check_all" `Quick test_invariant_check_all;
          Alcotest.test_case "preserved" `Quick test_invariant_preserved;
          Alcotest.test_case "establishes" `Quick test_invariant_establishes;
        ] );
      ( "report",
        [
          Alcotest.test_case "merge" `Quick test_report_merge;
          Alcotest.test_case "failure order" `Quick test_report_failure_order;
          Alcotest.test_case "merge_by_name" `Quick test_report_merge_by_name;
        ] );
    ]

(* Tests for the HyperEnclave substrate: geometry, entries, flat and
   tree page tables, the refinement relation, boot and hypercalls. *)

open Hyperenclave
module Word = Mir.Word

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (msg : string) -> msg

let tiny = Geometry.tiny
let tiny_layout = Layout.default tiny
let page = Geometry.page_size tiny
let pageL = Int64.of_int page

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)

let test_geometry_constants () =
  Alcotest.(check int) "x86 entries" 512 (Geometry.entries_per_table Geometry.x86_64);
  Alcotest.(check int) "x86 page" 4096 (Geometry.page_size Geometry.x86_64);
  Alcotest.(check int) "x86 va bits" 48 (Geometry.va_bits Geometry.x86_64);
  Alcotest.(check int) "tiny entries" 4 (Geometry.entries_per_table tiny);
  Alcotest.(check int) "tiny page" 32 (Geometry.page_size tiny);
  Alcotest.(check int) "tiny va bits" 9 (Geometry.va_bits tiny)

let test_geometry_va_index () =
  (* x86-64: va = l4 idx 1, l3 idx 2, l2 idx 3, l1 idx 4, offset 5 *)
  let va =
    Int64.logor
      (Int64.logor
         (Int64.shift_left 1L (12 + 27))
         (Int64.shift_left 2L (12 + 18)))
      (Int64.logor
         (Int64.logor (Int64.shift_left 3L (12 + 9)) (Int64.shift_left 4L 12))
         5L)
  in
  let g = Geometry.x86_64 in
  Alcotest.(check int) "l4" 1 (Geometry.va_index g ~level:4 va);
  Alcotest.(check int) "l3" 2 (Geometry.va_index g ~level:3 va);
  Alcotest.(check int) "l2" 3 (Geometry.va_index g ~level:2 va);
  Alcotest.(check int) "l1" 4 (Geometry.va_index g ~level:1 va);
  Alcotest.(check int64) "offset" 5L (Geometry.page_offset g va)

let test_geometry_make_validation () =
  (match Geometry.make ~levels:0 ~index_bits:9 ~fb_present:0 ~fb_write:1 ~fb_user:2 ~fb_huge:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "0 levels accepted");
  (match Geometry.make ~levels:4 ~index_bits:9 ~fb_present:0 ~fb_write:0 ~fb_user:2 ~fb_huge:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate flag bits accepted");
  match Geometry.make ~levels:4 ~index_bits:9 ~fb_present:0 ~fb_write:1 ~fb_user:2 ~fb_huge:12 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flag bit in address field accepted"

(* ------------------------------------------------------------------ *)
(* Flags / Pte                                                         *)

let prop_flags_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"flags encode/decode roundtrip"
    (QCheck2.Gen.oneofl (List.concat_map (fun g -> List.map (fun f -> (g, f)) Flags.all)
                           [ Geometry.x86_64; tiny ]))
    (fun (g, f) -> Flags.equal f (Flags.decode g (Flags.encode g f)))

let prop_pte_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"pte make/addr/flags roundtrip"
    QCheck2.Gen.(pair ui64 (oneofl Flags.all))
    (fun (raw, f) ->
      let g = Geometry.x86_64 in
      (* page-aligned pa within the 57-bit space *)
      let pa = Word.shift_left Word.W64 (Word.extract raw ~lo:12 ~len:45) 12 in
      let e = Pte.make g ~pa f in
      Word.equal (Pte.addr g e) pa && Flags.equal (Pte.flags g e) f)

let test_pte_flag_bits () =
  let g = Geometry.x86_64 in
  let e = Pte.make g ~pa:0x1000L Flags.user_rw in
  Alcotest.(check bool) "present bit 0" true (Word.bit e 0);
  Alcotest.(check bool) "write bit 1" true (Word.bit e 1);
  Alcotest.(check bool) "user bit 2" true (Word.bit e 2);
  Alcotest.(check bool) "huge bit 7 clear" false (Word.bit e 7);
  Alcotest.(check bool) "addr" true (Word.equal (Pte.addr g e) 0x1000L);
  let h = Pte.make g ~pa:0x20_0000L (Flags.with_huge Flags.present_rw) in
  Alcotest.(check bool) "huge bit 7" true (Word.bit h 7)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let test_layout_regions () =
  let l = tiny_layout in
  Alcotest.(check bool) "addr 0 normal" true
    (Layout.region_equal (Layout.region_of l 0L) Layout.Normal);
  Alcotest.(check bool) "mbuf detected" true
    (Layout.region_equal (Layout.region_of l l.Layout.mbuf_base) Layout.Mbuf);
  Alcotest.(check bool) "frame area" true
    (Layout.region_equal (Layout.region_of l l.Layout.frame_base) Layout.Frame_area);
  Alcotest.(check bool) "epc" true
    (Layout.region_equal (Layout.region_of l l.Layout.epc_base) Layout.Epc);
  Alcotest.(check bool) "outside" true
    (Layout.region_equal (Layout.region_of l (Layout.phys_limit l)) Layout.Outside);
  Alcotest.(check bool) "secure epc" true (Layout.in_secure l l.Layout.epc_base);
  Alcotest.(check bool) "mbuf not secure" false (Layout.in_secure l l.Layout.mbuf_base)

let test_layout_frame_index_inverse () =
  let l = tiny_layout in
  for i = 0 to l.Layout.frame_count - 1 do
    match Layout.frame_index l (Layout.frame_addr l i) with
    | Some j -> Alcotest.(check int) "frame roundtrip" i j
    | None -> Alcotest.failf "frame %d not recognized" i
  done;
  Alcotest.(check (option int)) "unaligned rejected" None
    (Layout.frame_index l (Int64.add l.Layout.frame_base 8L))

(* Sign-boundary regression: addresses at and above
   0x8000_0000_0000_0000 have the Int64 sign bit set.  A signed
   comparison or division anywhere under [region_of] /
   [frame_index] / [epc_page_index] would order the upper half of the
   address space below every region base (or produce a negative
   index); unsigned arithmetic must classify them as far outside. *)
let test_layout_sign_boundary () =
  let l = tiny_layout in
  List.iter
    (fun addr ->
      Alcotest.(check bool)
        (Printf.sprintf "0x%Lx is outside every region" addr)
        true
        (Layout.region_equal (Layout.region_of l addr) Layout.Outside);
      Alcotest.(check (option int))
        (Printf.sprintf "0x%Lx has no frame index" addr)
        None (Layout.frame_index l addr);
      Alcotest.(check (option int))
        (Printf.sprintf "0x%Lx has no epc index" addr)
        None (Layout.epc_page_index l addr);
      Alcotest.(check bool)
        (Printf.sprintf "0x%Lx is not secure" addr)
        false (Layout.in_secure l addr))
    [ 0x8000_0000_0000_0000L; 0xFFFF_FFFF_FFFF_F000L; 0xFFFF_FFFF_FFFF_FFFFL ];
  (* and the epc index arithmetic round-trips end-to-end, last page
     included, mirroring the frame-area check above *)
  for i = 0 to l.Layout.epc_pages - 1 do
    Alcotest.(check (option int)) "epc roundtrip" (Some i)
      (Layout.epc_page_index l (Layout.epc_page_addr l i))
  done

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)

let test_phys_mem_rw () =
  let m = Phys_mem.create ~limit:0x1000L in
  Alcotest.(check int64) "reads zero" 0L (ok "read" (Phys_mem.read64 m 0x10L));
  let m = ok "write" (Phys_mem.write64 m 0x10L 0xABCDL) in
  Alcotest.(check int64) "written" 0xABCDL (ok "read" (Phys_mem.read64 m 0x10L));
  let _ = err "unaligned" (Phys_mem.read64 m 0x11L) in
  let _ = err "oob" (Phys_mem.read64 m 0x1000L) in
  let m2 = ok "zero" (Phys_mem.zero_range m 0x10L ~bytes_len:8) in
  Alcotest.(check int64) "zeroed" 0L (ok "read" (Phys_mem.read64 m2 0x10L));
  Alcotest.(check bool) "equal_range differs" false (Phys_mem.equal_range m m2 0x10L ~bytes_len:8);
  Alcotest.(check bool) "equal_range same elsewhere" true
    (Phys_mem.equal_range m m2 0x20L ~bytes_len:16)

let test_phys_mem_copy () =
  let m = Phys_mem.create ~limit:0x1000L in
  let m = ok "w1" (Phys_mem.write64 m 0x100L 1L) in
  let m = ok "w2" (Phys_mem.write64 m 0x108L 2L) in
  let m = ok "copy" (Phys_mem.copy_range m ~src:0x100L ~dst:0x200L ~bytes_len:16) in
  Alcotest.(check int64) "copied 1" 1L (ok "r" (Phys_mem.read64 m 0x200L));
  Alcotest.(check int64) "copied 2" 2L (ok "r" (Phys_mem.read64 m 0x208L))

(* ------------------------------------------------------------------ *)
(* Frame_alloc / Epcm                                                  *)

let test_frame_alloc () =
  let a = Frame_alloc.create ~nframes:3 in
  let a, f0 = ok "alloc" (Frame_alloc.alloc a) in
  let a, f1 = ok "alloc" (Frame_alloc.alloc a) in
  Alcotest.(check (pair int int)) "lowest first" (0, 1) (f0, f1);
  let a = ok "free" (Frame_alloc.free a 0) in
  let a, f2 = ok "alloc" (Frame_alloc.alloc a) in
  Alcotest.(check int) "reuses lowest" 0 f2;
  let _ = err "double free" (Frame_alloc.free a 1 |> fun r -> Result.bind r (fun a -> Frame_alloc.free a 1)) in
  let a, f3 = ok "alloc" (Frame_alloc.alloc a) in
  Alcotest.(check int) "last frame" 2 f3;
  let _ = err "exhausted" (Frame_alloc.alloc a) in
  ()

let test_frame_alloc_error_paths () =
  let a = Frame_alloc.create ~nframes:5 in
  (* frees that must fail leave the allocator observably unchanged *)
  let msg = err "free of never-allocated frame" (Frame_alloc.free a 3) in
  Alcotest.(check bool) "mentions the frame" true (contains msg "3");
  let _ = err "out-of-range free" (Frame_alloc.free a 5) in
  let _ = err "negative free" (Frame_alloc.free a (-1)) in
  let a, f = ok "alloc" (Frame_alloc.alloc a) in
  let a' = ok "free" (Frame_alloc.free a f) in
  let _ = err "double free" (Frame_alloc.free a' f) in
  Alcotest.(check int) "error paths allocated nothing" 1 (Frame_alloc.allocated_count a)

let test_frame_alloc_bitmap_words () =
  let a = Frame_alloc.create ~nframes:5 in
  Alcotest.(check int) "one word for 5 frames" 1 (Frame_alloc.bitmap_words a);
  let w = ok "bitmap_word" (Frame_alloc.bitmap_word a 0) in
  Alcotest.(check int64) "fresh bitmap empty" 0L w;
  let _ = err "word index out of range" (Frame_alloc.bitmap_word a 1) in
  (* bit 5 is the first bit beyond nframes=5: must be rejected *)
  let _ = err "bits beyond nframes" (Frame_alloc.set_bitmap_word a 0 0x20L) in
  let _ = err "all bits set" (Frame_alloc.set_bitmap_word a 0 (-1L)) in
  let a = ok "valid word" (Frame_alloc.set_bitmap_word a 0 0x15L) in
  Alcotest.(check (list int)) "word round-trips to frames" [ 0; 2; 4 ]
    (Frame_alloc.allocated_list a);
  Alcotest.(check int64) "readback" 0x15L (ok "bitmap_word" (Frame_alloc.bitmap_word a 0))

let test_frame_alloc_exhaust_recover () =
  let a = ref (Frame_alloc.create ~nframes:8) in
  for i = 0 to 7 do
    let a', f = ok "alloc" (Frame_alloc.alloc !a) in
    Alcotest.(check int) "in order" i f;
    a := a'
  done;
  Alcotest.(check int) "pool drained" 0 (Frame_alloc.free_count !a);
  let _ = err "exhausted" (Frame_alloc.alloc !a) in
  let _ = err "still exhausted" (Frame_alloc.alloc !a) in
  (* freeing any frame makes exactly that frame allocatable again *)
  a := ok "free" (Frame_alloc.free !a 5);
  let a', f = ok "alloc after recover" (Frame_alloc.alloc !a) in
  Alcotest.(check int) "recovered frame" 5 f;
  let _ = err "exhausted again" (Frame_alloc.alloc a') in
  ()

let test_epcm () =
  let m = Epcm.create ~npages:4 in
  Alcotest.(check (option int)) "first free" (Some 0) (Epcm.find_free m);
  let m = ok "set" (Epcm.set m 0 (Epcm.Valid { eid = 7; va = 0x40L })) in
  let m = ok "set" (Epcm.set m 2 (Epcm.Valid { eid = 7; va = 0x60L })) in
  Alcotest.(check (option int)) "next free skips" (Some 1) (Epcm.find_free m);
  Alcotest.(check int) "valid count" 2 (Epcm.valid_count m);
  Alcotest.(check int) "pages of enclave" 2 (List.length (Epcm.pages_of_enclave m 7));
  Alcotest.(check int) "pages of other" 0 (List.length (Epcm.pages_of_enclave m 8));
  let _ = err "oob" (Epcm.get m 4) in
  ()

(* ------------------------------------------------------------------ *)
(* Pt_flat on the tiny geometry                                        *)

let fresh_pt () =
  let d = Absdata.create tiny_layout in
  let d, root = ok "create_table" (Pt_flat.create_table d) in
  (d, root)

let va_of_pages n = Int64.mul pageL (Int64.of_int n)

let test_pt_flat_map_query () =
  let d, root = fresh_pt () in
  let va = va_of_pages 5 and pa = tiny_layout.Layout.epc_base in
  Alcotest.(check (option (pair int64 string))) "unmapped" None
    (ok "query" (Pt_flat.query d ~root ~va)
    |> Option.map (fun (p, f) -> (p, Flags.to_string f)));
  let d = ok "map" (Pt_flat.map_page d ~root ~va ~pa Flags.user_rw) in
  (match ok "query" (Pt_flat.query d ~root ~va) with
  | Some (p, f) ->
      Alcotest.(check int64) "pa" pa p;
      Alcotest.(check string) "flags" "PWU-" (Flags.to_string f)
  | None -> Alcotest.fail "mapped page not found");
  (* translate includes the offset *)
  (match ok "translate" (Pt_flat.translate d ~root ~va:(Int64.add va 17L)) with
  | Some (p, _) -> Alcotest.(check int64) "translated" (Int64.add pa 17L) p
  | None -> Alcotest.fail "translate failed");
  (* unrelated va still unmapped *)
  Alcotest.(check bool) "other va unmapped" true
    (ok "query2" (Pt_flat.query d ~root ~va:(va_of_pages 6)) = None);
  let _ = err "double map" (Pt_flat.map_page d ~root ~va ~pa Flags.user_rw) in
  let d = ok "unmap" (Pt_flat.unmap_page d ~root ~va) in
  Alcotest.(check bool) "unmapped again" true (ok "query3" (Pt_flat.query d ~root ~va) = None);
  let _ = err "double unmap" (Pt_flat.unmap_page d ~root ~va) in
  ()

let test_pt_flat_alignment_errors () =
  let d, root = fresh_pt () in
  let _ = err "va unaligned" (Pt_flat.map_page d ~root ~va:1L ~pa:0L Flags.user_rw) in
  let _ = err "pa unaligned" (Pt_flat.map_page d ~root ~va:0L ~pa:1L Flags.user_rw) in
  let _ =
    err "va out of range"
      (Pt_flat.map_page d ~root ~va:(Geometry.va_limit tiny) ~pa:0L Flags.user_rw)
  in
  let _ =
    err "non-present flags"
      (Pt_flat.map_page d ~root ~va:0L ~pa:0L Flags.none)
  in
  ()

let test_pt_flat_huge () =
  let d, root = fresh_pt () in
  (* tiny level 2 spans 4 pages *)
  let va = 0L and pa = tiny_layout.Layout.normal_base in
  let d = ok "map huge" (Pt_flat.map_huge d ~root ~va ~pa ~level:2 Flags.user_r) in
  (match ok "q" (Pt_flat.query d ~root ~va:(va_of_pages 3)) with
  | Some (p, f) ->
      Alcotest.(check int64) "third page of span" (va_of_pages 3) p;
      Alcotest.(check bool) "huge flag" true f.Flags.huge
  | None -> Alcotest.fail "huge mapping missing");
  let ms = ok "mappings" (Pt_flat.mappings d ~root) in
  Alcotest.(check int) "expands to 4 pages" 4 (List.length ms);
  (* unmap clears the whole span *)
  let d = ok "unmap huge" (Pt_flat.unmap_page d ~root ~va:(va_of_pages 2)) in
  Alcotest.(check int) "all gone" 0 (List.length (ok "m" (Pt_flat.mappings d ~root)))

let test_pt_flat_malformed_rejected () =
  (* Simulate the shallow-copy bug: root entry pointing into normal
     (guest-controlled) memory.  Every walk must fail. *)
  let d, root = fresh_pt () in
  let evil = Pte.make tiny ~pa:tiny_layout.Layout.normal_base Flags.user_rw in
  let d = ok "write evil entry" (Pt_flat.write_entry d ~frame:root ~index:0 evil) in
  let msg = err "walk rejects" (Pt_flat.query d ~root ~va:0L) in
  Alcotest.(check bool) "mentions frame area" true
    (contains msg "frame area");
  let _ = err "table_frames rejects" (Pt_flat.table_frames d ~root) in
  ()

let test_pt_flat_table_frames_tree () =
  let d, root = fresh_pt () in
  let d = ok "map" (Pt_flat.map_page d ~root ~va:0L ~pa:0L Flags.user_rw) in
  let frames = ok "frames" (Pt_flat.table_frames d ~root) in
  Alcotest.(check int) "root + one L1" 2 (List.length frames);
  (* Force sharing: point entry 1 at the same L1 table as entry 0. *)
  let l1 = List.nth frames 1 in
  let shared =
    Pte.make tiny ~pa:(Layout.frame_addr tiny_layout l1) Flags.user_rw
  in
  let d = ok "write" (Pt_flat.write_entry d ~frame:root ~index:1 shared) in
  let msg = err "sharing detected" (Pt_flat.table_frames d ~root) in
  Alcotest.(check bool) "mentions tree" true (contains msg "tree")

(* ------------------------------------------------------------------ *)
(* Pt_tree mirror tests                                                *)

let fresh_tree () =
  let falloc = Frame_alloc.create ~nframes:tiny_layout.Layout.frame_count in
  ok "tree create" (Pt_tree.create tiny tiny_layout falloc)

let test_pt_tree_ops () =
  let st = fresh_tree () in
  let va = va_of_pages 7 and pa = tiny_layout.Layout.epc_base in
  let st = ok "map" (Pt_tree.map_page st ~va ~pa Flags.user_rw) in
  ok "wf" (Pt_tree.wf st);
  (match ok "query" (Pt_tree.query st ~va) with
  | Some (p, _) -> Alcotest.(check int64) "pa" pa p
  | None -> Alcotest.fail "mapping missing");
  let _ = err "double map" (Pt_tree.map_page st ~va ~pa Flags.user_rw) in
  let st = ok "unmap" (Pt_tree.unmap_page st ~va) in
  ok "wf" (Pt_tree.wf st);
  Alcotest.(check bool) "gone" true (ok "q" (Pt_tree.query st ~va) = None);
  let st = ok "huge" (Pt_tree.map_huge st ~va:0L ~pa:0L ~level:2 Flags.user_r) in
  ok "wf huge" (Pt_tree.wf st);
  Alcotest.(check int) "huge expands" 4 (List.length (Pt_tree.mappings st))

(* Regression: a corrupted state whose root is a terminal node (fault
   injection can produce one) must make unmap fail with a typed error,
   not bring the whole pass down with an assertion failure. *)
let test_pt_tree_unmap_term_root () =
  let st = fresh_tree () in
  let corrupt =
    { st with Pt_tree.root = Pt_tree.Term { pa = 0L; flags = Flags.user_rw } }
  in
  match Pt_tree.unmap_page corrupt ~va:0L with
  | Ok _ -> Alcotest.fail "unmap succeeded on a terminal root"
  | Error msg ->
      Alcotest.(check bool) "typed corruption error" true (contains msg "corrupt")

(* ------------------------------------------------------------------ *)
(* Refinement: flat simulates tree                                     *)

(* Operations applied in lock-step to both representations. *)
type op =
  | Map of int * int * Flags.t  (* va page, pa page, flags *)
  | Unmap of int
  | MapHuge of int * int

let pp_op = function
  | Map (v, p, f) -> Printf.sprintf "map %d->%d %s" v p (Flags.to_string f)
  | Unmap v -> Printf.sprintf "unmap %d" v
  | MapHuge (v, p) -> Printf.sprintf "maphuge %d->%d" v p

let gen_op =
  let open QCheck2.Gen in
  let vpages = 1 lsl (Geometry.va_bits tiny - tiny.Geometry.page_shift) in
  let ppages = 12 in
  frequency
    [
      ( 6,
        map3
          (fun v p f -> Map (v, p, f))
          (int_bound (vpages - 1))
          (int_bound (ppages - 1))
          (oneofl [ Flags.user_rw; Flags.user_r; Flags.present_rw ]) );
      (2, map (fun v -> Unmap v) (int_bound (vpages - 1)));
      ( 1,
        map2
          (fun v p -> MapHuge (v * 4, p * 4))
          (int_bound ((vpages / 4) - 1))
          (int_bound 2) );
    ]

let apply_flat (d, root) op =
  match op with
  | Map (v, p, f) ->
      Pt_flat.map_page d ~root ~va:(va_of_pages v) ~pa:(va_of_pages p) f
  | Unmap v -> Pt_flat.unmap_page d ~root ~va:(va_of_pages v)
  | MapHuge (v, p) ->
      Pt_flat.map_huge d ~root ~va:(va_of_pages v) ~pa:(va_of_pages p) ~level:2
        Flags.user_rw

let apply_tree st op =
  match op with
  | Map (v, p, f) -> Pt_tree.map_page st ~va:(va_of_pages v) ~pa:(va_of_pages p) f
  | Unmap v -> Pt_tree.unmap_page st ~va:(va_of_pages v)
  | MapHuge (v, p) ->
      Pt_tree.map_huge st ~va:(va_of_pages v) ~pa:(va_of_pages p) ~level:2
        Flags.user_rw

(* The paper's Sec. 4.1 simulation, as an executable property: both
   representations accept/reject the same operations, stay R-related,
   and answer queries identically. *)
let prop_flat_tree_simulation =
  QCheck2.Test.make ~count:200 ~name:"flat/tree simulation (R preserved)"
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 25) gen_op)
    (fun ops ->
      let d, root = fresh_pt () in
      let tree =
        match Pt_tree.create tiny tiny_layout (Absdata.create tiny_layout).Absdata.falloc with
        | Ok _ ->
            (* rebuild the tree from the flat side so ghosts line up *)
            ok "abstract" (Pt_refine.abstract d ~root)
        | Error m -> Alcotest.failf "tree create: %s" m
      in
      let rec go d tree = function
        | [] -> true
        | op :: rest -> (
            match (apply_flat (d, root) op, apply_tree tree op) with
            | Ok d', Ok tree' ->
                Pt_refine.relate d' ~root tree'
                && Result.is_ok (Pt_tree.wf tree')
                && (let vpages = 1 lsl (Geometry.va_bits tiny - tiny.Geometry.page_shift) in
                    let rec agree v =
                      v >= vpages
                      ||
                      let va = va_of_pages v in
                      let qf = ok "qf" (Pt_flat.query d' ~root ~va) in
                      let qt = ok "qt" (Pt_tree.query tree' ~va) in
                      (match (qf, qt) with
                      | None, None -> true
                      | Some (pf, ff), Some (pt, ft) ->
                          Word.equal pf pt && Flags.equal ff ft
                      | _ -> false)
                      && agree (v + 1)
                    in
                    agree 0)
                && go d' tree' rest
            | Error _, Error _ -> go d tree rest (* both reject: fine *)
            | Ok _, Error e ->
                Alcotest.failf "flat accepted %s but tree rejected: %s" (pp_op op) e
            | Error e, Ok _ ->
                Alcotest.failf "tree accepted %s but flat rejected: %s" (pp_op op) e)
      in
      go d tree ops)

let test_abstract_roundtrip () =
  let d, root = fresh_pt () in
  let d = ok "m1" (Pt_flat.map_page d ~root ~va:0L ~pa:(va_of_pages 3) Flags.user_rw) in
  let d = ok "m2" (Pt_flat.map_page d ~root ~va:(va_of_pages 9) ~pa:0L Flags.user_r) in
  let tree = ok "abstract" (Pt_refine.abstract d ~root) in
  Alcotest.(check bool) "related" true (Pt_refine.relate d ~root tree);
  ok "wf" (Pt_tree.wf tree);
  let mf = ok "flat mappings" (Pt_flat.mappings d ~root) in
  let mt = Pt_tree.mappings tree in
  Alcotest.(check int) "same count" (List.length mf) (List.length mt);
  List.iter2
    (fun (va1, pa1, f1) (va2, pa2, f2) ->
      Alcotest.(check int64) "va" va1 va2;
      Alcotest.(check int64) "pa" pa1 pa2;
      Alcotest.(check string) "flags" (Flags.to_string f1) (Flags.to_string f2))
    mf mt

let test_abstract_rejects_malformed () =
  let d, root = fresh_pt () in
  let evil = Pte.make tiny ~pa:tiny_layout.Layout.normal_base Flags.user_rw in
  let d = ok "corrupt" (Pt_flat.write_entry d ~frame:root ~index:2 evil) in
  let msg = err "abstract fails" (Pt_refine.abstract d ~root) in
  Alcotest.(check bool) "explains escape" true (contains msg "frame area")

(* ------------------------------------------------------------------ *)
(* Boot                                                                *)

let test_boot_identity () =
  let d = ok "boot" (Boot.boot tiny_layout) in
  let root = ok "root" (Boot.os_ept_root d) in
  (* every normal page maps identity *)
  for i = 0 to tiny_layout.Layout.normal_pages - 1 do
    let va = va_of_pages i in
    match ok "q" (Pt_flat.query d ~root ~va) with
    | Some (pa, f) ->
        Alcotest.(check int64) "identity" va pa;
        Alcotest.(check bool) "user" true f.Flags.user;
        Alcotest.(check bool) "writable" true f.Flags.write
    | None -> Alcotest.failf "normal page %d unmapped" i
  done;
  (* nothing in secure memory is mapped *)
  let ms = ok "mappings" (Pt_flat.mappings d ~root) in
  List.iter
    (fun (_, pa, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "pa %Ld not secure" pa)
        false
        (Layout.in_secure tiny_layout pa))
    ms;
  Alcotest.(check int) "exactly the normal pages" tiny_layout.Layout.normal_pages
    (List.length ms)

let test_boot_x86 () =
  let layout = Layout.default Geometry.x86_64 in
  let d = Boot.booted layout in
  let root = ok "root" (Boot.os_ept_root d) in
  (match ok "q0" (Pt_flat.query d ~root ~va:0L) with
  | Some (pa, _) -> Alcotest.(check int64) "first page identity" 0L pa
  | None -> Alcotest.fail "page 0 unmapped");
  let last = va_of_pages 0 in
  ignore last;
  let last_page =
    Int64.mul (Int64.of_int 4096) (Int64.of_int (layout.Layout.normal_pages - 1))
  in
  (match ok "qlast" (Pt_flat.query d ~root ~va:last_page) with
  | Some (pa, _) -> Alcotest.(check int64) "last page identity" last_page pa
  | None -> Alcotest.fail "last normal page unmapped");
  match ok "qsec" (Pt_flat.query d ~root ~va:layout.Layout.frame_base) with
  | None -> ()
  | Some _ -> Alcotest.fail "secure memory reachable through OS EPT"

(* ------------------------------------------------------------------ *)
(* Hypercalls                                                          *)

let booted () = Boot.booted tiny_layout

let create_default d =
  Hypercall.create d ~elrange_base:0L ~elrange_pages:2
    ~mbuf_va:(va_of_pages 8)

let test_hc_create () =
  let d = booted () in
  let o = create_default d in
  Alcotest.(check bool) "success" true (Hypercall.status_equal o.Hypercall.status Hypercall.Success);
  let e = ok "find" (Absdata.find_enclave o.Hypercall.d o.Hypercall.value) in
  Alcotest.(check bool) "created" true (Enclave.lifecycle_equal e.Enclave.state Enclave.Created);
  (* mbuf mapped in both tables *)
  let mb_va = va_of_pages 8 in
  (match ok "gpt" (Pt_flat.query o.Hypercall.d ~root:e.Enclave.gpt_root ~va:mb_va) with
  | Some (gpa, _) -> Alcotest.(check int64) "gpt identity" mb_va gpa
  | None -> Alcotest.fail "mbuf not in GPT");
  (match ok "ept" (Pt_flat.query o.Hypercall.d ~root:e.Enclave.ept_root ~va:mb_va) with
  | Some (hpa, _) ->
      Alcotest.(check int64) "ept window" tiny_layout.Layout.mbuf_base hpa
  | None -> Alcotest.fail "mbuf not in EPT");
  (* ELRANGE still unmapped *)
  Alcotest.(check bool) "elrange empty" true
    (ok "q" (Pt_flat.query o.Hypercall.d ~root:e.Enclave.ept_root ~va:0L) = None)

let test_hc_create_validation () =
  let d = booted () in
  let o = Hypercall.create d ~elrange_base:1L ~elrange_pages:2 ~mbuf_va:(va_of_pages 8) in
  Alcotest.(check bool) "unaligned elrange rejected" true
    (Hypercall.status_equal o.Hypercall.status Hypercall.Invalid_param);
  Alcotest.(check bool) "state unchanged" true (Absdata.equal d o.Hypercall.d);
  let o2 = Hypercall.create d ~elrange_base:0L ~elrange_pages:9 ~mbuf_va:(va_of_pages 8) in
  Alcotest.(check bool) "overlapping ranges rejected" true
    (Hypercall.status_equal o2.Hypercall.status Hypercall.Invalid_param);
  let o3 = Hypercall.create d ~elrange_base:0L ~elrange_pages:100 ~mbuf_va:(va_of_pages 8) in
  Alcotest.(check bool) "oversized elrange rejected" true
    (Hypercall.status_equal o3.Hypercall.status Hypercall.Invalid_param)

let test_hc_add_page () =
  let d = booted () in
  let o = create_default d in
  let eid = o.Hypercall.value in
  let d = o.Hypercall.d in
  let a = Hypercall.add_page d ~eid ~va:0L in
  Alcotest.(check bool) "add ok" true (Hypercall.status_equal a.Hypercall.status Hypercall.Success);
  let e = ok "find" (Absdata.find_enclave a.Hypercall.d eid) in
  (match ok "ept" (Pt_flat.query a.Hypercall.d ~root:e.Enclave.ept_root ~va:0L) with
  | Some (hpa, _) ->
      Alcotest.(check int64) "first epc page" tiny_layout.Layout.epc_base hpa
  | None -> Alcotest.fail "added page not in EPT");
  (match ok "epcm" (Epcm.get a.Hypercall.d.Absdata.epcm 0) with
  | Epcm.Valid { eid = owner; va } ->
      Alcotest.(check int) "owner" eid owner;
      Alcotest.(check int64) "va" 0L va
  | Epcm.Free -> Alcotest.fail "EPCM not updated");
  (* duplicate add rejected, state unchanged *)
  let a2 = Hypercall.add_page a.Hypercall.d ~eid ~va:0L in
  Alcotest.(check bool) "duplicate rejected" true
    (Hypercall.status_equal a2.Hypercall.status Hypercall.Invalid_param);
  Alcotest.(check bool) "transactional" true (Absdata.equal a.Hypercall.d a2.Hypercall.d);
  (* outside elrange rejected *)
  let a3 = Hypercall.add_page a.Hypercall.d ~eid ~va:(va_of_pages 5) in
  Alcotest.(check bool) "outside elrange" true
    (Hypercall.status_equal a3.Hypercall.status Hypercall.Invalid_param)

let test_hc_init_done () =
  let d = booted () in
  let o = create_default d in
  let eid = o.Hypercall.value in
  let i = Hypercall.init_done o.Hypercall.d ~eid in
  Alcotest.(check bool) "init ok" true (Hypercall.status_equal i.Hypercall.status Hypercall.Success);
  (* add after init rejected with Bad_state *)
  let a = Hypercall.add_page i.Hypercall.d ~eid ~va:0L in
  Alcotest.(check bool) "sealed" true (Hypercall.status_equal a.Hypercall.status Hypercall.Bad_state);
  (* double init rejected *)
  let i2 = Hypercall.init_done i.Hypercall.d ~eid in
  Alcotest.(check bool) "double init" true (Hypercall.status_equal i2.Hypercall.status Hypercall.Bad_state);
  (* unknown enclave *)
  let i3 = Hypercall.init_done i.Hypercall.d ~eid:99 in
  Alcotest.(check bool) "unknown eid" true
    (Hypercall.status_equal i3.Hypercall.status Hypercall.Invalid_param)

let test_status_roundtrip () =
  let all =
    [ Hypercall.Success; Hypercall.Invalid_param; Hypercall.No_memory;
      Hypercall.Bad_state ]
  in
  List.iter
    (fun s ->
      match Hypercall.status_of_code (Hypercall.status_code s) with
      | Some s' ->
          Alcotest.(check bool)
            (Format.asprintf "%a survives the round trip" Hypercall.pp_status s)
            true
            (Hypercall.status_equal s s')
      | None ->
          Alcotest.failf "%a: code not decodable" Hypercall.pp_status s)
    all;
  (* distinct statuses keep distinct codes *)
  let codes = List.map Hypercall.status_code all in
  Alcotest.(check int) "codes are distinct" (List.length all)
    (List.length (List.sort_uniq Int64.compare codes));
  (* words outside the status range decode to nothing *)
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "word %Ld is not a status" w)
        true
        (Option.is_none (Hypercall.status_of_code w)))
    [ 4L; 5L; -1L; 99L; Int64.max_int; Int64.min_int ]

let test_hc_epc_exhaustion () =
  let d = booted () in
  let o = Hypercall.create d ~elrange_base:0L ~elrange_pages:8 ~mbuf_va:(va_of_pages 8) in
  let eid = o.Hypercall.value in
  (* tiny layout has 8 EPC pages and elrange_pages=8: fill them all *)
  let rec fill d i =
    if i >= 8 then d
    else
      let a = Hypercall.add_page d ~eid ~va:(va_of_pages i) in
      Alcotest.(check bool) (Printf.sprintf "add %d ok" i) true
        (Hypercall.status_equal a.Hypercall.status Hypercall.Success);
      fill a.Hypercall.d (i + 1)
  in
  let d = fill o.Hypercall.d 0 in
  (* a second enclave cannot add a 9th page *)
  let o2 = Hypercall.create d ~elrange_base:0L ~elrange_pages:2 ~mbuf_va:(va_of_pages 8) in
  let a = Hypercall.add_page o2.Hypercall.d ~eid:o2.Hypercall.value ~va:0L in
  Alcotest.(check bool) "epc exhausted" true
    (Hypercall.status_equal a.Hypercall.status Hypercall.No_memory)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "hyperenclave"
    [
      ( "geometry",
        [
          Alcotest.test_case "constants" `Quick test_geometry_constants;
          Alcotest.test_case "va_index" `Quick test_geometry_va_index;
          Alcotest.test_case "validation" `Quick test_geometry_make_validation;
        ] );
      qsuite "flags-pte" [ prop_flags_roundtrip; prop_pte_roundtrip ];
      ("pte", [ Alcotest.test_case "x86 flag bits" `Quick test_pte_flag_bits ]);
      ( "layout",
        [
          Alcotest.test_case "regions" `Quick test_layout_regions;
          Alcotest.test_case "frame index inverse" `Quick test_layout_frame_index_inverse;
          Alcotest.test_case "sign boundary" `Quick test_layout_sign_boundary;
        ] );
      ( "phys-mem",
        [
          Alcotest.test_case "read/write" `Quick test_phys_mem_rw;
          Alcotest.test_case "copy" `Quick test_phys_mem_copy;
        ] );
      ( "allocators",
        [
          Alcotest.test_case "frame alloc" `Quick test_frame_alloc;
          Alcotest.test_case "frame alloc error paths" `Quick test_frame_alloc_error_paths;
          Alcotest.test_case "frame alloc bitmap words" `Quick test_frame_alloc_bitmap_words;
          Alcotest.test_case "frame alloc exhaust/recover" `Quick test_frame_alloc_exhaust_recover;
          Alcotest.test_case "epcm" `Quick test_epcm;
        ] );
      ( "pt-flat",
        [
          Alcotest.test_case "map/query/unmap" `Quick test_pt_flat_map_query;
          Alcotest.test_case "alignment errors" `Quick test_pt_flat_alignment_errors;
          Alcotest.test_case "huge pages" `Quick test_pt_flat_huge;
          Alcotest.test_case "malformed tables rejected" `Quick test_pt_flat_malformed_rejected;
          Alcotest.test_case "table frames form a tree" `Quick test_pt_flat_table_frames_tree;
        ] );
      ( "pt-tree",
        [
          Alcotest.test_case "ops" `Quick test_pt_tree_ops;
          Alcotest.test_case "unmap on terminal root" `Quick
            test_pt_tree_unmap_term_root;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "abstract roundtrip" `Quick test_abstract_roundtrip;
          Alcotest.test_case "abstract rejects malformed" `Quick test_abstract_rejects_malformed;
        ] );
      qsuite "refinement-props" [ prop_flat_tree_simulation ];
      ( "boot",
        [
          Alcotest.test_case "identity over normal memory" `Quick test_boot_identity;
          Alcotest.test_case "x86-64 geometry" `Quick test_boot_x86;
        ] );
      ( "hypercalls",
        [
          Alcotest.test_case "create" `Quick test_hc_create;
          Alcotest.test_case "create validation" `Quick test_hc_create_validation;
          Alcotest.test_case "add_page" `Quick test_hc_add_page;
          Alcotest.test_case "init_done" `Quick test_hc_init_done;
          Alcotest.test_case "status-code round trip" `Quick test_status_roundtrip;
          Alcotest.test_case "epc exhaustion" `Quick test_hc_epc_exhaustion;
        ] );
    ]

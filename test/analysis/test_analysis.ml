(* Tests for lib/analysis: the CFG/dataflow framework, one negative
   fixture per lint (each must fire), positive controls (clean bodies
   stay clean), lint selection, and the zero-findings gate over the
   seed 15-layer stack. *)

module Syn = Mir.Syntax
module B = Mir.Builder
module Lint = Analysis.Lint
module Pass = Analysis.Pass

let u64 = Mir.Ty.Int Mir.Ty.U64

let kinds_of findings = List.map (fun (f : Lint.finding) -> f.Lint.kind) findings

let analyze ?fn_layer ?(accessor = fun ~owner:_ ~callee:_ -> false)
    ?(lints = Lint.all) body =
  Pass.analyze { Pass.fn_layer; accessor; lints } body

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

(* bb0 reads a never-written temporary. *)
let fix_uninit () =
  let b = B.create ~name:"fix_uninit" ~params:[] ~ret_ty:u64 in
  let t = B.temp b u64 in
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* t is moved into u, then read again. *)
let fix_use_after_move () =
  let b = B.create ~name:"fix_moved" ~params:[] ~ret_ty:u64 in
  let t = B.temp b u64 in
  let u = B.temp b u64 in
  B.assign_var b t (Syn.Use (B.cu64 7));
  B.assign_var b u (Syn.Use (B.move t));
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* A handle of layer "FrameAlloc" is dereferenced in foreign code. *)
let fix_handle_deref () =
  let b = B.create ~name:"fix_deref" ~params:[] ~ret_ty:u64 in
  let h = B.temp b (Mir.Ty.Ref (Mir.Ty.Opaque "FrameAlloc")) in
  B.assign_var b Syn.return_var (Syn.Use (B.copy_place (B.pderef (B.pvar h))));
  B.terminate b Syn.Return;
  B.finish b

(* A handle is passed whole to some callee; whether that is a finding
   depends on the accessor relation, which the tests vary. *)
let fix_handle_passed () =
  let b = B.create ~name:"fix_passed" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let h = B.temp b (Mir.Ty.Ref (Mir.Ty.Opaque "FrameAlloc")) in
  let ret = B.fresh_block b in
  B.terminate b
    (Syn.Call
       {
         dest = B.pvar Syn.return_var;
         func = "leak_handle";
         args = [ B.copy h ];
         target = Some ret;
       });
  B.switch_to b ret;
  B.terminate b Syn.Return;
  B.finish b

(* Raw add in a body that elsewhere uses checked adds. *)
let fix_unchecked_add () =
  let b = B.create ~name:"fix_add" ~params:[] ~ret_ty:u64 in
  let x = B.temp b u64 in
  let y = B.temp b u64 in
  let pair = B.temp b (Mir.Ty.Tuple [ u64; Mir.Ty.Bool ]) in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b y (Syn.Use (B.cu64 2));
  B.assign_var b pair (Syn.Checked_binary (Syn.Add, B.copy x, B.copy y));
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy x, B.copy y));
  B.terminate b Syn.Return;
  B.finish b

(* Same raw add, but nothing checked anywhere: the unchecked
   compilation profile, exempt by design. *)
let fix_raw_add_only () =
  let b = B.create ~name:"fix_raw" ~params:[] ~ret_ty:u64 in
  let x = B.temp b u64 in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy x, B.cu64 2));
  B.terminate b Syn.Return;
  B.finish b

(* bb1 holds a real statement but nothing jumps to it; bb2 is an empty
   lowering artifact and must not be flagged. *)
let fix_unreachable ~artifact_only () =
  let b = B.create ~name:"fix_unreach" ~params:[] ~ret_ty:u64 in
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 0));
  B.terminate b Syn.Return;
  let dead = B.fresh_block b in
  B.switch_to b dead;
  if not artifact_only then
    B.assign_var b Syn.return_var (Syn.Use (B.cu64 9));
  B.terminate b (Syn.Goto 0);
  B.finish b

let clean_body () =
  let b = B.create ~name:"clean" ~params:[ ("x", u64, Syn.Klocal) ] ~ret_ty:u64 in
  let t = B.temp b u64 in
  B.assign_var b t (Syn.Binary (Syn.Add, B.copy "x", B.cu64 1));
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Framework                                                           *)

let test_cfg_diamond () =
  let b = B.create ~name:"diamond" ~params:[ ("c", Mir.Ty.Bool, Syn.Klocal) ] ~ret_ty:u64 in
  let bl = B.fresh_block b in
  let br = B.fresh_block b in
  let bj = B.fresh_block b in
  B.terminate b (Syn.Switch_int (B.copy "c", [ (0L, bl) ], br));
  B.switch_to b bl;
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 0));
  B.terminate b (Syn.Goto bj);
  B.switch_to b br;
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 1));
  B.terminate b (Syn.Goto bj);
  B.switch_to b bj;
  B.terminate b Syn.Return;
  let body = B.finish b in
  let succs = Analysis.Cfg.block_successors body in
  Alcotest.(check (list int)) "bb0 succs" [ bl; br ] succs.(0);
  Alcotest.(check (list int)) "join succs" [] succs.(bj);
  let preds = Analysis.Cfg.predecessors body in
  Alcotest.(check (list int)) "join preds" [ bl; br ] (List.sort compare preds.(bj));
  let reach = Analysis.Cfg.reachable body in
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id reach)

(* Liveness — the canonical backward analysis — on a two-block body,
   exercising the Backward direction of the solver. *)
let test_backward_liveness () =
  let b = B.create ~name:"live" ~params:[ ("x", u64, Syn.Klocal) ] ~ret_ty:u64 in
  let b1 = B.fresh_block b in
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy "x", B.cu64 1));
  B.terminate b (Syn.Goto b1);
  B.switch_to b b1;
  B.terminate b Syn.Return;
  let body = B.finish b in
  let module SS = Set.Make (String) in
  let module Solver = Analysis.Dataflow.Make (struct
    type t = SS.t

    let equal = SS.equal
    let join = SS.union
  end) in
  let transfer i live_out =
    match i with
    | 0 -> SS.add "x" (SS.remove Syn.return_var live_out)
    | _ -> SS.add Syn.return_var live_out (* Return reads _0 *)
  in
  let r =
    Solver.solve ~direction:Analysis.Dataflow.Backward ~init:SS.empty
      ~bottom:SS.empty ~transfer body
  in
  Alcotest.(check bool) "x live into bb0" true (SS.mem "x" r.Solver.after.(0));
  Alcotest.(check bool) "_0 dead into bb0" false
    (SS.mem Syn.return_var r.Solver.after.(0));
  Alcotest.(check bool) "_0 live into bb1" true
    (SS.mem Syn.return_var r.Solver.after.(1))

(* A loop must reach a fixpoint, not diverge: x initialized before the
   loop, used inside it. *)
let test_loop_fixpoint () =
  let b = B.create ~name:"loop" ~params:[ ("c", Mir.Ty.Bool, Syn.Klocal) ] ~ret_ty:u64 in
  let t = B.temp b u64 in
  let head = B.fresh_block b in
  let bbody = B.fresh_block b in
  let exit = B.fresh_block b in
  B.assign_var b t (Syn.Use (B.cu64 0));
  B.terminate b (Syn.Goto head);
  B.switch_to b head;
  B.terminate b (Syn.Switch_int (B.copy "c", [ (0L, exit) ], bbody));
  B.switch_to b bbody;
  B.assign_var b t (Syn.Binary (Syn.Add, B.copy t, B.cu64 1));
  B.terminate b (Syn.Goto head);
  B.switch_to b exit;
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  let body = B.finish b in
  Alcotest.(check (list pass)) "loop body is clean" [] (analyze body)

(* ------------------------------------------------------------------ *)
(* Lints: each fires on its fixture, stays quiet on the control        *)

let contains kind findings = List.mem kind (kinds_of findings)

let test_move_init_fires () =
  let fs = analyze (fix_uninit ()) in
  Alcotest.(check bool) "uninit fires" true (contains Lint.Move_init fs);
  let fs = analyze (fix_use_after_move ()) in
  Alcotest.(check bool) "use-after-move fires" true (contains Lint.Move_init fs);
  Alcotest.(check bool) "detail names the variable" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.kind = Lint.Move_init
         && String.length f.Lint.detail > 0
         && String.ends_with ~suffix:"_t0" f.Lint.detail)
       fs)

let test_encapsulation_fires () =
  let fs = analyze ~fn_layer:"PtMap" (fix_handle_deref ()) in
  Alcotest.(check bool) "foreign deref fires" true (contains Lint.Encapsulation fs);
  (* the same body inside the owning layer is fine *)
  let fs = analyze ~fn_layer:"FrameAlloc" (fix_handle_deref ()) in
  Alcotest.(check bool) "owner deref allowed" false (contains Lint.Encapsulation fs);
  (* passing the handle wholesale: flagged unless the callee is an
     accepted accessor of the owner *)
  let fs = analyze ~fn_layer:"PtMap" (fix_handle_passed ()) in
  Alcotest.(check bool) "handle passed fires" true (contains Lint.Encapsulation fs);
  let accessor ~owner ~callee =
    String.equal owner "FrameAlloc" && String.equal callee "leak_handle"
  in
  let fs = analyze ~fn_layer:"PtMap" ~accessor (fix_handle_passed ()) in
  Alcotest.(check bool) "accessor allowed" false (contains Lint.Encapsulation fs)

let test_unchecked_arith_fires () =
  let fs = analyze (fix_unchecked_add ()) in
  Alcotest.(check bool) "raw add fires" true (contains Lint.Unchecked_arith fs);
  let fs = analyze (fix_raw_add_only ()) in
  Alcotest.(check bool) "unchecked profile exempt" false
    (contains Lint.Unchecked_arith fs)

let test_unreachable_fires () =
  let fs = analyze (fix_unreachable ~artifact_only:false ()) in
  Alcotest.(check bool) "dead code fires" true (contains Lint.Unreachable_block fs);
  let fs = analyze (fix_unreachable ~artifact_only:true ()) in
  Alcotest.(check bool) "empty artifact block ignored" false
    (contains Lint.Unreachable_block fs)

let test_clean_body () =
  Alcotest.(check int) "clean body, no findings" 0 (List.length (analyze (clean_body ())))

(* ------------------------------------------------------------------ *)
(* Selection, suppression, reports                                     *)

let test_kinds_of_string () =
  (match Lint.kinds_of_string "all" with
  | Ok ks -> Alcotest.(check int) "all = catalogue" 6 (List.length ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "unchecked-arith, move-init" with
  | Ok ks ->
      Alcotest.(check (list string)) "canonical order"
        [ "move-init"; "unchecked-arith" ]
        (List.map Lint.to_string ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "move-init,move-init" with
  | Ok ks -> Alcotest.(check int) "deduplicated" 1 (List.length ks)
  | Error e -> Alcotest.fail e);
  match Lint.kinds_of_string "move-init,bogus" with
  | Ok _ -> Alcotest.fail "bogus lint accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the lint" true
        (String.length msg > 0)

let test_suppression () =
  let body = fix_uninit () in
  Alcotest.(check bool) "fires with full catalogue" true
    (contains Lint.Move_init (analyze body));
  let lints = List.filter (fun k -> k <> Lint.Move_init) Lint.all in
  Alcotest.(check int) "suppressed when deselected" 0
    (List.length (analyze ~lints body))

let test_report_shape () =
  let r = Pass.check Pass.default_config ~name:"clean" (clean_body ()) in
  Alcotest.(check bool) "clean report ok" true (Mirverif.Report.ok r);
  Alcotest.(check int) "one case per lint" (List.length Lint.all)
    r.Mirverif.Report.total;
  let r = Pass.check Pass.default_config ~name:"dirty" (fix_uninit ()) in
  Alcotest.(check bool) "dirty report fails" false (Mirverif.Report.ok r)

(* ------------------------------------------------------------------ *)
(* The seed stack: all 50 functions, all lints, zero findings          *)

let test_seed_stack_clean () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let obls = Engine.Plan.analysis_obligations layout in
  Alcotest.(check int) "one obligation per function" 50 (List.length obls);
  List.iter
    (fun (o : Engine.Obligation.t) ->
      Alcotest.(check bool) "analysis phase" true
        (String.equal o.Engine.Obligation.phase "analysis");
      Alcotest.(check (list string)) "dependency-free" [] o.Engine.Obligation.deps;
      let outcome = o.Engine.Obligation.run () in
      List.iter
        (fun r ->
          if not (Mirverif.Report.ok r) then
            Alcotest.failf "findings in %s: %s" o.Engine.Obligation.id
              (Mirverif.Report.to_string r))
        outcome.Engine.Obligation.reports)
    obls

let test_fingerprints_stable () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let fp os =
    List.map
      (fun (o : Engine.Obligation.t) ->
        (o.Engine.Obligation.id, o.Engine.Obligation.fingerprint))
      os
  in
  let a = fp (Engine.Plan.analysis_obligations layout) in
  let b = fp (Engine.Plan.analysis_obligations layout) in
  Alcotest.(check bool) "rebuild reproduces fingerprints" true (a = b);
  (* narrowing the lint selection must change every fingerprint: cached
     full-catalogue verdicts cannot answer for a narrower run *)
  let c = fp (Engine.Plan.analysis_obligations ~lints:[ Lint.Move_init ] layout) in
  List.iter2
    (fun (ida, fpa) (idc, fpc) ->
      Alcotest.(check string) "same ids" ida idc;
      Alcotest.(check bool) "different fingerprint" false (String.equal fpa fpc))
    a c

let () =
  Alcotest.run "analysis"
    [
      ( "framework",
        [
          Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "backward liveness" `Quick test_backward_liveness;
          Alcotest.test_case "loop fixpoint" `Quick test_loop_fixpoint;
        ] );
      ( "lints",
        [
          Alcotest.test_case "move-init fires" `Quick test_move_init_fires;
          Alcotest.test_case "encapsulation fires" `Quick test_encapsulation_fires;
          Alcotest.test_case "unchecked-arith fires" `Quick test_unchecked_arith_fires;
          Alcotest.test_case "unreachable fires" `Quick test_unreachable_fires;
          Alcotest.test_case "clean body" `Quick test_clean_body;
        ] );
      ( "selection",
        [
          Alcotest.test_case "kinds_of_string" `Quick test_kinds_of_string;
          Alcotest.test_case "per-lint suppression" `Quick test_suppression;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
      ( "seed",
        [
          Alcotest.test_case "seed stack clean" `Quick test_seed_stack_clean;
          Alcotest.test_case "fingerprints" `Quick test_fingerprints_stable;
        ] );
    ]

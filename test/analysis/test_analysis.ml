(* Tests for lib/analysis: the CFG/dataflow framework, one negative
   fixture per lint (each must fire), positive controls (clean bodies
   stay clean), lint selection, and the zero-findings gate over the
   seed 15-layer stack. *)

module Syn = Mir.Syntax
module B = Mir.Builder
module Lint = Analysis.Lint
module Pass = Analysis.Pass

let u64 = Mir.Ty.Int Mir.Ty.U64

let kinds_of findings = List.map (fun (f : Lint.finding) -> f.Lint.kind) findings

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let analyze ?fn_layer ?(accessor = fun ~owner:_ ~callee:_ -> false)
    ?(lints = Lint.all) body =
  Pass.analyze { Pass.fn_layer; accessor; lints } body

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

(* bb0 reads a never-written temporary. *)
let fix_uninit () =
  let b = B.create ~name:"fix_uninit" ~params:[] ~ret_ty:u64 in
  let t = B.temp b u64 in
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* t is moved into u, then read again. *)
let fix_use_after_move () =
  let b = B.create ~name:"fix_moved" ~params:[] ~ret_ty:u64 in
  let t = B.temp b u64 in
  let u = B.temp b u64 in
  B.assign_var b t (Syn.Use (B.cu64 7));
  B.assign_var b u (Syn.Use (B.move t));
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* A handle of layer "FrameAlloc" is dereferenced in foreign code. *)
let fix_handle_deref () =
  let b = B.create ~name:"fix_deref" ~params:[] ~ret_ty:u64 in
  let h = B.temp b (Mir.Ty.Ref (Mir.Ty.Opaque "FrameAlloc")) in
  B.assign_var b Syn.return_var (Syn.Use (B.copy_place (B.pderef (B.pvar h))));
  B.terminate b Syn.Return;
  B.finish b

(* A handle is passed whole to some callee; whether that is a finding
   depends on the accessor relation, which the tests vary. *)
let fix_handle_passed () =
  let b = B.create ~name:"fix_passed" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let h = B.temp b (Mir.Ty.Ref (Mir.Ty.Opaque "FrameAlloc")) in
  let ret = B.fresh_block b in
  B.terminate b
    (Syn.Call
       {
         dest = B.pvar Syn.return_var;
         func = "leak_handle";
         args = [ B.copy h ];
         target = Some ret;
       });
  B.switch_to b ret;
  B.terminate b Syn.Return;
  B.finish b

(* Raw add in a body that elsewhere uses checked adds. *)
let fix_unchecked_add () =
  let b = B.create ~name:"fix_add" ~params:[] ~ret_ty:u64 in
  let x = B.temp b u64 in
  let y = B.temp b u64 in
  let pair = B.temp b (Mir.Ty.Tuple [ u64; Mir.Ty.Bool ]) in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b y (Syn.Use (B.cu64 2));
  B.assign_var b pair (Syn.Checked_binary (Syn.Add, B.copy x, B.copy y));
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy x, B.copy y));
  B.terminate b Syn.Return;
  B.finish b

(* Same raw add, but nothing checked anywhere: the unchecked
   compilation profile, exempt by design. *)
let fix_raw_add_only () =
  let b = B.create ~name:"fix_raw" ~params:[] ~ret_ty:u64 in
  let x = B.temp b u64 in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy x, B.cu64 2));
  B.terminate b Syn.Return;
  B.finish b

(* bb1 holds a real statement but nothing jumps to it; bb2 is an empty
   lowering artifact and must not be flagged. *)
let fix_unreachable ~artifact_only () =
  let b = B.create ~name:"fix_unreach" ~params:[] ~ret_ty:u64 in
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 0));
  B.terminate b Syn.Return;
  let dead = B.fresh_block b in
  B.switch_to b dead;
  if not artifact_only then
    B.assign_var b Syn.return_var (Syn.Use (B.cu64 9));
  B.terminate b (Syn.Goto 0);
  B.finish b

let clean_body () =
  let b = B.create ~name:"clean" ~params:[ ("x", u64, Syn.Klocal) ] ~ret_ty:u64 in
  let t = B.temp b u64 in
  B.assign_var b t (Syn.Binary (Syn.Add, B.copy "x", B.cu64 1));
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Framework                                                           *)

let test_cfg_diamond () =
  let b = B.create ~name:"diamond" ~params:[ ("c", Mir.Ty.Bool, Syn.Klocal) ] ~ret_ty:u64 in
  let bl = B.fresh_block b in
  let br = B.fresh_block b in
  let bj = B.fresh_block b in
  B.terminate b (Syn.Switch_int (B.copy "c", [ (0L, bl) ], br));
  B.switch_to b bl;
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 0));
  B.terminate b (Syn.Goto bj);
  B.switch_to b br;
  B.assign_var b Syn.return_var (Syn.Use (B.cu64 1));
  B.terminate b (Syn.Goto bj);
  B.switch_to b bj;
  B.terminate b Syn.Return;
  let body = B.finish b in
  let succs = Analysis.Cfg.block_successors body in
  Alcotest.(check (list int)) "bb0 succs" [ bl; br ] succs.(0);
  Alcotest.(check (list int)) "join succs" [] succs.(bj);
  let preds = Analysis.Cfg.predecessors body in
  Alcotest.(check (list int)) "join preds" [ bl; br ] (List.sort compare preds.(bj));
  let reach = Analysis.Cfg.reachable body in
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id reach)

(* Liveness — the canonical backward analysis — on a two-block body,
   exercising the Backward direction of the solver. *)
let test_backward_liveness () =
  let b = B.create ~name:"live" ~params:[ ("x", u64, Syn.Klocal) ] ~ret_ty:u64 in
  let b1 = B.fresh_block b in
  B.assign_var b Syn.return_var (Syn.Binary (Syn.Add, B.copy "x", B.cu64 1));
  B.terminate b (Syn.Goto b1);
  B.switch_to b b1;
  B.terminate b Syn.Return;
  let body = B.finish b in
  let module SS = Set.Make (String) in
  let module Solver = Analysis.Dataflow.Make (struct
    type t = SS.t

    let equal = SS.equal
    let join = SS.union
  end) in
  let transfer i live_out =
    match i with
    | 0 -> SS.add "x" (SS.remove Syn.return_var live_out)
    | _ -> SS.add Syn.return_var live_out (* Return reads _0 *)
  in
  let r =
    Solver.solve ~direction:Analysis.Dataflow.Backward ~init:SS.empty
      ~bottom:SS.empty ~transfer body
  in
  Alcotest.(check bool) "x live into bb0" true (SS.mem "x" r.Solver.after.(0));
  Alcotest.(check bool) "_0 dead into bb0" false
    (SS.mem Syn.return_var r.Solver.after.(0));
  Alcotest.(check bool) "_0 live into bb1" true
    (SS.mem Syn.return_var r.Solver.after.(1))

(* A loop must reach a fixpoint, not diverge: x initialized before the
   loop, used inside it. *)
let test_loop_fixpoint () =
  let b = B.create ~name:"loop" ~params:[ ("c", Mir.Ty.Bool, Syn.Klocal) ] ~ret_ty:u64 in
  let t = B.temp b u64 in
  let head = B.fresh_block b in
  let bbody = B.fresh_block b in
  let exit = B.fresh_block b in
  B.assign_var b t (Syn.Use (B.cu64 0));
  B.terminate b (Syn.Goto head);
  B.switch_to b head;
  B.terminate b (Syn.Switch_int (B.copy "c", [ (0L, exit) ], bbody));
  B.switch_to b bbody;
  B.assign_var b t (Syn.Binary (Syn.Add, B.copy t, B.cu64 1));
  B.terminate b (Syn.Goto head);
  B.switch_to b exit;
  B.assign_var b Syn.return_var (Syn.Use (B.copy t));
  B.terminate b Syn.Return;
  let body = B.finish b in
  Alcotest.(check (list pass)) "loop body is clean" [] (analyze body)

(* ------------------------------------------------------------------ *)
(* Lints: each fires on its fixture, stays quiet on the control        *)

let contains kind findings = List.mem kind (kinds_of findings)

let test_move_init_fires () =
  let fs = analyze (fix_uninit ()) in
  Alcotest.(check bool) "uninit fires" true (contains Lint.Move_init fs);
  let fs = analyze (fix_use_after_move ()) in
  Alcotest.(check bool) "use-after-move fires" true (contains Lint.Move_init fs);
  Alcotest.(check bool) "detail names the variable" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.kind = Lint.Move_init
         && String.length f.Lint.detail > 0
         && String.ends_with ~suffix:"_t0" f.Lint.detail)
       fs)

let test_encapsulation_fires () =
  let fs = analyze ~fn_layer:"PtMap" (fix_handle_deref ()) in
  Alcotest.(check bool) "foreign deref fires" true (contains Lint.Encapsulation fs);
  (* the same body inside the owning layer is fine *)
  let fs = analyze ~fn_layer:"FrameAlloc" (fix_handle_deref ()) in
  Alcotest.(check bool) "owner deref allowed" false (contains Lint.Encapsulation fs);
  (* passing the handle wholesale: flagged unless the callee is an
     accepted accessor of the owner *)
  let fs = analyze ~fn_layer:"PtMap" (fix_handle_passed ()) in
  Alcotest.(check bool) "handle passed fires" true (contains Lint.Encapsulation fs);
  let accessor ~owner ~callee =
    String.equal owner "FrameAlloc" && String.equal callee "leak_handle"
  in
  let fs = analyze ~fn_layer:"PtMap" ~accessor (fix_handle_passed ()) in
  Alcotest.(check bool) "accessor allowed" false (contains Lint.Encapsulation fs)

let test_unchecked_arith_fires () =
  let fs = analyze (fix_unchecked_add ()) in
  Alcotest.(check bool) "raw add fires" true (contains Lint.Unchecked_arith fs);
  let fs = analyze (fix_raw_add_only ()) in
  Alcotest.(check bool) "unchecked profile exempt" false
    (contains Lint.Unchecked_arith fs)

let test_unreachable_fires () =
  let fs = analyze (fix_unreachable ~artifact_only:false ()) in
  Alcotest.(check bool) "dead code fires" true (contains Lint.Unreachable_block fs);
  let fs = analyze (fix_unreachable ~artifact_only:true ()) in
  Alcotest.(check bool) "empty artifact block ignored" false
    (contains Lint.Unreachable_block fs)

let test_clean_body () =
  Alcotest.(check int) "clean body, no findings" 0 (List.length (analyze (clean_body ())))

(* ------------------------------------------------------------------ *)
(* Selection, suppression, reports                                     *)

let test_kinds_of_string () =
  (match Lint.kinds_of_string "all" with
  | Ok ks -> Alcotest.(check int) "all = catalogue" 10 (List.length ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "unchecked-arith, move-init" with
  | Ok ks ->
      Alcotest.(check (list string)) "canonical order"
        [ "move-init"; "unchecked-arith" ]
        (List.map Lint.to_string ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "move-init,move-init" with
  | Ok ks -> Alcotest.(check int) "deduplicated" 1 (List.length ks)
  | Error e -> Alcotest.fail e);
  match Lint.kinds_of_string "move-init,bogus" with
  | Ok _ -> Alcotest.fail "bogus lint accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the lint" true
        (String.length msg > 0)

let test_group_selectors () =
  (match Lint.kinds_of_string "borrow" with
  | Ok ks ->
      Alcotest.(check (list string)) "borrow group"
        [ "conflicting-borrow"; "dangling-handle"; "move-while-borrowed" ]
        (List.map Lint.to_string ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "alias" with
  | Ok ks ->
      Alcotest.(check (list string)) "alias group" [ "alias-footprint" ]
        (List.map Lint.to_string ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "borrow,alias,move-init" with
  | Ok ks -> Alcotest.(check int) "groups and names mix" 5 (List.length ks)
  | Error e -> Alcotest.fail e);
  (match Lint.kinds_of_string "body,all" with
  | Ok ks -> Alcotest.(check int) "overlapping groups dedup" 10 (List.length ks)
  | Error e -> Alcotest.fail e);
  match Lint.kinds_of_string "borrows" with
  | Ok _ -> Alcotest.fail "near-miss group accepted"
  | Error msg ->
      Alcotest.(check bool) "error lists the group selectors" true
        (has_substring msg "group selectors")

let test_suppression () =
  let body = fix_uninit () in
  Alcotest.(check bool) "fires with full catalogue" true
    (contains Lint.Move_init (analyze body));
  let lints = List.filter (fun k -> k <> Lint.Move_init) Lint.all in
  Alcotest.(check int) "suppressed when deselected" 0
    (List.length (analyze ~lints body))

let test_report_shape () =
  let r = Pass.check Pass.default_config ~name:"clean" (clean_body ()) in
  Alcotest.(check bool) "clean report ok" true (Mirverif.Report.ok r);
  Alcotest.(check int) "one case per lint" (List.length Lint.all)
    r.Mirverif.Report.total;
  let r = Pass.check Pass.default_config ~name:"dirty" (fix_uninit ()) in
  Alcotest.(check bool) "dirty report fails" false (Mirverif.Report.ok r)

(* ------------------------------------------------------------------ *)
(* Borrow checking: loans, regions, the three borrow lints             *)

let uref = Mir.Ty.Ref u64

(* Two mutable borrows of x, both alive across the second creation. *)
let fix_conflicting_borrow () =
  let b = B.create ~name:"fix_conflict" ~params:[] ~ret_ty:u64 in
  let x = B.local b ~name:"x" u64 in
  let p = B.temp b uref in
  let q = B.temp b uref in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b p (Syn.Address_of (B.pvar x));
  B.assign_var b q (Syn.Address_of (B.pvar x));
  B.assign_var b Syn.return_var
    (Syn.Binary
       ( Syn.Add,
         B.copy_place (B.pderef (B.pvar p)),
         B.copy_place (B.pderef (B.pvar q)) ));
  B.terminate b Syn.Return;
  B.finish b

(* Same shape with shared borrows: reading through two shared refs is
   fine. *)
let fix_shared_borrows () =
  let b = B.create ~name:"fix_shared" ~params:[] ~ret_ty:u64 in
  let x = B.local b ~name:"x" u64 in
  let p = B.temp b uref in
  let q = B.temp b uref in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b p (Syn.Ref (B.pvar x));
  B.assign_var b q (Syn.Ref (B.pvar x));
  B.assign_var b Syn.return_var
    (Syn.Binary
       ( Syn.Add,
         B.copy_place (B.pderef (B.pvar p)),
         B.copy_place (B.pderef (B.pvar q)) ));
  B.terminate b Syn.Return;
  B.finish b

(* The planted "dangling EPCM borrow": a handle borrows an EPCM entry
   local, the local's storage dies, the handle is read afterwards. *)
let fix_dangling_epcm () =
  let b = B.create ~name:"fix_dangling" ~params:[] ~ret_ty:u64 in
  let e = B.local b ~name:"epcm_entry" u64 in
  let h = B.temp b uref in
  B.assign_var b e (Syn.Use (B.cu64 0));
  B.assign_var b h (Syn.Ref (B.pvar e));
  B.push b (Syn.Storage_dead e);
  B.assign_var b Syn.return_var (Syn.Use (B.copy_place (B.pderef (B.pvar h))));
  B.terminate b Syn.Return;
  B.finish b

(* Returning a reference to a local: the loan escapes its region. *)
let fix_escaping_ref () =
  let b = B.create ~name:"fix_escape" ~params:[] ~ret_ty:uref in
  let v = B.local b ~name:"v" u64 in
  B.assign_var b v (Syn.Use (B.cu64 3));
  B.assign_var b Syn.return_var (Syn.Ref (B.pvar v));
  B.terminate b Syn.Return;
  B.finish b

(* x is moved into y while a live loan still borrows it. *)
let fix_move_while_borrowed () =
  let b = B.create ~name:"fix_move_borrowed" ~params:[] ~ret_ty:u64 in
  let x = B.local b ~name:"x" u64 in
  let y = B.temp b u64 in
  let r = B.temp b uref in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b r (Syn.Ref (B.pvar x));
  B.assign_var b y (Syn.Use (B.move x));
  B.assign_var b Syn.return_var (Syn.Use (B.copy_place (B.pderef (B.pvar r))));
  B.terminate b Syn.Return;
  B.finish b

(* The last use of the first borrow precedes the second borrow: with
   liveness-based (NLL) regions the loans never overlap. *)
let fix_nll_disjoint () =
  let b = B.create ~name:"fix_nll" ~params:[] ~ret_ty:u64 in
  let x = B.local b ~name:"x" u64 in
  let p = B.temp b uref in
  let q = B.temp b uref in
  let t = B.temp b u64 in
  B.assign_var b x (Syn.Use (B.cu64 1));
  B.assign_var b p (Syn.Address_of (B.pvar x));
  B.assign_var b t (Syn.Use (B.copy_place (B.pderef (B.pvar p))));
  B.assign_var b q (Syn.Address_of (B.pvar x));
  B.assign_var b Syn.return_var
    (Syn.Binary (Syn.Add, B.copy t, B.copy_place (B.pderef (B.pvar q))));
  B.terminate b Syn.Return;
  B.finish b

let borrow_kinds body =
  List.map (fun (f : Lint.finding) -> f.Lint.kind) (Analysis.Borrow.check body)

let test_conflicting_borrow () =
  Alcotest.(check bool) "mut/mut overlap fires" true
    (List.mem Lint.Conflicting_borrow (borrow_kinds (fix_conflicting_borrow ())));
  Alcotest.(check bool) "shared/shared is clean" false
    (List.mem Lint.Conflicting_borrow (borrow_kinds (fix_shared_borrows ())));
  Alcotest.(check bool) "NLL-disjoint regions are clean" false
    (List.mem Lint.Conflicting_borrow (borrow_kinds (fix_nll_disjoint ())))

let test_dangling_handle () =
  Alcotest.(check bool) "storage-dead under live loan fires" true
    (List.mem Lint.Dangling_handle (borrow_kinds (fix_dangling_epcm ())));
  Alcotest.(check bool) "returned borrow of a local fires" true
    (List.mem Lint.Dangling_handle (borrow_kinds (fix_escaping_ref ())))

let test_move_while_borrowed () =
  Alcotest.(check bool) "move under live loan fires" true
    (List.mem Lint.Move_while_borrowed (borrow_kinds (fix_move_while_borrowed ())));
  Alcotest.(check bool) "clean body has no borrow findings"
    true
    (borrow_kinds (clean_body ()) = [])

let test_borrow_lint_report () =
  let report, findings, stats =
    Analysis.Borrow_lint.check ~name:"fix_dangling" (fix_dangling_epcm ())
  in
  Alcotest.(check bool) "report fails" false (Mirverif.Report.ok report);
  Alcotest.(check bool) "findings nonempty" true (findings <> []);
  Alcotest.(check bool) "loan sites counted" true (stats.Analysis.Borrow_lint.loans >= 1);
  (* selection: deselecting the kind silences it *)
  let _, fs, _ =
    Analysis.Borrow_lint.check
      ~lints:[ Lint.Conflicting_borrow ]
      ~name:"fix_dangling" (fix_dangling_epcm ())
  in
  Alcotest.(check int) "deselected kind suppressed" 0 (List.length fs)

(* ------------------------------------------------------------------ *)
(* Alias analysis: footprints, the aliased-frame lint, certify         *)

module Alias = Analysis.Alias

(* writer(p, q) writes through both parameters. *)
let fix_writer () =
  let b =
    B.create ~name:"writer"
      ~params:[ ("p", uref, Syn.Klocal); ("q", uref, Syn.Klocal) ]
      ~ret_ty:Mir.Ty.Unit
  in
  B.assign b (B.pderef (B.pvar "p")) (Syn.Use (B.cu64 1));
  B.assign b (B.pderef (B.pvar "q")) (Syn.Use (B.cu64 2));
  B.terminate b Syn.Return;
  B.finish b

let call_writer b a1 a2 =
  let ret = B.fresh_block b in
  B.terminate b
    (Syn.Call
       {
         dest = B.pvar Syn.return_var;
         func = "writer";
         args = [ B.move a1; B.move a2 ];
         target = Some ret;
       });
  B.switch_to b ret;
  B.terminate b Syn.Return

(* caller_aliased passes two pointers to the SAME local — the planted
   aliased frame-handle leak. *)
let fix_caller_aliased () =
  let b = B.create ~name:"caller_aliased" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let x = B.local b ~name:"x" u64 in
  let a = B.temp b uref in
  let c = B.temp b uref in
  B.assign_var b x (Syn.Use (B.cu64 0));
  B.assign_var b a (Syn.Address_of (B.pvar x));
  B.assign_var b c (Syn.Address_of (B.pvar x));
  call_writer b a c;
  B.finish b

(* caller_disjoint passes pointers to two different locals. *)
let fix_caller_disjoint () =
  let b = B.create ~name:"caller_disjoint" ~params:[] ~ret_ty:Mir.Ty.Unit in
  let x = B.local b ~name:"x" u64 in
  let y = B.local b ~name:"y" u64 in
  let a = B.temp b uref in
  let c = B.temp b uref in
  B.assign_var b x (Syn.Use (B.cu64 0));
  B.assign_var b y (Syn.Use (B.cu64 0));
  B.assign_var b a (Syn.Address_of (B.pvar x));
  B.assign_var b c (Syn.Address_of (B.pvar y));
  call_writer b a c;
  B.finish b

let alias_cfg program =
  {
    Analysis.Alias_lint.program;
    prim = (fun _ -> None);
    fn_layer = (fun _ -> None);
    accessor = (fun ~owner:_ ~callee:_ -> false);
  }

let test_alias_footprint_fires () =
  let program =
    Syn.program_of_bodies
      [ fix_writer (); fix_caller_aliased (); fix_caller_disjoint () ]
  in
  let cfg = alias_cfg program in
  let findings, stats = Analysis.Alias_lint.check cfg ~funcs:[ "caller_aliased" ] in
  let errors =
    List.filter
      (fun (_, (f : Lint.finding)) ->
        f.Lint.severity = Lint.Error && f.Lint.kind = Lint.Alias_footprint)
      findings
  in
  Alcotest.(check int) "aliased arguments fire once" 1 (List.length errors);
  Alcotest.(check bool) "stats count the finding" true
    (stats.Analysis.Alias_lint.findings >= 1);
  let findings, _ = Analysis.Alias_lint.check cfg ~funcs:[ "caller_disjoint" ] in
  Alcotest.(check int) "disjoint arguments are clean" 0
    (List.length
       (List.filter
          (fun (_, (f : Lint.finding)) -> f.Lint.severity = Lint.Error)
          findings))

let test_alias_footprints_exact () =
  let program =
    Syn.program_of_bodies [ fix_writer (); fix_caller_disjoint () ]
  in
  let infos = Alias.analyze program in
  let fp = Alias.footprint infos "writer" in
  Alcotest.(check bool) "writer's footprint is exact" true (Alias.exact fp);
  Alcotest.(check bool) "writer writes both params" true
    (Alias.LocSet.mem (Alias.Lparam 0) fp.Alias.writes
    && Alias.LocSet.mem (Alias.Lparam 1) fp.Alias.writes);
  (* an unanalyzed name is fully unknown, never falsely exact *)
  let fp = Alias.footprint infos "no_such_fn" in
  Alcotest.(check bool) "missing function is inexact" false (Alias.exact fp)

let test_alias_certify () =
  let set locs = Alias.LocSet.of_list locs in
  let fp_exact =
    { Alias.reads = set [ Alias.Lglobal "g" ]; writes = set [ Alias.Lglobal "g" ] }
  in
  (match
     Alias.certify ~callee_fp:fp_exact
       ~frames:[ Mir.Path.global "g" ]
       ~retained:[ Mir.Path.global "other" ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exact disjoint frame refused: %s" e);
  (* empty frames certify trivially whatever the footprint *)
  let fp_unknown =
    { Alias.reads = set [ Alias.Lunknown ]; writes = set [ Alias.Lunknown ] }
  in
  (match Alias.certify ~callee_fp:fp_unknown ~frames:[] ~retained:[] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fact-free contract refused: %s" e);
  (* refusal 1: inexact footprint *)
  (match
     Alias.certify ~callee_fp:fp_unknown
       ~frames:[ Mir.Path.global "g" ]
       ~retained:[]
   with
  | Ok () -> Alcotest.fail "inexact footprint certified"
  | Error e ->
      Alcotest.(check bool) "reason says inexact" true (has_substring e "inexact"));
  (* refusal 2: a written global outside every declared frame *)
  (match
     Alias.certify ~callee_fp:fp_exact
       ~frames:[ Mir.Path.global "h" ]
       ~retained:[]
   with
  | Ok () -> Alcotest.fail "out-of-frame write certified"
  | Error e ->
      Alcotest.(check bool) "reason names the frames" true
        (has_substring e "frame"));
  (* refusal 3: a frame overlapping a caller-retained path *)
  match
    Alias.certify ~callee_fp:fp_exact
      ~frames:[ Mir.Path.global "g" ]
      ~retained:[ Mir.Path.global "g" ]
  with
  | Ok () -> Alcotest.fail "retained overlap certified"
  | Error e ->
      Alcotest.(check bool) "reason says overlap" true
        (has_substring e "overlap")

(* ------------------------------------------------------------------ *)
(* Callgraph SCC properties (Tarjan)                                   *)

let body_calling ~name callees =
  let b = B.create ~name ~params:[] ~ret_ty:Mir.Ty.Unit in
  List.iter
    (fun callee ->
      let ret = B.fresh_block b in
      B.terminate b
        (Syn.Call
           {
             dest = B.pvar Syn.return_var;
             func = callee;
             args = [];
             target = Some ret;
           });
      B.switch_to b ret)
    callees;
  B.terminate b Syn.Return;
  B.finish b

(* a <-> b cycle; both call c; c calls itself; d is isolated. *)
let scc_program () =
  Syn.program_of_bodies
    [
      body_calling ~name:"a" [ "b"; "c" ];
      body_calling ~name:"b" [ "a"; "c" ];
      body_calling ~name:"c" [ "c" ];
      body_calling ~name:"d" [];
    ]

let test_scc_self_loop () =
  let cg = Analysis.Callgraph.build (scc_program ()) in
  let sccs = Analysis.Callgraph.sccs cg in
  let scc_of_c = List.find (fun m -> List.mem "c" m) sccs in
  Alcotest.(check (list string)) "self-loop is its own SCC" [ "c" ] scc_of_c;
  (* callee_sccs never includes the SCC itself, even on a self-loop *)
  let sccs_arr = Array.of_list sccs in
  List.iteri
    (fun i members ->
      let callee_is = Analysis.Callgraph.callee_sccs cg members in
      Alcotest.(check bool)
        (Printf.sprintf "scc %d excludes itself" i)
        false (List.mem i callee_is);
      List.iter
        (fun j ->
          Alcotest.(check bool) "callee index in range" true
            (j >= 0 && j < Array.length sccs_arr))
        callee_is)
    sccs;
  let ab = List.find (fun m -> List.mem "a" m) sccs in
  Alcotest.(check (list string)) "mutual recursion is one SCC" [ "a"; "b" ]
    (List.sort compare ab)

let test_scc_determinism () =
  let p = scc_program () in
  let s1 = Analysis.Callgraph.sccs (Analysis.Callgraph.build p) in
  let s2 = Analysis.Callgraph.sccs (Analysis.Callgraph.build p) in
  Alcotest.(check bool) "SCC order reproducible" true (s1 = s2);
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let prog = (Hyperenclave.Layers.compiled layout).Rustlite.Pipeline.program in
  let t1 = Analysis.Callgraph.sccs (Analysis.Callgraph.build prog) in
  let t2 = Analysis.Callgraph.sccs (Analysis.Callgraph.build prog) in
  Alcotest.(check bool) "seed-stack SCC order reproducible" true (t1 = t2)

(* The condensation edges and the direct call edges must tell the same
   story: g in callees(f) with scc(g) <> scc(f) iff scc(g) is in
   callee_sccs of f's SCC. *)
let test_scc_condensation_agrees () =
  let p = scc_program () in
  let cg = Analysis.Callgraph.build p in
  let sccs = Array.of_list (Analysis.Callgraph.sccs cg) in
  Array.iteri
    (fun i members ->
      let callee_is = Analysis.Callgraph.callee_sccs cg members in
      let direct =
        List.sort_uniq compare
          (List.concat_map
             (fun f ->
               List.filter_map
                 (fun g ->
                   match Analysis.Callgraph.scc_of cg g with
                   | Some j when j <> i -> Some j
                   | _ -> None)
                 (Analysis.Callgraph.callees cg f))
             members)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "condensation edges of scc %d" i)
        direct
        (List.sort_uniq compare callee_is);
      (* reachability includes the members and every direct callee *)
      let reach = Analysis.Callgraph.reachable cg members in
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " reaches itself") true (List.mem f reach);
          List.iter
            (fun g ->
              if Analysis.Callgraph.scc_of cg g <> None then
                Alcotest.(check bool) (f ^ " reaches " ^ g) true
                  (List.mem g reach))
            (Analysis.Callgraph.callees cg f))
        members)
    sccs

(* ------------------------------------------------------------------ *)
(* The seed stack: all 50 functions, all lints, zero findings          *)

let test_seed_stack_clean () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let obls = Engine.Plan.analysis_obligations layout in
  Alcotest.(check int) "one obligation per function" 50 (List.length obls);
  List.iter
    (fun (o : Engine.Obligation.t) ->
      Alcotest.(check bool) "analysis phase" true
        (String.equal o.Engine.Obligation.phase "analysis");
      Alcotest.(check (list string)) "dependency-free" [] o.Engine.Obligation.deps;
      let outcome = o.Engine.Obligation.run () in
      List.iter
        (fun r ->
          if not (Mirverif.Report.ok r) then
            Alcotest.failf "findings in %s: %s" o.Engine.Obligation.id
              (Mirverif.Report.to_string r))
        outcome.Engine.Obligation.reports)
    obls

(* Borrow and alias phases over the seed stack: every obligation runs
   clean, and the obligation shapes match their phase conventions. *)
let test_seed_stack_borrow_alias_clean () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let run_all ~phase obls =
    Alcotest.(check bool) (phase ^ " nonempty") true (obls <> []);
    List.iter
      (fun (o : Engine.Obligation.t) ->
        Alcotest.(check bool) (phase ^ " phase") true
          (String.equal o.Engine.Obligation.phase phase);
        let outcome = o.Engine.Obligation.run () in
        List.iter
          (fun r ->
            if not (Mirverif.Report.ok r) then
              Alcotest.failf "findings in %s: %s" o.Engine.Obligation.id
                (Mirverif.Report.to_string r))
          outcome.Engine.Obligation.reports)
      obls
  in
  let borrow = Engine.Plan.borrow_obligations layout in
  Alcotest.(check int) "one borrow obligation per function" 50
    (List.length borrow);
  run_all ~phase:"borrow" borrow;
  run_all ~phase:"alias" (Engine.Plan.alias_obligations layout);
  (* deselecting the kinds empties the phases *)
  Alcotest.(check int) "borrow deselected" 0
    (List.length (Engine.Plan.borrow_obligations ~lints:Lint.all layout));
  Alcotest.(check int) "alias deselected" 0
    (List.length (Engine.Plan.alias_obligations ~lints:Lint.all layout))

let test_fingerprints_stable () =
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let fp os =
    List.map
      (fun (o : Engine.Obligation.t) ->
        (o.Engine.Obligation.id, o.Engine.Obligation.fingerprint))
      os
  in
  let a = fp (Engine.Plan.analysis_obligations layout) in
  let b = fp (Engine.Plan.analysis_obligations layout) in
  Alcotest.(check bool) "rebuild reproduces fingerprints" true (a = b);
  (* narrowing the lint selection must change every fingerprint: cached
     full-catalogue verdicts cannot answer for a narrower run *)
  let c = fp (Engine.Plan.analysis_obligations ~lints:[ Lint.Move_init ] layout) in
  List.iter2
    (fun (ida, fpa) (idc, fpc) ->
      Alcotest.(check string) "same ids" ida idc;
      Alcotest.(check bool) "different fingerprint" false (String.equal fpa fpc))
    a c

let () =
  Alcotest.run "analysis"
    [
      ( "framework",
        [
          Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "backward liveness" `Quick test_backward_liveness;
          Alcotest.test_case "loop fixpoint" `Quick test_loop_fixpoint;
        ] );
      ( "lints",
        [
          Alcotest.test_case "move-init fires" `Quick test_move_init_fires;
          Alcotest.test_case "encapsulation fires" `Quick test_encapsulation_fires;
          Alcotest.test_case "unchecked-arith fires" `Quick test_unchecked_arith_fires;
          Alcotest.test_case "unreachable fires" `Quick test_unreachable_fires;
          Alcotest.test_case "clean body" `Quick test_clean_body;
        ] );
      ( "selection",
        [
          Alcotest.test_case "kinds_of_string" `Quick test_kinds_of_string;
          Alcotest.test_case "group selectors" `Quick test_group_selectors;
          Alcotest.test_case "per-lint suppression" `Quick test_suppression;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
      ( "borrow",
        [
          Alcotest.test_case "conflicting-borrow" `Quick test_conflicting_borrow;
          Alcotest.test_case "dangling-handle" `Quick test_dangling_handle;
          Alcotest.test_case "move-while-borrowed" `Quick test_move_while_borrowed;
          Alcotest.test_case "borrow-lint report" `Quick test_borrow_lint_report;
        ] );
      ( "alias",
        [
          Alcotest.test_case "alias-footprint fires" `Quick test_alias_footprint_fires;
          Alcotest.test_case "footprints exact" `Quick test_alias_footprints_exact;
          Alcotest.test_case "certify" `Quick test_alias_certify;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "self-loop SCC" `Quick test_scc_self_loop;
          Alcotest.test_case "SCC determinism" `Quick test_scc_determinism;
          Alcotest.test_case "condensation agrees" `Quick test_scc_condensation_agrees;
        ] );
      ( "seed",
        [
          Alcotest.test_case "seed stack clean" `Quick test_seed_stack_clean;
          Alcotest.test_case "borrow+alias clean" `Quick
            test_seed_stack_borrow_alias_clean;
          Alcotest.test_case "fingerprints" `Quick test_fingerprints_stable;
        ] );
    ]

(* Tests for the interprocedural abstract interpreter (lib/analysis):
   interval lattice laws (property-tested), widening/narrowing loop
   convergence, array-bounds certification, unchecked-arith discharge
   with reconciliation, the call-graph SCC condensation, the taint
   domain's summary substitution, and the secret-flow policy — the
   seed 15-layer stack must be clean while the planted hypercall leak
   fixtures must fire.  Finishes with absint obligation fingerprint
   stability and an engine pool run over the absint DAG. *)

module Syn = Mir.Syntax
module B = Mir.Builder
module Word = Mir.Word
module Itv = Analysis.Interval
module Lint = Analysis.Lint
module Rng = Check.Rng

let u64 = Mir.Ty.Int Mir.Ty.U64
let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny

let seed_program () =
  (Hyperenclave.Layers.compiled layout).Rustlite.Pipeline.program

let compile_extra extra =
  let src = Hyperenclave.Mem_source.source layout ^ extra in
  (Rustlite.Pipeline.compile_exn src).Rustlite.Pipeline.program

(* ------------------------------------------------------------------ *)
(* Interval lattice laws (random intervals, deterministic stream)      *)

let rand_word rng =
  let choice, rng = Rng.int_below rng 4 in
  match choice with
  | 0 ->
      let n, rng = Rng.int_below rng 40 in
      (Word.of_int Word.W64 n, rng)
  | 1 -> (Word.umax, rng)
  | 2 ->
      let n, rng = Rng.int_below rng 40 in
      (Word.sub Word.W64 Word.umax (Word.of_int Word.W64 n), rng)
  | _ -> Rng.next rng

let rand_itv rng =
  let a, rng = rand_word rng in
  let b, rng = rand_word rng in
  (Itv.v (Word.min_u a b) (Word.max_u a b), rng)

let test_lattice_laws () =
  let rng = ref (Rng.make 7) in
  for _ = 1 to 500 do
    let a, r1 = rand_itv !rng in
    let b, r2 = rand_itv r1 in
    let c, r3 = rand_itv r2 in
    rng := r3;
    Alcotest.(check bool)
      "join commutative" true
      (Itv.equal (Itv.join a b) (Itv.join b a));
    Alcotest.(check bool)
      "join associative" true
      (Itv.equal (Itv.join a (Itv.join b c)) (Itv.join (Itv.join a b) c));
    Alcotest.(check bool) "join idempotent" true (Itv.equal (Itv.join a a) a);
    Alcotest.(check bool) "join upper bound" true (Itv.subset a (Itv.join a b));
    Alcotest.(check bool)
      "meet lower bound" true
      (Itv.is_bot (Itv.meet a b) || Itv.subset (Itv.meet a b) a);
    Alcotest.(check bool)
      "widen covers join" true
      (Itv.subset (Itv.join a b) (Itv.widen ~thresholds:[ 16L; 100L ] a b));
    let n = Itv.meet a b in
    if not (Itv.is_bot n) then begin
      let narrowed = Itv.narrow a n in
      Alcotest.(check bool) "narrow below widened" true (Itv.subset narrowed a);
      Alcotest.(check bool) "narrow above refined" true (Itv.subset n narrowed)
    end
  done

(* Any ascending widening chain stabilizes in a handful of steps: the
   bounds can only move to a threshold or to the lattice extremes. *)
let test_widening_terminates () =
  let rng = ref (Rng.make 11) in
  for _ = 1 to 100 do
    let v0, r = rand_itv !rng in
    let w = ref v0 and changes = ref 0 and r = ref r in
    for _ = 1 to 64 do
      let c, r' = rand_itv !r in
      r := r';
      let next = Itv.widen ~thresholds:[ 8L; 64L; 4096L ] !w (Itv.join !w c) in
      if not (Itv.equal next !w) then incr changes;
      Alcotest.(check bool) "chain ascends" true (Itv.subset !w next);
      w := next
    done;
    rng := !r;
    Alcotest.(check bool)
      (Printf.sprintf "chain stabilizes (%d changes)" !changes)
      true (!changes <= 8)
  done

(* ------------------------------------------------------------------ *)
(* Loop convergence: widening + narrowing recovers the exact bound     *)

let loop_src =
  {|
fn count_to() -> u64 {
    let mut i = 0;
    while i < 100 { i = i + 1; }
    i
}

fn count_unbounded(n: u64) -> u64 {
    let mut i = 0;
    while i < n { i = i + 1; }
    i
}
|}

let test_loop_convergence () =
  let program = compile_extra loop_src in
  let module A = Analysis.Interval_lint.A in
  let ctx = A.create_ctx ~prim:(fun ~func:_ ~args:_ -> None) program in
  (match A.analyze ctx "count_to" with
  | None -> Alcotest.fail "count_to has no body"
  | Some (body, soln) ->
      let ret = A.collapse (A.return_value body soln) in
      Alcotest.(check bool)
        (Printf.sprintf "exit interval is exactly 100 (got %s)"
           (Itv.to_string ret))
        true
        (Itv.equal ret (Itv.v 100L 100L)));
  (match A.analyze ctx "count_unbounded" with
  | None -> Alcotest.fail "count_unbounded has no body"
  | Some (body, soln) ->
      let ret = A.collapse (A.return_value body soln) in
      Alcotest.(check bool) "unbounded loop still sound" true
        (Itv.subset (Itv.v 0L 0L) ret));
  let st = A.stats ctx in
  Alcotest.(check bool)
    (Printf.sprintf "bounded visits (max %d)" st.A.max_visits)
    true
    (st.A.max_visits <= 10);
  Alcotest.(check bool)
    (Printf.sprintf "bounded iterations (%d)" st.A.iterations)
    true (st.A.iterations < 1000)

(* ------------------------------------------------------------------ *)
(* Bounds certification + unchecked-arith discharge                    *)

(* x & 3 indexes a 4-array (certified in bounds) and feeds a raw add
   (provably overflow-free, discharged); indexing and adding the raw
   parameter x stays flagged. *)
let fix_bounds () =
  let b = B.create ~name:"fix_bounds" ~params:[ ("_1", u64, Syn.Ktemp) ] ~ret_ty:u64 in
  let arr = B.local b ~name:"arr" (Mir.Ty.Array (u64, 4)) in
  let t = B.temp b u64 in
  let chk = B.temp b (Mir.Ty.Tuple [ u64; Mir.Ty.Bool ]) in
  let y = B.temp b u64 in
  let z = B.temp b u64 in
  let r1 = B.temp b u64 in
  let r2 = B.temp b u64 in
  B.assign_var b arr (Syn.Repeat (B.cu64 0, 4));
  B.assign_var b t (Syn.Binary (Syn.Bit_and, B.copy "_1", B.cu64 3));
  B.assign_var b chk (Syn.Checked_binary (Syn.Add, B.copy t, B.cu64 1));
  B.assign_var b y (Syn.Binary (Syn.Add, B.copy t, B.cu64 1));
  B.assign_var b z (Syn.Binary (Syn.Add, B.copy "_1", B.cu64 1));
  B.assign_var b r1 (Syn.Use (B.copy_place (B.pindex (B.pvar arr) t)));
  B.assign_var b r2 (Syn.Use (B.copy_place (B.pindex (B.pvar arr) "_1")));
  B.assign_var b Syn.return_var (Syn.Use (B.copy y));
  B.terminate b Syn.Return;
  B.finish b

let errors fs =
  List.filter (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error) fs

let test_bounds_and_discharge () =
  let body = fix_bounds () in
  let program = Syn.program_of_bodies [ body ] in
  let tagged, stats =
    Analysis.Interval_lint.check program ~funcs:[ "fix_bounds" ]
  in
  let fs = List.map snd tagged in
  Alcotest.(check int) "one index may escape" 1 stats.Analysis.Interval_lint.findings;
  Alcotest.(check int) "one arith site discharged" 1
    stats.Analysis.Interval_lint.discharged;
  Alcotest.(check bool) "several indexing sites examined" true
    (stats.Analysis.Interval_lint.bound_checks >= 2);
  let bounds_errors =
    List.filter (fun (f : Lint.finding) -> f.Lint.kind = Lint.Interval_bounds) (errors fs)
  in
  Alcotest.(check int) "bounds finding is the raw parameter" 1
    (List.length bounds_errors);
  (* reconciliation: the per-body arith lint flags both raw adds; the
     certificate cancels exactly the masked one *)
  let body_findings =
    Analysis.Pass.analyze
      { Analysis.Pass.default_config with Analysis.Pass.lints = [ Lint.Unchecked_arith ] }
      body
  in
  Alcotest.(check int) "per-body lint flags both raw adds" 2
    (List.length body_findings);
  let reconciled = Lint.reconcile (Lint.sort (body_findings @ fs)) in
  let remaining_arith =
    List.filter
      (fun (f : Lint.finding) -> f.Lint.kind = Lint.Unchecked_arith)
      (errors reconciled)
  in
  Alcotest.(check int) "discharge cancels the masked add" 1
    (List.length remaining_arith)

(* ------------------------------------------------------------------ *)
(* Secret flow: planted hypercall leaks fire, sanctioned path clean    *)

let leak_src =
  {|
// planted leak: copies a secret PTE word into OS-visible normal
// memory, bypassing the marshalling buffer
fn hc_leak_pte(dst: u64, off: u64) -> u64 {
    let w = phys_read(FRAME_BASE + (off & (PAGE_SIZE - 8)));
    phys_write(dst & (PAGE_SIZE - 1), w);
    OK
}

// planted leak: returns an enclave-page word in the OS's registers
fn hc_peek_epc(off: u64) -> u64 {
    phys_read(EPC_BASE + (off & (PAGE_SIZE - 8)))
}

// sanctioned: the same word through the marshalling-buffer window
fn hc_peek_mbuf(off: u64) -> u64 {
    let w = phys_read(FRAME_BASE + (off & (PAGE_SIZE - 8)));
    phys_write(MBUF_PHYS + (off & (PAGE_SIZE - 8)), w);
    OK
}

// the sink lives in the callee: the finding surfaces at the caller,
// whose actual is secret — not inside the label-polymorphic helper
fn copy_out(dst: u64, v: u64) {
    phys_write(dst & (PAGE_SIZE - 1), v);
}
fn hc_leak_via_helper(dst: u64, off: u64) -> u64 {
    let w = phys_read(EPC_BASE + (off & (PAGE_SIZE - 8)));
    copy_out(dst, w);
    OK
}
|}

let secret_flow_findings program fn =
  let cfg = Security.Labels.secret_flow_config layout program in
  fst (Analysis.Secret_flow.check cfg ~funcs:[ fn ])

let test_planted_leaks_fire () =
  let program = compile_extra leak_src in
  let count fn = List.length (secret_flow_findings program fn) in
  Alcotest.(check int) "write leak fires" 1 (count "hc_leak_pte");
  Alcotest.(check int) "return leak fires" 1 (count "hc_peek_epc");
  Alcotest.(check int) "mbuf declassification is clean" 0 (count "hc_peek_mbuf");
  Alcotest.(check int) "label-polymorphic helper is clean" 0 (count "copy_out");
  match secret_flow_findings program "hc_leak_via_helper" with
  | [ (fn, f) ] ->
      Alcotest.(check string) "caller-side finding" "hc_leak_via_helper" fn;
      Alcotest.(check bool) "detail names the helper" true
        (let re = Str.regexp_string "copy_out" in
         try
           ignore (Str.search_forward re f.Lint.detail 0);
           true
         with Not_found -> false)
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one caller-side finding, got %d"
           (List.length fs))

let test_policy_classification () =
  let module L = Security.Labels in
  let page = Int64.of_int (Hyperenclave.Geometry.page_size layout.Hyperenclave.Layout.geom) in
  let mbuf = layout.Hyperenclave.Layout.mbuf_base in
  let frame = layout.Hyperenclave.Layout.frame_base in
  let epc = layout.Hyperenclave.Layout.epc_base in
  (match L.classify_write layout (Itv.v mbuf (Int64.add mbuf (Int64.sub page 1L))) with
  | L.Declassified -> ()
  | _ -> Alcotest.fail "mbuf write should be declassified");
  (match L.classify_write layout (Itv.v 0L (Int64.sub page 1L)) with
  | L.Observable -> ()
  | _ -> Alcotest.fail "normal-memory write should be observable");
  (match L.classify_write layout (Itv.v frame frame) with
  | L.Internal -> ()
  | _ -> Alcotest.fail "frame-area write should be internal");
  (match L.classify_write layout Itv.top with
  | L.Internal -> ()
  | _ -> Alcotest.fail "unknown write target may be secure: internal");
  (match L.classify_read layout (Itv.v epc epc) with
  | L.Read_secret _ -> ()
  | L.Read_public -> Alcotest.fail "EPC read should be secret");
  (match L.classify_read layout (Itv.v 0L 7L) with
  | L.Read_public -> ()
  | L.Read_secret _ -> Alcotest.fail "normal read should be public");
  Alcotest.(check bool) "hc_create is a boundary" true (L.boundary layout "hc_create");
  Alcotest.(check bool) "walk is not a boundary" false (L.boundary layout "walk")

(* The seed stack carries secrets internally but must produce zero
   findings in either domain: every write is secure-internal or
   mbuf-declassified and no hypercall returns secret-derived data. *)
let test_seed_stack_clean () =
  let program = seed_program () in
  let cg = Analysis.Callgraph.build program in
  let sccs = Analysis.Callgraph.sccs cg in
  let cfg = Security.Labels.secret_flow_config layout program in
  List.iter
    (fun funcs ->
      let sf, _ = Analysis.Secret_flow.check cfg ~funcs in
      Alcotest.(check int)
        (Printf.sprintf "secret-flow clean: %s" (String.concat "+" funcs))
        0 (List.length sf);
      let itv, stats = Analysis.Interval_lint.check program ~funcs in
      ignore itv;
      Alcotest.(check int)
        (Printf.sprintf "interval clean: %s" (String.concat "+" funcs))
        0 stats.Analysis.Interval_lint.findings)
    sccs

(* Widening-threshold budget: thresholds are harvested only from
   literals a branch can test against (comparisons, switch cases,
   asserts) — harvesting every body literal used to cost 8,419 interval
   iterations over the seed stack.  Pins the trim: the iteration total
   must stay strictly below the old count while every finding and
   discharge stays exactly what it was (zero findings, and the same
   discharge certificates the arith lint relies on). *)
let test_seed_stack_iteration_budget () =
  let program = seed_program () in
  let cg = Analysis.Callgraph.build program in
  let sccs = Analysis.Callgraph.sccs cg in
  let iters = ref 0 in
  let findings = ref 0 in
  List.iter
    (fun funcs ->
      let _, stats = Analysis.Interval_lint.check program ~funcs in
      iters := !iters + stats.Analysis.Interval_lint.iterations;
      findings := !findings + stats.Analysis.Interval_lint.findings)
    sccs;
  Alcotest.(check int) "still zero findings" 0 !findings;
  Alcotest.(check bool)
    (Printf.sprintf "iteration total below the pre-trim 8419 (got %d)" !iters)
    true (!iters < 8419)

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)

let test_callgraph () =
  let program = compile_extra leak_src in
  let cg = Analysis.Callgraph.build program in
  let reach = Analysis.Callgraph.reachable cg [ "hc_leak_via_helper" ] in
  Alcotest.(check bool) "closure includes the helper" true
    (List.mem "copy_out" reach);
  Alcotest.(check bool) "closure includes the root" true
    (List.mem "hc_leak_via_helper" reach);
  (* callees-first: every callee SCC index precedes the caller's *)
  let sccs = Array.of_list (Analysis.Callgraph.sccs cg) in
  Array.iteri
    (fun i members ->
      List.iter
        (fun j ->
          Alcotest.(check bool) "callee SCCs come first" true (j < i))
        (Analysis.Callgraph.callee_sccs cg members))
    sccs

(* ------------------------------------------------------------------ *)
(* Engine: fingerprint stability, SCC deps, pool run                   *)

let test_absint_obligations () =
  let obls = Engine.Plan.absint_obligations layout in
  let again = Engine.Plan.absint_obligations layout in
  let sig_of (o : Engine.Obligation.t) = (o.Engine.Obligation.id, o.Engine.Obligation.fingerprint) in
  Alcotest.(check bool) "fingerprints are stable across builds" true
    (List.map sig_of obls = List.map sig_of again);
  let cg = Analysis.Callgraph.build (seed_program ()) in
  Alcotest.(check int) "two domains per SCC"
    (2 * List.length (Analysis.Callgraph.sccs cg))
    (List.length obls);
  let ids = List.map (fun (o : Engine.Obligation.t) -> o.Engine.Obligation.id) obls in
  List.iter
    (fun (o : Engine.Obligation.t) ->
      List.iter
        (fun d ->
          Alcotest.(check bool) "deps resolve to absint ids" true (List.mem d ids))
        o.Engine.Obligation.deps)
    obls;
  (* interval fingerprints are layout-free; secret-flow ones aren't *)
  List.iter
    (fun (o : Engine.Obligation.t) ->
      let has_layout =
        let re = Str.regexp_string "layout{" in
        try
          ignore (Str.search_forward re o.Engine.Obligation.fingerprint 0);
          true
        with Not_found -> false
      in
      let is_secret =
        String.length o.Engine.Obligation.id >= 18
        && String.sub o.Engine.Obligation.id 0 18 = "absint/secret-flow"
      in
      Alcotest.(check bool)
        (Printf.sprintf "layout in fingerprint iff secret-flow (%s)"
           o.Engine.Obligation.id)
        is_secret has_layout)
    obls;
  (* the whole absint DAG executes green on the seed *)
  let execs = Engine.Pool.run ~jobs:2 (Engine.Dag.build_exn obls) in
  Alcotest.(check int) "all obligations ran" (List.length obls) (List.length execs);
  List.iter
    (fun (e : Engine.Pool.exec) ->
      Alcotest.(check int)
        (Printf.sprintf "green: %s" e.Engine.Pool.obligation.Engine.Obligation.id)
        0
        (Engine.Obligation.failure_count e.Engine.Pool.outcome))
    execs

let () =
  Alcotest.run "absint"
    [
      ( "interval",
        [
          Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
          Alcotest.test_case "widening terminates" `Quick test_widening_terminates;
          Alcotest.test_case "loop convergence" `Quick test_loop_convergence;
        ] );
      ( "bounds",
        [ Alcotest.test_case "bounds + discharge" `Quick test_bounds_and_discharge ] );
      ( "secret-flow",
        [
          Alcotest.test_case "policy classification" `Quick test_policy_classification;
          Alcotest.test_case "planted leaks fire" `Quick test_planted_leaks_fire;
          Alcotest.test_case "seed stack clean" `Quick test_seed_stack_clean;
          Alcotest.test_case "iteration budget" `Quick
            test_seed_stack_iteration_budget;
        ] );
      ( "engine",
        [
          Alcotest.test_case "callgraph" `Quick test_callgraph;
          Alcotest.test_case "absint obligations" `Quick test_absint_obligations;
        ] );
    ]

(* Tests for the fault-injection and chaos-testing subsystem: plans,
   state-level injection, the chaos driver's checks (transactionality,
   invariants, TLB consistency, graceful degradation), counterexample
   shrinking, and MIR-level primitive/fuel faults. *)

open Hyperenclave
open Security
module Word = Mir.Word

let layout = Layout.default Geometry.tiny
let page_va i = Int64.mul (Int64.of_int (Geometry.page_size Geometry.tiny)) (Int64.of_int i)
let mbuf_page =
  (1 lsl (Geometry.va_bits Geometry.tiny - Geometry.tiny.Geometry.page_shift)) / 2

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let step what st a =
  match Transition.step st a with
  | Ok st' -> st'
  | Error msg -> Alcotest.failf "%s: step disabled: %s" what msg

(* A state with one Created enclave holding one EPC page at va 0. *)
let created_enclave () =
  let st = State.boot layout in
  let st =
    step "create" st
      (Transition.Hc_create
         { elrange_base = 0L; elrange_pages = 2; mbuf_va = page_va mbuf_page })
  in
  let eid = Int64.to_int (ok "eid" (State.reg st 1)) in
  let st = step "add" st (Transition.Hc_add_page { eid; va = 0L }) in
  (st, eid)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let test_shrink_minimal () =
  (* failing iff the list contains 3, 7 and 11 in order *)
  let still_fails xs =
    let rec scan want = function
      | [] -> want = []
      | x :: rest -> (
          match want with
          | w :: ws when x = w -> scan ws rest
          | _ -> scan want rest)
    in
    scan [ 3; 7; 11 ] xs
  in
  let noisy = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ] in
  let shrunk = Check.Shrink.list ~check:still_fails noisy in
  Alcotest.(check (list int)) "1-minimal witness" [ 3; 7; 11 ] shrunk

let test_shrink_not_failing () =
  let xs = [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "non-failing input unchanged" xs
    (Check.Shrink.list ~check:(fun _ -> false) xs)

let test_shrink_single () =
  let shrunk = Check.Shrink.list ~check:(List.mem 5) [ 9; 5; 9; 9; 5 ] in
  Alcotest.(check int) "single element survives" 1 (List.length shrunk);
  Alcotest.(check bool) "it is the witness" true (List.mem 5 shrunk)

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)

let test_exhaust_frames_transactional () =
  let st, eid = created_enclave () in
  let st = ok "exhaust" (Fault.Inject.apply Fault.Plan.Exhaust_frames st) in
  Alcotest.(check int) "pool drained" 0
    (Frame_alloc.free_count st.State.mon.Absdata.falloc);
  (* a hypercall that needs a fresh table must fail with No_memory and
     leave the abstract state untouched *)
  let st' =
    step "create under exhaustion" st
      (Transition.Hc_create
         { elrange_base = page_va 4; elrange_pages = 1; mbuf_va = page_va mbuf_page })
  in
  Alcotest.(check int64) "No_memory status"
    (Hypercall.status_code Hypercall.No_memory)
    (ok "r0" (State.reg st' 0));
  Alcotest.(check bool) "abstract state unchanged" true
    (Absdata.equal st.State.mon st'.State.mon);
  (* remove_page frees the EPC page and needs no new table: recovery *)
  let st' = step "remove" st' (Transition.Hc_remove_page { eid; va = 0L }) in
  Alcotest.(check int64) "remove succeeds under exhaustion"
    (Hypercall.status_code Hypercall.Success)
    (ok "r0" (State.reg st' 0))

let test_pt_bitflip_applies () =
  let st, _ = created_enclave () in
  let f = Fault.Plan.Flip_pt_bit { table = 0; index = 0; bit = 0 } in
  let st' = ok "flip" (Fault.Inject.apply f st) in
  Alcotest.(check bool) "fault corrupts" true (Fault.Plan.corrupts f);
  Alcotest.(check bool) "monitor state changed" false
    (Absdata.equal st.State.mon st'.State.mon)

let test_bitflip_no_tables () =
  (* a pristine state has no installed roots: the fault is a skip *)
  let st = { (State.boot layout) with State.mon = Absdata.create layout } in
  match Fault.Inject.apply (Fault.Plan.Flip_pt_bit { table = 3; index = 1; bit = 5 }) st with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip with no tables should be inapplicable"

let test_epcm_corruption_detected () =
  let st, _ = created_enclave () in
  let f =
    Fault.Plan.Corrupt_epcm { page = 0; state = Epcm.Valid { eid = 99; va = page_va 3 } }
  in
  let st' = ok "corrupt" (Fault.Inject.apply f st) in
  match Invariants.check st'.State.mon with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "EPCM corruption must violate the invariants"

let test_tlb_prefetch_consistent () =
  let st, _ = created_enclave () in
  let st' = ok "prefetch" (Fault.Inject.apply (Fault.Plan.Tlb_prefetch { pick = 0 }) st) in
  Alcotest.(check bool) "an entry was cached" true
    (Tlb.entry_count st'.State.tlb > Tlb.entry_count st.State.tlb);
  ok "prefetch is consistent" (Fault.Chaos.tlb_consistent st')

(* ------------------------------------------------------------------ *)
(* Chaos driver                                                        *)

let test_chaos_correct_monitor () =
  let stats, cx = Fault.Chaos.run ~seed:2024 ~traces:400 ~len:40 layout in
  (match cx with
  | None -> ()
  | Some cx ->
      Alcotest.failf "correct monitor failed chaos: %s"
        (Format.asprintf "%a" Fault.Chaos.pp_counterexample cx));
  Alcotest.(check int) "all traces ran" 400 stats.Fault.Chaos.traces;
  Alcotest.(check bool) "faults were injected" true (stats.Fault.Chaos.faults > 0)

let test_chaos_fault_free () =
  let stats, cx = Fault.Chaos.run ~faults:[] ~seed:7 ~traces:100 ~len:40 layout in
  Alcotest.(check bool) "no counterexample" true (cx = None);
  Alcotest.(check int) "no faults" 0 stats.Fault.Chaos.faults

let test_chaos_finds_and_shrinks_stale_tlb () =
  (* the buggy monitor (remove_page without the flush) must produce a
     stale-TLB counterexample that shrinks to a handful of events *)
  let _, cx = Fault.Chaos.run ~flush:false ~seed:2024 ~traces:3000 ~len:40 layout in
  match cx with
  | None -> Alcotest.fail "chaos failed to find the stale-TLB bug"
  | Some cx ->
      Alcotest.(check string) "violation kind" "tlb-consistency"
        cx.Fault.Chaos.cx_failure.Fault.Chaos.check;
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d <= 6 events" (List.length cx.Fault.Chaos.cx_shrunk))
        true
        (List.length cx.Fault.Chaos.cx_shrunk <= 6);
      (* the witness replays from scratch ... *)
      (match Fault.Chaos.replay ~flush:false layout cx.Fault.Chaos.cx_shrunk with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shrunk witness no longer fails");
      (* ... the printed seed re-derives the full failing trace ... *)
      let replayed =
        Fault.Chaos.events_for ~seed:cx.Fault.Chaos.cx_seed ~len:40 layout
      in
      Alcotest.(check (list string)) "seed reproduces the trace"
        (List.map Fault.Chaos.event_to_string cx.Fault.Chaos.cx_events)
        (List.map Fault.Chaos.event_to_string replayed);
      (* ... and the correct monitor survives the same witness *)
      ok "correct monitor survives the witness"
        (Result.map (fun _ -> ()) (Fault.Chaos.replay ~flush:true layout cx.Fault.Chaos.cx_shrunk)
         |> Result.map_error (fun f -> Format.asprintf "%a" Fault.Chaos.pp_failure f))

let test_chaos_minimal_witness_direct () =
  (* the distilled stale-TLB witness: create, add, prefetch, remove *)
  let events =
    [
      Fault.Chaos.Act
        (Transition.Hc_create
           { elrange_base = 0L; elrange_pages = 1; mbuf_va = page_va mbuf_page });
      Fault.Chaos.Act (Transition.Hc_add_page { eid = 1; va = 0L });
      Fault.Chaos.Inject (Fault.Plan.Tlb_prefetch { pick = 0 });
      Fault.Chaos.Act (Transition.Hc_remove_page { eid = 1; va = 0L });
    ]
  in
  (match Fault.Chaos.replay ~flush:false layout events with
  | Ok _ -> Alcotest.fail "buggy monitor must fail the 4-event witness"
  | Error f ->
      Alcotest.(check string) "tlb-consistency" "tlb-consistency"
        f.Fault.Chaos.check);
  match Fault.Chaos.replay ~flush:true layout events with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "correct monitor failed the witness: %s"
        (Format.asprintf "%a" Fault.Chaos.pp_failure f)

let test_chaos_truncation_halts () =
  let events =
    [
      Fault.Chaos.Inject Fault.Plan.Truncate;
      (* unreachable: an exception here would otherwise surface *)
      Fault.Chaos.Act (Transition.Const { dst = 99; value = 0L });
    ]
  in
  let sum =
    match Fault.Chaos.replay layout events with
    | Ok sum -> sum
    | Error f ->
        Alcotest.failf "truncated replay failed: %s"
          (Format.asprintf "%a" Fault.Chaos.pp_failure f)
  in
  Alcotest.(check int) "only the truncation ran" 1 sum.Fault.Chaos.ran

(* ------------------------------------------------------------------ *)
(* MIR-level chaos                                                     *)

let test_mir_chaos_graceful () =
  let report, outcomes = Fault.Mir_chaos.run layout in
  if not (Mirverif.Report.ok report) then
    Alcotest.failf "mir chaos not graceful: %s" (Mirverif.Report.to_string report);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Fault.Mir_chaos.target ^ " exercised primitives")
        true
        (o.Fault.Mir_chaos.prim_calls > 0))
    outcomes

let () =
  Alcotest.run "fault"
    [
      ( "shrink",
        [
          Alcotest.test_case "minimal subsequence" `Quick test_shrink_minimal;
          Alcotest.test_case "non-failing unchanged" `Quick test_shrink_not_failing;
          Alcotest.test_case "single element" `Quick test_shrink_single;
        ] );
      ( "inject",
        [
          Alcotest.test_case "exhaustion is transactional" `Quick
            test_exhaust_frames_transactional;
          Alcotest.test_case "pt bit flip applies" `Quick test_pt_bitflip_applies;
          Alcotest.test_case "bit flip needs tables" `Quick test_bitflip_no_tables;
          Alcotest.test_case "epcm corruption detected" `Quick
            test_epcm_corruption_detected;
          Alcotest.test_case "tlb prefetch consistent" `Quick
            test_tlb_prefetch_consistent;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "correct monitor survives" `Slow test_chaos_correct_monitor;
          Alcotest.test_case "fault-free traces" `Quick test_chaos_fault_free;
          Alcotest.test_case "stale TLB found and shrunk" `Slow
            test_chaos_finds_and_shrinks_stale_tlb;
          Alcotest.test_case "minimal witness direct" `Quick
            test_chaos_minimal_witness_direct;
          Alcotest.test_case "truncation halts the trace" `Quick
            test_chaos_truncation_halts;
        ] );
      ( "mir",
        [ Alcotest.test_case "prim/fuel faults graceful" `Quick test_mir_chaos_graceful ] );
    ]

(* Tests of the verification service (lib/serve): wire framing
   round-trips under torn and oversized input, the Jsonx parser the
   protocol rides on, request decoding and validation, determinism of
   daemon responses against repeat and batched evaluation (stdout
   byte-identical, summaries identical through the deterministic
   projection), the L0 response-replay lifecycle, the plan memo, the
   cross-process proof-cache sharing path (packs appearing mid-scan,
   advisory-locked concurrent flushes), and an end-to-end daemon
   round-trip over a real Unix socket. *)

module Jsonx = Engine.Jsonx
module Protocol = Serve.Protocol
module Driver = Serve.Driver
module Summary = Serve.Summary
module Server = Serve.Server
module Client = Serve.Client
module Obligation = Engine.Obligation
module Cache = Engine.Cache
module Plan = Engine.Plan
module Report = Mirverif.Report

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-serve-test-%d-%d" (Unix.getpid ()) !n)

let pass_obl ?(phase = "test") ?(deps = []) ?(fingerprint = "fp") id =
  Obligation.v ~id ~phase ~deps ~fingerprint (fun () ->
      Obligation.outcome [ Report.add_pass (Report.empty id) ])

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)

let drain_frames reader =
  let rec go acc =
    match Protocol.Reader.next reader with
    | `Frame p -> go (p :: acc)
    | `More -> List.rev acc
    | `Oversized n -> Alcotest.failf "unexpected oversized (%d)" n
  in
  go []

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 255 'a'; String.make 70_000 '\x00'; "{\"op\":\"ping\"}" ] in
  let wire = String.concat "" (List.map Protocol.frame payloads) in
  let reader = Protocol.Reader.create () in
  Protocol.Reader.feed reader wire;
  Alcotest.(check (list string)) "all frames recovered in order" payloads
    (drain_frames reader)

let test_frame_torn_feed () =
  (* one byte at a time: every prefix is a legal torn read *)
  let payloads = [ "alpha"; ""; "beta{}" ] in
  let wire = String.concat "" (List.map Protocol.frame payloads) in
  let reader = Protocol.Reader.create () in
  let out = ref [] in
  String.iter
    (fun c ->
      Protocol.Reader.feed reader (String.make 1 c);
      out := !out @ drain_frames reader)
    wire;
  Alcotest.(check (list string)) "torn feed reassembles" payloads !out

let test_frame_oversized () =
  let n = Protocol.max_frame + 1 in
  let hdr =
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))
  in
  let reader = Protocol.Reader.create () in
  Protocol.Reader.feed reader hdr;
  (match Protocol.Reader.next reader with
  | `Oversized m -> Alcotest.(check int) "announced size" n m
  | `Frame _ | `More -> Alcotest.fail "oversized header not rejected");
  match Protocol.frame (String.make 1 'x') with
  | (_ : string) -> (
      match Protocol.frame (String.make (Protocol.max_frame + 1) 'x') with
      | (_ : string) -> Alcotest.fail "frame accepted an oversized payload"
      | exception Invalid_argument _ -> ())

let test_blocking_read_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Protocol.write_frame a "hello";
  (match Protocol.read_frame b with
  | Ok (Some p) -> Alcotest.(check string) "payload" "hello" p
  | Ok None | Error _ -> Alcotest.fail "expected a frame");
  (* EOF exactly at a frame boundary is a clean close *)
  Unix.close a;
  (match Protocol.read_frame b with
  | Ok None -> ()
  | Ok (Some _) | Error _ -> Alcotest.fail "expected clean EOF");
  Unix.close b;
  (* EOF mid-frame is Closed *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let partial = String.sub (Protocol.frame "payload") 0 6 in
  let n = Unix.write_substring a partial 0 (String.length partial) in
  Alcotest.(check int) "partial written" 6 n;
  Unix.close a;
  (match Protocol.read_frame b with
  | exception Protocol.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Closed mid-frame");
  Unix.close b

let test_pack_items_roundtrip () =
  let items =
    [ ("0", "{\"op\":\"verify\"}"); ("17", ""); ("t\x00ag", String.make 4096 '\xff') ]
  in
  (match Protocol.unpack_items (Protocol.pack_items items) with
  | Ok back -> Alcotest.(check (list (pair string string))) "items" items back
  | Error msg -> Alcotest.fail msg);
  (match Protocol.unpack_items "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty pack should be empty list");
  match Protocol.unpack_items "\x00\x00\x00\x09x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated pack accepted"

let test_item_size_accounting () =
  (* the admission batcher's byte bound is only sound if item_size is
     exactly the packed footprint *)
  let items =
    [ ("0", ""); ("123", "payload"); ("t", String.make 9_000 'x') ]
  in
  List.iteri
    (fun i _ ->
      let prefix = List.filteri (fun j _ -> j <= i) items in
      Alcotest.(check int)
        (Printf.sprintf "pack of %d items" (i + 1))
        (List.fold_left (fun acc it -> acc + Protocol.item_size it) 0 prefix)
        (String.length (Protocol.pack_items prefix)))
    items

(* take_batch must bound batches by packed bytes as well as count:
   clients may each legally send close to max_frame, and a count-only
   bound would make pack_items of a full batch unframeable (a daemon
   crash, pre-fix). *)
let test_take_batch_byte_bound () =
  let mk_state batch_max =
    {
      Server.cfg =
        { (Server.default_config ~socket:"unused") with Server.batch_max };
      listen_fd = Unix.stdin;
      clients = Hashtbl.create 1;
      workers = [||];
      inproc = None;
      tag_owner = [];
      next_tag = 0;
      pending = Queue.create ();
      pending_since = 0.0;
      stop = false;
      dead_fds = [];
    }
  in
  let frameable items =
    String.length (Protocol.pack_items items) <= Protocol.max_frame
  in
  (* count bound still applies to small items *)
  let st = mk_state 4 in
  for i = 0 to 9 do
    Queue.add (string_of_int i, "tiny") st.Server.pending
  done;
  Alcotest.(check int) "count-bounded" 4 (List.length (Server.take_batch st));
  (* 3 MiB payloads: two fit under max_frame, the third must wait *)
  let st = mk_state 32 in
  let big = String.make (3 * 1024 * 1024) 'p' in
  for i = 0 to 3 do
    Queue.add (string_of_int i, big) st.Server.pending
  done;
  let batch = Server.take_batch st in
  Alcotest.(check int) "byte-bounded" 2 (List.length batch);
  Alcotest.(check bool) "batch frameable" true (frameable batch);
  let batch2 = Server.take_batch st in
  Alcotest.(check int) "remainder drains" 2 (List.length batch2);
  Alcotest.(check bool) "second batch frameable" true (frameable batch2);
  (* the head item is always taken, even when it alone cannot meet the
     bound (dispatch_to turns that into an error response, not a crash) *)
  let st = mk_state 32 in
  Queue.add ("0", String.make Protocol.max_frame 'q') st.Server.pending;
  Queue.add ("1", "tiny") st.Server.pending;
  Alcotest.(check int) "oversized head taken alone" 1
    (List.length (Server.take_batch st))

(* ------------------------------------------------------------------ *)
(* Jsonx parsing                                                       *)

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\nd\te\x01");
        ("i", Jsonx.Int (-42));
        ("big", Jsonx.Int max_int);
        ("f", Jsonx.Float 1.5);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Str ""; Jsonx.Obj []; Jsonx.List [] ]);
      ]
  in
  match Jsonx.parse (Jsonx.to_string j) with
  | Ok back -> Alcotest.(check bool) "structurally equal" true (j = back)
  | Error msg -> Alcotest.fail msg

let test_jsonx_escapes () =
  (match Jsonx.parse {|"A\n\"\\\/ é"|} with
  | Ok (Jsonx.Str s) -> Alcotest.(check string) "escapes" "A\n\"\\/ \xc3\xa9" s
  | _ -> Alcotest.fail "escape parse failed");
  match Jsonx.parse {|"😀"|} with
  | Ok (Jsonx.Str s) -> Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate parse failed"

let test_jsonx_numbers () =
  (match Jsonx.parse "3" with
  | Ok (Jsonx.Int 3) -> ()
  | _ -> Alcotest.fail "int");
  (match Jsonx.parse "3.5" with
  | Ok (Jsonx.Float f) -> Alcotest.(check (float 0.0)) "float" 3.5 f
  | _ -> Alcotest.fail "float");
  match Jsonx.parse "1e3" with
  | Ok (Jsonx.Float f) -> Alcotest.(check (float 0.0)) "exponent" 1000.0 f
  | _ -> Alcotest.fail "exponent"

let test_jsonx_errors () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ "{"; "[1,]"; "\"unterminated"; "nul"; "{} trailing"; "{\"a\" 1}"; "" ]

let test_jsonx_depth () =
  (* realistic nesting parses... *)
  let nested d = String.make d '[' ^ "0" ^ String.make d ']' in
  (match Jsonx.parse (nested 100) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "rejected 100-deep nesting: %s" msg);
  (* ...but adversarial depth is an Error, not a Stack_overflow that
     would escape the daemon's per-request handling and kill it *)
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted pathological nesting"
      | exception _ -> Alcotest.fail "pathological nesting raised")
    [
      String.make 500_000 '[';
      nested 10_000;
      String.concat "" (List.init 10_000 (fun _ -> "{\"k\":[")) ^ "0";
    ]

(* ------------------------------------------------------------------ *)
(* Request decode                                                      *)

let test_request_defaults () =
  match Driver.request_of_string "{}" with
  | Ok r -> Alcotest.(check bool) "defaults" true (r = Driver.default_request)
  | Error msg -> Alcotest.fail msg

let test_request_roundtrip () =
  let r =
    {
      Driver.default_request with
      Driver.geometry = "x86_64";
      seed = 7;
      quick = true;
      overrides = false;
      mc =
        Some
          {
            Driver.mc_depth = 4;
            mc_por = false;
            mc_geometry = "tiny3";
            mc_buggy_tlb = true;
          };
      source_digest = Some "abc";
    }
  in
  match Driver.request_of_string (Jsonx.to_string (Driver.json_of_request r)) with
  | Ok back -> Alcotest.(check bool) "round trips" true (r = back)
  | Error msg -> Alcotest.fail msg

let test_request_validation () =
  List.iter
    (fun s ->
      match Driver.request_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid request %s" s)
    [
      {|{"op":"frobnicate"}|};
      {|{"geometry":"riscv"}|};
      {|{"lints":"no-such-lint"}|};
      {|{"seed":"high"}|};
      {|{"model_check":{"depth":0}}|};
      {|{"model_check":{"depth":3,"geometry":"x86_64"}}|};
      "not json at all";
    ]

(* ------------------------------------------------------------------ *)
(* Driver determinism                                                  *)

let parse_response r =
  match Jsonx.parse r with
  | Ok j -> j
  | Error msg -> Alcotest.failf "unparseable response: %s" msg

let rfield j k =
  match Jsonx.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks field %S" k

let assert_ok j =
  if Jsonx.member "ok" j <> Some (Jsonx.Bool true) then
    Alcotest.failf "response not ok: %s" (Jsonx.to_string j)

let stdout_of j = Option.get (Jsonx.to_string_opt (rfield j "stdout"))
let scrubbed_of j = Jsonx.to_string (Summary.scrub (rfield j "summary"))
let status_of j = Option.get (Jsonx.to_int_opt (rfield j "status"))

let executed_of j =
  Option.get (Jsonx.to_int_opt (rfield (rfield j "summary") "executed"))

(* The phase-selection matrix: lint subsets, overrides off, model
   checking on (with and without POR, on both mc geometries), the big
   geometry.  Every request is --quick-sized. *)
let matrix =
  [
    {|{"op":"verify","quick":true,"seed":11,"lints":"body"}|};
    {|{"op":"verify","quick":true,"seed":12,"lints":"all","overrides":false}|};
    {|{"op":"verify","quick":true,"seed":13,"lints":"borrow","model_check":{"depth":3}}|};
    {|{"op":"verify","quick":true,"seed":14,"geometry":"x86_64","lints":"body"}|};
    {|{"op":"verify","quick":true,"seed":15,"lints":"interprocedural",
       "model_check":{"depth":3,"por":false,"geometry":"tiny3"}}|};
  ]

(* Two independent sessions must produce the same verification content:
   stdout byte-identical, summaries identical through the deterministic
   projection.  (The sessions share the process-global plan memo — so
   this also checks that plan reuse never changes content.) *)
let test_repeat_determinism () =
  List.iter
    (fun payload ->
      let a = parse_response (Driver.handle_one (Driver.session ()) payload) in
      let b = parse_response (Driver.handle_one (Driver.session ()) payload) in
      assert_ok a;
      assert_ok b;
      Alcotest.(check string) "stdout byte-identical" (stdout_of a) (stdout_of b);
      Alcotest.(check string) "scrubbed summary identical" (scrubbed_of a)
        (scrubbed_of b);
      Alcotest.(check int) "status identical" (status_of a) (status_of b);
      Alcotest.(check int) "clean verdict" 0 (status_of a))
    matrix

(* A merged-DAG batch must be byte-identical to unbatched evaluation of
   the same requests. *)
let test_batch_equals_singletons () =
  let payloads =
    [
      {|{"op":"verify","quick":true,"seed":21,"lints":"body"}|};
      {|{"op":"verify","quick":true,"seed":22,"lints":"borrow"}|};
      {|{"op":"verify","quick":true,"seed":23,"lints":"body","overrides":false}|};
    ]
  in
  let batched =
    Driver.handle_batch (Driver.session ())
      (List.mapi (fun i p -> (string_of_int i, p)) payloads)
  in
  Alcotest.(check int) "one response per request" (List.length payloads)
    (List.length batched);
  List.iteri
    (fun i payload ->
      let b = parse_response (List.assoc (string_of_int i) batched) in
      let s = parse_response (Driver.handle_one (Driver.session ()) payload) in
      assert_ok b;
      assert_ok s;
      Alcotest.(check string) "stdout batched = singleton" (stdout_of s) (stdout_of b);
      Alcotest.(check string) "scrubbed summary batched = singleton" (scrubbed_of s)
        (scrubbed_of b))
    payloads

(* Duplicate requests inside one batch deduplicate to one evaluation
   but still answer every tag. *)
let test_batch_dedup () =
  let p = {|{"op":"verify","quick":true,"seed":24,"lints":"body"}|} in
  let responses =
    Driver.handle_batch (Driver.session ()) [ ("a", p); ("b", p); ("c", p) ]
  in
  Alcotest.(check int) "three responses" 3 (List.length responses);
  match List.map snd responses with
  | [ x; y; z ] ->
      Alcotest.(check string) "identical bytes a/b" x y;
      Alcotest.(check string) "identical bytes b/c" y z;
      assert_ok (parse_response x)
  | _ -> Alcotest.fail "batch shape"

(* Malformed payloads get per-tag error responses; the good requests in
   the same batch still verify. *)
let test_batch_bad_payloads () =
  let responses =
    Driver.handle_batch (Driver.session ())
      [
        ("good", {|{"op":"verify","quick":true,"seed":25,"lints":"body"}|});
        ("bad-json", "{");
        ("bad-req", {|{"geometry":"riscv"}|});
      ]
  in
  let by_tag tag = parse_response (List.assoc tag responses) in
  assert_ok (by_tag "good");
  Alcotest.(check bool) "bad json refused" true
    (Jsonx.member "ok" (by_tag "bad-json") = Some (Jsonx.Bool false));
  Alcotest.(check bool) "bad request refused" true
    (Jsonx.member "ok" (by_tag "bad-req") = Some (Jsonx.Bool false))

let test_source_digest_gate () =
  let ok_payload =
    Printf.sprintf
      {|{"op":"verify","quick":true,"seed":26,"lints":"body","source_digest":"%s"}|}
      (Driver.source_digest_of "tiny")
  in
  assert_ok (parse_response (Driver.handle_one (Driver.session ()) ok_payload));
  let bad =
    parse_response
      (Driver.handle_one (Driver.session ())
         {|{"op":"verify","quick":true,"source_digest":"deadbeef"}|})
  in
  Alcotest.(check bool) "mismatched digest refused" true
    (Jsonx.member "ok" bad = Some (Jsonx.Bool false))

(* The L0 replay lifecycle: a response is memoized only once its run
   re-executed nothing, and replayed bytes are identical. *)
let test_replay_lifecycle () =
  let session = Driver.session ~cache_dir:(fresh_dir ()) () in
  let p = {|{"op":"verify","quick":true,"seed":777,"lints":"body"}|} in
  let r1 = Driver.handle_one session p in
  let j1 = parse_response r1 in
  assert_ok j1;
  Alcotest.(check bool) "cold run executed work" true (executed_of j1 > 0);
  Alcotest.(check int) "cold response not memoized" 0 (Hashtbl.length session.Driver.replay);
  let r2 = Driver.handle_one session p in
  let j2 = parse_response r2 in
  Alcotest.(check int) "warm run pure cache replay" 0 (executed_of j2);
  Alcotest.(check int) "warm response memoized" 1 (Hashtbl.length session.Driver.replay);
  Alcotest.(check int) "not served from L0 yet" 0 session.Driver.replays;
  Alcotest.(check string) "stdout cold = warm" (stdout_of j1) (stdout_of j2);
  let r3 = Driver.handle_one session p in
  Alcotest.(check int) "third response served from L0" 1 session.Driver.replays;
  Alcotest.(check string) "replayed bytes identical" r2 r3

let test_plan_memo () =
  Plan.reset_memo ();
  let layout = Hyperenclave.Layout.default Hyperenclave.Geometry.tiny in
  let p1, hit1, _ = Plan.build_memo ~quick:true ~seed:31 layout in
  let p2, hit2, _ = Plan.build_memo ~quick:true ~seed:31 layout in
  let _, hit3, _ = Plan.build_memo ~quick:true ~seed:32 layout in
  Alcotest.(check bool) "first build misses" false hit1;
  Alcotest.(check bool) "repeat hits" true hit2;
  Alcotest.(check bool) "memo returns the same plan" true (p1 == p2);
  Alcotest.(check bool) "different seed misses" false hit3

(* plan_build_s / plan_cache_hit surface in the summary, and the hit
   flag flips on the repeat request. *)
let test_plan_fields_in_summary () =
  Plan.reset_memo ();
  let p = {|{"op":"verify","quick":true,"seed":888,"lints":"body"}|} in
  let j1 = parse_response (Driver.handle_one (Driver.session ()) p) in
  let j2 = parse_response (Driver.handle_one (Driver.session ()) p) in
  let hit j =
    match Jsonx.member "plan_cache_hit" (rfield j "summary") with
    | Some (Jsonx.Bool b) -> b
    | _ -> Alcotest.fail "summary lacks plan_cache_hit"
  in
  (match Jsonx.member "plan_build_s" (rfield j1 "summary") with
  | Some (Jsonx.Float _) -> ()
  | _ -> Alcotest.fail "summary lacks plan_build_s");
  Alcotest.(check bool) "first request builds the plan" false (hit j1);
  Alcotest.(check bool) "repeat request hits the plan memo" true (hit j2)

(* ------------------------------------------------------------------ *)
(* Cross-process proof-cache sharing                                   *)

(* A writer process interleaves stash/flush on a shared directory while
   this process interleaves its own flushes (contending for the
   advisory lock) and refresh/find loops (packs appear mid-scan).
   Every entry the child wrote must become visible here, and nothing
   may crash or corrupt. *)
let test_cache_two_process () =
  let dir = fresh_dir () in
  let total = 40 in
  let obl i = pass_obl ~fingerprint:(Printf.sprintf "fp%d" i) (Printf.sprintf "mp/%d" i) in
  match Unix.fork () with
  | 0 ->
      (try
         let c = Cache.create ~dir in
         for i = 0 to total - 1 do
           let o = obl i in
           Cache.stash c o (o.Obligation.run ());
           if i mod 4 = 3 then Cache.flush c;
           ignore (Cache.refresh c)
         done;
         Cache.flush c
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      let c = Cache.create ~dir in
      (* contend for the flush lock while the child writes *)
      for i = 0 to 9 do
        let o = pass_obl ~fingerprint:"pfp" (Printf.sprintf "parent/%d" i) in
        Cache.stash c o (o.Obligation.run ());
        Cache.flush c
      done;
      let deadline = Unix.gettimeofday () +. 30. in
      let visible () =
        ignore (Cache.refresh c);
        List.length
          (List.filter (fun i -> Cache.find c (obl i) <> None) (List.init total Fun.id))
      in
      let rec wait_all () =
        let n = visible () in
        if n = total then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "only %d/%d child entries visible" n total
        else begin
          Unix.sleepf 0.01;
          wait_all ()
        end
      in
      wait_all ();
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "writer process failed");
      (* and the parent's own entries survived the interleaving *)
      List.iter
        (fun i ->
          let o = pass_obl ~fingerprint:"pfp" (Printf.sprintf "parent/%d" i) in
          Alcotest.(check bool) "parent entry present" true (Cache.find c o <> None))
        (List.init 10 Fun.id)

(* Batched execution shares proof-cache entries with one-shot runs: the
   re-id'd [b<i>/] obligations keep their canonical cache_id, so a
   batch warms the cache for singletons and vice versa. *)
let test_batch_shares_cache_entries () =
  let dir = fresh_dir () in
  let payloads =
    [
      {|{"op":"verify","quick":true,"seed":41,"lints":"body"}|};
      {|{"op":"verify","quick":true,"seed":42,"lints":"body"}|};
    ]
  in
  let batch_session = Driver.session ~cache_dir:dir () in
  let batched =
    Driver.handle_batch batch_session
      (List.mapi (fun i p -> (string_of_int i, p)) payloads)
  in
  List.iter (fun (_, r) -> assert_ok (parse_response r)) batched;
  (* a fresh session on the same directory replays everything *)
  let warm_session = Driver.session ~cache_dir:dir () in
  List.iter
    (fun p ->
      let j = parse_response (Driver.handle_one warm_session p) in
      assert_ok j;
      Alcotest.(check int) "batch warmed the one-shot path" 0 (executed_of j))
    payloads

(* ------------------------------------------------------------------ *)
(* End-to-end daemon round trip                                        *)

let test_daemon_end_to_end () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-serve-test-%d.sock" (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 ->
      (try
         Server.serve
           {
             (Server.default_config ~socket) with
             Server.fleet = 0;
             prewarm = false;
             batch_window_ms = 1.0;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Client.shutdown ~socket) with _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          Alcotest.(check bool) "daemon ready" true (Client.wait_ready ~socket ());
          let req =
            {|{"op":"verify","quick":true,"seed":4242,"lints":"body"}|}
          in
          (match Client.request ~socket req with
          | Error msg -> Alcotest.fail msg
          | Ok r ->
              let daemon = parse_response r in
              assert_ok daemon;
              Alcotest.(check int) "clean verdict over the wire" 0 (status_of daemon);
              (* byte-identical to local evaluation of the same request *)
              let local = parse_response (Driver.handle_one (Driver.session ()) req) in
              Alcotest.(check string) "daemon stdout = local stdout"
                (stdout_of local) (stdout_of daemon);
              Alcotest.(check string) "daemon summary = local summary (scrubbed)"
                (scrubbed_of local) (scrubbed_of daemon));
          (* malformed JSON is answered, not fatal *)
          (match Client.request ~socket "{definitely not json" with
          | Ok r ->
              Alcotest.(check bool) "malformed payload refused" true
                (Jsonx.member "ok" (parse_response r) = Some (Jsonx.Bool false))
          | Error msg -> Alcotest.fail msg);
          (* pathologically nested JSON is answered with a parse error,
             not a Stack_overflow that kills the daemon *)
          (match Client.request ~socket (String.make 500_000 '[') with
          | Ok r ->
              Alcotest.(check bool) "deep nesting refused" true
                (Jsonx.member "ok" (parse_response r) = Some (Jsonx.Bool false))
          | Error msg -> Alcotest.fail msg);
          (* a second daemon must refuse to steal a live socket; run the
             contender in a child so a regression (it binds and serves
             forever) fails the test instead of hanging it *)
          (match Unix.fork () with
          | 0 ->
              (match
                 Server.serve
                   {
                     (Server.default_config ~socket) with
                     Server.fleet = 0;
                     prewarm = false;
                   }
               with
              | () -> Unix._exit 10
              | exception Failure _ -> Unix._exit 11
              | exception _ -> Unix._exit 12)
          | contender ->
              let deadline = Unix.gettimeofday () +. 10.0 in
              let rec wait () =
                match Unix.waitpid [ Unix.WNOHANG ] contender with
                | 0, _ ->
                    if Unix.gettimeofday () > deadline then begin
                      Unix.kill contender Sys.sigkill;
                      ignore (Unix.waitpid [] contender);
                      Alcotest.fail "second daemon did not refuse promptly"
                    end
                    else begin
                      Unix.sleepf 0.02;
                      wait ()
                    end
                | _, Unix.WEXITED 11 -> ()
                | _, _ ->
                    Alcotest.fail "second daemon did not refuse the live socket"
              in
              wait ());
          (* an oversized frame announcement gets an error response and
             a closed connection, and the daemon survives *)
          (match Client.connect socket with
          | Error msg -> Alcotest.fail msg
          | Ok fd ->
              let n = Protocol.max_frame + 1 in
              let hdr =
                String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))
              in
              let w = Unix.write_substring fd hdr 0 4 in
              Alcotest.(check int) "header written" 4 w;
              (match Protocol.read_frame fd with
              | Ok (Some r) ->
                  Alcotest.(check bool) "oversized refused" true
                    (Jsonx.member "ok" (parse_response r) = Some (Jsonx.Bool false))
              | Ok None | Error _ -> Alcotest.fail "expected an error response");
              Unix.close fd);
          Alcotest.(check bool) "daemon still answers pings" true (Client.ping ~socket))

(* A fleet daemon fed a legal frame whose payload is within a few bytes
   of max_frame: packed with its tag it cannot cross the worker pipe,
   so pre-fix the dispatcher crashed in Protocol.frame.  It must answer
   with an error response and keep serving. *)
let test_daemon_fleet_unframeable_item () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mirverif-serve-test-fleet-%d.sock" (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 ->
      (try
         Server.serve
           {
             (Server.default_config ~socket) with
             Server.fleet = 1;
             prewarm = false;
             batch_window_ms = 1.0;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Client.shutdown ~socket) with _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          Alcotest.(check bool) "daemon ready" true (Client.wait_ready ~socket ());
          (* valid JSON (routes to the worker queue), 5 bytes under the
             frame cap: legal on the client wire, unframeable packed *)
          let n = Protocol.max_frame - 5 in
          let payload =
            "{\"a\":\"" ^ String.make (n - 8) 'x' ^ "\"}"
          in
          Alcotest.(check int) "payload fills the frame" n
            (String.length payload);
          (match Client.request ~socket payload with
          | Ok r ->
              let j = parse_response r in
              Alcotest.(check bool) "unframeable item refused" true
                (Jsonx.member "ok" j = Some (Jsonx.Bool false))
          | Error msg -> Alcotest.fail msg);
          (* the daemon and its worker survived *)
          Alcotest.(check bool) "daemon still answers pings" true
            (Client.ping ~socket);
          match Client.request ~socket {|{"op":"verify","quick":true,"lints":"body"}|} with
          | Ok r -> assert_ok (parse_response r)
          | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn feed" `Quick test_frame_torn_feed;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "blocking read" `Quick test_blocking_read_frame;
          Alcotest.test_case "pack items" `Quick test_pack_items_roundtrip;
          Alcotest.test_case "item size accounting" `Quick
            test_item_size_accounting;
          Alcotest.test_case "take_batch byte bound" `Quick
            test_take_batch_byte_bound;
        ] );
      ( "jsonx-parse",
        [
          Alcotest.test_case "round trip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "escapes" `Quick test_jsonx_escapes;
          Alcotest.test_case "numbers" `Quick test_jsonx_numbers;
          Alcotest.test_case "errors" `Quick test_jsonx_errors;
          Alcotest.test_case "nesting depth" `Quick test_jsonx_depth;
        ] );
      ( "request",
        [
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "validation" `Quick test_request_validation;
        ] );
      ( "cache-multiprocess",
        [
          Alcotest.test_case "two-process stress" `Quick test_cache_two_process;
        ] );
      ( "driver",
        [
          Alcotest.test_case "repeat determinism" `Slow test_repeat_determinism;
          Alcotest.test_case "batch = singletons" `Slow test_batch_equals_singletons;
          Alcotest.test_case "batch dedup" `Quick test_batch_dedup;
          Alcotest.test_case "batch bad payloads" `Quick test_batch_bad_payloads;
          Alcotest.test_case "source digest gate" `Quick test_source_digest_gate;
          Alcotest.test_case "replay lifecycle" `Quick test_replay_lifecycle;
          Alcotest.test_case "plan memo" `Quick test_plan_memo;
          Alcotest.test_case "plan fields in summary" `Quick test_plan_fields_in_summary;
          Alcotest.test_case "batch shares cache entries" `Quick
            test_batch_shares_cache_entries;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Slow test_daemon_end_to_end;
          Alcotest.test_case "fleet unframeable item" `Slow
            test_daemon_fleet_unframeable_item;
        ] );
    ]
